package workload

import (
	"math/bits"
	"math/rand"
)

// millerRabinBases is a deterministic base set proving primality for all
// n < 3,317,044,064,679,887,385,961,981 — in particular for every uint64.
var millerRabinBases = [...]uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}

// mulMod returns a·b mod m without overflow using 128-bit intermediate
// arithmetic.
func mulMod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

// powMod returns base^exp mod m.
func powMod(base, exp, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	result := uint64(1)
	base %= m
	for exp > 0 {
		if exp&1 == 1 {
			result = mulMod(result, base, m)
		}
		base = mulMod(base, base, m)
		exp >>= 1
	}
	return result
}

// IsProbablePrime runs the deterministic Miller–Rabin test. For uint64
// inputs the result is exact, but the cost profile matches the probable-
// prime testing the PrimeTester job performs (Section III-A): a
// compute-intensive, per-item operation whose cost varies with the input.
func IsProbablePrime(n uint64) bool {
	switch {
	case n < 2:
		return false
	case n < 4:
		return true
	case n&1 == 0:
		return false
	}
	// Write n−1 = d·2^r with d odd.
	d := n - 1
	r := 0
	for d&1 == 0 {
		d >>= 1
		r++
	}
	for _, a := range millerRabinBases {
		if a%n == 0 {
			continue
		}
		x := powMod(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		composite := true
		for i := 0; i < r-1; i++ {
			x = mulMod(x, x, n)
			if x == n-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// NumberSource produces the random candidate numbers the PrimeTester
// job's Source tasks emit. Numbers are drawn uniformly from [lo, hi] so
// the primality-test cost distribution is stable across runs with the
// same seed.
type NumberSource struct {
	rng  *rand.Rand
	lo   uint64
	span uint64
}

// NewNumberSource creates a source of candidates in [lo, hi], hi > lo.
func NewNumberSource(lo, hi uint64, seed int64) *NumberSource {
	if hi <= lo {
		hi = lo + 1
	}
	return &NumberSource{
		rng:  rand.New(rand.NewSource(seed)),
		lo:   lo,
		span: hi - lo,
	}
}

// Next returns the next candidate number.
func (s *NumberSource) Next() uint64 {
	return s.lo + s.rng.Uint64()%(s.span+1)
}
