package workload

import (
	"strings"
	"testing"
)

func TestTweetJSONRoundTrip(t *testing.T) {
	in := Tweet{ID: 42, TimeMS: 1700000000000, Topics: []string{"#topic001"}, Text: "love this thing"}
	data, err := in.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeTweet(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.TimeMS != in.TimeMS || out.Text != in.Text || len(out.Topics) != 1 {
		t.Errorf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestDecodeTweetInvalid(t *testing.T) {
	if _, err := DecodeTweet([]byte("{not json")); err == nil {
		t.Error("invalid JSON accepted")
	}
}

func TestTweetGeneratorDeterminism(t *testing.T) {
	a := NewTweetGenerator(100, 1.2, 7)
	b := NewTweetGenerator(100, 1.2, 7)
	for i := 0; i < 100; i++ {
		ta, tb := a.Next(int64(i), 0, 0), b.Next(int64(i), 0, 0)
		if ta.Text != tb.Text || ta.Topics[0] != tb.Topics[0] || ta.ID != tb.ID {
			t.Fatal("same seed must give identical tweets")
		}
	}
}

func TestTweetGeneratorZipfSkew(t *testing.T) {
	g := NewTweetGenerator(100, 1.2, 3)
	counts := make(map[string]int)
	for i := 0; i < 20000; i++ {
		tw := g.Next(0, 0, 0)
		counts[tw.Topics[0]]++
	}
	// Topic 0 must dominate under a Zipf distribution.
	if counts[TopicName(0)] < counts[TopicName(5)] {
		t.Errorf("no Zipf skew: topic0=%d topic5=%d", counts[TopicName(0)], counts[TopicName(5)])
	}
	if counts[TopicName(0)] < 20000/4 {
		t.Errorf("head topic too rare for Zipf: %d of 20000", counts[TopicName(0)])
	}
}

func TestTweetGeneratorBurstConcentration(t *testing.T) {
	g := NewTweetGenerator(100, 1.2, 9)
	burstTopic := 37
	hits := 0
	const n = 5000
	for i := 0; i < n; i++ {
		tw := g.Next(0, burstTopic, 0.8)
		if tw.Topics[0] == TopicName(burstTopic) {
			hits++
		}
	}
	if hits < n*7/10 {
		t.Errorf("burst weight 0.8 produced only %d/%d burst-topic tweets", hits, n)
	}
}

func TestScoreSentiment(t *testing.T) {
	tests := []struct {
		text string
		want Sentiment
	}{
		{text: "love this awesome great day", want: SentimentPositive},
		{text: "hate this terrible awful day", want: SentimentNegative},
		{text: "today people think about things", want: SentimentNeutral},
		{text: "love and hate in balance", want: SentimentNeutral},
		{text: "LOVE!! this.", want: SentimentPositive}, // case and punctuation stripped
		{text: "", want: SentimentNeutral},
	}
	for _, tt := range tests {
		if got := ScoreSentiment(tt.text); got != tt.want {
			t.Errorf("ScoreSentiment(%q): got %v, want %v", tt.text, got, tt.want)
		}
	}
}

func TestGeneratedSentimentRecoverable(t *testing.T) {
	// Generated tweets must include all three polarities in bulk.
	g := NewTweetGenerator(10, 1.2, 11)
	seen := make(map[Sentiment]int)
	for i := 0; i < 3000; i++ {
		tw := g.Next(0, 0, 0)
		seen[ScoreSentiment(tw.Text)]++
	}
	for _, s := range []Sentiment{SentimentNegative, SentimentNeutral, SentimentPositive} {
		if seen[s] < 100 {
			t.Errorf("sentiment %v underrepresented: %d of 3000", s, seen[s])
		}
	}
}

func TestSentimentString(t *testing.T) {
	if SentimentPositive.String() != "positive" || SentimentNegative.String() != "negative" ||
		SentimentNeutral.String() != "neutral" || !strings.Contains(Sentiment(9).String(), "9") {
		t.Error("sentiment names wrong")
	}
}

func TestTopicName(t *testing.T) {
	if TopicName(7) != "#topic007" {
		t.Errorf("TopicName: got %q", TopicName(7))
	}
}

func TestTopicIndexRoundTrip(t *testing.T) {
	for _, idx := range []int{0, 7, 42, 999} {
		got, ok := TopicIndex(TopicName(idx))
		if !ok || got != idx {
			t.Errorf("TopicIndex(TopicName(%d)): got %d ok=%v", idx, got, ok)
		}
	}
	if _, ok := TopicIndex("#golang"); ok {
		t.Error("non-topic hashtag parsed")
	}
	if _, ok := TopicIndex(""); ok {
		t.Error("empty string parsed")
	}
}
