package workload

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleTweets(n int, gapMS int64) []Tweet {
	g := NewTweetGenerator(20, 1.2, 1)
	out := make([]Tweet, n)
	for i := range out {
		out[i] = g.Next(int64(i)*gapMS, 0, 0)
	}
	return out
}

func TestTweetTraceRoundTrip(t *testing.T) {
	tweets := sampleTweets(200, 10)
	var buf bytes.Buffer
	if err := WriteTweetTrace(&buf, tweets); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTweetTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tweets) {
		t.Fatalf("round trip: %d tweets, want %d", len(back), len(tweets))
	}
	for i := range back {
		if back[i].ID != tweets[i].ID || back[i].Text != tweets[i].Text || back[i].TimeMS != tweets[i].TimeMS {
			t.Fatalf("tweet %d mismatch: %+v vs %+v", i, back[i], tweets[i])
		}
	}
}

func TestReadTweetTraceErrors(t *testing.T) {
	if _, err := ReadTweetTrace(strings.NewReader("{bad json\n")); err == nil {
		t.Error("malformed line accepted")
	}
	// Blank lines are skipped.
	tweets, err := ReadTweetTrace(strings.NewReader("\n\n"))
	if err != nil || len(tweets) != 0 {
		t.Errorf("blank-only trace: %v, %d tweets", err, len(tweets))
	}
}

func TestGenerateTweetTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	sched := &ConstantSchedule{RatePerSecond: 50, Length: 10}
	n, err := GenerateTweetTraceFile(path, sched, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if n < 480 || n > 520 {
		t.Errorf("generated %d tweets, want ≈500", n)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tweets, err := ReadTweetTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tweets) != n {
		t.Errorf("file holds %d tweets, want %d", len(tweets), n)
	}
	// Timestamps span the schedule.
	last := tweets[len(tweets)-1].TimeMS
	if last < 9000 || last > 10000 {
		t.Errorf("last timestamp %d ms, want ≈9900", last)
	}
}

func TestTweetReplayHistoricRates(t *testing.T) {
	// 100 tweets at 10/s for 5 s, then 50 tweets at 50/s for 1 s.
	var tweets []Tweet
	g := NewTweetGenerator(10, 1.2, 3)
	for i := 0; i < 50; i++ {
		tweets = append(tweets, g.Next(int64(i)*100, 0, 0)) // 10/s over 0..5 s
	}
	for i := 0; i < 50; i++ {
		tweets = append(tweets, g.Next(5000+int64(i)*20, 0, 0)) // 50/s over 5..6 s
	}
	r, err := NewTweetReplay(tweets, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Duration()-6) > 1.5 {
		t.Errorf("duration: got %v, want ≈6 s", r.Duration())
	}
	if got := r.Rate(2); math.Abs(got-10) > 3 {
		t.Errorf("historic rate at 2 s: got %v, want ≈10", got)
	}
	if got := r.Rate(5.5); math.Abs(got-50) > 12 {
		t.Errorf("historic rate at 5.5 s: got %v, want ≈50", got)
	}
	peak, at := r.PeakRate()
	if peak < 40 || at != 5 {
		t.Errorf("peak: %v at %d s, want ≈50 at 5 s", peak, at)
	}
	if r.Rate(-1) != 0 || r.Rate(100) != 0 {
		t.Error("rates outside the replay must be 0")
	}
}

func TestTweetReplaySpeedup(t *testing.T) {
	tweets := sampleTweets(100, 100) // 10/s for 10 s
	r2, err := NewTweetReplay(tweets, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2.Duration()-5) > 1 {
		t.Errorf("2× speedup duration: got %v, want ≈5 s", r2.Duration())
	}
	if got := r2.Rate(2); math.Abs(got-20) > 5 {
		t.Errorf("2× speedup rate: got %v, want ≈20/s", got)
	}
}

func TestTweetReplayNextOrderAndCycle(t *testing.T) {
	// Deliberately unsorted input.
	tweets := sampleTweets(10, 50)
	tweets[0], tweets[5] = tweets[5], tweets[0]
	r, err := NewTweetReplay(tweets, 1)
	if err != nil {
		t.Fatal(err)
	}
	var last int64 = -1
	for i := 0; i < r.Len(); i++ {
		tw := r.Next()
		if tw.TimeMS < last {
			t.Fatalf("tweets out of order at %d: %d < %d", i, tw.TimeMS, last)
		}
		last = tw.TimeMS
	}
	// Cycles back.
	if first := r.Next(); first.TimeMS > last {
		t.Errorf("cycle restart timestamp %d after %d", first.TimeMS, last)
	}
}

func TestTweetReplayEmpty(t *testing.T) {
	if _, err := NewTweetReplay(nil, 1); err == nil {
		t.Error("empty trace accepted")
	}
}
