package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// The paper's TweetSource "replays JSON-encoded tweets at the correct
// historic rates or a multiple thereof" from a logged dataset. This file
// provides that substrate: JSONL tweet traces on disk, and a replay
// schedule that reconstructs the historic rate profile from the recorded
// timestamps, sped up by an arbitrary factor.

// WriteTweetTrace writes tweets as JSON lines.
func WriteTweetTrace(w io.Writer, tweets []Tweet) error {
	bw := bufio.NewWriter(w)
	for i := range tweets {
		line, err := tweets[i].EncodeJSON()
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return fmt.Errorf("workload: writing trace: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("workload: writing trace: %w", err)
		}
	}
	return bw.Flush()
}

// ReadTweetTrace parses a JSONL tweet trace. Blank lines are skipped;
// malformed lines are an error.
func ReadTweetTrace(r io.Reader) ([]Tweet, error) {
	var tweets []Tweet
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		t, err := DecodeTweet(line)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", lineNo, err)
		}
		tweets = append(tweets, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	return tweets, nil
}

// GenerateTweetTraceFile synthesizes a tweet dataset whose timestamps
// follow the given schedule and writes it to path. It stands in for the
// paper's 69 GB two-week crawl: a deterministic, rate-faithful corpus.
func GenerateTweetTraceFile(path string, sched Schedule, topics int, seed int64) (int, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, fmt.Errorf("workload: %w", err)
	}
	defer f.Close()

	gen := NewTweetGenerator(topics, 1.2, seed)
	bw := bufio.NewWriterSize(f, 1<<20)
	n := 0
	// Walk virtual time, drawing per-second counts from the schedule.
	for t := 0.0; t < sched.Duration(); {
		rate := sched.Rate(t)
		if rate <= 0 {
			t++
			continue
		}
		dt := 1.0 / rate
		burstTopic, w := 0, 0.0
		if ds, ok := sched.(*DiurnalSchedule); ok {
			burstTopic, w = ds.BurstWeight(t)
		}
		tw := gen.Next(int64(t*1000), burstTopic, w)
		line, err := tw.EncodeJSON()
		if err != nil {
			return n, err
		}
		if _, err := bw.Write(line); err != nil {
			return n, fmt.Errorf("workload: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return n, fmt.Errorf("workload: %w", err)
		}
		n++
		t += dt
	}
	if err := bw.Flush(); err != nil {
		return n, fmt.Errorf("workload: %w", err)
	}
	return n, nil
}

// TweetReplay replays a recorded tweet trace at its historic rates (or a
// multiple thereof): it implements Schedule by reconstructing the rate
// profile from the recorded timestamps and hands out tweets in timestamp
// order.
type TweetReplay struct {
	tweets []Tweet
	// speedup compresses historic time: 2 means twice the historic rate
	// and half the duration.
	speedup float64
	// startMS is the first tweet's timestamp.
	startMS int64
	// duration is the replay duration in (replay) seconds.
	duration float64
	// rates holds per-replay-second rate estimates.
	rates []float64
	// cursor tracks Next().
	cursor int
}

// NewTweetReplay builds a replay over the tweets at the given speedup
// (≥ 0; 0 or 1 replays at historic rates). Tweets are sorted by
// timestamp.
func NewTweetReplay(tweets []Tweet, speedup float64) (*TweetReplay, error) {
	if len(tweets) == 0 {
		return nil, fmt.Errorf("workload: empty tweet trace")
	}
	if speedup <= 0 {
		speedup = 1
	}
	sorted := make([]Tweet, len(tweets))
	copy(sorted, tweets)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].TimeMS < sorted[j].TimeMS })

	startMS := sorted[0].TimeMS
	endMS := sorted[len(sorted)-1].TimeMS
	historicSec := float64(endMS-startMS)/1000 + 1
	duration := historicSec / speedup

	// Per-replay-second histogram of tweet counts.
	buckets := int(math.Ceil(duration))
	if buckets < 1 {
		buckets = 1
	}
	rates := make([]float64, buckets)
	for i := range sorted {
		replayT := float64(sorted[i].TimeMS-startMS) / 1000 / speedup
		idx := int(replayT)
		if idx >= buckets {
			idx = buckets - 1
		}
		rates[idx]++
	}
	return &TweetReplay{
		tweets:   sorted,
		speedup:  speedup,
		startMS:  startMS,
		duration: duration,
		rates:    rates,
	}, nil
}

var _ Schedule = (*TweetReplay)(nil)

// Rate returns the historic tweet rate at replay time t, scaled by the
// speedup.
func (r *TweetReplay) Rate(t float64) float64 {
	if t < 0 || t >= r.duration {
		return 0
	}
	idx := int(t)
	if idx >= len(r.rates) {
		idx = len(r.rates) - 1
	}
	return r.rates[idx]
}

// Duration returns the replay duration in seconds.
func (r *TweetReplay) Duration() float64 { return r.duration }

// Len returns the number of tweets in the trace.
func (r *TweetReplay) Len() int { return len(r.tweets) }

// Next returns the next tweet in timestamp order, cycling back to the
// start when exhausted (sources may outpace the trace slightly).
func (r *TweetReplay) Next() Tweet {
	t := r.tweets[r.cursor]
	r.cursor++
	if r.cursor >= len(r.tweets) {
		r.cursor = 0
	}
	return t
}

// PeakRate returns the highest per-second rate in the replay.
func (r *TweetReplay) PeakRate() (rate float64, atSecond int) {
	for i, v := range r.rates {
		if v > rate {
			rate, atSecond = v, i
		}
	}
	return rate, atSecond
}
