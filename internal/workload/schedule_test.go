package workload

import (
	"math"
	"testing"
)

func stepSched() *StepSchedule {
	return &StepSchedule{
		WarmUpRate:     10000,
		StepDelta:      10000,
		IncrementSteps: 4,
		StepDuration:   60,
	}
}

func TestStepScheduleShape(t *testing.T) {
	s := stepSched()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.PeakRate(); got != 50000 {
		t.Errorf("PeakRate: got %v, want 50000", got)
	}
	if got := s.Duration(); got != 600 { // (2·4+2)·60
		t.Errorf("Duration: got %v, want 600", got)
	}
	tests := []struct {
		t     float64
		rate  float64
		phase StepPhase
	}{
		{t: 0, rate: 10000, phase: PhaseWarmUp},
		{t: 59.9, rate: 10000, phase: PhaseWarmUp},
		{t: 60, rate: 20000, phase: PhaseIncrement}, // rate doubles at warm-up→increment
		{t: 120, rate: 30000, phase: PhaseIncrement},
		{t: 240, rate: 50000, phase: PhaseIncrement},
		{t: 300, rate: 50000, phase: PhasePlateau},
		{t: 360, rate: 40000, phase: PhaseDecrement},
		{t: 540, rate: 10000, phase: PhaseDecrement}, // back at warm-up rate
		{t: 600, rate: 0, phase: PhaseDone},
		{t: -1, rate: 0, phase: PhaseDone},
	}
	for _, tt := range tests {
		if got := s.Rate(tt.t); got != tt.rate {
			t.Errorf("Rate(%v): got %v, want %v", tt.t, got, tt.rate)
		}
		if got := s.Phase(tt.t); got != tt.phase {
			t.Errorf("Phase(%v): got %v, want %v", tt.t, got, tt.phase)
		}
	}
}

func TestStepScheduleSymmetry(t *testing.T) {
	s := stepSched()
	// The decrement mirrors the increment: last decrement step rate equals
	// the warm-up rate.
	last := s.Duration() - s.StepDuration/2
	if got := s.Rate(last); got != s.WarmUpRate {
		t.Errorf("final decrement rate: got %v, want warm-up %v", got, s.WarmUpRate)
	}
}

func TestStepScheduleValidate(t *testing.T) {
	bad := &StepSchedule{WarmUpRate: 0, StepDelta: 1, IncrementSteps: 1, StepDuration: 1}
	if err := bad.Validate(); err == nil {
		t.Error("zero warm-up rate accepted")
	}
}

func TestConstantSchedule(t *testing.T) {
	c := &ConstantSchedule{RatePerSecond: 100, Length: 10}
	if c.Rate(5) != 100 || c.Rate(-1) != 0 || c.Rate(10) != 0 {
		t.Error("constant schedule bounds wrong")
	}
	if c.Duration() != 10 {
		t.Error("duration wrong")
	}
}

func TestDiurnalScheduleCycle(t *testing.T) {
	d := &DiurnalSchedule{
		BaseRate:       1000,
		DailyAmplitude: 4000,
		CycleLength:    400,
		Length:         2000,
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Night (cycle start): base rate. Noon (half cycle): base + amplitude.
	if got := d.Rate(0); !almostEqual(got, 1000, 1e-9) {
		t.Errorf("night rate: got %v, want 1000", got)
	}
	if got := d.Rate(200); !almostEqual(got, 5000, 1e-9) {
		t.Errorf("noon rate: got %v, want 5000", got)
	}
	// Periodicity.
	if !almostEqual(d.Rate(200), d.Rate(600), 1e-9) {
		t.Error("daily cycle not periodic")
	}
	if d.Rate(-1) != 0 || d.Rate(2000) != 0 {
		t.Error("rates outside schedule must be 0")
	}
}

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestDiurnalScheduleBurst(t *testing.T) {
	d := &DiurnalSchedule{
		BaseRate:       1000,
		DailyAmplitude: 0,
		CycleLength:    400,
		Length:         2000,
		Bursts:         []Burst{{Start: 1000, Length: 100, ExtraRate: 3000, Topic: 7}},
	}
	// Burst center adds the full extra rate.
	if got := d.Rate(1050); !almostEqual(got, 4000, 1e-9) {
		t.Errorf("burst center rate: got %v, want 4000", got)
	}
	// Outside the burst nothing changes.
	if got := d.Rate(900); !almostEqual(got, 1000, 1e-9) {
		t.Errorf("pre-burst rate: got %v, want 1000", got)
	}
	topic, w := d.BurstWeight(1050)
	if topic != 7 || !almostEqual(w, 0.75, 1e-9) {
		t.Errorf("BurstWeight: topic=%d w=%v, want 7/0.75", topic, w)
	}
	if _, w := d.BurstWeight(900); w != 0 {
		t.Errorf("BurstWeight outside burst: got %v, want 0", w)
	}
}

func TestDiurnalScheduleNoiseDeterministicAndBounded(t *testing.T) {
	d1 := &DiurnalSchedule{BaseRate: 1000, DailyAmplitude: 1000, CycleLength: 400, Length: 4000, NoiseAmplitude: 0.1, Seed: 13}
	d2 := &DiurnalSchedule{BaseRate: 1000, DailyAmplitude: 1000, CycleLength: 400, Length: 4000, NoiseAmplitude: 0.1, Seed: 13}
	d3 := &DiurnalSchedule{BaseRate: 1000, DailyAmplitude: 1000, CycleLength: 400, Length: 4000, NoiseAmplitude: 0.1, Seed: 14}
	same, diff := true, false
	for x := 0.0; x < 4000; x += 17 {
		if d1.Rate(x) != d2.Rate(x) {
			same = false
		}
		if d1.Rate(x) != d3.Rate(x) {
			diff = true
		}
		clean := (&DiurnalSchedule{BaseRate: 1000, DailyAmplitude: 1000, CycleLength: 400, Length: 4000}).Rate(x)
		if r := d1.Rate(x); math.Abs(r-clean) > 0.1*clean+1e-9 {
			t.Fatalf("noise exceeds amplitude at t=%v: %v vs %v", x, r, clean)
		}
	}
	if !same {
		t.Error("same seed must give identical rates")
	}
	if !diff {
		t.Error("different seeds must change the trace")
	}
}

func TestDiurnalRateFloor(t *testing.T) {
	d := &DiurnalSchedule{BaseRate: 1000, DailyAmplitude: 0, CycleLength: 400, Length: 2000, NoiseAmplitude: 5, Seed: 1}
	for x := 0.0; x < 2000; x += 13 {
		if d.Rate(x) < 100 {
			t.Fatalf("rate below floor at t=%v: %v", x, d.Rate(x))
		}
	}
}
