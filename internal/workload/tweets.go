package workload

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
)

// Tweet is a synthetic stand-in for the JSON-encoded tweets of the
// paper's 69 GB dataset. It carries the fields the TwitterSentiment job
// consumes: a timestamp, hashtag-like topics and a text body.
type Tweet struct {
	ID     uint64   `json:"id"`
	TimeMS int64    `json:"time_ms"`
	Topics []string `json:"topics"`
	Text   string   `json:"text"`
}

// EncodeJSON renders the tweet as a JSON line, as replayed from the
// dataset.
func (t *Tweet) EncodeJSON() ([]byte, error) {
	b, err := json.Marshal(t)
	if err != nil {
		return nil, fmt.Errorf("workload: encoding tweet %d: %w", t.ID, err)
	}
	return b, nil
}

// DecodeTweet parses a JSON-encoded tweet.
func DecodeTweet(data []byte) (Tweet, error) {
	var t Tweet
	if err := json.Unmarshal(data, &t); err != nil {
		return Tweet{}, fmt.Errorf("workload: decoding tweet: %w", err)
	}
	return t, nil
}

// Word lists for synthetic tweet text. Positive and negative words carry
// sentiment; neutral words pad the text. The lexicon scorer below uses
// the same lists, so generated sentiment is recoverable by analysis.
var (
	positiveWords = []string{
		"love", "great", "awesome", "amazing", "happy", "excellent",
		"fantastic", "wonderful", "best", "beautiful", "brilliant", "win",
	}
	negativeWords = []string{
		"hate", "terrible", "awful", "horrible", "sad", "worst",
		"disappointing", "bad", "ugly", "broken", "angry", "fail",
	}
	neutralWords = []string{
		"today", "people", "think", "really", "just", "time", "going",
		"watch", "news", "about", "thing", "still", "very", "much",
	}
)

// TopicName renders a topic id as a hashtag.
func TopicName(topic int) string { return fmt.Sprintf("#topic%03d", topic) }

// TopicIndex parses a TopicName-formatted hashtag back into its id.
func TopicIndex(name string) (int, bool) {
	var idx int
	if _, err := fmt.Sscanf(name, "#topic%d", &idx); err != nil {
		return 0, false
	}
	return idx, true
}

// TweetGenerator synthesizes tweets with a Zipf-distributed topic
// popularity, random sentiment polarity and burst-topic concentration.
// It is deterministic for a fixed seed.
type TweetGenerator struct {
	rng    *rand.Rand
	zipf   *rand.Zipf
	nextID uint64
	topics int
}

// NewTweetGenerator creates a generator over topicCount topics with
// Zipf(s) popularity (s > 1; 1.2 gives a realistic heavy tail).
func NewTweetGenerator(topicCount int, s float64, seed int64) *TweetGenerator {
	if topicCount < 1 {
		topicCount = 1
	}
	if s <= 1 {
		s = 1.2
	}
	rng := rand.New(rand.NewSource(seed))
	return &TweetGenerator{
		rng:    rng,
		zipf:   rand.NewZipf(rng, s, 1, uint64(topicCount-1)),
		topics: topicCount,
	}
}

// Next generates one tweet at the given time. With probability
// burstWeight the tweet concerns burstTopic instead of a Zipf-drawn
// topic, modeling the paper's observation that the rate peak "seemed to
// affect one or very few topics".
func (g *TweetGenerator) Next(timeMS int64, burstTopic int, burstWeight float64) Tweet {
	g.nextID++
	topic := int(g.zipf.Uint64())
	if burstWeight > 0 && g.rng.Float64() < burstWeight {
		topic = burstTopic
	}
	topics := []string{TopicName(topic)}
	// ~20% of tweets mention a second topic.
	if g.rng.Float64() < 0.2 {
		topics = append(topics, TopicName(int(g.zipf.Uint64())))
	}
	return Tweet{
		ID:     g.nextID,
		TimeMS: timeMS,
		Topics: topics,
		Text:   g.text(),
	}
}

// text builds a 6–14 word body with a random polarity.
func (g *TweetGenerator) text() string {
	words := 6 + g.rng.Intn(9)
	polarity := g.rng.Intn(3) // 0 negative, 1 neutral, 2 positive
	var b strings.Builder
	for i := 0; i < words; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		// Sentiment-bearing words appear with probability 1/3 for
		// non-neutral tweets.
		switch {
		case polarity == 2 && g.rng.Intn(3) == 0:
			b.WriteString(positiveWords[g.rng.Intn(len(positiveWords))])
		case polarity == 0 && g.rng.Intn(3) == 0:
			b.WriteString(negativeWords[g.rng.Intn(len(negativeWords))])
		default:
			b.WriteString(neutralWords[g.rng.Intn(len(neutralWords))])
		}
	}
	return b.String()
}

// Sentiment classifies text polarity.
type Sentiment int

const (
	// SentimentNegative marks predominantly negative text.
	SentimentNegative Sentiment = iota + 1
	// SentimentNeutral marks balanced or sentiment-free text.
	SentimentNeutral
	// SentimentPositive marks predominantly positive text.
	SentimentPositive
)

// String returns the sentiment name.
func (s Sentiment) String() string {
	switch s {
	case SentimentNegative:
		return "negative"
	case SentimentNeutral:
		return "neutral"
	case SentimentPositive:
		return "positive"
	default:
		return fmt.Sprintf("Sentiment(%d)", int(s))
	}
}

// sentimentLexicon maps words to polarity scores; built once from the
// word lists.
var sentimentLexicon = func() map[string]int {
	lex := make(map[string]int, len(positiveWords)+len(negativeWords))
	for _, w := range positiveWords {
		lex[w] = 1
	}
	for _, w := range negativeWords {
		lex[w] = -1
	}
	return lex
}()

// ScoreSentiment runs the lexicon scorer over the text, the stand-in for
// the paper's LingPipe classifier: it tokenizes, sums word polarities and
// thresholds the result.
func ScoreSentiment(text string) Sentiment {
	score := 0
	for _, w := range strings.Fields(text) {
		score += sentimentLexicon[strings.ToLower(strings.Trim(w, ".,!?#@"))]
	}
	switch {
	case score > 0:
		return SentimentPositive
	case score < 0:
		return SentimentNegative
	default:
		return SentimentNeutral
	}
}
