package workload

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsProbablePrimeSmallNumbers(t *testing.T) {
	primes := map[uint64]bool{
		0: false, 1: false, 2: true, 3: true, 4: false, 5: true,
		6: false, 7: true, 9: false, 11: true, 15: false, 17: true,
		25: false, 97: true, 561: false /* Carmichael */, 1105: false,
		7919: true, 7920: false,
	}
	for n, want := range primes {
		if got := IsProbablePrime(n); got != want {
			t.Errorf("IsProbablePrime(%d): got %v, want %v", n, got, want)
		}
	}
}

func TestIsProbablePrimeLargeKnown(t *testing.T) {
	tests := []struct {
		n    uint64
		want bool
	}{
		{n: 18446744073709551557, want: true},  // largest prime < 2^64
		{n: 18446744073709551615, want: false}, // 2^64 − 1 = 3·5·17·257·641·65537·6700417
		{n: 2862933555777941757, want: false},
		{n: 9223372036854775783, want: true}, // largest prime < 2^63
	}
	for _, tt := range tests {
		if got := IsProbablePrime(tt.n); got != tt.want {
			t.Errorf("IsProbablePrime(%d): got %v, want %v", tt.n, got, tt.want)
		}
	}
}

// TestIsProbablePrimeAgainstBigInt cross-checks random inputs against
// math/big's ProbablyPrime, which is exact for uint64 inputs.
func TestIsProbablePrimeAgainstBigInt(t *testing.T) {
	prop := func(n uint64) bool {
		want := new(big.Int).SetUint64(n).ProbablyPrime(0)
		return IsProbablePrime(n) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMulModMatchesBigInt(t *testing.T) {
	prop := func(a, b, m uint64) bool {
		if m == 0 {
			return true
		}
		got := mulMod(a, b, m)
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, new(big.Int).SetUint64(m))
		return got == want.Uint64()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPowModMatchesBigInt(t *testing.T) {
	prop := func(base, exp, m uint64) bool {
		if m == 0 {
			return true
		}
		exp %= 10000 // keep big.Int exponentiation cheap
		got := powMod(base, exp, m)
		want := new(big.Int).Exp(
			new(big.Int).SetUint64(base),
			new(big.Int).SetUint64(exp),
			new(big.Int).SetUint64(m))
		return got == want.Uint64()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNumberSourceRangeAndDeterminism(t *testing.T) {
	a := NewNumberSource(1000, 2000, 5)
	b := NewNumberSource(1000, 2000, 5)
	for i := 0; i < 1000; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatal("same seed must give same sequence")
		}
		if x < 1000 || x > 2000 {
			t.Fatalf("value %d outside [1000, 2000]", x)
		}
	}
}

func TestNumberSourceDegenerateRange(t *testing.T) {
	s := NewNumberSource(5, 5, 1)
	for i := 0; i < 10; i++ {
		if v := s.Next(); v < 5 || v > 6 {
			t.Fatalf("degenerate range produced %d", v)
		}
	}
}

func BenchmarkIsProbablePrime(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	nums := make([]uint64, 1024)
	for i := range nums {
		nums[i] = rng.Uint64() | 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IsProbablePrime(nums[i%len(nums)])
	}
}
