// Package workload provides the load generators of the paper's
// evaluation: the step-wise rate schedule of the PrimeTester job
// (Section III-A), a diurnal tweet-rate trace with bursts that substitutes
// the 69 GB Twitter dataset (Section V-B), a deterministic Miller–Rabin
// probable-prime tester, and a synthetic tweet generator with a lexicon
// sentiment scorer.
package workload

import (
	"fmt"
	"math"
)

// Schedule yields a target total emission rate (data items per second
// across all source tasks) as a function of job time.
type Schedule interface {
	// Rate returns the attempted emission rate at time t (seconds).
	Rate(t float64) float64
	// Duration returns the schedule's total length in seconds.
	Duration() float64
}

// StepPhase identifies the phase of a StepSchedule at a point in time.
type StepPhase int

const (
	// PhaseWarmUp is the low-rate baseline phase.
	PhaseWarmUp StepPhase = iota + 1
	// PhaseIncrement raises the rate step-wise.
	PhaseIncrement
	// PhasePlateau holds the peak rate for one step.
	PhasePlateau
	// PhaseDecrement lowers the rate step-wise back to the warm-up rate.
	PhaseDecrement
	// PhaseDone marks times past the schedule end.
	PhaseDone
)

// String returns the phase name.
func (p StepPhase) String() string {
	switch p {
	case PhaseWarmUp:
		return "warm-up"
	case PhaseIncrement:
		return "increment"
	case PhasePlateau:
		return "plateau"
	case PhaseDecrement:
		return "decrement"
	case PhaseDone:
		return "done"
	default:
		return fmt.Sprintf("StepPhase(%d)", int(p))
	}
}

// StepSchedule is the PrimeTester job's load profile (Section III-A):
// a warm-up step at a low baseline rate, step-wise increasing rates, a
// plateau at the peak, and a symmetric decrement back to the baseline.
// Every step lasts StepDuration and holds a constant rate.
type StepSchedule struct {
	// WarmUpRate is the baseline rate (items/s, summed over all sources).
	WarmUpRate float64
	// StepDelta is the rate increase per increment step.
	StepDelta float64
	// IncrementSteps is the number of increment (and decrement) steps.
	IncrementSteps int
	// StepDuration is the length of each step in seconds (60 s in the
	// paper).
	StepDuration float64
}

var _ Schedule = (*StepSchedule)(nil)

// Validate checks the schedule parameters.
func (s *StepSchedule) Validate() error {
	if s.WarmUpRate <= 0 || s.StepDelta <= 0 || s.IncrementSteps <= 0 || s.StepDuration <= 0 {
		return fmt.Errorf("workload: invalid step schedule %+v", s)
	}
	return nil
}

// PeakRate returns the plateau rate.
func (s *StepSchedule) PeakRate() float64 {
	return s.WarmUpRate + float64(s.IncrementSteps)*s.StepDelta
}

// Duration returns the total schedule length: warm-up + increments +
// plateau + decrements.
func (s *StepSchedule) Duration() float64 {
	return float64(2*s.IncrementSteps+2) * s.StepDuration
}

// Phase returns the phase active at time t.
func (s *StepSchedule) Phase(t float64) StepPhase {
	step := int(math.Floor(t / s.StepDuration))
	switch {
	case t < 0 || step >= 2*s.IncrementSteps+2:
		return PhaseDone
	case step == 0:
		return PhaseWarmUp
	case step <= s.IncrementSteps:
		return PhaseIncrement
	case step == s.IncrementSteps+1:
		return PhasePlateau
	default:
		return PhaseDecrement
	}
}

// Rate returns the attempted rate at time t. Past the end (and before 0)
// the rate is 0.
func (s *StepSchedule) Rate(t float64) float64 {
	if t < 0 {
		return 0
	}
	step := int(math.Floor(t / s.StepDuration))
	n := s.IncrementSteps
	switch {
	case step == 0:
		return s.WarmUpRate
	case step <= n:
		return s.WarmUpRate + float64(step)*s.StepDelta
	case step == n+1:
		return s.PeakRate()
	case step <= 2*n+1:
		// Decrement: mirrors the increment steps downward.
		k := step - (n + 1) // 1..n
		return s.WarmUpRate + float64(n-k)*s.StepDelta
	default:
		return 0
	}
}

// ConstantSchedule holds one fixed rate for a fixed duration. It is used
// by validation tests and the quickstart example.
type ConstantSchedule struct {
	RatePerSecond float64
	Length        float64
}

var _ Schedule = (*ConstantSchedule)(nil)

// Rate returns the constant rate within [0, Length), 0 outside.
func (c *ConstantSchedule) Rate(t float64) float64 {
	if t < 0 || t >= c.Length {
		return 0
	}
	return c.RatePerSecond
}

// Duration returns the schedule length.
func (c *ConstantSchedule) Duration() float64 { return c.Length }

// Burst is a transient extra load on top of a base schedule, optionally
// concentrated on a single topic (the TwitterSentiment evaluation's peak
// "seemed to affect one or very few topics").
type Burst struct {
	// Start and Length delimit the burst in seconds.
	Start  float64
	Length float64
	// ExtraRate is the additional rate at the burst's center; the burst
	// ramps in and out with a raised-cosine envelope.
	ExtraRate float64
	// Topic is the topic id the burst's tweets concentrate on (used by
	// the tweet generator; ignored by plain schedules).
	Topic int
}

// envelope returns the raised-cosine weight of the burst at time t.
func (b *Burst) envelope(t float64) float64 {
	if t < b.Start || t > b.Start+b.Length || b.Length <= 0 {
		return 0
	}
	x := (t - b.Start) / b.Length
	return 0.5 - 0.5*math.Cos(2*math.Pi*x)
}

// DiurnalSchedule models the replayed two-week Twitter trace: a base
// rate, a raised-cosine daily cycle compressed to CycleLength seconds,
// deterministic pseudo-noise, and a list of bursts. The paper replays 14
// day cycles within a 100 minute experiment.
type DiurnalSchedule struct {
	// BaseRate is the nightly minimum rate (items/s).
	BaseRate float64
	// DailyAmplitude is the additional rate at the daily peak.
	DailyAmplitude float64
	// CycleLength is the length of one compressed "day" in seconds.
	CycleLength float64
	// Length is the schedule duration in seconds.
	Length float64
	// NoiseAmplitude scales the deterministic pseudo-noise (fraction of
	// the current rate, e.g. 0.1 for ±10%).
	NoiseAmplitude float64
	// Seed makes the pseudo-noise reproducible.
	Seed int64
	// Bursts are transient load spikes.
	Bursts []Burst
}

var _ Schedule = (*DiurnalSchedule)(nil)

// Validate checks the schedule parameters.
func (d *DiurnalSchedule) Validate() error {
	if d.BaseRate <= 0 || d.CycleLength <= 0 || d.Length <= 0 {
		return fmt.Errorf("workload: invalid diurnal schedule %+v", d)
	}
	return nil
}

// Duration returns the schedule length.
func (d *DiurnalSchedule) Duration() float64 { return d.Length }

// Rate returns the trace rate at time t: daily cycle + noise + bursts,
// floored at a tenth of the base rate.
func (d *DiurnalSchedule) Rate(t float64) float64 {
	if t < 0 || t >= d.Length {
		return 0
	}
	phase := 2 * math.Pi * t / d.CycleLength
	daily := 0.5 - 0.5*math.Cos(phase) // 0 at "night", 1 at "noon"
	rate := d.BaseRate + d.DailyAmplitude*daily
	if d.NoiseAmplitude > 0 {
		rate *= 1 + d.NoiseAmplitude*d.noise(t)
	}
	for i := range d.Bursts {
		rate += d.Bursts[i].ExtraRate * d.Bursts[i].envelope(t)
	}
	if floor := d.BaseRate / 10; rate < floor {
		rate = floor
	}
	return rate
}

// BurstWeight returns the fraction of the rate at time t contributed by
// the given burst, so the tweet generator can attribute burst traffic to
// the burst's topic.
func (d *DiurnalSchedule) BurstWeight(t float64) (topic int, weight float64) {
	total := d.Rate(t)
	if total <= 0 {
		return 0, 0
	}
	best := 0.0
	for i := range d.Bursts {
		if w := d.Bursts[i].ExtraRate * d.Bursts[i].envelope(t); w > best {
			best = w
			topic = d.Bursts[i].Topic
		}
	}
	return topic, best / total
}

// noise returns a smooth deterministic pseudo-noise value in [−1, 1],
// built from integer-hashed lattice values with cosine interpolation
// (value noise). Period ≈ 11 s per lattice cell.
func (d *DiurnalSchedule) noise(t float64) float64 {
	const cell = 11.0
	x := t / cell
	i := int64(math.Floor(x))
	frac := x - math.Floor(x)
	a := hashUnit(i, d.Seed)
	b := hashUnit(i+1, d.Seed)
	// Cosine interpolation keeps the noise C¹-smooth enough.
	w := 0.5 - 0.5*math.Cos(math.Pi*frac)
	return a*(1-w) + b*w
}

// hashUnit maps (i, seed) to a deterministic value in [−1, 1].
func hashUnit(i, seed int64) float64 {
	x := uint64(i)*0x9e3779b97f4a7c15 ^ uint64(seed)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x)/float64(math.MaxUint64)*2 - 1
}
