package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"nephelix/internal/cluster"
	"nephelix/internal/core"
	"nephelix/internal/model"
	"nephelix/internal/obs"
	"nephelix/internal/qos"
)

// Sim is one discrete-event simulation run. Create it with New, attach
// probes via the Config's behaviors, then call Run.
type Sim struct {
	cfg *Config
	now float64
	q   eventQueue
	rng *rand.Rand

	vertices    map[string]*simVertex
	vertexOrder []string
	channels    []*simChannel

	// edgePatterns[vertex][outPos] is the wiring pattern of the vertex's
	// outPos-th outgoing edge; edgePos maps an edge to its position.
	edgePatterns map[string][]model.WiringPattern
	edgePos      map[model.EdgeKey]int

	managers  []*qos.Manager
	managerRR int

	scaler    *core.ElasticScaler
	scheduler *cluster.Scheduler
	rm        *cluster.ResourceManager
	meter     cluster.UsageMeter

	probes *ProbeSet

	// sloTargets are the per-constraint SLO targets derived from the
	// config's constraints, used when no bounded probe covers them.
	sloTargets []obs.SLOTarget

	// batchPool is the free list of batch slices (see pool.go).
	batchPool [][]Item
	// ops is the event-operand arena; opFree heads its free list (-1 =
	// empty).
	ops    []evOp
	opFree int32
	// taskSlots maps event tslot indices to tasks. Slots are append-only
	// and never reused, so an event scheduled before a task's disposal
	// still resolves to that (disposed) task — same semantics a pointer
	// field would have, without putting a pointer in every heap element.
	taskSlots []*simTask
	// partialsScratch is reused across adjustment ticks.
	partialsScratch []*qos.PartialSummary
	// dp is the data-plane scraper state (lazily built; nil until the
	// first adjustment tick with telemetry configured).
	dp *simDataplane
	// sourceCount sizes the per-row source-rate maps.
	sourceCount int

	// batching control state
	batching  *qos.BatchingController
	deadlines map[model.EdgeKey]float64

	// guar holds the processing-guarantee state (nil when disabled, so
	// the historical data path stays byte-identical).
	guar *guarState

	// counters (per-vertex item counters live on simVertex: map hashing
	// per processed item is measurable at simulator throughput)
	droppedItems        int64
	killedTasks         int
	killedNodes         int
	killedItems         int64
	respawnedTasks      int
	poolExhaustedEvents int
	closedChannels      int
	scaleUps            int
	scaleDowns          int
	infeasible          int
	adjustRounds        int
	retiredBusy         float64
	lastBusySum         float64
	lastTaskSeconds     float64
	lastRowTime         float64

	rows []Row
	err  error
}

// ProbeSample is one probe's per-row measurement.
type ProbeSample struct {
	Count int64
	Mean  float64
	P95   float64
}

// Row is one record-interval sample of the run's time series.
type Row struct {
	Time float64
	// Probes holds per-probe latency samples for the interval.
	Probes map[string]ProbeSample
	// Attempted and Effective are per-source-vertex rates (items/s) over
	// the interval.
	Attempted map[string]float64
	Effective map[string]float64
	// Processed is the per-vertex rate of items completing service over
	// the interval; at sink vertices this is the system's delivered
	// throughput.
	Processed map[string]float64
	// Parallelism is the active task count per vertex.
	Parallelism map[string]int
	// TotalTasks counts active plus draining tasks; LeasedNodes the
	// currently leased workers.
	TotalTasks  int
	LeasedNodes int
	// CPUUtilization is the mean task CPU utilization over the interval.
	CPUUtilization float64
}

// ProbeSummary is one probe's whole-run outcome.
type ProbeSummary struct {
	Fulfillment float64
	Intervals   int
	Mean        float64
	P95         float64
	P99         float64
	Count       int64
	// TailFulfillment is the fraction of intervals whose TailQuantile-th
	// quantile latency met the bound (percentile-constraint probes only).
	TailFulfillment float64
	TailQuantile    float64
}

// Result is the outcome of a simulation run.
type Result struct {
	Rows   []Row
	Probes map[string]ProbeSummary
	// TaskHours and NodeHours are the integrated resource consumption
	// (the paper's cost metric).
	TaskHours float64
	NodeHours float64
	// Emitted counts items emitted per source vertex.
	Emitted map[string]int64
	// FinalParallelism and PeakParallelism describe the scaling history.
	FinalParallelism map[string]int
	PeakParallelism  map[string]int
	ScaleUps         int
	ScaleDowns       int
	// InfeasibleDecisions counts adjustment rounds in which a constraint
	// was infeasible even at maximum scale-out.
	InfeasibleDecisions int
	// PoolExhausted counts scale-up attempts clipped by the worker pool.
	PoolExhausted int
	// DroppedItems counts items lost to disposed tasks (diagnostics; zero
	// in healthy runs).
	DroppedItems int64
	// KilledTasks / KilledNodes count FaultPlan kills that fired;
	// RespawnedTasks the replacements placed. KilledItems counts items
	// lost synchronously with a kill (queued input, buffered output,
	// stalled batches); in-flight batches that reach a dead task later
	// land in DroppedItems.
	KilledTasks    int
	KilledNodes    int
	KilledItems    int64
	RespawnedTasks int
	// MeanCPUUtilization is the run-wide mean task CPU utilization.
	MeanCPUUtilization float64

	// Processing-guarantee outcome (zero values when disabled).
	// CheckpointsCommitted / CheckpointsAborted count barrier
	// checkpoints; CommittedOffsets is the total source watermark of
	// the last commit.
	CheckpointsCommitted int
	CheckpointsAborted   int
	CommittedOffsets     uint64
	// ReplayedItems counts source-log re-emissions after respawns;
	// ReplayStalls the emissions deferred by a full replay buffer.
	ReplayedItems int64
	ReplayStalls  int64
	// SinkDistinct / SinkDuplicates / SinkHoles aggregate the sink
	// dedup tables: first-time deliveries, detected duplicates
	// (suppressed under exactly-once), and committed-but-never-
	// delivered offsets. Holes > 0 means records were lost despite the
	// guarantee — the zero-loss assertions check exactly this.
	SinkDistinct   int64
	SinkDuplicates int64
	SinkHoles      int64
	// UncommittedItems counts items still in replay buffers at the end
	// of the run (not lost — they were simply never committed).
	UncommittedItems int64
}

// New builds a simulation from the config and probe set (probes may be
// nil when the application does not measure end-to-end latency).
func New(cfg Config, probes *ProbeSet) (*Sim, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	if probes == nil {
		probes = NewProbeSet()
	}
	rm, err := cluster.NewResourceManager(cfg.WorkerNodes, cfg.SlotsPerNode)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	s := &Sim{
		cfg:           &cfg,
		opFree:        -1,
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		vertices:      make(map[string]*simVertex),
		edgePatterns:  make(map[string][]model.WiringPattern),
		edgePos:       make(map[model.EdgeKey]int),
		rm:            rm,
		scheduler:     cluster.NewScheduler(rm),
		probes:        probes,
		batching:      qos.NewBatchingController(cfg.Scaler.Strategy.Batching),
		deadlines:     make(map[model.EdgeKey]float64),
	}
	for i := 0; i < cfg.ManagerCount; i++ {
		mcfg := qos.DefaultManagerConfig()
		if cfg.AdjustmentInterval > 0 && cfg.MeasurementInterval > 0 {
			mcfg.HistoryLength = int(math.Max(1, math.Round(cfg.AdjustmentInterval/cfg.MeasurementInterval)))
		}
		s.managers = append(s.managers, qos.NewManager(mcfg))
	}
	s.batching.SetElastic(cfg.Elastic)
	if cfg.Elastic {
		sc, err := core.NewElasticScaler(cfg.Scaler, cfg.Graph, cfg.Constraints)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		s.scaler = sc
		// Percentile constraints: telemetry feeds the scaler's tail
		// fitter with windowed queue-wait quantiles each interval. The
		// fit windows are filled from sampled hop decompositions, so a
		// tail-constrained run needs a tracer even when the caller
		// configured none.
		cfg.Telemetry.BindTailFitter(sc.TailFitter())
		if sc.TailFitter() != nil && s.cfg.Tracer == nil {
			s.cfg.Tracer = obs.NewTracer(obs.DefaultTailSampleEvery)
		}
	}
	s.sloTargets = obs.SLOTargetsFromConstraints(cfg.Constraints)
	s.initGuarantees()
	if err := s.bootstrap(); err != nil {
		return nil, err
	}
	return s, nil
}

// observeSLOs feeds per-constraint SLO accounting each adjustment
// interval. Probes carry the ground-truth per-path latency stream and
// the constraint bound, so any bounded probe drives its own SLO cell;
// when no probe has a bound, the telemetry falls back to its sampled
// end-to-end sketch against the configured constraints.
func (s *Sim) observeSLOs() {
	if s.cfg.Telemetry == nil {
		return
	}
	fed := false
	for _, name := range s.probes.Names() {
		p := s.probes.Probe(name)
		if p.BoundSeconds <= 0 {
			continue
		}
		q := obs.DefaultSLOQuantile
		if p.Quantile > 0 && p.Quantile < 1 {
			q = p.Quantile // percentile constraint: track its own quantile
		}
		count, bad, est := p.TailState(q)
		s.cfg.Telemetry.ObserveSLO(s.now, obs.SLOTarget{
			Constraint:   name,
			Quantile:     q,
			BoundSeconds: p.BoundSeconds,
		}, count, bad, est, s.cfg.Recorder)
		fed = true
	}
	if !fed {
		s.cfg.Telemetry.ObserveSLOs(s.now, s.sloTargets, s.cfg.Recorder)
	}
}

// nextManager assigns reporters to managers round-robin.
func (s *Sim) nextManager() *qos.Manager {
	m := s.managers[s.managerRR]
	s.managerRR = (s.managerRR + 1) % len(s.managers)
	return m
}

// outEdgePos returns the position of edge within its source vertex's
// out-edge order.
func (s *Sim) outEdgePos(edge model.EdgeKey) int { return s.edgePos[edge] }

// bootstrap creates the initial tasks and channels.
func (s *Sim) bootstrap() error {
	g := s.cfg.Graph
	for _, jv := range g.Vertices() {
		outs := g.OutEdges(jv.Name)
		patterns := make([]model.WiringPattern, len(outs))
		for i, ek := range outs {
			patterns[i] = g.Edge(ek).Pattern
			s.edgePos[ek] = i
		}
		s.edgePatterns[jv.Name] = patterns
		if s.cfg.Vertices[jv.Name].Source != nil {
			s.sourceCount++
		}
		v := &simVertex{
			sim:      s,
			jv:       jv,
			cfg:      s.cfg.Vertices[jv.Name],
			draining: make(map[*simTask]struct{}),
			outEdges: outs,
			inEdges:  g.InEdges(jv.Name),
		}
		s.vertices[jv.Name] = v
		s.vertexOrder = append(s.vertexOrder, jv.Name)
	}
	// Create tasks first, then wire all channels producer×consumer.
	for _, name := range s.vertexOrder {
		v := s.vertices[name]
		for i := 0; i < v.jv.Parallelism; i++ {
			t, err := v.newTask()
			if err != nil {
				return fmt.Errorf("sim: initial placement of %s task %d: %w", name, i, err)
			}
			v.tasks = append(v.tasks, t)
		}
	}
	for _, e := range g.Edges() {
		pos := s.edgePos[e.Key()]
		for _, p := range s.vertices[e.Source].tasks {
			for _, c := range s.vertices[e.Target].tasks {
				s.connect(e.Key(), p, c, pos)
			}
		}
	}
	for _, name := range s.vertexOrder {
		for _, t := range s.vertices[name].tasks {
			s.startTask(t)
		}
	}
	return nil
}

// startTask begins a task's autonomous activity: source emission and
// window timers.
func (s *Sim) startTask(t *simTask) {
	if t.isSource {
		src := t.vtx.cfg.Source
		rate := src.Schedule.Rate(s.now)
		offset := 0.001
		if rate > 0 {
			offset = s.rng.Float64() * float64(len(t.vtx.tasks)+1) / rate
		}
		s.q.push(event{at: s.now + offset, kind: evSourceEmit, tslot: t.slot})
		return
	}
	if tb, ok := t.behavior.(TimerBehavior); ok {
		interval := tb.TimerInterval()
		if interval <= 0 {
			s.fail("timer behavior of %s has non-positive interval", t.id)
			return
		}
		t.timerInterval = interval
		s.q.push(event{at: s.now + s.rng.Float64()*interval, kind: evTimer, tslot: t.slot})
	}
}

// timerFire runs one TimerBehavior tick of t and reschedules it.
func (s *Sim) timerFire(t *simTask) {
	if t.disposed || t.draining {
		return
	}
	tb, ok := t.behavior.(TimerBehavior)
	if !ok {
		return
	}
	tb.OnTimer(&t.ctx)
	// ±5% dither keeps window emissions from aliasing with batched
	// arrivals and other periodic activity.
	s.q.push(event{at: s.now + t.timerInterval*(0.95+0.1*s.rng.Float64()), kind: evTimer, tslot: t.slot})
}

// Sample reports whether the next source emission should be tagged for
// end-to-end latency probing.
func (c *TaskContext) Sample() bool {
	p := c.t.vtx.cfg.SampleProbability
	if p <= 0 {
		p = 0.05
	}
	return c.s.rng.Float64() < p
}

// sourceEmit is one emission event of a source task.
func (s *Sim) sourceEmit(t *simTask) {
	if t.srcStopped || t.disposed {
		return
	}
	if t.blockedOut > 0 {
		// Backpressure: the source thread is stuck in a send; it resumes
		// emitting when unblocked (resume()).
		t.srcPendingEmit = true
		return
	}
	if t.srcLog != nil && t.srcLog.full() {
		// The replay buffer is at its bound: emitting more would make
		// the uncommitted suffix unreplayable. Stall until a checkpoint
		// commit frees space.
		s.guar.replayStalls++
		s.q.push(event{at: s.now + 0.01, kind: evSourceEmit, tslot: t.slot})
		return
	}
	src := t.vtx.cfg.Source
	rate := src.Schedule.Rate(s.now)
	if rate <= 0 {
		if s.now < src.Schedule.Duration() {
			s.q.push(event{at: s.now + 0.5, kind: evSourceEmit, tslot: t.slot})
		} else {
			t.srcStopped = true
		}
		return
	}
	cost := src.EmitCost + t.pendingOverhead
	t.pendingOverhead = 0
	t.busyAccum += cost
	// Sources are tasks too: their per-item production cost is their
	// service time, and each emission is an "arrival" of demand — so a
	// source's utilization ρ = cost/interval reaches 1 when it saturates,
	// making producer-bound edges visible to the batching controller.
	t.reporter.RecordArrival(s.now)
	t.reporter.RecordService(cost)
	t.reporter.RecordTaskLatency(cost)
	t.curSpan = s.cfg.Tracer.StartSpan(s.now)
	src.Emit(&t.ctx, s.now)
	t.curSpan = nil
	t.vtx.emitted++

	n := len(t.vtx.tasks)
	if n == 0 {
		n = 1
	}
	interval := float64(n) / rate
	if src.Poisson {
		interval *= s.rng.ExpFloat64()
	} else {
		// ±10% jitter keeps sources from emitting in lockstep.
		interval *= 0.9 + 0.2*s.rng.Float64()
	}
	next := interval
	if cost > next {
		// Saturated source: the emission interval is the production cost
		// itself. Real per-item costs vary; without jitter the saturated
		// sources would sweep their consumers in rigid lockstep and
		// cluster arrivals.
		next = cost * (0.95 + 0.1*s.rng.Float64())
	}
	s.q.push(event{at: s.now + next, kind: evSourceEmit, tslot: t.slot})
}

// fail aborts the run with an error.
func (s *Sim) fail(format string, args ...any) {
	if s.err == nil {
		s.err = fmt.Errorf("sim: t=%.3f: "+format, append([]any{s.now}, args...)...)
	}
}

// runningTasks counts active plus draining tasks.
func (s *Sim) runningTasks() int {
	total := 0
	for _, name := range s.vertexOrder {
		v := s.vertices[name]
		total += len(v.tasks) + len(v.draining)
	}
	return total
}

// accountUsage integrates resource usage up to now; call before any
// change to task or node counts.
func (s *Sim) accountUsage() {
	s.meter.Advance(s.now, s.runningTasks(), s.rm.Leased())
}

// parallelismMap returns the active parallelism per vertex.
func (s *Sim) parallelismMap() map[string]int {
	m := make(map[string]int, len(s.vertexOrder))
	for _, name := range s.vertexOrder {
		m[name] = s.vertices[name].parallelism()
	}
	return m
}

// measurementTick flushes every reporter into its manager.
func (s *Sim) measurementTick() {
	for _, name := range s.vertexOrder {
		v := s.vertices[name]
		for _, t := range v.tasks {
			t.mgr.ReportTask(t.reporter.Flush())
		}
		for _, t := range sortedDraining(v.draining) {
			t.mgr.ReportTask(t.reporter.Flush())
		}
	}
	for _, ch := range s.channels {
		if !ch.closed {
			ch.mgr.ReportChannel(ch.reporter.Flush())
		}
	}
}

// adjustmentTick builds the global summary, reconfigures adaptive
// batching, and runs the elastic scaler.
func (s *Sim) adjustmentTick() {
	for _, name := range s.probes.Names() {
		s.probes.Probe(name).AdjSnapshot()
	}
	par := s.parallelismMap()
	if s.partialsScratch == nil {
		s.partialsScratch = make([]*qos.PartialSummary, 0, len(s.managers))
	}
	partials := s.partialsScratch[:0]
	for _, m := range s.managers {
		partials = append(partials, m.PartialSummary())
	}
	s.partialsScratch = partials[:0]
	global := qos.MergePartials(par, partials...)

	// Adaptive output batching: distribute constraint slack as flush
	// deadlines (primary constraint enforcement mechanism).
	if len(s.cfg.Constraints) > 0 {
		deadlines := s.batching.Update(global, s.cfg.Constraints)
		s.applyDeadlines(deadlines)
	}

	s.adjustRounds++
	var decision *core.Decision
	var decErr error
	if s.scaler != nil {
		decision, decErr = s.scaler.Decide(global, par)
	}
	// Telemetry observes before the decision is recorded so the audit
	// event can embed the residual monitor's current drift flags.
	drift := s.cfg.Telemetry.ObserveInterval(s.now, global, decision, par)
	s.scrapeDataplane()
	s.observeSLOs()
	if decision != nil && s.cfg.Recorder != nil {
		sd := obs.NewScalingDecision(s.adjustRounds, decision, par)
		sd.Drift = drift
		s.cfg.Recorder.RecordDecision(s.now, sd)
	}
	if s.cfg.OnAdjust != nil {
		s.cfg.OnAdjust(AdjustmentInfo{Now: s.now, Summary: global, Deadlines: s.deadlines, Decision: decision})
	}
	if decErr != nil {
		s.fail("scaler: %v", decErr)
		return
	}
	if decision == nil {
		return
	}
	for _, cd := range decision.PerConstraint {
		if cd.Infeasible {
			s.infeasible++
		}
	}
	if len(decision.Actions) == 0 {
		return
	}
	s.accountUsage()
	for _, a := range decision.Actions {
		v := s.vertices[a.Vertex]
		if v == nil {
			s.fail("scaling action for unknown vertex %q", a.Vertex)
			return
		}
		if d := a.Delta(); d > 0 {
			v.addTasks(d)
			s.scaleUps++
		} else {
			v.removeTasks(-d)
			s.scaleDowns++
		}
	}
}

// applyDeadlines pushes new flush deadlines to adaptive output gates.
// Gates are visited in deterministic order: any flush events created here
// consume the shared RNG, and map-ordered iteration would make runs
// diverge between processes.
func (s *Sim) applyDeadlines(deadlines map[model.EdgeKey]float64) {
	s.deadlines = deadlines
	apply := func(g *outGate, buf *gateBuf, ch *simChannel, dl float64) {
		if len(buf.items) == 0 {
			return
		}
		if dl <= 0 {
			s.flushBuf(g, buf, ch)
		} else if !buf.timerSet && !math.IsInf(dl, 1) {
			s.armFlushTimer(g, buf, ch, buf.items[0].BufferTime+dl)
		}
	}
	forTask := func(t *simTask) {
		for _, g := range t.gates {
			if g.mode != BatchAdaptive {
				continue
			}
			dl, ok := deadlines[g.edge]
			if !ok {
				continue
			}
			g.deadline = dl
			if g.shared != nil {
				apply(g, g.shared, nil, dl)
			}
			for _, ch := range sortedKeyedChannels(g.perChan) {
				apply(g, g.perChan[ch], ch, dl)
			}
		}
	}
	for _, name := range s.vertexOrder {
		v := s.vertices[name]
		for _, t := range v.tasks {
			forTask(t)
		}
		for _, t := range sortedDraining(v.draining) {
			forTask(t)
		}
	}
}

// sortedKeyedChannels returns a keyed gate's channels in id order.
func sortedKeyedChannels(m map[*simChannel]*gateBuf) []*simChannel {
	if len(m) == 0 {
		return nil
	}
	out := make([]*simChannel, 0, len(m))
	for ch := range m {
		out = append(out, ch)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id.String() < out[j].id.String() })
	return out
}

// sortedDraining returns draining tasks in id order.
func sortedDraining(m map[*simTask]struct{}) []*simTask {
	if len(m) == 0 {
		return nil
	}
	out := make([]*simTask, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id.Index < out[j].id.Index })
	return out
}

// recordTick emits one time-series row.
func (s *Sim) recordTick() {
	s.accountUsage()
	dt := s.now - s.lastRowTime
	if dt <= 0 {
		return
	}
	// Rows are retained in the result, so their maps must be freshly
	// owned — but they are preallocated at exactly the needed size
	// (vertex/source/probe counts are known) instead of growing from
	// empty.
	row := Row{
		Time:        s.now,
		Probes:      make(map[string]ProbeSample, s.probes.Len()),
		Attempted:   make(map[string]float64, s.sourceCount),
		Effective:   make(map[string]float64, s.sourceCount),
		Processed:   make(map[string]float64, len(s.vertexOrder)),
		Parallelism: s.parallelismMap(),
		TotalTasks:  s.runningTasks(),
		LeasedNodes: s.rm.Leased(),
	}
	for _, name := range s.probes.Names() {
		cnt, mean, p95 := s.probes.Probe(name).RecSnapshot()
		row.Probes[name] = ProbeSample{Count: cnt, Mean: mean, P95: p95}
	}
	for _, name := range s.vertexOrder {
		v := s.vertices[name]
		row.Processed[name] = float64(v.processed-v.lastProcessed) / dt
		v.lastProcessed = v.processed
		if v.cfg.Source == nil {
			continue
		}
		row.Attempted[name] = integrateRate(v.cfg.Source.Schedule.Rate, s.lastRowTime, s.now) / dt
		row.Effective[name] = float64(v.emitted-v.lastEmitted) / dt
		v.lastEmitted = v.emitted
	}
	// CPU utilization: busy seconds per task second over the interval.
	busySum := s.retiredBusy
	for _, name := range s.vertexOrder {
		v := s.vertices[name]
		for _, t := range v.tasks {
			busySum += t.busyAccum
		}
		for t := range v.draining {
			busySum += t.busyAccum
		}
	}
	taskSeconds := s.meter.TaskSeconds()
	if d := taskSeconds - s.lastTaskSeconds; d > 0 {
		row.CPUUtilization = (busySum - s.lastBusySum) / d
	}
	s.lastBusySum = busySum
	s.lastTaskSeconds = taskSeconds
	s.lastRowTime = s.now
	s.rows = append(s.rows, row)
}

// integrateRate numerically integrates a rate function over [t0, t1].
func integrateRate(rate func(float64) float64, t0, t1 float64) float64 {
	const steps = 64
	if t1 <= t0 {
		return 0
	}
	h := (t1 - t0) / steps
	sum := 0.0
	for i := 0; i < steps; i++ {
		sum += rate(t0 + (float64(i)+0.5)*h)
	}
	return sum * h
}

// Run executes the simulation until the configured duration and returns
// the result.
func (s *Sim) Run() (*Result, error) {
	dur := s.cfg.Duration
	// Recurring control-plane ticks; each reschedules itself in dispatch.
	s.q.push(event{at: s.cfg.MeasurementInterval, kind: evMeasure})
	s.q.push(event{at: s.cfg.AdjustmentInterval, kind: evAdjust})
	s.q.push(event{at: s.cfg.RecordInterval, kind: evRecord})
	if s.guar != nil {
		s.q.push(event{at: s.cfg.CheckpointInterval, kind: evCheckpoint})
	}
	if s.cfg.Faults != nil {
		s.scheduleFaults(s.cfg.Faults)
	}
	s.accountUsage()

	peak := s.parallelismMap()
	lastPeakCheck := 0.0
	for {
		ev, ok := s.q.pop()
		if !ok || ev.at > dur {
			break
		}
		s.now = ev.at
		s.dispatch(&ev)
		if s.err != nil {
			return nil, s.err
		}
		// Track peak parallelism at coarse granularity, without building
		// a throwaway map on the hot loop.
		if s.now-lastPeakCheck >= 1 {
			lastPeakCheck = s.now
			for _, name := range s.vertexOrder {
				if p := s.vertices[name].parallelism(); p > peak[name] {
					peak[name] = p
				}
			}
		}
	}
	s.now = dur
	s.accountUsage()

	emitted := make(map[string]int64, s.sourceCount)
	for _, name := range s.vertexOrder {
		if v := s.vertices[name]; v.cfg.Source != nil {
			emitted[name] = v.emitted
		}
	}
	res := &Result{
		Rows:                s.rows,
		Probes:              make(map[string]ProbeSummary),
		TaskHours:           s.meter.TaskHours(),
		NodeHours:           s.meter.NodeHours(),
		Emitted:             emitted,
		FinalParallelism:    s.parallelismMap(),
		PeakParallelism:     peak,
		ScaleUps:            s.scaleUps,
		ScaleDowns:          s.scaleDowns,
		InfeasibleDecisions: s.infeasible,
		PoolExhausted:       s.poolExhaustedEvents,
		DroppedItems:        s.droppedItems,
		KilledTasks:         s.killedTasks,
		KilledNodes:         s.killedNodes,
		KilledItems:         s.killedItems,
		RespawnedTasks:      s.respawnedTasks,
	}
	for _, name := range s.probes.Names() {
		p := s.probes.Probe(name)
		frac, intervals := p.Fulfillment()
		tailFrac, _ := p.TailFulfillment()
		res.Probes[name] = ProbeSummary{
			Fulfillment:     frac,
			Intervals:       intervals,
			Mean:            p.TotalMean(),
			P95:             p.TotalP95(),
			P99:             p.TotalQuantile(0.99),
			Count:           p.TotalCount(),
			TailFulfillment: tailFrac,
			TailQuantile:    p.Quantile,
		}
	}
	if g := s.guar; g != nil {
		res.CheckpointsCommitted = g.committed
		res.CheckpointsAborted = g.aborted
		res.CommittedOffsets = g.lastOffsets
		res.ReplayedItems = g.replayed
		res.ReplayStalls = g.replayStalls
		for _, l := range g.logs {
			res.UncommittedItems += int64(len(l.buf))
		}
		for _, name := range g.dedupOrder {
			d := g.dedups[name]
			res.SinkDistinct += d.Distinct()
			res.SinkDuplicates += d.Dups()
			res.SinkHoles += d.Holes()
		}
	}
	// Run-wide CPU utilization.
	busySum := s.retiredBusy
	for _, name := range s.vertexOrder {
		v := s.vertices[name]
		for _, t := range v.tasks {
			busySum += t.busyAccum
		}
		for t := range v.draining {
			busySum += t.busyAccum
		}
	}
	if ts := s.meter.TaskSeconds(); ts > 0 {
		res.MeanCPUUtilization = busySum / ts
	}
	return res, nil
}
