package sim

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"nephelix/internal/core"
	"nephelix/internal/metrics"
	"nephelix/internal/model"
	"nephelix/internal/obs"
	"nephelix/internal/qos"
	"nephelix/internal/workload"
)

// elasticObsConfig is the elastic step-load pipeline of
// TestSimElasticScalesUpAndDown with a flight recorder attached.
func elasticObsConfig(t *testing.T, probes *ProbeSet) Config {
	t.Helper()
	sched := &workload.StepSchedule{
		WarmUpRate:     40,
		StepDelta:      160,
		IncrementSteps: 2,
		StepDuration:   60,
	}
	cfg := pipelineConfig(t, probes, sched, false, 4,
		func(int) Behavior { return &testServer{mean: 0.010, exponential: true} })
	cfg.Edges[model.EdgeKey{Source: "src", Target: "server"}] = EdgeConfig{Mode: BatchAdaptive}
	cfg.Edges[model.EdgeKey{Source: "server", Target: "sink"}] = EdgeConfig{Mode: BatchAdaptive}
	seq, err := model.ParseSequence(cfg.Graph, "src->server", "server", "server->sink")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Constraints = []*model.Constraint{{
		Name: "c30", Sequence: seq, Bound: 30 * time.Millisecond, Window: 10 * time.Second,
	}}
	probes.SetBound("e2e", 0.030)
	cfg.Elastic = true
	cfg.Scaler = core.DefaultScalerConfig()
	return cfg
}

// TestObsSimDecisionAudit runs the elastic pipeline with a recorder and
// checks the audit trail's core promise: every parallelism change the
// run performed is traceable to a logged decision event carrying the
// model inputs that justified it.
func TestObsSimDecisionAudit(t *testing.T) {
	probes := NewProbeSet()
	cfg := elasticObsConfig(t, probes)
	rec := obs.NewRecorder(0)
	cfg.Recorder = rec
	s, err := New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PoolExhausted != 0 {
		t.Fatalf("pool exhaustion would decouple desired from actual parallelism: %d", res.PoolExhausted)
	}
	decisions := rec.Decisions()
	if len(decisions) == 0 {
		t.Fatal("elastic run recorded no scaling decisions")
	}

	ups, downs := 0, 0
	lastInterval := 0
	for i, ev := range decisions {
		d := ev.Decision
		if d.Interval <= lastInterval {
			t.Errorf("decision %d: interval %d not increasing past %d", i, d.Interval, lastInterval)
		}
		lastInterval = d.Interval
		if d.Old == nil || d.New == nil {
			t.Fatalf("decision %d: missing parallelism snapshots: %+v", i, d)
		}
		// Chain consistency: this decision was made against the state the
		// previous decision produced (nothing else changes parallelism).
		if i > 0 {
			prev := decisions[i-1].Decision
			if want, ok := prev.New["server"]; ok && d.Old["server"] != want {
				t.Errorf("decision %d: Old[server]=%d but previous decision set %d",
					i, d.Old["server"], want)
			}
		}
		for _, a := range d.Actions {
			if a == "" {
				t.Errorf("decision %d: empty action string", i)
			}
		}
		if d.New["server"] > d.Old["server"] {
			ups++
		} else if d.New["server"] < d.Old["server"] {
			downs++
		}
		// Every applied change must be justified: a Rebalance-path decision
		// carries the fitted Kingman inputs and descent steps.
		if len(d.Actions) > 0 {
			justified := false
			for _, cd := range d.Constraints {
				if cd.Bottleneck || len(cd.Model) > 0 {
					justified = true
					if len(cd.Model) > 0 {
						m := cd.Model[0]
						if m.Lambda <= 0 || m.ServiceMean <= 0 {
							t.Errorf("decision %d: model inputs not populated: %+v", i, m)
						}
					}
				}
			}
			if !justified {
				t.Errorf("decision %d changed parallelism without model inputs or a bottleneck flag: %+v", i, d)
			}
		}
	}
	if ups != res.ScaleUps || downs != res.ScaleDowns {
		t.Errorf("audit trail shows %d ups / %d downs, run performed %d / %d",
			ups, downs, res.ScaleUps, res.ScaleDowns)
	}
	if ups == 0 || downs == 0 {
		t.Errorf("step load should both scale up and down (ups=%d downs=%d)", ups, downs)
	}

	// The exported JSONL must be parseable line by line.
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("JSONL line %d does not parse: %v", lines, err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scanning JSONL: %v", err)
	}
	if lines != rec.Len() {
		t.Errorf("JSONL has %d lines, recorder holds %d events", lines, rec.Len())
	}
}

// TestObsSimTracingAttribution head-samples a steady M/M/1-style run and
// checks that the traced per-hop decomposition is complete and consistent
// with the untreated ground-truth probe.
func TestObsSimTracingAttribution(t *testing.T) {
	probes := NewProbeSet()
	cfg := pipelineConfig(t, probes,
		&workload.ConstantSchedule{RatePerSecond: 80, Length: 300}, true, 1,
		func(int) Behavior { return &testServer{mean: 0.010, exponential: true} })
	tr := obs.NewTracer(5)
	cfg.Tracer = tr
	s, err := New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedItems != 0 {
		t.Fatalf("dropped items break span accounting: %d", res.DroppedItems)
	}

	emitted := uint64(res.Emitted["src"])
	if tr.Emissions() != emitted {
		t.Errorf("tracer saw %d emissions, source emitted %d", tr.Emissions(), emitted)
	}
	wantSpans := int64((emitted + 4) / 5)
	if tr.Spans() != wantSpans {
		t.Errorf("spans: got %d, want %d (every 5th of %d)", tr.Spans(), wantSpans, emitted)
	}
	finished, e2e := tr.EndToEnd()
	if finished != tr.Spans() {
		t.Errorf("finished %d of %d spans; all traced items reach the sink here", finished, tr.Spans())
	}

	// Every span records exactly one hop into server and one into sink.
	for _, vertex := range []string{"server", "sink"} {
		if n, svc := tr.VertexAttribution(vertex); n != finished || svc < 0 {
			t.Errorf("vertex %s: %d samples (want %d), service %v", vertex, n, finished, svc)
		}
	}
	nHop, batch, transit, wait, channel := tr.EdgeAttribution("src->server")
	if nHop != finished {
		t.Errorf("edge src->server: %d samples, want %d", nHop, finished)
	}
	if math.Abs(channel-(batch+transit+wait)) > 1e-9 {
		t.Errorf("channel %v != batch %v + transit %v + wait %v", channel, batch, transit, wait)
	}

	// The traced end-to-end mean must agree with the probe's ground truth
	// (the probe sees every record, the tracer every 5th).
	probeMean := res.Probes["e2e"].Mean
	if e2e <= 0 || math.Abs(e2e-probeMean) > 0.25*probeMean {
		t.Errorf("traced e2e mean %v deviates from probe mean %v", e2e, probeMean)
	}

	// And the decomposition must add up: the end-to-end latency is the sum
	// of the per-hop channel and service pieces (within sampling noise).
	_, svcServer := tr.VertexAttribution("server")
	_, svcSink := tr.VertexAttribution("sink")
	_, _, _, _, chanSink := tr.EdgeAttribution("server->sink")
	sum := channel + svcServer + chanSink + svcSink
	if math.Abs(sum-e2e) > 0.15*e2e {
		t.Errorf("hop decomposition sums to %v, e2e mean is %v", sum, e2e)
	}

	rep := tr.AttributionReport(nil)
	for _, want := range []string{"vertex server:", "edge src->server:", "edge server->sink:"} {
		if !bytes.Contains([]byte(rep), []byte(want)) {
			t.Errorf("attribution report missing %q:\n%s", want, rep)
		}
	}
}

// TestObsSimTracingDeterministic: with a fixed seed, head sampling is part
// of the deterministic event order — two runs yield identical attribution.
func TestObsSimTracingDeterministic(t *testing.T) {
	run := func() string {
		probes := NewProbeSet()
		cfg := pipelineConfig(t, probes,
			&workload.ConstantSchedule{RatePerSecond: 100, Length: 60}, true, 2,
			func(int) Behavior { return &testServer{mean: 0.01, exponential: true} })
		tr := obs.NewTracer(7)
		cfg.Tracer = tr
		s, err := New(cfg, probes)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return tr.AttributionReport(nil)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced different attribution reports:\n%s\n---\n%s", a, b)
	}
}

// TestObsSimUntracedRunUnchanged: attaching no tracer/recorder must leave
// results identical to the seed behavior (the zero-overhead contract is
// benchmarked separately; this guards behavioral equivalence).
func TestObsSimUntracedRunUnchanged(t *testing.T) {
	run := func(withObs bool) *Result {
		probes := NewProbeSet()
		cfg := pipelineConfig(t, probes,
			&workload.ConstantSchedule{RatePerSecond: 100, Length: 60}, true, 2,
			func(int) Behavior { return &testServer{mean: 0.01, exponential: true} })
		if withObs {
			cfg.Tracer = obs.NewTracer(10)
			cfg.Recorder = obs.NewRecorder(64)
		}
		s, err := New(cfg, probes)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, traced := run(false), run(true)
	if plain.Emitted["src"] != traced.Emitted["src"] {
		t.Errorf("tracing changed emission count: %d vs %d", plain.Emitted["src"], traced.Emitted["src"])
	}
	if plain.Probes["e2e"].Mean != traced.Probes["e2e"].Mean {
		t.Errorf("tracing changed the simulation outcome: %v vs %v",
			plain.Probes["e2e"].Mean, traced.Probes["e2e"].Mean)
	}
}

// TestObsSimResidualTelemetryParity is the end-to-end pin of the
// prediction-residual monitor: it replays the decision JSONL offline —
// reconstructing every registered Kingman prediction W(p*) from the
// audit event's fitted A/B coefficients and parallelism choice, and
// pairing it with the next interval's measured queue wait exactly as
// the monitor does — and requires the recomputed statistics to match
// both the live monitor and the /timeseries HTTP payload.
func TestObsSimResidualTelemetryParity(t *testing.T) {
	probes := NewProbeSet()
	cfg := elasticObsConfig(t, probes)
	rec := obs.NewRecorder(0)
	tel := obs.NewTelemetry(0)
	cfg.Recorder = rec
	cfg.Telemetry = tel
	// The e2e latency histogram is fed from head-sampled trace spans.
	cfg.Tracer = obs.NewTracer(10)

	// summaries[i] is the global summary of adjustment interval i+1 —
	// the same object ObserveInterval scored against (MergePartials
	// allocates a fresh summary per tick, so retaining them is safe).
	var summaries []*qos.Summary
	cfg.OnAdjust = func(info AdjustmentInfo) { summaries = append(summaries, info.Summary) }

	s, err := New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}

	// Offline replay from the exported JSONL.
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	type cellAcc struct {
		residual, absRel metrics.Welford
		over, under      int64
	}
	cells := make(map[obs.ResidualKey]*cellAcc)
	seq := cfg.Constraints[0].Sequence
	scoredTotal := 0
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Decision == nil {
			continue
		}
		d := ev.Decision
		// Predictions registered at interval k are scored against the
		// summary of interval k+1 (summaries[k], 0-indexed); a decision in
		// the run's final interval is never scored.
		if d.Interval >= len(summaries) {
			continue
		}
		next := summaries[d.Interval]
		for _, cd := range d.Constraints {
			if cd.Skipped || cd.Constraint == "" || len(cd.Model) == 0 {
				continue
			}
			for _, m := range cd.Model {
				p, ok := d.New[m.Vertex]
				if !ok {
					p, ok = cd.Parallelism[m.Vertex]
				}
				if !ok {
					p = m.Current
				}
				// W(p) = A/(p−B), +Inf for p ≤ B (skipped), 0 for A ≤ 0.
				pf := float64(p)
				if pf <= m.B {
					continue
				}
				predicted := 0.0
				if m.A > 0 {
					predicted = m.A / (pf - m.B)
				}
				edge, ok := seq.IngoingEdge(m.Vertex)
				if !ok {
					continue
				}
				es, ok := next.Edge(edge)
				if !ok {
					continue
				}
				measured := es.QueueWait()
				key := obs.ResidualKey{Constraint: cd.Constraint, Vertex: m.Vertex}
				acc := cells[key]
				if acc == nil {
					acc = &cellAcc{}
					cells[key] = acc
				}
				acc.residual.Add(measured - predicted)
				if measured > 0 {
					acc.absRel.Add(math.Abs(measured-predicted) / measured)
				}
				// Mirror the monitor's sign-bias exemptions: residuals
				// inside the deadband and pairings far below the bound
				// carry no drift evidence.
				bound := cfg.Constraints[0].Bound.Seconds()
				deadband := obs.DefaultResidualConfig().Deadband
				switch {
				case math.Abs(measured-predicted) < deadband*bound:
				case measured < obs.BiasFloorFraction*bound &&
					predicted < obs.BiasFloorFraction*bound:
				case predicted > measured:
					acc.over++
				case predicted < measured:
					acc.under++
				}
				scoredTotal++
			}
		}
	}
	if scoredTotal < 10 {
		t.Fatalf("offline replay scored only %d pairs; the elastic run must exercise the monitor", scoredTotal)
	}

	// Live monitor vs offline replay: identical pairing, identical order,
	// so the Welford statistics must agree to numerical identity.
	stats := tel.Residuals().Snapshot()
	if len(stats) != len(cells) {
		t.Fatalf("monitor tracks %d cells, offline replay found %d", len(stats), len(cells))
	}
	for _, st := range stats {
		acc := cells[obs.ResidualKey{Constraint: st.Constraint, Vertex: st.Vertex}]
		if acc == nil {
			t.Errorf("cell %s/%s not reproduced offline", st.Constraint, st.Vertex)
			continue
		}
		if st.Samples != acc.residual.Count() || st.Over != acc.over || st.Under != acc.under ||
			st.RelErrSamples != acc.absRel.Count() {
			t.Errorf("cell %s/%s counts: live {samples %d over %d under %d relerr %d}, offline {%d %d %d %d}",
				st.Constraint, st.Vertex, st.Samples, st.Over, st.Under, st.RelErrSamples,
				acc.residual.Count(), acc.over, acc.under, acc.absRel.Count())
		}
		if math.Abs(st.ResidualMean-acc.residual.Mean()) > 1e-12 ||
			math.Abs(st.ResidualStdDev-acc.residual.StdDev()) > 1e-12 ||
			math.Abs(st.MeanAbsRelErr-acc.absRel.Mean()) > 1e-12 {
			t.Errorf("cell %s/%s stats: live {mean %v stddev %v relerr %v}, offline {%v %v %v}",
				st.Constraint, st.Vertex, st.ResidualMean, st.ResidualStdDev, st.MeanAbsRelErr,
				acc.residual.Mean(), acc.residual.StdDev(), acc.absRel.Mean())
		}
	}

	// The /timeseries payload must carry the same residual statistics
	// bit-for-bit (float64 survives the JSON round-trip exactly).
	srv := httptest.NewServer(obs.NewHandler(obs.ServerConfig{Recorder: rec, Telemetry: tel}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/timeseries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.TimeseriesSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap.Residuals, stats) {
		t.Errorf("/timeseries residuals diverge from the monitor:\nhttp: %+v\nlive: %+v", snap.Residuals, stats)
	}
	seriesNames := make(map[string]bool)
	for _, sn := range snap.Series {
		seriesNames[sn.Name] = true
	}
	for _, want := range []string{
		"nephelix_e2e_latency_seconds",
		"nephelix_model_residual_mean_seconds",
		"nephelix_model_abs_residual_seconds",
		"nephelix_vertex_parallelism",
		"nephelix_edge_queue_wait_seconds",
		"nephelix_scaler_decisions_total",
	} {
		if !seriesNames[want] {
			t.Errorf("/timeseries missing series %s", want)
		}
	}
	for _, sn := range snap.Series {
		if sn.Name == "nephelix_e2e_latency_seconds" && sn.Count == 0 {
			t.Error("e2e latency histogram recorded no observations")
		}
	}
}
