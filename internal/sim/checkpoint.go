package sim

import (
	"fmt"
	"sort"

	"nephelix/internal/ckpt"
	"nephelix/internal/obs"
)

// Processing guarantees, simulator mirror. The engine's barrier-
// checkpoint protocol (internal/engine/checkpoint.go) is replayed here
// under virtual time with the same semantics, single-threaded:
//
//   - every source task owns a simSrcLog assigning monotonically
//     increasing per-source offsets and retaining the uncommitted
//     suffix for replay;
//   - a recurring evCheckpoint event injects numbered barriers at the
//     sources; barriers ride the regular channels as special items, so
//     per-channel FIFO makes the cut consistent; consumers align by
//     counting producer barriers, forward, and acknowledge;
//   - when every task acknowledged, the checkpoint commits: source
//     logs prune their committed prefixes and sink dedup windows
//     advance. Topology churn (scaling, kills, respawns) during
//     alignment aborts the checkpoint via a generation counter, exactly
//     like the engine;
//   - a fault respawn replays every source's uncommitted suffix
//     (at-least-once); sink-vertex ckpt.DedupTables detect the
//     duplicates and, under exactly-once, suppress their Process call.
//
// Everything runs on the simulation's deterministic event loop: the
// same seed yields byte-identical results, guarantees included.

// simSrcLog is one source task's offset log: offsets base..next()-1 are
// assigned; buf holds the uncommitted suffix (buf[i] is offset base+i).
type simSrcLog struct {
	id   int32
	name string
	cap  int
	base uint64
	buf  []replayItem
}

// replayItem is one logged emission: the item as the behavior emitted
// it (sim-internal pointers stripped) and its out-edge index.
type replayItem struct {
	it   Item
	edge int8
}

// next returns the offset the next emission will receive.
func (l *simSrcLog) next() uint64 { return l.base + uint64(len(l.buf)) }

// full reports whether the replay buffer reached its bound.
func (l *simSrcLog) full() bool { return len(l.buf) >= l.cap }

// commitTo drops the committed prefix below watermark.
func (l *simSrcLog) commitTo(watermark uint64) {
	if watermark <= l.base {
		return
	}
	n := int(watermark - l.base)
	if n >= len(l.buf) {
		n = len(l.buf)
	}
	rest := copy(l.buf, l.buf[n:])
	for i := rest; i < len(l.buf); i++ {
		l.buf[i] = replayItem{} // release Origins references
	}
	l.buf = l.buf[:rest]
	l.base = watermark
}

// simCkpt is one in-flight barrier checkpoint.
type simCkpt struct {
	id      int64
	gen     int64
	started float64
	// expect is the number of producer barriers each task must count
	// before acknowledging; pending is the not-yet-acknowledged set.
	expect  map[*simTask]int
	pending map[*simTask]bool
	// offsets are the source watermarks snapshotted at injection.
	offsets map[*simSrcLog]uint64
	// maxStall is the worst first-to-last barrier gap any task saw.
	maxStall float64
}

// guarState is the per-run processing-guarantee state (nil on Sim when
// guarantees are disabled, keeping the default data path untouched).
type guarState struct {
	level    ckpt.Guarantee
	suppress bool
	interval float64
	bufCap   int

	seq      int64 // checkpoint id allocator
	gen      int64 // topology generation; churn bumps it
	inflight *simCkpt

	// pendingResp counts scheduled-but-not-yet-executed respawns;
	// injection waits for recovery to settle, like the engine master.
	pendingResp int

	lastCommit  float64
	lastID      int64
	lastOffsets uint64

	committed    int
	aborted      int
	replayed     int64
	replayStalls int64

	nextSrcID int32
	logs      []*simSrcLog
	// dedups tracks (source, offset) deliveries per sink vertex;
	// dedupOrder fixes the iteration order for determinism.
	dedups     map[string]*ckpt.DedupTable
	dedupOrder []string
}

// initGuarantees builds the guarantee state from the config (New).
func (s *Sim) initGuarantees() {
	if !s.cfg.Guarantee.Enabled() {
		return
	}
	g := &guarState{
		level:    s.cfg.Guarantee,
		suppress: s.cfg.Guarantee.Dedup(),
		interval: s.cfg.CheckpointInterval,
		bufCap:   s.cfg.ReplayBufferItems,
		dedups:   make(map[string]*ckpt.DedupTable),
	}
	for _, jv := range s.cfg.Graph.Vertices() {
		if len(s.cfg.Graph.OutEdges(jv.Name)) == 0 {
			g.dedups[jv.Name] = ckpt.NewDedupTable()
			g.dedupOrder = append(g.dedupOrder, jv.Name)
		}
	}
	sort.Strings(g.dedupOrder)
	s.guar = g
}

// attachSrcLog gives a new source task its offset log: a reattached
// orphan (offset continuity across a respawn) or a fresh one.
func (s *Sim) attachSrcLog(t *simTask) {
	g := s.guar
	if g == nil || !t.isSource {
		return
	}
	v := t.vtx
	if n := len(v.orphanLogs); n > 0 {
		t.srcLog = v.orphanLogs[n-1]
		v.orphanLogs[n-1] = nil
		v.orphanLogs = v.orphanLogs[:n-1]
		return
	}
	g.nextSrcID++
	l := &simSrcLog{
		id:   g.nextSrcID,
		name: fmt.Sprintf("%s#%d", v.jv.Name, g.nextSrcID),
		cap:  g.bufCap,
	}
	g.logs = append(g.logs, l)
	t.srcLog = l
}

// noteSimChurn records a topology change: the generation bumps and any
// in-flight checkpoint aborts, because its barrier cut no longer
// matches the routing it was injected into.
func (s *Sim) noteSimChurn(reason string) {
	g := s.guar
	if g == nil {
		return
	}
	g.gen++
	s.abortCkpt(reason)
}

// checkpointTick injects one barrier checkpoint at the sources
// (recurring evCheckpoint event). Injection is skipped while recovery
// or a drain is in progress; an unfinished predecessor is superseded.
func (s *Sim) checkpointTick() {
	g := s.guar
	if g == nil {
		return
	}
	if g.pendingResp > 0 {
		return
	}
	if g.inflight != nil {
		s.abortCkpt("superseded by next interval")
	}
	for _, name := range s.vertexOrder {
		if len(s.vertices[name].draining) > 0 {
			return
		}
	}
	expect := make(map[*simTask]int)
	pending := make(map[*simTask]bool)
	var sources []*simTask
	for _, name := range s.vertexOrder {
		v := s.vertices[name]
		for _, t := range v.tasks {
			if t.isSource {
				sources = append(sources, t)
				continue
			}
			n := 0
			for _, ek := range v.inEdges {
				n += len(s.vertices[ek.Source].tasks)
			}
			expect[t] = n
			pending[t] = true
		}
	}
	if len(sources) == 0 {
		return
	}
	g.seq++
	ck := &simCkpt{
		id:      g.seq,
		gen:     g.gen,
		started: s.now,
		expect:  expect,
		pending: pending,
		offsets: make(map[*simSrcLog]uint64, len(sources)),
	}
	g.inflight = ck
	for _, t := range sources {
		// The watermark is snapshotted now; a blocked source cannot
		// emit (srcPendingEmit defers), so deferring its barrier to
		// resume() keeps the snapshot consistent.
		ck.offsets[t.srcLog] = t.srcLog.next()
		if t.blockedOut > 0 {
			t.pendingBarrier = ck.id
		} else {
			s.forwardBarrier(t, ck.id)
		}
	}
	if s.cfg.Recorder != nil {
		s.cfg.Recorder.RecordLifecycle(s.now, obs.KindCheckpointStart,
			obs.Lifecycle{CheckpointID: ck.id})
	}
	if len(ck.pending) == 0 {
		s.commitCkpt() // degenerate source-only topology
	}
}

// forwardBarrier flushes t's gates (pre-barrier data must precede the
// marker in channel FIFO order) and ships one barrier item to every
// consumer channel — all of them regardless of wiring pattern, because
// alignment counts producers, not partitions.
func (s *Sim) forwardBarrier(t *simTask, id int64) {
	if t.blockedOut > 0 {
		t.pendingBarrier = id
		return
	}
	for _, g := range t.gates {
		s.flushGate(g)
	}
	for _, g := range t.gates {
		for _, ch := range g.channels {
			b := append(s.getBatch(), Item{barrier: id, BufferTime: s.now, ShipTime: s.now})
			s.ship(ch, b, 0)
		}
	}
}

// handleBarrier processes one barrier item reaching the head of t's
// input queue (maybeStart): per-producer FIFO guarantees every
// pre-barrier item of that producer was enqueued — and, being ahead in
// the queue, serviced — before the marker, so counting to the expected
// producer total makes the local cut consistent.
func (s *Sim) handleBarrier(t *simTask, id int64) {
	g := s.guar
	ck := g.inflight
	if ck == nil || id != ck.id {
		return // stale barrier of an aborted or superseded checkpoint
	}
	if t.alignID != id {
		t.alignID = id
		t.alignSeen = 0
		t.alignStart = s.now
	}
	t.alignSeen++
	if t.alignSeen < ck.expect[t] {
		return
	}
	if stall := s.now - t.alignStart; stall > ck.maxStall {
		ck.maxStall = stall
	}
	if !ck.pending[t] {
		return
	}
	delete(ck.pending, t)
	s.forwardBarrier(t, id)
	if len(ck.pending) == 0 {
		s.commitCkpt()
	}
}

// commitCkpt finishes the in-flight checkpoint once every task
// acknowledged: logs prune their committed prefixes and sink dedup
// windows advance. A checkpoint whose generation no longer matches the
// topology is discarded as aborted — its cut spans a routing that no
// longer exists.
func (s *Sim) commitCkpt() {
	g := s.guar
	ck := g.inflight
	g.inflight = nil
	if ck.gen != g.gen {
		g.aborted++
		s.cfg.Telemetry.ObserveCheckpoint(s.now, 0, 0, 0, false)
		if s.cfg.Recorder != nil {
			s.cfg.Recorder.RecordLifecycle(s.now, obs.KindCheckpointAbort, obs.Lifecycle{
				CheckpointID: ck.id, Reason: "topology changed during alignment",
			})
		}
		return
	}
	logs := make([]*simSrcLog, 0, len(ck.offsets))
	for l := range ck.offsets {
		logs = append(logs, l)
	}
	sort.Slice(logs, func(i, j int) bool { return logs[i].id < logs[j].id })
	var total uint64
	for _, l := range logs {
		w := ck.offsets[l]
		l.commitTo(w)
		total += w
	}
	for _, name := range g.dedupOrder {
		d := g.dedups[name]
		for _, l := range logs {
			d.Prune(l.id, ck.offsets[l])
		}
	}
	g.committed++
	dur := s.now - ck.started
	interval := s.now - g.lastCommit
	g.lastCommit = s.now
	g.lastID = ck.id
	g.lastOffsets = total
	s.cfg.Telemetry.ObserveCheckpoint(s.now, dur, interval, ck.maxStall, true)
	if s.cfg.Recorder != nil {
		s.cfg.Recorder.RecordLifecycle(s.now, obs.KindCheckpointCommit, obs.Lifecycle{
			CheckpointID: ck.id, DurationSeconds: dur, CommittedOffsets: total,
		})
	}
}

// abortCkpt discards the in-flight checkpoint, if any.
func (s *Sim) abortCkpt(reason string) {
	g := s.guar
	ck := g.inflight
	if ck == nil {
		return
	}
	g.inflight = nil
	g.aborted++
	s.cfg.Telemetry.ObserveCheckpoint(s.now, 0, 0, 0, false)
	if s.cfg.Recorder != nil {
		s.cfg.Recorder.RecordLifecycle(s.now, obs.KindCheckpointAbort,
			obs.Lifecycle{CheckpointID: ck.id, Reason: reason})
	}
}

// replayAll re-emits the uncommitted suffix of every live source log
// after a respawn (the engine's requestReplayAll): a crash anywhere in
// the pipeline may have dropped derived records of any source, so all
// uncommitted offsets are re-delivered. Sinks see duplicates for the
// records that did survive; the dedup tables absorb them.
func (s *Sim) replayAll() {
	if s.guar == nil {
		return
	}
	for _, name := range s.vertexOrder {
		v := s.vertices[name]
		for _, t := range v.tasks {
			if t.srcLog != nil && len(t.srcLog.buf) > 0 {
				s.replayLog(t)
			}
		}
	}
}

// replayLog re-emits one source's uncommitted suffix through its gates.
// Replayed items keep their original (source, offset) lineage; emit
// skips stamping and logging while t.replaying is set.
func (s *Sim) replayLog(t *simTask) {
	l := t.srcLog
	n := int64(len(l.buf))
	t.replaying = true
	for i := range l.buf {
		s.emit(t, int(l.buf[i].edge), l.buf[i].it)
	}
	t.replaying = false
	s.guar.replayed += n
	s.cfg.Telemetry.AddReplayed(s.now, n)
	if s.cfg.Recorder != nil {
		s.cfg.Recorder.RecordLifecycle(s.now, obs.KindReplay, obs.Lifecycle{
			Vertex: t.vtx.jv.Name, Task: t.id.String(), CommittedOffsets: uint64(n),
		})
	}
}

// dataItems counts the non-barrier items of a batch, so fault-loss
// accounting never counts control markers as lost records.
func dataItems(batch []Item) int64 {
	n := int64(0)
	for i := range batch {
		if batch[i].barrier == 0 {
			n++
		}
	}
	return n
}

// queueDataItems counts the non-barrier items queued at t.
func (t *simTask) queueDataItems() int64 {
	n := int64(0)
	for i := t.qHead; i < len(t.queue); i++ {
		if t.queue[i].barrier == 0 {
			n++
		}
	}
	return n
}
