// Package sim is a discrete-event simulator for stream processing jobs:
// tasks are single-server queueing stations, channels carry batches with
// configurable output batching (instant flush, fixed buffer, adaptive
// deadline), bounded input queues exert backpressure, and the QoS plane
// plus the elastic scaler of internal/core run unmodified on top of the
// simulated measurements.
//
// The simulator substitutes the paper's 130-node commodity cluster: it
// reproduces the mechanisms the evaluation depends on (queueing delay
// growth near saturation, the batching/latency trade-off via per-flush
// overhead, backpressure throttling, scale-up/scale-down dynamics) under
// virtual time, so cluster-scale experiments run on a laptop.
package sim

// eventKind discriminates the typed simulator events. Events are plain
// records dispatched by Sim.dispatch — no closures — so scheduling an
// action allocates nothing in steady state: the event lives in the
// queue's flat backing array.
type eventKind uint8

const (
	evNone eventKind = iota
	// evSourceEmit is one emission of source task t.
	evSourceEmit
	// evTimer is one TimerBehavior tick of task t.
	evTimer
	// evFlushTimer is a deadline flush check of gate g's buffer buf
	// (pinned consumer ch for key-based buffers, nil for shared ones);
	// gen detects buffers flushed since the timer was armed.
	evFlushTimer
	// evDeliver is the arrival of batch at the consumer end of ch.
	evDeliver
	// evServiceDone is the service completion of task t; the item in
	// service and its service time ride on the task (svcItem, svcTime).
	evServiceDone
	// evMeasure, evAdjust and evRecord are the recurring control-plane
	// ticks; each reschedules itself until the configured duration.
	evMeasure
	evAdjust
	evRecord
	// evTaskKill / evNodeKill fire FaultPlan entry n.
	evTaskKill
	evNodeKill
	// evRespawn re-adds n tasks to vertex v after a fault kill.
	evRespawn
	// evCheckpoint is the recurring barrier-checkpoint injection tick
	// (processing guarantees); it reschedules itself like the
	// control-plane ticks.
	evCheckpoint
)

// event is one scheduled simulator action. Events are ordered by
// (at, seq); seq is a FIFO tie-break for equal timestamps, so the pop
// order is a strict total order independent of heap shape.
//
// The record is deliberately small (32 bytes) and pointer-free: heap
// sifts copy events around, so every extra field costs a move and any
// pointer field would cost GC write-barrier work per move. Task-addressed
// events carry the task's arena slot (Sim.taskSlots — slots are never
// reused, so a stale event resolves to the same, now-disposed task a
// pointer would have); events with wider operand sets (deliveries, flush
// timers, respawns) park them in the Sim's evOp arena and carry only the
// arena index.
type event struct {
	at  float64
	seq uint64
	// tslot indexes Sim.taskSlots (evSourceEmit, evTimer, evServiceDone).
	tslot int32
	// n is the evOp arena index (evDeliver, evFlushTimer, evRespawn) or
	// the FaultPlan entry index (evTaskKill, evNodeKill).
	n    int32
	kind eventKind
}

// evOp holds the operands of events that need more than a task pointer.
// Ops live in a flat arena on the Sim with an index-linked free list:
// they are allocated once and recycled, and — unlike fields on the event
// itself — never move while the heap sifts.
type evOp struct {
	ch    *simChannel
	g     *outGate
	buf   *gateBuf
	v     *simVertex
	batch []Item
	gen   uint64
	count int32
	next  int32 // free-list link
}

// allocOp returns a free arena slot index.
func (s *Sim) allocOp() int32 {
	if s.opFree >= 0 {
		i := s.opFree
		s.opFree = s.ops[i].next
		return i
	}
	s.ops = append(s.ops, evOp{})
	return int32(len(s.ops) - 1)
}

// takeOp reads slot i and returns it to the free list.
func (s *Sim) takeOp(i int32) evOp {
	op := s.ops[i]
	s.ops[i] = evOp{next: s.opFree}
	s.opFree = i
	return op
}

// eventQueue is a flat 4-ary min-heap of events ordered by (at, seq).
// Hand-rolled and monomorphic: no interface boxing on push/pop, sift
// moves elements with index arithmetic, and the backing array is reused
// across the whole run. The wider fan-out halves tree depth versus a
// binary heap, trading cheap comparisons for fewer element moves — the
// right trade for ~100-byte events.
type eventQueue struct {
	items   []event
	nextSeq uint64
}

// eventLess orders events by (at, seq).
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push schedules ev, assigning its FIFO sequence number.
func (q *eventQueue) push(ev event) {
	q.nextSeq++
	ev.seq = q.nextSeq
	i := len(q.items)
	q.items = append(q.items, ev)
	// Sift up: move parents down into the hole until ev's slot is found.
	for i > 0 {
		p := (i - 1) >> 2
		if !eventLess(&ev, &q.items[p]) {
			break
		}
		q.items[i] = q.items[p]
		i = p
	}
	q.items[i] = ev
}

// pop removes and returns the earliest event; ok is false when empty.
func (q *eventQueue) pop() (event, bool) {
	n := len(q.items)
	if n == 0 {
		return event{}, false
	}
	top := q.items[0]
	n--
	last := q.items[n]
	q.items = q.items[:n] // events are pointer-free: no clear needed
	if n > 0 {
		// Sift last down from the root: pull the smallest child up into
		// the hole until last's slot is found.
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if eventLess(&q.items[j], &q.items[m]) {
					m = j
				}
			}
			if !eventLess(&q.items[m], &last) {
				break
			}
			q.items[i] = q.items[m]
			i = m
		}
		q.items[i] = last
	}
	return top, true
}

// peekTime returns the earliest event time; ok is false when empty.
func (q *eventQueue) peekTime() (float64, bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].at, true
}

// dispatch executes one popped event. The switch replaces the former
// per-event closures: every case re-derives its action from the typed
// operands.
func (s *Sim) dispatch(ev *event) {
	switch ev.kind {
	case evSourceEmit:
		s.sourceEmit(s.taskSlots[ev.tslot])
	case evTimer:
		s.timerFire(s.taskSlots[ev.tslot])
	case evFlushTimer:
		op := s.takeOp(ev.n)
		s.flushTimerFire(op.g, op.buf, op.ch, op.gen)
	case evDeliver:
		op := s.takeOp(ev.n)
		s.deliver(op.ch, op.batch)
	case evServiceDone:
		s.serviceDone(s.taskSlots[ev.tslot])
	case evMeasure:
		s.measurementTick()
		if t := s.now + s.cfg.MeasurementInterval; t <= s.cfg.Duration {
			s.q.push(event{at: t, kind: evMeasure})
		}
	case evAdjust:
		s.adjustmentTick()
		if t := s.now + s.cfg.AdjustmentInterval; t <= s.cfg.Duration {
			s.q.push(event{at: t, kind: evAdjust})
		}
	case evRecord:
		s.recordTick()
		if t := s.now + s.cfg.RecordInterval; t <= s.cfg.Duration {
			s.q.push(event{at: t, kind: evRecord})
		}
	case evTaskKill:
		s.injectTaskKill(s.cfg.Faults.TaskKills[ev.n], s.cfg.Faults)
	case evNodeKill:
		s.injectNodeKill(s.cfg.Faults.NodeKills[ev.n], s.cfg.Faults)
	case evRespawn:
		op := s.takeOp(ev.n)
		s.respawn(op.v, int(op.count))
	case evCheckpoint:
		s.checkpointTick()
		if t := s.now + s.cfg.CheckpointInterval; t <= s.cfg.Duration {
			s.q.push(event{at: t, kind: evCheckpoint})
		}
	}
}
