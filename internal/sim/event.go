// Package sim is a discrete-event simulator for stream processing jobs:
// tasks are single-server queueing stations, channels carry batches with
// configurable output batching (instant flush, fixed buffer, adaptive
// deadline), bounded input queues exert backpressure, and the QoS plane
// plus the elastic scaler of internal/core run unmodified on top of the
// simulated measurements.
//
// The simulator substitutes the paper's 130-node commodity cluster: it
// reproduces the mechanisms the evaluation depends on (queueing delay
// growth near saturation, the batching/latency trade-off via per-flush
// overhead, backpressure throttling, scale-up/scale-down dynamics) under
// virtual time, so cluster-scale experiments run on a laptop.
package sim

import "container/heap"

// event is one scheduled simulator action.
type event struct {
	at  float64
	seq uint64 // FIFO tie-break for equal timestamps
	fn  func()
}

// eventQueue is a binary min-heap of events ordered by (at, seq).
type eventQueue struct {
	items   []event
	nextSeq uint64
}

var _ heap.Interface = (*eventQueue)(nil)

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) Less(i, j int) bool {
	if q.items[i].at != q.items[j].at {
		return q.items[i].at < q.items[j].at
	}
	return q.items[i].seq < q.items[j].seq
}

func (q *eventQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

// Push implements heap.Interface; use push instead.
func (q *eventQueue) Push(x any) { q.items = append(q.items, x.(event)) }

// Pop implements heap.Interface; use pop instead.
func (q *eventQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	q.items = old[:n-1]
	return it
}

// push schedules fn at time at.
func (q *eventQueue) push(at float64, fn func()) {
	q.nextSeq++
	heap.Push(q, event{at: at, seq: q.nextSeq, fn: fn})
}

// pop removes and returns the earliest event; ok is false when empty.
func (q *eventQueue) pop() (event, bool) {
	if len(q.items) == 0 {
		return event{}, false
	}
	return heap.Pop(q).(event), true
}

// peekTime returns the earliest event time; ok is false when empty.
func (q *eventQueue) peekTime() (float64, bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].at, true
}
