package sim

import "nephelix/internal/obs"

// Item is one simulated data item flowing through the runtime graph.
// Items are passed by value in batches to keep allocation low.
type Item struct {
	// EmitTime is the virtual time the item (or its oldest ancestor)
	// entered the constrained sequence at a source; end-to-end latency
	// probes measure against it.
	EmitTime float64
	// BufferTime is the time the item was placed into the current output
	// buffer; channel latency l_e is measured from it.
	BufferTime float64
	// ShipTime is the time the flush carrying the item started; output
	// batch latency obl_e = ShipTime − BufferTime.
	ShipTime float64
	// Size is the item's serialized size in bytes; it drives buffer-full
	// flushes and per-byte network cost.
	Size int32
	// Kind is an application-defined tag (e.g. tweet vs topic list).
	Kind uint8
	// Sampled marks items participating in end-to-end latency probing.
	Sampled bool
	// Key selects the partition for key-based wiring and carries
	// application payload identity (e.g. the candidate number or topic).
	Key uint64
	// Origins carries the sampled EmitTimes of items aggregated into this
	// one (windowed operators), so sequence latency with read-write
	// semantics stays measurable across aggregation. Nil for ordinary
	// items.
	Origins []float64

	// Src and Offset are the item's lineage under processing
	// guarantees: the source partition (0 = untracked, e.g. guarantees
	// disabled or a timer emission) and the per-source offset of its
	// ancestor. Items emitted during Process inherit them from the item
	// being processed.
	Src    int32
	Offset uint64

	// barrier marks checkpoint-barrier markers (the checkpoint id);
	// zero for data items. Barriers ride the regular channels so
	// per-channel FIFO keeps the cut consistent, but are consumed by
	// the alignment logic instead of the behavior.
	barrier int64

	// src is the channel that delivered the item to the current task; the
	// consumer records channel latency against it at dequeue time.
	src *simChannel

	// span is the item's trace span (nil unless the item descends from a
	// head-sampled emission and tracing is on). It travels with the
	// value copy and is inherited by items emitted while processing a
	// traced item.
	span *obs.Span
	// arrive is the time the item was enqueued at the current consumer;
	// the traced queue wait is measured from it.
	arrive float64
}
