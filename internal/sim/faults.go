package sim

import (
	"fmt"
	"math"

	"nephelix/internal/model"
	"nephelix/internal/obs"
)

// TaskKill abruptly kills tasks of one vertex at virtual time At. Unlike
// a scale-down the victims do not drain: queued input, buffered output
// and stalled batches are lost, and the tasks' QoS histories are NOT
// forgotten — they linger in their managers until age-out, so the QoS
// plane observes the same stale-measurement window a real crash causes.
type TaskKill struct {
	// At is the kill time in virtual seconds.
	At float64
	// Vertex names the job vertex whose tasks die.
	Vertex string
	// Count kills that many tasks; Fraction kills
	// ceil(Fraction·parallelism). The larger of the two applies; if both
	// are zero one task dies. Victims are drawn from the active tasks
	// with the simulation RNG, so runs stay seed-deterministic.
	Count    int
	Fraction float64
}

// NodeKill fails one leased worker node at virtual time At: its lease is
// revoked (the pool shrinks, usage metering stops), and every task
// placed on it dies as in TaskKill.
type NodeKill struct {
	// At is the kill time in virtual seconds.
	At float64
	// NodeIndex selects the victim from the scheduler's lease-ordered
	// node list, modulo the number of leased nodes at kill time.
	NodeIndex int
}

// FaultPlan is a deterministic fault-injection schedule. All injected
// events draw randomness only from the simulation's seeded RNG, so the
// same seed replays the same failure scenario exactly.
type FaultPlan struct {
	TaskKills []TaskKill
	NodeKills []NodeKill
	// Respawn re-creates each killed task RestartDelay seconds after its
	// kill (the engine supervisor's restart, time-compressed). Respawned
	// tasks are placed fresh by the scheduler, so tasks orphaned by a
	// node kill land on surviving nodes.
	Respawn bool
	// RestartDelay is the respawn latency in virtual seconds
	// (default 1).
	RestartDelay float64
}

// validate checks the plan against the job graph.
func (p *FaultPlan) validate(c *Config) error {
	for i, k := range p.TaskKills {
		if k.At < 0 {
			return fmt.Errorf("sim: task kill %d has negative time %g", i, k.At)
		}
		if _, ok := c.Vertices[k.Vertex]; !ok {
			return fmt.Errorf("sim: task kill %d targets unknown vertex %q", i, k.Vertex)
		}
		if k.Fraction < 0 || k.Fraction > 1 {
			return fmt.Errorf("sim: task kill %d has fraction %g outside [0, 1]", i, k.Fraction)
		}
	}
	for i, k := range p.NodeKills {
		if k.At < 0 {
			return fmt.Errorf("sim: node kill %d has negative time %g", i, k.At)
		}
		if k.NodeIndex < 0 {
			return fmt.Errorf("sim: node kill %d has negative node index", i)
		}
	}
	if p.Respawn && p.RestartDelay <= 0 {
		p.RestartDelay = 1
	}
	return nil
}

// scheduleFaults pushes the plan's kills into the event queue (Run).
// Events carry the plan index; dispatch re-reads the entry from
// s.cfg.Faults.
func (s *Sim) scheduleFaults(p *FaultPlan) {
	for i := range p.TaskKills {
		s.q.push(event{at: p.TaskKills[i].At, kind: evTaskKill, n: int32(i)})
	}
	for i := range p.NodeKills {
		s.q.push(event{at: p.NodeKills[i].At, kind: evNodeKill, n: int32(i)})
	}
}

// injectTaskKill executes one TaskKill event.
func (s *Sim) injectTaskKill(k TaskKill, p *FaultPlan) {
	v := s.vertices[k.Vertex]
	n := k.Count
	if f := int(math.Ceil(k.Fraction * float64(len(v.tasks)))); f > n {
		n = f
	}
	if n < 1 {
		n = 1
	}
	killed := 0
	for i := 0; i < n && len(v.tasks) > 0; i++ {
		t := v.tasks[s.rng.Intn(len(v.tasks))]
		s.killTask(t, true)
		killed++
	}
	if p.Respawn && killed > 0 {
		s.scheduleRespawn(v, killed, p.RestartDelay)
	}
}

// injectNodeKill executes one NodeKill event.
func (s *Sim) injectNodeKill(k NodeKill, p *FaultPlan) {
	nodes := s.scheduler.Nodes()
	if len(nodes) == 0 {
		return
	}
	id := nodes[k.NodeIndex%len(nodes)]
	s.accountUsage() // integrate usage while the node still bills
	orphans, err := s.scheduler.FailNode(id)
	if err != nil {
		s.fail("node kill: %v", err)
		return
	}
	s.killedNodes++
	perVertex := make(map[string]int)
	for _, tid := range orphans {
		if t := s.findTask(tid); t != nil {
			// FailNode already dropped the placement; don't unplace again.
			s.killTask(t, false)
			perVertex[tid.Vertex]++
		}
	}
	if p.Respawn {
		for _, name := range s.vertexOrder {
			if n := perVertex[name]; n > 0 {
				s.scheduleRespawn(s.vertices[name], n, p.RestartDelay)
			}
		}
	}
}

// scheduleRespawn re-adds n tasks to v after delay.
func (s *Sim) scheduleRespawn(v *simVertex, n int, delay float64) {
	if s.guar != nil {
		// Hold checkpoint injection until recovery settles, like the
		// engine master's pendingRecovery gate.
		s.guar.pendingResp++
	}
	i := s.allocOp()
	s.ops[i] = evOp{v: v, count: int32(n)}
	s.q.push(event{at: s.now + delay, kind: evRespawn, n: i})
}

// respawn executes one evRespawn: places n replacement tasks on v.
func (s *Sim) respawn(v *simVertex, n int) {
	s.accountUsage()
	if s.guar != nil {
		s.guar.pendingResp--
	}
	added := v.addTasks(n)
	s.respawnedTasks += added
	if s.cfg.Recorder != nil && added > 0 {
		s.cfg.Recorder.RecordLifecycle(s.now, obs.KindTaskRestart, obs.Lifecycle{
			Vertex:         v.jv.Name,
			Reason:         "fault respawn",
			Attempts:       added,
			BackoffSeconds: s.cfg.Faults.RestartDelay,
		})
	}
	// Replay every source's uncommitted suffix: the crash may have
	// dropped derived records of any source (at-least-once recovery).
	s.replayAll()
}

// findTask locates a live (active or draining) task by id.
func (s *Sim) findTask(id model.TaskID) *simTask {
	v := s.vertices[id.Vertex]
	if v == nil {
		return nil
	}
	for _, t := range v.tasks {
		if t.id == id {
			return t
		}
	}
	for t := range v.draining {
		if t.id == id {
			return t
		}
	}
	return nil
}

// killTask removes a task abruptly: no draining, queued and buffered
// items are lost, producers blocked on the victim are released. The
// task's QoS history is deliberately NOT forgotten — a crashed reporter
// just stops reporting, and the manager only drops its history after
// age-out. That stale window is what FaultPlan exists to exercise.
func (s *Sim) killTask(t *simTask, unplace bool) {
	if t.disposed {
		return
	}
	lostBefore := s.killedItems
	s.accountUsage() // integrate usage before the task count drops
	v := t.vtx
	for i, x := range v.tasks {
		if x == t {
			v.tasks = append(v.tasks[:i], v.tasks[i+1:]...)
			break
		}
	}
	delete(v.draining, t)
	t.disposed = true
	t.killed = true
	if t.isSource {
		t.srcStopped = true
	}
	if t.srcLog != nil {
		// The uncommitted suffix survives the crash in the orphaned
		// log; a respawned task reattaches and replays it.
		v.orphanLogs = append(v.orphanLogs, t.srcLog)
		t.srcLog = nil
	}

	// Queued input dies with the task (barrier markers are control
	// traffic, not lost records).
	s.killedItems += t.queueDataItems()
	t.queue = nil
	t.qHead = 0

	// Inbound channels: stalled batches die, their producers unblock and
	// resume; the channel leaves the producer's routing and stops
	// reporting.
	var resumed []*simTask
	for _, ch := range t.in {
		if len(ch.stalled) > 0 {
			for _, b := range ch.stalled {
				s.killedItems += dataItems(b)
				s.recycleBatch(b)
			}
			ch.stalled = nil
			ch.from.blockedOut--
			resumed = append(resumed, ch.from)
		}
		s.unrouteChannelKilled(ch)
		ch.closed = true
	}
	t.in = nil
	t.stalledInBatches = 0

	// Outbound gates: buffered output and batches stalled at consumers
	// die; channels close and leave the consumers' in-lists.
	for _, g := range t.gates {
		if g.shared != nil {
			s.killedItems += int64(len(g.shared.items))
			s.recycleBatch(g.shared.items)
			g.shared.items = nil
			g.shared.bytes = 0
		}
		for _, buf := range g.perChan {
			s.killedItems += int64(len(buf.items))
			s.recycleBatch(buf.items)
			buf.items = nil
		}
		g.perChan = nil
		for _, ch := range g.channels {
			if len(ch.stalled) > 0 {
				for _, b := range ch.stalled {
					s.killedItems += dataItems(b)
					ch.to.stalledInBatches--
					s.recycleBatch(b)
				}
				ch.stalled = nil
			}
			ch.closed = true
			to := ch.to
			for i, c := range to.in {
				if c == ch {
					to.in = append(to.in[:i], to.in[i+1:]...)
					break
				}
			}
		}
		g.channels = nil
	}

	s.retiredBusy += t.busyAccum
	if unplace {
		if err := s.scheduler.Unplace(t.id); err != nil {
			s.fail("killing %s: %v", t.id, err)
		}
	}
	s.killedTasks++
	if s.cfg.Recorder != nil {
		s.cfg.Recorder.RecordLifecycle(s.now, obs.KindTaskKill, obs.Lifecycle{
			Vertex:      t.id.Vertex,
			Task:        t.id.String(),
			Reason:      "fault injection",
			LostRecords: s.killedItems - lostBefore,
		})
	}
	s.noteSimChurn("fault kill rewired topology")
	s.compactChannels()
	for _, p := range resumed {
		s.resume(p)
	}
}

// unrouteChannelKilled removes ch from its producer's gate. Unlike the
// scale-down unroute, key-pinned buffered items are not flushed — their
// consumer is dead, so they are lost and counted.
func (s *Sim) unrouteChannelKilled(ch *simChannel) {
	p := ch.from
	for _, g := range p.gates {
		if g.edge != ch.edge {
			continue
		}
		for i, c := range g.channels {
			if c == ch {
				g.channels = append(g.channels[:i], g.channels[i+1:]...)
				g.rrInit = false // consumer set changed: re-draw offset
				if buf, ok := g.perChan[ch]; ok {
					s.killedItems += int64(len(buf.items))
					s.recycleBatch(buf.items)
					buf.items = nil
					delete(g.perChan, ch)
				}
				return
			}
		}
	}
}
