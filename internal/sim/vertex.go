package sim

import (
	"math"

	"nephelix/internal/model"
	"nephelix/internal/qos"
)

// simVertex groups the data-parallel tasks of one job vertex and manages
// their elastic scaling.
type simVertex struct {
	sim *Sim
	jv  *model.JobVertex
	cfg VertexConfig

	// tasks are the active tasks; draining tasks have been removed from
	// routing but still process their queues.
	tasks    []*simTask
	draining map[*simTask]struct{}

	// orphanLogs holds source offset logs of killed tasks until a
	// respawned task reattaches them (processing guarantees).
	orphanLogs []*simSrcLog

	// nextIndex allocates unique task indices so QoS history never mixes
	// a removed task with its successor.
	nextIndex int

	// outEdges / inEdges cache the vertex's edge order.
	outEdges []model.EdgeKey
	inEdges  []model.EdgeKey

	// emitted (sources) and processed count items across all tasks of
	// the vertex; the last* values mark the previous record interval.
	// Kept here — not in a per-name map — so the per-item increments in
	// sourceEmit/serviceDone cost a field bump, not a map hash.
	emitted       int64
	lastEmitted   int64
	processed     int64
	lastProcessed int64
}

// parallelism returns the number of active (routed-to) tasks.
func (v *simVertex) parallelism() int { return len(v.tasks) }

// newTask builds, places and wires one new task (gates without consumers
// yet).
func (v *simVertex) newTask() (*simTask, error) {
	s := v.sim
	id := model.TaskID{Vertex: v.jv.Name, Index: v.nextIndex}
	v.nextIndex++
	t := &simTask{
		id:       id,
		vtx:      v,
		isSource: v.cfg.Source != nil,
		reporter: qos.NewTaskReporter(id),
		mgr:      s.nextManager(),
	}
	t.ctx = TaskContext{s: s, t: t}
	t.slot = int32(len(s.taskSlots))
	s.taskSlots = append(s.taskSlots, t)
	if v.cfg.NewBehavior != nil {
		t.behavior = v.cfg.NewBehavior(id.Index)
	}
	s.attachSrcLog(t)
	t.gates = make([]*outGate, len(v.outEdges))
	for pos, ek := range v.outEdges {
		ec := s.cfg.edgeConfig(ek)
		g := &outGate{
			t:           t,
			pos:         pos,
			edge:        ek,
			pattern:     s.cfg.Graph.Edge(ek).Pattern,
			mode:        ec.Mode,
			bufferBytes: ec.BufferBytes,
			deadline:    s.initialGateDeadline(ec, ek),
		}
		if g.pattern == model.PatternKeyBased {
			g.perChan = make(map[*simChannel]*gateBuf)
		} else {
			g.shared = &gateBuf{}
		}
		t.gates[pos] = g
	}
	if _, err := s.scheduler.Place(id); err != nil {
		return nil, err
	}
	return t, nil
}

// initialGateDeadline gives a gate's starting flush deadline per mode.
func (s *Sim) initialGateDeadline(ec EdgeConfig, edge model.EdgeKey) float64 {
	switch ec.Mode {
	case BatchInstant:
		return 0
	case BatchFixedBuffer:
		return math.Inf(1)
	default:
		// Adaptive gates inherit the current QoS deadline, starting with
		// instant flushing until the QoS plane publishes one.
		if dl, ok := s.deadlines[edge]; ok {
			return dl
		}
		return 0
	}
}

// connect wires a channel from producer p (through its outPos gate) to
// consumer c and registers it with the simulator.
func (s *Sim) connect(edge model.EdgeKey, p, c *simTask, outPos int) {
	ch := &simChannel{
		id:       model.ChannelID{Edge: edge, Producer: p.id.Index, Consumer: c.id.Index},
		edge:     edge,
		edgeName: edge.String(),
		from:     p,
		to:       c,
		mgr:      s.nextManager(),
	}
	ch.reporter = qos.NewChannelReporter(ch.id)
	g := p.gates[outPos]
	g.channels = append(g.channels, ch)
	g.rrInit = false // consumer set changed: re-draw the rotation offset
	c.in = append(c.in, ch)
	s.channels = append(s.channels, ch)
}

// addTasks grows the vertex by n tasks, wiring channels to all current
// upstream producers and downstream consumers. It returns the number of
// tasks actually added (the scheduler pool may run out).
func (v *simVertex) addTasks(n int) int {
	s := v.sim
	added := 0
	for i := 0; i < n; i++ {
		t, err := v.newTask()
		if err != nil {
			s.poolExhaustedEvents++
			break
		}
		// Wire inbound channels from every active upstream producer
		// (draining producers no longer route new items).
		for _, ek := range v.inEdges {
			up := s.vertices[ek.Source]
			pos := s.outEdgePos(ek)
			for _, p := range up.tasks {
				s.connect(ek, p, t, pos)
			}
		}
		// Wire outbound channels to every active downstream consumer.
		for pos, ek := range v.outEdges {
			down := s.vertices[ek.Target]
			for _, c := range down.tasks {
				s.connect(ek, t, c, pos)
			}
		}
		v.tasks = append(v.tasks, t)
		added++
		// Start source emission / timers for the new task.
		s.startTask(t)
	}
	if added > 0 {
		s.noteSimChurn("scale-up rewired topology")
	}
	return added
}

// removeTasks shrinks the vertex by n tasks (the most recently added
// ones): they leave the routing tables immediately and drain their queues
// before disposal.
func (v *simVertex) removeTasks(n int) {
	s := v.sim
	if n > 0 && len(v.tasks) > 0 {
		s.noteSimChurn("scale-down rewired topology")
	}
	for i := 0; i < n && len(v.tasks) > 0; i++ {
		t := v.tasks[len(v.tasks)-1]
		v.tasks = v.tasks[:len(v.tasks)-1]
		t.draining = true
		v.draining[t] = struct{}{}

		// Unroute: remove the channels leading to t from every producer's
		// gate. The channels stay alive for in-flight data.
		for _, ch := range t.in {
			s.unrouteChannel(ch)
		}
		if t.isSource {
			t.srcStopped = true
		}
		s.maybeStart(t)
		s.tryDispose(t)
	}
}

// unrouteChannel removes ch from its producer gate's active consumer
// list; key-pinned buffered items are flushed to their original target so
// nothing is stranded.
func (s *Sim) unrouteChannel(ch *simChannel) {
	p := ch.from
	for _, g := range p.gates {
		if g.edge != ch.edge {
			continue
		}
		for i, c := range g.channels {
			if c == ch {
				g.channels = append(g.channels[:i], g.channels[i+1:]...)
				g.rrInit = false // consumer set changed: re-draw offset
				if buf, ok := g.perChan[ch]; ok {
					if len(buf.items) > 0 {
						s.flushBuf(g, buf, ch)
					}
					delete(g.perChan, ch)
				}
				return
			}
		}
	}
}

// finalizeRemoval cleans up a fully drained task.
func (v *simVertex) finalizeRemoval(t *simTask) {
	s := v.sim
	s.accountUsage() // integrate usage before the task count drops
	s.retiredBusy += t.busyAccum
	delete(v.draining, t)
	if t.srcLog != nil {
		// Keep the offset log for a future task of this vertex, so
		// offsets stay monotonic across scale-down/up cycles.
		v.orphanLogs = append(v.orphanLogs, t.srcLog)
		t.srcLog = nil
	}
	if err := s.scheduler.Unplace(t.id); err != nil {
		s.fail("unplacing %s: %v", t.id, err)
	}
	t.mgr.Forget(t.id)
	// Close and unregister the task's channels (both directions).
	for _, ch := range t.in {
		ch.closed = true
		ch.mgr.ForgetChannel(ch.id)
	}
	for _, g := range t.gates {
		for _, ch := range g.channels {
			ch.closed = true
			ch.mgr.ForgetChannel(ch.id)
			// Remove from the consumer's in-list.
			to := ch.to
			for i, c := range to.in {
				if c == ch {
					to.in = append(to.in[:i], to.in[i+1:]...)
					break
				}
			}
		}
	}
	s.compactChannels()
}

// compactChannels drops closed channels from the registry (amortized).
func (s *Sim) compactChannels() {
	s.closedChannels++
	if s.closedChannels < 256 || s.closedChannels*2 < len(s.channels) {
		return
	}
	alive := s.channels[:0]
	for _, ch := range s.channels {
		if !ch.closed {
			alive = append(alive, ch)
		}
	}
	s.channels = alive
	s.closedChannels = 0
}
