package sim

import (
	"nephelix/internal/model"
	"nephelix/internal/obs"
)

// simDataplane holds the scraper's previous cumulative samples so each
// adjustment tick can derive interval rates, mirroring the engine's
// dataplaneScraper. Virtual time stands in for wall time; counters are
// item-grained (the sim moves items, the engine moves batches), which
// keeps the fractions the backpressure heuristic classifies on
// comparable across layers.
type simDataplane struct {
	lastAt    float64
	prevEdges map[model.EdgeKey]simEdgeTotals
	prevBusy  map[string]float64 // per-task cumulative busy seconds, keyed by TaskID string
}

// simEdgeTotals is one edge's summed cumulative channel counters.
type simEdgeTotals struct {
	accepted   uint64
	stallItems uint64
	popped     uint64
}

// scrapeDataplane samples the simulated data plane and feeds telemetry
// (one snapshot per adjustment interval). No-op without telemetry.
//
// Per-edge occupancy is what the channel counters attribute to the
// consumer's shared input queue plus the items currently stalled at
// that queue; capacity is QueueCapacityItems times the consumer's task
// count — an upper bound, since inbound edges of a vertex share the
// per-task queue. Channels of killed consumers are excluded from the
// occupancy walk (their residual attributed items never pop).
func (s *Sim) scrapeDataplane() {
	if s.cfg.Telemetry == nil {
		return
	}
	if s.dp == nil {
		s.dp = &simDataplane{
			prevEdges: make(map[model.EdgeKey]simEdgeTotals),
			prevBusy:  make(map[string]float64),
		}
	}
	dp := s.dp
	interval := s.now - dp.lastAt
	if interval <= 0 {
		interval = s.cfg.AdjustmentInterval
	}
	snap := obs.DataplaneSnapshot{
		At:              s.now,
		Layer:           "sim",
		IntervalSeconds: interval,
	}

	type edgeAcc struct {
		rings     int
		occupancy int64
		highWater int64
		totals    simEdgeTotals
	}
	edges := make(map[model.EdgeKey]*edgeAcc)
	for _, ch := range s.channels {
		ea := edges[ch.edge]
		if ea == nil {
			ea = &edgeAcc{}
			edges[ch.edge] = ea
		}
		ea.totals.accepted += uint64(ch.accepted)
		ea.totals.stallItems += uint64(ch.stallItems)
		ea.totals.popped += uint64(ch.popped)
		if ch.closed {
			continue
		}
		ea.rings++
		if occ := ch.accepted - ch.popped; occ > 0 {
			ea.occupancy += occ
		}
		for _, b := range ch.stalled {
			ea.occupancy += int64(len(b))
		}
		if ch.highWater > ea.highWater {
			ea.highWater = ch.highWater
		}
	}

	// Consumer busy fraction: per-vertex busy-second deltas over the
	// virtual interval, normalized by task count.
	busyNow := make(map[string]float64)
	vertexBusy := make(map[string]float64)
	for _, name := range s.vertexOrder {
		v := s.vertices[name]
		var busyDelta float64
		n := 0
		account := func(t *simTask) {
			n++
			id := t.id.String()
			busyNow[id] = t.busyAccum
			if prev, ok := dp.prevBusy[id]; ok && t.busyAccum >= prev {
				busyDelta += t.busyAccum - prev
			} else {
				busyDelta += t.busyAccum
			}
		}
		for _, t := range v.tasks {
			account(t)
		}
		for t := range v.draining {
			account(t)
		}
		if n > 0 {
			frac := busyDelta / (interval * float64(n))
			if frac > 1 {
				frac = 1
			}
			vertexBusy[name] = frac
		}
	}
	dp.prevBusy = busyNow

	for _, e := range s.cfg.Graph.Edges() {
		ek := e.Key()
		ea := edges[ek]
		if ea == nil {
			continue
		}
		prev := dp.prevEdges[ek]
		dp.prevEdges[ek] = ea.totals
		capacity := 0
		if v := s.vertices[ek.Target]; v != nil {
			capacity = s.cfg.QueueCapacityItems * len(v.tasks)
		}
		de := obs.DataplaneEdge{
			Edge:      ek.String(),
			Producer:  ek.Source,
			Consumer:  ek.Target,
			Rings:     ea.rings,
			Occupancy: int(ea.occupancy),
			Capacity:  capacity,
			HighWater: int(ea.highWater),
			Pushes:    ea.totals.accepted,
			PushFails: ea.totals.stallItems,
			Pops:      ea.totals.popped,
		}
		de.PushRate = counterRate(ea.totals.accepted, prev.accepted, interval)
		de.PopRate = counterRate(ea.totals.popped, prev.popped, interval)
		de.StallRate = counterRate(ea.totals.stallItems, prev.stallItems, interval)
		attempts := de.PushRate + de.StallRate
		if attempts > 0 {
			de.StallFrac = de.StallRate / attempts
		}
		if capacity > 0 {
			de.OccupancyFrac = float64(ea.occupancy) / float64(capacity)
		}
		if de.PopRate > 0 {
			de.RingWaitSeconds = float64(ea.occupancy) / de.PopRate
		}
		de.ConsumerBusy = vertexBusy[ek.Target]
		snap.Edges = append(snap.Edges, de)
	}
	dp.lastAt = s.now

	s.cfg.Telemetry.ObserveDataplane(snap, s.cfg.Recorder)
}

// counterRate is the clamped per-second delta of a cumulative counter.
func counterRate(cur, prev uint64, interval float64) float64 {
	if cur <= prev || interval <= 0 {
		return 0
	}
	return float64(cur-prev) / interval
}
