package sim

import (
	"math/rand"
	"testing"
)

// TestEventQueueOrdering pushes random timestamps (with deliberate
// duplicates) and checks that pops come out sorted by (at, seq): earliest
// time first, FIFO within equal times. This is the total-order contract
// that makes the 4-ary heap a drop-in replacement for any other heap
// shape.
func TestEventQueueOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var q eventQueue
	const n = 5000
	for i := 0; i < n; i++ {
		// Coarse timestamps force many ties to exercise the seq
		// tie-break.
		at := float64(rng.Intn(64))
		q.push(event{at: at, kind: evMeasure, n: int32(i)})
		// Interleave pops so the heap sees mixed push/pop traffic.
		if rng.Intn(4) == 0 {
			if _, ok := q.pop(); !ok {
				t.Fatal("pop from non-empty queue failed")
			}
		}
	}
	var prev event
	first := true
	popped := 0
	for {
		if at, ok := q.peekTime(); ok {
			ev, _ := q.pop()
			if ev.at != at {
				t.Fatalf("peekTime %v != popped at %v", at, ev.at)
			}
			if !first {
				if ev.at < prev.at {
					t.Fatalf("pop out of time order: %v after %v", ev.at, prev.at)
				}
				if ev.at == prev.at && ev.seq < prev.seq {
					t.Fatalf("FIFO violated at t=%v: seq %d after %d", ev.at, ev.seq, prev.seq)
				}
			}
			prev, first = ev, false
			popped++
			continue
		}
		break
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
	if popped == 0 {
		t.Fatal("queue drained nothing")
	}
}
