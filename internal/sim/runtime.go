package sim

import (
	"math"
	"math/rand"

	"nephelix/internal/model"
	"nephelix/internal/obs"
	"nephelix/internal/qos"
)

// simChannel is one producer→consumer communication path. Buffering
// happens in the producer's output gate; the channel carries batches,
// tracks stalls (backpressure) and owns the QoS channel reporter.
type simChannel struct {
	id   model.ChannelID
	edge model.EdgeKey
	// edgeName caches edge.String() so per-sample tracing does not
	// re-render (and re-allocate) the key on the hot path.
	edgeName string
	from     *simTask
	to       *simTask

	// stalled holds batches that arrived at a full consumer queue; the
	// producer is blocked while any batch is stalled.
	stalled [][]Item

	established bool
	closed      bool

	// lastArrive is the latest delivery time scheduled on this channel;
	// under processing guarantees every ship clamps to it so batches —
	// and in particular checkpoint barriers — never overtake earlier
	// ones (per-channel FIFO, the engine's channel ordering).
	lastArrive float64

	reporter *qos.ChannelReporter
	mgr      *qos.Manager

	// Data-plane mirror counters (plain int64: the simulator is
	// single-threaded). accepted and popped count items through the
	// consumer's queue attributed to this channel; stallItems counts
	// items that hit a full queue (a stalled batch is re-accepted — and
	// re-counted as accepted — once space frees). highWater tracks the
	// worst attributed occupancy. These feed scrapeDataplane so sim
	// attributions are comparable with the engine's ring counters, in
	// item units rather than the engine's batch units.
	accepted   int64
	popped     int64
	stallItems int64
	highWater  int64
}

// gateBuf is one output buffer within a gate.
type gateBuf struct {
	items    []Item
	bytes    int
	timerSet bool
	gen      uint64
	// pending marks a size/deadline-triggered flush deferred because the
	// producer is blocked in a send.
	pending bool
}

// outGate is a task's output side for one outgoing job edge. Following
// Nephele's design, round-robin and broadcast edges batch in a single
// producer-side buffer: a full (or due) buffer ships as one batch to the
// next consumer in rotation (round-robin) or to all consumers
// (broadcast). Key-based edges keep one buffer per consumer, since items
// are pinned to their key's partition.
type outGate struct {
	t       *simTask
	pos     int
	edge    model.EdgeKey
	pattern model.WiringPattern
	mode    BatchMode
	// bufferBytes is the flush threshold; deadline the adaptive flush
	// deadline (0 = instant, +Inf = size-only).
	bufferBytes int
	deadline    float64

	channels []*simChannel // active consumer channels
	rr       int
	rrInit   bool

	shared  *gateBuf                 // round-robin and broadcast edges
	perChan map[*simChannel]*gateBuf // key-based edges
}

// hasBacklog reports whether data is still buffered in the gate.
func (g *outGate) hasBacklog() bool {
	if g.shared != nil && len(g.shared.items) > 0 {
		return true
	}
	for _, b := range g.perChan {
		if len(b.items) > 0 {
			return true
		}
	}
	return false
}

// simTask is one task of the runtime graph: a single-server queueing
// station with an input queue and output gates per out-edge.
type simTask struct {
	id  model.TaskID
	vtx *simVertex
	// slot is the task's index in Sim.taskSlots (see event.tslot).
	slot int32

	behavior Behavior
	ctx      TaskContext

	// queue is the input queue (ring via head index).
	queue []Item
	qHead int

	busy     bool
	draining bool
	disposed bool
	// killed marks abrupt FaultPlan disposal (vs. graceful drain), so
	// late in-flight batches are accounted as fault losses.
	killed bool

	// blockedOut counts output channels with stalled batches; a task with
	// blockedOut > 0 is stuck in a send and processes nothing.
	blockedOut int
	// pendingOverhead is CPU debt (flush/receive costs) added to the next
	// service time.
	pendingOverhead float64

	gates []*outGate    // one per outgoing job edge
	in    []*simChannel // incoming channels

	// inflightIn counts batches in transit to this task; stalledInBatches
	// counts batches stalled on inbound channels.
	inflightIn       int
	stalledInBatches int

	// source state
	isSource       bool
	srcPendingEmit bool
	srcStopped     bool

	// rwPending holds consume times of sampled items awaiting the next
	// write (read-write task latency).
	rwPending []float64

	// svcItem and svcTime hold the item currently in service and its
	// service time; a task serves one item at a time, so the pending
	// evServiceDone event carries only the task.
	svcItem Item
	svcTime float64

	// timerInterval caches TimerBehavior.TimerInterval for evTimer
	// rescheduling.
	timerInterval float64

	// curSpan is the trace span of the item currently being processed
	// (or emitted, for sources); items emitted meanwhile inherit it.
	curSpan *obs.Span

	// Processing-guarantee state. srcLog is the source offset log (nil
	// for non-sources or when disabled); replaying suppresses stamping
	// during a replay re-emission. alignID/alignSeen/alignStart track
	// barrier alignment; pendingBarrier defers a barrier forward while
	// the task is blocked in a send. curSrc/curOff is the lineage of
	// the item being processed, inherited by its emissions.
	srcLog         *simSrcLog
	replaying      bool
	alignID        int64
	alignSeen      int
	alignStart     float64
	pendingBarrier int64
	curSrc         int32
	curOff         uint64

	reporter *qos.TaskReporter
	mgr      *qos.Manager

	// busyAccum integrates busy time for CPU-utilization reporting.
	busyAccum float64
}

// queueLen returns the current input queue length.
func (t *simTask) queueLen() int { return len(t.queue) - t.qHead }

// pushQueue appends an item to the input queue.
func (t *simTask) pushQueue(it Item) {
	t.queue = append(t.queue, it)
}

// popQueue removes the oldest queued item.
func (t *simTask) popQueue() Item {
	it := t.queue[t.qHead]
	if it.src != nil {
		it.src.popped++
	}
	t.queue[t.qHead] = Item{} // release Origins references
	t.qHead++
	if t.qHead > 1024 && t.qHead*2 >= len(t.queue) {
		n := copy(t.queue, t.queue[t.qHead:])
		t.queue = t.queue[:n]
		t.qHead = 0
	}
	return it
}

// TaskContext is the API surface a Behavior sees while processing.
type TaskContext struct {
	s *Sim
	t *simTask
}

// Now returns the current virtual time in seconds.
func (c *TaskContext) Now() float64 { return c.s.now }

// Rand returns the simulation's deterministic random source.
func (c *TaskContext) Rand() *rand.Rand { return c.s.rng }

// TaskIndex returns the task's index within its vertex.
func (c *TaskContext) TaskIndex() int { return c.t.id.Index }

// Parallelism returns the vertex's current number of active tasks.
func (c *TaskContext) Parallelism() int { return len(c.t.vtx.tasks) }

// Emit sends an item along the task's edgeIdx-th outgoing job edge
// (ordered as in JobGraph.OutEdges). The wiring pattern of the edge
// selects the consumer(s).
func (c *TaskContext) Emit(edgeIdx int, it Item) {
	c.s.emit(c.t, edgeIdx, it)
}

// OutEdges returns the number of outgoing job edges.
func (c *TaskContext) OutEdges() int { return len(c.t.gates) }

// emit routes an item from task t into its edgeIdx-th output gate.
func (s *Sim) emit(t *simTask, edgeIdx int, it Item) {
	if edgeIdx < 0 || edgeIdx >= len(t.gates) {
		s.fail("emit on invalid edge index %d from %s", edgeIdx, t.id)
		return
	}
	// A write completes read-write latency measurements.
	if len(t.rwPending) > 0 {
		for _, tc := range t.rwPending {
			t.reporter.RecordTaskLatency(s.now - tc)
		}
		t.rwPending = t.rwPending[:0]
	}
	g := t.gates[edgeIdx]
	if len(g.channels) == 0 {
		return // all consumers gone (drained); drop
	}
	if s.guar != nil {
		if t.isSource {
			if l := t.srcLog; l != nil && !t.replaying {
				it.Src = l.id
				it.Offset = l.next()
				stored := it
				stored.src = nil
				stored.span = nil // the log must not pin trace spans
				l.buf = append(l.buf, replayItem{it: stored, edge: int8(edgeIdx)})
			}
		} else {
			it.Src = t.curSrc
			it.Offset = t.curOff
		}
	}
	it.BufferTime = s.now
	it.src = nil
	if it.span == nil {
		// Inherit the span of the item being processed (or of the traced
		// source emission), so derived items keep the trace alive.
		it.span = t.curSpan
	}

	var buf *gateBuf
	if g.pattern == model.PatternKeyBased {
		ch := g.channels[int(mix64(it.Key)%uint64(len(g.channels)))]
		buf = g.perChan[ch]
		if buf == nil {
			buf = &gateBuf{}
			g.perChan[ch] = buf
		}
		s.appendToBuf(g, buf, ch, it)
		return
	}
	buf = g.shared
	s.appendToBuf(g, buf, nil, it)
}

// appendToBuf adds an item to a gate buffer and triggers flushes. ch is
// the pinned consumer for key-based buffers, nil for shared buffers.
func (s *Sim) appendToBuf(g *outGate, buf *gateBuf, ch *simChannel, it Item) {
	buf.items = append(buf.items, it)
	buf.bytes += int(it.Size)
	switch {
	case g.mode == BatchInstant || g.deadline <= 0:
		s.flushBuf(g, buf, ch)
	case buf.bytes >= g.bufferBytes:
		s.flushBuf(g, buf, ch)
	case !math.IsInf(g.deadline, 1) && !buf.timerSet:
		s.armFlushTimer(g, buf, ch, buf.items[0].BufferTime+g.deadline)
	}
}

// armFlushTimer schedules a deadline flush check for a gate buffer.
func (s *Sim) armFlushTimer(g *outGate, buf *gateBuf, ch *simChannel, at float64) {
	buf.timerSet = true
	i := s.allocOp()
	s.ops[i] = evOp{g: g, buf: buf, ch: ch, gen: buf.gen}
	s.q.push(event{at: at, kind: evFlushTimer, n: i})
}

// flushTimerFire runs one deadline flush check; gen detects buffers
// flushed (or re-filled) since the timer was armed.
func (s *Sim) flushTimerFire(g *outGate, buf *gateBuf, ch *simChannel, gen uint64) {
	buf.timerSet = false
	if buf.gen != gen || len(buf.items) == 0 || g.t.disposed {
		return
	}
	due := buf.items[0].BufferTime + g.deadline
	if s.now+1e-12 >= due {
		s.flushBuf(g, buf, ch)
		return
	}
	s.armFlushTimer(g, buf, ch, due)
}

// mix64 is a splitmix64 finalizer used for key partitioning.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// flushBuf ships a gate buffer: to the next consumer in rotation
// (round-robin), to its pinned consumer (key-based), or to every consumer
// (broadcast). A blocked producer defers the flush until it resumes.
func (s *Sim) flushBuf(g *outGate, buf *gateBuf, pinned *simChannel) {
	if len(buf.items) == 0 {
		return
	}
	if g.t.blockedOut > 0 {
		// The producer is stuck in a send; ship once it resumes.
		buf.pending = true
		return
	}
	batch := buf.items
	buf.items = s.getBatch() // detach; refill from the free list
	buf.bytes = 0
	buf.gen++
	buf.pending = false

	bytes := 0
	for i := range batch {
		batch[i].ShipTime = s.now
		bytes += int(batch[i].Size)
	}

	switch {
	case pinned != nil:
		s.ship(pinned, batch, bytes)
	case g.pattern == model.PatternBroadcast:
		for i, ch := range g.channels {
			if i == len(g.channels)-1 {
				s.ship(ch, batch, bytes) // last consumer takes the original
			} else {
				cp := append(s.getBatch(), batch...)
				s.ship(ch, cp, bytes)
			}
		}
	default: // round-robin: the whole batch goes to the next consumer
		if !g.rrInit {
			// (Re-)start the rotation at a random offset. Without this,
			// producers sweep their consumers in near-lockstep — and
			// after a scale-up appends the same consumers to every gate,
			// all rotation phases cluster inside the old index range,
			// hitting each new consumer with synchronized waves. The
			// offset is re-drawn on every consumer-set change.
			g.rr = s.rng.Intn(len(g.channels))
			g.rrInit = true
		}
		if g.rr >= len(g.channels) {
			g.rr = 0
		}
		ch := g.channels[g.rr]
		g.rr = (g.rr + 1) % len(g.channels)
		s.ship(ch, batch, bytes)
	}
}

// ship charges the producer the flush CPU cost and schedules delivery
// after the network transit time.
func (s *Sim) ship(ch *simChannel, batch []Item, bytes int) {
	ch.from.pendingOverhead += s.cfg.Costs.FlushCPU
	transit := s.cfg.Costs.NetFixed + s.cfg.Costs.NetPerByte*float64(bytes)
	if !ch.established {
		transit += s.cfg.Costs.TCPSetup
		ch.established = true
	}
	at := s.now + transit
	if s.guar != nil {
		// Per-channel FIFO: a later ship (e.g. a tiny barrier batch)
		// must not overtake an earlier, larger one.
		if at < ch.lastArrive {
			at = ch.lastArrive
		}
		ch.lastArrive = at
	}
	ch.to.inflightIn++
	i := s.allocOp()
	s.ops[i] = evOp{ch: ch, batch: batch}
	s.q.push(event{at: at, kind: evDeliver, n: i})
}

// flushGate flushes everything buffered in a gate (drain support).
// Keyed buffers flush in channel-id order for run determinism.
func (s *Sim) flushGate(g *outGate) {
	if g.shared != nil && len(g.shared.items) > 0 {
		s.flushBuf(g, g.shared, nil)
	}
	for _, ch := range sortedKeyedChannels(g.perChan) {
		if buf := g.perChan[ch]; len(buf.items) > 0 {
			s.flushBuf(g, buf, ch)
		}
	}
}

// flushPendingGates ships buffers whose flush was deferred by a blocked
// producer (keyed buffers in channel-id order for determinism).
func (s *Sim) flushPendingGates(t *simTask) {
	for _, g := range t.gates {
		if g.shared != nil && g.shared.pending {
			s.flushBuf(g, g.shared, nil)
		}
		for _, ch := range sortedKeyedChannels(g.perChan) {
			if buf := g.perChan[ch]; buf.pending {
				s.flushBuf(g, buf, ch)
			}
		}
	}
}

// deliver attempts to enqueue a batch at the consumer; a full queue
// stalls the batch and blocks the producer (backpressure).
func (s *Sim) deliver(ch *simChannel, batch []Item) {
	ch.to.inflightIn--
	if ch.to.disposed {
		// The consumer is gone: finished draining before the batch
		// arrived, or killed by a fault. Account accordingly (barrier
		// markers are control traffic, not lost records).
		if ch.to.killed {
			s.killedItems += dataItems(batch)
		} else {
			s.droppedItems += dataItems(batch)
		}
		s.recycleBatch(batch)
		return
	}
	if s.cfg.QueueCapacityItems-ch.to.queueLen() < len(batch) {
		if len(ch.stalled) == 0 {
			ch.from.blockedOut++
		}
		ch.stalled = append(ch.stalled, batch)
		ch.to.stalledInBatches++
		ch.stallItems += int64(len(batch))
		return
	}
	s.acceptBatch(ch, batch)
}

// acceptBatch enqueues a delivered batch and kicks the consumer.
func (s *Sim) acceptBatch(ch *simChannel, batch []Item) {
	to := ch.to
	to.pendingOverhead += s.cfg.Costs.ReceiveCPU
	for i := range batch {
		batch[i].src = ch
		batch[i].arrive = s.now
		if batch[i].barrier == 0 {
			// Barrier markers skip arrival accounting: they are not
			// workload and must not skew the QoS plane's rates.
			to.reporter.RecordArrival(s.now)
		}
		to.pushQueue(batch[i])
	}
	ch.accepted += int64(len(batch))
	if occ := ch.accepted - ch.popped; occ > ch.highWater {
		ch.highWater = occ
	}
	s.recycleBatch(batch) // items copied into the queue; reuse the array
	s.maybeStart(to)
}

// retryStalled re-attempts stalled deliveries on the consumer's inbound
// channels after queue space freed up.
func (s *Sim) retryStalled(to *simTask) {
	if to.stalledInBatches == 0 {
		return
	}
	for _, ch := range to.in {
		for len(ch.stalled) > 0 {
			batch := ch.stalled[0]
			if s.cfg.QueueCapacityItems-to.queueLen() < len(batch) {
				return
			}
			ch.stalled[0] = nil
			ch.stalled = ch.stalled[1:]
			to.stalledInBatches--
			s.acceptBatch(ch, batch)
			if len(ch.stalled) == 0 {
				ch.from.blockedOut--
				s.resume(ch.from)
			}
		}
	}
}

// resume wakes a producer whose last stalled batch was delivered.
func (s *Sim) resume(t *simTask) {
	if t.blockedOut > 0 || t.disposed {
		return
	}
	s.flushPendingGates(t)
	if t.blockedOut > 0 {
		return // the pending flush stalled again immediately
	}
	if id := t.pendingBarrier; id != 0 {
		// A barrier forward deferred while the task was blocked in a
		// send; it must ship before any new emission so the cut stays
		// consistent.
		t.pendingBarrier = 0
		if g := s.guar; g != nil && g.inflight != nil && g.inflight.id == id {
			s.forwardBarrier(t, id)
		}
	}
	if t.isSource {
		if t.srcPendingEmit && !t.srcStopped {
			t.srcPendingEmit = false
			s.sourceEmit(t)
		}
		return
	}
	s.maybeStart(t)
}

// maybeStart begins servicing the next queued item if the task is idle
// and unblocked; it also finalizes draining tasks.
func (s *Sim) maybeStart(t *simTask) {
	if t.busy || t.disposed || t.blockedOut > 0 || t.isSource {
		return
	}
	// Barrier markers at the queue head are consumed by the alignment
	// logic at zero service cost; every pre-barrier item of the
	// barrier's producer was queued — and therefore serviced — first.
	for t.queueLen() > 0 && t.queue[t.qHead].barrier != 0 {
		it := t.popQueue()
		s.handleBarrier(t, it.barrier)
		if t.busy || t.disposed || t.blockedOut > 0 {
			return
		}
	}
	if t.queueLen() == 0 {
		if t.draining {
			s.tryDispose(t)
		}
		return
	}
	// Park the item on the task before the ServiceTime interface call:
	// passing a pointer to a stack local through the interface would
	// force a per-item heap allocation.
	t.svcItem = t.popQueue()
	it := &t.svcItem
	if it.src != nil && it.src.reporter != nil {
		it.src.reporter.RecordTransfer(s.now-it.BufferTime, it.ShipTime-it.BufferTime)
	}
	st := t.behavior.ServiceTime(s.rng, it) + t.pendingOverhead
	t.pendingOverhead = 0
	if st < 0 {
		st = 0
	}
	// Mark busy before retrying stalled deliveries: acceptBatch calls
	// back into maybeStart, which must not start a second concurrent
	// service on this task.
	t.busy = true
	t.svcTime = st
	s.q.push(event{at: s.now + st, kind: evServiceDone, tslot: t.slot})
	s.retryStalled(t)
}

// latencyModeRW reports whether the task's vertex uses read-write task
// latency.
func (t *simTask) latencyModeRW() bool {
	return t.vtx.jv.LatencyMode == model.LatencyReadWrite
}

// serviceDone finishes the item in service on t: records metrics, runs
// the behavior, and starts the next item.
func (s *Sim) serviceDone(t *simTask) {
	it := t.svcItem
	st := t.svcTime
	t.svcItem = Item{} // release Origins/span references
	if t.disposed {
		// The task was killed mid-service; the in-progress item dies
		// with it.
		s.killedItems++
		return
	}
	t.busy = false
	t.busyAccum += st
	t.vtx.processed++
	t.reporter.RecordService(st)
	if t.latencyModeRW() {
		if it.Sampled && len(t.rwPending) < 64 {
			t.rwPending = append(t.rwPending, s.now-st)
		}
	} else {
		t.reporter.RecordTaskLatency(st)
	}
	if it.span != nil && it.src != nil {
		// Decompose the hop into the Table I latency pieces: time spent in
		// the producer's output buffer, network transit, queue wait at this
		// task, and the service time itself.
		batchDelay := it.ShipTime - it.BufferTime
		transit := it.arrive - it.ShipTime
		wait := (s.now - st) - it.arrive
		it.span.Hop(t.vtx.jv.Name, it.src.edgeName, batchDelay, transit, wait, st)
		s.cfg.Telemetry.ObserveHop(s.now, t.vtx.jv.Name, it.src.edgeName, batchDelay, transit, wait, st)
		if len(t.gates) == 0 {
			it.span.Finish(s.now)
			s.cfg.Telemetry.ObserveE2E(s.now, s.now-it.span.Start())
		}
	}
	if g := s.guar; g != nil && len(t.gates) == 0 && it.Src != 0 {
		// Sink dedup: replays re-deliver records that already arrived
		// before the crash. Detection runs at every guarantee level;
		// suppression (skipping Process) only under exactly-once.
		if d := g.dedups[t.vtx.jv.Name]; d != nil && !d.Admit(it.Src, it.Offset) {
			s.cfg.Telemetry.AddDeduped(s.now, 1)
			if g.suppress {
				s.maybeStart(t)
				return
			}
		}
	}
	t.curSrc, t.curOff = it.Src, it.Offset
	t.curSpan = it.span
	t.behavior.Process(&t.ctx, it)
	t.curSpan = nil
	t.curSrc, t.curOff = 0, 0
	s.maybeStart(t)
}

// tryDispose finalizes a fully drained task. Partial output buffers are
// force-flushed so a draining task cannot hang on a never-filling fixed
// buffer.
func (s *Sim) tryDispose(t *simTask) {
	if t.disposed || !t.draining || t.busy || t.queueLen() > 0 || t.inflightIn > 0 || t.stalledInBatches > 0 {
		return
	}
	for _, g := range t.gates {
		if g.hasBacklog() {
			s.flushGate(g)
		}
	}
	if t.blockedOut > 0 {
		return // stalled outgoing batches must deliver first
	}
	for _, g := range t.gates {
		if g.hasBacklog() {
			return // a deferred flush is still pending
		}
	}
	t.disposed = true
	t.vtx.finalizeRemoval(t)
}
