package sim

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"nephelix/internal/core"
	"nephelix/internal/model"
	"nephelix/internal/workload"
)

// testServer is a configurable server behavior: exponential or
// deterministic service, forwarding downstream or recording end-to-end
// latency at the sequence end.
type testServer struct {
	mean        float64
	exponential bool
	probe       *Probe
}

func (b *testServer) ServiceTime(rng *rand.Rand, _ *Item) float64 {
	if b.exponential {
		return rng.ExpFloat64() * b.mean
	}
	return b.mean
}

func (b *testServer) Process(ctx *TaskContext, it Item) {
	if ctx.OutEdges() > 0 {
		ctx.Emit(0, it)
		return
	}
	if b.probe != nil && it.Sampled {
		b.probe.Record(ctx.Now() - it.EmitTime)
	}
}

// lightCosts removes data-plane overheads so queueing formulas apply
// exactly.
func lightCosts() CostModel {
	return CostModel{FlushCPU: 1e-9, ReceiveCPU: 1e-9, NetFixed: 1e-7, NetPerByte: 0, TCPSetup: 0}
}

// pipelineConfig builds src(1) -> server(p) -> sink(1) with the given
// service behavior and schedule.
func pipelineConfig(t *testing.T, probes *ProbeSet, sched workload.Schedule, poisson bool, serverP int, newServer func(int) Behavior) Config {
	t.Helper()
	g := model.NewJobGraph()
	for _, v := range []model.JobVertex{
		{Name: "src", Parallelism: 1},
		{Name: "server", Parallelism: serverP, MinParallelism: 1, MaxParallelism: 64},
		{Name: "sink", Parallelism: 1},
	} {
		if err := g.AddVertex(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge("src", "server", model.PatternRoundRobin); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("server", "sink", model.PatternRoundRobin); err != nil {
		t.Fatal(err)
	}
	sink := probes.Probe("e2e")
	return Config{
		Graph: g,
		Vertices: map[string]VertexConfig{
			"src": {
				Source: &SourceConfig{
					Schedule: sched,
					EmitCost: 1e-9,
					Poisson:  poisson,
					Emit: func(ctx *TaskContext, now float64) {
						ctx.Emit(0, Item{EmitTime: now, Size: 64, Sampled: ctx.Sample()})
					},
				},
				SampleProbability: 1,
			},
			"server": {NewBehavior: newServer},
			"sink":   {NewBehavior: func(int) Behavior { return &testServer{mean: 1e-9, probe: sink} }},
		},
		Edges: map[model.EdgeKey]EdgeConfig{
			{Source: "src", Target: "server"}:  {Mode: BatchInstant},
			{Source: "server", Target: "sink"}: {Mode: BatchInstant},
		},
		Costs:        lightCosts(),
		WorkerNodes:  40,
		SlotsPerNode: 4,
		Seed:         1,
	}
}

// TestSimMM1 validates the simulator's queueing behavior against the
// M/M/1 closed form: sojourn time T = 1/(μ−λ).
func TestSimMM1(t *testing.T) {
	probes := NewProbeSet()
	cfg := pipelineConfig(t, probes,
		&workload.ConstantSchedule{RatePerSecond: 80, Length: 300}, true, 1,
		func(int) Behavior { return &testServer{mean: 0.010, exponential: true} })
	s, err := New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// ρ = 0.8, W = ρ/(μ−λ) = 40 ms, T = W + S = 50 ms.
	got := res.Probes["e2e"].Mean
	if math.Abs(got-0.050) > 0.010 {
		t.Errorf("M/M/1 sojourn: got %.4f s, want 0.050 ± 0.010", got)
	}
	if res.DroppedItems != 0 {
		t.Errorf("dropped items: %d", res.DroppedItems)
	}
}

// TestSimMD1 validates against M/D/1: W = ρ/(2(μ−λ)) = 20 ms.
func TestSimMD1(t *testing.T) {
	probes := NewProbeSet()
	cfg := pipelineConfig(t, probes,
		&workload.ConstantSchedule{RatePerSecond: 80, Length: 300}, true, 1,
		func(int) Behavior { return &testServer{mean: 0.010} })
	s, err := New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := res.Probes["e2e"].Mean
	if math.Abs(got-0.030) > 0.006 {
		t.Errorf("M/D/1 sojourn: got %.4f s, want 0.030 ± 0.006", got)
	}
}

// TestSimLowLoadLatency: at 1% utilization the end-to-end latency is
// essentially the service time plus network transit.
func TestSimLowLoadLatency(t *testing.T) {
	probes := NewProbeSet()
	cfg := pipelineConfig(t, probes,
		&workload.ConstantSchedule{RatePerSecond: 1, Length: 120}, false, 1,
		func(int) Behavior { return &testServer{mean: 0.010} })
	s, err := New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := res.Probes["e2e"].Mean
	if got < 0.010 || got > 0.012 {
		t.Errorf("idle latency: got %.4f s, want ≈ 0.010", got)
	}
}

// TestSimBackpressure: offered load twice the capacity throttles the
// source to the service rate (attempted > effective).
func TestSimBackpressure(t *testing.T) {
	probes := NewProbeSet()
	cfg := pipelineConfig(t, probes,
		&workload.ConstantSchedule{RatePerSecond: 200, Length: 60}, false, 1,
		func(int) Behavior { return &testServer{mean: 0.010} })
	cfg.QueueCapacityItems = 50
	s, err := New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Capacity is 100 items/s; 60 s yields ≈ 6000 processed + queue.
	emitted := res.Emitted["src"]
	if emitted > 6600 || emitted < 5500 {
		t.Errorf("backpressured emissions: got %d, want ≈ 6000 (capacity-bound)", emitted)
	}
	// The time series must show effective < attempted in steady state.
	if len(res.Rows) < 3 {
		t.Fatalf("too few rows: %d", len(res.Rows))
	}
	last := res.Rows[len(res.Rows)-1]
	if last.Effective["src"] >= last.Attempted["src"]*0.8 {
		t.Errorf("no throttling visible: eff=%.1f att=%.1f", last.Effective["src"], last.Attempted["src"])
	}
	if res.DroppedItems != 0 {
		t.Errorf("backpressure must not drop items, dropped %d", res.DroppedItems)
	}
}

// TestSimBatchingModes: fixed 16 KiB buffers deliver far higher latency
// than instant flushing at a low rate, while both deliver the items.
func TestSimBatchingModes(t *testing.T) {
	run := func(mode BatchMode) *Result {
		probes := NewProbeSet()
		cfg := pipelineConfig(t, probes,
			&workload.ConstantSchedule{RatePerSecond: 100, Length: 120}, false, 1,
			func(int) Behavior { return &testServer{mean: 0.001} })
		cfg.Edges[model.EdgeKey{Source: "src", Target: "server"}] = EdgeConfig{Mode: mode}
		cfg.Edges[model.EdgeKey{Source: "server", Target: "sink"}] = EdgeConfig{Mode: mode}
		s, err := New(cfg, probes)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	instant := run(BatchInstant)
	fixed := run(BatchFixedBuffer)
	li, lf := instant.Probes["e2e"].Mean, fixed.Probes["e2e"].Mean
	// 16 KiB / 64 B = 256 items per batch at 100 items/s ≈ 2.56 s fill
	// time; mean buffer wait ≈ 1.3 s per edge.
	if lf < li*50 {
		t.Errorf("fixed-buffer latency %.4f not ≫ instant latency %.6f", lf, li)
	}
	if lf < 1.0 || lf > 6.0 {
		t.Errorf("fixed-buffer latency %.3f s outside the expected 16KiB-fill range", lf)
	}
}

// TestSimAdaptiveBatchingMeetsConstraint: with a 20 ms constraint the QoS
// plane sets flush deadlines that keep mean latency within the bound at
// moderate load, while latency stays well above instant-flush levels
// (i.e. batching happens).
func TestSimAdaptiveBatchingMeetsConstraint(t *testing.T) {
	probes := NewProbeSet()
	cfg := pipelineConfig(t, probes,
		&workload.ConstantSchedule{RatePerSecond: 200, Length: 180}, false, 4,
		func(int) Behavior { return &testServer{mean: 0.010} }) // ρ = 0.5 per task
	cfg.Edges[model.EdgeKey{Source: "src", Target: "server"}] = EdgeConfig{Mode: BatchAdaptive}
	cfg.Edges[model.EdgeKey{Source: "server", Target: "sink"}] = EdgeConfig{Mode: BatchAdaptive}
	seq, err := model.ParseSequence(cfg.Graph, "src->server", "server", "server->sink")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Constraints = []*model.Constraint{{
		Name: "c20", Sequence: seq, Bound: 20 * time.Millisecond, Window: 10 * time.Second,
	}}
	probes.SetBound("e2e", 0.020)
	s, err := New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	e2e := res.Probes["e2e"]
	if e2e.Mean > 0.020 {
		t.Errorf("constraint violated: mean %.4f s > 0.020", e2e.Mean)
	}
	// Batching must add visible latency over the bare service time.
	if e2e.Mean < 0.011 {
		t.Errorf("no batching visible: mean %.4f s ≈ service time", e2e.Mean)
	}
	if e2e.Fulfillment < 0.8 {
		t.Errorf("fulfillment %.2f too low", e2e.Fulfillment)
	}
}

// TestSimElasticScalesUpAndDown drives a step load through an elastic
// vertex: parallelism must rise under load and fall back afterwards.
func TestSimElasticScalesUpAndDown(t *testing.T) {
	probes := NewProbeSet()
	sched := &workload.StepSchedule{
		WarmUpRate:     40,
		StepDelta:      160,
		IncrementSteps: 2,
		StepDuration:   60,
	}
	cfg := pipelineConfig(t, probes, sched, false, 4,
		func(int) Behavior { return &testServer{mean: 0.010, exponential: true} })
	cfg.Edges[model.EdgeKey{Source: "src", Target: "server"}] = EdgeConfig{Mode: BatchAdaptive}
	cfg.Edges[model.EdgeKey{Source: "server", Target: "sink"}] = EdgeConfig{Mode: BatchAdaptive}
	seq, err := model.ParseSequence(cfg.Graph, "src->server", "server", "server->sink")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Constraints = []*model.Constraint{{
		Name: "c30", Sequence: seq, Bound: 30 * time.Millisecond, Window: 10 * time.Second,
	}}
	probes.SetBound("e2e", 0.030)
	cfg.Elastic = true
	cfg.Scaler = core.DefaultScalerConfig()
	s, err := New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Peak rate 360/s at S = 10 ms needs ≥ 4 busy servers; the scaler
	// must grow beyond the warm-up level and shrink again afterwards.
	if res.PeakParallelism["server"] < 5 {
		t.Errorf("peak parallelism: got %d, want ≥ 5", res.PeakParallelism["server"])
	}
	if res.FinalParallelism["server"] >= res.PeakParallelism["server"] {
		t.Errorf("no scale-down: final %d, peak %d", res.FinalParallelism["server"], res.PeakParallelism["server"])
	}
	if res.ScaleUps == 0 || res.ScaleDowns == 0 {
		t.Errorf("scaling activity: ups=%d downs=%d", res.ScaleUps, res.ScaleDowns)
	}
	if res.DroppedItems != 0 {
		t.Errorf("scaling dropped %d items", res.DroppedItems)
	}
}

// TestSimDeterminism: identical seeds give identical traces.
func TestSimDeterminism(t *testing.T) {
	run := func(seed int64) *Result {
		probes := NewProbeSet()
		cfg := pipelineConfig(t, probes,
			&workload.ConstantSchedule{RatePerSecond: 100, Length: 60}, true, 2,
			func(int) Behavior { return &testServer{mean: 0.01, exponential: true} })
		cfg.Seed = seed
		s, err := New(cfg, probes)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b, c := run(7), run(7), run(8)
	if a.Emitted["src"] != b.Emitted["src"] || a.Probes["e2e"].Mean != b.Probes["e2e"].Mean {
		t.Error("same seed produced different results")
	}
	if a.Emitted["src"] == c.Emitted["src"] && a.Probes["e2e"].Mean == c.Probes["e2e"].Mean {
		t.Error("different seed produced identical results")
	}
}

// TestSimConfigValidation covers config errors.
func TestSimConfigValidation(t *testing.T) {
	if _, err := New(Config{}, nil); err == nil {
		t.Error("empty config accepted")
	}
	g := model.NewJobGraph()
	if err := g.AddVertex(model.JobVertex{Name: "only", Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	// Vertex without VertexConfig.
	if _, err := New(Config{Graph: g}, nil); err == nil {
		t.Error("missing vertex config accepted")
	}
	// Vertex with both Source and Behavior.
	cfg := Config{Graph: g, Vertices: map[string]VertexConfig{
		"only": {
			Source:      &SourceConfig{Schedule: &workload.ConstantSchedule{RatePerSecond: 1, Length: 1}},
			NewBehavior: func(int) Behavior { return &testServer{} },
		},
	}}
	if _, err := New(cfg, nil); err == nil {
		t.Error("vertex with source and behavior accepted")
	}
}

// TestSimTimerBehavior checks that window-style behaviors emit on their
// interval and read-write latency is recorded.
type windowCollector struct {
	count int
	probe *Probe
}

func (w *windowCollector) ServiceTime(*rand.Rand, *Item) float64 { return 1e-6 }

func (w *windowCollector) Process(_ *TaskContext, it Item) {
	w.count++
}

func (w *windowCollector) TimerInterval() float64 { return 0.2 }

func (w *windowCollector) OnTimer(ctx *TaskContext) {
	if w.count == 0 {
		return
	}
	out := Item{EmitTime: ctx.Now(), Size: 128}
	w.count = 0
	if ctx.OutEdges() > 0 {
		ctx.Emit(0, out)
	}
}

func TestSimTimerBehavior(t *testing.T) {
	probes := NewProbeSet()
	sink := probes.Probe("windows")
	g := model.NewJobGraph()
	for _, v := range []model.JobVertex{
		{Name: "src", Parallelism: 1},
		{Name: "win", Parallelism: 1, LatencyMode: model.LatencyReadWrite},
		{Name: "sink", Parallelism: 1},
	} {
		if err := g.AddVertex(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge("src", "win", model.PatternRoundRobin); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("win", "sink", model.PatternRoundRobin); err != nil {
		t.Fatal(err)
	}
	var receivedWindows int
	cfg := Config{
		Graph: g,
		Vertices: map[string]VertexConfig{
			"src": {Source: &SourceConfig{
				Schedule: &workload.ConstantSchedule{RatePerSecond: 100, Length: 30},
				EmitCost: 1e-9,
				Emit: func(ctx *TaskContext, now float64) {
					ctx.Emit(0, Item{EmitTime: now, Size: 64})
				},
			}},
			"win": {NewBehavior: func(int) Behavior { return &windowCollector{} }},
			"sink": {NewBehavior: func(int) Behavior {
				return behaviorFunc(func(ctx *TaskContext, it Item) {
					receivedWindows++
					sink.Record(ctx.Now() - it.EmitTime)
				})
			}},
		},
		Edges: map[model.EdgeKey]EdgeConfig{
			{Source: "src", Target: "win"}:  {Mode: BatchInstant},
			{Source: "win", Target: "sink"}: {Mode: BatchInstant},
		},
		Costs:        lightCosts(),
		WorkerNodes:  4,
		SlotsPerNode: 4,
		Seed:         3,
	}
	s, err := New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// 30 s of 0.2 s windows ≈ 150 emissions (minus ramp effects).
	if receivedWindows < 100 || receivedWindows > 160 {
		t.Errorf("window emissions: got %d, want ≈ 150", receivedWindows)
	}
}

// behaviorFunc adapts a function to the Behavior interface (fixed tiny
// service time).
type behaviorFunc func(ctx *TaskContext, it Item)

func (behaviorFunc) ServiceTime(*rand.Rand, *Item) float64 { return 1e-6 }
func (f behaviorFunc) Process(ctx *TaskContext, it Item)   { f(ctx, it) }
