package sim

import (
	"math/rand"
	"testing"
	"time"

	"nephelix/internal/core"
	"nephelix/internal/model"
	"nephelix/internal/workload"
)

// keyTracker records which task index served each key.
type keyTracker struct {
	owners map[uint64]int
	bad    *int
	index  int
}

func (k *keyTracker) ServiceTime(*rand.Rand, *Item) float64 { return 1e-4 }

func (k *keyTracker) Process(ctx *TaskContext, it Item) {
	if prev, ok := k.owners[it.Key]; ok && prev != ctx.TaskIndex() {
		*k.bad++
	}
	k.owners[it.Key] = ctx.TaskIndex()
	if ctx.OutEdges() > 0 {
		ctx.Emit(0, it)
	}
}

// TestSimKeyBasedRouting: a key always lands on the same consumer task.
func TestSimKeyBasedRouting(t *testing.T) {
	probes := NewProbeSet()
	cfg := pipelineConfig(t, probes,
		&workload.ConstantSchedule{RatePerSecond: 400, Length: 30}, false, 4,
		nil)
	bad := 0
	shared := map[uint64]int{} // global key→owner across task instances
	cfg.Vertices["server"] = VertexConfig{NewBehavior: func(i int) Behavior {
		return &keyTracker{owners: shared, bad: &bad, index: i}
	}}
	cfg.Edges[model.EdgeKey{Source: "src", Target: "server"}] = EdgeConfig{Mode: BatchAdaptive}
	// Emit 32 distinct keys.
	n := uint64(0)
	cfg.Vertices["src"].Source.Emit = func(ctx *TaskContext, now float64) {
		n++
		ctx.Emit(0, Item{EmitTime: now, Size: 64, Key: n % 32})
	}
	cfg.Graph.Edge(model.EdgeKey{Source: "src", Target: "server"}).Pattern = model.PatternKeyBased
	s, err := New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Errorf("%d key ownership violations", bad)
	}
	if len(shared) != 32 {
		t.Errorf("keys observed: %d, want 32", len(shared))
	}
}

// TestSimScaleDownNoLoss: forced scale-downs under live traffic deliver
// every item (drain semantics).
func TestSimScaleDownNoLoss(t *testing.T) {
	probes := NewProbeSet()
	sched := &workload.StepSchedule{WarmUpRate: 100, StepDelta: 400, IncrementSteps: 1, StepDuration: 30}
	cfg := pipelineConfig(t, probes, sched, false, 4,
		func(int) Behavior { return &testServer{mean: 0.004, exponential: true} })
	cfg.Edges[model.EdgeKey{Source: "src", Target: "server"}] = EdgeConfig{Mode: BatchAdaptive}
	cfg.Edges[model.EdgeKey{Source: "server", Target: "sink"}] = EdgeConfig{Mode: BatchAdaptive}
	seq, err := model.ParseSequence(cfg.Graph, "src->server", "server", "server->sink")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Constraints = []*model.Constraint{{
		Name: "c", Sequence: seq, Bound: 25 * time.Millisecond, Window: 10 * time.Second,
	}}
	cfg.Elastic = true
	cfg.Scaler = core.DefaultScalerConfig()
	s, err := New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ScaleDowns == 0 {
		t.Skip("no scale-down occurred; nothing to verify") // schedule-dependent
	}
	if res.DroppedItems != 0 {
		t.Errorf("scale-down dropped %d items", res.DroppedItems)
	}
}

// TestSimPoolExhaustion: scale-ups clip at the worker pool and the run
// keeps going.
func TestSimPoolExhaustion(t *testing.T) {
	probes := NewProbeSet()
	cfg := pipelineConfig(t, probes,
		&workload.ConstantSchedule{RatePerSecond: 2000, Length: 60}, false, 2,
		func(int) Behavior { return &testServer{mean: 0.01} })
	cfg.Edges[model.EdgeKey{Source: "src", Target: "server"}] = EdgeConfig{Mode: BatchAdaptive}
	cfg.Edges[model.EdgeKey{Source: "server", Target: "sink"}] = EdgeConfig{Mode: BatchAdaptive}
	seq, err := model.ParseSequence(cfg.Graph, "src->server", "server", "server->sink")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Constraints = []*model.Constraint{{
		Name: "c", Sequence: seq, Bound: 30 * time.Millisecond, Window: 10 * time.Second,
	}}
	cfg.Elastic = true
	cfg.Scaler = core.DefaultScalerConfig()
	cfg.WorkerNodes = 2 // 2 × 4 slots; src+sink already take 2
	s, err := New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PoolExhausted == 0 {
		t.Error("expected pool-exhaustion events")
	}
	if res.FinalParallelism["server"] > 6 {
		t.Errorf("parallelism exceeded pool capacity: %d", res.FinalParallelism["server"])
	}
	if res.Emitted["src"] == 0 {
		t.Error("run made no progress")
	}
}

// TestSimOnAdjustHook: the hook observes summaries and decisions.
func TestSimOnAdjustHook(t *testing.T) {
	probes := NewProbeSet()
	cfg := pipelineConfig(t, probes,
		&workload.ConstantSchedule{RatePerSecond: 200, Length: 30}, false, 2,
		func(int) Behavior { return &testServer{mean: 0.002} })
	seq, err := model.ParseSequence(cfg.Graph, "src->server", "server", "server->sink")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Constraints = []*model.Constraint{{
		Name: "c", Sequence: seq, Bound: 20 * time.Millisecond, Window: 10 * time.Second,
	}}
	cfg.Elastic = true
	cfg.Scaler = core.DefaultScalerConfig()
	calls, withSummary := 0, 0
	cfg.OnAdjust = func(info AdjustmentInfo) {
		calls++
		if info.Summary != nil {
			if _, ok := info.Summary.Vertex("server"); ok {
				withSummary++
			}
		}
		if info.Now <= 0 {
			t.Errorf("hook time not set: %v", info.Now)
		}
	}
	s, err := New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// 30 s at the default 5 s adjustment interval ≈ 6 calls.
	if calls < 4 {
		t.Errorf("OnAdjust calls: got %d, want ≥4", calls)
	}
	if withSummary == 0 {
		t.Error("hook never saw server measurements")
	}
}

// TestSimFixedBufferDrainsAtEnd: with fixed 16 KiB buffers a low-rate run
// still delivers (partially filled buffers are not stranded forever —
// latency is high but the throughput accounting matches).
func TestSimFixedBufferBacklog(t *testing.T) {
	probes := NewProbeSet()
	cfg := pipelineConfig(t, probes,
		&workload.ConstantSchedule{RatePerSecond: 500, Length: 120}, false, 1,
		func(int) Behavior { return &testServer{mean: 0.0001} })
	cfg.Edges[model.EdgeKey{Source: "src", Target: "server"}] = EdgeConfig{Mode: BatchFixedBuffer}
	cfg.Edges[model.EdgeKey{Source: "server", Target: "sink"}] = EdgeConfig{Mode: BatchFixedBuffer}
	s, err := New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	emitted := res.Emitted["src"]
	var processedAtSink float64
	for _, r := range res.Rows {
		processedAtSink += r.Processed["sink"] * (r.Time - 0) // rough; use last cumulative instead
	}
	_ = processedAtSink
	// Each 16 KiB buffer holds 256 items at 64 B; at most two in-flight
	// buffers per edge can be outstanding at the end.
	if emitted < 500*115 {
		t.Errorf("emitted only %d items", emitted)
	}
	if res.DroppedItems != 0 {
		t.Errorf("dropped %d", res.DroppedItems)
	}
}

// TestSimDurationOverride: explicit Duration truncates the run.
func TestSimDurationOverride(t *testing.T) {
	probes := NewProbeSet()
	cfg := pipelineConfig(t, probes,
		&workload.ConstantSchedule{RatePerSecond: 100, Length: 1000}, false, 1,
		func(int) Behavior { return &testServer{mean: 0.001} })
	cfg.Duration = 20
	s, err := New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Emitted["src"]; got < 1800 || got > 2200 {
		t.Errorf("emissions in 20 s at 100/s: got %d", got)
	}
	if last := res.Rows[len(res.Rows)-1].Time; last > 20 {
		t.Errorf("rows past the duration: %v", last)
	}
}

// TestSimElasticSourceVertex: a sequence may begin with the source vertex
// itself; the scaler then also manages source parallelism (sources lack
// arrival measurements, so the model scales them to their minimum).
func TestSimElasticSourceVertex(t *testing.T) {
	probes := NewProbeSet()
	g := model.NewJobGraph()
	for _, v := range []model.JobVertex{
		{Name: "src", Parallelism: 4, MinParallelism: 1, MaxParallelism: 8},
		{Name: "server", Parallelism: 2, MinParallelism: 1, MaxParallelism: 16},
		{Name: "sink", Parallelism: 1, MinParallelism: 1, MaxParallelism: 1},
	} {
		if err := g.AddVertex(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge("src", "server", model.PatternRoundRobin); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("server", "sink", model.PatternRoundRobin); err != nil {
		t.Fatal(err)
	}
	sink := probes.Probe("e2e")
	seq, err := model.ParseSequence(g, "src", "src->server", "server", "server->sink")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Graph: g,
		Constraints: []*model.Constraint{{
			Name: "c", Sequence: seq, Bound: 30 * time.Millisecond, Window: 10 * time.Second,
		}},
		Vertices: map[string]VertexConfig{
			"src": {Source: &SourceConfig{
				Schedule: &workload.ConstantSchedule{RatePerSecond: 200, Length: 90},
				EmitCost: 1e-5,
				Emit: func(ctx *TaskContext, now float64) {
					ctx.Emit(0, Item{EmitTime: now, Size: 64, Sampled: ctx.Sample()})
				},
			}},
			"server": {NewBehavior: func(int) Behavior { return &testServer{mean: 0.002} }},
			"sink":   {NewBehavior: func(int) Behavior { return &testServer{mean: 1e-5, probe: sink} }},
		},
		Costs:        lightCosts(),
		Elastic:      true,
		Scaler:       core.DefaultScalerConfig(),
		WorkerNodes:  16,
		SlotsPerNode: 4,
		Seed:         5,
	}
	s, err := New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Sources carry no queue-wait demand: the model shrinks them to the
	// minimum; total emission rate is preserved by the per-task split.
	if got := res.FinalParallelism["src"]; got != 1 {
		t.Errorf("source parallelism: got %d, want 1 (scaled to min)", got)
	}
	emitted := res.Emitted["src"]
	if emitted < 200*85 {
		t.Errorf("emission rate not preserved across source scale-down: %d items", emitted)
	}
	if res.DroppedItems != 0 {
		t.Errorf("dropped %d items", res.DroppedItems)
	}
}
