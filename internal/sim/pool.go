package sim

// Batch slice pooling: every flush detaches the gate buffer's []Item as
// the in-flight batch, and every consumed (or dropped) batch returns its
// backing array to a per-Sim free list. In steady state a run cycles a
// small working set of slices instead of allocating one per flush. The
// Sim is single-threaded, so the free list needs no locking.

// maxPooledBatches bounds the free list so a transient backpressure
// spike (many stalled batches released at once) cannot pin an arbitrary
// amount of memory for the rest of the run.
const maxPooledBatches = 4096

// getBatch returns an empty batch slice, reusing recycled capacity when
// available. The zero return is nil: append allocates on first use and
// the allocation is recovered at recycle time.
func (s *Sim) getBatch() []Item {
	if n := len(s.batchPool); n > 0 {
		b := s.batchPool[n-1]
		s.batchPool[n-1] = nil
		s.batchPool = s.batchPool[:n-1]
		return b
	}
	return nil
}

// recycleBatch returns a fully consumed batch to the free list. Items
// are cleared first so recycled capacity does not pin Origins slices,
// trace spans or channel references.
func (s *Sim) recycleBatch(b []Item) {
	if cap(b) == 0 {
		return
	}
	for i := range b {
		b[i] = Item{}
	}
	if len(s.batchPool) >= maxPooledBatches {
		return
	}
	s.batchPool = append(s.batchPool, b[:0])
}
