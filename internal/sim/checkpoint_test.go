package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"nephelix/internal/ckpt"
	"nephelix/internal/workload"
)

// countingSink counts Process calls, so suppression under exactly-once
// is observable: suppressed duplicates are admitted to the dedup table
// but never reach the behavior.
type countingSink struct {
	count *int64
	probe *Probe
}

func (b *countingSink) ServiceTime(_ *rand.Rand, _ *Item) float64 { return 1e-9 }

func (b *countingSink) Process(ctx *TaskContext, it Item) {
	*b.count++
	if b.probe != nil && it.Sampled {
		b.probe.Record(ctx.Now() - it.EmitTime)
	}
}

// guaranteeConfig builds the standard fault pipeline under a guarantee
// level, with a counting sink.
func guaranteeConfig(t *testing.T, probes *ProbeSet, g ckpt.Guarantee, plan *FaultPlan, sinkCalls *int64) Config {
	t.Helper()
	cfg := pipelineConfig(t, probes,
		&workload.ConstantSchedule{RatePerSecond: 200, Length: 40}, false, 4,
		func(int) Behavior { return &testServer{mean: 0.012} })
	sink := probes.Probe("e2e")
	cfg.Vertices["sink"] = VertexConfig{NewBehavior: func(int) Behavior {
		return &countingSink{count: sinkCalls, probe: sink}
	}}
	cfg.Faults = plan
	cfg.Guarantee = g
	cfg.CheckpointInterval = 0.5
	return cfg
}

// killPlan is the standard recovery scenario: a source crash, a
// half-pool worker crash, then a third worker crash while the two
// survivors carry the overload (rho 1.2), so its queue holds real
// backlog that dies with it. All respawned.
func killPlan() *FaultPlan {
	return &FaultPlan{
		TaskKills: []TaskKill{
			{At: 12, Vertex: "src", Count: 1},
			{At: 20, Vertex: "server", Count: 2},
			{At: 20.6, Vertex: "server", Count: 1},
		},
		Respawn:      true,
		RestartDelay: 1,
	}
}

// TestSimGuaranteeZeroLossAtLeastOnce: across a source kill and worker
// kills with respawn, at-least-once must deliver every emitted item to
// the sink — zero holes, distinct deliveries equal to emissions — with
// the duplicates of replay detected but not suppressed.
func TestSimGuaranteeZeroLossAtLeastOnce(t *testing.T) {
	probes := NewProbeSet()
	var sinkCalls int64
	cfg := guaranteeConfig(t, probes, ckpt.AtLeastOnce, killPlan(), &sinkCalls)
	s, err := New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.KilledTasks != 4 || res.RespawnedTasks != 4 {
		t.Fatalf("killed/respawned = %d/%d, want 4/4", res.KilledTasks, res.RespawnedTasks)
	}
	if res.KilledItems == 0 {
		t.Error("the kills lost no items — the scenario exercises nothing")
	}
	if res.CheckpointsCommitted == 0 {
		t.Error("no checkpoints committed")
	}
	if res.ReplayedItems == 0 {
		t.Error("no items replayed despite respawns")
	}
	if res.SinkHoles != 0 {
		t.Errorf("SinkHoles = %d, want 0 (committed records were lost)", res.SinkHoles)
	}
	emitted := res.Emitted["src"]
	if res.SinkDistinct != emitted {
		t.Errorf("SinkDistinct = %d, want %d (every emission delivered at least once)",
			res.SinkDistinct, emitted)
	}
	if res.SinkDuplicates == 0 {
		t.Error("no duplicates detected — replay after the kills must re-deliver survivors")
	}
	// At-least-once does not suppress: the sink behavior sees every
	// delivery, duplicates included.
	if sinkCalls != res.SinkDistinct+res.SinkDuplicates {
		t.Errorf("sink Process calls = %d, want distinct+dups = %d",
			sinkCalls, res.SinkDistinct+res.SinkDuplicates)
	}
	if res.CommittedOffsets == 0 || res.CommittedOffsets > uint64(emitted) {
		t.Errorf("CommittedOffsets = %d, want in (0, %d]", res.CommittedOffsets, emitted)
	}
}

// TestSimGuaranteeExactlyOnceSuppresses: under exactly-once the dedup
// tables suppress replayed duplicates, so the sink behavior runs
// exactly once per emitted item.
func TestSimGuaranteeExactlyOnceSuppresses(t *testing.T) {
	probes := NewProbeSet()
	var sinkCalls int64
	cfg := guaranteeConfig(t, probes, ckpt.ExactlyOnce, killPlan(), &sinkCalls)
	s, err := New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SinkHoles != 0 {
		t.Errorf("SinkHoles = %d, want 0", res.SinkHoles)
	}
	emitted := res.Emitted["src"]
	if res.SinkDistinct != emitted {
		t.Errorf("SinkDistinct = %d, want %d", res.SinkDistinct, emitted)
	}
	if res.SinkDuplicates == 0 {
		t.Error("no duplicates detected despite replays")
	}
	if sinkCalls != res.SinkDistinct {
		t.Errorf("sink Process calls = %d, want %d (duplicates suppressed)",
			sinkCalls, res.SinkDistinct)
	}
}

// TestSimGuaranteeDeterminism: the guarantee machinery draws no
// randomness outside the seeded RNG — the same seed replays the same
// checkpoints, kills, replays and dedup outcome byte for byte.
func TestSimGuaranteeDeterminism(t *testing.T) {
	run := func() string {
		probes := NewProbeSet()
		var sinkCalls int64
		cfg := guaranteeConfig(t, probes, ckpt.ExactlyOnce, killPlan(), &sinkCalls)
		s, err := New(cfg, probes)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v calls=%d", res, sinkCalls)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestSimGuaranteeChurnAborts: a kill during barrier alignment aborts
// the in-flight checkpoint instead of committing a cut that spans the
// pre-kill topology. The server pool runs near saturation so barriers
// queue behind real backlog and alignment spans the kill times.
func TestSimGuaranteeChurnAborts(t *testing.T) {
	probes := NewProbeSet()
	var sinkCalls int64
	plan := &FaultPlan{
		TaskKills: []TaskKill{
			{At: 12.2, Vertex: "server", Count: 1},
			{At: 20.7, Vertex: "server", Count: 1},
			{At: 28.4, Vertex: "server", Count: 1},
		},
		Respawn:      true,
		RestartDelay: 0.5,
	}
	cfg := guaranteeConfig(t, probes, ckpt.AtLeastOnce, plan, &sinkCalls)
	// ~rho 0.95 at p=4: queues hold tens of items, so alignment takes
	// long enough that kills land mid-checkpoint.
	cfg.Vertices["server"] = VertexConfig{NewBehavior: func(int) Behavior {
		return &testServer{mean: 0.019}
	}}
	cfg.CheckpointInterval = 0.25
	s, err := New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointsAborted == 0 {
		t.Error("no checkpoint aborted despite kills during alignment")
	}
	if res.CheckpointsCommitted == 0 {
		t.Error("no checkpoint committed between the kills")
	}
	if res.SinkHoles != 0 {
		t.Errorf("SinkHoles = %d, want 0", res.SinkHoles)
	}
	// Near saturation the run may not fully drain before cutoff, so
	// equality with emissions is too strong here; every committed offset
	// must still have reached the sink, and nothing beyond emissions.
	if uint64(res.SinkDistinct) < res.CommittedOffsets {
		t.Errorf("SinkDistinct = %d < CommittedOffsets = %d",
			res.SinkDistinct, res.CommittedOffsets)
	}
	if res.SinkDistinct > res.Emitted["src"] {
		t.Errorf("SinkDistinct = %d > emitted = %d", res.SinkDistinct, res.Emitted["src"])
	}
}

// TestSimGuaranteeDisabledUntouched: with the guarantee off, no
// checkpoint state exists and the result's guarantee fields stay zero.
func TestSimGuaranteeDisabledUntouched(t *testing.T) {
	probes := NewProbeSet()
	cfg := faultConfig(t, probes, 4, killPlan())
	s, err := New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	if s.guar != nil {
		t.Fatal("guarantee state allocated with guarantees disabled")
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointsCommitted != 0 || res.ReplayedItems != 0 ||
		res.SinkDistinct != 0 || res.SinkDuplicates != 0 || res.SinkHoles != 0 {
		t.Errorf("guarantee fields non-zero in a disabled run: %+v", res)
	}
}
