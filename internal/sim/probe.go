package sim

import "nephelix/internal/probe"

// Probe and ProbeSet are re-exported from internal/probe so existing
// simulator callers keep their import surface; the live engine shares the
// same types.
type (
	// Probe collects ground-truth end-to-end latencies for one
	// constrained sequence.
	Probe = probe.Probe
	// ProbeSet is a named collection of probes.
	ProbeSet = probe.ProbeSet
)

// NewProbeSet returns an empty probe set.
func NewProbeSet() *ProbeSet { return probe.NewProbeSet() }

// NewProbeSetSeeded returns an empty probe set whose reservoir sampling
// is a pure function of (seed, probe name) — independent of probe
// creation order, so runs stay deterministic when probes are added.
func NewProbeSetSeeded(seed int64) *ProbeSet { return probe.NewProbeSetSeeded(seed) }
