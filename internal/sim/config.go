package sim

import (
	"fmt"
	"math/rand"

	"nephelix/internal/ckpt"
	"nephelix/internal/core"
	"nephelix/internal/model"
	"nephelix/internal/obs"
	"nephelix/internal/qos"
	"nephelix/internal/workload"
)

// BatchMode selects a channel's output batching strategy.
type BatchMode int

const (
	// BatchInstant flushes every item immediately (Storm / Nephele-IF).
	BatchInstant BatchMode = iota + 1
	// BatchFixedBuffer flushes only when the output buffer is full
	// (Nephele-16KiB): maximum throughput, worst latency.
	BatchFixedBuffer
	// BatchAdaptive flushes when the buffer is full or the oldest
	// buffered item reaches the flush deadline set by the QoS managers
	// (Nephele-20ms, the paper's adaptive output batching).
	BatchAdaptive
)

// String returns the mode name.
func (m BatchMode) String() string {
	switch m {
	case BatchInstant:
		return "instant"
	case BatchFixedBuffer:
		return "fixed-buffer"
	case BatchAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("BatchMode(%d)", int(m))
	}
}

// CostModel holds the data-plane cost constants of the simulated cluster.
// They substitute the 1 GbE / 4-core commodity hardware of Appendix A and
// are calibrated so the paper's measured throughput ratios between
// batching configurations hold (Section III-C).
type CostModel struct {
	// FlushCPU is the producer-side CPU cost of shipping one batch
	// (system calls, transport headers, interrupts). Charged to the
	// producing task, it makes unbatched shipping expensive — the
	// mechanism behind the paper's 30–58% effective-throughput gain from
	// batching.
	FlushCPU float64
	// ReceiveCPU is the consumer-side CPU cost of receiving one batch.
	ReceiveCPU float64
	// NetFixed is the fixed network latency per flush (propagation +
	// switching).
	NetFixed float64
	// NetPerByte is the serialization delay per byte (≈ 8 ns/B on 1 GbE).
	NetPerByte float64
	// TCPSetup is the extra latency of the first flush on a newly created
	// channel ("starting new tasks may initially worsen measured channel
	// latency, because new TCP/IP connections need to be established").
	TCPSetup float64
}

// DefaultCostModel returns constants calibrated against Figure 3: with
// per-item sizes of tens of bytes, instant flushing roughly doubles the
// per-item cost of cheap tasks while 16 KiB batches amortize it away.
func DefaultCostModel() CostModel {
	return CostModel{
		FlushCPU:   25e-6,
		ReceiveCPU: 5e-6,
		NetFixed:   150e-6,
		NetPerByte: 8e-9,
		TCPSetup:   1e-3,
	}
}

// Behavior is the simulated stand-in for a task's UDF: it supplies the
// per-item service time and produces output items. One Behavior instance
// exists per task, so implementations may keep per-task state.
type Behavior interface {
	// ServiceTime returns the CPU seconds the task spends on the item.
	ServiceTime(rng *rand.Rand, it *Item) float64
	// Process handles the item and emits results via ctx.Emit. It runs at
	// service completion time.
	Process(ctx *TaskContext, it Item)
}

// TimerBehavior is implemented by window-style behaviors that emit on a
// fixed interval independent of input (e.g. the HotTopics 200 ms
// windows). OnTimer runs even when the input queue is empty.
type TimerBehavior interface {
	Behavior
	// TimerInterval returns the emission period in seconds.
	TimerInterval() float64
	// OnTimer fires once per period; emitted items count as writes for
	// read-write task latency.
	OnTimer(ctx *TaskContext)
}

// SourceFunc generates one emission for a source task. It emits items via
// ctx.Emit; now is the emission time.
type SourceFunc func(ctx *TaskContext, now float64)

// SourceConfig describes a source vertex: schedule-driven item emission.
type SourceConfig struct {
	// Schedule gives the attempted total emission rate over all source
	// tasks; each task emits its share.
	Schedule workload.Schedule
	// EmitCost is the CPU seconds needed to produce one item.
	EmitCost float64
	// Emit generates the items of one emission.
	Emit SourceFunc
	// Poisson draws exponential inter-emission gaps instead of the
	// default near-deterministic (±10% jitter) pacing; used to validate
	// the simulator against M/M/1 and M/D/1 closed forms.
	Poisson bool
}

// VertexConfig binds behavior to a job vertex.
type VertexConfig struct {
	// NewBehavior creates the task-local behavior; nil for sources.
	NewBehavior func(taskIndex int) Behavior
	// Source configures schedule-driven emission; nil for non-sources.
	Source *SourceConfig
	// SampleProbability is the fraction of source emissions tagged for
	// end-to-end latency probing (sources only; default 0.05).
	SampleProbability float64
}

// EdgeConfig sets the batching mode of a job edge's channels.
type EdgeConfig struct {
	Mode BatchMode
	// BufferBytes is the output buffer capacity (default 16 KiB).
	BufferBytes int
}

// Config describes one simulation run.
type Config struct {
	// Graph is the validated job graph (vertex parallelism = initial).
	Graph *model.JobGraph
	// Constraints are the job's latency constraints; they drive adaptive
	// batching and (when Elastic) the scaler.
	Constraints []*model.Constraint
	// Vertices and Edges configure behavior per vertex / edge. Every
	// vertex needs an entry; edges default to BatchAdaptive.
	Vertices map[string]VertexConfig
	Edges    map[model.EdgeKey]EdgeConfig
	// Costs is the data-plane cost model.
	Costs CostModel
	// Elastic enables the reactive scaling strategy; otherwise the
	// parallelism stays fixed.
	Elastic bool
	// Scaler configures the elastic scaler (used when Elastic).
	Scaler core.ScalerConfig
	// MeasurementInterval and AdjustmentInterval are the QoS plane
	// periods in seconds (paper: 1 s and 5 s).
	MeasurementInterval float64
	AdjustmentInterval  float64
	// ManagerCount is the number of QoS managers the reporters are
	// sharded over (the paper distributes managers for scalability).
	ManagerCount int
	// QueueCapacityItems bounds every task input queue; full queues exert
	// backpressure.
	QueueCapacityItems int
	// WorkerNodes and SlotsPerNode describe the cluster pool available to
	// the scheduler (paper: 130 nodes × 4 slots).
	WorkerNodes  int
	SlotsPerNode int
	// Duration is the simulated time span in seconds; 0 derives it from
	// the longest source schedule plus a drain grace period.
	Duration float64
	// RecordInterval is the metric reporting period (paper: 10 s).
	RecordInterval float64
	// Seed drives all simulator randomness.
	Seed int64
	// Faults, when set, injects the plan's task and node kills as
	// simulation events (see FaultPlan).
	Faults *FaultPlan
	// Guarantee selects the processing-guarantee level (default
	// at-most-once: no offsets, no checkpoints, no replay — the
	// historical behavior, byte-identical to earlier versions).
	Guarantee ckpt.Guarantee
	// CheckpointInterval is the virtual-time period of barrier
	// checkpoints in seconds (default 1; only with Guarantee enabled).
	CheckpointInterval float64
	// ReplayBufferItems bounds each source's uncommitted replay buffer;
	// a full buffer stalls that source's emission until the next commit
	// (default 1<<16).
	ReplayBufferItems int
	// OnAdjust, when set, observes every adjustment interval: the fresh
	// global summary, the flush deadlines just applied, and the scaler's
	// decision (nil during inactivity or when not elastic). Intended for
	// debugging and experiment instrumentation.
	OnAdjust func(info AdjustmentInfo)
	// Recorder, when set, receives one scaling_decision audit event per
	// adjustment interval in which the elastic scaler produced a
	// decision (model inputs, Rebalance steps, gating holds, old→new
	// parallelism).
	Recorder *obs.Recorder
	// Tracer, when set, head-samples source emissions and attributes
	// their end-to-end latency to per-hop batch delay, network transit,
	// queue wait and service time. Nil disables tracing at near-zero
	// cost.
	Tracer *obs.Tracer
	// Telemetry, when set, is scraped every adjustment interval (QoS
	// summary, scaler decision, Go runtime) and scores the Kingman
	// queue-wait predictions against the next interval's measurements.
	// Nil disables telemetry at zero cost.
	Telemetry *obs.Telemetry
}

// AdjustmentInfo is the control-plane state passed to Config.OnAdjust.
type AdjustmentInfo struct {
	Now       float64
	Summary   *qos.Summary
	Deadlines map[model.EdgeKey]float64
	Decision  *core.Decision
}

// withDefaults fills zero values and validates.
func (c *Config) withDefaults() error {
	if c.Graph == nil {
		return fmt.Errorf("sim: config needs a job graph")
	}
	if err := c.Graph.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	for _, v := range c.Graph.Vertices() {
		vc, ok := c.Vertices[v.Name]
		if !ok {
			return fmt.Errorf("sim: vertex %q has no VertexConfig", v.Name)
		}
		if (vc.Source == nil) == (vc.NewBehavior == nil) {
			return fmt.Errorf("sim: vertex %q needs exactly one of Source or NewBehavior", v.Name)
		}
		if vc.Source != nil && len(c.Graph.InEdges(v.Name)) > 0 {
			return fmt.Errorf("sim: source vertex %q has inbound edges", v.Name)
		}
	}
	for _, con := range c.Constraints {
		if err := con.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	if c.Costs == (CostModel{}) {
		c.Costs = DefaultCostModel()
	}
	if c.MeasurementInterval <= 0 {
		c.MeasurementInterval = 1
	}
	if c.AdjustmentInterval <= 0 {
		c.AdjustmentInterval = 5
	}
	if c.ManagerCount <= 0 {
		c.ManagerCount = 4
	}
	if c.QueueCapacityItems <= 0 {
		c.QueueCapacityItems = 1000
	}
	if c.WorkerNodes <= 0 {
		c.WorkerNodes = 130
	}
	if c.SlotsPerNode <= 0 {
		c.SlotsPerNode = 4
	}
	if c.RecordInterval <= 0 {
		c.RecordInterval = 10
	}
	if c.Duration <= 0 {
		longest := 0.0
		for _, vc := range c.Vertices {
			if vc.Source != nil && vc.Source.Schedule.Duration() > longest {
				longest = vc.Source.Schedule.Duration()
			}
		}
		if longest <= 0 {
			return fmt.Errorf("sim: duration not set and no source schedule to derive it from")
		}
		c.Duration = longest + 5
	}
	if c.Faults != nil {
		if err := c.Faults.validate(c); err != nil {
			return err
		}
	}
	if c.Guarantee.Enabled() {
		if c.CheckpointInterval <= 0 {
			c.CheckpointInterval = 1
		}
		if c.ReplayBufferItems <= 0 {
			c.ReplayBufferItems = 1 << 16
		}
	}
	if c.Scaler.Strategy.Batching.QueueWaitFraction == 0 {
		c.Scaler.Strategy.Batching = qos.DefaultBatchingPolicy()
	}
	if c.Scaler.Strategy.Bottleneck.RhoMax == 0 {
		c.Scaler.Strategy.Bottleneck = core.DefaultBottleneckPolicy()
	}
	return nil
}

// edgeConfig returns the configuration of an edge, with defaults.
func (c *Config) edgeConfig(key model.EdgeKey) EdgeConfig {
	ec, ok := c.Edges[key]
	if !ok {
		ec = EdgeConfig{Mode: BatchAdaptive}
	}
	if ec.Mode == 0 {
		ec.Mode = BatchAdaptive
	}
	if ec.BufferBytes <= 0 {
		ec.BufferBytes = 16 * 1024
	}
	return ec
}
