package sim

import (
	"testing"

	"nephelix/internal/obs"
	"nephelix/internal/workload"
)

// allocPipelineRun executes one src(1)→server(4)→sink(1) run and returns
// the number of items emitted. The workload is deterministic service over
// a constant schedule, so every invocation allocates identically.
func allocPipelineRun(t *testing.T, configure func(*Config)) float64 {
	t.Helper()
	probes := NewProbeSet()
	cfg := pipelineConfig(t, probes,
		&workload.ConstantSchedule{RatePerSecond: 200, Length: 120}, false, 4,
		func(int) Behavior { return &testServer{mean: 0.010} })
	if configure != nil {
		configure(&cfg)
	}
	s, err := New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Emitted["src"] == 0 {
		t.Fatal("no items emitted")
	}
	return float64(res.Emitted["src"])
}

// allocsPerItem measures whole-run allocations per emitted item
// (including one-time setup, which the item count amortizes).
func allocsPerItem(t *testing.T, configure func(*Config)) float64 {
	t.Helper()
	var items float64
	allocs := testing.AllocsPerRun(3, func() {
		items = allocPipelineRun(t, configure)
	})
	return allocs / items
}

// TestSteadyStateAllocsPerItem pins the allocation-free hot path: with
// pooled batches, typed events and per-task service slots, the simulator
// must stay well under one allocation per item even counting setup and
// per-row bookkeeping. The seed implementation sat near 19 allocs/item;
// this guards against closures, boxing or per-item maps creeping back in.
func TestSteadyStateAllocsPerItem(t *testing.T) {
	perItem := allocsPerItem(t, nil)
	if perItem > 0.5 {
		t.Errorf("steady-state allocations: %.3f allocs/item, want ≤ 0.5", perItem)
	}
}

// TestDisabledObsAddsNoAllocs verifies the zero-cost-when-disabled
// contract of the observability layer: attaching a tracer with sample
// rate 0 and a recorder must not add per-item allocations.
func TestDisabledObsAddsNoAllocs(t *testing.T) {
	base := allocsPerItem(t, nil)
	withObs := allocsPerItem(t, func(cfg *Config) {
		cfg.Tracer = obs.NewTracer(0)
		cfg.Recorder = obs.NewRecorder(0)
	})
	// Allow a fixed slack for the obs objects themselves (constructed
	// once per run); the per-item budget is zero.
	if withObs > base+0.01 {
		t.Errorf("disabled obs costs allocations: %.4f allocs/item with obs vs %.4f without", withObs, base)
	}
}

// TestObsDisabledTelemetryAddsNoAllocs extends the zero-cost contract to
// the telemetry plane: a nil *obs.Telemetry (the default) must cost
// nothing per item — the hook is one pointer comparison.
func TestObsDisabledTelemetryAddsNoAllocs(t *testing.T) {
	base := allocsPerItem(t, nil)
	withNil := allocsPerItem(t, func(cfg *Config) {
		var tel *obs.Telemetry
		cfg.Telemetry = tel
		cfg.Tracer = obs.NewTracer(0)
		cfg.Recorder = obs.NewRecorder(0)
	})
	if withNil > base+0.01 {
		t.Errorf("disabled telemetry costs allocations: %.4f allocs/item vs %.4f base", withNil, base)
	}
}

// TestObsEnabledTelemetryAllocsBounded keeps the enabled plane honest:
// per-item recording reuses pre-allocated rings, so the only allocation
// growth is the per-adjustment-interval scrape, which must amortize far
// below the simulator's 0.5 allocs/item budget on this workload.
func TestObsEnabledTelemetryAllocsBounded(t *testing.T) {
	base := allocsPerItem(t, nil)
	withTel := allocsPerItem(t, func(cfg *Config) {
		cfg.Telemetry = obs.NewTelemetry(256)
	})
	if withTel > base+0.25 {
		t.Errorf("enabled telemetry allocates %.4f allocs/item over the %.4f base, want ≤ +0.25", withTel-base, base)
	}
}
