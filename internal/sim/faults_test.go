package sim

import (
	"testing"

	"nephelix/internal/workload"
)

// faultConfig builds the standard test pipeline with a fault plan.
func faultConfig(t *testing.T, probes *ProbeSet, serverP int, plan *FaultPlan) Config {
	t.Helper()
	cfg := pipelineConfig(t, probes,
		&workload.ConstantSchedule{RatePerSecond: 100, Length: 60}, false, serverP,
		func(int) Behavior { return &testServer{mean: 0.002} })
	cfg.Faults = plan
	return cfg
}

// TestFaultTaskKillRecovery: killing worker tasks mid-run must not wedge
// the pipeline — producers blocked on the victims resume, respawned
// tasks restore parallelism, and items keep flowing end to end.
func TestFaultTaskKillRecovery(t *testing.T) {
	probes := NewProbeSet()
	cfg := faultConfig(t, probes, 4, &FaultPlan{
		TaskKills:    []TaskKill{{At: 20, Vertex: "server", Count: 2}},
		Respawn:      true,
		RestartDelay: 1,
	})
	s, err := New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.KilledTasks != 2 {
		t.Errorf("KilledTasks = %d, want 2", res.KilledTasks)
	}
	if res.RespawnedTasks != 2 {
		t.Errorf("RespawnedTasks = %d, want 2", res.RespawnedTasks)
	}
	if got := res.FinalParallelism["server"]; got != 4 {
		t.Errorf("final server parallelism = %d, want 4 after respawn", got)
	}
	if res.Probes["e2e"].Count == 0 {
		t.Error("no items reached the sink")
	}
	// The pipeline must still deliver after the kill: the last row's sink
	// throughput stays positive.
	if len(res.Rows) == 0 {
		t.Fatal("no time-series rows")
	}
	last := res.Rows[len(res.Rows)-1]
	if last.Processed["sink"] <= 0 {
		t.Errorf("sink throughput after recovery = %g, want > 0", last.Processed["sink"])
	}
}

// TestFaultFractionKill: Fraction selects ceil(f·parallelism) victims.
func TestFaultFractionKill(t *testing.T) {
	probes := NewProbeSet()
	cfg := faultConfig(t, probes, 8, &FaultPlan{
		TaskKills: []TaskKill{{At: 20, Vertex: "server", Fraction: 0.25}},
	})
	s, err := New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.KilledTasks != 2 {
		t.Errorf("KilledTasks = %d, want ceil(0.25*8) = 2", res.KilledTasks)
	}
	if got := res.FinalParallelism["server"]; got != 6 {
		t.Errorf("final server parallelism = %d, want 6 (no respawn)", got)
	}
}

// TestFaultNodeKill: failing a worker node kills its tasks, shrinks the
// pool, and respawned tasks land on surviving nodes.
func TestFaultNodeKill(t *testing.T) {
	probes := NewProbeSet()
	cfg := faultConfig(t, probes, 4, &FaultPlan{
		NodeKills:    []NodeKill{{At: 20, NodeIndex: 0}},
		Respawn:      true,
		RestartDelay: 1,
	})
	s, err := New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.KilledNodes != 1 {
		t.Errorf("KilledNodes = %d, want 1", res.KilledNodes)
	}
	if res.KilledTasks < 1 {
		t.Errorf("KilledTasks = %d, want >= 1 (the node hosted tasks)", res.KilledTasks)
	}
	if res.RespawnedTasks != res.KilledTasks {
		t.Errorf("RespawnedTasks = %d, want %d", res.RespawnedTasks, res.KilledTasks)
	}
	for _, v := range []string{"src", "server", "sink"} {
		want := map[string]int{"src": 1, "server": 4, "sink": 1}[v]
		if got := res.FinalParallelism[v]; got != want {
			t.Errorf("final %s parallelism = %d, want %d", v, got, want)
		}
	}
}

// TestFaultDeterminism: the same seed and plan replay the same failure
// scenario bit for bit.
func TestFaultDeterminism(t *testing.T) {
	run := func() *Result {
		probes := NewProbeSet()
		cfg := faultConfig(t, probes, 4, &FaultPlan{
			TaskKills:    []TaskKill{{At: 15, Vertex: "server", Count: 1}, {At: 30, Vertex: "server", Count: 1}},
			Respawn:      true,
			RestartDelay: 0.5,
		})
		s, err := New(cfg, probes)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.KilledItems != b.KilledItems || a.DroppedItems != b.DroppedItems {
		t.Errorf("lost-item counts diverged: (%d, %d) vs (%d, %d)",
			a.KilledItems, a.DroppedItems, b.KilledItems, b.DroppedItems)
	}
	if a.Emitted["src"] != b.Emitted["src"] {
		t.Errorf("emitted diverged: %d vs %d", a.Emitted["src"], b.Emitted["src"])
	}
	if a.Probes["e2e"].Count != b.Probes["e2e"].Count {
		t.Errorf("sink counts diverged: %d vs %d", a.Probes["e2e"].Count, b.Probes["e2e"].Count)
	}
	if a.TaskHours != b.TaskHours {
		t.Errorf("task-hours diverged: %g vs %g", a.TaskHours, b.TaskHours)
	}
}

// TestFaultStaleQoSHistory: a killed task's QoS history is not forgotten
// — the next global summary still aggregates it (stale), and only the
// live tasks count as fresh. This is the stale-measurement window the
// coverage-gated scaler exists for.
func TestFaultStaleQoSHistory(t *testing.T) {
	probes := NewProbeSet()
	cfg := faultConfig(t, probes, 4, &FaultPlan{
		TaskKills: []TaskKill{{At: 12, Vertex: "server", Count: 1}},
	})
	type obs struct {
		tasks, fresh, par int
	}
	var firstAfterKill *obs
	cfg.OnAdjust = func(info AdjustmentInfo) {
		// Freshness means "reported within the current adjustment
		// interval", so the task killed at t=12 (its last report is at
		// t=11, inside the [10, 15) window) only turns stale at the
		// t=20 adjustment — the first whose whole window it missed.
		if info.Now <= 17 || firstAfterKill != nil {
			return
		}
		vs, ok := info.Summary.Vertices["server"]
		if !ok {
			return
		}
		firstAfterKill = &obs{tasks: vs.Tasks, fresh: vs.FreshTasks, par: 3}
	}
	s, err := New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if firstAfterKill == nil {
		t.Fatal("no adjustment observed after the kill")
	}
	if firstAfterKill.tasks != 4 {
		t.Errorf("summary tasks right after kill = %d, want 4 (3 live + 1 stale)", firstAfterKill.tasks)
	}
	if firstAfterKill.fresh != 3 {
		t.Errorf("fresh tasks right after kill = %d, want 3 (the survivors)", firstAfterKill.fresh)
	}
}

// TestFaultPlanValidation rejects malformed plans at New time.
func TestFaultPlanValidation(t *testing.T) {
	cases := []struct {
		name string
		plan *FaultPlan
	}{
		{"unknown vertex", &FaultPlan{TaskKills: []TaskKill{{At: 1, Vertex: "nope"}}}},
		{"negative time", &FaultPlan{TaskKills: []TaskKill{{At: -1, Vertex: "server"}}}},
		{"fraction out of range", &FaultPlan{TaskKills: []TaskKill{{At: 1, Vertex: "server", Fraction: 1.5}}}},
		{"negative node index", &FaultPlan{NodeKills: []NodeKill{{At: 1, NodeIndex: -1}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			probes := NewProbeSet()
			cfg := faultConfig(t, probes, 2, tc.plan)
			if _, err := New(cfg, probes); err == nil {
				t.Errorf("New accepted invalid plan %q", tc.name)
			}
		})
	}
}
