package obs

import (
	"sort"
	"sync"

	"nephelix/internal/model"
)

// DefaultSLOQuantile is the tail percentile tracked per latency
// constraint when no explicit target is configured: the constraint's
// bound must hold at p99, so 1% of records form the error budget.
const DefaultSLOQuantile = 0.99

// DefaultBurnWindow is the number of adjustment intervals the burn-rate
// sliding window spans.
const DefaultBurnWindow = 6

// SLOTarget is one tail-latency objective: the fraction Quantile of
// end-to-end latencies must stay at or below BoundSeconds. The
// remaining 1−Quantile is the error budget.
type SLOTarget struct {
	Constraint   string  `json:"constraint"`
	Quantile     float64 `json:"quantile"`
	BoundSeconds float64 `json:"bound_seconds"`
}

// SLOTargetsFromConstraints derives one target per latency constraint,
// reusing the constraint's name and bound. Percentile constraints carry
// their own quantile; mean constraints get the DefaultSLOQuantile
// error-budget accounting. The result is deterministic (input order
// preserved).
func SLOTargetsFromConstraints(cs []*model.Constraint) []SLOTarget {
	if len(cs) == 0 {
		return nil
	}
	out := make([]SLOTarget, 0, len(cs))
	for _, c := range cs {
		if c == nil {
			continue
		}
		q := DefaultSLOQuantile
		if c.IsPercentile() {
			q = c.Quantile
		}
		out = append(out, SLOTarget{
			Constraint:   c.Name,
			Quantile:     q,
			BoundSeconds: c.Bound.Seconds(),
		})
	}
	return out
}

// SLOStatus is the JSON state of one target, served on /slo and pushed
// over the dashboard SSE feed.
type SLOStatus struct {
	Constraint   string  `json:"constraint"`
	Quantile     float64 `json:"quantile"`
	BoundSeconds float64 `json:"bound_seconds"`
	// EstimateSeconds is the sketch's current estimate of the tracked
	// quantile over the whole run.
	EstimateSeconds float64 `json:"estimate_seconds"`
	// Count and Bad are cumulative observations and observations over
	// the bound; BadFraction = Bad/Count.
	Count       uint64  `json:"count"`
	Bad         uint64  `json:"bad"`
	BadFraction float64 `json:"bad_fraction"`
	// ErrorBudgetRemaining is 1 − BadFraction/(1−Quantile): 1 when no
	// record exceeded the bound, 0 when the budget is exactly spent,
	// negative when overspent.
	ErrorBudgetRemaining float64 `json:"error_budget_remaining"`
	// BurnRate is the windowed budget consumption speed: the bad
	// fraction of the last WindowIntervals intervals divided by the
	// allowed fraction. 1 means burning exactly at the sustainable
	// rate; >1 exhausts the budget early.
	BurnRate        float64 `json:"burn_rate"`
	WindowIntervals int     `json:"window_intervals"`
	// Violated is true while the quantile estimate exceeds the bound;
	// Violations counts met→violated transitions (each also recorded as
	// a KindSLOViolation event on the flight recorder).
	Violated   bool  `json:"violated"`
	Violations int64 `json:"violations"`
}

// sloPoint is one interval's cumulative (count, bad) pair; the burn
// window differentiates against its oldest entry.
type sloPoint struct {
	count uint64
	bad   uint64
}

type sloCell struct {
	target     SLOTarget
	ring       []sloPoint
	next       int
	full       bool
	violated   bool
	violations int64
	last       SLOStatus
}

// SLOTracker accumulates per-target error-budget state across
// adjustment intervals. All methods are nil-safe and concurrency-safe.
type SLOTracker struct {
	mu     sync.Mutex
	window int
	cells  map[string]*sloCell
}

// NewSLOTracker returns a tracker whose burn-rate window spans window
// intervals (DefaultBurnWindow when <= 0).
func NewSLOTracker(window int) *SLOTracker {
	if window <= 0 {
		window = DefaultBurnWindow
	}
	return &SLOTracker{window: window, cells: make(map[string]*sloCell)}
}

// Observe folds one interval's cumulative tail state for target:
// count observations so far, bad of them over the bound, and the
// current quantile estimate. It returns the target's new status and
// whether this interval crossed from met to violated.
func (t *SLOTracker) Observe(target SLOTarget, count, bad uint64, estimate float64) (SLOStatus, bool) {
	if t == nil {
		return SLOStatus{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.cells[target.Constraint]
	if c == nil {
		c = &sloCell{target: target, ring: make([]sloPoint, t.window)}
		t.cells[target.Constraint] = c
	}

	budget := 1 - target.Quantile // allowed bad fraction
	st := SLOStatus{
		Constraint:      target.Constraint,
		Quantile:        target.Quantile,
		BoundSeconds:    target.BoundSeconds,
		EstimateSeconds: estimate,
		Count:           count,
		Bad:             bad,
		WindowIntervals: t.window,
	}
	if count > 0 {
		st.BadFraction = float64(bad) / float64(count)
	}
	if budget > 0 {
		st.ErrorBudgetRemaining = 1 - st.BadFraction/budget
	}

	// Windowed burn rate: bad fraction of the observations that arrived
	// within the window, over the allowed fraction.
	oldest := sloPoint{}
	if c.full {
		oldest = c.ring[c.next]
	}
	if dc := count - oldest.count; dc > 0 && budget > 0 {
		db := bad - oldest.bad
		st.BurnRate = (float64(db) / float64(dc)) / budget
	}
	c.ring[c.next] = sloPoint{count: count, bad: bad}
	c.next++
	if c.next == len(c.ring) {
		c.next = 0
		c.full = true
	}

	violated := count > 0 && estimate > target.BoundSeconds
	transition := violated && !c.violated
	c.violated = violated
	if transition {
		c.violations++
	}
	st.Violated = violated
	st.Violations = c.violations
	c.last = st
	return st, transition
}

// Snapshot returns every target's latest status, sorted by constraint
// name. A nil tracker returns nil.
func (t *SLOTracker) Snapshot() []SLOStatus {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.cells))
	for n := range t.cells {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]SLOStatus, len(names))
	for i, n := range names {
		out[i] = t.cells[n].last
	}
	return out
}
