package obs

import (
	"math"
	"testing"

	"nephelix/internal/core"
	"nephelix/internal/model"
	"nephelix/internal/qos"
)

// residualTestConstraint builds a src->server->sink constraint whose
// sequence starts with the src->server edge, so "server" has an ingoing
// edge to score predictions against.
func residualTestConstraint(t *testing.T) *model.Constraint {
	t.Helper()
	g := model.NewJobGraph()
	for _, name := range []string{"src", "server", "sink"} {
		if err := g.AddVertex(model.JobVertex{Name: name}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge("src", "server", 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("server", "sink", 0); err != nil {
		t.Fatal(err)
	}
	seq, err := model.ParseSequence(g, "src->server", "server", "server->sink")
	if err != nil {
		t.Fatal(err)
	}
	return &model.Constraint{Name: "c", Sequence: seq}
}

func residualTestDecision(c *model.Constraint, vm *core.VertexModel, desired map[string]int, perCons map[string]int) *core.Decision {
	return &core.Decision{
		Desired: desired,
		PerConstraint: []core.ConstraintDecision{{
			Constraint:  c,
			Parallelism: perCons,
			Models:      []*core.VertexModel{vm},
		}},
	}
}

func summaryWithQueueWait(channel, batch float64) *qos.Summary {
	s := qos.NewSummary()
	s.Edges[model.EdgeKey{Source: "src", Target: "server"}] = qos.EdgeStats{
		ChannelLatency:     channel,
		OutputBatchLatency: batch,
	}
	return s
}

// TestObsResidualPairing: a prediction registered at decision time is
// scored against the NEXT interval's measured queue wait, with the
// Welford cell updated exactly once.
func TestObsResidualPairing(t *testing.T) {
	c := residualTestConstraint(t)
	m := NewResidualMonitor(ResidualConfig{})
	vm := &core.VertexModel{Name: "server", Current: 4, A: 0.04, B: 2}
	d := residualTestDecision(c, vm, map[string]int{"server": 6}, map[string]int{"server": 6})

	// Interval 1: nothing pending yet; the decision registers W(6) = 0.04/(6-2).
	scored, _ := m.Observe(10, qos.NewSummary(), d)
	if len(scored) != 0 {
		t.Fatalf("first interval must score nothing, got %v", scored)
	}

	// Interval 2: the measured wait is 25ms − 10ms = 15ms.
	scored, _ = m.Observe(20, summaryWithQueueWait(0.025, 0.010), nil)
	if len(scored) != 1 {
		t.Fatalf("second interval must score one pair, got %d", len(scored))
	}
	sc := scored[0]
	if sc.Constraint != "c" || sc.Vertex != "server" || sc.At != 20 {
		t.Errorf("scored identity: %+v", sc)
	}
	if sc.Predicted != 0.01 || math.Abs(sc.Measured-0.015) > 1e-12 {
		t.Errorf("scored values: predicted %v measured %v, want 0.01 / 0.015", sc.Predicted, sc.Measured)
	}

	stats := m.Snapshot()
	if len(stats) != 1 {
		t.Fatalf("cells: got %d, want 1", len(stats))
	}
	st := stats[0]
	if st.Samples != 1 || math.Abs(st.ResidualMean-0.005) > 1e-12 {
		t.Errorf("residual: samples %d mean %v, want 1 / 0.005", st.Samples, st.ResidualMean)
	}
	if st.Over != 0 || st.Under != 1 || st.SignBias != -1 {
		t.Errorf("sign counts: over %d under %d bias %v", st.Over, st.Under, st.SignBias)
	}
	if math.Abs(st.MeanAbsRelErr-0.005/0.015) > 1e-12 || st.RelErrSamples != 1 {
		t.Errorf("rel err: %v over %d samples", st.MeanAbsRelErr, st.RelErrSamples)
	}
	if st.LastPredicted != 0.01 || math.Abs(st.LastMeasured-0.015) > 1e-12 || st.LastAt != 20 {
		t.Errorf("last pair: %+v", st)
	}
	if st.Drift {
		t.Errorf("one sample must not flag drift: %+v", st)
	}

	// Pending was cleared: a third interval with no decision scores nothing.
	scored, _ = m.Observe(30, summaryWithQueueWait(1, 0), nil)
	if len(scored) != 0 {
		t.Errorf("pending must clear after scoring, got %v", scored)
	}
}

// TestObsResidualParallelismFallback: the prediction uses Desired when
// present, else the constraint's Parallelism, else the model's Current.
func TestObsResidualParallelismFallback(t *testing.T) {
	c := residualTestConstraint(t)
	vm := &core.VertexModel{Name: "server", Current: 3, A: 0.04, B: 2}
	cases := []struct {
		name    string
		desired map[string]int
		perCons map[string]int
		wantP   int
	}{
		{"desired wins", map[string]int{"server": 6}, map[string]int{"server": 4}, 6},
		{"constraint parallelism", nil, map[string]int{"server": 4}, 4},
		{"model current", nil, nil, 3},
	}
	for _, tc := range cases {
		m := NewResidualMonitor(ResidualConfig{})
		m.Observe(0, qos.NewSummary(), residualTestDecision(c, vm, tc.desired, tc.perCons))
		scored, _ := m.Observe(1, summaryWithQueueWait(0.5, 0), nil)
		if len(scored) != 1 {
			t.Fatalf("%s: scored %d pairs, want 1", tc.name, len(scored))
		}
		want := vm.Wait(tc.wantP)
		if scored[0].Predicted != want {
			t.Errorf("%s: predicted %v, want W(%d) = %v", tc.name, scored[0].Predicted, tc.wantP, want)
		}
	}
}

// TestObsResidualSkips: saturated predictions, skipped constraints,
// model-less decisions and head-of-sequence vertices register nothing.
func TestObsResidualSkips(t *testing.T) {
	c := residualTestConstraint(t)
	saturated := &core.VertexModel{Name: "server", Current: 2, A: 0.04, B: 5}

	cases := []struct {
		name string
		d    *core.Decision
	}{
		{"infinite prediction", residualTestDecision(c, saturated, map[string]int{"server": 4}, nil)},
		{"skipped constraint", &core.Decision{PerConstraint: []core.ConstraintDecision{{
			Constraint: c, Skipped: true,
			Models: []*core.VertexModel{{Name: "server", Current: 4, A: 0.04, B: 2}},
		}}}},
		{"no models", &core.Decision{PerConstraint: []core.ConstraintDecision{{Constraint: c}}}},
		{"head of sequence", residualTestDecision(c,
			&core.VertexModel{Name: "src", Current: 1, A: 0.04, B: 0}, nil, nil)},
	}
	for _, tc := range cases {
		m := NewResidualMonitor(ResidualConfig{})
		m.Observe(0, qos.NewSummary(), tc.d)
		scored, _ := m.Observe(1, summaryWithQueueWait(0.5, 0), nil)
		if len(scored) != 0 {
			t.Errorf("%s: scored %v, want none", tc.name, scored)
		}
	}
}

// TestObsResidualDrift: sustained over-prediction trips both the
// high-rel-err and sign-bias flags once MinSamples is reached, and the
// flags surface through Observe, DriftFlags and Snapshot consistently.
func TestObsResidualDrift(t *testing.T) {
	c := residualTestConstraint(t)
	m := NewResidualMonitor(ResidualConfig{MinSamples: 4})
	vm := &core.VertexModel{Name: "server", Current: 4, A: 0.04, B: 2}
	d := residualTestDecision(c, vm, map[string]int{"server": 6}, nil)

	// W(6) = 10ms predicted, 2ms measured every interval: |rel err| = 4,
	// every prediction over.
	var flags []DriftFlag
	for i := 0; i < 5; i++ {
		_, flags = m.Observe(float64(i), summaryWithQueueWait(0.002, 0), d)
		if i < 4 && len(flags) != 0 {
			t.Fatalf("interval %d: drift before MinSamples: %v", i, flags)
		}
	}
	if len(flags) != 2 {
		t.Fatalf("drift flags: got %v, want high-rel-err + sign-bias", flags)
	}
	if flags[0].Reason != "high-rel-err" || flags[1].Reason != "sign-bias" {
		t.Errorf("flag order: %v, %v", flags[0].Reason, flags[1].Reason)
	}
	for _, f := range flags {
		if f.Constraint != "c" || f.Vertex != "server" || f.Samples != 4 {
			t.Errorf("flag identity: %+v", f)
		}
		if f.MeanAbsRelErr != 4 || f.SignBias != 1 {
			t.Errorf("flag stats: %+v", f)
		}
	}
	if got := m.DriftFlags(); len(got) != 2 {
		t.Errorf("DriftFlags: got %v", got)
	}
	st := m.Snapshot()[0]
	if !st.Drift || len(st.DriftReasons) != 2 {
		t.Errorf("snapshot drift: %+v", st)
	}
}

// TestObsResidualMerge: merging per-seed monitors equals feeding one
// monitor all the observations (the parallel Welford merge is exact for
// these counts).
func TestObsResidualMerge(t *testing.T) {
	c := residualTestConstraint(t)
	vm := &core.VertexModel{Name: "server", Current: 4, A: 0.04, B: 2}
	d := residualTestDecision(c, vm, map[string]int{"server": 6}, nil)

	waits := [][2]float64{{0.012, 0}, {0.008, 0}, {0.02, 0.002}, {0.005, 0.001}}
	pooled := NewResidualMonitor(ResidualConfig{})
	a := NewResidualMonitor(ResidualConfig{})
	b := NewResidualMonitor(ResidualConfig{})
	for i, w := range waits {
		part := a
		if i >= 2 {
			part = b
		}
		part.Observe(float64(i), qos.NewSummary(), d)
		part.Observe(float64(i)+0.5, summaryWithQueueWait(w[0], w[1]), nil)
		pooled.Observe(float64(i), qos.NewSummary(), d)
		pooled.Observe(float64(i)+0.5, summaryWithQueueWait(w[0], w[1]), nil)
	}
	merged := NewResidualMonitor(ResidualConfig{})
	merged.Merge(a)
	merged.Merge(b)

	want := pooled.Snapshot()
	got := merged.Snapshot()
	if len(got) != 1 || len(want) != 1 {
		t.Fatalf("cells: merged %d pooled %d", len(got), len(want))
	}
	if got[0].Samples != want[0].Samples || got[0].Over != want[0].Over || got[0].Under != want[0].Under {
		t.Errorf("counts: merged %+v pooled %+v", got[0], want[0])
	}
	if math.Abs(got[0].ResidualMean-want[0].ResidualMean) > 1e-12 ||
		math.Abs(got[0].ResidualStdDev-want[0].ResidualStdDev) > 1e-9 ||
		math.Abs(got[0].MeanAbsRelErr-want[0].MeanAbsRelErr) > 1e-12 {
		t.Errorf("stats: merged %+v pooled %+v", got[0], want[0])
	}
	if got[0].LastAt != want[0].LastAt || got[0].LastMeasured != want[0].LastMeasured {
		t.Errorf("last pair: merged %+v pooled %+v", got[0], want[0])
	}
}

// TestObsResidualNil: every method on a nil monitor is a no-op.
func TestObsResidualNil(t *testing.T) {
	var m *ResidualMonitor
	scored, flags := m.Observe(0, qos.NewSummary(), nil)
	if scored != nil || flags != nil {
		t.Error("nil monitor must observe nothing")
	}
	if m.DriftFlags() != nil || m.Snapshot() != nil {
		t.Error("nil monitor must snapshot nothing")
	}
	m.Merge(NewResidualMonitor(ResidualConfig{}))
}
