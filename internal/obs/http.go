package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Metric is one sample exposed on /metrics in Prometheus text format.
type Metric struct {
	// Name is the metric name (e.g. "nephelix_vertex_parallelism").
	Name string
	// Help is the one-line # HELP text (optional).
	Help string
	// Type is "gauge", "counter", "histogram" or "summary" (default
	// "gauge").
	Type string
	// Labels are rendered sorted by key, with values escaped per the
	// exposition format.
	Labels map[string]string
	Value  float64
	// Histogram samples (Type "histogram") render _bucket/_sum/_count
	// lines from these fields instead of Value; summaries (Type
	// "summary") render Quantiles plus _sum/_count.
	Buckets     []BucketCount
	Quantiles   []SummaryQuantile
	Sum         float64
	SampleCount uint64
}

// BucketCount is one cumulative histogram bucket: CumulativeCount
// observations were <= UpperBound. The +Inf bucket is implicit.
type BucketCount struct {
	UpperBound      float64
	CumulativeCount uint64
}

// SummaryQuantile is one φ-quantile sample of a summary metric.
type SummaryQuantile struct {
	Quantile float64
	Value    float64
}

// ServerConfig wires the introspection endpoints to a run's state. All
// fields are optional; absent ones degrade to empty responses.
type ServerConfig struct {
	// Recorder backs /scaler/decisions and the event counters on
	// /metrics.
	Recorder *Recorder
	// Tracer contributes span counters to /metrics.
	Tracer *Tracer
	// Telemetry backs /timeseries and the /dash SSE dashboard, and
	// contributes its store (including histograms) to /metrics.
	Telemetry *Telemetry
	// Metrics, when set, supplies additional application metrics per
	// scrape (e.g. from a GaugeSet).
	Metrics func() []Metric
}

// NewHandler returns the introspection mux: /healthz, /metrics
// (Prometheus text format), /timeseries (time-series store + residual
// stats as JSON), /dash (live SSE dashboard), /debug/pprof/* and
// /scaler/decisions (recent audit trail as JSON; ?n=K limits to the
// newest K events).
func NewHandler(cfg ServerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, collectMetrics(cfg))
	})
	mux.HandleFunc("/timeseries", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		since, _ := strconv.ParseFloat(q.Get("since"), 64)
		maxPoints, _ := strconv.Atoi(q.Get("n"))
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = json.NewEncoder(w).Encode(cfg.Telemetry.Snapshot(q.Get("name"), since, maxPoints))
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = json.NewEncoder(w).Encode(struct {
			Targets []SLOStatus `json:"targets"`
		}{Targets: cfg.Telemetry.SLOSnapshot()})
	})
	mux.HandleFunc("/dataplane", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		snap := cfg.Telemetry.Dataplane()
		if snap == nil {
			// Pre-first-interval (or disabled telemetry): an empty, valid
			// payload rather than null, so scrapers can always decode it.
			snap = &DataplaneSnapshot{Edges: []DataplaneEdge{}, Backpressure: []BackpressureStatus{}}
		}
		_ = json.NewEncoder(w).Encode(snap)
	})
	mux.HandleFunc("/dash", serveDashPage)
	mux.HandleFunc("/dash/sse", func(w http.ResponseWriter, r *http.Request) {
		serveDashSSE(w, r, cfg.Telemetry)
	})
	mux.HandleFunc("/scaler/decisions", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil {
				n = v
			}
		}
		events := cfg.Recorder.Decisions()
		if n > 0 && n < len(events) {
			events = events[len(events)-n:]
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if events == nil {
			events = []Event{}
		}
		_ = json.NewEncoder(w).Encode(events)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// collectMetrics assembles the built-in recorder/tracer metrics, the
// telemetry store, and the application's.
func collectMetrics(cfg ServerConfig) []Metric {
	var ms []Metric
	if cfg.Recorder != nil {
		ms = append(ms,
			Metric{Name: "nephelix_obs_events_total", Help: "Events recorded by the flight recorder.", Type: "counter", Value: float64(cfg.Recorder.Total())},
			Metric{Name: "nephelix_obs_events_buffered", Help: "Events currently held in the ring buffer.", Value: float64(cfg.Recorder.Len())},
		)
	}
	if cfg.Tracer != nil {
		n, mean := cfg.Tracer.EndToEnd()
		ms = append(ms,
			Metric{Name: "nephelix_trace_emissions_total", Help: "Source emissions observed by the tracer.", Type: "counter", Value: float64(cfg.Tracer.Emissions())},
			Metric{Name: "nephelix_trace_spans_total", Help: "Spans started by head sampling.", Type: "counter", Value: float64(cfg.Tracer.Spans())},
			Metric{Name: "nephelix_trace_finished_total", Help: "Spans finished at a sink.", Type: "counter", Value: float64(n)},
			Metric{Name: "nephelix_trace_e2e_mean_seconds", Help: "Mean end-to-end latency of finished spans.", Value: mean},
		)
	}
	ms = append(ms, cfg.Telemetry.ExpositionMetrics()...)
	if cfg.Metrics != nil {
		ms = append(ms, cfg.Metrics()...)
	}
	return ms
}

// writeMetrics renders metrics in the Prometheus text exposition
// format. Metrics sharing a name emit HELP/TYPE once (first wins);
// samples sharing a full identity (name plus labels) are deduplicated,
// first wins.
func writeMetrics(w io.Writer, ms []Metric) {
	seenName := make(map[string]bool)
	seenSample := make(map[string]bool)
	for _, m := range ms {
		key := metricKey(m)
		if seenSample[key] {
			continue
		}
		seenSample[key] = true
		if !seenName[m.Name] {
			seenName[m.Name] = true
			if m.Help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help)
			}
			typ := m.Type
			if typ == "" {
				typ = "gauge"
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, typ)
		}
		if m.Type == "histogram" {
			writeHistogram(w, m)
			continue
		}
		if m.Type == "summary" {
			writeSummary(w, m)
			continue
		}
		if labels := formatLabels(m.Labels, "", ""); labels != "" {
			fmt.Fprintf(w, "%s{%s} %s\n", m.Name, labels, formatValue(m.Value))
		} else {
			fmt.Fprintf(w, "%s %s\n", m.Name, formatValue(m.Value))
		}
	}
}

// writeHistogram renders one histogram's _bucket/_sum/_count lines.
func writeHistogram(w io.Writer, m Metric) {
	for _, b := range m.Buckets {
		labels := formatLabels(m.Labels, "le", formatValue(b.UpperBound))
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", m.Name, labels, b.CumulativeCount)
	}
	labels := formatLabels(m.Labels, "le", "+Inf")
	fmt.Fprintf(w, "%s_bucket{%s} %d\n", m.Name, labels, m.SampleCount)
	if base := formatLabels(m.Labels, "", ""); base != "" {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", m.Name, base, formatValue(m.Sum))
		fmt.Fprintf(w, "%s_count{%s} %d\n", m.Name, base, m.SampleCount)
	} else {
		fmt.Fprintf(w, "%s_sum %s\n", m.Name, formatValue(m.Sum))
		fmt.Fprintf(w, "%s_count %d\n", m.Name, m.SampleCount)
	}
}

// writeSummary renders one summary's quantile/_sum/_count lines. The
// quantile label value goes through the same escaper as every other
// label (a hostile float formatting can't smuggle quotes, but the
// uniformity keeps the invariant greppable).
func writeSummary(w io.Writer, m Metric) {
	for _, qv := range m.Quantiles {
		labels := formatLabels(m.Labels, "quantile", formatValue(qv.Quantile))
		fmt.Fprintf(w, "%s{%s} %s\n", m.Name, labels, formatValue(qv.Value))
	}
	if base := formatLabels(m.Labels, "", ""); base != "" {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", m.Name, base, formatValue(m.Sum))
		fmt.Fprintf(w, "%s_count{%s} %d\n", m.Name, base, m.SampleCount)
	} else {
		fmt.Fprintf(w, "%s_sum %s\n", m.Name, formatValue(m.Sum))
		fmt.Fprintf(w, "%s_count %d\n", m.Name, m.SampleCount)
	}
}

// labelEscaper escapes label values per the Prometheus text exposition
// format: backslash, double quote and newline.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// formatLabels renders a label set sorted by key, appending one extra
// pair (extraKey non-empty) after the sorted base labels — used for the
// histogram "le" label. Returns "" for an empty set.
func formatLabels(labels map[string]string, extraKey, extraValue string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(labels[k]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(extraValue))
		b.WriteByte('"')
	}
	return b.String()
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Serve starts the introspection server on addr in the background and
// returns it once the listener is bound (so scrapes cannot race the
// bind). Shut it down with Server.Close.
func Serve(addr string, cfg ServerConfig) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           NewHandler(cfg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}

// GaugeSet is a small thread-safe bridge between a running system and
// /metrics: the runtime sets named values, each scrape snapshots them.
// Metric identity is name plus labels; Set on the same identity
// overwrites.
type GaugeSet struct {
	mu     sync.Mutex
	gauges map[string]Metric
}

// NewGaugeSet returns an empty gauge set.
func NewGaugeSet() *GaugeSet {
	return &GaugeSet{gauges: make(map[string]Metric)}
}

// Set stores a gauge sample. Labels may be nil.
func (g *GaugeSet) Set(name string, labels map[string]string, value float64) {
	if g == nil {
		return
	}
	m := Metric{Name: name, Labels: labels, Value: value}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.gauges[metricKey(m)] = m
}

// Metrics snapshots the gauges sorted by identity key, so consecutive
// /metrics scrapes render the series in a stable order regardless of
// insertion order; pass it as ServerConfig.Metrics.
func (g *GaugeSet) Metrics() []Metric {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	keys := make([]string, 0, len(g.gauges))
	for key := range g.gauges {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	out := make([]Metric, 0, len(keys))
	for _, key := range keys {
		out = append(out, g.gauges[key])
	}
	return out
}

// metricKey builds the identity key of a metric sample. Label names and
// values are quoted so no choice of label content can collide with
// another identity (an unescaped separator would let {a:"x,b=y"} alias
// {a:"x", b:"y"}).
func metricKey(m Metric) string {
	if len(m.Labels) == 0 {
		return m.Name
	}
	keys := make([]string, 0, len(m.Labels))
	for k := range m.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(m.Name)
	for _, k := range keys {
		b.WriteByte('{')
		b.WriteString(strconv.Quote(k))
		b.WriteByte('=')
		b.WriteString(strconv.Quote(m.Labels[k]))
		b.WriteByte('}')
	}
	return b.String()
}
