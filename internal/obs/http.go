package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Metric is one sample exposed on /metrics in Prometheus text format.
type Metric struct {
	// Name is the metric name (e.g. "nephelix_vertex_parallelism").
	Name string
	// Help is the one-line # HELP text (optional).
	Help string
	// Type is "gauge" or "counter" (default "gauge").
	Type string
	// Labels are rendered sorted by key.
	Labels map[string]string
	Value  float64
}

// ServerConfig wires the introspection endpoints to a run's state. All
// fields are optional; absent ones degrade to empty responses.
type ServerConfig struct {
	// Recorder backs /scaler/decisions and the event counters on
	// /metrics.
	Recorder *Recorder
	// Tracer contributes span counters to /metrics.
	Tracer *Tracer
	// Metrics, when set, supplies additional application metrics per
	// scrape (e.g. from a GaugeSet).
	Metrics func() []Metric
}

// NewHandler returns the introspection mux: /healthz, /metrics
// (Prometheus text format), /debug/pprof/* and /scaler/decisions
// (recent audit trail as JSON; ?n=K limits to the newest K events).
func NewHandler(cfg ServerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, collectMetrics(cfg))
	})
	mux.HandleFunc("/scaler/decisions", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil {
				n = v
			}
		}
		events := cfg.Recorder.Decisions()
		if n > 0 && n < len(events) {
			events = events[len(events)-n:]
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if events == nil {
			events = []Event{}
		}
		_ = json.NewEncoder(w).Encode(events)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// collectMetrics assembles the built-in recorder/tracer metrics plus
// the application's.
func collectMetrics(cfg ServerConfig) []Metric {
	var ms []Metric
	if cfg.Recorder != nil {
		ms = append(ms,
			Metric{Name: "nephelix_obs_events_total", Help: "Events recorded by the flight recorder.", Type: "counter", Value: float64(cfg.Recorder.Total())},
			Metric{Name: "nephelix_obs_events_buffered", Help: "Events currently held in the ring buffer.", Value: float64(cfg.Recorder.Len())},
		)
	}
	if cfg.Tracer != nil {
		n, mean := cfg.Tracer.EndToEnd()
		ms = append(ms,
			Metric{Name: "nephelix_trace_emissions_total", Help: "Source emissions observed by the tracer.", Type: "counter", Value: float64(cfg.Tracer.Emissions())},
			Metric{Name: "nephelix_trace_spans_total", Help: "Spans started by head sampling.", Type: "counter", Value: float64(cfg.Tracer.Spans())},
			Metric{Name: "nephelix_trace_finished_total", Help: "Spans finished at a sink.", Type: "counter", Value: float64(n)},
			Metric{Name: "nephelix_trace_e2e_mean_seconds", Help: "Mean end-to-end latency of finished spans.", Value: mean},
		)
	}
	if cfg.Metrics != nil {
		ms = append(ms, cfg.Metrics()...)
	}
	return ms
}

// writeMetrics renders metrics in the Prometheus text exposition
// format. Metrics sharing a name emit HELP/TYPE once (first wins).
func writeMetrics(w http.ResponseWriter, ms []Metric) {
	seen := make(map[string]bool)
	for _, m := range ms {
		if !seen[m.Name] {
			seen[m.Name] = true
			if m.Help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help)
			}
			typ := m.Type
			if typ == "" {
				typ = "gauge"
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, typ)
		}
		if len(m.Labels) == 0 {
			fmt.Fprintf(w, "%s %s\n", m.Name, formatValue(m.Value))
			continue
		}
		keys := make([]string, 0, len(m.Labels))
		for k := range m.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s=%q", k, m.Labels[k])
		}
		fmt.Fprintf(w, "%s{%s} %s\n", m.Name, b.String(), formatValue(m.Value))
	}
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Serve starts the introspection server on addr in the background and
// returns it once the listener is bound (so scrapes cannot race the
// bind). Shut it down with Server.Close.
func Serve(addr string, cfg ServerConfig) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           NewHandler(cfg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}

// GaugeSet is a small thread-safe bridge between a running system and
// /metrics: the runtime sets named values, each scrape snapshots them.
// Metric identity is name plus labels; Set on the same identity
// overwrites.
type GaugeSet struct {
	mu     sync.Mutex
	order  []string
	gauges map[string]Metric
}

// NewGaugeSet returns an empty gauge set.
func NewGaugeSet() *GaugeSet {
	return &GaugeSet{gauges: make(map[string]Metric)}
}

// Set stores a gauge sample. Labels may be nil.
func (g *GaugeSet) Set(name string, labels map[string]string, value float64) {
	if g == nil {
		return
	}
	m := Metric{Name: name, Labels: labels, Value: value}
	key := metricKey(m)
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.gauges[key]; !ok {
		g.order = append(g.order, key)
	}
	g.gauges[key] = m
}

// Metrics snapshots the gauges in insertion order; pass it as
// ServerConfig.Metrics.
func (g *GaugeSet) Metrics() []Metric {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Metric, 0, len(g.order))
	for _, key := range g.order {
		out = append(out, g.gauges[key])
	}
	return out
}

// metricKey builds the identity key of a metric sample.
func metricKey(m Metric) string {
	if len(m.Labels) == 0 {
		return m.Name
	}
	keys := make([]string, 0, len(m.Labels))
	for k := range m.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(m.Name)
	for _, k := range keys {
		b.WriteByte('\x00')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(m.Labels[k])
	}
	return b.String()
}
