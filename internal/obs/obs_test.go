package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"nephelix/internal/core"
	"nephelix/internal/model"
	"nephelix/internal/qos"
)

func TestObsRecorderRing(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.RecordLifecycle(float64(i), KindTaskStart, Lifecycle{Vertex: "v"})
	}
	if got := r.Len(); got != 4 {
		t.Errorf("Len() = %d, want 4", got)
	}
	if got := r.Total(); got != 10 {
		t.Errorf("Total() = %d, want 10", got)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("Events() returned %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		want := uint64(7 + i)
		if ev.Seq != want {
			t.Errorf("Events()[%d].Seq = %d, want %d (oldest first)", i, ev.Seq, want)
		}
	}
	recent := r.Recent(2)
	if len(recent) != 2 || recent[0].Seq != 9 || recent[1].Seq != 10 {
		t.Errorf("Recent(2) seqs = %v, want [9 10]", seqsOf(recent))
	}
	if got := r.Recent(0); len(got) != 4 {
		t.Errorf("Recent(0) returned %d events, want all 4", len(got))
	}
}

func TestObsRecorderPartialFill(t *testing.T) {
	r := NewRecorder(8)
	r.RecordLifecycle(1, KindTaskStart, Lifecycle{Task: "a"})
	r.RecordLifecycle(2, KindTaskPanic, Lifecycle{Task: "a", Reason: "boom"})
	evs := r.Events()
	if len(evs) != 2 || evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("Events() = %v, want seqs [1 2]", seqsOf(evs))
	}
	if evs[1].Lifecycle == nil || evs[1].Lifecycle.Reason != "boom" {
		t.Errorf("lifecycle payload not preserved: %+v", evs[1].Lifecycle)
	}
}

func TestObsRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.RecordDecision(1, &ScalingDecision{})
	r.RecordLifecycle(1, KindTaskStart, Lifecycle{})
	if r.Len() != 0 || r.Total() != 0 || r.Events() != nil || r.Decisions() != nil {
		t.Error("nil recorder should report empty state")
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Errorf("nil recorder WriteJSONL: %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil recorder wrote %q", buf.String())
	}
	// A non-nil recorder ignores nil decisions.
	rr := NewRecorder(4)
	rr.RecordDecision(1, nil)
	if rr.Total() != 0 {
		t.Error("nil decision should not be recorded")
	}
}

func TestObsRecorderJSONLRoundTrip(t *testing.T) {
	r := NewRecorder(16)
	r.RecordDecision(10.5, &ScalingDecision{
		Interval: 3,
		Old:      map[string]int{"worker": 4},
		New:      map[string]int{"worker": 6},
		Actions:  []string{"worker: 4 -> 6"},
	})
	r.RecordLifecycle(11, KindTaskRestart, Lifecycle{Vertex: "worker", Attempts: 2, BackoffSeconds: 0.5})

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	var lines []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", len(lines)+1, err)
		}
		lines = append(lines, ev)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	if lines[0].Kind != KindScalingDecision || lines[0].Decision == nil {
		t.Errorf("line 1 = %+v, want scaling_decision with payload", lines[0])
	}
	if lines[0].Decision.New["worker"] != 6 {
		t.Errorf("decision New[worker] = %d, want 6", lines[0].Decision.New["worker"])
	}
	if lines[1].Kind != KindTaskRestart || lines[1].Lifecycle == nil || lines[1].Lifecycle.Attempts != 2 {
		t.Errorf("line 2 = %+v, want task_restart with attempts=2", lines[1])
	}
}

func TestObsRecorderDecisionsFilter(t *testing.T) {
	r := NewRecorder(16)
	r.RecordLifecycle(1, KindTaskStart, Lifecycle{})
	r.RecordDecision(2, &ScalingDecision{Interval: 1})
	r.RecordLifecycle(3, KindTaskPanic, Lifecycle{})
	r.RecordDecision(4, &ScalingDecision{Interval: 2})
	ds := r.Decisions()
	if len(ds) != 2 {
		t.Fatalf("Decisions() returned %d events, want 2", len(ds))
	}
	if ds[0].Decision.Interval != 1 || ds[1].Decision.Interval != 2 {
		t.Errorf("Decisions() intervals = %d,%d, want 1,2", ds[0].Decision.Interval, ds[1].Decision.Interval)
	}
}

func TestObsTracerHeadSampling(t *testing.T) {
	tr := NewTracer(3)
	var sampled []int
	for i := 0; i < 9; i++ {
		if sp := tr.StartSpan(float64(i)); sp != nil {
			sampled = append(sampled, i)
		}
	}
	want := []int{0, 3, 6}
	if len(sampled) != len(want) {
		t.Fatalf("sampled emissions %v, want %v", sampled, want)
	}
	for i := range want {
		if sampled[i] != want[i] {
			t.Fatalf("sampled emissions %v, want %v", sampled, want)
		}
	}
	if tr.Emissions() != 9 {
		t.Errorf("Emissions() = %d, want 9", tr.Emissions())
	}
	if tr.Spans() != 3 {
		t.Errorf("Spans() = %d, want 3", tr.Spans())
	}
}

func TestObsTracerDisabled(t *testing.T) {
	var nilTracer *Tracer
	if sp := nilTracer.StartSpan(0); sp != nil {
		t.Error("nil tracer produced a span")
	}
	off := NewTracer(0)
	for i := 0; i < 100; i++ {
		if sp := off.StartSpan(float64(i)); sp != nil {
			t.Fatal("disabled tracer produced a span")
		}
	}
	// All span methods are no-ops on nil.
	var sp *Span
	sp.Hop("v", "a->b", 1, 2, 3, 4)
	sp.Finish(10)
	if n, _ := nilTracer.EndToEnd(); n != 0 {
		t.Error("nil tracer reported finished spans")
	}
}

func TestObsTracerDisabledAllocs(t *testing.T) {
	off := NewTracer(0)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := off.StartSpan(1)
		sp.Hop("v", "a->b", 0, 0, 0, 0)
		sp.Finish(2)
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocates %.1f per record, want 0", allocs)
	}
}

func TestObsTracerAttribution(t *testing.T) {
	tr := NewTracer(1)
	sp := tr.StartSpan(0)
	if sp == nil {
		t.Fatal("every-1 tracer did not sample the first emission")
	}
	sp.Hop("filter", "src->filter", 0.010, 0.002, 0.030, 0.005)
	sp.Hop("sink", "filter->sink", 0.001, 0.001, 0.004, 0.002)
	sp.Finish(0.100)

	if n, mean := tr.EndToEnd(); n != 1 || math.Abs(mean-0.100) > 1e-12 {
		t.Errorf("EndToEnd() = (%d, %v), want (1, 0.100)", n, mean)
	}
	if n, svc := tr.VertexAttribution("filter"); n != 1 || math.Abs(svc-0.005) > 1e-12 {
		t.Errorf("VertexAttribution(filter) = (%d, %v), want (1, 0.005)", n, svc)
	}
	n, batch, transit, wait, channel := tr.EdgeAttribution("src->filter")
	if n != 1 || batch != 0.010 || transit != 0.002 || wait != 0.030 {
		t.Errorf("EdgeAttribution(src->filter) = (%d, %v, %v, %v, %v)", n, batch, transit, wait, channel)
	}
	if math.Abs(channel-0.042) > 1e-12 {
		t.Errorf("channel latency = %v, want 0.042 (batch+transit+wait)", channel)
	}
	if n, _ := tr.VertexAttribution("nonexistent"); n != 0 {
		t.Error("unknown vertex should report zero samples")
	}
}

func TestObsAttributionReport(t *testing.T) {
	tr := NewTracer(1)
	sp := tr.StartSpan(0)
	sp.Hop("filter", "src->filter", 0.010, 0, 0.030, 0.005)
	sp.Finish(0.045)

	s := qos.NewSummary()
	s.Vertices["filter"] = qos.VertexStats{ServiceTimeMean: 0.0051}
	s.Edges[model.EdgeKey{Source: "src", Target: "filter"}] = qos.EdgeStats{
		ChannelLatency: 0.041, OutputBatchLatency: 0.0099,
	}

	rep := tr.AttributionReport(s)
	for _, want := range []string{
		"1/1 emissions sampled",
		"vertex filter: n=1 service=0.005000 [qos S=0.005100]",
		"edge src->filter: n=1 channel=0.040000 batch=0.010000 transit=0.000000 wait=0.030000",
		"[qos l=0.041000 obl=0.009900 W=0.031100]",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	var nilTracer *Tracer
	if got := nilTracer.AttributionReport(nil); got != "tracing disabled\n" {
		t.Errorf("nil tracer report = %q", got)
	}
}

func TestObsScalingDecisionMapping(t *testing.T) {
	d := &core.Decision{
		Desired: map[string]int{"worker": 8},
		Actions: []model.ScalingAction{{Vertex: "worker", From: 4, To: 8}},
		PerConstraint: []core.ConstraintDecision{{
			Constraint:     &model.Constraint{Name: "c1"},
			QueueWaitLimit: 0.015,
			Coverage:       0.95,
			Parallelism:    map[string]int{"worker": 8},
			Models: []*core.VertexModel{{
				Name: "worker", Current: 4, Min: 1, Max: 64,
				A: math.Inf(1), B: 0.5, E: 1.2,
				Lambda: 120, SMean: 0.004, CA2: 1.1, CS2: 0.9,
			}},
			Steps: []core.RebalanceStep{{
				Vertex: "worker", From: 4, To: 8,
				Steepest: math.Inf(1), RunnerUp: math.NaN(), PDelta: 8, PW: 10,
			}},
		}},
		Holds: []core.Hold{{Vertex: "sink", Reason: "dead-band", Proposed: 3, Kept: 4}},
	}
	current := map[string]int{"worker": 4}
	sd := NewScalingDecision(7, d, current)
	if sd.Interval != 7 {
		t.Errorf("Interval = %d, want 7", sd.Interval)
	}
	if sd.Old["worker"] != 4 || sd.New["worker"] != 8 {
		t.Errorf("Old/New = %v/%v, want worker 4->8", sd.Old, sd.New)
	}
	// The snapshot must be decoupled from the caller's map.
	current["worker"] = 99
	if sd.Old["worker"] != 4 {
		t.Error("Old parallelism aliased the caller's map")
	}
	if len(sd.Actions) != 1 || !strings.Contains(sd.Actions[0], "worker") {
		t.Errorf("Actions = %v", sd.Actions)
	}
	if len(sd.Constraints) != 1 {
		t.Fatalf("got %d constraints, want 1", len(sd.Constraints))
	}
	cd := sd.Constraints[0]
	if cd.Constraint != "c1" || cd.QueueWaitLimit != 0.015 {
		t.Errorf("constraint = %+v", cd)
	}
	if len(cd.Model) != 1 || cd.Model[0].Lambda != 120 || cd.Model[0].Error != 1.2 {
		t.Errorf("model inputs = %+v", cd.Model)
	}
	// Non-finite values must be clamped so the event marshals.
	if cd.Model[0].A != math.MaxFloat64 {
		t.Errorf("A = %v, want clamped +Inf", cd.Model[0].A)
	}
	if cd.Steps[0].Steepest != math.MaxFloat64 || cd.Steps[0].RunnerUp != 0 {
		t.Errorf("steps not clamped: %+v", cd.Steps[0])
	}
	if len(sd.Holds) != 1 || sd.Holds[0].Reason != "dead-band" {
		t.Errorf("Holds = %+v", sd.Holds)
	}
	if _, err := json.Marshal(sd); err != nil {
		t.Errorf("decision does not marshal: %v", err)
	}
	if NewScalingDecision(1, nil, nil) != nil {
		t.Error("nil core decision should map to nil")
	}
}

func TestObsHTTPEndpoints(t *testing.T) {
	r := NewRecorder(16)
	r.RecordDecision(1, &ScalingDecision{Interval: 1, Old: map[string]int{"w": 2}, New: map[string]int{"w": 3}})
	r.RecordDecision(2, &ScalingDecision{Interval: 2, Old: map[string]int{"w": 3}, New: map[string]int{"w": 4}})
	r.RecordLifecycle(3, KindTaskStart, Lifecycle{Vertex: "w"})
	tr := NewTracer(1)
	tr.StartSpan(0).Finish(0.5)

	gauges := NewGaugeSet()
	gauges.Set("nephelix_vertex_parallelism", map[string]string{"vertex": "w", "node": "n1"}, 3)
	h := NewHandler(ServerConfig{Recorder: r, Tracer: tr, Metrics: gauges.Metrics})
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}

	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	_, metrics := get("/metrics")
	for _, want := range []string{
		"# TYPE nephelix_obs_events_total counter",
		"nephelix_obs_events_total 3",
		"nephelix_obs_events_buffered 3",
		"nephelix_trace_spans_total 1",
		"nephelix_trace_finished_total 1",
		"nephelix_trace_e2e_mean_seconds 0.5",
		`nephelix_vertex_parallelism{node="n1",vertex="w"} 3`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	_, body := get("/scaler/decisions")
	var all []Event
	if err := json.Unmarshal([]byte(body), &all); err != nil {
		t.Fatalf("/scaler/decisions is not JSON: %v\n%s", err, body)
	}
	if len(all) != 2 {
		t.Errorf("/scaler/decisions returned %d events, want 2 (lifecycle filtered out)", len(all))
	}

	_, body = get("/scaler/decisions?n=1")
	var one []Event
	if err := json.Unmarshal([]byte(body), &one); err != nil {
		t.Fatalf("/scaler/decisions?n=1 is not JSON: %v", err)
	}
	if len(one) != 1 || one[0].Decision.Interval != 2 {
		t.Errorf("?n=1 should return the newest decision, got %+v", one)
	}

	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
}

func TestObsHTTPEmptyDecisions(t *testing.T) {
	srv := httptest.NewServer(NewHandler(ServerConfig{}))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/scaler/decisions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty decisions endpoint = %q, want []", got)
	}
}

func TestObsGaugeSetOverwrite(t *testing.T) {
	g := NewGaugeSet()
	g.Set("a", nil, 1)
	g.Set("b", map[string]string{"k": "v"}, 2)
	g.Set("a", nil, 3) // same identity: overwrite, keep insertion order
	ms := g.Metrics()
	if len(ms) != 2 {
		t.Fatalf("got %d metrics, want 2", len(ms))
	}
	if ms[0].Name != "a" || ms[0].Value != 3 {
		t.Errorf("ms[0] = %+v, want a=3", ms[0])
	}
	if ms[1].Name != "b" || ms[1].Value != 2 {
		t.Errorf("ms[1] = %+v, want b=2", ms[1])
	}
	var nilG *GaugeSet
	nilG.Set("x", nil, 1)
	if nilG.Metrics() != nil {
		t.Error("nil gauge set should return nil metrics")
	}
}

func seqsOf(evs []Event) []uint64 {
	out := make([]uint64, len(evs))
	for i, ev := range evs {
		out[i] = ev.Seq
	}
	return out
}
