package obs

import (
	"strconv"

	"nephelix/internal/obs/ts"
)

// The data-plane X-ray: both runtimes sample their queueing layer once
// per adjustment interval — ring counters, emitter pacing, flush-wheel
// and batch-pool state in the engine; the mirrored queue-depth walk in
// the simulator — into a DataplaneSnapshot. Telemetry.ObserveDataplane
// classifies each edge's backpressure state, publishes the gauges, and
// keeps the latest snapshot for /dataplane and the SSE dashboard.

// DataplaneEdge is one job edge's sampled data-plane state, aggregated
// over every producer-lane ring feeding the edge. Counter fields
// (Pushes, PushFails, Pops) are cumulative batch counts; the *Rate and
// *Frac fields are the sampler's per-interval derivations the
// backpressure monitor classifies from, so the engine and the
// simulator feed the same heuristic.
type DataplaneEdge struct {
	Edge     string `json:"edge"`
	Producer string `json:"producer"`
	Consumer string `json:"consumer"`
	// Rings is the number of producer-lane rings sampled (engine) or
	// channels mirrored (sim) for this edge.
	Rings int `json:"rings"`
	// Occupancy and Capacity sum current depth and capacity across the
	// edge's rings; HighWater is the worst single-ring high-water mark.
	Occupancy int `json:"occupancy"`
	Capacity  int `json:"capacity"`
	HighWater int `json:"high_water"`

	Pushes    uint64 `json:"pushes"`
	PushFails uint64 `json:"push_fails"`
	Pops      uint64 `json:"pops"`

	// Interval derivations (per second / fractions in [0,1]).
	PushRate  float64 `json:"push_rate"`
	PopRate   float64 `json:"pop_rate"`
	StallRate float64 `json:"stall_rate"`
	// StallFrac is failed pushes over attempted pushes this interval.
	StallFrac float64 `json:"stall_frac"`
	// OccupancyFrac is Occupancy/Capacity at sample time.
	OccupancyFrac float64 `json:"occupancy_frac"`
	// ConsumerBusy is the consumer vertex's busy fraction this interval.
	ConsumerBusy float64 `json:"consumer_busy"`
	// RingWaitSeconds estimates the time a batch spends queued via
	// Little's law (occupancy / pop rate); 0 when nothing popped.
	RingWaitSeconds float64 `json:"ring_wait_seconds"`

	// State and Culprit are filled by the BackpressureMonitor.
	State   string `json:"state,omitempty"`
	Culprit string `json:"culprit,omitempty"`
}

// DataplaneShard is one source emitter lane's pacing state.
type DataplaneShard struct {
	Vertex  string `json:"vertex"`
	Task    string `json:"task"`
	Shard   int    `json:"shard"`
	Emitted int64  `json:"emitted"`
	// ActualRate is records/s emitted this interval; IntendedRate the
	// schedule's per-shard share. LagFrac is (intended−actual)/intended
	// clamped to [0,1] — a persistently lagging shard cannot keep up
	// with its pacing target (downstream backpressure or CPU steal).
	ActualRate   float64 `json:"actual_rate"`
	IntendedRate float64 `json:"intended_rate"`
	LagFrac      float64 `json:"lag_frac"`
	Parks        int64   `json:"parks"`
	Wakes        int64   `json:"wakes"`
}

// DataplaneWheel is the flush-timer wheel's sampled state.
type DataplaneWheel struct {
	Fires int64 `json:"fires"`
	Armed int64 `json:"armed"`
	// ParkedFrac is the fraction of the last interval the wheel
	// goroutine spent parked (nothing armed).
	ParkedFrac float64 `json:"parked_frac"`
}

// DataplanePoolShard is one batch-pool shard's hit/miss state.
type DataplanePoolShard struct {
	Shard  int   `json:"shard"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Puts   int64 `json:"puts"`
	// HitRate is hits/(hits+misses) over the interval (1 when idle).
	HitRate float64 `json:"hit_rate"`
}

// DataplaneSnapshot is one interval's full data-plane sample — the
// /dataplane payload and the dashboard's backpressure panel input.
type DataplaneSnapshot struct {
	// At is seconds since the run started (virtual time in the sim).
	At float64 `json:"at"`
	// Layer is "engine" or "sim".
	Layer string `json:"layer"`
	// IntervalSeconds is the sampling interval the rates were derived
	// over.
	IntervalSeconds float64 `json:"interval_seconds"`

	Edges  []DataplaneEdge      `json:"edges"`
	Shards []DataplaneShard     `json:"shards,omitempty"`
	Wheel  *DataplaneWheel      `json:"wheel,omitempty"`
	Pool   []DataplanePoolShard `json:"pool,omitempty"`

	// Backpressure is the monitor's per-edge classification, sorted by
	// edge name.
	Backpressure []BackpressureStatus `json:"backpressure"`
}

// dataplaneEdgeSeries caches one edge's gauge handles.
type dataplaneEdgeSeries struct {
	occupancy *ts.Series
	occFrac   *ts.Series
	highWater *ts.Series
	pushRate  *ts.Series
	stallRate *ts.Series
	stallFrac *ts.Series
	ringWait  *ts.Series
	bpState   *ts.Series
}

// dataplaneShardSeries caches one emitter lane's gauge handles.
type dataplaneShardSeries struct {
	lag   *ts.Series
	parks *ts.Series
}

// backpressureStateValue maps a classification onto the numeric gauge
// nephelix_dataplane_backpressure_state (0 idle, 1 producer-limited,
// 2 consumer-limited, 3 ring-saturated).
func backpressureStateValue(s BackpressureState) float64 {
	switch s {
	case BackpressureProducerLimited:
		return 1
	case BackpressureConsumerLimited:
		return 2
	case BackpressureRingSaturated:
		return 3
	default:
		return 0
	}
}

// ObserveDataplane folds one interval's data-plane sample: classify
// every edge's backpressure state (emitting onset/cleared events on
// rec, which may be nil), publish the gauges, cross-check measured ring
// wait against the residual monitor's last Kingman predictions, and
// retain the snapshot for /dataplane. Nil-safe.
func (t *Telemetry) ObserveDataplane(snap DataplaneSnapshot, rec *Recorder) {
	if t == nil {
		return
	}
	statuses := t.bp.Observe(snap.At, snap.Edges, rec)
	byEdge := make(map[string]BackpressureStatus, len(statuses))
	for _, st := range statuses {
		byEdge[st.Edge] = st
	}
	for i := range snap.Edges {
		if st, ok := byEdge[snap.Edges[i].Edge]; ok {
			snap.Edges[i].State = string(st.State)
			snap.Edges[i].Culprit = st.Culprit
		}
	}
	snap.Backpressure = statuses

	now := snap.At
	t.dpMu.Lock()
	for i := range snap.Edges {
		de := &snap.Edges[i]
		es := t.dpEdges[de.Edge]
		if es == nil {
			labels := map[string]string{"edge": de.Edge}
			es = &dataplaneEdgeSeries{
				occupancy: t.store.Gauge("nephelix_dataplane_ring_occupancy", labels),
				occFrac:   t.store.Gauge("nephelix_dataplane_ring_occupancy_frac", labels),
				highWater: t.store.Gauge("nephelix_dataplane_ring_high_water", labels),
				pushRate:  t.store.Gauge("nephelix_dataplane_ring_push_rate", labels),
				stallRate: t.store.Gauge("nephelix_dataplane_ring_stall_rate", labels),
				stallFrac: t.store.Gauge("nephelix_dataplane_ring_stall_frac", labels),
				ringWait:  t.store.Gauge("nephelix_dataplane_ring_wait_seconds", labels),
				bpState:   t.store.Gauge("nephelix_dataplane_backpressure_state", labels),
			}
			t.dpEdges[de.Edge] = es
		}
		es.occupancy.Set(now, float64(de.Occupancy))
		es.occFrac.Set(now, de.OccupancyFrac)
		es.highWater.Set(now, float64(de.HighWater))
		es.pushRate.Set(now, de.PushRate)
		es.stallRate.Set(now, de.StallRate)
		es.stallFrac.Set(now, de.StallFrac)
		es.ringWait.Set(now, de.RingWaitSeconds)
		es.bpState.Set(now, backpressureStateValue(BackpressureState(de.State)))
	}
	for _, sh := range snap.Shards {
		key := sh.Task + "/" + strconv.Itoa(sh.Shard)
		ss := t.dpShards[key]
		if ss == nil {
			labels := map[string]string{
				"vertex": sh.Vertex, "task": sh.Task, "shard": strconv.Itoa(sh.Shard),
			}
			ss = &dataplaneShardSeries{
				lag:   t.store.Gauge("nephelix_dataplane_shard_lag_frac", labels),
				parks: t.store.Gauge("nephelix_dataplane_shard_parks_total", labels),
			}
			t.dpShards[key] = ss
		}
		ss.lag.Set(now, sh.LagFrac)
		ss.parks.Set(now, float64(sh.Parks))
	}
	if snap.Wheel != nil {
		if t.dpWheelFires == nil {
			t.dpWheelFires = t.store.Gauge("nephelix_dataplane_wheel_fires_total", nil)
			t.dpWheelArmed = t.store.Gauge("nephelix_dataplane_wheel_armed", nil)
			t.dpWheelParked = t.store.Gauge("nephelix_dataplane_wheel_parked_frac", nil)
		}
		t.dpWheelFires.Set(now, float64(snap.Wheel.Fires))
		t.dpWheelArmed.Set(now, float64(snap.Wheel.Armed))
		t.dpWheelParked.Set(now, snap.Wheel.ParkedFrac)
	}
	for _, ps := range snap.Pool {
		s := t.dpPool[ps.Shard]
		if s == nil {
			s = t.store.Gauge("nephelix_dataplane_pool_hit_rate",
				map[string]string{"shard": strconv.Itoa(ps.Shard)})
			t.dpPool[ps.Shard] = s
		}
		s.Set(now, ps.HitRate)
	}
	t.dpMu.Unlock()

	t.crossCheckWaits(now, snap.Edges)

	t.dpMu.Lock()
	t.dpLast = &snap
	t.dpMu.Unlock()
}

// crossCheckWaits compares the data-plane-measured ring wait per edge
// against the Kingman queue-wait prediction the residual monitor last
// scored for the edge's consumer vertex, publishing the ratio as a
// gauge. A ratio persistently far from 1 means the model and the rings
// disagree about where time is spent — the same drift the residual
// monitor tracks, but measured at the ring rather than the QoS layer.
func (t *Telemetry) crossCheckWaits(now float64, edges []DataplaneEdge) {
	stats := t.res.Snapshot()
	if len(stats) == 0 {
		return
	}
	predicted := make(map[string]float64, len(stats))
	for _, rs := range stats {
		if rs.LastPredicted > 0 {
			predicted[rs.Vertex] = rs.LastPredicted
		}
	}
	t.dpMu.Lock()
	defer t.dpMu.Unlock()
	for i := range edges {
		de := &edges[i]
		p, ok := predicted[de.Consumer]
		if !ok || de.RingWaitSeconds <= 0 {
			continue
		}
		s := t.dpWaitRatio[de.Edge]
		if s == nil {
			s = t.store.Gauge("nephelix_dataplane_wait_vs_predicted_ratio",
				map[string]string{"edge": de.Edge})
			t.dpWaitRatio[de.Edge] = s
		}
		s.Set(now, de.RingWaitSeconds/p)
	}
}

// Dataplane returns the most recent snapshot (nil before the first
// ObserveDataplane or when telemetry is disabled).
func (t *Telemetry) Dataplane() *DataplaneSnapshot {
	if t == nil {
		return nil
	}
	t.dpMu.Lock()
	defer t.dpMu.Unlock()
	return t.dpLast
}

// Backpressure exposes the monitor (nil when disabled) so experiments
// can assert on episode counts.
func (t *Telemetry) Backpressure() *BackpressureMonitor {
	if t == nil {
		return nil
	}
	return t.bp
}

// dpMuInit initializes the dataplane handle caches (NewTelemetry).
func (t *Telemetry) dpInit() {
	t.bp = NewBackpressureMonitor(BackpressureConfig{})
	t.dpEdges = make(map[string]*dataplaneEdgeSeries)
	t.dpShards = make(map[string]*dataplaneShardSeries)
	t.dpPool = make(map[int]*ts.Series)
	t.dpWaitRatio = make(map[string]*ts.Series)
}
