package obs

import (
	"sort"
	"sync"
)

// BackpressureState classifies one edge's data-plane condition for an
// adjustment interval.
type BackpressureState string

const (
	// BackpressureIdle: no pushes and an empty ring — the edge carried
	// nothing this interval.
	BackpressureIdle BackpressureState = "idle"
	// BackpressureProducerLimited: the edge flowed without stalls and
	// the ring stayed shallow — throughput is bounded upstream.
	BackpressureProducerLimited BackpressureState = "producer-limited"
	// BackpressureConsumerLimited: pushes stalled (or the ring ran
	// deep) while the consumer vertex was busy — the consumer's service
	// capacity is the bottleneck; scaling it is the remedy.
	BackpressureConsumerLimited BackpressureState = "consumer-limited"
	// BackpressureRingSaturated: pushes stalled while the consumer was
	// mostly idle — the ring drains in bursts the capacity cannot
	// absorb (park/wake latency or an undersized QueueCapacity), so
	// adding consumer parallelism would not help.
	BackpressureRingSaturated BackpressureState = "ring-saturated"
)

// backpressured reports whether s is one of the two states that
// constitute a backpressure episode.
func backpressured(s BackpressureState) bool {
	return s == BackpressureConsumerLimited || s == BackpressureRingSaturated
}

// BackpressureConfig tunes the classification thresholds.
type BackpressureConfig struct {
	// StallFrac: an edge whose failed-push fraction exceeds this is
	// backpressured (default 0.05).
	StallFrac float64
	// OccupancyFrac: an edge whose ring occupancy fraction reaches this
	// is backpressured even without observed stalls (default 0.75).
	OccupancyFrac float64
	// BusyFrac: with backpressure present, a consumer at least this
	// busy is the attributed culprit; below it the ring itself is
	// (default 0.5).
	BusyFrac float64
}

func (c BackpressureConfig) withDefaults() BackpressureConfig {
	if c.StallFrac <= 0 {
		c.StallFrac = 0.05
	}
	if c.OccupancyFrac <= 0 {
		c.OccupancyFrac = 0.75
	}
	if c.BusyFrac <= 0 {
		c.BusyFrac = 0.5
	}
	return c
}

// BackpressureStatus is one edge's current classification plus episode
// history.
type BackpressureStatus struct {
	Edge    string            `json:"edge"`
	State   BackpressureState `json:"state"`
	Culprit string            `json:"culprit,omitempty"`
	// Since is when the current backpressure episode began (0 outside
	// an episode); Onsets counts episodes so far.
	Since  float64 `json:"since,omitempty"`
	Onsets int64   `json:"onsets"`
	// Intervals counts adjustment intervals spent in each state.
	Intervals map[string]int64 `json:"intervals"`
}

// bpCell is one edge's tracked state.
type bpCell struct {
	state     BackpressureState
	culprit   string
	since     float64
	onsets    int64
	intervals map[string]int64
}

// BackpressureMonitor classifies every edge's backpressure condition
// each adjustment interval from the sampled stall rate, ring occupancy
// and consumer busy fraction, and emits backpressure_onset /
// backpressure_cleared flight-recorder events with the attributed
// culprit vertex on episode transitions. All methods are nil-safe.
type BackpressureMonitor struct {
	cfg BackpressureConfig

	mu    sync.Mutex
	edges map[string]*bpCell
}

// NewBackpressureMonitor returns a monitor with the given thresholds
// (zero fields filled with defaults).
func NewBackpressureMonitor(cfg BackpressureConfig) *BackpressureMonitor {
	return &BackpressureMonitor{
		cfg:   cfg.withDefaults(),
		edges: make(map[string]*bpCell),
	}
}

// classify maps one edge's interval sample onto a state + culprit.
func (m *BackpressureMonitor) classify(e DataplaneEdge) (BackpressureState, string) {
	if e.StallFrac > m.cfg.StallFrac || e.OccupancyFrac >= m.cfg.OccupancyFrac {
		if e.ConsumerBusy >= m.cfg.BusyFrac {
			return BackpressureConsumerLimited, e.Consumer
		}
		return BackpressureRingSaturated, e.Consumer
	}
	if e.Pushes == 0 || (e.PushRate <= 0 && e.Occupancy == 0) {
		return BackpressureIdle, ""
	}
	return BackpressureProducerLimited, e.Producer
}

// Observe classifies one interval's edge samples. Transitions into a
// backpressured state record a KindBackpressureOnset event on rec (nil
// ok), transitions out a KindBackpressureCleared event carrying the
// episode duration. A switch between the two backpressured states
// updates the culprit without starting a new episode. Returns every
// tracked edge's status sorted by edge name.
func (m *BackpressureMonitor) Observe(now float64, edges []DataplaneEdge, rec *Recorder) []BackpressureStatus {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range edges {
		cell := m.edges[e.Edge]
		if cell == nil {
			cell = &bpCell{state: BackpressureIdle, intervals: make(map[string]int64)}
			m.edges[e.Edge] = cell
		}
		state, culprit := m.classify(e)
		cell.intervals[string(state)]++
		wasBP, isBP := backpressured(cell.state), backpressured(state)
		switch {
		case isBP && !wasBP:
			cell.since = now
			cell.onsets++
			rec.RecordLifecycle(now, KindBackpressureOnset, Lifecycle{
				Edge:          e.Edge,
				Vertex:        culprit,
				State:         string(state),
				OccupancyFrac: jsonSafe(e.OccupancyFrac),
				StallFrac:     jsonSafe(e.StallFrac),
			})
		case !isBP && wasBP:
			rec.RecordLifecycle(now, KindBackpressureCleared, Lifecycle{
				Edge:            e.Edge,
				Vertex:          cell.culprit,
				State:           string(state),
				DurationSeconds: now - cell.since,
			})
			cell.since = 0
		}
		cell.state = state
		cell.culprit = culprit
	}
	out := make([]BackpressureStatus, 0, len(m.edges))
	for name, cell := range m.edges {
		iv := make(map[string]int64, len(cell.intervals))
		for k, v := range cell.intervals {
			iv[k] = v
		}
		out = append(out, BackpressureStatus{
			Edge:      name,
			State:     cell.state,
			Culprit:   cell.culprit,
			Since:     cell.since,
			Onsets:    cell.onsets,
			Intervals: iv,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Edge < out[j].Edge })
	return out
}

// Snapshot returns every tracked edge's status sorted by edge name
// without advancing the monitor. Nil-safe.
func (m *BackpressureMonitor) Snapshot() []BackpressureStatus {
	if m == nil {
		return nil
	}
	return m.Observe(0, nil, nil)
}
