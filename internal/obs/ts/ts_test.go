package ts

import (
	"encoding/json"
	"sync"
	"testing"
)

// TestObsTSCounter: counters accumulate and each point stores the
// running total.
func TestObsTSCounter(t *testing.T) {
	st := NewStore(8)
	c := st.Counter("reqs", nil)
	c.Add(1, 2)
	c.Add(2, 3)
	if got := c.Value(); got != 5 {
		t.Errorf("counter total: got %v, want 5", got)
	}
	snap := st.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("series: got %d, want 1", len(snap))
	}
	if snap[0].Kind != "counter" || snap[0].Total != 5 {
		t.Errorf("snapshot: %+v", snap[0])
	}
	want := []Point{{T: 1, V: 2}, {T: 2, V: 5}}
	if len(snap[0].Points) != 2 || snap[0].Points[0] != want[0] || snap[0].Points[1] != want[1] {
		t.Errorf("points: got %v, want %v", snap[0].Points, want)
	}
}

// TestObsTSGaugeRingWrap: the ring keeps only the newest points, in
// time order, once capacity is exceeded.
func TestObsTSGaugeRingWrap(t *testing.T) {
	st := NewStore(4)
	g := st.Gauge("load", map[string]string{"vertex": "v1"})
	for i := 0; i < 10; i++ {
		g.Set(float64(i), float64(i*i))
	}
	snap := st.Snapshot()[0]
	if len(snap.Points) != 4 {
		t.Fatalf("ring size: got %d points, want 4", len(snap.Points))
	}
	for i, p := range snap.Points {
		wantT := float64(6 + i)
		if p.T != wantT || p.V != wantT*wantT {
			t.Errorf("point %d: got %+v, want t=%v v=%v", i, p, wantT, wantT*wantT)
		}
	}
	if g.Value() != 81 {
		t.Errorf("latest value: got %v, want 81", g.Value())
	}
}

// TestObsTSHistogram: observations land in cumulative buckets with sum
// and count, and the snapshot marshals to JSON (finite bounds only).
func TestObsTSHistogram(t *testing.T) {
	st := NewStore(8)
	h := st.Histogram("lat", nil, []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(0, v)
	}
	snap := st.Snapshot()[0]
	if snap.Count != 4 || snap.Sum != 555.5 {
		t.Errorf("sum/count: got %v/%d", snap.Sum, snap.Count)
	}
	wantCum := []uint64{1, 2, 3}
	for i, b := range snap.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket le=%v: got %d, want %d", b.LE, b.Count, wantCum[i])
		}
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Errorf("histogram snapshot must marshal: %v", err)
	}
}

// TestObsTSIdentity: get-or-create is keyed by name plus labels, label
// content cannot alias another identity, and a kind mismatch yields a
// nil (no-op) series instead of corrupting the original.
func TestObsTSIdentity(t *testing.T) {
	st := NewStore(8)
	a := st.Gauge("g", map[string]string{"x": "1"})
	if b := st.Gauge("g", map[string]string{"x": "1"}); b != a {
		t.Error("same identity must return the same series")
	}
	if c := st.Gauge("g", map[string]string{"x": "2"}); c == a {
		t.Error("different label value must return a distinct series")
	}
	// Crafted values that would collide under naive separator joining.
	st.Gauge("g", map[string]string{"a": `x","b":"y`})
	st.Gauge("g", map[string]string{"a": "x", "b": "y"})
	if st.Len() != 4 {
		t.Errorf("store series: got %d, want 4 (no identity collisions)", st.Len())
	}
	if m := st.Counter("g", map[string]string{"x": "1"}); m != nil {
		t.Error("kind mismatch must return nil, not the existing series")
	}
	a.Set(1, 42)
	if a.Value() != 42 {
		t.Error("original series must survive a mismatched lookup")
	}
}

// TestObsTSQuery: prefix, since and maxPoints filters.
func TestObsTSQuery(t *testing.T) {
	st := NewStore(16)
	g := st.Gauge("nephelix_vertex_parallelism", nil)
	for i := 0; i < 10; i++ {
		g.Set(float64(i), float64(i))
	}
	st.Counter("nephelix_scaler_decisions_total", nil).Add(0, 1)

	if got := st.Query("nephelix_vertex_", 0, 0); len(got) != 1 {
		t.Fatalf("prefix query: got %d series, want 1", len(got))
	}
	got := st.Query("nephelix_vertex_", 5, 0)[0]
	if len(got.Points) != 5 || got.Points[0].T != 5 {
		t.Errorf("since filter: got %v", got.Points)
	}
	got = st.Query("nephelix_vertex_", 0, 3)[0]
	if len(got.Points) != 3 || got.Points[0].T != 7 {
		t.Errorf("maxPoints must keep the newest: got %v", got.Points)
	}
	// Snapshot order is by identity key, deterministic.
	snap := st.Snapshot()
	if snap[0].Name != "nephelix_scaler_decisions_total" || snap[1].Name != "nephelix_vertex_parallelism" {
		t.Errorf("snapshot order: %s, %s", snap[0].Name, snap[1].Name)
	}
}

// TestObsTSConcurrentScrapeVsRecord hammers the store with concurrent
// recorders and scrapers; run under -race this is the satellite's
// concurrency guarantee for the ts layer.
func TestObsTSConcurrentScrapeVsRecord(t *testing.T) {
	st := NewStore(32)
	var writers, scraper sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			g := st.Gauge("g", map[string]string{"w": string(rune('a' + w))})
			c := st.Counter("c", nil)
			h := st.Histogram("h", nil, nil)
			for i := 0; i < 2000; i++ {
				g.Set(float64(i), float64(i))
				c.Add(float64(i), 1)
				h.Observe(float64(i), float64(i)/1000)
			}
		}(w)
	}
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = st.Snapshot()
				_ = st.Query("g", 0, 8)
			}
		}
	}()
	writers.Wait()
	close(stop)
	scraper.Wait()

	if got := st.Counter("c", nil).Value(); got != 8000 {
		t.Errorf("concurrent counter total: got %v, want 8000", got)
	}
}

// TestObsTSDisabledAllocs pins the zero-cost disabled contract: every
// operation on a nil store or nil series must not allocate.
func TestObsTSDisabledAllocs(t *testing.T) {
	var st *Store
	var s *Series
	labels := map[string]string{"vertex": "v"}
	allocs := testing.AllocsPerRun(100, func() {
		st.Counter("c", labels).Add(1, 1)
		st.Gauge("g", labels).Set(1, 1)
		st.Histogram("h", labels, nil).Observe(1, 1)
		s.Add(1, 1)
		s.Set(1, 1)
		s.Observe(1, 1)
		_ = s.Value()
		_ = st.Snapshot()
		_ = st.Query("", 0, 0)
		_ = st.Len()
	})
	if allocs != 0 {
		t.Errorf("disabled ts path allocates: %v allocs/op, want 0", allocs)
	}
}
