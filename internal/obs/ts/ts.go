// Package ts is a typed in-memory time-series store: named counter,
// gauge, histogram and quantile-sketch series holding their recent
// points in fixed-capacity rings. The telemetry layer (internal/obs)
// scrapes the QoS plane into it every adjustment interval; the
// /timeseries endpoint and the SSE dashboard read it back out.
//
// The package depends only on internal/metrics/sketch (it must not
// import obs, core or qos) and follows the obs layer's nil-receiver
// contract: every method on a nil *Store or nil *Series is a no-op, so
// a disabled telemetry path costs one pointer comparison and zero
// allocations.
package ts

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"nephelix/internal/metrics/sketch"
)

// Kind discriminates the series types.
type Kind uint8

const (
	// Counter series accumulate monotonically; each ring point stores
	// the running total at record time.
	Counter Kind = iota + 1
	// Gauge series store the sampled value per point.
	Gauge
	// Histogram series bucket observations against fixed upper bounds
	// and additionally keep the raw observations in the ring.
	Histogram
	// Sketch series feed observations into a DDSketch-style quantile
	// sketch with a fixed relative-error bound and additionally keep
	// the raw observations in the ring. They render as Prometheus
	// summaries.
	Sketch
)

// String returns the kind name used in JSON snapshots.
func (k Kind) String() string {
	switch k {
	case Counter:
		return "counter"
	case Gauge:
		return "gauge"
	case Histogram:
		return "histogram"
	case Sketch:
		return "sketch"
	default:
		return "unknown"
	}
}

// DefaultQuantiles are the quantiles exposed in sketch snapshots and
// Prometheus summary lines.
var DefaultQuantiles = []float64{0.5, 0.9, 0.95, 0.99, 0.999}

// DefaultPoints is the ring capacity used when NewStore is given a
// non-positive one.
const DefaultPoints = 512

// LatencyBuckets are the default histogram bounds for latencies in
// seconds: 100 µs to 10 s, roughly logarithmic.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Point is one recorded sample: T is the record time in seconds (the
// caller's clock: virtual time in the simulator, wall time in the
// engine), V the value.
type Point struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// Series is one named time series. All methods are safe for concurrent
// use and safe on a nil receiver.
type Series struct {
	name   string
	key    string
	labels map[string]string
	kind   Kind

	mu   sync.Mutex
	ring []Point
	next int
	full bool

	total  float64        // counters: running sum
	bounds []float64      // histograms: bucket upper bounds (sorted)
	counts []uint64       // histograms: per-bucket counts, counts[len(bounds)] = overflow
	sum    float64        // histograms: sum of observations
	count  uint64         // histograms: number of observations
	sk     *sketch.Sketch // sketch series: the quantile sketch
}

// Name returns the series name ("" on nil).
func (s *Series) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Add increments a counter series by delta at time t. It is a no-op on
// nil receivers and non-counter series.
func (s *Series) Add(t, delta float64) {
	if s == nil || s.kind != Counter {
		return
	}
	s.mu.Lock()
	s.total += delta
	s.push(t, s.total)
	s.mu.Unlock()
}

// Set records a gauge sample at time t. It is a no-op on nil receivers
// and non-gauge series.
func (s *Series) Set(t, v float64) {
	if s == nil || s.kind != Gauge {
		return
	}
	s.mu.Lock()
	s.push(t, v)
	s.mu.Unlock()
}

// Observe records one observation at time t into a histogram or sketch
// series. It is a no-op on nil receivers and other kinds.
func (s *Series) Observe(t, v float64) {
	if s == nil {
		return
	}
	switch s.kind {
	case Histogram:
		s.mu.Lock()
		i := sort.SearchFloat64s(s.bounds, v) // first bound >= v
		s.counts[i]++
		s.sum += v
		s.count++
		s.push(t, v)
		s.mu.Unlock()
	case Sketch:
		s.mu.Lock()
		s.sk.Add(v)
		s.push(t, v)
		s.mu.Unlock()
	}
}

// Quantile evaluates a sketch series at quantile q (0 on nil receivers
// and non-sketch series).
func (s *Series) Quantile(q float64) float64 {
	if s == nil || s.kind != Sketch {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sk.Quantile(q)
}

// SketchCount returns the number of observations a sketch series has
// recorded (0 on nil receivers and non-sketch series).
func (s *Series) SketchCount() uint64 {
	if s == nil || s.kind != Sketch {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sk.Count()
}

// CountAbove returns the number of observations of a sketch series
// above x, within the sketch's relative accuracy (0 on nil receivers
// and non-sketch series). Used for SLO bad-event accounting.
func (s *Series) CountAbove(x float64) uint64 {
	if s == nil || s.kind != Sketch {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sk.CountAbove(x)
}

// SketchClone returns an independent copy of a sketch series' sketch
// for offline analysis or cross-run pooling (nil on nil receivers and
// non-sketch series).
func (s *Series) SketchClone() *sketch.Sketch {
	if s == nil || s.kind != Sketch {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sk.Clone()
}

// Value returns the latest recorded value: the running total for
// counters, the last sample otherwise (0 when empty or nil).
func (s *Series) Value() float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.kind == Counter {
		return s.total
	}
	if !s.full && s.next == 0 {
		return 0
	}
	last := s.next - 1
	if last < 0 {
		last = len(s.ring) - 1
	}
	return s.ring[last].V
}

// push appends to the ring, overwriting the oldest point when full.
// Callers hold s.mu.
func (s *Series) push(t, v float64) {
	s.ring[s.next] = Point{T: t, V: v}
	s.next++
	if s.next == len(s.ring) {
		s.next = 0
		s.full = true
	}
}

// snapshot renders the series under its lock.
func (s *Series) snapshot(since float64, maxPoints int) SeriesSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := SeriesSnapshot{
		Name:   s.name,
		Labels: s.labels,
		Kind:   s.kind.String(),
	}
	n := s.next
	if s.full {
		n = len(s.ring)
	}
	pts := make([]Point, 0, n)
	start := 0
	if s.full {
		start = s.next // oldest point
	}
	for i := 0; i < n; i++ {
		p := s.ring[(start+i)%len(s.ring)]
		if p.T >= since {
			pts = append(pts, p)
		}
	}
	if maxPoints > 0 && len(pts) > maxPoints {
		pts = pts[len(pts)-maxPoints:]
	}
	snap.Points = pts
	switch s.kind {
	case Counter:
		snap.Total = s.total
	case Histogram:
		snap.Sum = s.sum
		snap.Count = s.count
		// Cumulative finite buckets; the implicit +Inf bucket is Count.
		snap.Buckets = make([]Bucket, len(s.bounds))
		var cum uint64
		for i, b := range s.bounds {
			cum += s.counts[i]
			snap.Buckets[i] = Bucket{LE: b, Count: cum}
		}
	case Sketch:
		snap.Sum = s.sk.Sum()
		snap.Count = s.sk.Count()
		snap.Alpha = s.sk.Alpha()
		snap.Quantiles = make([]QuantileValue, len(DefaultQuantiles))
		for i, q := range DefaultQuantiles {
			snap.Quantiles[i] = QuantileValue{Quantile: q, Value: s.sk.Quantile(q)}
		}
	}
	return snap
}

// Bucket is one cumulative histogram bucket: Count observations were
// <= LE. The implicit +Inf bucket equals the snapshot's Count.
type Bucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// QuantileValue is one evaluated quantile of a sketch series.
type QuantileValue struct {
	Quantile float64 `json:"q"`
	Value    float64 `json:"v"`
}

// SeriesSnapshot is the JSON form of one series.
type SeriesSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	Points []Point           `json:"points"`
	// Total is the counter running sum (counters only).
	Total float64 `json:"total,omitempty"`
	// Sum, Count and Buckets describe histograms; Sum, Count, Alpha
	// and Quantiles describe sketches (Sum is the sketch's
	// deterministic estimate).
	Sum       float64         `json:"sum,omitempty"`
	Count     uint64          `json:"count,omitempty"`
	Buckets   []Bucket        `json:"buckets,omitempty"`
	Alpha     float64         `json:"alpha,omitempty"`
	Quantiles []QuantileValue `json:"quantiles,omitempty"`
}

// Store holds the series of one run, keyed by name plus labels. The
// zero value is not usable; NewStore returns a ready store and a nil
// *Store degrades every method to a no-op.
type Store struct {
	mu     sync.RWMutex
	points int
	byKey  map[string]*Series
}

// NewStore returns a store whose series keep the last pointsPerSeries
// points each (DefaultPoints when <= 0).
func NewStore(pointsPerSeries int) *Store {
	if pointsPerSeries <= 0 {
		pointsPerSeries = DefaultPoints
	}
	return &Store{points: pointsPerSeries, byKey: make(map[string]*Series)}
}

// Counter returns the counter series for name+labels, creating it on
// first use. Returns nil (a no-op series) on a nil store or when the
// identity already exists with a different kind.
func (st *Store) Counter(name string, labels map[string]string) *Series {
	return st.series(name, labels, Counter, nil, 0)
}

// Gauge returns the gauge series for name+labels, creating it on first
// use. Nil-store and kind-mismatch behave as in Counter.
func (st *Store) Gauge(name string, labels map[string]string) *Series {
	return st.series(name, labels, Gauge, nil, 0)
}

// Histogram returns the histogram series for name+labels, creating it
// with the given bucket upper bounds (sorted copy; LatencyBuckets when
// empty) on first use. Nil-store and kind-mismatch behave as in Counter.
func (st *Store) Histogram(name string, labels map[string]string, bounds []float64) *Series {
	return st.series(name, labels, Histogram, bounds, 0)
}

// SketchSeries returns the quantile-sketch series for name+labels,
// creating it with relative accuracy alpha (sketch.DefaultAlpha when
// non-positive) on first use. Nil-store and kind-mismatch behave as in
// Counter.
func (st *Store) SketchSeries(name string, labels map[string]string, alpha float64) *Series {
	return st.series(name, labels, Sketch, nil, alpha)
}

func (st *Store) series(name string, labels map[string]string, kind Kind, bounds []float64, alpha float64) *Series {
	if st == nil {
		return nil
	}
	key := SeriesKey(name, labels)
	st.mu.RLock()
	s := st.byKey[key]
	st.mu.RUnlock()
	if s == nil {
		st.mu.Lock()
		s = st.byKey[key]
		if s == nil {
			s = &Series{
				name:   name,
				key:    key,
				labels: copyLabels(labels),
				kind:   kind,
				ring:   make([]Point, st.points),
			}
			switch kind {
			case Histogram:
				if len(bounds) == 0 {
					bounds = LatencyBuckets
				}
				s.bounds = append([]float64(nil), bounds...)
				sort.Float64s(s.bounds)
				s.counts = make([]uint64, len(s.bounds)+1)
			case Sketch:
				if alpha <= 0 {
					alpha = sketch.DefaultAlpha
				}
				s.sk = sketch.New(alpha)
			}
			st.byKey[key] = s
		}
		st.mu.Unlock()
	}
	if s.kind != kind {
		return nil
	}
	return s
}

// Len returns the number of series (0 on nil).
func (st *Store) Len() int {
	if st == nil {
		return 0
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.byKey)
}

// Snapshot renders every series, sorted by identity key so repeated
// scrapes and JSON dumps are deterministic.
func (st *Store) Snapshot() []SeriesSnapshot {
	return st.Query("", 0, 0)
}

// Query renders the series whose name starts with prefix, keeping only
// points with T >= since and at most the newest maxPoints points per
// series (0 = unlimited). The result is sorted by identity key. A nil
// store returns nil.
func (st *Store) Query(prefix string, since float64, maxPoints int) []SeriesSnapshot {
	if st == nil {
		return nil
	}
	st.mu.RLock()
	matched := make([]*Series, 0, len(st.byKey))
	for _, s := range st.byKey {
		if prefix == "" || strings.HasPrefix(s.name, prefix) {
			matched = append(matched, s)
		}
	}
	st.mu.RUnlock()
	sort.Slice(matched, func(i, j int) bool { return matched[i].key < matched[j].key })
	out := make([]SeriesSnapshot, len(matched))
	for i, s := range matched {
		out[i] = s.snapshot(since, maxPoints)
	}
	return out
}

// SeriesKey builds the collision-free identity key of a series: the
// name followed by the sorted labels, with names and values quoted so
// no choice of label content can alias another identity.
func SeriesKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(k))
		b.WriteByte('=')
		b.WriteString(strconv.Quote(labels[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// copyLabels snapshots the label map so callers may reuse theirs.
func copyLabels(labels map[string]string) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	out := make(map[string]string, len(labels))
	for k, v := range labels {
		out[k] = v
	}
	return out
}
