package obs

import (
	"fmt"
	"sort"
	"strings"
)

// TailHop is one hop's contribution to the traced end-to-end latency:
// a vertex (service time) or an edge (channel latency = batch delay +
// transit + queue wait), with both the mean and tail quantiles of its
// per-record latency, and its share of the summed hop latency at the
// mean and at the tail quantile.
type TailHop struct {
	// Kind is "vertex" or "edge"; Name the vertex name or edge key.
	Kind  string `json:"kind"`
	Name  string `json:"name"`
	Count int64  `json:"count"`
	// Mean and the quantiles are the hop's own latency distribution in
	// seconds, from the tracer's per-hop quantile sketch.
	Mean float64 `json:"mean_seconds"`
	P50  float64 `json:"p50_seconds"`
	P95  float64 `json:"p95_seconds"`
	P99  float64 `json:"p99_seconds"`
	P999 float64 `json:"p999_seconds"`
	// MeanShare and TailShare are the hop's fraction of the summed hop
	// means / summed hop tail quantiles — the attribution answer to
	// "which hop dominates the mean vs the tail".
	MeanShare float64 `json:"mean_share"`
	TailShare float64 `json:"tail_share"`
}

// TailAttributionReport extends the tracer's mean latency decomposition
// to the tail: per-hop quantiles plus the hop dominating the mean and
// the hop dominating the tail quantile. A hop that dominates p99 but
// not the mean is exactly the bottleneck a mean-based scaler never
// sees.
type TailAttributionReport struct {
	// Quantile is the tail quantile attributed (e.g. 0.99).
	Quantile float64 `json:"quantile"`
	// E2E describes the end-to-end latency of finished spans.
	E2ECount int64   `json:"e2e_count"`
	E2EMean  float64 `json:"e2e_mean_seconds"`
	E2EP50   float64 `json:"e2e_p50_seconds"`
	E2EP95   float64 `json:"e2e_p95_seconds"`
	E2EP99   float64 `json:"e2e_p99_seconds"`
	E2EP999  float64 `json:"e2e_p999_seconds"`
	// Hops is sorted vertices-then-edges, each alphabetically.
	Hops []TailHop `json:"hops"`
	// DominantMean and DominantTail name the hop ("kind name") with the
	// largest mean / tail-quantile contribution.
	DominantMean string `json:"dominant_mean"`
	DominantTail string `json:"dominant_tail"`
}

// TailAttribution builds the tail decomposition at quantile q (clamped
// into (0, 1]; 0.99 when out of range). Deterministically ordered. A
// nil tracer returns a zero report.
func (tr *Tracer) TailAttribution(q float64) TailAttributionReport {
	if !(q > 0 && q <= 1) {
		q = 0.99
	}
	rep := TailAttributionReport{Quantile: q}
	if tr == nil {
		return rep
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()

	rep.E2ECount = tr.e2e.Count()
	rep.E2EMean = tr.e2e.Mean()
	rep.E2EP50 = tr.e2eSk.Quantile(0.5)
	rep.E2EP95 = tr.e2eSk.Quantile(0.95)
	rep.E2EP99 = tr.e2eSk.Quantile(0.99)
	rep.E2EP999 = tr.e2eSk.Quantile(0.999)

	names := make([]string, 0, len(tr.vertices))
	for n := range tr.vertices {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		vt := tr.vertices[n]
		rep.Hops = append(rep.Hops, TailHop{
			Kind:  "vertex",
			Name:  n,
			Count: vt.service.Count(),
			Mean:  vt.service.Mean(),
			P50:   vt.serviceSk.Quantile(0.5),
			P95:   vt.serviceSk.Quantile(0.95),
			P99:   vt.serviceSk.Quantile(0.99),
			P999:  vt.serviceSk.Quantile(0.999),
		})
	}
	edges := make([]string, 0, len(tr.edges))
	for e := range tr.edges {
		edges = append(edges, e)
	}
	sort.Strings(edges)
	for _, e := range edges {
		et := tr.edges[e]
		rep.Hops = append(rep.Hops, TailHop{
			Kind:  "edge",
			Name:  e,
			Count: et.channel.Count(),
			Mean:  et.channel.Mean(),
			P50:   et.channelSk.Quantile(0.5),
			P95:   et.channelSk.Quantile(0.95),
			P99:   et.channelSk.Quantile(0.99),
			P999:  et.channelSk.Quantile(0.999),
		})
	}

	var meanSum, tailSum float64
	tailOf := func(h *TailHop) float64 {
		switch q {
		case 0.5:
			return h.P50
		case 0.95:
			return h.P95
		case 0.999:
			return h.P999
		default:
			return h.P99
		}
	}
	for i := range rep.Hops {
		meanSum += rep.Hops[i].Mean
		tailSum += tailOf(&rep.Hops[i])
	}
	bestMean, bestTail := -1.0, -1.0
	for i := range rep.Hops {
		h := &rep.Hops[i]
		if meanSum > 0 {
			h.MeanShare = h.Mean / meanSum
		}
		tl := tailOf(h)
		if tailSum > 0 {
			h.TailShare = tl / tailSum
		}
		if h.Mean > bestMean {
			bestMean = h.Mean
			rep.DominantMean = h.Kind + " " + h.Name
		}
		if tl > bestTail {
			bestTail = tl
			rep.DominantTail = h.Kind + " " + h.Name
		}
	}
	return rep
}

// String renders the report for logs: e2e quantiles, one line per hop
// with its mean vs tail shares, and the dominant hops. Deterministic.
func (r TailAttributionReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tail attribution (q=%g): e2e n=%d mean=%.6f p50=%.6f p95=%.6f p99=%.6f p999=%.6f\n",
		r.Quantile, r.E2ECount, r.E2EMean, r.E2EP50, r.E2EP95, r.E2EP99, r.E2EP999)
	for _, h := range r.Hops {
		fmt.Fprintf(&b, "%s %s: n=%d mean=%.6f (%.0f%%) p99=%.6f p999=%.6f tail-share %.0f%%\n",
			h.Kind, h.Name, h.Count, h.Mean, h.MeanShare*100, h.P99, h.P999, h.TailShare*100)
	}
	fmt.Fprintf(&b, "dominant at mean: %s; dominant at q=%g: %s\n",
		r.DominantMean, r.Quantile, r.DominantTail)
	return b.String()
}
