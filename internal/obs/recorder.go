package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Recorder is a bounded, mutex-guarded ring buffer of structured
// events: the flight recorder. All methods are safe on a nil receiver
// (they do nothing), so runtimes wire it unconditionally and callers
// opt in by supplying a recorder.
type Recorder struct {
	mu   sync.Mutex
	seq  uint64
	buf  []Event
	next int
	full bool
}

// DefaultRecorderCapacity is the ring size used when NewRecorder is
// given a non-positive capacity.
const DefaultRecorderCapacity = 4096

// NewRecorder returns a recorder holding the last capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	return &Recorder{buf: make([]Event, 0, capacity)}
}

// record appends one event, assigning its sequence number.
func (r *Recorder) record(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	ev.Seq = r.seq
	if !r.full && len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		if len(r.buf) == cap(r.buf) {
			r.full = true
		}
		return
	}
	r.full = true
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
}

// RecordDecision appends one scaling-decision event.
func (r *Recorder) RecordDecision(time float64, d *ScalingDecision) {
	if r == nil || d == nil {
		return
	}
	r.record(Event{Time: time, Kind: KindScalingDecision, Decision: d})
}

// RecordLifecycle appends one lifecycle event of the given kind.
func (r *Recorder) RecordLifecycle(time float64, kind string, lc Lifecycle) {
	if r == nil {
		return
	}
	r.record(Event{Time: time, Kind: kind, Lifecycle: &lc})
}

// Len returns the number of buffered events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total returns the number of events ever recorded (including those
// that have rotated out of the ring).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Events returns the buffered events, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if r.full && r.next > 0 {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
		return out
	}
	return append(out, r.buf...)
}

// Recent returns the newest n events, oldest first. n <= 0 returns all.
func (r *Recorder) Recent(n int) []Event {
	evs := r.Events()
	if n <= 0 || n >= len(evs) {
		return evs
	}
	return evs[len(evs)-n:]
}

// Decisions returns the buffered scaling-decision events, oldest first.
func (r *Recorder) Decisions() []Event {
	var out []Event
	for _, ev := range r.Events() {
		if ev.Kind == KindScalingDecision {
			out = append(out, ev)
		}
	}
	return out
}

// WriteJSONL writes the buffered events as JSON Lines, oldest first.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range r.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}
