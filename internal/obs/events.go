// Package obs is the observability layer: a ring-buffered structured
// event log (the scaler decision audit trail plus engine lifecycle
// events), deterministic head-sampled record tracing with per-hop
// latency attribution, and an opt-in HTTP introspection server exposing
// health, Prometheus-format metrics, pprof, and the recent audit trail.
//
// The package sits above internal/core and internal/qos: it converts
// their decision and summary types into JSON-stable event payloads. The
// runtimes (internal/engine, internal/sim) depend on obs; core never
// does — audit data travels inside core's own decision types and is
// mapped here.
package obs

import "math"

// Event kinds. KindScalingDecision events carry a Decision payload; all
// other kinds carry a Lifecycle payload.
const (
	KindScalingDecision = "scaling_decision"
	KindTaskStart       = "task_start"
	KindTaskPanic       = "task_panic"
	KindTaskRestart     = "task_restart"
	KindTaskKill        = "task_kill"
	KindVertexDegraded  = "vertex_degraded"
	KindDropCounters    = "drop_counters"
	// Barrier-checkpoint lifecycle (processing guarantees): a checkpoint
	// starts when the master injects barriers at the sources, commits
	// when every task acknowledged alignment, and aborts on topology
	// churn (scaling, crash) or when a newer barrier supersedes it.
	KindCheckpointStart  = "checkpoint_start"
	KindCheckpointCommit = "checkpoint_commit"
	KindCheckpointAbort  = "checkpoint_abort"
	// KindReplay audits one source-replay round after a recovery.
	KindReplay = "replay"
	// KindSLOViolation marks a per-constraint tail-latency SLO crossing
	// from met to violated: the tracked percentile estimate exceeded the
	// constraint's bound. Recorded once per transition, not per interval.
	KindSLOViolation = "slo_violation"
	// Backpressure episodes (data-plane monitor): onset when an edge
	// enters a consumer-limited or ring-saturated interval, cleared when
	// it leaves. The Lifecycle payload carries the edge, the attributed
	// culprit vertex and the classification inputs.
	KindBackpressureOnset   = "backpressure_onset"
	KindBackpressureCleared = "backpressure_cleared"
	// KindRingDrain audits the master reclaiming a dead task's input
	// rings: one event per inbound edge that lost queued records.
	KindRingDrain = "ring_drain"
)

// Event is one entry of the flight recorder. Time is seconds since the
// run started (virtual time in the simulator, wall time in the engine).
type Event struct {
	Seq  uint64  `json:"seq"`
	Time float64 `json:"time"`
	Kind string  `json:"kind"`

	Decision  *ScalingDecision `json:"decision,omitempty"`
	Lifecycle *Lifecycle       `json:"lifecycle,omitempty"`
}

// ScalingDecision is the audit record of one elastic-scaler adjustment
// interval: every constraint's resolution path with its fitted model
// inputs and gradient steps, the gating holds applied afterwards, and
// the resulting old→new parallelism vector.
type ScalingDecision struct {
	// Interval is the adjustment-interval ordinal (1-based).
	Interval int `json:"interval"`
	// Constraints holds one entry per latency constraint, in input order.
	Constraints []ConstraintDecision `json:"constraints"`
	// Holds lists scaling intentions reverted or weakened by the scaler's
	// gating (dead band, scale-down clamp, low coverage).
	Holds []GatingHold `json:"holds,omitempty"`
	// Old and New are the parallelism vectors before and after the
	// decision; Actions renders their diff.
	Old     map[string]int `json:"old"`
	New     map[string]int `json:"new"`
	Actions []string       `json:"actions,omitempty"`
	// Drift lists the (constraint, vertex) cells whose Kingman
	// predictions have drifted from the measured queue waits, as
	// reported by the telemetry residual monitor at decision time.
	Drift []DriftFlag `json:"drift,omitempty"`
}

// ConstraintDecision explains how one latency constraint was handled.
type ConstraintDecision struct {
	Constraint string `json:"constraint"`
	// Skipped means the summary did not cover the sequence yet.
	Skipped bool `json:"skipped,omitempty"`
	// Bottleneck means the ResolveBottlenecks path was taken instead of
	// Rebalance.
	Bottleneck   bool     `json:"bottleneck,omitempty"`
	Infeasible   bool     `json:"infeasible,omitempty"`
	Unresolvable []string `json:"unresolvable,omitempty"`
	Coverage     float64  `json:"coverage,omitempty"`
	LowCoverage  bool     `json:"low_coverage,omitempty"`
	// QueueWaitLimit is Ŵ_js, the queue-wait share of the latency budget
	// (Rebalance path only).
	QueueWaitLimit float64 `json:"queue_wait_limit,omitempty"`
	// Model holds the fitted Kingman inputs per sequence vertex
	// (Rebalance path only).
	Model []VertexModelInputs `json:"model,omitempty"`
	// Steps records Rebalance's gradient-descent iterations.
	Steps []RebalanceStep `json:"steps,omitempty"`
	// Parallelism is the per-vertex choice made for this constraint.
	Parallelism map[string]int `json:"parallelism,omitempty"`
}

// VertexModelInputs are the measured Kingman model inputs and fitted
// coefficients of one vertex (Equations 3–5).
type VertexModelInputs struct {
	Vertex string `json:"vertex"`
	// Lambda is the per-task arrival rate λ; ServiceMean the mean service
	// time s̄; CA2 and CS2 the squared coefficients of variation.
	Lambda      float64 `json:"lambda"`
	ServiceMean float64 `json:"service_mean"`
	CA2         float64 `json:"ca2"`
	CS2         float64 `json:"cs2"`
	// Error is the fitted error coefficient e_jv (Equation 4).
	Error float64 `json:"e"`
	// A and B are the model coefficients (A = e·a).
	A       float64 `json:"a"`
	B       float64 `json:"b"`
	Current int     `json:"current"`
	Min     int     `json:"min"`
	Max     int     `json:"max"`
}

// RebalanceStep is one gradient-descent iteration of Algorithm 1: the
// steepest vertex grew from From to To, where PDelta is the P_Δ target
// (marginal matched to the runner-up) and PW the P_W cap (budget spent
// exactly).
type RebalanceStep struct {
	Vertex   string  `json:"vertex"`
	From     int     `json:"from"`
	To       int     `json:"to"`
	Steepest float64 `json:"steepest"`
	RunnerUp float64 `json:"runner_up,omitempty"`
	PDelta   int     `json:"p_delta,omitempty"`
	PW       int     `json:"p_w,omitempty"`
}

// GatingHold records one per-vertex intervention by the scaler's gating
// (reasons: "dead-band", "scale-down-clamp", "low-coverage"): the
// optimizer proposed Proposed, the gate kept Kept.
type GatingHold struct {
	Vertex   string `json:"vertex"`
	Reason   string `json:"reason"`
	Proposed int    `json:"proposed"`
	Kept     int    `json:"kept"`
}

// Lifecycle is the payload of engine lifecycle events.
type Lifecycle struct {
	Vertex string `json:"vertex,omitempty"`
	Task   string `json:"task,omitempty"`
	// Reason carries the panic value (task_panic) or failure description
	// (vertex_degraded).
	Reason string `json:"reason,omitempty"`
	// Attempts is the consecutive-failure count at restart scheduling.
	Attempts int `json:"attempts,omitempty"`
	// BackoffSeconds is the restart delay chosen by the supervisor.
	BackoffSeconds float64 `json:"backoff_seconds,omitempty"`
	// Drop counters (drop_counters events, reported at shutdown).
	LostRecords       int64 `json:"lost_records,omitempty"`
	DroppedReports    int64 `json:"dropped_reports,omitempty"`
	DroppedNoConsumer int64 `json:"dropped_no_consumer,omitempty"`
	// Barrier-checkpoint fields (checkpoint_* and replay events).
	CheckpointID int64 `json:"checkpoint_id,omitempty"`
	// DurationSeconds is injection-to-commit time (checkpoint_commit).
	DurationSeconds float64 `json:"duration_seconds,omitempty"`
	// CommittedOffsets is the sum of the committed source watermarks
	// (checkpoint_commit) or the number of records re-emitted (replay).
	CommittedOffsets uint64 `json:"committed_offsets,omitempty"`
	// Tail-latency SLO fields (slo_violation events): the constraint
	// name travels in Reason-free form here, the tracked quantile, its
	// current estimate, the constraint bound, and the burn rate over the
	// sliding window at transition time.
	Constraint      string  `json:"constraint,omitempty"`
	Quantile        float64 `json:"quantile,omitempty"`
	EstimateSeconds float64 `json:"estimate_seconds,omitempty"`
	BoundSeconds    float64 `json:"bound_seconds,omitempty"`
	BurnRate        float64 `json:"burn_rate,omitempty"`
	// Data-plane fields (backpressure_* and ring_drain events): the job
	// edge concerned, the backpressure classification, and the sampled
	// inputs it was derived from. The attributed culprit vertex travels
	// in Vertex; ring_drain lost counts in LostRecords.
	Edge          string  `json:"edge,omitempty"`
	State         string  `json:"state,omitempty"`
	OccupancyFrac float64 `json:"occupancy_frac,omitempty"`
	StallFrac     float64 `json:"stall_frac,omitempty"`
}

// jsonSafe clamps non-finite floats so event payloads always marshal:
// encoding/json rejects ±Inf and NaN, but marginals and runner-up gains
// are legitimately infinite at saturated vertices.
func jsonSafe(x float64) float64 {
	switch {
	case math.IsNaN(x):
		return 0
	case math.IsInf(x, 1):
		return math.MaxFloat64
	case math.IsInf(x, -1):
		return -math.MaxFloat64
	default:
		return x
	}
}
