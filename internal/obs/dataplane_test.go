package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestBackpressureClassify pins the attribution heuristic: stall rate or
// high occupancy means backpressure, the consumer's busy fraction
// separates consumer-limited from ring-saturated, and quiet edges are
// idle rather than producer-limited.
func TestBackpressureClassify(t *testing.T) {
	m := NewBackpressureMonitor(BackpressureConfig{})
	cases := []struct {
		name    string
		edge    DataplaneEdge
		state   BackpressureState
		culprit string
	}{
		{"busy consumer, stalls", DataplaneEdge{
			Edge: "a->b", Consumer: "b", Pushes: 100, PushRate: 100,
			StallFrac: 0.2, ConsumerBusy: 0.9}, BackpressureConsumerLimited, "b"},
		{"idle consumer, full ring", DataplaneEdge{
			Edge: "a->b", Consumer: "b", Pushes: 100, PushRate: 100,
			OccupancyFrac: 0.9, ConsumerBusy: 0.1}, BackpressureRingSaturated, "b"},
		{"flowing cleanly", DataplaneEdge{
			Edge: "a->b", Producer: "a", Pushes: 100, PushRate: 100,
			StallFrac: 0.0, OccupancyFrac: 0.1}, BackpressureProducerLimited, "a"},
		{"no traffic", DataplaneEdge{Edge: "a->b"}, BackpressureIdle, ""},
	}
	for _, c := range cases {
		state, culprit := m.classify(c.edge)
		if state != c.state || culprit != c.culprit {
			t.Errorf("%s: got (%s, %q), want (%s, %q)", c.name, state, culprit, c.state, c.culprit)
		}
	}
}

// TestBackpressureTransitions: an onset is recorded once on entering a
// backpressured state, switching between the two backpressured states
// continues the episode, and leaving it records one cleared event with
// the episode duration.
func TestBackpressureTransitions(t *testing.T) {
	m := NewBackpressureMonitor(BackpressureConfig{})
	rec := NewRecorder(16)
	hot := DataplaneEdge{Edge: "a->b", Consumer: "b", Pushes: 1, PushRate: 100, StallFrac: 0.5, ConsumerBusy: 0.9}
	saturated := hot
	saturated.ConsumerBusy = 0.1
	calm := DataplaneEdge{Edge: "a->b", Producer: "a", Pushes: 1, PushRate: 100}

	m.Observe(1, []DataplaneEdge{hot}, rec)
	m.Observe(2, []DataplaneEdge{saturated}, rec) // same episode, new flavor
	st := m.Observe(3, []DataplaneEdge{calm}, rec)

	if st[0].Onsets != 1 {
		t.Errorf("onsets = %d, want 1", st[0].Onsets)
	}
	if got := st[0].Intervals[string(BackpressureConsumerLimited)]; got != 1 {
		t.Errorf("consumer-limited intervals = %d, want 1", got)
	}
	if got := st[0].Intervals[string(BackpressureRingSaturated)]; got != 1 {
		t.Errorf("ring-saturated intervals = %d, want 1", got)
	}
	var kinds []string
	var cleared *Event
	for _, ev := range rec.Events() {
		kinds = append(kinds, ev.Kind)
		if ev.Kind == KindBackpressureCleared {
			ev := ev
			cleared = &ev
		}
	}
	want := []string{KindBackpressureOnset, KindBackpressureCleared}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("event kinds = %v, want %v", kinds, want)
	}
	if cleared.Lifecycle.DurationSeconds != 2 {
		t.Errorf("episode duration = %v, want 2", cleared.Lifecycle.DurationSeconds)
	}
	if cleared.Lifecycle.Vertex != "b" {
		t.Errorf("cleared culprit = %q, want b", cleared.Lifecycle.Vertex)
	}
}

// TestObserveDataplane: feeding a snapshot classifies its edges, caches
// it for /dataplane and the SSE stream, and publishes the gauge series.
func TestObserveDataplane(t *testing.T) {
	tel := NewTelemetry(64)
	tel.ObserveDataplane(DataplaneSnapshot{
		At: 5, Layer: "engine", IntervalSeconds: 1,
		Edges: []DataplaneEdge{{
			Edge: "src->work", Producer: "src", Consumer: "work",
			Rings: 2, Occupancy: 12, Capacity: 16, HighWater: 8,
			Pushes: 1000, PushFails: 200, Pops: 988,
			PushRate: 100, PopRate: 99, StallRate: 20, StallFrac: 0.17,
			OccupancyFrac: 0.75, ConsumerBusy: 0.95,
		}},
		Wheel: &DataplaneWheel{Fires: 7, Armed: 2, ParkedFrac: 0.5},
		Pool:  []DataplanePoolShard{{Shard: 0, Hits: 10, Misses: 2, HitRate: 10.0 / 12}},
	}, nil)

	dp := tel.Dataplane()
	if dp == nil || len(dp.Edges) != 1 {
		t.Fatalf("Dataplane() = %+v", dp)
	}
	if dp.Edges[0].State != string(BackpressureConsumerLimited) || dp.Edges[0].Culprit != "work" {
		t.Errorf("edge classified %s/%s, want consumer-limited/work", dp.Edges[0].State, dp.Edges[0].Culprit)
	}
	if len(dp.Backpressure) != 1 || dp.Backpressure[0].Onsets != 1 {
		t.Errorf("backpressure statuses: %+v", dp.Backpressure)
	}

	var b strings.Builder
	writeMetrics(&b, tel.ExpositionMetrics())
	body := b.String()
	for _, want := range []string{
		`nephelix_dataplane_ring_occupancy{edge="src->work"} 12`,
		`nephelix_dataplane_backpressure_state{edge="src->work"} 2`,
		"nephelix_dataplane_wheel_parked_frac 0.5",
		`nephelix_dataplane_pool_hit_rate{shard="0"}`,
		"# HELP nephelix_dataplane_ring_occupancy Summed SPSC ring occupancy",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestObsDataplaneEndpoint: /dataplane serves the latest snapshot as
// JSON, degrading to an empty (never null) payload before the first
// sample or without telemetry; the /timeseries snapshot always carries
// the dataplane key so dashboard clients can probe for it.
func TestObsDataplaneEndpoint(t *testing.T) {
	tel := NewTelemetry(64)
	srv := httptest.NewServer(NewHandler(ServerConfig{Telemetry: tel}))
	defer srv.Close()

	get := func() map[string]json.RawMessage {
		t.Helper()
		resp, err := http.Get(srv.URL + "/dataplane")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
			t.Fatalf("content type %q", ct)
		}
		var raw map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
			t.Fatal(err)
		}
		return raw
	}

	if raw := get(); string(raw["edges"]) != "[]" {
		t.Errorf("pre-sample edges = %s, want []", raw["edges"])
	}

	tel.ObserveDataplane(DataplaneSnapshot{
		At: 1, Layer: "sim", IntervalSeconds: 1,
		Edges: []DataplaneEdge{{Edge: "a->b", Producer: "a", Consumer: "b", Pushes: 1, PushRate: 1}},
	}, nil)
	raw := get()
	if string(raw["layer"]) != `"sim"` {
		t.Errorf("layer = %s, want sim", raw["layer"])
	}
	var edges []DataplaneEdge
	if err := json.Unmarshal(raw["edges"], &edges); err != nil || len(edges) != 1 {
		t.Fatalf("edges = %s", raw["edges"])
	}

	// The SSE/timeseries snapshot must always expose the key.
	resp, err := http.Get(srv.URL + "/timeseries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snapRaw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&snapRaw); err != nil {
		t.Fatal(err)
	}
	if _, ok := snapRaw["dataplane"]; !ok {
		t.Error("/timeseries snapshot lacks the dataplane key")
	}
}

// TestSourceShardEmittedExposition: the per-shard source gauge renders
// with registry HELP/TYPE and its full vertex/task/shard label set.
func TestSourceShardEmittedExposition(t *testing.T) {
	tel := NewTelemetry(64)
	tel.Store().Gauge("nephelix_source_shard_emitted", map[string]string{
		"vertex": "src", "task": "src[0]", "shard": "1",
	}).Set(1, 4096)

	var b strings.Builder
	writeMetrics(&b, tel.ExpositionMetrics())
	body := b.String()
	for _, want := range []string{
		"# HELP nephelix_source_shard_emitted Records emitted by one source emitter shard (cumulative, labeled vertex/task/shard).",
		"# TYPE nephelix_source_shard_emitted gauge",
		`nephelix_source_shard_emitted{shard="1",task="src[0]",vertex="src"} 4096`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q in:\n%s", want, body)
		}
	}
}
