package obs

// metricHelp is the HELP-text registry for store-backed series: the
// ts.Store tracks only values, so the exposition layer fills # HELP
// lines from this name→text map (ExpositionMetrics). Built-in metrics
// constructed directly in collectMetrics carry their Help inline.
// Unregistered names render without a HELP line, which the exposition
// format permits.
var metricHelp = map[string]string{
	// Per-vertex / per-edge QoS scrape.
	"nephelix_vertex_parallelism":           "Live task count per vertex.",
	"nephelix_vertex_utilization":           "Mean task utilization per vertex over the last interval.",
	"nephelix_vertex_service_mean_seconds":  "Mean UDF service time per vertex.",
	"nephelix_vertex_arrival_rate":          "Per-task record arrival rate per vertex.",
	"nephelix_vertex_task_latency_seconds":  "Mean task latency (read-write) per vertex.",
	"nephelix_vertex_fresh_tasks":           "Tasks with fresh QoS reports per vertex.",
	"nephelix_edge_queue_wait_seconds":      "Measured mean queue wait per edge (QoS layer).",
	"nephelix_edge_channel_latency_seconds": "Mean channel latency per edge.",
	"nephelix_edge_batch_latency_seconds":   "Mean output batch latency per edge.",

	// Sharded source emitters.
	"nephelix_source_shard_emitted": "Records emitted by one source emitter shard (cumulative, labeled vertex/task/shard).",

	// Data-plane X-ray: ring, emitter-lane, wheel and pool samples.
	"nephelix_dataplane_ring_occupancy":          "Summed SPSC ring occupancy (batches) per edge at sample time.",
	"nephelix_dataplane_ring_occupancy_frac":     "Ring occupancy over capacity per edge, 0-1.",
	"nephelix_dataplane_ring_high_water":         "Worst single-ring occupancy high-water mark per edge.",
	"nephelix_dataplane_ring_push_rate":          "Successful ring pushes per second per edge (batches).",
	"nephelix_dataplane_ring_stall_rate":         "Full-ring push rejections per second per edge.",
	"nephelix_dataplane_ring_stall_frac":         "Failed pushes over attempted pushes per edge this interval.",
	"nephelix_dataplane_ring_wait_seconds":       "Estimated batch queueing time per edge (Little's law).",
	"nephelix_dataplane_backpressure_state":      "Backpressure classification per edge: 0 idle, 1 producer-limited, 2 consumer-limited, 3 ring-saturated.",
	"nephelix_dataplane_shard_lag_frac":          "Source shard pacing lag: (intended-actual)/intended emit rate, 0-1.",
	"nephelix_dataplane_shard_parks_total":       "Cumulative park transitions of one source emitter shard.",
	"nephelix_dataplane_wheel_fires_total":       "Cumulative flush-timer-wheel fires.",
	"nephelix_dataplane_wheel_armed":             "Flush-wheel entries currently armed.",
	"nephelix_dataplane_wheel_parked_frac":       "Fraction of the last interval the flush wheel spent parked.",
	"nephelix_dataplane_pool_hit_rate":           "Batch-pool hit rate per pool shard over the interval.",
	"nephelix_dataplane_wait_vs_predicted_ratio": "Measured ring wait over the Kingman-predicted queue wait of the consuming vertex.",

	// Percentile-constraint (tail-aware wait model) gauges.
	"nephelix_tail_kappa":        "Fitted tail coefficient kappa per vertex and target quantile (tail wait over mean wait, >= 1).",
	"nephelix_tail_wait_seconds": "Measured tail-quantile queue wait of the last fit window per vertex.",

	// Model-drift telemetry.
	"nephelix_model_residual_mean_seconds":   "Mean prediction residual (measured-predicted queue wait).",
	"nephelix_model_residual_stddev_seconds": "Stddev of the prediction residual.",
	"nephelix_model_rel_err_mean":            "Mean absolute relative prediction error.",
	"nephelix_model_sign_bias":               "Prediction sign bias (over-under)/(over+under).",
	"nephelix_model_drift":                   "1 when the cell's predictions have drifted, else 0.",

	// SLO accounting.
	"nephelix_slo_error_budget_remaining": "Remaining error budget per constraint, 0-1.",
	"nephelix_slo_burn_rate":              "Error-budget burn rate over the sliding window.",
	"nephelix_slo_estimate_seconds":       "Current tracked-quantile latency estimate per constraint.",
	"nephelix_slo_bound_seconds":          "Constraint latency bound.",
	"nephelix_slo_violations_total":       "Met-to-violated SLO transitions per constraint.",

	// Scaler and checkpoint counters.
	"nephelix_adjust_intervals_total":   "Adjustment intervals observed.",
	"nephelix_scaler_decisions_total":   "Elastic-scaler decisions taken.",
	"nephelix_scaler_scale_ups_total":   "Scale-up actions applied.",
	"nephelix_scaler_scale_downs_total": "Scale-down actions applied.",
	"nephelix_scaler_holds_total":       "Scaling intentions held by gating.",
	"nephelix_scaler_infeasible_total":  "Constraints found infeasible.",
}

// MetricHelp returns the registered HELP text for a metric name, or ""
// when the name has no registered help.
func MetricHelp(name string) string { return metricHelp[name] }
