package obs

import (
	"encoding/json"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"nephelix/internal/core"
	"nephelix/internal/metrics/sketch"
	"nephelix/internal/obs/ts"
	"nephelix/internal/qos"
)

// Telemetry is the live metrics plane of one run: a ts.Store scraped
// every adjustment interval from the global QoS summary, the scaler's
// decision, and the Go runtime, plus a ResidualMonitor pairing each
// interval's Kingman queue-wait predictions with the next interval's
// measurements. The runtimes call ObserveInterval and ObserveE2E; the
// HTTP layer reads the result via /metrics, /timeseries and /dash.
//
// A nil *Telemetry is fully disabled: every method is a no-op costing
// one pointer comparison and zero allocations.
type Telemetry struct {
	store *ts.Store
	res   *ResidualMonitor

	// Hot-path and per-tick handles, cached at construction.
	e2e       *ts.Series
	e2eTail   *ts.Series // quantile sketch over the same sampled stream
	intervals *ts.Series
	decisions *ts.Series
	scaleUps  *ts.Series
	scaleDown *ts.Series
	holds     *ts.Series
	infeas    *ts.Series

	// tailGauges publish the e2e sketch's quantiles per interval, one
	// gauge per ts.DefaultQuantiles entry, for the dashboard sparklines.
	tailGauges []*ts.Series

	// Processing-guarantee series (checkpoint lifecycle, replay, dedup).
	ckptDur       *ts.Series
	ckptInterval  *ts.Series
	ckptStall     *ts.Series
	ckptCommitted *ts.Series
	ckptAborted   *ts.Series
	replayed      *ts.Series
	deduped       *ts.Series

	// slo accumulates per-constraint error-budget state; sloHandles
	// caches the per-constraint gauge/counter series.
	slo     *SLOTracker
	sloMu   sync.Mutex
	sloOut  map[string]*sloSeries
	targets []SLOTarget // last targets observed, for /slo on quiet runs

	// Per-hop latency sketches, cached per edge/vertex identity so the
	// sampled data-plane path does only map lookups (no allocation).
	hopMu      sync.Mutex
	hopEdges   map[string]*hopSeries
	hopService map[string]*ts.Series

	// Tail-fit state: when a TailFitter is bound, winWait keeps one
	// windowed queue-wait sketch per vertex (fed in ObserveHop, reset
	// after each interval's fit), so the scaler's κ coefficients and the
	// residual monitor's tail scoring both see the same fit windows.
	// Guarded by hopMu alongside the hop maps.
	tailFit *core.TailFitter
	winWait map[string]*sketch.Sketch

	mu       sync.Mutex
	resHists map[ResidualKey]*ts.Series

	// Data-plane X-ray state: the backpressure monitor, the latest
	// sampled snapshot (served by /dataplane and the SSE stream), and
	// the cached gauge handles keyed by edge / lane / pool shard.
	bp            *BackpressureMonitor
	dpMu          sync.Mutex
	dpLast        *DataplaneSnapshot
	dpEdges       map[string]*dataplaneEdgeSeries
	dpShards      map[string]*dataplaneShardSeries
	dpPool        map[int]*ts.Series
	dpWaitRatio   map[string]*ts.Series
	dpWheelFires  *ts.Series
	dpWheelArmed  *ts.Series
	dpWheelParked *ts.Series
}

// hopSeries bundles one edge's per-hop latency sketches.
type hopSeries struct {
	batch   *ts.Series
	transit *ts.Series
	wait    *ts.Series
}

// sloSeries bundles one constraint's SLO output series.
type sloSeries struct {
	budget     *ts.Series
	burn       *ts.Series
	estimate   *ts.Series
	bound      *ts.Series
	violations *ts.Series
}

// NewTelemetry returns an enabled telemetry plane whose series keep
// pointsPerSeries points each (ts.DefaultPoints when <= 0).
func NewTelemetry(pointsPerSeries int) *Telemetry {
	st := ts.NewStore(pointsPerSeries)
	tailGauges := make([]*ts.Series, len(ts.DefaultQuantiles))
	for i, q := range ts.DefaultQuantiles {
		tailGauges[i] = st.Gauge("nephelix_tail_e2e_seconds",
			map[string]string{"q": quantileLabel(q)})
	}
	t := &Telemetry{
		store:      st,
		res:        NewResidualMonitor(ResidualConfig{}),
		e2e:        st.Histogram("nephelix_e2e_latency_seconds", nil, ts.LatencyBuckets),
		e2eTail:    st.SketchSeries("nephelix_e2e_latency_tail_seconds", nil, 0),
		tailGauges: tailGauges,
		slo:        NewSLOTracker(0),
		sloOut:     make(map[string]*sloSeries),
		hopEdges:   make(map[string]*hopSeries),
		hopService: make(map[string]*ts.Series),
		intervals:  st.Counter("nephelix_adjust_intervals_total", nil),
		decisions:  st.Counter("nephelix_scaler_decisions_total", nil),
		scaleUps:   st.Counter("nephelix_scaler_scale_ups_total", nil),
		scaleDown:  st.Counter("nephelix_scaler_scale_downs_total", nil),
		holds:      st.Counter("nephelix_scaler_holds_total", nil),
		infeas:     st.Counter("nephelix_scaler_infeasible_total", nil),
		resHists:   make(map[ResidualKey]*ts.Series),

		ckptDur:       st.Gauge("nephelix_checkpoint_duration_seconds", nil),
		ckptInterval:  st.Gauge("nephelix_checkpoint_interval_seconds", nil),
		ckptStall:     st.Gauge("nephelix_checkpoint_alignment_stall_seconds", nil),
		ckptCommitted: st.Counter("nephelix_checkpoints_committed_total", nil),
		ckptAborted:   st.Counter("nephelix_checkpoints_aborted_total", nil),
		replayed:      st.Counter("nephelix_replayed_records_total", nil),
		deduped:       st.Counter("nephelix_deduped_records_total", nil),
	}
	t.dpInit()
	return t
}

// ObserveCheckpoint records one finished barrier checkpoint: its
// injection-to-commit duration, the interval since the previous commit,
// and the worst barrier-alignment stall any task reported. Aborted
// checkpoints only bump the abort counter.
func (t *Telemetry) ObserveCheckpoint(now, duration, interval, stall float64, committed bool) {
	if t == nil {
		return
	}
	if !committed {
		t.ckptAborted.Add(now, 1)
		return
	}
	t.ckptCommitted.Add(now, 1)
	t.ckptDur.Set(now, duration)
	if interval > 0 {
		t.ckptInterval.Set(now, interval)
	}
	t.ckptStall.Set(now, stall)
}

// AddReplayed counts records re-emitted from source replay buffers
// after a recovery.
func (t *Telemetry) AddReplayed(now float64, n int64) {
	if t == nil || n <= 0 {
		return
	}
	t.replayed.Add(now, float64(n))
}

// AddDeduped counts duplicate sink deliveries detected by the
// (source, offset) dedup tables (suppressed under exactly-once).
func (t *Telemetry) AddDeduped(now float64, n int64) {
	if t == nil || n <= 0 {
		return
	}
	t.deduped.Add(now, float64(n))
}

// Store exposes the underlying time-series store (nil when disabled).
func (t *Telemetry) Store() *ts.Store {
	if t == nil {
		return nil
	}
	return t.store
}

// Residuals exposes the prediction-residual monitor (nil when disabled).
func (t *Telemetry) Residuals() *ResidualMonitor {
	if t == nil {
		return nil
	}
	return t.res
}

// BindTailFitter connects the scaler's tail-coefficient fitter: from
// now on ObserveHop also feeds per-vertex windowed queue-wait sketches,
// ObserveInterval fits κ from them (publishing the percentile-constraint
// gauges) and the residual monitor scores tail predictions against the
// same windows. A nil fitter (no percentile constraints) is a no-op.
func (t *Telemetry) BindTailFitter(f *core.TailFitter) {
	if t == nil || f == nil {
		return
	}
	t.hopMu.Lock()
	t.tailFit = f
	if t.winWait == nil {
		t.winWait = make(map[string]*sketch.Sketch)
	}
	t.hopMu.Unlock()
	t.res.SetTailMeasure(t.measuredTailWait)
}

// measuredTailWait returns the current fit window's q-quantile queue
// wait for a vertex, and whether the window has enough observations to
// be meaningful (the fitter's MinSamples would reject it anyway, so an
// empty window reports not-ok).
func (t *Telemetry) measuredTailWait(vertex string, q float64) (float64, bool) {
	if t == nil {
		return 0, false
	}
	t.hopMu.Lock()
	defer t.hopMu.Unlock()
	sk := t.winWait[vertex]
	if sk == nil || sk.Count() == 0 {
		return 0, false
	}
	return sk.Quantile(q), true
}

// ObserveE2E feeds one sampled end-to-end record latency (seconds) into
// the e2e histogram and the e2e quantile sketch. Called at span finish;
// allocation-free after the first observation.
func (t *Telemetry) ObserveE2E(now, latency float64) {
	if t == nil {
		return
	}
	t.e2e.Observe(now, latency)
	t.e2eTail.Observe(now, latency)
}

// ObserveHop feeds one sampled record's hop decomposition into the
// per-edge and per-vertex latency sketches: batch delay, transit and
// queue wait on the edge into vertex, service time in the vertex.
// Called next to Span.Hop for head-sampled records only; the cached
// handle maps keep the path allocation-free after each identity's
// first observation.
func (t *Telemetry) ObserveHop(now float64, vertex, edge string, batch, transit, wait, service float64) {
	if t == nil {
		return
	}
	t.hopMu.Lock()
	hs := t.hopEdges[edge]
	if hs == nil {
		labels := map[string]string{"edge": edge}
		hs = &hopSeries{
			batch:   t.store.SketchSeries("nephelix_hop_batch_delay_seconds", labels, 0),
			transit: t.store.SketchSeries("nephelix_hop_transit_seconds", labels, 0),
			wait:    t.store.SketchSeries("nephelix_hop_queue_wait_seconds", labels, 0),
		}
		t.hopEdges[edge] = hs
	}
	sv := t.hopService[vertex]
	if sv == nil {
		sv = t.store.SketchSeries("nephelix_hop_service_seconds",
			map[string]string{"vertex": vertex}, 0)
		t.hopService[vertex] = sv
	}
	if t.tailFit != nil {
		ws := t.winWait[vertex]
		if ws == nil {
			ws = sketch.NewDefault()
			t.winWait[vertex] = ws
		}
		ws.Add(wait)
	}
	t.hopMu.Unlock()
	hs.batch.Observe(now, batch)
	hs.transit.Observe(now, transit)
	hs.wait.Observe(now, wait)
	sv.Observe(now, service)
}

// ObserveSLO folds one adjustment interval's tail state for one target:
// count cumulative observations, bad of them over the bound, estimate
// the current quantile. It publishes the error-budget gauges and, on a
// met→violated transition, bumps the violation counter and records a
// KindSLOViolation event on rec (which may be nil).
func (t *Telemetry) ObserveSLO(now float64, target SLOTarget, count, bad uint64, estimate float64, rec *Recorder) {
	if t == nil {
		return
	}
	st, transition := t.slo.Observe(target, count, bad, estimate)
	out := t.sloSeriesFor(target.Constraint)
	out.budget.Set(now, st.ErrorBudgetRemaining)
	out.burn.Set(now, st.BurnRate)
	out.estimate.Set(now, st.EstimateSeconds)
	out.bound.Set(now, target.BoundSeconds)
	if transition {
		out.violations.Add(now, 1)
		rec.RecordLifecycle(now, KindSLOViolation, Lifecycle{
			Constraint:      target.Constraint,
			Quantile:        target.Quantile,
			EstimateSeconds: st.EstimateSeconds,
			BoundSeconds:    target.BoundSeconds,
			BurnRate:        jsonSafe(st.BurnRate),
		})
	}
}

// ObserveSLOs folds one interval's tail state for every target against
// the telemetry's own end-to-end sketch (the sampled sink stream).
// Runtimes with per-constraint probes call ObserveSLO directly with
// probe-derived counts instead.
func (t *Telemetry) ObserveSLOs(now float64, targets []SLOTarget, rec *Recorder) {
	if t == nil || len(targets) == 0 {
		return
	}
	t.sloMu.Lock()
	t.targets = targets
	t.sloMu.Unlock()
	for _, tg := range targets {
		count := t.e2eTail.SketchCount()
		bad := t.e2eTail.CountAbove(tg.BoundSeconds)
		est := t.e2eTail.Quantile(tg.Quantile)
		t.ObserveSLO(now, tg, count, bad, est, rec)
	}
}

// sloSeriesFor returns the cached output series of one constraint.
func (t *Telemetry) sloSeriesFor(constraint string) *sloSeries {
	t.sloMu.Lock()
	defer t.sloMu.Unlock()
	out := t.sloOut[constraint]
	if out == nil {
		labels := map[string]string{"constraint": constraint}
		out = &sloSeries{
			budget:     t.store.Gauge("nephelix_slo_error_budget_remaining", labels),
			burn:       t.store.Gauge("nephelix_slo_burn_rate", labels),
			estimate:   t.store.Gauge("nephelix_slo_estimate_seconds", labels),
			bound:      t.store.Gauge("nephelix_slo_bound_seconds", labels),
			violations: t.store.Counter("nephelix_slo_violations_total", labels),
		}
		t.sloOut[constraint] = out
	}
	return out
}

// SLOSnapshot returns every tracked target's latest status, sorted by
// constraint (empty, non-nil, when disabled or before the first
// interval).
func (t *Telemetry) SLOSnapshot() []SLOStatus {
	if t == nil {
		return []SLOStatus{}
	}
	if s := t.slo.Snapshot(); s != nil {
		return s
	}
	return []SLOStatus{}
}

// quantileLabel renders 0.99 as "p99", 0.999 as "p999".
func quantileLabel(q float64) string {
	s := strconv.FormatFloat(q*100, 'f', -1, 64)
	return "p" + strings.ReplaceAll(s, ".", "")
}

// ObserveInterval scrapes one adjustment interval: it scores the
// residual monitor (s is the interval's global summary, d the scaler's
// decision or nil), then records summary, decision, residual and Go
// runtime series. par is the live parallelism vector. It returns the
// currently drifting cells so the caller can embed them in the
// decision's audit event.
func (t *Telemetry) ObserveInterval(now float64, s *qos.Summary, d *core.Decision, par map[string]int) []DriftFlag {
	if t == nil {
		return nil
	}
	scored, flags := t.res.Observe(now, s, d)
	for _, sc := range scored {
		t.residualHist(sc.Constraint, sc.Vertex).Observe(now, math.Abs(sc.Measured-sc.Predicted))
	}
	t.fitTail(now)
	t.scrapeResiduals(now)
	t.scrapeSummary(now, s, par)
	t.scrapeDecision(now, d)
	t.scrapeTail(now)
	t.scrapeRuntime(now)
	return flags
}

// fitTail closes one tail-fit window: every vertex's windowed
// queue-wait sketch is folded into the bound fitter at each target
// quantile, the percentile-constraint gauges (κ and measured tail wait)
// are published, and the windows are reset for the next interval. It
// must run after the residual monitor scored the interval (tail
// predictions read the same windows) and is a no-op without a fitter.
func (t *Telemetry) fitTail(now float64) {
	t.hopMu.Lock()
	f := t.tailFit
	if f == nil {
		t.hopMu.Unlock()
		return
	}
	for vertex, sk := range t.winWait {
		for _, q := range f.Quantiles() {
			f.Observe(vertex, q, core.TailWindow{
				Count:    sk.Count(),
				MeanWait: sk.Mean(),
				TailWait: sk.Quantile(q),
			})
		}
		sk.Reset()
	}
	t.hopMu.Unlock()
	for _, cell := range f.Snapshot() {
		labels := map[string]string{"vertex": cell.Vertex, "q": quantileLabel(cell.Quantile)}
		t.store.Gauge("nephelix_tail_kappa", labels).Set(now, cell.Kappa)
		t.store.Gauge("nephelix_tail_wait_seconds", labels).Set(now, cell.LastTail)
	}
}

// scrapeTail publishes the e2e sketch's quantiles as per-interval
// gauges, so the dashboard can draw p50/p95/p99/p999 sparklines.
func (t *Telemetry) scrapeTail(now float64) {
	if t.e2eTail.SketchCount() == 0 {
		return
	}
	for i, q := range ts.DefaultQuantiles {
		t.tailGauges[i].Set(now, t.e2eTail.Quantile(q))
	}
}

// residualHist returns the per-cell |residual| histogram, cached.
func (t *Telemetry) residualHist(constraint, vertex string) *ts.Series {
	key := ResidualKey{Constraint: constraint, Vertex: vertex}
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.resHists[key]
	if h == nil {
		h = t.store.Histogram("nephelix_model_abs_residual_seconds",
			map[string]string{"constraint": constraint, "vertex": vertex}, ts.LatencyBuckets)
		t.resHists[key] = h
	}
	return h
}

// scrapeResiduals publishes the monitor's aggregate statistics as
// gauge series.
func (t *Telemetry) scrapeResiduals(now float64) {
	for _, rs := range t.res.Snapshot() {
		labels := map[string]string{"constraint": rs.Constraint, "vertex": rs.Vertex}
		t.store.Gauge("nephelix_model_residual_mean_seconds", labels).Set(now, rs.ResidualMean)
		t.store.Gauge("nephelix_model_residual_stddev_seconds", labels).Set(now, rs.ResidualStdDev)
		t.store.Gauge("nephelix_model_rel_err_mean", labels).Set(now, rs.MeanAbsRelErr)
		t.store.Gauge("nephelix_model_sign_bias", labels).Set(now, rs.SignBias)
		drift := 0.0
		if rs.Drift {
			drift = 1
		}
		t.store.Gauge("nephelix_model_drift", labels).Set(now, drift)
	}
}

// scrapeSummary publishes the per-vertex and per-edge QoS measurements.
func (t *Telemetry) scrapeSummary(now float64, s *qos.Summary, par map[string]int) {
	if s == nil {
		return
	}
	names := make([]string, 0, len(s.Vertices))
	for name := range s.Vertices {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		vs := s.Vertices[name]
		labels := map[string]string{"vertex": name}
		p := vs.Parallelism
		if live, ok := par[name]; ok {
			p = live
		}
		t.store.Gauge("nephelix_vertex_parallelism", labels).Set(now, float64(p))
		t.store.Gauge("nephelix_vertex_utilization", labels).Set(now, vs.Utilization())
		t.store.Gauge("nephelix_vertex_service_mean_seconds", labels).Set(now, vs.ServiceTimeMean)
		t.store.Gauge("nephelix_vertex_arrival_rate", labels).Set(now, vs.ArrivalRate())
		t.store.Gauge("nephelix_vertex_task_latency_seconds", labels).Set(now, vs.TaskLatency)
		t.store.Gauge("nephelix_vertex_fresh_tasks", labels).Set(now, float64(vs.FreshTasks))
	}
	edges := make([]string, 0, len(s.Edges))
	byName := make(map[string]qos.EdgeStats, len(s.Edges))
	for key, es := range s.Edges {
		name := key.String()
		edges = append(edges, name)
		byName[name] = es
	}
	sort.Strings(edges)
	for _, name := range edges {
		es := byName[name]
		labels := map[string]string{"edge": name}
		t.store.Gauge("nephelix_edge_queue_wait_seconds", labels).Set(now, es.QueueWait())
		t.store.Gauge("nephelix_edge_channel_latency_seconds", labels).Set(now, es.ChannelLatency)
		t.store.Gauge("nephelix_edge_batch_latency_seconds", labels).Set(now, es.OutputBatchLatency)
	}
}

// scrapeDecision counts the interval and the decision's outcome.
func (t *Telemetry) scrapeDecision(now float64, d *core.Decision) {
	t.intervals.Add(now, 1)
	if d == nil {
		return
	}
	t.decisions.Add(now, 1)
	ups, downs := 0, 0
	for _, a := range d.Actions {
		if a.IsScaleUp() {
			ups++
		} else {
			downs++
		}
	}
	if ups > 0 {
		t.scaleUps.Add(now, float64(ups))
	}
	if downs > 0 {
		t.scaleDown.Add(now, float64(downs))
	}
	if len(d.Holds) > 0 {
		t.holds.Add(now, float64(len(d.Holds)))
	}
	infeasible := 0
	for _, cd := range d.PerConstraint {
		if cd.Infeasible {
			infeasible++
		}
	}
	if infeasible > 0 {
		t.infeas.Add(now, float64(infeasible))
	}
}

// scrapeRuntime samples the Go runtime: heap, GC and goroutine counts.
// One ReadMemStats per adjustment interval is cheap enough.
func (t *Telemetry) scrapeRuntime(now float64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.store.Gauge("nephelix_go_heap_alloc_bytes", nil).Set(now, float64(ms.HeapAlloc))
	t.store.Gauge("nephelix_go_gc_pause_total_seconds", nil).Set(now, float64(ms.PauseTotalNs)/1e9)
	t.store.Gauge("nephelix_go_gcs_total", nil).Set(now, float64(ms.NumGC))
	t.store.Gauge("nephelix_go_goroutines", nil).Set(now, float64(runtime.NumGoroutine()))
}

// ExpositionMetrics renders the store for /metrics: counters and gauges
// as their latest value, histograms with cumulative buckets. The result
// is sorted by series identity, so scrapes are deterministic.
func (t *Telemetry) ExpositionMetrics() []Metric {
	if t == nil {
		return nil
	}
	snaps := t.store.Snapshot()
	out := make([]Metric, 0, len(snaps))
	for _, sn := range snaps {
		m := Metric{Name: sn.Name, Help: metricHelp[sn.Name], Labels: sn.Labels, Type: sn.Kind}
		switch sn.Kind {
		case "counter":
			m.Value = sn.Total
		case "histogram":
			m.Sum = sn.Sum
			m.SampleCount = sn.Count
			m.Buckets = make([]BucketCount, len(sn.Buckets))
			for i, b := range sn.Buckets {
				m.Buckets[i] = BucketCount{UpperBound: b.LE, CumulativeCount: b.Count}
			}
		case "sketch":
			// Sketch series render as Prometheus summaries: one sample
			// per exposed quantile plus _sum/_count.
			m.Type = "summary"
			m.Sum = sn.Sum
			m.SampleCount = sn.Count
			m.Quantiles = make([]SummaryQuantile, len(sn.Quantiles))
			for i, qv := range sn.Quantiles {
				m.Quantiles[i] = SummaryQuantile{Quantile: qv.Quantile, Value: qv.Value}
			}
		default:
			if n := len(sn.Points); n > 0 {
				m.Value = sn.Points[n-1].V
			}
		}
		out = append(out, m)
	}
	return out
}

// TimeseriesSnapshot is the JSON payload of /timeseries and the SSE
// dashboard stream.
type TimeseriesSnapshot struct {
	Series    []ts.SeriesSnapshot `json:"series"`
	Residuals []ResidualStat      `json:"residuals"`
	Drift     []DriftFlag         `json:"drift,omitempty"`
	// SLO carries the per-constraint error-budget statuses so the
	// dashboard's tail panel renders burn rates live.
	SLO []SLOStatus `json:"slo,omitempty"`
	// Dataplane is the latest data-plane sample (null until the first
	// adjustment interval; the key is always present so stream
	// consumers can rely on it).
	Dataplane *DataplaneSnapshot `json:"dataplane"`
}

// Snapshot renders the query (see ts.Store.Query for the parameters)
// plus the residual monitor's statistics. Nil-safe: a disabled
// telemetry yields empty (non-null) collections.
func (t *Telemetry) Snapshot(prefix string, since float64, maxPoints int) TimeseriesSnapshot {
	snap := TimeseriesSnapshot{Series: []ts.SeriesSnapshot{}, Residuals: []ResidualStat{}}
	if t == nil {
		return snap
	}
	if s := t.store.Query(prefix, since, maxPoints); s != nil {
		snap.Series = s
	}
	if r := t.res.Snapshot(); r != nil {
		snap.Residuals = r
	}
	snap.Drift = t.res.DriftFlags()
	snap.SLO = t.slo.Snapshot()
	snap.Dataplane = t.Dataplane()
	return snap
}

// WriteJSON dumps the full telemetry snapshot as indented JSON — the
// shape served by /timeseries — for offline artifacts.
func (t *Telemetry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Snapshot("", 0, 0))
}
