package obs

import (
	"nephelix/internal/core"
)

// NewScalingDecision maps one core.Decision (as returned by
// ElasticScaler.Decide or ScaleReactively) into the audit-trail event
// payload. interval is the adjustment-interval ordinal; current is the
// parallelism vector the decision was made against.
func NewScalingDecision(interval int, d *core.Decision, current map[string]int) *ScalingDecision {
	if d == nil {
		return nil
	}
	sd := &ScalingDecision{
		Interval: interval,
		Old:      copyIntMap(current),
		New:      copyIntMap(d.Desired),
	}
	for _, cd := range d.PerConstraint {
		ev := ConstraintDecision{
			Skipped:        cd.Skipped,
			Bottleneck:     cd.Bottleneck,
			Infeasible:     cd.Infeasible,
			Unresolvable:   cd.Unresolvable,
			Coverage:       cd.Coverage,
			LowCoverage:    cd.LowCoverage,
			QueueWaitLimit: jsonSafe(cd.QueueWaitLimit),
			Parallelism:    copyIntMap(cd.Parallelism),
		}
		if cd.Constraint != nil {
			ev.Constraint = cd.Constraint.Name
		}
		for _, vm := range cd.Models {
			ev.Model = append(ev.Model, VertexModelInputs{
				Vertex:      vm.Name,
				Lambda:      jsonSafe(vm.Lambda),
				ServiceMean: jsonSafe(vm.SMean),
				CA2:         jsonSafe(vm.CA2),
				CS2:         jsonSafe(vm.CS2),
				Error:       jsonSafe(vm.E),
				A:           jsonSafe(vm.A),
				B:           jsonSafe(vm.B),
				Current:     vm.Current,
				Min:         vm.Min,
				Max:         vm.Max,
			})
		}
		for _, st := range cd.Steps {
			ev.Steps = append(ev.Steps, RebalanceStep{
				Vertex:   st.Vertex,
				From:     st.From,
				To:       st.To,
				Steepest: jsonSafe(st.Steepest),
				RunnerUp: jsonSafe(st.RunnerUp),
				PDelta:   st.PDelta,
				PW:       st.PW,
			})
		}
		sd.Constraints = append(sd.Constraints, ev)
	}
	for _, h := range d.Holds {
		sd.Holds = append(sd.Holds, GatingHold{
			Vertex: h.Vertex, Reason: h.Reason, Proposed: h.Proposed, Kept: h.Kept,
		})
	}
	for _, a := range d.Actions {
		sd.Actions = append(sd.Actions, a.String())
	}
	return sd
}

// copyIntMap snapshots a parallelism vector so later mutation by the
// runtime cannot corrupt recorded events.
func copyIntMap(m map[string]int) map[string]int {
	if m == nil {
		return nil
	}
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
