package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nephelix/internal/core"
	"nephelix/internal/model"
	"nephelix/internal/obs/ts"
)

// TestObsSLOTrackerBudget pins the error-budget arithmetic: budget is
// the allowed bad fraction 1−q, remaining budget falls linearly with
// the bad fraction and goes negative when overspent.
func TestObsSLOTrackerBudget(t *testing.T) {
	tr := NewSLOTracker(4)
	target := SLOTarget{Constraint: "c", Quantile: 0.99, BoundSeconds: 0.1}

	st, transition := tr.Observe(target, 1000, 0, 0.05)
	if transition {
		t.Error("no violation expected on a met target")
	}
	if st.ErrorBudgetRemaining != 1 {
		t.Errorf("untouched budget = %v, want 1", st.ErrorBudgetRemaining)
	}
	// 10 bad of 1000 at q=0.99: bad fraction 0.01 == allowed 0.01 →
	// budget exactly spent.
	st, _ = tr.Observe(target, 1000, 10, 0.05)
	if math.Abs(st.ErrorBudgetRemaining) > 1e-12 {
		t.Errorf("exactly-spent budget = %v, want 0", st.ErrorBudgetRemaining)
	}
	// 20 bad of 1000: budget overspent → −1.
	st, _ = tr.Observe(target, 1000, 20, 0.05)
	if math.Abs(st.ErrorBudgetRemaining+1) > 1e-12 {
		t.Errorf("overspent budget = %v, want -1", st.ErrorBudgetRemaining)
	}
	if st.BadFraction != 0.02 {
		t.Errorf("bad fraction = %v, want 0.02", st.BadFraction)
	}
}

// TestObsSLOTrackerBurnWindow: the burn rate differentiates against the
// oldest ring entry, so a burst of bad records shows a high windowed
// burn that decays as the window slides past it.
func TestObsSLOTrackerBurnWindow(t *testing.T) {
	tr := NewSLOTracker(3)
	target := SLOTarget{Constraint: "c", Quantile: 0.99, BoundSeconds: 0.1}

	// Until the ring is full the burn rate stays 0 (no oldest point to
	// differentiate against; whole-run state is the budget's job).
	for i := uint64(1); i <= 3; i++ {
		st, _ := tr.Observe(target, i*100, 0, 0.01)
		if st.BurnRate != 0 {
			t.Errorf("interval %d: burn = %v before ring fills, want 0", i, st.BurnRate)
		}
	}
	// Burst: +100 observations, +10 bad in the window (Δ vs oldest =
	// ring[next] = {100,0}): windowed bad fraction (10-0)/(400-100)=1/30,
	// over budget 0.01 → ~3.33.
	st, _ := tr.Observe(target, 400, 10, 0.05)
	want := (10.0 / 300.0) / 0.01
	if math.Abs(st.BurnRate-want) > 1e-9 {
		t.Errorf("burst burn = %v, want %v", st.BurnRate, want)
	}
	// Quiet intervals slide the burst out of the window: once the oldest
	// point already includes the 10 bad, the windowed burn returns to 0.
	tr.Observe(target, 500, 10, 0.01)
	tr.Observe(target, 600, 10, 0.01)
	st, _ = tr.Observe(target, 700, 10, 0.01)
	if st.BurnRate != 0 {
		t.Errorf("post-burst burn = %v, want 0", st.BurnRate)
	}
}

// TestObsSLOTrackerViolationTransitions: Violated tracks the estimate
// vs bound, and Violations counts only met→violated edges.
func TestObsSLOTrackerViolationTransitions(t *testing.T) {
	tr := NewSLOTracker(0)
	target := SLOTarget{Constraint: "c", Quantile: 0.99, BoundSeconds: 0.1}

	st, transition := tr.Observe(target, 10, 0, 0.2)
	if !transition || !st.Violated || st.Violations != 1 {
		t.Errorf("first breach: transition=%v violated=%v n=%d", transition, st.Violated, st.Violations)
	}
	st, transition = tr.Observe(target, 20, 0, 0.3)
	if transition || !st.Violated || st.Violations != 1 {
		t.Errorf("sustained breach must not re-count: transition=%v n=%d", transition, st.Violations)
	}
	st, transition = tr.Observe(target, 30, 0, 0.05)
	if transition || st.Violated {
		t.Errorf("recovery: transition=%v violated=%v", transition, st.Violated)
	}
	st, transition = tr.Observe(target, 40, 0, 0.2)
	if !transition || st.Violations != 2 {
		t.Errorf("second breach: transition=%v n=%d", transition, st.Violations)
	}
	// Zero observations never violate, whatever the estimate says.
	if st, _ := tr.Observe(SLOTarget{Constraint: "empty", Quantile: 0.99, BoundSeconds: 0.1}, 0, 0, 9); st.Violated {
		t.Error("empty target reported violated")
	}

	// Nil tracker is a no-op.
	var nilTr *SLOTracker
	if st, tr2 := nilTr.Observe(target, 1, 1, 1); tr2 || st.Count != 0 {
		t.Error("nil tracker not inert")
	}
	if nilTr.Snapshot() != nil {
		t.Error("nil tracker snapshot not nil")
	}
}

// TestObsTelemetrySLOViolationEvent: ObserveSLO publishes the budget
// gauges and records a KindSLOViolation lifecycle event exactly on
// met→violated transitions.
func TestObsTelemetrySLOViolationEvent(t *testing.T) {
	tel := NewTelemetry(64)
	rec := NewRecorder(16)
	target := SLOTarget{Constraint: "c1", Quantile: 0.99, BoundSeconds: 0.1}

	tel.ObserveSLO(1, target, 100, 0, 0.05, rec)
	if rec.Len() != 0 {
		t.Fatalf("met target recorded %d events, want 0", rec.Len())
	}
	tel.ObserveSLO(2, target, 200, 4, 0.15, rec)
	tel.ObserveSLO(3, target, 300, 4, 0.2, rec) // sustained: no new event
	evs := rec.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Kind != KindSLOViolation || ev.Lifecycle == nil {
		t.Fatalf("unexpected event %+v", ev)
	}
	if ev.Lifecycle.Constraint != "c1" || ev.Lifecycle.BoundSeconds != 0.1 ||
		ev.Lifecycle.EstimateSeconds != 0.15 || ev.Lifecycle.Quantile != 0.99 {
		t.Errorf("violation payload %+v", ev.Lifecycle)
	}

	snap := tel.SLOSnapshot()
	if len(snap) != 1 || !snap[0].Violated || snap[0].Violations != 1 {
		t.Errorf("SLOSnapshot = %+v", snap)
	}
	// The snapshot rides the timeseries payload for the dashboard.
	full := tel.Snapshot("", 0, 10)
	if len(full.SLO) != 1 || full.SLO[0].Constraint != "c1" {
		t.Errorf("TimeseriesSnapshot.SLO = %+v", full.SLO)
	}
	// Budget gauges exist.
	found := 0
	for _, s := range full.Series {
		switch s.Name {
		case "nephelix_slo_error_budget_remaining", "nephelix_slo_burn_rate",
			"nephelix_slo_estimate_seconds", "nephelix_slo_bound_seconds",
			"nephelix_slo_violations_total":
			if s.Labels["constraint"] == "c1" {
				found++
			}
		}
	}
	if found != 5 {
		t.Errorf("found %d SLO series, want 5", found)
	}
}

// TestObsTelemetrySLOFallback: ObserveSLOs derives counts from the
// telemetry's own e2e sketch when no probe feeds the target.
func TestObsTelemetrySLOFallback(t *testing.T) {
	tel := NewTelemetry(64)
	rec := NewRecorder(16)
	for i := 0; i < 99; i++ {
		tel.ObserveE2E(1, 0.010)
	}
	tel.ObserveE2E(1, 0.500) // one bad record over a 100ms bound
	targets := []SLOTarget{{Constraint: "c", Quantile: 0.99, BoundSeconds: 0.1}}
	tel.ObserveSLOs(2, targets, rec)

	snap := tel.SLOSnapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
	st := snap[0]
	if st.Count != 100 || st.Bad != 1 {
		t.Errorf("count=%d bad=%d, want 100/1", st.Count, st.Bad)
	}
	// 1% bad at a 1% budget: exactly spent.
	if math.Abs(st.ErrorBudgetRemaining) > 1e-9 {
		t.Errorf("budget remaining = %v, want 0", st.ErrorBudgetRemaining)
	}
	// p99 over {99×10ms, 1×500ms} is the 99th value = 10ms (±α).
	if st.EstimateSeconds > 0.011 {
		t.Errorf("p99 estimate = %v, want ~0.010", st.EstimateSeconds)
	}
	if st.Violated {
		t.Error("p99 within bound must not violate")
	}
}

// TestObsSLOEndpoint: /slo serves the tracked targets as JSON and
// degrades to an empty targets list without a telemetry plane.
func TestObsSLOEndpoint(t *testing.T) {
	tel := NewTelemetry(64)
	tel.ObserveSLO(1, SLOTarget{Constraint: "c1", Quantile: 0.99, BoundSeconds: 0.215}, 50, 2, 0.18, nil)
	srv := httptest.NewServer(NewHandler(ServerConfig{Telemetry: tel}))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		Targets []SLOStatus `json:"targets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatalf("/slo is not JSON: %v", err)
	}
	if len(payload.Targets) != 1 {
		t.Fatalf("targets = %+v", payload.Targets)
	}
	st := payload.Targets[0]
	if st.Constraint != "c1" || st.BoundSeconds != 0.215 || st.Count != 50 || st.Bad != 2 {
		t.Errorf("payload %+v", st)
	}

	// No telemetry: empty, well-formed payload.
	bare := httptest.NewServer(NewHandler(ServerConfig{}))
	defer bare.Close()
	resp2, err := bare.Client().Get(bare.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var empty struct {
		Targets []SLOStatus `json:"targets"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&empty); err != nil {
		t.Fatalf("empty /slo is not JSON: %v", err)
	}
	if empty.Targets == nil || len(empty.Targets) != 0 {
		t.Errorf("empty /slo targets = %#v, want []", empty.Targets)
	}
}

// TestObsTailGaugesAndExposition: ObserveInterval publishes the e2e
// tail quantile gauges, and /metrics renders the e2e sketch as a
// Prometheus summary with quantile labels.
func TestObsTailGaugesAndExposition(t *testing.T) {
	tel := NewTelemetry(64)
	for i := 1; i <= 1000; i++ {
		tel.ObserveE2E(1, float64(i)*0.001)
	}
	tel.ObserveInterval(2, nil, nil, nil)

	snap := tel.Snapshot("nephelix_tail_e2e_seconds", 0, 10)
	byQ := map[string]float64{}
	for _, s := range snap.Series {
		if len(s.Points) > 0 {
			byQ[s.Labels["q"]] = s.Points[len(s.Points)-1].V
		}
	}
	for _, q := range []string{"p50", "p90", "p95", "p99", "p999"} {
		if _, ok := byQ[q]; !ok {
			t.Fatalf("missing tail gauge %q (have %v)", q, byQ)
		}
	}
	if !(byQ["p50"] < byQ["p99"] && byQ["p99"] <= byQ["p999"]) {
		t.Errorf("tail quantiles not monotone: %v", byQ)
	}
	if math.Abs(byQ["p99"]-0.990) > 0.990*0.02 {
		t.Errorf("p99 gauge = %v, want ~0.990", byQ["p99"])
	}

	var b strings.Builder
	writeMetrics(&b, tel.ExpositionMetrics())
	out := b.String()
	for _, want := range []string{
		"# TYPE nephelix_e2e_latency_tail_seconds summary",
		`nephelix_e2e_latency_tail_seconds{quantile="0.99"}`,
		"nephelix_e2e_latency_tail_seconds_count 1000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestObsTelemetryObserveHop: per-hop sketches land in per-edge and
// per-vertex sketch series.
func TestObsTelemetryObserveHop(t *testing.T) {
	tel := NewTelemetry(64)
	for i := 0; i < 100; i++ {
		tel.ObserveHop(1, "worker", "src->worker", 0.001, 0, 0.002, 0.004)
	}
	names := map[string]bool{}
	for _, s := range tel.Snapshot("nephelix_hop_", 0, 10).Series {
		names[s.Name+"|"+s.Labels["edge"]+s.Labels["vertex"]] = true
	}
	for _, want := range []string{
		"nephelix_hop_batch_delay_seconds|src->worker",
		"nephelix_hop_transit_seconds|src->worker",
		"nephelix_hop_queue_wait_seconds|src->worker",
		"nephelix_hop_service_seconds|worker",
	} {
		if !names[want] {
			t.Errorf("missing hop series %q (have %v)", want, names)
		}
	}
}

// TestObsTracerTailAttribution: per-hop sketches identify a hop that
// dominates the tail but not the mean.
func TestObsTracerTailAttribution(t *testing.T) {
	tr := NewTracer(1)
	// "edge a->b" has a modest constant latency; "b" (service) is cheap
	// on average but has a heavy tail: it should dominate p99 only.
	for i := 0; i < 1000; i++ {
		sp := tr.StartSpan(0)
		sp.Hop("b", "a->b", 0.020, 0, 0, 0.001)
		if i >= 980 { // ~2% of service samples: heavy tail
			sp = tr.StartSpan(0)
			sp.Hop("b", "a->b", 0.020, 0, 0, 0.300)
		}
		sp.Finish(0.02)
	}
	rep := tr.TailAttribution(0.99)
	if rep.Quantile != 0.99 {
		t.Fatalf("quantile = %v", rep.Quantile)
	}
	if rep.DominantMean != "edge a->b" {
		t.Errorf("dominant mean = %q, want edge a->b", rep.DominantMean)
	}
	if rep.DominantTail != "vertex b" {
		t.Errorf("dominant tail = %q, want vertex b", rep.DominantTail)
	}
	var shares float64
	for _, h := range rep.Hops {
		shares += h.TailShare
	}
	if math.Abs(shares-1) > 1e-9 {
		t.Errorf("tail shares sum to %v, want 1", shares)
	}
	// Out-of-range quantile clamps to 0.99; nil tracer is inert.
	if rep := tr.TailAttribution(7); rep.Quantile != 0.99 {
		t.Errorf("clamped quantile = %v", rep.Quantile)
	}
	var nilTr *Tracer
	if rep := nilTr.TailAttribution(0.99); len(rep.Hops) != 0 {
		t.Error("nil tracer produced hops")
	}
	if s := rep.String(); !strings.Contains(s, "dominant at mean") {
		t.Errorf("report string missing dominance line:\n%s", s)
	}
}

// TestObsSketchSeriesKind: the ts store's sketch series kind records
// into a mergeable sketch and snapshots quantile summaries.
func TestObsSketchSeriesKind(t *testing.T) {
	store := ts.NewStore(8)
	s := store.SketchSeries("lat", map[string]string{"vertex": "v"}, 0.01)
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i), float64(i))
	}
	if s.SketchCount() != 100 {
		t.Fatalf("count = %d", s.SketchCount())
	}
	if q := s.Quantile(0.5); math.Abs(q-50) > 50*0.02 {
		t.Errorf("p50 = %v, want ~50", q)
	}
	if got := s.CountAbove(90); got != 10 {
		t.Errorf("CountAbove(90) = %d, want 10", got)
	}
	snaps := store.Query("lat", 0, 10)
	if len(snaps) != 1 {
		t.Fatalf("snapshot count %d", len(snaps))
	}
	sn := snaps[0]
	if sn.Kind != "sketch" || sn.Alpha != 0.01 || sn.Count != 100 || len(sn.Quantiles) == 0 {
		t.Errorf("snapshot %+v", sn)
	}
	// Same identity returns the same series; Observe on a non-sketch
	// kind ignores sketch accessors.
	if store.SketchSeries("lat", map[string]string{"vertex": "v"}, 0.01) != s {
		t.Error("sketch series identity not cached")
	}
	g := store.Gauge("g", nil)
	g.Set(1, 5)
	if g.Quantile(0.5) != 0 || g.SketchCount() != 0 {
		t.Error("non-sketch series leaked sketch state")
	}
}

// TestObsTailFitGauges: binding a tail fitter publishes the
// percentile-constraint gauges — κ and the measured tail wait — per
// vertex and quantile once a fit window closes, and percentile
// constraints carry their own quantile into the SLO targets.
func TestObsTailFitGauges(t *testing.T) {
	tel := NewTelemetry(64)
	fit := core.NewTailFitter(core.DefaultTailFitterConfig(), 0.99)
	tel.BindTailFitter(fit)
	for i := 1; i <= 100; i++ {
		tel.ObserveHop(1, "worker", "src->worker", 0, 0, float64(i)*0.001, 0.004)
	}
	tel.ObserveInterval(2, nil, nil, nil)

	kappa, state := fit.Kappa("worker", 0.99)
	if state != core.TailFitFresh {
		t.Fatalf("fitter state = %q, want %q", state, core.TailFitFresh)
	}
	if kappa <= 1 {
		t.Errorf("κ = %v, want > 1 for a spread wait window", kappa)
	}

	got := map[string]float64{}
	for _, s := range tel.Snapshot("nephelix_tail_", 0, 10).Series {
		if len(s.Points) > 0 && s.Labels["vertex"] == "worker" {
			got[s.Name+"|"+s.Labels["q"]] = s.Points[len(s.Points)-1].V
		}
	}
	if v, ok := got["nephelix_tail_kappa|p99"]; !ok || v != kappa {
		t.Errorf("κ gauge = %v, %v; want %v published", v, ok, kappa)
	}
	if v, ok := got["nephelix_tail_wait_seconds|p99"]; !ok || v <= 0 {
		t.Errorf("tail wait gauge = %v, %v; want positive", v, ok)
	}

	var b strings.Builder
	writeMetrics(&b, tel.ExpositionMetrics())
	out := b.String()
	for _, want := range []string{
		`nephelix_tail_kappa{q="p99",vertex="worker"}`,
		`nephelix_tail_wait_seconds{q="p99",vertex="worker"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	seq := percentileTestSequence(t)
	targets := SLOTargetsFromConstraints([]*model.Constraint{
		{Name: "tail", Sequence: seq, Bound: 30 * time.Millisecond, Window: time.Second, Quantile: 0.95},
		{Name: "mean", Sequence: seq, Bound: 30 * time.Millisecond, Window: time.Second},
	})
	if targets[0].Quantile != 0.95 {
		t.Errorf("percentile constraint target quantile = %v, want 0.95", targets[0].Quantile)
	}
	if targets[1].Quantile != DefaultSLOQuantile {
		t.Errorf("mean constraint target quantile = %v, want default %v", targets[1].Quantile, DefaultSLOQuantile)
	}
}

// percentileTestSequence builds a minimal two-vertex sequence for
// constraint construction in tests.
func percentileTestSequence(t *testing.T) *model.Sequence {
	t.Helper()
	g := model.NewJobGraph()
	for _, v := range []model.JobVertex{
		{Name: "src", Parallelism: 1, MinParallelism: 1, MaxParallelism: 1},
		{Name: "worker", Parallelism: 1, MinParallelism: 1, MaxParallelism: 4},
	} {
		if err := g.AddVertex(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge("src", "worker", model.PatternRoundRobin); err != nil {
		t.Fatal(err)
	}
	seq, err := model.ParseSequence(g, "src->worker", "worker")
	if err != nil {
		t.Fatal(err)
	}
	return seq
}
