package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// The /dash endpoint is a self-contained live dashboard: a single HTML
// page (no external assets, stdlib only) that subscribes to /dash/sse
// and redraws canvas line charts from each snapshot. The SSE stream
// sends the full TimeseriesSnapshot every interval, so the client is
// stateless and reconnects cleanly.

// serveDashPage serves the embedded dashboard page.
func serveDashPage(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, dashHTML)
}

// serveDashSSE streams telemetry snapshots as server-sent events.
// ?interval_ms=N (>= 100, default 1000) sets the push period. A slow or
// stalled consumer blocks only this handler's goroutine: snapshotting
// holds the store's per-series locks briefly, and the blocking write
// happens after the locks are released, so recording never stalls.
func serveDashSSE(w http.ResponseWriter, r *http.Request, tel *Telemetry) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	interval := time.Second
	if q := r.URL.Query().Get("interval_ms"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v >= 100 {
			interval = time.Duration(v) * time.Millisecond
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	fmt.Fprint(w, "retry: 2000\n\n")

	send := func() bool {
		data, err := json.Marshal(tel.Snapshot("", 0, 240))
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if !send() {
		return
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
			if !send() {
				return
			}
		}
	}
}

const dashHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>nephelix telemetry</title>
<style>
  :root { color-scheme: dark; }
  body { margin: 0; padding: 16px; background: #14171c; color: #d8dde6;
         font: 13px/1.4 system-ui, sans-serif; }
  h1 { font-size: 16px; margin: 0 0 4px; }
  #status { color: #8a93a3; margin-bottom: 12px; }
  #status.live::before { content: "● "; color: #4cc38a; }
  #status.down::before { content: "● "; color: #e5484d; }
  #drift { display: none; margin: 0 0 12px; padding: 8px 12px;
           background: #3a1d1f; border: 1px solid #e5484d; border-radius: 6px; }
  #charts { display: grid; grid-template-columns: repeat(auto-fill, minmax(340px, 1fr));
            gap: 12px; }
  .card { background: #1b1f26; border: 1px solid #2a2f3a; border-radius: 8px;
          padding: 10px 12px; }
  .card h2 { font-size: 12px; font-weight: 600; margin: 0 0 6px; color: #aeb6c4;
             overflow-wrap: anywhere; }
  .card canvas { width: 100%; height: 120px; display: block; }
  .legend { margin-top: 4px; color: #8a93a3; font-size: 11px; }
  .legend b { font-weight: 600; }
  table { border-collapse: collapse; margin-top: 16px; width: 100%; }
  th, td { text-align: right; padding: 4px 10px; border-bottom: 1px solid #2a2f3a; }
  th { color: #8a93a3; font-weight: 600; }
  th:first-child, td:first-child, th:nth-child(2), td:nth-child(2) { text-align: left; }
  .drifting { color: #e5484d; font-weight: 600; }
  .ok { color: #4cc38a; }
  #tails { display: grid; grid-template-columns: repeat(auto-fill, minmax(240px, 1fr));
           gap: 12px; }
  .gauge { display: inline-block; width: 90px; height: 9px; background: #2a2f3a;
           border-radius: 5px; overflow: hidden; vertical-align: middle; margin-right: 6px; }
  .gauge div { height: 100%; background: #4cc38a; }
  .gauge .warn { background: #f5a623; }
  .gauge .bad { background: #e5484d; }
</style>
</head>
<body>
<h1>nephelix telemetry</h1>
<div id="status">connecting…</div>
<div id="drift"></div>
<h1>tail latency</h1>
<div id="tails"></div>
<table id="slo" style="display:none">
  <thead><tr><th>constraint</th><th>target</th><th>estimate (ms)</th>
    <th>bad fraction</th><th>error budget</th><th>burn rate</th>
    <th>violations</th><th>status</th></tr></thead>
  <tbody></tbody>
</table>
<h1 style="margin-top:20px">data plane / backpressure</h1>
<table id="dataplane" style="display:none">
  <thead><tr><th>edge</th><th>state</th><th>culprit</th>
    <th>occupancy</th><th>occupancy heat</th><th>stalls/s</th>
    <th>stall trend</th><th>busy</th></tr></thead>
  <tbody></tbody>
</table>
<div id="dp-empty" class="legend">no data-plane samples yet</div>
<h1 style="margin-top:20px">telemetry</h1>
<div id="charts"></div>
<h1 style="margin-top:20px">prediction residuals</h1>
<table id="residuals">
  <thead><tr><th>constraint</th><th>vertex</th><th>samples</th>
    <th>residual mean (ms)</th><th>stddev (ms)</th><th>mean |rel err|</th>
    <th>sign bias</th><th>drift</th></tr></thead>
  <tbody></tbody>
</table>
<script>
"use strict";
const palette = ["#4c9aff","#4cc38a","#f5a623","#e5484d","#b388ff",
                 "#26c6da","#ff8a65","#9ccc65","#f06292","#a1887f"];
const charts = document.getElementById("charts");
const tails = document.getElementById("tails");
const cards = new Map(); // host id + series name -> {card, canvas, legend}

function card(name, host) {
  host = host || charts;
  const key = host.id + "|" + name;
  let c = cards.get(key);
  if (c) return c;
  const div = document.createElement("div");
  div.className = "card";
  const h = document.createElement("h2");
  h.textContent = name;
  const canvas = document.createElement("canvas");
  const legend = document.createElement("div");
  legend.className = "legend";
  div.append(h, canvas, legend);
  host.appendChild(div);
  c = {card: div, canvas, legend};
  cards.set(key, c);
  return c;
}

function labelText(labels) {
  if (!labels) return "";
  return Object.keys(labels).sort().map(k => k + "=" + labels[k]).join(",");
}

function fmt(v) {
  if (!isFinite(v)) return String(v);
  const a = Math.abs(v);
  if (a !== 0 && (a < 0.001 || a >= 100000)) return v.toExponential(2);
  return +v.toFixed(4) + "";
}

function drawGroup(name, group, host) {
  const {canvas, legend} = card(name, host);
  const dpr = window.devicePixelRatio || 1;
  const w = canvas.clientWidth || 320, h = 120;
  canvas.width = w * dpr; canvas.height = h * dpr;
  const ctx = canvas.getContext("2d");
  ctx.scale(dpr, dpr);
  ctx.clearRect(0, 0, w, h);

  let tMin = Infinity, tMax = -Infinity, vMin = Infinity, vMax = -Infinity;
  for (const s of group) for (const p of s.points || []) {
    tMin = Math.min(tMin, p.t); tMax = Math.max(tMax, p.t);
    vMin = Math.min(vMin, p.v); vMax = Math.max(vMax, p.v);
  }
  if (!isFinite(tMin)) { legend.textContent = "no data"; return; }
  if (tMax === tMin) tMax = tMin + 1;
  if (vMax === vMin) { vMax += 1; vMin -= vMin === 0 ? 0 : 1; }
  const pad = 4;
  const x = t => pad + (t - tMin) / (tMax - tMin) * (w - 2 * pad);
  const y = v => h - pad - (v - vMin) / (vMax - vMin) * (h - 2 * pad);

  ctx.strokeStyle = "#2a2f3a";
  ctx.beginPath(); ctx.moveTo(pad, y(vMin)); ctx.lineTo(w - pad, y(vMin)); ctx.stroke();

  const entries = [];
  group.forEach((s, i) => {
    const color = palette[i % palette.length];
    const pts = s.points || [];
    ctx.strokeStyle = color; ctx.fillStyle = color; ctx.lineWidth = 1.5;
    if (s.kind === "histogram") {
      for (const p of pts) { ctx.beginPath(); ctx.arc(x(p.t), y(p.v), 1.5, 0, 7); ctx.fill(); }
    } else {
      ctx.beginPath();
      pts.forEach((p, j) => j ? ctx.lineTo(x(p.t), y(p.v)) : ctx.moveTo(x(p.t), y(p.v)));
      ctx.stroke();
    }
    const last = pts.length ? pts[pts.length - 1].v : NaN;
    const lt = labelText(s.labels);
    entries.push('<span style="color:' + color + '">■</span> ' +
      (lt ? lt + ": " : "") + "<b>" + fmt(last) + "</b>");
  });
  legend.innerHTML = entries.join(" · ") +
    ' <span style="float:right">[' + fmt(vMin) + " … " + fmt(vMax) + "]</span>";
}

const tailSeries = "nephelix_tail_e2e_seconds";

function gauge(frac, cls) {
  const pct = Math.max(0, Math.min(1, frac)) * 100;
  return '<span class="gauge"><div class="' + cls + '" style="width:' +
    pct.toFixed(0) + '%"></div></span>';
}

function renderSLO(targets) {
  const table = document.getElementById("slo");
  if (!targets.length) { table.style.display = "none"; return; }
  table.style.display = "table";
  const tbody = table.querySelector("tbody");
  tbody.innerHTML = "";
  for (const t of targets) {
    const budget = t.error_budget_remaining;
    const bCls = budget > 0.5 ? "" : budget > 0 ? "warn" : "bad";
    const burn = t.burn_rate || 0;
    const brCls = burn <= 1 ? "" : burn <= 2 ? "warn" : "bad";
    const status = t.violated ? '<span class="drifting">violated</span>'
                              : '<span class="ok">ok</span>';
    const tr = document.createElement("tr");
    tr.innerHTML = "<td>" + t.constraint + "</td><td>p" +
      (t.quantile * 100).toFixed(1).replace(/\.?0+$/, "") + " ≤ " +
      fmt(t.bound_seconds * 1000) + " ms</td><td>" +
      fmt(t.estimate_seconds * 1000) + "</td><td>" + fmt(t.bad_fraction) +
      "</td><td>" + gauge(budget, bCls) + fmt(budget) +
      "</td><td>" + gauge(burn / 4, brCls) + fmt(burn) +
      "</td><td>" + (t.violations || 0) + "</td><td>" + status + "</td>";
    tbody.appendChild(tr);
  }
}

// Per-edge data-plane history, accumulated client-side from successive
// snapshots (the snapshot carries only the latest interval's sample).
const dpHist = new Map(); // edge -> [{t, occ, stall}]

function dpStateBadge(state) {
  const colors = {"idle": "#8a93a3", "producer-limited": "#4c9aff",
                  "consumer-limited": "#f5a623", "ring-saturated": "#e5484d"};
  const c = colors[state] || "#8a93a3";
  return '<span style="color:' + c + '">●</span> ' + (state || "idle");
}

function heatColor(frac) {
  const f = Math.max(0, Math.min(1, frac));
  if (f < 0.5) return "rgb(" + Math.round(76 + f * 2 * 169) + "," +
    Math.round(195 - f * 2 * 29) + ",95)";
  return "rgb(245," + Math.round(166 - (f - 0.5) * 2 * 94) + "," +
    Math.round(35 + (f - 0.5) * 2 * 42) + ")";
}

function drawHeatStrip(canvas, hist) {
  const dpr = window.devicePixelRatio || 1;
  const w = 120, h = 12;
  canvas.width = w * dpr; canvas.height = h * dpr;
  canvas.style.width = w + "px"; canvas.style.height = h + "px";
  const ctx = canvas.getContext("2d");
  ctx.scale(dpr, dpr);
  ctx.fillStyle = "#2a2f3a"; ctx.fillRect(0, 0, w, h);
  const n = hist.length, cw = w / Math.max(n, 30);
  hist.forEach((p, i) => {
    ctx.fillStyle = heatColor(p.occ);
    ctx.fillRect(w - (n - i) * cw, 0, Math.ceil(cw), h);
  });
}

function drawSparkline(canvas, hist) {
  const dpr = window.devicePixelRatio || 1;
  const w = 120, h = 24, pad = 2;
  canvas.width = w * dpr; canvas.height = h * dpr;
  canvas.style.width = w + "px"; canvas.style.height = h + "px";
  const ctx = canvas.getContext("2d");
  ctx.scale(dpr, dpr);
  ctx.clearRect(0, 0, w, h);
  let max = 0;
  for (const p of hist) max = Math.max(max, p.stall);
  if (max === 0) max = 1;
  const n = hist.length;
  ctx.strokeStyle = "#e5484d"; ctx.lineWidth = 1.2;
  ctx.beginPath();
  hist.forEach((p, i) => {
    const x = pad + i / Math.max(n - 1, 1) * (w - 2 * pad);
    const y = h - pad - p.stall / max * (h - 2 * pad);
    i ? ctx.lineTo(x, y) : ctx.moveTo(x, y);
  });
  ctx.stroke();
}

function renderDataplane(dp) {
  const table = document.getElementById("dataplane");
  const empty = document.getElementById("dp-empty");
  const edges = (dp && dp.edges) || [];
  if (!edges.length) { table.style.display = "none"; empty.style.display = "block"; return; }
  table.style.display = "table"; empty.style.display = "none";
  const t = dp.at || 0;
  const tbody = table.querySelector("tbody");
  tbody.innerHTML = "";
  for (const e of edges) {
    let h = dpHist.get(e.edge);
    if (!h) { h = []; dpHist.set(e.edge, h); }
    if (!h.length || h[h.length - 1].t !== t) {
      h.push({t: t, occ: e.occupancy_frac || 0, stall: e.stall_rate || 0});
      if (h.length > 120) h.shift();
    }
    const tr = document.createElement("tr");
    tr.innerHTML = "<td>" + e.edge + "</td><td>" + dpStateBadge(e.state) +
      "</td><td>" + (e.culprit || "—") + "</td><td>" + e.occupancy + "/" +
      e.capacity + "</td><td class='dp-heat'></td><td>" + fmt(e.stall_rate) +
      "</td><td class='dp-spark'></td><td>" + fmt(e.consumer_busy) + "</td>";
    const heat = document.createElement("canvas");
    tr.querySelector(".dp-heat").appendChild(heat);
    const spark = document.createElement("canvas");
    tr.querySelector(".dp-spark").appendChild(spark);
    tbody.appendChild(tr);
    drawHeatStrip(heat, h);
    drawSparkline(spark, h);
  }
}

function render(snap) {
  renderDataplane(snap.dataplane);
  const groups = new Map();
  const tailByQ = new Map();
  for (const s of snap.series || []) {
    if (s.name === tailSeries) {
      const q = (s.labels || {}).q || "?";
      if (!tailByQ.has(q)) tailByQ.set(q, []);
      tailByQ.get(q).push(s);
      continue; // rendered in the tail panel, not the main grid
    }
    if (!groups.has(s.name)) groups.set(s.name, []);
    groups.get(s.name).push(s);
  }
  for (const q of ["p50", "p90", "p95", "p99", "p999"]) {
    if (tailByQ.has(q)) drawGroup("e2e " + q, tailByQ.get(q), tails);
  }
  renderSLO(snap.slo || []);
  for (const [name, group] of groups) drawGroup(name, group);

  const drift = snap.drift || [];
  const banner = document.getElementById("drift");
  if (drift.length) {
    banner.style.display = "block";
    banner.textContent = "model drift: " + drift.map(d =>
      d.constraint + "/" + d.vertex + " (" + d.reason + ", rel err " +
      fmt(d.mean_abs_rel_err) + ", bias " + fmt(d.sign_bias) + ")").join("; ");
  } else {
    banner.style.display = "none";
  }

  const tbody = document.querySelector("#residuals tbody");
  tbody.innerHTML = "";
  for (const r of snap.residuals || []) {
    const tr = document.createElement("tr");
    const drifting = r.drift ? '<span class="drifting">' +
      (r.drift_reasons || []).join(", ") + "</span>" : '<span class="ok">ok</span>';
    tr.innerHTML = "<td>" + r.constraint + "</td><td>" + r.vertex + "</td><td>" +
      r.samples + "</td><td>" + fmt(r.residual_mean_seconds * 1000) + "</td><td>" +
      fmt(r.residual_stddev_seconds * 1000) + "</td><td>" + fmt(r.mean_abs_rel_err) +
      "</td><td>" + fmt(r.sign_bias) + "</td><td>" + drifting + "</td>";
    tbody.appendChild(tr);
  }
}

const status = document.getElementById("status");
const es = new EventSource("/dash/sse");
es.onopen = () => { status.className = "live"; status.textContent = "live"; };
es.onerror = () => { status.className = "down"; status.textContent = "disconnected — retrying"; };
es.onmessage = e => { try { render(JSON.parse(e.data)); } catch (_) {} };
</script>
</body>
</html>
`
