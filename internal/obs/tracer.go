package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"nephelix/internal/metrics"
	"nephelix/internal/metrics/sketch"
	"nephelix/internal/model"
	"nephelix/internal/qos"
)

// Tracer head-samples records at the sources — deterministically, every
// Nth emission — and aggregates the per-hop decomposition of their
// end-to-end latency: output-batch delay, network transit and queue
// wait per edge, service time per vertex. The aggregates are the traced
// ground truth for the model-side estimates of Table I (channel latency
// l_je, output batch latency obl_je, queue wait W = l − obl, service
// time S̄_jv).
//
// A nil *Tracer is the disabled state: StartSpan returns nil and every
// Span method is safe on a nil receiver, so the instrumented runtimes
// pay only a nil check per record when tracing is off.
type Tracer struct {
	every uint64
	count atomic.Uint64 // source emissions observed

	mu       sync.Mutex
	spans    int64
	vertices map[string]*vertexTrace
	edges    map[string]*edgeTrace
	e2e      metrics.Welford
	e2eSk    *sketch.Sketch
}

type vertexTrace struct {
	service   metrics.Welford
	serviceSk *sketch.Sketch
}

type edgeTrace struct {
	batch     metrics.Welford // output-batch delay (obl)
	transit   metrics.Welford // ship → delivery
	queueWait metrics.Welford // delivery → service start (W)
	channel   metrics.Welford // batch + transit + queueWait (l)
	channelSk *sketch.Sketch  // tail decomposition of the channel latency
}

// DefaultTailSampleEvery is the head-sampling stride the runtimes fall
// back to when a percentile constraint needs hop decompositions (the
// tail fitter's queue-wait windows) but no tracer was configured.
const DefaultTailSampleEvery = 8

// NewTracer returns a tracer sampling every Nth source emission.
// every <= 0 disables sampling (StartSpan always returns nil).
func NewTracer(every int) *Tracer {
	tr := &Tracer{
		vertices: make(map[string]*vertexTrace),
		edges:    make(map[string]*edgeTrace),
		e2eSk:    sketch.NewDefault(),
	}
	if every > 0 {
		tr.every = uint64(every)
	}
	return tr
}

// Span is one traced record's handle. The zero of use is nil: unsampled
// records carry a nil span and every method is a no-op on it. Spans are
// shared by value-copied records (and their broadcast copies), so hop
// data is folded into the tracer immediately — a span that never
// reaches a sink (e.g. absorbed by a window) still contributed its
// hops.
type Span struct {
	tr    *Tracer
	start float64
}

// Start returns the span's start time in seconds (0 on nil), so span
// finishers can derive the end-to-end latency without re-tracking it.
func (s *Span) Start() float64 {
	if s == nil {
		return 0
	}
	return s.start
}

// StartSpan observes one source emission and returns a span when it is
// the tracer's next head sample, nil otherwise. now is the emission
// time in seconds.
func (tr *Tracer) StartSpan(now float64) *Span {
	if tr == nil || tr.every == 0 {
		return nil
	}
	if (tr.count.Add(1)-1)%tr.every != 0 {
		return nil
	}
	tr.mu.Lock()
	tr.spans++
	tr.mu.Unlock()
	return &Span{tr: tr, start: now}
}

// Hop records one edge traversal of the traced record into vertex: the
// record waited batchDelay in the producer's output buffer, spent
// transit on the wire, queueWait in the consumer's input queue, and
// service in the consumer's UDF.
func (s *Span) Hop(vertex, edge string, batchDelay, transit, queueWait, service float64) {
	if s == nil {
		return
	}
	tr := s.tr
	tr.mu.Lock()
	defer tr.mu.Unlock()
	vt := tr.vertices[vertex]
	if vt == nil {
		vt = &vertexTrace{serviceSk: sketch.NewDefault()}
		tr.vertices[vertex] = vt
	}
	vt.service.Add(service)
	vt.serviceSk.Add(service)
	et := tr.edges[edge]
	if et == nil {
		et = &edgeTrace{channelSk: sketch.NewDefault()}
		tr.edges[edge] = et
	}
	et.batch.Add(batchDelay)
	et.transit.Add(transit)
	et.queueWait.Add(queueWait)
	et.channel.Add(batchDelay + transit + queueWait)
	et.channelSk.Add(batchDelay + transit + queueWait)
}

// Finish records the traced record's end-to-end latency at a sink.
func (s *Span) Finish(now float64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.tr.e2e.Add(now - s.start)
	s.tr.e2eSk.Add(now - s.start)
	s.tr.mu.Unlock()
}

// Emissions returns the number of source emissions observed.
func (tr *Tracer) Emissions() uint64 {
	if tr == nil {
		return 0
	}
	return tr.count.Load()
}

// Spans returns the number of spans started.
func (tr *Tracer) Spans() int64 {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.spans
}

// EndToEnd returns the count and mean of finished spans' end-to-end
// latencies.
func (tr *Tracer) EndToEnd() (count int64, mean float64) {
	if tr == nil {
		return 0, 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.e2e.Count(), tr.e2e.Mean()
}

// VertexAttribution returns the traced sample count and mean service
// time of one vertex.
func (tr *Tracer) VertexAttribution(vertex string) (count int64, service float64) {
	if tr == nil {
		return 0, 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if vt := tr.vertices[vertex]; vt != nil {
		return vt.service.Count(), vt.service.Mean()
	}
	return 0, 0
}

// EdgeAttribution returns the traced sample count and mean batch delay,
// transit, queue wait and channel latency of one edge (key format
// "source->target").
func (tr *Tracer) EdgeAttribution(edge string) (count int64, batch, transit, queueWait, channel float64) {
	if tr == nil {
		return 0, 0, 0, 0, 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if et := tr.edges[edge]; et != nil {
		return et.channel.Count(), et.batch.Mean(), et.transit.Mean(), et.queueWait.Mean(), et.channel.Mean()
	}
	return 0, 0, 0, 0, 0
}

// AttributionReport renders the traced per-vertex/per-edge latency
// attribution, side by side with the QoS plane's model estimates from
// the summary (which may be nil). Deterministically ordered for logs
// and tests.
func (tr *Tracer) AttributionReport(s *qos.Summary) string {
	if tr == nil {
		return "tracing disabled\n"
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "trace attribution: %d/%d emissions sampled, %d spans finished, e2e mean %.6fs\n",
		tr.spans, tr.count.Load(), tr.e2e.Count(), tr.e2e.Mean())

	names := make([]string, 0, len(tr.vertices))
	for n := range tr.vertices {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		vt := tr.vertices[n]
		fmt.Fprintf(&b, "vertex %s: n=%d service=%.6f", n, vt.service.Count(), vt.service.Mean())
		if s != nil {
			if vs, ok := s.Vertex(n); ok {
				fmt.Fprintf(&b, " [qos S=%.6f]", vs.ServiceTimeMean)
			}
		}
		b.WriteByte('\n')
	}

	edges := make([]string, 0, len(tr.edges))
	for e := range tr.edges {
		edges = append(edges, e)
	}
	sort.Strings(edges)
	for _, e := range edges {
		et := tr.edges[e]
		fmt.Fprintf(&b, "edge %s: n=%d channel=%.6f batch=%.6f transit=%.6f wait=%.6f",
			e, et.channel.Count(), et.channel.Mean(), et.batch.Mean(), et.transit.Mean(), et.queueWait.Mean())
		if s != nil {
			if key, err := model.ParseEdgeKey(e); err == nil {
				if es, ok := s.Edge(key); ok {
					fmt.Fprintf(&b, " [qos l=%.6f obl=%.6f W=%.6f]",
						es.ChannelLatency, es.OutputBatchLatency, es.QueueWait())
				}
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
