package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"nephelix/internal/core"
	"nephelix/internal/model"
	"nephelix/internal/qos"
)

// TestObsExpositionGolden pins the Prometheus text rendering end to end:
// label escaping, histogram _bucket/_sum/_count lines with the implicit
// +Inf bucket, HELP/TYPE emitted once per name, and duplicate sample
// identities dropped (first wins).
func TestObsExpositionGolden(t *testing.T) {
	ms := []Metric{
		{Name: "app_gauge", Help: "A gauge.", Labels: map[string]string{
			"path": `a\b`, "q": "say \"hi\"\nnow"}, Value: 1.5},
		// Same identity again: must be dropped, not re-rendered.
		{Name: "app_gauge", Labels: map[string]string{
			"path": `a\b`, "q": "say \"hi\"\nnow"}, Value: 9},
		{Name: "app_total", Help: "A counter.", Type: "counter", Value: 3},
		{Name: "app_hist", Help: "A histogram.", Type: "histogram",
			Labels:  map[string]string{"vertex": "v"},
			Buckets: []BucketCount{{UpperBound: 0.01, CumulativeCount: 1}, {UpperBound: 0.1, CumulativeCount: 3}},
			Sum:     0.25, SampleCount: 4},
		// Summary: quantile label appended after the escaped base labels.
		{Name: "app_latency", Help: "A summary.", Type: "summary",
			Labels:    map[string]string{"path": `t"x`},
			Quantiles: []SummaryQuantile{{Quantile: 0.5, Value: 0.01}, {Quantile: 0.99, Value: 0.05}},
			Sum:       1.25, SampleCount: 10},
		// Same summary identity again: dropped like any other duplicate.
		{Name: "app_latency", Type: "summary",
			Labels:    map[string]string{"path": `t"x`},
			Quantiles: []SummaryQuantile{{Quantile: 0.5, Value: 9}},
			Sum:       9, SampleCount: 9},
		// Same name, different identity: rendered, but HELP/TYPE are not
		// re-emitted (first occurrence wins for the whole name).
		{Name: "app_latency", Help: "ignored (first HELP wins).", Type: "summary",
			Quantiles: []SummaryQuantile{{Quantile: 0.999, Value: 0.2}},
			Sum:       0.2, SampleCount: 1},
	}
	var b strings.Builder
	writeMetrics(&b, ms)
	want := `# HELP app_gauge A gauge.
# TYPE app_gauge gauge
app_gauge{path="a\\b",q="say \"hi\"\nnow"} 1.5
# HELP app_total A counter.
# TYPE app_total counter
app_total 3
# HELP app_hist A histogram.
# TYPE app_hist histogram
app_hist_bucket{vertex="v",le="0.01"} 1
app_hist_bucket{vertex="v",le="0.1"} 3
app_hist_bucket{vertex="v",le="+Inf"} 4
app_hist_sum{vertex="v"} 0.25
app_hist_count{vertex="v"} 4
# HELP app_latency A summary.
# TYPE app_latency summary
app_latency{path="t\"x",quantile="0.5"} 0.01
app_latency{path="t\"x",quantile="0.99"} 0.05
app_latency_sum{path="t\"x"} 1.25
app_latency_count{path="t\"x"} 10
app_latency{quantile="0.999"} 0.2
app_latency_sum 0.2
app_latency_count 1
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestObsGaugeSetSorted: GaugeSet.Metrics snapshots in identity-key
// order regardless of insertion order, so consecutive scrapes render
// identically.
func TestObsGaugeSetSorted(t *testing.T) {
	gs := NewGaugeSet()
	gs.Set("zz_last", nil, 1)
	gs.Set("aa_first", map[string]string{"b": "2"}, 2)
	gs.Set("aa_first", map[string]string{"a": "1"}, 3)
	var names []string
	for _, m := range gs.Metrics() {
		names = append(names, metricKey(m))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("unsorted snapshot: %v", names)
		}
	}
	var a, b strings.Builder
	writeMetrics(&a, gs.Metrics())
	writeMetrics(&b, gs.Metrics())
	if a.String() != b.String() {
		t.Error("consecutive scrapes differ")
	}
}

// telemetryObserve feeds tel two intervals over constraint c so the
// residual monitor registers and then scores one prediction.
func telemetryObserve(t *testing.T, tel *Telemetry, c *model.Constraint) *Telemetry {
	t.Helper()
	d := residualTestDecision(c,
		&core.VertexModel{Name: "server", Current: 4, A: 0.04, B: 2},
		map[string]int{"server": 6}, nil)
	s := summaryWithQueueWait(0.025, 0.010)
	s.Vertices["server"] = qos.VertexStats{
		TaskLatency:      0.012,
		ServiceTimeMean:  0.008,
		InterarrivalMean: 0.010,
		Parallelism:      4,
		FreshTasks:       4,
	}
	tel.ObserveInterval(10, s, d, map[string]int{"server": 4})
	tel.ObserveInterval(20, s, nil, map[string]int{"server": 6})
	return tel
}

// TestObsTimeseriesEndpoint: /timeseries serves the scraped store and
// residual statistics as JSON, honouring the name prefix and point-count
// filters, and degrades to empty (non-null) collections without a
// telemetry plane.
func TestObsTimeseriesEndpoint(t *testing.T) {
	tel := NewTelemetry(64)
	tel.ObserveE2E(0.5, 0.005)
	telemetryObserve(t, tel, residualTestConstraint(t))

	srv := httptest.NewServer(NewHandler(ServerConfig{Telemetry: tel}))
	defer srv.Close()

	get := func(rawQuery string) TimeseriesSnapshot {
		t.Helper()
		resp, err := http.Get(srv.URL + "/timeseries" + rawQuery)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
			t.Fatalf("content type %q", ct)
		}
		var snap TimeseriesSnapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		return snap
	}

	full := get("")
	names := make(map[string]bool)
	for _, s := range full.Series {
		names[s.Name] = true
	}
	for _, want := range []string{
		"nephelix_e2e_latency_seconds",
		"nephelix_adjust_intervals_total",
		"nephelix_vertex_parallelism",
		"nephelix_edge_queue_wait_seconds",
		"nephelix_model_residual_mean_seconds",
		"nephelix_go_goroutines",
	} {
		if !names[want] {
			t.Errorf("series %s missing from /timeseries", want)
		}
	}
	if len(full.Residuals) != 1 || full.Residuals[0].Vertex != "server" || full.Residuals[0].Samples != 1 {
		t.Errorf("residuals: %+v", full.Residuals)
	}

	edges := get("?name=" + url.QueryEscape("nephelix_edge_"))
	if len(edges.Series) == 0 {
		t.Fatal("prefix filter returned nothing")
	}
	for _, s := range edges.Series {
		if !strings.HasPrefix(s.Name, "nephelix_edge_") {
			t.Errorf("prefix filter leaked %s", s.Name)
		}
	}

	limited := get("?name=" + url.QueryEscape("nephelix_vertex_parallelism") + "&n=1")
	for _, s := range limited.Series {
		if len(s.Points) > 1 {
			t.Errorf("n=1 must cap points, got %d for %s", len(s.Points), s.Name)
		}
	}

	// No telemetry plane: empty arrays, not null.
	bare := httptest.NewServer(NewHandler(ServerConfig{}))
	defer bare.Close()
	resp, err := http.Get(bare.URL + "/timeseries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"series", "residuals"} {
		if string(raw[field]) != "[]" {
			t.Errorf("disabled telemetry %s = %s, want []", field, raw[field])
		}
	}
}

// TestObsMetricsHistogram: the telemetry store's histograms and counters
// surface on /metrics in exposition format.
func TestObsMetricsHistogram(t *testing.T) {
	tel := NewTelemetry(64)
	tel.ObserveE2E(0.5, 0.005)
	telemetryObserve(t, tel, residualTestConstraint(t))

	srv := httptest.NewServer(NewHandler(ServerConfig{Telemetry: tel}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	if _, err := io.Copy(&b, resp.Body); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	for _, want := range []string{
		"# TYPE nephelix_e2e_latency_seconds histogram",
		`nephelix_e2e_latency_seconds_bucket{le="0.005"} 1`,
		`nephelix_e2e_latency_seconds_bucket{le="+Inf"} 1`,
		"nephelix_e2e_latency_seconds_count 1",
		"# TYPE nephelix_adjust_intervals_total counter",
		"nephelix_adjust_intervals_total 2",
		`nephelix_vertex_parallelism{vertex="server"} 6`,
		`nephelix_model_abs_residual_seconds_bucket{constraint="c",vertex="server",le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestObsDashPage: /dash serves the self-contained dashboard page.
func TestObsDashPage(t *testing.T) {
	srv := httptest.NewServer(NewHandler(ServerConfig{}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/dash")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Fatalf("content type %q", ct)
	}
	var b strings.Builder
	if _, err := io.Copy(&b, resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<!DOCTYPE html>", "EventSource", "/dash/sse"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("/dash missing %q", want)
		}
	}
}

// TestObsDashSSE: /dash/sse streams TimeseriesSnapshot frames as
// server-sent events.
func TestObsDashSSE(t *testing.T) {
	tel := NewTelemetry(64)
	telemetryObserve(t, tel, residualTestConstraint(t))
	srv := httptest.NewServer(NewHandler(ServerConfig{Telemetry: tel}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/dash/sse?interval_ms=100")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var data string
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			data = strings.TrimPrefix(sc.Text(), "data: ")
			break
		}
	}
	if data == "" {
		t.Fatalf("no SSE data frame received: %v", sc.Err())
	}
	var snap TimeseriesSnapshot
	if err := json.Unmarshal([]byte(data), &snap); err != nil {
		t.Fatalf("SSE frame is not a snapshot: %v", err)
	}
	if len(snap.Series) == 0 || len(snap.Residuals) != 1 {
		t.Errorf("SSE snapshot: %d series, %d residuals", len(snap.Series), len(snap.Residuals))
	}
}

// TestObsSSESlowConsumer: a connected SSE client that never reads must
// not block telemetry recording — the blocking socket write happens
// outside the store's locks.
func TestObsSSESlowConsumer(t *testing.T) {
	tel := NewTelemetry(64)
	telemetryObserve(t, tel, residualTestConstraint(t))
	srv := httptest.NewServer(NewHandler(ServerConfig{Telemetry: tel}))
	defer srv.Close()

	// Open the SSE stream over a raw connection and never read from it,
	// so the handler's writes eventually fill the socket buffers.
	conn, err := net.Dial("tcp", strings.TrimPrefix(srv.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /dash/sse?interval_ms=100 HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		c := residualTestConstraint(t)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 5000; i++ {
					tel.ObserveE2E(float64(i), 0.001)
				}
			}()
		}
		for i := 0; i < 50; i++ {
			telemetryObserve(t, tel, c)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("telemetry recording blocked behind a stalled SSE consumer")
	}
}
