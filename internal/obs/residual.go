package obs

import (
	"math"
	"sort"
	"sync"

	"nephelix/internal/core"
	"nephelix/internal/metrics"
	"nephelix/internal/model"
	"nephelix/internal/qos"
)

// The paper's whole strategy rests on the fitted Kingman approximation
// (Equations 3–4) staying close to the queue waits that actually
// materialize. ResidualMonitor closes that loop online: at every
// decision it records W(p*) for the parallelism the scaler chose, one
// adjustment interval later it pairs the prediction with the measured
// queue wait of the vertex's ingoing sequence edge, and it keeps
// per-(constraint, vertex) Welford residual statistics plus drift flags
// that the audit trail and the prediction-quality experiment consume.

// ResidualConfig tunes the drift detection thresholds.
type ResidualConfig struct {
	// MinSamples is the number of scored predictions a cell needs
	// before it may flag drift (default 8).
	MinSamples int
	// RelErrDrift flags a cell whose mean |measured−predicted|/measured
	// exceeds this (default 1.0, i.e. predictions off by more than the
	// measurement itself on average).
	RelErrDrift float64
	// BiasDrift flags a cell whose prediction sign bias
	// (over−under)/(over+under) exceeds this in magnitude (default 0.9:
	// nearly every prediction errs the same way).
	BiasDrift float64
	// Deadband exempts residuals below this fraction of the constraint
	// bound from the over/under sign tally (default 0.02): a prediction
	// off by a fraction of a millisecond against a 30 ms bound is noise,
	// not model drift, even when the sign repeats every interval.
	Deadband float64
}

// DefaultResidualConfig returns the default thresholds.
func DefaultResidualConfig() ResidualConfig {
	return ResidualConfig{MinSamples: 8, RelErrDrift: 1.0, BiasDrift: 0.9, Deadband: 0.02}
}

func (c ResidualConfig) withDefaults() ResidualConfig {
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.RelErrDrift <= 0 {
		c.RelErrDrift = 1.0
	}
	if c.BiasDrift <= 0 {
		c.BiasDrift = 0.9
	}
	if c.Deadband <= 0 {
		c.Deadband = 0.02
	}
	return c
}

// ResidualKey identifies one monitored (constraint, vertex) pair.
type ResidualKey struct {
	Constraint string `json:"constraint"`
	Vertex     string `json:"vertex"`
}

// ResidualStat is the JSON snapshot of one cell's accumulated
// prediction-residual statistics. Residual means measured − predicted,
// in seconds.
type ResidualStat struct {
	Constraint string `json:"constraint"`
	Vertex     string `json:"vertex"`
	// Samples counts scored prediction/measurement pairs.
	Samples        int64   `json:"samples"`
	ResidualMean   float64 `json:"residual_mean_seconds"`
	ResidualStdDev float64 `json:"residual_stddev_seconds"`
	// MeanAbsRelErr averages |measured−predicted|/measured over the
	// RelErrSamples pairs with a positive measurement.
	MeanAbsRelErr float64 `json:"mean_abs_rel_err"`
	RelErrSamples int64   `json:"rel_err_samples"`
	// Over counts predictions above the measurement, Under below;
	// SignBias is (over−under)/(over+under) in [−1, 1].
	Over     int64   `json:"over"`
	Under    int64   `json:"under"`
	SignBias float64 `json:"sign_bias"`
	// Last scored pair, for dashboards.
	LastPredicted float64 `json:"last_predicted_seconds"`
	LastMeasured  float64 `json:"last_measured_seconds"`
	LastAt        float64 `json:"last_at"`
	// Drift and DriftReasons mirror the cell's current drift flags.
	Drift        bool     `json:"drift"`
	DriftReasons []string `json:"drift_reasons,omitempty"`
}

// DriftFlag marks one (constraint, vertex) cell whose predictions have
// drifted from the measurements. Embedded in scaling_decision audit
// events and returned by the prediction-quality sweep.
type DriftFlag struct {
	Constraint string `json:"constraint"`
	Vertex     string `json:"vertex"`
	// Reason is "high-rel-err" or "sign-bias".
	Reason        string  `json:"reason"`
	MeanAbsRelErr float64 `json:"mean_abs_rel_err"`
	SignBias      float64 `json:"sign_bias"`
	Samples       int64   `json:"samples"`
}

// ScoredResidual is one matured prediction/measurement pair, emitted by
// Observe so the telemetry layer can feed residual histograms.
type ScoredResidual struct {
	Constraint string
	Vertex     string
	At         float64
	Predicted  float64
	Measured   float64
}

// BiasFloorFraction exempts pairings from the sign tally when both the
// measured and the predicted wait stay below this fraction of the
// constraint bound: the vertex is nowhere near endangering the
// constraint, so persistent micro-residual signs are not drift.
const BiasFloorFraction = 0.1

// pendingPrediction is a W(p*) waiting for the next interval's summary.
type pendingPrediction struct {
	key       ResidualKey
	edge      model.EdgeKey
	predicted float64
	// quantile > 0 marks a tail prediction (κ-inflated model): it is
	// scored against the measured q-quantile queue wait of the vertex's
	// fit window, not the summary's mean — the drift flags then cover
	// the tail fit with the same thresholds as the mean model.
	quantile float64
	// bound is the constraint bound in seconds; it scales the sign-bias
	// deadband.
	bound float64
}

// residualCell accumulates one (constraint, vertex) pair.
type residualCell struct {
	residual metrics.Welford // measured − predicted, seconds
	absRel   metrics.Welford // |measured−predicted|/measured, measured > 0
	over     int64
	under    int64

	lastPredicted float64
	lastMeasured  float64
	lastAt        float64
}

// ResidualMonitor pairs Kingman queue-wait predictions with the
// measured waits of the following adjustment interval. All methods are
// nil-safe and safe for concurrent use.
type ResidualMonitor struct {
	cfg ResidualConfig

	mu      sync.Mutex
	cells   map[ResidualKey]*residualCell
	pending []pendingPrediction

	// tailMeasure resolves a vertex's measured q-quantile queue wait for
	// the interval being scored (set by Telemetry from its per-vertex fit
	// windows). Nil leaves tail predictions unscoreable.
	tailMeasure func(vertex string, q float64) (float64, bool)
}

// SetTailMeasure installs the measured-tail lookup used to score
// percentile predictions.
func (m *ResidualMonitor) SetTailMeasure(fn func(vertex string, q float64) (float64, bool)) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.tailMeasure = fn
	m.mu.Unlock()
}

// NewResidualMonitor returns a monitor with the given thresholds (zero
// fields filled from DefaultResidualConfig).
func NewResidualMonitor(cfg ResidualConfig) *ResidualMonitor {
	return &ResidualMonitor{
		cfg:   cfg.withDefaults(),
		cells: make(map[ResidualKey]*residualCell),
	}
}

// Observe advances the monitor by one adjustment interval: predictions
// registered last interval are scored against s (the interval's global
// summary), then d's fitted models register this interval's predictions
// at the parallelism the decision settled on. d may be nil (scaler
// inactive or absent); pending predictions are still scored. It returns
// the pairs scored this call and the full set of currently drifting
// cells, both in deterministic order.
func (m *ResidualMonitor) Observe(now float64, s *qos.Summary, d *core.Decision) (scored []ScoredResidual, flags []DriftFlag) {
	if m == nil {
		return nil, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	if s != nil {
		for _, p := range m.pending {
			var measured float64
			if p.quantile > 0 {
				if m.tailMeasure == nil {
					continue // no tail lookup bound: unscoreable
				}
				tw, ok := m.tailMeasure(p.key.Vertex, p.quantile)
				if !ok {
					continue // fit window too sparse this interval
				}
				measured = tw
			} else {
				es, ok := s.Edge(p.edge)
				if !ok {
					continue // edge vanished from the summary: unscoreable
				}
				measured = es.QueueWait()
			}
			cell := m.cells[p.key]
			if cell == nil {
				cell = &residualCell{}
				m.cells[p.key] = cell
			}
			cell.residual.Add(measured - p.predicted)
			if measured > 0 {
				cell.absRel.Add(math.Abs(measured-p.predicted) / measured)
			}
			switch {
			case math.Abs(measured-p.predicted) < m.cfg.Deadband*p.bound:
				// Within the deadband: too small relative to the
				// constraint bound to count as sign evidence.
			case p.bound > 0 && measured < BiasFloorFraction*p.bound &&
				p.predicted < BiasFloorFraction*p.bound:
				// Both sides of the pairing sit far below the bound:
				// whatever the sign, the cell cannot mislead a scaling
				// decision, so it is noise rather than drift.
			case p.predicted > measured:
				cell.over++
			case p.predicted < measured:
				cell.under++
			}
			cell.lastPredicted = p.predicted
			cell.lastMeasured = measured
			cell.lastAt = now
			scored = append(scored, ScoredResidual{
				Constraint: p.key.Constraint,
				Vertex:     p.key.Vertex,
				At:         now,
				Predicted:  p.predicted,
				Measured:   measured,
			})
		}
	}
	m.pending = m.pending[:0]

	if d != nil {
		for _, cd := range d.PerConstraint {
			if cd.Skipped || cd.Constraint == nil || len(cd.Models) == 0 {
				continue // bottleneck or skipped path: no fitted models
			}
			for _, vm := range cd.Models {
				p, ok := d.Desired[vm.Name]
				if !ok {
					p, ok = cd.Parallelism[vm.Name]
				}
				if !ok {
					p = vm.Current
				}
				predicted := vm.Wait(p)
				if math.IsInf(predicted, 0) || math.IsNaN(predicted) {
					continue // model predicts saturation: not scoreable
				}
				edge, ok := cd.Constraint.Sequence.IngoingEdge(vm.Name)
				if !ok {
					continue // first sequence element: no ingoing edge to measure
				}
				m.pending = append(m.pending, pendingPrediction{
					key:       ResidualKey{Constraint: cd.Constraint.Name, Vertex: vm.Name},
					edge:      edge,
					predicted: predicted,
					quantile:  vm.TailQuantile,
					bound:     cd.Constraint.Bound.Seconds(),
				})
			}
		}
	}

	sort.Slice(scored, func(i, j int) bool {
		if scored[i].Constraint != scored[j].Constraint {
			return scored[i].Constraint < scored[j].Constraint
		}
		return scored[i].Vertex < scored[j].Vertex
	})
	return scored, m.driftLocked()
}

// driftLocked returns the drifting cells sorted by key. Callers hold m.mu.
func (m *ResidualMonitor) driftLocked() []DriftFlag {
	var flags []DriftFlag
	for key, cell := range m.cells {
		for _, reason := range m.cellDrift(cell) {
			flags = append(flags, DriftFlag{
				Constraint:    key.Constraint,
				Vertex:        key.Vertex,
				Reason:        reason,
				MeanAbsRelErr: cell.absRel.Mean(),
				SignBias:      cellBias(cell),
				Samples:       cell.residual.Count(),
			})
		}
	}
	sort.Slice(flags, func(i, j int) bool {
		a, b := flags[i], flags[j]
		if a.Constraint != b.Constraint {
			return a.Constraint < b.Constraint
		}
		if a.Vertex != b.Vertex {
			return a.Vertex < b.Vertex
		}
		return a.Reason < b.Reason
	})
	return flags
}

// cellDrift lists a cell's active drift reasons.
func (m *ResidualMonitor) cellDrift(cell *residualCell) []string {
	var reasons []string
	if cell.absRel.Count() >= int64(m.cfg.MinSamples) && cell.absRel.Mean() > m.cfg.RelErrDrift {
		reasons = append(reasons, "high-rel-err")
	}
	if cell.over+cell.under >= int64(m.cfg.MinSamples) && math.Abs(cellBias(cell)) >= m.cfg.BiasDrift {
		reasons = append(reasons, "sign-bias")
	}
	return reasons
}

func cellBias(cell *residualCell) float64 {
	if cell.over+cell.under == 0 {
		return 0
	}
	return float64(cell.over-cell.under) / float64(cell.over+cell.under)
}

// DriftFlags returns the currently drifting cells sorted by key.
func (m *ResidualMonitor) DriftFlags() []DriftFlag {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.driftLocked()
}

// Snapshot returns every cell's statistics sorted by (constraint,
// vertex). Nil-safe.
func (m *ResidualMonitor) Snapshot() []ResidualStat {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]ResidualKey, 0, len(m.cells))
	for key := range m.cells {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Constraint != keys[j].Constraint {
			return keys[i].Constraint < keys[j].Constraint
		}
		return keys[i].Vertex < keys[j].Vertex
	})
	out := make([]ResidualStat, 0, len(keys))
	for _, key := range keys {
		cell := m.cells[key]
		reasons := m.cellDrift(cell)
		out = append(out, ResidualStat{
			Constraint:     key.Constraint,
			Vertex:         key.Vertex,
			Samples:        cell.residual.Count(),
			ResidualMean:   cell.residual.Mean(),
			ResidualStdDev: cell.residual.StdDev(),
			MeanAbsRelErr:  cell.absRel.Mean(),
			RelErrSamples:  cell.absRel.Count(),
			Over:           cell.over,
			Under:          cell.under,
			SignBias:       cellBias(cell),
			LastPredicted:  cell.lastPredicted,
			LastMeasured:   cell.lastMeasured,
			LastAt:         cell.lastAt,
			Drift:          len(reasons) > 0,
			DriftReasons:   reasons,
		})
	}
	return out
}

// Merge folds another monitor's accumulated cells into this one using
// the parallel Welford merge; pending (unscored) predictions are not
// transferred. The prediction-quality sweep merges per-seed monitors in
// seed order so the pooled result is deterministic.
func (m *ResidualMonitor) Merge(o *ResidualMonitor) {
	if m == nil || o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	for key, ocell := range o.cells {
		cell := m.cells[key]
		if cell == nil {
			cell = &residualCell{}
			m.cells[key] = cell
		}
		cell.residual.Merge(ocell.residual)
		cell.absRel.Merge(ocell.absRel)
		cell.over += ocell.over
		cell.under += ocell.under
		if ocell.lastAt >= cell.lastAt {
			cell.lastPredicted = ocell.lastPredicted
			cell.lastMeasured = ocell.lastMeasured
			cell.lastAt = ocell.lastAt
		}
	}
}
