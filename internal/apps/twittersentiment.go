package apps

import (
	"fmt"
	"math/rand"
	"time"

	"nephelix/internal/ckpt"
	"nephelix/internal/core"
	"nephelix/internal/model"
	"nephelix/internal/sim"
	"nephelix/internal/workload"
)

// Vertex names of the TwitterSentiment job (Figure 7).
const (
	TSSource       = "TweetSource"
	TSHotTopics    = "HotTopics"
	TSTopicsMerger = "HotTopicsMerger"
	TSFilter       = "Filter"
	TSSentiment    = "Sentiment"
	TSSink         = "Sink"
)

// Probe names of the TwitterSentiment job's two constrained sequences.
const (
	// HotTopicsProbe covers constraint (1): (e4, HT, e5, HTM, e6, F),
	// ℓ = 215 ms.
	HotTopicsProbe = "hot-topics-path"
	// SentimentProbe covers constraint (2): (e1, F, e2, S, e3),
	// ℓ = 30 ms.
	SentimentProbe = "sentiment-path"
)

// Item kinds flowing through the TwitterSentiment job.
const (
	kindTweet     uint8 = 1
	kindTopicList uint8 = 2
	kindScored    uint8 = 3
)

// TwitterSentimentOptions parameterizes the TwitterSentiment job build.
type TwitterSentimentOptions struct {
	// Sources is the TweetSource parallelism (static).
	Sources int
	// InitialHT/F/S are starting parallelisms of the elastic vertices;
	// MinElastic/MaxElastic their shared bounds (paper: 1..100).
	InitialHT, InitialFilter, InitialSentiment int
	MinElastic, MaxElastic                     int
	// Schedule is the synthetic tweet-rate trace. Ignored when Replay is
	// set.
	Schedule *workload.DiurnalSchedule
	// Replay, when set, replays a recorded tweet trace at its historic
	// rates instead of synthesizing tweets (the paper's TweetSource
	// design).
	Replay *workload.TweetReplay
	// Topics is the topic universe size; HotK the hot list length.
	Topics int
	HotK   int
	// WindowSeconds is the HT/HTM aggregation window (paper: 0.2 s).
	WindowSeconds float64
	// Bound1 and Bound2 are the two constraint bounds (paper: 215 ms and
	// 30 ms).
	Bound1, Bound2 time.Duration
	// ConstraintQuantile, when in (0,1), turns both constraints into
	// percentile constraints (js, ℓ_pXX, t): the scaler then bounds that
	// quantile of the sequence latency instead of the mean, and the
	// probes account per-interval tail fulfillment. 0 keeps the paper's
	// mean semantics.
	ConstraintQuantile float64
	// Elastic enables reactive scaling.
	Elastic bool
	Scaler  core.ScalerConfig
	// WorkerNodes/SlotsPerNode describe the cluster pool.
	WorkerNodes  int
	SlotsPerNode int
	Seed         int64
	// SampleProbability tags tweets for latency probing.
	SampleProbability float64
	// Guarantee selects the processing guarantee. Note: this job fans
	// every tweet out twice and the Filter drops cold-topic tweets, so
	// the sink dedup's hole/duplicate accounting is advisory here — the
	// checkpoint/replay machinery itself is exercised in full.
	Guarantee ckpt.Guarantee
	// CheckpointInterval is the barrier-checkpoint period in virtual
	// seconds (0 takes the simulator default).
	CheckpointInterval float64
}

// DefaultTwitterSentimentOptions returns the paper's evaluation setup
// with the synthetic trace calibrated to Figure 8: 14 compressed day
// cycles in 100 minutes, peak ≈ 6734 tweets/s at ≈ 2400 s concentrated on
// very few topics.
func DefaultTwitterSentimentOptions() TwitterSentimentOptions {
	return TwitterSentimentOptions{
		Sources:           8,
		InitialHT:         4,
		InitialFilter:     4,
		InitialSentiment:  8,
		MinElastic:        1,
		MaxElastic:        100,
		Schedule:          DefaultTweetTrace(),
		Topics:            1000,
		HotK:              10,
		WindowSeconds:     0.2,
		Bound1:            215 * time.Millisecond,
		Bound2:            30 * time.Millisecond,
		Elastic:           true,
		Scaler:            core.DefaultScalerConfig(),
		WorkerNodes:       130,
		SlotsPerNode:      4,
		Seed:              1,
		SampleProbability: 0.04,
	}
}

// DefaultTweetTrace builds the synthetic stand-in for the paper's 69 GB
// two-week Twitter dataset replayed in 100 minutes.
func DefaultTweetTrace() *workload.DiurnalSchedule {
	const cycle = 6000.0 / 14 // 14 "days" in 100 minutes
	return &workload.DiurnalSchedule{
		BaseRate:       900,
		DailyAmplitude: 3600,
		CycleLength:    cycle,
		Length:         6000,
		NoiseAmplitude: 0.12,
		Seed:           42,
		Bursts: []workload.Burst{
			// The rate peak at ≈2400 s whose tweets "seemed to affect one
			// or very few topics" (Section V-B2).
			{Start: 2300, Length: 260, ExtraRate: 2600, Topic: 3},
			// Two smaller bursts for the spiky violations of constraint 2.
			{Start: 900, Length: 120, ExtraRate: 1200, Topic: 17},
			{Start: 4300, Length: 140, ExtraRate: 1500, Topic: 8},
		},
	}
}

// twitterCosts is the data-plane cost model of the TwitterSentiment
// cluster. Tweets are JSON blobs (~350 B); per-flush costs match the
// PrimeTester calibration scaled to the lighter fan-out of this job.
func twitterCosts() sim.CostModel {
	return sim.CostModel{
		FlushCPU:   300e-6,
		ReceiveCPU: 100e-6,
		NetFixed:   150e-6,
		NetPerByte: 8e-9,
		TCPSetup:   1e-3,
	}
}

const (
	tweetBytes     = 350
	topicListBytes = 240
	scoredBytes    = 64
)

// UDF service-time means (seconds) calibrated so that the paper's scaling
// magnitudes hold: at the 6.7 k tweets/s peak the Sentiment vertex needs
// ≈30 extra tasks when a burst topic passes the filter.
const (
	// HotTopics parses the tweet JSON and extracts hashtags/topics —
	// the dominant per-tweet cost besides sentiment classification.
	htServicePerTweet   = 1.1e-3
	htmServicePerList   = 150e-6
	filterServiceTweet  = 90e-6
	filterServiceList   = 400e-6
	sentimentService    = 5e-3
	sinkServicePerScore = 30e-6
)

// hotTopicsBehavior is the HT task: counts topics over a time window and
// emits its partial top-k list every window (Section V-B1: "time-based
// window aggregation with 200 ms windows").
type hotTopicsBehavior struct {
	window   float64
	k        int
	counts   map[uint64]int
	payloads *topicListPayloads
	// origins collects sampled tweet emit times for read-write sequence
	// latency probing across the aggregation.
	origins []float64
}

var _ sim.TimerBehavior = (*hotTopicsBehavior)(nil)

func (b *hotTopicsBehavior) ServiceTime(rng *rand.Rand, _ *sim.Item) float64 {
	return htServicePerTweet * (0.7 + 0.6*rng.Float64())
}

func (b *hotTopicsBehavior) Process(_ *sim.TaskContext, it sim.Item) {
	b.counts[it.Key]++
	if it.Sampled && len(b.origins) < 32 {
		b.origins = append(b.origins, it.EmitTime)
	}
}

func (b *hotTopicsBehavior) TimerInterval() float64 { return b.window }

// OnTimer emits the partial hot-topic list. Top-k extraction is modeled
// by keeping the counts map bounded; the list item carries the top keys.
func (b *hotTopicsBehavior) OnTimer(ctx *sim.TaskContext) {
	if len(b.counts) == 0 {
		return
	}
	top := topKKeys(b.counts, b.k)
	it := sim.Item{
		EmitTime: ctx.Now(),
		Size:     topicListBytes,
		Kind:     kindTopicList,
		Origins:  b.origins,
		Sampled:  len(b.origins) > 0,
	}
	it.Key = b.payloads.put(top)
	b.counts = make(map[uint64]int, len(b.counts))
	b.origins = nil
	ctx.Emit(0, it)
}

// topicListPayloads carries full top-k lists out of band, keyed by a
// token stored in Item.Key: items stay small while behaviors exchange
// real list contents. One instance exists per job build (the simulator is
// single-threaded). Entries older than the eviction window are dropped;
// broadcast consumers read within a fraction of a second, far inside the
// window.
type topicListPayloads struct {
	next  uint64
	lists map[uint64][]uint64
}

// payloadWindow bounds the number of outstanding list payloads.
const payloadWindow = 8192

func newTopicListPayloads() *topicListPayloads {
	return &topicListPayloads{lists: make(map[uint64][]uint64)}
}

// put stores a list and returns its token.
func (p *topicListPayloads) put(list []uint64) uint64 {
	p.next++
	p.lists[p.next] = list
	if p.next > payloadWindow {
		delete(p.lists, p.next-payloadWindow)
	}
	return p.next
}

// get reads a list without consuming it (broadcast edges deliver the same
// token to many consumers).
func (p *topicListPayloads) get(token uint64) []uint64 {
	return p.lists[token]
}

// topKKeys returns the k highest-count keys.
func topKKeys(counts map[uint64]int, k int) []uint64 {
	type kv struct {
		key uint64
		n   int
	}
	all := make([]kv, 0, len(counts))
	for key, n := range counts {
		all = append(all, kv{key, n})
	}
	// Partial selection sort: k is small (10).
	if k > len(all) {
		k = len(all)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].n > all[best].n || (all[j].n == all[best].n && all[j].key < all[best].key) {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	keys := make([]uint64, k)
	for i := 0; i < k; i++ {
		keys[i] = all[i].key
	}
	return keys
}

// mergerBehavior is the HTM task: it merges every received partial list
// into the global ranking and broadcasts the merged hot list immediately
// ("the HTM task merges all partial lists into a global one and
// broadcasts it to all Filter tasks" — the paper gives HTM no window of
// its own, and the reported latencies only fit a merge-on-receipt
// design). Older contributions decay multiplicatively so the global list
// tracks the HT windows.
type mergerBehavior struct {
	k        int
	counts   map[uint64]float64
	payloads *topicListPayloads
}

var _ sim.Behavior = (*mergerBehavior)(nil)

// mergerDecay is the per-receipt decay of accumulated rank weight.
const mergerDecay = 0.9

func (b *mergerBehavior) ServiceTime(rng *rand.Rand, _ *sim.Item) float64 {
	return htmServicePerList * (0.7 + 0.6*rng.Float64())
}

func (b *mergerBehavior) Process(ctx *sim.TaskContext, it sim.Item) {
	for key, w := range b.counts {
		w *= mergerDecay
		if w < 0.05 {
			delete(b.counts, key)
			continue
		}
		b.counts[key] = w
	}
	for rank, key := range b.payloads.get(it.Key) {
		b.counts[key] += float64(b.k - rank) // rank-weighted merge
	}
	if len(b.counts) == 0 {
		return
	}
	top := topKFloatKeys(b.counts, b.k)
	out := sim.Item{
		EmitTime: ctx.Now(),
		Size:     topicListBytes,
		Kind:     kindTopicList,
		Origins:  it.Origins,
		Sampled:  it.Sampled,
	}
	out.Key = b.payloads.put(top)
	ctx.Emit(0, out)
}

// topKFloatKeys returns the k highest-weight keys.
func topKFloatKeys(counts map[uint64]float64, k int) []uint64 {
	type kv struct {
		key uint64
		w   float64
	}
	all := make([]kv, 0, len(counts))
	for key, w := range counts {
		all = append(all, kv{key, w})
	}
	if k > len(all) {
		k = len(all)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].w > all[best].w || (all[j].w == all[best].w && all[j].key < all[best].key) {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	keys := make([]uint64, k)
	for i := 0; i < k; i++ {
		keys[i] = all[i].key
	}
	return keys
}

// filterBehavior is the F task: it keeps the latest global hot list and
// forwards only tweets concerning a hot topic to the Sentiment vertex.
// It terminates constraint (1) — list items record their origins'
// latency here.
type filterBehavior struct {
	hot      map[uint64]struct{}
	payloads *topicListPayloads
	probeHot *sim.Probe
}

var _ sim.Behavior = (*filterBehavior)(nil)

func (b *filterBehavior) ServiceTime(rng *rand.Rand, it *sim.Item) float64 {
	if it.Kind == kindTopicList {
		return filterServiceList * (0.7 + 0.6*rng.Float64())
	}
	return filterServiceTweet * (0.7 + 0.6*rng.Float64())
}

func (b *filterBehavior) Process(ctx *sim.TaskContext, it sim.Item) {
	if it.Kind == kindTopicList {
		b.hot = make(map[uint64]struct{})
		for _, key := range b.payloads.get(it.Key) {
			b.hot[key] = struct{}{}
		}
		for _, origin := range it.Origins {
			b.probeHot.Record(ctx.Now() - origin)
		}
		return
	}
	if _, ok := b.hot[it.Key]; ok {
		ctx.Emit(0, it)
	}
}

// sentimentBehavior is the S task: it classifies the tweet's sentiment
// (LingPipe stand-in with a calibrated cost).
type sentimentBehavior struct{}

var _ sim.Behavior = (*sentimentBehavior)(nil)

func (sentimentBehavior) ServiceTime(rng *rand.Rand, _ *sim.Item) float64 {
	return sentimentService * (0.6 + 0.8*rng.Float64())
}

func (sentimentBehavior) Process(ctx *sim.TaskContext, it sim.Item) {
	out := it
	out.Kind = kindScored
	out.Size = scoredBytes
	ctx.Emit(0, out)
}

// sinkBehavior is the SI task: it tracks per-topic sentiment and
// terminates constraint (2) at its inbound edge (e3 ends the sequence,
// so latency is recorded at consume time, before the sink's own service).
type sinkBehavior struct {
	probe *sim.Probe
}

var _ sim.Behavior = (*sinkBehavior)(nil)

func (b *sinkBehavior) ServiceTime(rng *rand.Rand, it *sim.Item) float64 {
	// Constraint (2) ends with edge e3: measure at consumption.
	return sinkServicePerScore * (0.7 + 0.6*rng.Float64())
}

func (b *sinkBehavior) Process(ctx *sim.TaskContext, it sim.Item) {
	if it.Sampled {
		b.probe.Record(ctx.Now() - it.EmitTime)
	}
}

// BuildTwitterSentiment assembles the TwitterSentiment job's simulator
// config and probe set.
func BuildTwitterSentiment(opts TwitterSentimentOptions) (sim.Config, *sim.ProbeSet, error) {
	if opts.Schedule == nil && opts.Replay == nil {
		return sim.Config{}, nil, fmt.Errorf("apps: twitter sentiment needs a schedule or a replay")
	}
	if opts.Replay == nil {
		if err := opts.Schedule.Validate(); err != nil {
			return sim.Config{}, nil, fmt.Errorf("apps: %w", err)
		}
	}
	if opts.Sources <= 0 || opts.InitialHT <= 0 || opts.InitialFilter <= 0 || opts.InitialSentiment <= 0 {
		return sim.Config{}, nil, fmt.Errorf("apps: twitter sentiment needs positive parallelism")
	}
	if opts.Topics <= 1 {
		opts.Topics = 1000
	}
	if opts.HotK <= 0 {
		opts.HotK = 10
	}
	if opts.WindowSeconds <= 0 {
		opts.WindowSeconds = 0.2
	}
	if opts.MinElastic <= 0 {
		opts.MinElastic = 1
	}
	if opts.MaxElastic <= 0 {
		opts.MaxElastic = 100
	}
	if opts.SampleProbability <= 0 {
		opts.SampleProbability = 0.04
	}

	g := model.NewJobGraph()
	for _, v := range []model.JobVertex{
		{Name: TSSource, Parallelism: opts.Sources, MinParallelism: opts.Sources, MaxParallelism: opts.Sources},
		{Name: TSHotTopics, Parallelism: opts.InitialHT, MinParallelism: opts.MinElastic,
			MaxParallelism: opts.MaxElastic, LatencyMode: model.LatencyReadWrite},
		{Name: TSTopicsMerger, Parallelism: 1, MinParallelism: 1, MaxParallelism: 1, LatencyMode: model.LatencyReadWrite},
		{Name: TSFilter, Parallelism: opts.InitialFilter, MinParallelism: opts.MinElastic,
			MaxParallelism: opts.MaxElastic},
		{Name: TSSentiment, Parallelism: opts.InitialSentiment, MinParallelism: opts.MinElastic,
			MaxParallelism: opts.MaxElastic},
		{Name: TSSink, Parallelism: 2, MinParallelism: 2, MaxParallelism: 2},
	} {
		if err := g.AddVertex(v); err != nil {
			return sim.Config{}, nil, fmt.Errorf("apps: %w", err)
		}
	}
	// Edge order per vertex defines the Emit edge indices below:
	// TweetSource: 0 = e1 (→Filter), 1 = e4 (→HotTopics).
	for _, e := range []struct {
		src, dst string
		pattern  model.WiringPattern
	}{
		{TSSource, TSFilter, model.PatternRoundRobin},          // e1
		{TSSource, TSHotTopics, model.PatternRoundRobin},       // e4
		{TSHotTopics, TSTopicsMerger, model.PatternRoundRobin}, // e5
		{TSTopicsMerger, TSFilter, model.PatternBroadcast},     // e6
		{TSFilter, TSSentiment, model.PatternRoundRobin},       // e2
		{TSSentiment, TSSink, model.PatternRoundRobin},         // e3
	} {
		if err := g.AddEdge(e.src, e.dst, e.pattern); err != nil {
			return sim.Config{}, nil, fmt.Errorf("apps: %w", err)
		}
	}

	probes := sim.NewProbeSetSeeded(opts.Seed)
	probeHot := probes.Probe(HotTopicsProbe)
	probeSent := probes.Probe(SentimentProbe)
	probes.SetBound(HotTopicsProbe, opts.Bound1.Seconds())
	probes.SetBound(SentimentProbe, opts.Bound2.Seconds())
	if q := opts.ConstraintQuantile; q > 0 && q < 1 {
		probes.SetQuantile(HotTopicsProbe, q)
		probes.SetQuantile(SentimentProbe, q)
	}
	payloads := newTopicListPayloads()

	seq1, err := model.ParseSequence(g,
		TSSource+"->"+TSHotTopics, TSHotTopics,
		TSHotTopics+"->"+TSTopicsMerger, TSTopicsMerger,
		TSTopicsMerger+"->"+TSFilter, TSFilter)
	if err != nil {
		return sim.Config{}, nil, fmt.Errorf("apps: %w", err)
	}
	seq2, err := model.ParseSequence(g,
		TSSource+"->"+TSFilter, TSFilter,
		TSFilter+"->"+TSSentiment, TSSentiment,
		TSSentiment+"->"+TSSink)
	if err != nil {
		return sim.Config{}, nil, fmt.Errorf("apps: %w", err)
	}
	constraints := []*model.Constraint{
		{Name: "constraint-1", Sequence: seq1, Bound: opts.Bound1, Window: 10 * time.Second, Quantile: opts.ConstraintQuantile},
		{Name: "constraint-2", Sequence: seq2, Bound: opts.Bound2, Window: 10 * time.Second, Quantile: opts.ConstraintQuantile},
	}

	var sched workload.Schedule = opts.Schedule
	emit := newTweetEmitter(opts.Schedule, opts.Topics, opts.Seed+1000)
	if opts.Replay != nil {
		sched = opts.Replay
		emit = newReplayEmitter(opts.Replay)
	}
	cfg := sim.Config{
		Graph:       g,
		Constraints: constraints,
		Vertices: map[string]sim.VertexConfig{
			TSSource: {
				Source: &sim.SourceConfig{
					Schedule: sched,
					EmitCost: 30e-6,
					Emit:     emit,
				},
				SampleProbability: opts.SampleProbability,
			},
			TSHotTopics: {NewBehavior: func(int) sim.Behavior {
				return &hotTopicsBehavior{window: opts.WindowSeconds, k: opts.HotK, counts: make(map[uint64]int), payloads: payloads}
			}},
			TSTopicsMerger: {NewBehavior: func(int) sim.Behavior {
				return &mergerBehavior{k: opts.HotK, counts: make(map[uint64]float64), payloads: payloads}
			}},
			TSFilter: {NewBehavior: func(int) sim.Behavior {
				return &filterBehavior{hot: make(map[uint64]struct{}), payloads: payloads, probeHot: probeHot}
			}},
			TSSentiment: {NewBehavior: func(int) sim.Behavior { return sentimentBehavior{} }},
			TSSink:      {NewBehavior: func(int) sim.Behavior { return &sinkBehavior{probe: probeSent} }},
		},
		Edges: map[model.EdgeKey]sim.EdgeConfig{
			{Source: TSSource, Target: TSFilter}:          {Mode: sim.BatchAdaptive},
			{Source: TSSource, Target: TSHotTopics}:       {Mode: sim.BatchAdaptive},
			{Source: TSHotTopics, Target: TSTopicsMerger}: {Mode: sim.BatchAdaptive},
			{Source: TSTopicsMerger, Target: TSFilter}:    {Mode: sim.BatchAdaptive},
			{Source: TSFilter, Target: TSSentiment}:       {Mode: sim.BatchAdaptive},
			{Source: TSSentiment, Target: TSSink}:         {Mode: sim.BatchAdaptive},
		},
		Costs:              twitterCosts(),
		Elastic:            opts.Elastic,
		Scaler:             opts.Scaler,
		WorkerNodes:        opts.WorkerNodes,
		SlotsPerNode:       opts.SlotsPerNode,
		Seed:               opts.Seed,
		Guarantee:          opts.Guarantee,
		CheckpointInterval: opts.CheckpointInterval,
	}
	return cfg, probes, nil
}

// newReplayEmitter builds a TweetSource emission function that replays a
// recorded trace in timestamp order ("replays JSON-encoded tweets at the
// correct historic rates or a multiple thereof").
func newReplayEmitter(replay *workload.TweetReplay) sim.SourceFunc {
	return func(ctx *sim.TaskContext, now float64) {
		tw := replay.Next()
		topic := uint64(0)
		if len(tw.Topics) > 0 {
			if idx, ok := workload.TopicIndex(tw.Topics[0]); ok {
				topic = uint64(idx)
			}
		}
		tweet := sim.Item{
			EmitTime: now,
			Size:     tweetBytes,
			Kind:     kindTweet,
			Key:      topic,
			Sampled:  ctx.Sample(),
		}
		ctx.Emit(1, tweet) // e4 → HotTopics
		ctx.Emit(0, tweet) // e1 → Filter
	}
}

// newTweetEmitter builds the TweetSource emission function: each tweet is
// sent twice (copy 1 to HotTopics via e4, copy 2 to Filter via e1), with
// Zipf-distributed topics and burst concentration.
func newTweetEmitter(sched *workload.DiurnalSchedule, topics int, seed int64) sim.SourceFunc {
	zipfRng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(zipfRng, 1.2, 1, uint64(topics-1))
	return func(ctx *sim.TaskContext, now float64) {
		topic := zipf.Uint64()
		if burstTopic, w := sched.BurstWeight(now); w > 0 && ctx.Rand().Float64() < w {
			topic = uint64(burstTopic)
		}
		sampled := ctx.Sample()
		tweet := sim.Item{
			EmitTime: now,
			Size:     tweetBytes,
			Kind:     kindTweet,
			Key:      topic,
			Sampled:  sampled,
		}
		ctx.Emit(1, tweet) // e4 → HotTopics
		ctx.Emit(0, tweet) // e1 → Filter
	}
}
