// Package apps builds the paper's two evaluation jobs — PrimeTester
// (Section III-A) and TwitterSentiment (Section V-B) — as simulator
// configurations, including the calibrated cost models that substitute
// the paper's 130-node cluster.
package apps

import (
	"fmt"
	"math/rand"
	"time"

	"nephelix/internal/ckpt"
	"nephelix/internal/core"
	"nephelix/internal/model"
	"nephelix/internal/sim"
	"nephelix/internal/workload"
)

// Vertex names of the PrimeTester job (Figure 2).
const (
	PTSource = "Source"
	PTWorker = "PrimeTester"
	PTSink   = "Sink"
)

// PrimeProbe is the probe name of the PrimeTester job's end-to-end
// latency (Source emit → Sink consume).
const PrimeProbe = "source-to-sink"

// PrimeTesterOptions parameterizes the PrimeTester job build.
type PrimeTesterOptions struct {
	// Sources and Sinks are the (static) source/sink parallelism.
	Sources int
	Sinks   int
	// PrimeTesters is the initial PrimeTester parallelism; MinPT/MaxPT
	// its elastic bounds (set equal to PrimeTesters for the unelastic
	// baseline).
	PrimeTesters int
	MinPT, MaxPT int
	// Schedule is the step-wise load profile.
	Schedule *workload.StepSchedule
	// Mode configures output batching on both edges (Storm/Nephele-IF:
	// instant; Nephele-16KiB: fixed buffer; Nephele-20ms: adaptive).
	Mode sim.BatchMode
	// ConstraintBound enables the latency constraint (0 disables; the
	// 16KiB and IF configurations run unconstrained).
	ConstraintBound time.Duration
	// ConstraintQuantile, when in (0,1), makes the constraint a
	// percentile constraint bounding that quantile of the sequence
	// latency instead of the mean. 0 keeps mean semantics.
	ConstraintQuantile float64
	// Elastic enables reactive scaling.
	Elastic bool
	// Scaler configures the elastic scaler; zero value takes the paper's
	// defaults.
	Scaler core.ScalerConfig
	// WorkerNodes/SlotsPerNode describe the cluster pool.
	WorkerNodes  int
	SlotsPerNode int
	// QueueCapacityItems bounds input queues.
	QueueCapacityItems int
	Seed               int64
	// SampleProbability tags source emissions for latency probing.
	SampleProbability float64
	// Guarantee selects the processing guarantee (default at-most-once:
	// no checkpoints, no replay).
	Guarantee ckpt.Guarantee
	// CheckpointInterval is the barrier-checkpoint period in virtual
	// seconds (0 takes the simulator default; only meaningful when
	// Guarantee is enabled).
	CheckpointInterval float64
}

// primeCosts is the calibrated data-plane cost model for the PrimeTester
// cluster. The constants reproduce Figure 3's measured envelope on the
// paper's hardware (Appendix A): per-flush costs cover system calls,
// transport headers and interrupt handling amortized per shipped buffer;
// with ~64 B items they cap instant flushing near 40 k items/s on 200
// tasks while 16 KiB buffers reach ~63 k items/s.
// With S̄ = 3.15 ms and 200 PrimeTester tasks: instant flushing binds at
// the sources (50 × 1/(0.05+1.2) ms ≈ 40 k items/s), the 20 ms adaptive
// configuration at the testers (200 / (3.15+1.2/1.7+0.35/7) ms ≈ 51 k)
// and 16 KiB buffers at the testers' pure service time (≈ 63 k) —
// matching the paper's 40/52/63 k effective peaks.
func primeCosts() sim.CostModel {
	return sim.CostModel{
		FlushCPU:   1.2e-3,
		ReceiveCPU: 350e-6,
		NetFixed:   150e-6,
		NetPerByte: 8e-9,
		TCPSetup:   1e-3,
	}
}

// primeItemBytes is the serialized size of one candidate number with
// envelope (matches the 16 KiB warm-up fill time of ≈3 s in Figure 3).
const primeItemBytes = 64

// primeServiceMean is the mean CPU time of one probable-primality test on
// the reference core (batched peak 63 k items/s over 200 tasks ⇒ ≈3.15 ms
// per item).
const primeServiceMean = 3.15e-3

// primeTestBehavior models the PrimeTester UDF's service time. The
// sources emit odd fixed-width candidates, so the test cost is dominated
// by the first Miller–Rabin round (one modular exponentiation): ~97% of
// candidates are composites that fail early, while probable primes run
// additional rounds. The resulting coefficient of variation (≈0.5)
// matches the scaling aggressiveness the paper's evaluation exhibits
// (warm-up parallelism near the busy-server demand).
type primeTestBehavior struct{}

var _ sim.Behavior = (*primeTestBehavior)(nil)

// ServiceTime draws from the Miller–Rabin cost profile with mean
// primeServiceMean.
func (primeTestBehavior) ServiceTime(rng *rand.Rand, _ *sim.Item) float64 {
	// Mixture: 97% early-exit composites at ≈1× base, 3% probable primes
	// at 4× base (additional rounds, partially offset by small-factor
	// prescreening). Base chosen so the mixture mean equals
	// primeServiceMean.
	const base = primeServiceMean / (0.97*1.0 + 0.03*4.0)
	if rng.Float64() < 0.97 {
		return base * (0.85 + 0.3*rng.Float64())
	}
	return base * 4.0 * (0.9 + 0.2*rng.Float64())
}

// Process forwards the tested candidate to the sinks.
func (primeTestBehavior) Process(ctx *sim.TaskContext, it sim.Item) {
	ctx.Emit(0, it)
}

// primeSinkBehavior records end-to-end latency for sampled items.
type primeSinkBehavior struct {
	probe *sim.Probe
}

var _ sim.Behavior = (*primeSinkBehavior)(nil)

func (primeSinkBehavior) ServiceTime(_ *rand.Rand, _ *sim.Item) float64 { return 20e-6 }

func (b primeSinkBehavior) Process(ctx *sim.TaskContext, it sim.Item) {
	if it.Sampled {
		b.probe.Record(ctx.Now() - it.EmitTime)
	}
}

// BuildPrimeTester assembles the PrimeTester job's simulator config and
// probe set.
func BuildPrimeTester(opts PrimeTesterOptions) (sim.Config, *sim.ProbeSet, error) {
	if opts.Sources <= 0 || opts.Sinks <= 0 || opts.PrimeTesters <= 0 {
		return sim.Config{}, nil, fmt.Errorf("apps: prime tester needs positive parallelism, got %+v", opts)
	}
	if opts.Schedule == nil {
		return sim.Config{}, nil, fmt.Errorf("apps: prime tester needs a schedule")
	}
	if err := opts.Schedule.Validate(); err != nil {
		return sim.Config{}, nil, fmt.Errorf("apps: %w", err)
	}
	if opts.MinPT <= 0 {
		opts.MinPT = opts.PrimeTesters
	}
	if opts.MaxPT <= 0 {
		opts.MaxPT = opts.PrimeTesters
	}
	if opts.Mode == 0 {
		opts.Mode = sim.BatchAdaptive
	}
	if opts.SampleProbability <= 0 {
		opts.SampleProbability = 0.05
	}
	if opts.Scaler.InactivityIntervals == 0 && opts.Scaler.Strategy == (core.StrategyConfig{}) {
		opts.Scaler = core.DefaultScalerConfig()
	}

	g := model.NewJobGraph()
	for _, v := range []model.JobVertex{
		{Name: PTSource, Parallelism: opts.Sources, MinParallelism: opts.Sources, MaxParallelism: opts.Sources},
		{Name: PTWorker, Parallelism: opts.PrimeTesters, MinParallelism: opts.MinPT, MaxParallelism: opts.MaxPT},
		{Name: PTSink, Parallelism: opts.Sinks, MinParallelism: opts.Sinks, MaxParallelism: opts.Sinks},
	} {
		if err := g.AddVertex(v); err != nil {
			return sim.Config{}, nil, fmt.Errorf("apps: %w", err)
		}
	}
	if err := g.AddEdge(PTSource, PTWorker, model.PatternRoundRobin); err != nil {
		return sim.Config{}, nil, fmt.Errorf("apps: %w", err)
	}
	if err := g.AddEdge(PTWorker, PTSink, model.PatternRoundRobin); err != nil {
		return sim.Config{}, nil, fmt.Errorf("apps: %w", err)
	}

	probes := sim.NewProbeSetSeeded(opts.Seed)
	probe := probes.Probe(PrimeProbe)

	var constraints []*model.Constraint
	if opts.ConstraintBound > 0 {
		seq, err := model.ParseSequence(g,
			PTSource+"->"+PTWorker, PTWorker, PTWorker+"->"+PTSink)
		if err != nil {
			return sim.Config{}, nil, fmt.Errorf("apps: %w", err)
		}
		constraints = append(constraints, &model.Constraint{
			Name:     "latency",
			Sequence: seq,
			Bound:    opts.ConstraintBound,
			Window:   10 * time.Second,
			Quantile: opts.ConstraintQuantile,
		})
		probes.SetBound(PrimeProbe, opts.ConstraintBound.Seconds())
		if q := opts.ConstraintQuantile; q > 0 && q < 1 {
			probes.SetQuantile(PrimeProbe, q)
		}
	}

	cfg := sim.Config{
		Graph:       g,
		Constraints: constraints,
		Vertices: map[string]sim.VertexConfig{
			PTSource: {
				Source: &sim.SourceConfig{
					Schedule: opts.Schedule,
					EmitCost: 50e-6,
					Emit: func(ctx *sim.TaskContext, now float64) {
						ctx.Emit(0, sim.Item{
							EmitTime: now,
							Size:     primeItemBytes,
							Key:      ctx.Rand().Uint64() | 1,
							Sampled:  ctx.Sample(),
						})
					},
				},
				SampleProbability: opts.SampleProbability,
			},
			PTWorker: {NewBehavior: func(int) sim.Behavior { return primeTestBehavior{} }},
			PTSink:   {NewBehavior: func(int) sim.Behavior { return primeSinkBehavior{probe: probe} }},
		},
		Edges: map[model.EdgeKey]sim.EdgeConfig{
			{Source: PTSource, Target: PTWorker}: {Mode: opts.Mode},
			{Source: PTWorker, Target: PTSink}:   {Mode: opts.Mode},
		},
		Costs:              primeCosts(),
		Elastic:            opts.Elastic,
		Scaler:             opts.Scaler,
		WorkerNodes:        opts.WorkerNodes,
		SlotsPerNode:       opts.SlotsPerNode,
		QueueCapacityItems: opts.QueueCapacityItems,
		Seed:               opts.Seed,
		Guarantee:          opts.Guarantee,
		CheckpointInterval: opts.CheckpointInterval,
	}
	return cfg, probes, nil
}

// ScalePrimeTesterOptions divides all task counts and rates by factor so
// cluster-scale experiments run at laptop cost while per-task load and
// latency dynamics stay identical. Reported throughputs and task-hours
// must be multiplied back by factor (the experiment harness does).
func ScalePrimeTesterOptions(opts PrimeTesterOptions, factor int) PrimeTesterOptions {
	if factor <= 1 {
		return opts
	}
	div := func(v int) int {
		if v <= 0 {
			return v // unset fields keep their "use default" meaning
		}
		r := v / factor
		if r < 1 {
			r = 1
		}
		return r
	}
	opts.Sources = div(opts.Sources)
	opts.Sinks = div(opts.Sinks)
	opts.PrimeTesters = div(opts.PrimeTesters)
	opts.MinPT = div(opts.MinPT)
	opts.MaxPT = div(opts.MaxPT)
	if opts.Schedule != nil {
		s := *opts.Schedule
		s.WarmUpRate /= float64(factor)
		s.StepDelta /= float64(factor)
		opts.Schedule = &s
	}
	opts.WorkerNodes = div(opts.WorkerNodes)
	return opts
}
