package apps

import (
	"testing"
	"time"

	"nephelix/internal/model"
	"nephelix/internal/sim"
	"nephelix/internal/workload"
)

func quickStepSchedule() *workload.StepSchedule {
	return &workload.StepSchedule{
		WarmUpRate:     200,
		StepDelta:      200,
		IncrementSteps: 2,
		StepDuration:   20,
	}
}

func basePTOptions() PrimeTesterOptions {
	return PrimeTesterOptions{
		Sources:      2,
		Sinks:        2,
		PrimeTesters: 8,
		MinPT:        1,
		MaxPT:        32,
		Schedule:     quickStepSchedule(),
		Mode:         sim.BatchAdaptive,
		WorkerNodes:  16,
		SlotsPerNode: 4,
		Seed:         1,
	}
}

func TestBuildPrimeTesterGraphStructure(t *testing.T) {
	cfg, probes, err := BuildPrimeTester(basePTOptions())
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Graph
	// Figure 2: Source -> PrimeTester -> Sink, all round-robin.
	if len(g.Vertices()) != 3 || len(g.Edges()) != 2 {
		t.Fatalf("graph shape: %d vertices, %d edges", len(g.Vertices()), len(g.Edges()))
	}
	for _, e := range g.Edges() {
		if e.Pattern != model.PatternRoundRobin {
			t.Errorf("edge %s: pattern %v, want round-robin", e.Key(), e.Pattern)
		}
	}
	if got := g.Sources(); len(got) != 1 || got[0] != PTSource {
		t.Errorf("sources: %v", got)
	}
	if got := g.Sinks(); len(got) != 1 || got[0] != PTSink {
		t.Errorf("sinks: %v", got)
	}
	if probes.Probe(PrimeProbe) == nil {
		t.Error("probe missing")
	}
}

func TestBuildPrimeTesterValidation(t *testing.T) {
	opts := basePTOptions()
	opts.Sources = 0
	if _, _, err := BuildPrimeTester(opts); err == nil {
		t.Error("zero sources accepted")
	}
	opts = basePTOptions()
	opts.Schedule = nil
	if _, _, err := BuildPrimeTester(opts); err == nil {
		t.Error("nil schedule accepted")
	}
}

func TestBuildPrimeTesterConstraint(t *testing.T) {
	opts := basePTOptions()
	opts.ConstraintBound = 20 * time.Millisecond
	cfg, probes, err := BuildPrimeTester(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Constraints) != 1 {
		t.Fatalf("constraints: %d", len(cfg.Constraints))
	}
	c := cfg.Constraints[0]
	vs := c.Sequence.Vertices()
	if len(vs) != 1 || vs[0] != PTWorker {
		t.Errorf("constrained vertices: %v, want [PrimeTester]", vs)
	}
	if probes.Probe(PrimeProbe).BoundSeconds != 0.020 {
		t.Errorf("probe bound: %v", probes.Probe(PrimeProbe).BoundSeconds)
	}
}

// TestPrimeTesterIntegrationElastic runs a short scaled-down elastic job
// end to end: the constraint holds most of the time and the vertex scales
// with the load steps.
func TestPrimeTesterIntegrationElastic(t *testing.T) {
	opts := basePTOptions()
	opts.ConstraintBound = 30 * time.Millisecond
	opts.Elastic = true
	opts.PrimeTesters = 4
	s, err := newSim(t, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	summary := res.Probes[PrimeProbe]
	if summary.Count == 0 {
		t.Fatal("no latency observations")
	}
	if summary.Fulfillment < 0.6 {
		t.Errorf("constraint fulfillment %.2f too low for a moderate load", summary.Fulfillment)
	}
	// Peak rate 600/s at ~3.15 ms service needs ≥ 2 busy tasks plus
	// headroom; warm-up needs almost nothing.
	if res.PeakParallelism[PTWorker] < 3 {
		t.Errorf("peak parallelism %d, want ≥ 3", res.PeakParallelism[PTWorker])
	}
	if res.DroppedItems != 0 {
		t.Errorf("dropped %d items", res.DroppedItems)
	}
	if res.TaskHours <= 0 {
		t.Error("task hours not accounted")
	}
}

func newSim(t *testing.T, opts PrimeTesterOptions) (*sim.Sim, error) {
	t.Helper()
	cfg, probes, err := BuildPrimeTester(opts)
	if err != nil {
		return nil, err
	}
	return sim.New(cfg, probes)
}

// TestPrimeTesterBatchingOrdering reproduces the Figure 3 ordering on a
// small scale: instant flushing has the lowest latency at low load,
// fixed 16 KiB buffers the highest.
func TestPrimeTesterBatchingOrdering(t *testing.T) {
	run := func(mode sim.BatchMode, bound time.Duration) *sim.Result {
		opts := basePTOptions()
		opts.Schedule = &workload.StepSchedule{WarmUpRate: 200, StepDelta: 100, IncrementSteps: 1, StepDuration: 30}
		opts.Mode = mode
		opts.ConstraintBound = bound
		s, err := newSim(t, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	instant := run(sim.BatchInstant, 0)
	fixed := run(sim.BatchFixedBuffer, 0)
	adaptive := run(sim.BatchAdaptive, 20*time.Millisecond)

	li := instant.Probes[PrimeProbe].Mean
	lf := fixed.Probes[PrimeProbe].Mean
	la := adaptive.Probes[PrimeProbe].Mean
	if !(li < la && la < lf) {
		t.Errorf("latency ordering violated: instant %.4f, adaptive %.4f, fixed %.4f", li, la, lf)
	}
	// At low rates the 16 KiB buffers take seconds to fill.
	if lf < 0.5 {
		t.Errorf("fixed-buffer latency %.3f s too low for 16 KiB fill at this rate", lf)
	}
}

func TestScalePrimeTesterOptions(t *testing.T) {
	opts := PrimeTesterOptions{
		Sources: 50, Sinks: 50, PrimeTesters: 200, MinPT: 1, MaxPT: 520,
		Schedule:    &workload.StepSchedule{WarmUpRate: 10000, StepDelta: 10000, IncrementSteps: 9, StepDuration: 60},
		WorkerNodes: 130,
	}
	scaled := ScalePrimeTesterOptions(opts, 10)
	if scaled.Sources != 5 || scaled.PrimeTesters != 20 || scaled.MaxPT != 52 {
		t.Errorf("scaled counts: %+v", scaled)
	}
	if scaled.Schedule.WarmUpRate != 1000 || scaled.Schedule.StepDelta != 1000 {
		t.Errorf("scaled rates: %+v", scaled.Schedule)
	}
	if scaled.MinPT != 1 {
		t.Errorf("min clamped to 1, got %d", scaled.MinPT)
	}
	// The original is untouched.
	if opts.Schedule.WarmUpRate != 10000 {
		t.Error("scaling mutated the original schedule")
	}
	// Factor 1 is the identity.
	same := ScalePrimeTesterOptions(opts, 1)
	if same.Sources != 50 {
		t.Error("factor 1 must not scale")
	}
}
