package apps

import (
	"testing"
	"time"

	"nephelix/internal/model"
	"nephelix/internal/sim"
	"nephelix/internal/workload"
)

func quickTSOptions() TwitterSentimentOptions {
	opts := DefaultTwitterSentimentOptions()
	// Shrink: 5 compressed days in 500 s, modest rates.
	opts.Schedule = &workload.DiurnalSchedule{
		BaseRate:       80,
		DailyAmplitude: 400,
		CycleLength:    100,
		Length:         500,
		NoiseAmplitude: 0.1,
		Seed:           5,
		Bursts:         []workload.Burst{{Start: 230, Length: 40, ExtraRate: 400, Topic: 3}},
	}
	opts.Sources = 2
	opts.InitialHT, opts.InitialFilter, opts.InitialSentiment = 2, 2, 3
	opts.MaxElastic = 40
	opts.WorkerNodes = 40
	return opts
}

func TestBuildTwitterSentimentGraphStructure(t *testing.T) {
	cfg, _, err := BuildTwitterSentiment(quickTSOptions())
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Graph
	// Figure 7: six vertices, six edges.
	if len(g.Vertices()) != 6 || len(g.Edges()) != 6 {
		t.Fatalf("graph shape: %d vertices, %d edges", len(g.Vertices()), len(g.Edges()))
	}
	// HTM -> F is the only broadcast edge.
	for _, e := range g.Edges() {
		want := model.PatternRoundRobin
		if e.Source == TSTopicsMerger {
			want = model.PatternBroadcast
		}
		if e.Pattern != want {
			t.Errorf("edge %s: pattern %v, want %v", e.Key(), e.Pattern, want)
		}
	}
	// Three elastic vertices (F, S, HT); HTM and Source are fixed.
	elastic := 0
	for _, v := range g.Vertices() {
		if v.Elastic() {
			elastic++
		}
	}
	if elastic != 3 {
		t.Errorf("elastic vertices: %d, want 3", elastic)
	}
	if !g.Vertex(TSHotTopics).Elastic() || g.Vertex(TSTopicsMerger).Elastic() {
		t.Error("wrong elasticity assignment")
	}
	// Windowed vertices use read-write latency.
	if g.Vertex(TSHotTopics).LatencyMode != model.LatencyReadWrite ||
		g.Vertex(TSTopicsMerger).LatencyMode != model.LatencyReadWrite {
		t.Error("windowed vertices must use read-write latency")
	}
	if g.Vertex(TSFilter).LatencyMode != model.LatencyReadReady {
		t.Error("filter must use read-ready latency")
	}
}

func TestBuildTwitterSentimentConstraints(t *testing.T) {
	cfg, probes, err := BuildTwitterSentiment(quickTSOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Constraints) != 2 {
		t.Fatalf("constraints: %d, want 2", len(cfg.Constraints))
	}
	c1, c2 := cfg.Constraints[0], cfg.Constraints[1]
	if got := c1.Sequence.Vertices(); len(got) != 3 || got[0] != TSHotTopics || got[2] != TSFilter {
		t.Errorf("constraint 1 vertices: %v", got)
	}
	if got := c2.Sequence.Vertices(); len(got) != 2 || got[0] != TSFilter || got[1] != TSSentiment {
		t.Errorf("constraint 2 vertices: %v", got)
	}
	if c1.Bound != 215*time.Millisecond || c2.Bound != 30*time.Millisecond {
		t.Errorf("bounds: %v / %v", c1.Bound, c2.Bound)
	}
	if probes.Probe(HotTopicsProbe).BoundSeconds == 0 || probes.Probe(SentimentProbe).BoundSeconds == 0 {
		t.Error("probe bounds not set")
	}
}

func TestBuildTwitterSentimentValidation(t *testing.T) {
	opts := quickTSOptions()
	opts.Schedule = nil
	if _, _, err := BuildTwitterSentiment(opts); err == nil {
		t.Error("nil schedule accepted")
	}
	opts = quickTSOptions()
	opts.Sources = 0
	if _, _, err := BuildTwitterSentiment(opts); err == nil {
		t.Error("zero sources accepted")
	}
}

// TestTwitterSentimentIntegration runs the scaled-down job end to end:
// hot lists flow (constraint 1 sees data), filtered tweets reach the sink
// (constraint 2 sees data), and the burst scales the Sentiment vertex.
func TestTwitterSentimentIntegration(t *testing.T) {
	opts := quickTSOptions()
	cfg, probes, err := BuildTwitterSentiment(opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	hot := res.Probes[HotTopicsProbe]
	sent := res.Probes[SentimentProbe]
	if hot.Count == 0 {
		t.Fatal("constraint 1 path saw no data (hot lists not flowing)")
	}
	if sent.Count == 0 {
		t.Fatal("constraint 2 path saw no data (filter passes nothing)")
	}
	// The windowed path is dominated by the 200 ms HT aggregation window
	// (mean wait ≈ half a window) plus batching and queueing.
	if hot.Mean < 0.09 || hot.Mean > 0.215 {
		t.Errorf("hot-topics path mean %.3f s outside window-dominated range", hot.Mean)
	}
	// The sentiment path is far faster.
	if sent.Mean >= hot.Mean {
		t.Errorf("sentiment path %.3f s not faster than hot-topics path %.3f s", sent.Mean, hot.Mean)
	}
	if res.DroppedItems != 0 {
		t.Errorf("dropped %d items", res.DroppedItems)
	}
	// Elastic activity must be present with the varying trace.
	if res.ScaleUps == 0 || res.ScaleDowns == 0 {
		t.Errorf("no scaling activity: ups=%d downs=%d", res.ScaleUps, res.ScaleDowns)
	}
	if res.PeakParallelism[TSSentiment] <= opts.InitialSentiment {
		t.Errorf("sentiment never scaled above initial %d (peak %d)",
			opts.InitialSentiment, res.PeakParallelism[TSSentiment])
	}
}

func TestDefaultTweetTracePeak(t *testing.T) {
	trace := DefaultTweetTrace()
	if err := trace.Validate(); err != nil {
		t.Fatal(err)
	}
	// Locate the global peak; it must sit in the 2300–2560 s burst with a
	// magnitude near the paper's 6734 tweets/s.
	peakT, peakRate := 0.0, 0.0
	for x := 0.0; x < trace.Length; x += 2 {
		if r := trace.Rate(x); r > peakRate {
			peakRate, peakT = r, x
		}
	}
	if peakT < 2300 || peakT > 2560 {
		t.Errorf("peak at %.0f s, want within the 2300–2560 s burst", peakT)
	}
	if peakRate < 5500 || peakRate > 8000 {
		t.Errorf("peak rate %.0f tweets/s, want ≈ 6734", peakRate)
	}
}

func TestTopKKeys(t *testing.T) {
	counts := map[uint64]int{1: 5, 2: 9, 3: 1, 4: 9, 5: 3}
	top := topKKeys(counts, 3)
	if len(top) != 3 || top[0] != 2 || top[1] != 4 || top[2] != 1 {
		t.Errorf("topK: got %v, want [2 4 1] (count desc, key asc ties)", top)
	}
	// k larger than the map.
	if got := topKKeys(map[uint64]int{7: 1}, 5); len(got) != 1 || got[0] != 7 {
		t.Errorf("small map: %v", got)
	}
}

func TestTopicListPayloads(t *testing.T) {
	p := newTopicListPayloads()
	tok := p.put([]uint64{1, 2, 3})
	if got := p.get(tok); len(got) != 3 {
		t.Fatalf("get: %v", got)
	}
	// Broadcast: repeated reads see the same list.
	if got := p.get(tok); len(got) != 3 {
		t.Fatalf("second get: %v", got)
	}
	// Eviction window.
	first := p.put([]uint64{9})
	for i := 0; i < payloadWindow+1; i++ {
		p.put([]uint64{uint64(i)})
	}
	if got := p.get(first); got != nil {
		t.Error("old payload not evicted")
	}
}

// TestBuildTwitterSentimentReplay runs the job from a recorded trace at
// historic rates.
func TestBuildTwitterSentimentReplay(t *testing.T) {
	gen := workload.NewTweetGenerator(50, 1.2, 5)
	var tweets []workload.Tweet
	// 120 s at ~150 tweets/s.
	for ms := int64(0); ms < 120_000; ms += 7 {
		tweets = append(tweets, gen.Next(ms, 0, 0))
	}
	replay, err := workload.NewTweetReplay(tweets, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := quickTSOptions()
	opts.Schedule = nil
	opts.Replay = replay
	cfg, probes, err := BuildTwitterSentiment(opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(cfg, probes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The replay's tweets all flow through; both constrained paths see
	// data.
	if got := res.Emitted[TSSource]; got < int64(len(tweets))*95/100 {
		t.Errorf("replayed %d of %d tweets", got, len(tweets))
	}
	if res.Probes[HotTopicsProbe].Count == 0 || res.Probes[SentimentProbe].Count == 0 {
		t.Error("constrained paths saw no data during replay")
	}
}

func TestBuildTwitterSentimentNeedsScheduleOrReplay(t *testing.T) {
	opts := quickTSOptions()
	opts.Schedule = nil
	if _, _, err := BuildTwitterSentiment(opts); err == nil {
		t.Error("missing schedule and replay accepted")
	}
}
