// Package probe provides end-to-end latency probes shared by the
// simulator and the live engine: applications record ground-truth
// sequence latencies at sequence ends; the runtime snapshots them per
// adjustment interval (constraint-fulfillment accounting) and per record
// interval (time series).
package probe

import (
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"

	"nephelix/internal/metrics"
	"nephelix/internal/metrics/sketch"
)

// Probe collects ground-truth end-to-end latencies for one constrained
// sequence. Application behaviors call Record at the sequence end; the
// simulator snapshots the probe per adjustment interval (constraint
// fulfillment accounting, paper's "% of adjustment intervals") and per
// record interval (time-series rows).
type Probe struct {
	// Name identifies the probe (typically the constraint name).
	Name string
	// BoundSeconds is the constraint bound ℓ used for fulfillment
	// accounting; 0 disables it.
	BoundSeconds float64
	// Quantile, when in (0,1), additionally accounts percentile
	// fulfillment: an adjustment interval counts as tail-fulfilled when
	// the interval's q-th quantile latency meets the bound. 0 tracks the
	// DefaultSLOQuantile-style p99 only through the run-wide sketch.
	Quantile float64
	// Tap, when set before the run starts, receives every recorded
	// latency under the probe lock — experiments use it to capture the
	// exact stream the sketches summarize.
	Tap func(latency float64)

	mu sync.Mutex

	adj   metrics.Welford // per adjustment interval
	adjSk *sketch.Sketch  // per adjustment interval (tail fulfillment)

	rec    metrics.Welford    // per record interval
	recRes *metrics.Reservoir // per record interval (raw samples)
	recSk  *sketch.Sketch     // per record interval (p95)

	// fulfillment counters over adjustment intervals with data.
	intervals     int
	fulfilled     int
	tailFulfilled int // intervals whose q-quantile met the bound

	total metrics.Welford
	all   *metrics.Reservoir // run-wide raw samples
	allSk *sketch.Sketch     // run-wide quantiles + SLO accounting
}

// Record adds one end-to-end latency observation (seconds).
func (p *Probe) Record(latency float64) {
	if latency < 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.adj.Add(latency)
	p.adjSk.Add(latency)
	p.rec.Add(latency)
	p.recRes.Add(latency)
	p.recSk.Add(latency)
	p.total.Add(latency)
	p.all.Add(latency)
	p.allSk.Add(latency)
	if p.Tap != nil {
		p.Tap(latency)
	}
}

// AdjSnapshot closes one adjustment interval: it updates the mean and
// tail fulfillment counters and resets the adjustment accumulators.
func (p *Probe) AdjSnapshot() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.adj.Count() == 0 {
		return // no data items this interval; not counted
	}
	p.intervals++
	if p.BoundSeconds <= 0 || p.adj.Mean() <= p.BoundSeconds {
		p.fulfilled++
	}
	if p.Quantile > 0 && p.Quantile < 1 {
		if p.BoundSeconds <= 0 || p.adjSk.Quantile(p.Quantile) <= p.BoundSeconds {
			p.tailFulfilled++
		}
	}
	p.adj.Reset()
	p.adjSk.Reset()
}

// RecSnapshot closes one record interval and returns (count, mean, p95).
// The p95 comes from the interval's quantile sketch (deterministic,
// ≤1% relative error); the raw-sample reservoir is reset alongside it.
func (p *Probe) RecSnapshot() (count int64, mean, p95 float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	count, mean = p.rec.Count(), p.rec.Mean()
	p95 = p.recSk.Quantile(0.95)
	p.rec.Reset()
	p.recRes.Reset()
	p.recSk.Reset()
	return count, mean, p95
}

// Fulfillment returns the fraction of adjustment intervals whose mean
// latency met the bound, and the number of counted intervals.
func (p *Probe) Fulfillment() (fraction float64, intervals int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.intervals == 0 {
		return 0, 0
	}
	return float64(p.fulfilled) / float64(p.intervals), p.intervals
}

// TailFulfillment returns the fraction of adjustment intervals whose
// q-quantile latency met the bound (0 when the probe has no quantile or
// no counted intervals), plus the counted intervals.
func (p *Probe) TailFulfillment() (fraction float64, intervals int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.intervals == 0 || !(p.Quantile > 0 && p.Quantile < 1) {
		return 0, p.intervals
	}
	return float64(p.tailFulfilled) / float64(p.intervals), p.intervals
}

// TotalMean returns the run-wide mean latency.
func (p *Probe) TotalMean() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total.Mean()
}

// TotalP95 returns the run-wide 95th percentile latency from the
// quantile sketch: deterministic (independent of sampling seeds) and
// within 1% relative error of the exact value.
func (p *Probe) TotalP95() float64 {
	return p.TotalQuantile(0.95)
}

// TotalQuantile returns the run-wide q-th quantile latency from the
// quantile sketch.
func (p *Probe) TotalQuantile(q float64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.allSk.Quantile(q)
}

// TailState reports the run-wide SLO accounting inputs for the probe's
// bound: total observations, observations over the bound (within the
// sketch's relative accuracy), and the current q-th quantile estimate.
func (p *Probe) TailState(q float64) (count, bad uint64, estimate float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	count = p.allSk.Count()
	if p.BoundSeconds > 0 {
		bad = p.allSk.CountAbove(p.BoundSeconds)
	}
	return count, bad, p.allSk.Quantile(q)
}

// TotalSketch returns an independent copy of the run-wide quantile
// sketch, e.g. for cross-run pooling via sketch.Merge.
func (p *Probe) TotalSketch() *sketch.Sketch {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.allSk.Clone()
}

// TotalSamples returns a copy of the run-wide reservoir's raw samples —
// the sampling-based API for callers that need actual observations
// (seed-sensitive, unlike the deterministic sketch quantiles).
func (p *Probe) TotalSamples() []float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.all.Samples()
}

// ReservoirQuantile estimates the run-wide q-th quantile from the
// raw-sample reservoir (nearest-rank over the held samples). Unlike
// TotalQuantile it depends on the reservoir's sampling seed.
func (p *Probe) ReservoirQuantile(q float64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.all.Percentile(q)
}

// TotalCount returns the number of recorded observations.
func (p *Probe) TotalCount() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total.Count()
}

// ProbeSet is a named collection of probes created by the application
// before the simulation starts, so behaviors can close over them.
type ProbeSet struct {
	mu     sync.Mutex
	seed   int64
	probes map[string]*Probe
}

// NewProbeSet returns an empty probe set with the default seed.
func NewProbeSet() *ProbeSet { return NewProbeSetSeeded(1) }

// NewProbeSetSeeded returns an empty probe set whose reservoir sampling
// is derived from seed. Each probe's reservoirs are seeded from the set
// seed mixed with a hash of the probe name, so sampling is a pure
// function of (seed, name) — independent of the order in which probes
// are first requested.
func NewProbeSetSeeded(seed int64) *ProbeSet {
	return &ProbeSet{seed: seed, probes: make(map[string]*Probe)}
}

// probeSeed derives a per-probe, per-purpose reservoir seed.
func (ps *ProbeSet) probeSeed(name string, purpose uint64) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return ps.seed ^ int64(h.Sum64()^(purpose*0x9e3779b97f4a7c15))
}

// Probe returns (creating on first use) the named probe.
func (ps *ProbeSet) Probe(name string) *Probe {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	p, ok := ps.probes[name]
	if !ok {
		p = &Probe{
			Name:   name,
			adjSk:  sketch.NewDefault(),
			recRes: metrics.NewReservoir(4096, rand.New(rand.NewSource(ps.probeSeed(name, 1)))),
			recSk:  sketch.NewDefault(),
			all:    metrics.NewReservoir(16384, rand.New(rand.NewSource(ps.probeSeed(name, 2)))),
			allSk:  sketch.NewDefault(),
		}
		ps.probes[name] = p
	}
	return p
}

// SetBound attaches a constraint bound to the named probe.
func (ps *ProbeSet) SetBound(name string, boundSeconds float64) {
	ps.Probe(name).BoundSeconds = boundSeconds
}

// SetQuantile attaches a percentile-constraint quantile to the named
// probe, enabling per-interval tail-fulfillment accounting.
func (ps *ProbeSet) SetQuantile(name string, q float64) {
	ps.Probe(name).Quantile = q
}

// Len returns the number of probes in the set.
func (ps *ProbeSet) Len() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.probes)
}

// Names returns the probe names in sorted order.
func (ps *ProbeSet) Names() []string {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	names := make([]string, 0, len(ps.probes))
	for n := range ps.probes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
