package probe

import (
	"math"
	"sync"
	"testing"
)

func TestProbeFulfillmentAccounting(t *testing.T) {
	ps := NewProbeSet()
	p := ps.Probe("c")
	p.BoundSeconds = 0.020

	// Interval 1: mean below the bound.
	p.Record(0.010)
	p.Record(0.014)
	p.AdjSnapshot()
	// Interval 2: mean above the bound.
	p.Record(0.030)
	p.Record(0.050)
	p.AdjSnapshot()
	// Interval 3: empty — must not count.
	p.AdjSnapshot()
	// Interval 4: exactly at the bound counts as fulfilled.
	p.Record(0.020)
	p.AdjSnapshot()

	frac, n := p.Fulfillment()
	if n != 3 {
		t.Fatalf("intervals: got %d, want 3 (empty intervals don't count)", n)
	}
	if math.Abs(frac-2.0/3.0) > 1e-12 {
		t.Errorf("fulfillment: got %v, want 2/3", frac)
	}
}

func TestProbeNoBoundAlwaysFulfilled(t *testing.T) {
	p := NewProbeSet().Probe("x")
	p.Record(123)
	p.AdjSnapshot()
	frac, n := p.Fulfillment()
	if n != 1 || frac != 1 {
		t.Errorf("unbounded probe: frac=%v n=%d, want 1/1", frac, n)
	}
}

func TestProbeRecSnapshotResets(t *testing.T) {
	p := NewProbeSet().Probe("x")
	for i := 1; i <= 100; i++ {
		p.Record(float64(i) / 1000)
	}
	count, mean, p95 := p.RecSnapshot()
	if count != 100 {
		t.Fatalf("count: got %d", count)
	}
	if math.Abs(mean-0.0505) > 1e-9 {
		t.Errorf("mean: got %v, want 0.0505", mean)
	}
	if p95 < 0.090 || p95 > 0.100 {
		t.Errorf("p95: got %v, want ≈0.095", p95)
	}
	if c, _, _ := p.RecSnapshot(); c != 0 {
		t.Error("RecSnapshot did not reset")
	}
	// Totals survive record snapshots.
	if p.TotalCount() != 100 {
		t.Errorf("TotalCount: got %d, want 100", p.TotalCount())
	}
	if p.TotalMean() == 0 || p.TotalP95() == 0 {
		t.Error("totals lost after snapshot")
	}
}

func TestProbeIgnoresNegative(t *testing.T) {
	p := NewProbeSet().Probe("x")
	p.Record(-1)
	if p.TotalCount() != 0 {
		t.Error("negative latency recorded")
	}
}

func TestProbeSetNamesSortedAndStable(t *testing.T) {
	ps := NewProbeSet()
	ps.Probe("zeta")
	ps.Probe("alpha")
	same := ps.Probe("zeta")
	if same != ps.Probe("zeta") {
		t.Error("Probe not idempotent")
	}
	names := ps.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Errorf("Names: %v", names)
	}
	ps.SetBound("alpha", 0.5)
	if ps.Probe("alpha").BoundSeconds != 0.5 {
		t.Error("SetBound did not stick")
	}
}

func TestProbeConcurrentRecording(t *testing.T) {
	p := NewProbeSet().Probe("x")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.Record(float64(seed+1) / 1000)
			}
		}(w)
	}
	wg.Wait()
	if p.TotalCount() != 8000 {
		t.Errorf("TotalCount under concurrency: got %d, want 8000", p.TotalCount())
	}
}
