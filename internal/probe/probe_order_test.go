package probe

import (
	"math/rand"
	"testing"
)

// TestObsProbeSamplingOrderIndependent: a probe's reservoir sampling is a
// pure function of (set seed, probe name) — the order in which probes are
// first requested must not change any probe's percentile estimates.
// (Previously seeds were derived from the creation index, so registering
// an unrelated probe first silently shifted every later probe's p95.)
func TestObsProbeSamplingOrderIndependent(t *testing.T) {
	feed := func(p *Probe, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50000; i++ {
			p.Record(rng.ExpFloat64() * 0.010)
		}
	}

	forward := NewProbeSetSeeded(7)
	a1 := forward.Probe("alpha")
	forward.Probe("beta") // registered but unused
	feed(a1, 42)

	reversed := NewProbeSetSeeded(7)
	reversed.Probe("beta")
	reversed.Probe("gamma") // extra registration must not matter either
	a2 := reversed.Probe("alpha")
	feed(a2, 42)

	if p1, p2 := a1.TotalP95(), a2.TotalP95(); p1 != p2 {
		t.Errorf("creation order changed alpha's p95: %v vs %v", p1, p2)
	}
	_, _, r1 := a1.RecSnapshot()
	_, _, r2 := a2.RecSnapshot()
	if r1 != r2 {
		t.Errorf("creation order changed alpha's record-interval p95: %v vs %v", r1, r2)
	}
}

// TestObsProbeSamplingSeedAndNameSensitivity: different set seeds (and
// different probe names) must still produce distinct reservoirs, so the
// order-independence fix does not collapse all sampling onto one
// stream. The raw-sample path is exercised via ReservoirQuantile —
// TotalP95 now comes from the quantile sketch, which is deterministic
// by design and must NOT vary with the sampling seed.
func TestObsProbeSamplingSeedAndNameSensitivity(t *testing.T) {
	feed := func(p *Probe) {
		rng := rand.New(rand.NewSource(9))
		// Overfill the 16384-slot reservoir so sampling decisions matter.
		for i := 0; i < 100000; i++ {
			p.Record(rng.ExpFloat64() * 0.010)
		}
	}
	s1 := NewProbeSetSeeded(1).Probe("alpha")
	s2 := NewProbeSetSeeded(2).Probe("alpha")
	feed(s1)
	feed(s2)
	if s1.ReservoirQuantile(0.95) == s2.ReservoirQuantile(0.95) {
		t.Error("different set seeds produced identical reservoir samples")
	}
	if s1.TotalP95() != s2.TotalP95() {
		t.Errorf("sketch p95 must be seed-independent for the same stream: %v vs %v",
			s1.TotalP95(), s2.TotalP95())
	}

	ps := NewProbeSetSeeded(1)
	pa, pb := ps.Probe("alpha"), ps.Probe("beta")
	feed(pa)
	feed(pb)
	if pa.ReservoirQuantile(0.95) == pb.ReservoirQuantile(0.95) {
		t.Error("different probe names produced identical reservoir samples")
	}
	if pa.TotalP95() != pb.TotalP95() {
		t.Error("sketch p95 must be name-independent for the same stream")
	}
}
