package core

import (
	"testing"
	"time"

	"nephelix/internal/model"
	"nephelix/internal/qos"
)

// scalerFixture builds src -> work -> sink with an elastic "work" vertex,
// the constraint over (src->work, work, work->sink) and a summary with the
// given per-task load.
type scalerFixture struct {
	g          *model.JobGraph
	constraint *model.Constraint
	summary    *qos.Summary
}

func newScalerFixture(t *testing.T, lambda, svc float64, p int, bound time.Duration) *scalerFixture {
	t.Helper()
	g := model.NewJobGraph()
	for _, v := range []model.JobVertex{
		{Name: "src", Parallelism: 2},
		{Name: "work", Parallelism: p, MinParallelism: 1, MaxParallelism: 520},
		{Name: "sink", Parallelism: 2},
	} {
		if err := g.AddVertex(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge("src", "work", model.PatternRoundRobin); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("work", "sink", model.PatternRoundRobin); err != nil {
		t.Fatal(err)
	}
	seq, err := model.ParseSequence(g, "src->work", "work", "work->sink")
	if err != nil {
		t.Fatal(err)
	}
	c := &model.Constraint{Name: "c", Sequence: seq, Bound: bound, Window: 10 * time.Second}
	s := qos.NewSummary()
	s.Vertices["work"] = qos.VertexStats{
		TaskLatency:      svc,
		ServiceTimeMean:  svc,
		ServiceTimeCV:    0.5,
		InterarrivalMean: 1 / lambda,
		InterarrivalCV:   1.0,
		Parallelism:      p,
		FreshTasks:       p, // all reporters alive
	}
	s.Edges[model.EdgeKey{Source: "src", Target: "work"}] = qos.EdgeStats{ChannelLatency: 0.004, OutputBatchLatency: 0.002}
	s.Edges[model.EdgeKey{Source: "work", Target: "sink"}] = qos.EdgeStats{ChannelLatency: 0.001, OutputBatchLatency: 0.0005}
	return &scalerFixture{g: g, constraint: c, summary: s}
}

func TestHasBottleneck(t *testing.T) {
	f := newScalerFixture(t, 99, 0.01, 4, 20*time.Millisecond) // ρ = 0.99
	pol := DefaultBottleneckPolicy()
	if !pol.HasBottleneck(f.g, f.constraint.Sequence, f.summary) {
		t.Error("rho=0.99 not detected as bottleneck")
	}
	f2 := newScalerFixture(t, 50, 0.01, 4, 20*time.Millisecond) // ρ = 0.5
	if pol.HasBottleneck(f2.g, f2.constraint.Sequence, f2.summary) {
		t.Error("rho=0.5 flagged as bottleneck")
	}
}

func TestResolveBottlenecksDoubling(t *testing.T) {
	// ρ = 1.2 (measured during queue growth): demand = λ·p·S = 1.2·p.
	f := newScalerFixture(t, 120, 0.01, 10, 20*time.Millisecond)
	pol := DefaultBottleneckPolicy()
	p, unresolvable := pol.ResolveBottlenecks(f.g, f.constraint.Sequence, f.summary)
	if len(unresolvable) != 0 {
		t.Errorf("unexpected unresolvable vertices: %v", unresolvable)
	}
	// max(2·10, ⌈2·1.2·10⌉) = max(20, 24) = 24.
	if p["work"] != 24 {
		t.Errorf("bottleneck scale-out: got %d, want 24", p["work"])
	}
	// The sequence (src->work, work, work->sink) contains only "work";
	// other vertices must not appear in the result.
	if _, ok := p["sink"]; ok {
		t.Errorf("sink is not a sequence vertex but got parallelism %d", p["sink"])
	}
}

func TestResolveBottlenecksAtMax(t *testing.T) {
	f := newScalerFixture(t, 120, 0.01, 10, 20*time.Millisecond)
	f.g.Vertex("work").MaxParallelism = 10 // already fully scaled out
	pol := DefaultBottleneckPolicy()
	p, unresolvable := pol.ResolveBottlenecks(f.g, f.constraint.Sequence, f.summary)
	if len(unresolvable) != 1 || unresolvable[0] != "work" {
		t.Errorf("unresolvable: got %v, want [work]", unresolvable)
	}
	if p["work"] != 10 {
		t.Errorf("parallelism at max: got %d, want 10", p["work"])
	}
}

func TestScaleReactivelyRebalancePath(t *testing.T) {
	// Low load at high parallelism: the strategy must scale down.
	f := newScalerFixture(t, 10, 0.001, 64, 20*time.Millisecond) // ρ = 0.01
	d, err := ScaleReactively(DefaultStrategyConfig(), f.g, []*model.Constraint{f.constraint}, f.summary, map[string]int{"work": 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.PerConstraint) != 1 || d.PerConstraint[0].Bottleneck {
		t.Fatalf("expected rebalance path: %+v", d.PerConstraint)
	}
	if d.Desired["work"] >= 64 {
		t.Errorf("under light load parallelism should shrink: got %d", d.Desired["work"])
	}
	if len(d.Actions) != 1 || d.Actions[0].IsScaleUp() {
		t.Errorf("expected one scale-down action, got %v", d.Actions)
	}
}

func TestScaleReactivelyBottleneckPath(t *testing.T) {
	f := newScalerFixture(t, 150, 0.01, 8, 20*time.Millisecond) // ρ = 1.5
	d, err := ScaleReactively(DefaultStrategyConfig(), f.g, []*model.Constraint{f.constraint}, f.summary, map[string]int{"work": 8})
	if err != nil {
		t.Fatal(err)
	}
	if !d.PerConstraint[0].Bottleneck {
		t.Fatal("bottleneck path not taken")
	}
	// max(16, ⌈2·1.5·8⌉=24) = 24.
	if d.Desired["work"] != 24 {
		t.Errorf("desired: got %d, want 24", d.Desired["work"])
	}
	if !d.HasScaleUp() {
		t.Error("bottleneck resolution must scale up")
	}
}

func TestScaleReactivelySkipsUncovered(t *testing.T) {
	f := newScalerFixture(t, 50, 0.01, 8, 20*time.Millisecond)
	empty := qos.NewSummary()
	d, err := ScaleReactively(DefaultStrategyConfig(), f.g, []*model.Constraint{f.constraint}, empty, map[string]int{"work": 8})
	if err != nil {
		t.Fatal(err)
	}
	if !d.PerConstraint[0].Skipped {
		t.Error("uncovered constraint must be skipped")
	}
	if len(d.Actions) != 0 {
		t.Errorf("no actions expected, got %v", d.Actions)
	}
}

func TestScaleReactivelyMergesOverlappingConstraints(t *testing.T) {
	// Two constraints over the same sequence, one much tighter. The
	// looser one is processed second and must not undercut the tighter
	// one's parallelism choice (P_min logic, Algorithm 2 line 6).
	f := newScalerFixture(t, 80, 0.008, 16, 0)
	tight := &model.Constraint{Name: "tight", Sequence: f.constraint.Sequence, Bound: 12 * time.Millisecond, Window: 10 * time.Second}
	loose := &model.Constraint{Name: "loose", Sequence: f.constraint.Sequence, Bound: 500 * time.Millisecond, Window: 10 * time.Second}

	dTight, err := ScaleReactively(DefaultStrategyConfig(), f.g, []*model.Constraint{tight}, f.summary, map[string]int{"work": 16})
	if err != nil {
		t.Fatal(err)
	}
	dBoth, err := ScaleReactively(DefaultStrategyConfig(), f.g, []*model.Constraint{tight, loose}, f.summary, map[string]int{"work": 16})
	if err != nil {
		t.Fatal(err)
	}
	if dBoth.Desired["work"] < dTight.Desired["work"] {
		t.Errorf("adding a looser constraint reduced parallelism: %d < %d",
			dBoth.Desired["work"], dTight.Desired["work"])
	}
	// Order independence: loose first must yield the same merged result.
	dRev, err := ScaleReactively(DefaultStrategyConfig(), f.g, []*model.Constraint{loose, tight}, f.summary, map[string]int{"work": 16})
	if err != nil {
		t.Fatal(err)
	}
	if dRev.Desired["work"] < dTight.Desired["work"] {
		t.Errorf("constraint order changed outcome: %d < %d", dRev.Desired["work"], dTight.Desired["work"])
	}
}

func TestScaleReactivelyNoConstraints(t *testing.T) {
	f := newScalerFixture(t, 50, 0.01, 8, 20*time.Millisecond)
	if _, err := ScaleReactively(DefaultStrategyConfig(), f.g, nil, f.summary, nil); err == nil {
		t.Error("no constraints must error")
	}
}

func TestElasticScalerInactivityWindow(t *testing.T) {
	f := newScalerFixture(t, 150, 0.01, 8, 20*time.Millisecond) // bottleneck → scale-up
	sc, err := NewElasticScaler(DefaultScalerConfig(), f.g, []*model.Constraint{f.constraint})
	if err != nil {
		t.Fatal(err)
	}
	cur := map[string]int{"work": 8}
	d, err := sc.Decide(f.summary, cur)
	if err != nil || d == nil || !d.HasScaleUp() {
		t.Fatalf("first decision: d=%v err=%v", d, err)
	}
	// The next two adjustment intervals are the inactivity phase.
	for i := 0; i < 2; i++ {
		d, err = sc.Decide(f.summary, cur)
		if err != nil || d != nil {
			t.Fatalf("inactivity interval %d: d=%v err=%v", i, d, err)
		}
	}
	// Afterwards decisions resume.
	d, err = sc.Decide(f.summary, cur)
	if err != nil || d == nil {
		t.Fatalf("post-inactivity decision: d=%v err=%v", d, err)
	}
	decisions, ups, _ := sc.Stats()
	if decisions != 2 || ups < 2 {
		t.Errorf("stats: decisions=%d ups=%d", decisions, ups)
	}
}

func TestElasticScalerNoCooldownAfterScaleDown(t *testing.T) {
	f := newScalerFixture(t, 10, 0.001, 64, 20*time.Millisecond) // light load → scale-down
	sc, err := NewElasticScaler(DefaultScalerConfig(), f.g, []*model.Constraint{f.constraint})
	if err != nil {
		t.Fatal(err)
	}
	cur := map[string]int{"work": 64}
	d, err := sc.Decide(f.summary, cur)
	if err != nil || d == nil || d.HasScaleUp() {
		t.Fatalf("first decision: %+v err=%v", d, err)
	}
	// Scale-downs do not trigger the inactivity phase.
	d, err = sc.Decide(f.summary, cur)
	if err != nil || d == nil {
		t.Fatalf("second decision suppressed after scale-down: d=%v err=%v", d, err)
	}
}

func TestNewElasticScalerValidation(t *testing.T) {
	f := newScalerFixture(t, 10, 0.001, 8, 20*time.Millisecond)
	if _, err := NewElasticScaler(DefaultScalerConfig(), f.g, nil); err == nil {
		t.Error("scaler without constraints must error")
	}
	bad := &model.Constraint{Name: "bad", Sequence: f.constraint.Sequence, Bound: -1, Window: time.Second}
	if _, err := NewElasticScaler(DefaultScalerConfig(), f.g, []*model.Constraint{bad}); err == nil {
		t.Error("invalid constraint must error")
	}
}

func TestElasticScalerScaleDownClamp(t *testing.T) {
	// Light load at p=64 wants a deep scale-down; the clamp limits each
	// decision to the configured fraction.
	f := newScalerFixture(t, 10, 0.001, 64, 20*time.Millisecond)
	cfg := DefaultScalerConfig()
	cfg.MaxScaleDownFraction = 0.25
	sc, err := NewElasticScaler(cfg, f.g, []*model.Constraint{f.constraint})
	if err != nil {
		t.Fatal(err)
	}
	d, err := sc.Decide(f.summary, map[string]int{"work": 64})
	if err != nil || d == nil {
		t.Fatalf("decide: %v", err)
	}
	if got := d.Desired["work"]; got < 48 {
		t.Errorf("scale-down clamp violated: 64 -> %d (max 25%% per round)", got)
	}
	if got := d.Desired["work"]; got >= 64 {
		t.Errorf("no scale-down happened: %d", got)
	}
}

func TestElasticScalerDeadBand(t *testing.T) {
	// Moderate load at p=16; the optimizer would nudge by a task or two.
	f := newScalerFixture(t, 40, 0.003, 16, 20*time.Millisecond)
	base := DefaultScalerConfig()
	base.MaxScaleDownFraction = 1 // isolate the dead band
	noBand, err := NewElasticScaler(base, f.g, []*model.Constraint{f.constraint})
	if err != nil {
		t.Fatal(err)
	}
	d0, err := noBand.Decide(f.summary, map[string]int{"work": 16})
	if err != nil || d0 == nil {
		t.Fatal(err)
	}
	want := d0.Desired["work"]
	if want == 16 {
		t.Skip("fixture produced no change; dead band has nothing to damp")
	}

	banded := base
	banded.DeadBandFraction = 0.9 // suppress anything below a 90% change
	sc, err := NewElasticScaler(banded, f.g, []*model.Constraint{f.constraint})
	if err != nil {
		t.Fatal(err)
	}
	d1, err := sc.Decide(f.summary, map[string]int{"work": 16})
	if err != nil || d1 == nil {
		t.Fatal(err)
	}
	if len(d1.Actions) != 0 {
		t.Errorf("dead band did not suppress small change %d -> %d: %v", 16, want, d1.Actions)
	}
}

func TestElasticScalerHoldsScaleDownOnLowCoverage(t *testing.T) {
	// Light load at p=64 wants a scale-down, but the summary is
	// synthetically truncated: only 16 of the 64 work tasks have fresh
	// reports (the rest just crashed). Coverage 0.25 < MinCoverage 0.5
	// must hold the scale-down.
	f := newScalerFixture(t, 10, 0.001, 64, 20*time.Millisecond)
	v := f.summary.Vertices["work"]
	v.FreshTasks = 16
	f.summary.Vertices["work"] = v

	sc, err := NewElasticScaler(DefaultScalerConfig(), f.g, []*model.Constraint{f.constraint})
	if err != nil {
		t.Fatal(err)
	}
	cur := map[string]int{"work": 64}
	d, err := sc.Decide(f.summary, cur)
	if err != nil || d == nil {
		t.Fatalf("decide: d=%v err=%v", d, err)
	}
	if len(d.Actions) != 0 || d.Desired["work"] != 64 {
		t.Errorf("scale-down issued under low coverage: desired=%d actions=%v", d.Desired["work"], d.Actions)
	}
	cd := d.PerConstraint[0]
	if !cd.LowCoverage || !almostEqual(cd.Coverage, 0.25, 1e-12) {
		t.Errorf("coverage not recorded: %+v", cd)
	}
	if sc.HeldScaleDowns() != 1 {
		t.Errorf("HeldScaleDowns: got %d, want 1", sc.HeldScaleDowns())
	}

	// Once the reporters are back (fresh == parallelism), the same load
	// does scale down.
	v.FreshTasks = 64
	f.summary.Vertices["work"] = v
	d, err = sc.Decide(f.summary, cur)
	if err != nil || d == nil {
		t.Fatalf("recovered decide: d=%v err=%v", d, err)
	}
	if d.Desired["work"] >= 64 {
		t.Errorf("scale-down still held after coverage recovered: %d", d.Desired["work"])
	}
}

func TestElasticScalerLowCoverageAllowsScaleUp(t *testing.T) {
	// A bottleneck with most reporters dead: the scale-up must go
	// through even though coverage is far below the threshold.
	f := newScalerFixture(t, 150, 0.01, 8, 20*time.Millisecond) // ρ = 1.5
	v := f.summary.Vertices["work"]
	v.FreshTasks = 1
	f.summary.Vertices["work"] = v

	sc, err := NewElasticScaler(DefaultScalerConfig(), f.g, []*model.Constraint{f.constraint})
	if err != nil {
		t.Fatal(err)
	}
	d, err := sc.Decide(f.summary, map[string]int{"work": 8})
	if err != nil || d == nil {
		t.Fatalf("decide: d=%v err=%v", d, err)
	}
	if !d.HasScaleUp() {
		t.Error("low coverage suppressed a bottleneck scale-up")
	}
	if !d.PerConstraint[0].LowCoverage {
		t.Error("low coverage not flagged on the decision")
	}
	if sc.HeldScaleDowns() != 0 {
		t.Errorf("HeldScaleDowns: got %d, want 0", sc.HeldScaleDowns())
	}
}

func TestElasticScalerCoverageDisabled(t *testing.T) {
	// MinCoverage = 0 disables the hold: stale summaries scale down as
	// before (backwards compatibility for struct-literal configs).
	f := newScalerFixture(t, 10, 0.001, 64, 20*time.Millisecond)
	v := f.summary.Vertices["work"]
	v.FreshTasks = 0
	f.summary.Vertices["work"] = v

	cfg := DefaultScalerConfig()
	cfg.MinCoverage = 0
	sc, err := NewElasticScaler(cfg, f.g, []*model.Constraint{f.constraint})
	if err != nil {
		t.Fatal(err)
	}
	d, err := sc.Decide(f.summary, map[string]int{"work": 64})
	if err != nil || d == nil {
		t.Fatalf("decide: d=%v err=%v", d, err)
	}
	if d.Desired["work"] >= 64 {
		t.Errorf("disabled coverage gate still held the scale-down: %d", d.Desired["work"])
	}
}

func TestElasticScalerDeadBandKeepsBottleneckUps(t *testing.T) {
	f := newScalerFixture(t, 150, 0.01, 8, 20*time.Millisecond) // ρ = 1.5 bottleneck
	cfg := DefaultScalerConfig()
	cfg.DeadBandFraction = 10 // absurd band; bottleneck ups must pass anyway
	sc, err := NewElasticScaler(cfg, f.g, []*model.Constraint{f.constraint})
	if err != nil {
		t.Fatal(err)
	}
	d, err := sc.Decide(f.summary, map[string]int{"work": 8})
	if err != nil || d == nil {
		t.Fatal(err)
	}
	if !d.HasScaleUp() {
		t.Error("dead band suppressed a bottleneck scale-up")
	}
}
