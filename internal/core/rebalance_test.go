package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randomSequenceModel builds a feasible-by-construction sequence model of
// n vertices with randomized coefficients.
func randomSequenceModel(rng *rand.Rand, n, maxP int) *SequenceModel {
	sm := &SequenceModel{}
	for i := 0; i < n; i++ {
		a := 0.001 + rng.Float64()*0.5
		b := rng.Float64() * float64(maxP) * 0.4
		sm.Vertices = append(sm.Vertices, &VertexModel{
			Name:    string(rune('a' + i)),
			Current: 1,
			Min:     1,
			Max:     maxP,
			A:       a,
			B:       b,
			E:       1,
		})
	}
	return sm
}

func waitOf(sm *SequenceModel, p map[string]int) float64 {
	ps := make([]int, len(sm.Vertices))
	for i, vm := range sm.Vertices {
		ps[i] = p[vm.Name]
	}
	return sm.TotalWait(ps)
}

func totalOf(p map[string]int) int {
	sum := 0
	for _, v := range p {
		sum += v
	}
	return sum
}

func TestRebalanceSatisfiesLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		sm := randomSequenceModel(rng, n, 64)
		wLimit := 0.001 + rng.Float64()*0.2
		p, err := Rebalance(sm, wLimit, nil)
		if err != nil {
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("trial %d: unexpected error %v", trial, err)
			}
			// Best effort must be max scale-out.
			for _, vm := range sm.Vertices {
				if p[vm.Name] != vm.Max {
					t.Fatalf("trial %d: infeasible result not at max: %v", trial, p)
				}
			}
			continue
		}
		if w := waitOf(sm, p); w > wLimit+1e-9 {
			t.Fatalf("trial %d: W=%v exceeds limit %v (p=%v)", trial, w, wLimit, p)
		}
		for _, vm := range sm.Vertices {
			if p[vm.Name] < vm.Min || p[vm.Name] > vm.Max {
				t.Fatalf("trial %d: %s=%d outside [%d,%d]", trial, vm.Name, p[vm.Name], vm.Min, vm.Max)
			}
		}
	}
}

// TestRebalanceLocalMinimality: decreasing any single vertex by one must
// violate the limit or a lower bound — the solution sits on the candidate
// surface of Figure 5.
func TestRebalanceLocalMinimality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		sm := randomSequenceModel(rng, 1+rng.Intn(4), 64)
		wLimit := 0.005 + rng.Float64()*0.1
		p, err := Rebalance(sm, wLimit, nil)
		if err != nil {
			continue
		}
		for _, vm := range sm.Vertices {
			if p[vm.Name] <= vm.Min {
				continue // bounded below; cannot decrease
			}
			p[vm.Name]--
			w := waitOf(sm, p)
			p[vm.Name]++
			if w <= wLimit-1e-9 {
				t.Fatalf("trial %d: decreasing %s to %d keeps W=%v <= %v; solution %v not minimal",
					trial, vm.Name, p[vm.Name]-1, w, wLimit, p)
			}
		}
	}
}

// TestRebalanceMatchesBruteForce compares the descent against exhaustive
// search on small instances: the total parallelism must be optimal.
func TestRebalanceMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(3)
		maxP := 10
		sm := randomSequenceModel(rng, n, maxP)
		wLimit := 0.005 + rng.Float64()*0.3

		best := math.MaxInt
		var rec func(i, sum int, ps []int)
		rec = func(i, sum int, ps []int) {
			if sum >= best {
				return
			}
			if i == n {
				if sm.TotalWait(ps) <= wLimit {
					best = sum
				}
				return
			}
			for p := sm.Vertices[i].Min; p <= sm.Vertices[i].Max; p++ {
				ps[i] = p
				rec(i+1, sum+p, ps)
			}
		}
		rec(0, 0, make([]int, n))

		p, err := Rebalance(sm, wLimit, nil)
		if best == math.MaxInt {
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("trial %d: brute force infeasible but Rebalance returned %v, err=%v", trial, p, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: brute force feasible (total %d) but Rebalance errored: %v", trial, best, err)
		}
		if got := totalOf(p); got != best {
			t.Fatalf("trial %d: Rebalance total %d != optimal %d (p=%v, limit=%v)", trial, got, best, p, wLimit)
		}
	}
}

func TestRebalanceRespectsPMin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sm := randomSequenceModel(rng, 3, 64)
	pMin := map[string]int{"a": 10, "b": 5}
	p, err := Rebalance(sm, 1.0, pMin) // loose limit
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if p["a"] < 10 || p["b"] < 5 {
		t.Errorf("pMin violated: %v", p)
	}
}

func TestRebalanceInfeasible(t *testing.T) {
	// One vertex with an enormous fitted wait even at max.
	sm := &SequenceModel{Vertices: []*VertexModel{
		testModel("v", 100, 0, 1, 1, 4), // W(4) = 25 s
	}}
	p, err := Rebalance(sm, 0.001, nil)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	if p["v"] != 4 {
		t.Errorf("infeasible best effort: got %d, want max 4", p["v"])
	}
}

func TestRebalanceSaturatedLowerBound(t *testing.T) {
	// b = 6: the vertex needs at least 7 tasks for finite wait. Starting
	// from min 1 the descent must jump past the pole.
	sm := &SequenceModel{Vertices: []*VertexModel{
		testModel("v", 0.05, 6, 1, 1, 64),
	}}
	p, err := Rebalance(sm, 0.01, nil)
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if p["v"] < 7 {
		t.Errorf("parallelism %d leaves utilization >= 1", p["v"])
	}
	if w := waitOf(sm, p); w > 0.01+1e-12 {
		t.Errorf("W=%v exceeds limit", w)
	}
}

func TestRebalanceEmptyModel(t *testing.T) {
	p, err := Rebalance(&SequenceModel{}, 0.01, nil)
	if err != nil || len(p) != 0 {
		t.Errorf("empty model: p=%v err=%v", p, err)
	}
}

func TestRebalanceZeroLoad(t *testing.T) {
	// No traffic (a = 0): everything scales down to the minimum.
	sm := &SequenceModel{Vertices: []*VertexModel{
		testModel("a", 0, 0, 30, 2, 64),
		testModel("b", 0, 0, 40, 1, 64),
	}}
	p, err := Rebalance(sm, 0.001, nil)
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if p["a"] != 2 || p["b"] != 1 {
		t.Errorf("zero load must scale to minimum: %v", p)
	}
}

func TestRebalanceStepsVariableVsUnit(t *testing.T) {
	// The variable step size must need far fewer iterations than unit
	// steps on a deep, asymmetric problem (the O(n log n · m) discussion
	// of IV-D): one dominant vertex requiring ~1000 tasks next to two
	// cheap ones.
	sm := &SequenceModel{Vertices: []*VertexModel{
		testModel("a", 50, 0, 1, 1, 5000),
		testModel("b", 0.0001, 0, 1, 1, 8),
		testModel("c", 0.0001, 0, 1, 1, 8),
	}}
	varSteps, ok := RebalanceSteps(sm, 0.050, false)
	if !ok {
		t.Fatal("problem unexpectedly infeasible")
	}
	unitSteps, ok := RebalanceSteps(sm, 0.050, true)
	if !ok {
		t.Fatal("problem unexpectedly infeasible")
	}
	if varSteps*10 > unitSteps {
		t.Errorf("variable steps %d not ≪ unit steps %d", varSteps, unitSteps)
	}
	// Both must produce feasible allocations of comparable cost; this is
	// covered by TestRebalanceMatchesBruteForce for correctness.
}
