package core

import (
	"errors"
	"math"
)

// ErrInfeasible is returned by Rebalance when even the maximum scale-out
// cannot push the modeled queue waiting time below the limit. The
// accompanying result is the best effort (maximum parallelism); per the
// paper the user must be informed and provide more resources.
var ErrInfeasible = errors.New("core: queue wait limit unreachable at maximum scale-out")

// RebalanceStep is one audit record of a Rebalance gradient-descent
// iteration: the steepest vertex grew From→To. Steepest and RunnerUp are
// the two best marginal gains d1, d2; PDelta is the P_Δ target (step to
// the runner-up's marginal) and PW the P_W cap (exact budget spend) that
// bounded the jump. PDelta is 0 in the final round (no runner-up, the
// budget is spent exactly via PW).
type RebalanceStep struct {
	Vertex   string
	From, To int
	Steepest float64
	RunnerUp float64
	PDelta   int
	PW       int
}

// Rebalance implements Algorithm 1: choose new degrees of parallelism for
// the sequence's vertices so that the total parallelism Σ pᵢ is minimized
// subject to W_js(p₁, …, pₙ) ≤ wLimit and pᵢ ∈ [max(minᵢ, pMin[name]),
// maxᵢ]. It runs a gradient descent with variable step size: in each
// round the vertex with the steepest marginal decrease in queue waiting
// time is scaled up until its marginal gain drops to the runner-up's
// (P_Δ); the final round spends the remaining budget exactly (P_W).
//
// pMin carries minimum parallelisms imposed by earlier Rebalance calls on
// overlapping constraints (Algorithm 2); it may be nil.
//
// The returned map always contains an entry for every sequence vertex.
func Rebalance(sm *SequenceModel, wLimit float64, pMin map[string]int) (map[string]int, error) {
	return RebalanceTraced(sm, wLimit, pMin, nil)
}

// RebalanceTraced is Rebalance with an optional audit trail: when trace
// is non-nil, one RebalanceStep per descent iteration is appended to it.
// An infeasible run fails the up-front feasibility test and records no
// steps.
func RebalanceTraced(sm *SequenceModel, wLimit float64, pMin map[string]int, trace *[]RebalanceStep) (map[string]int, error) {
	n := len(sm.Vertices)
	result := make(map[string]int, n)
	if n == 0 {
		return result, nil
	}

	// Feasibility test at maximum scale-out (Algorithm 1, line 2).
	pMax := sm.MaxParallelisms()
	if w := sm.TotalWait(pMax); w > wLimit {
		for i, vm := range sm.Vertices {
			result[vm.Name] = pMax[i]
		}
		return result, ErrInfeasible
	}

	// Start from the lower bounds (line 3).
	p := make([]int, n)
	for i, vm := range sm.Vertices {
		p[i] = vm.Min
		if pm, ok := pMin[vm.Name]; ok && pm > p[i] {
			p[i] = pm
		}
		if p[i] > vm.Max {
			p[i] = vm.Max
		}
	}

	for sm.TotalWait(p) > wLimit {
		// C = {i | pᵢ < pᵢ^max}: vertices that can still grow.
		var candidates []int
		for i, vm := range sm.Vertices {
			if p[i] < vm.Max {
				candidates = append(candidates, i)
			}
		}
		if len(candidates) == 0 {
			// Cannot happen after a successful feasibility test, but guard
			// against floating-point drift.
			break
		}

		// Pick c1 with the steepest (most negative) marginal and c2 with
		// the second steepest; ties resolve to the smallest index.
		c1, c2 := -1, -1
		d1, d2 := math.Inf(1), math.Inf(1)
		for _, i := range candidates {
			d := sm.Vertices[i].Marginal(p[i])
			if d < d1 {
				c2, d2 = c1, d1
				c1, d1 = i, d
			} else if d < d2 {
				c2, d2 = i, d
			}
		}

		vm := sm.Vertices[c1]
		// The remaining budget if only c1 grows: reaching W_c1 ≤ wBudget
		// makes the whole sequence feasible.
		wBudget := wLimit - sm.TotalWait(p) + vm.Wait(p[c1])
		var target, pDelta, pW int
		if c2 >= 0 {
			// Scale c1 until its marginal gain matches the runner-up's
			// current gain; next round the runner-up takes over. The jump
			// is capped by P_W so it never overshoots the point where the
			// queue-wait limit is already met (keeping the result on the
			// minimal-candidate surface of Figure 5).
			pDelta = vm.StepToMarginal(d2)
			pW = vm.ParallelismForWait(wBudget)
			target = pDelta
			if pW < target {
				target = pW
			}
		} else {
			// Last growable vertex: spend the remaining budget exactly.
			pW = vm.ParallelismForWait(wBudget)
			target = pW
		}
		if target <= p[c1] {
			target = p[c1] + 1 // progress guard for marginal ties
		}
		if target > vm.Max {
			target = vm.Max
		}
		if trace != nil {
			*trace = append(*trace, RebalanceStep{
				Vertex: vm.Name, From: p[c1], To: target,
				Steepest: d1, RunnerUp: d2, PDelta: pDelta, PW: pW,
			})
		}
		p[c1] = target
	}

	for i, vm := range sm.Vertices {
		result[vm.Name] = p[i]
	}
	return result, nil
}

// RebalanceSteps reports how many descent iterations Rebalance needs for a
// given problem; it mirrors Rebalance but with unit (+1) steps when
// unitSteps is true. It exists for the step-size ablation benchmark that
// backs the paper's O(n log n · m) complexity discussion.
func RebalanceSteps(sm *SequenceModel, wLimit float64, unitSteps bool) (steps int, feasible bool) {
	n := len(sm.Vertices)
	if n == 0 {
		return 0, true
	}
	if sm.TotalWait(sm.MaxParallelisms()) > wLimit {
		return 0, false
	}
	p := make([]int, n)
	for i, vm := range sm.Vertices {
		p[i] = vm.Min
	}
	for sm.TotalWait(p) > wLimit {
		var candidates []int
		for i, vm := range sm.Vertices {
			if p[i] < vm.Max {
				candidates = append(candidates, i)
			}
		}
		if len(candidates) == 0 {
			break
		}
		c1, c2 := -1, -1
		d1, d2 := math.Inf(1), math.Inf(1)
		for _, i := range candidates {
			d := sm.Vertices[i].Marginal(p[i])
			if d < d1 {
				c2, d2 = c1, d1
				c1, d1 = i, d
			} else if d < d2 {
				c2, d2 = i, d
			}
		}
		vm := sm.Vertices[c1]
		target := p[c1] + 1
		if !unitSteps {
			wBudget := wLimit - sm.TotalWait(p) + vm.Wait(p[c1])
			if c2 >= 0 {
				target = vm.StepToMarginal(d2)
				if cap := vm.ParallelismForWait(wBudget); cap < target {
					target = cap
				}
			} else {
				target = vm.ParallelismForWait(wBudget)
			}
			if target <= p[c1] {
				target = p[c1] + 1
			}
		}
		if target > vm.Max {
			target = vm.Max
		}
		p[c1] = target
		steps++
	}
	return steps, true
}
