package core

import (
	"errors"
	"fmt"
	"math"

	"nephelix/internal/model"
	"nephelix/internal/qos"
)

// StrategyConfig bundles the knobs of the reactive scaling strategy.
type StrategyConfig struct {
	Model      ModelOptions
	Bottleneck BottleneckPolicy
	Batching   qos.BatchingPolicy
}

// DefaultStrategyConfig returns the default strategy configuration. The
// paper fixes the queue-wait share of the latency budget at 20% "for
// simplicity"; on this substrate the calibrated per-item costs leave an
// irreducible queue-wait floor slightly above that share, which would
// park Rebalance in permanent infeasibility, so the default reserves
// 30%. BenchmarkAblationQueueWaitFraction sweeps the fraction, including
// the paper-literal 0.2.
func DefaultStrategyConfig() StrategyConfig {
	return StrategyConfig{
		Model:      DefaultModelOptions(),
		Bottleneck: DefaultBottleneckPolicy(),
		Batching:   qos.BatchingPolicy{QueueWaitFraction: 0.3},
	}
}

// ConstraintDecision records how ScaleReactively handled one constraint.
type ConstraintDecision struct {
	Constraint *model.Constraint
	// Bottleneck is true when the ResolveBottlenecks path was taken.
	Bottleneck bool
	// Infeasible is true when Rebalance found the queue-wait limit
	// unreachable even at maximum scale-out, or when bottlenecks could not
	// be resolved by scaling out.
	Infeasible bool
	// Unresolvable lists bottleneck vertices already at maximum
	// parallelism.
	Unresolvable []string
	// QueueWaitLimit is Ŵ_js (only set on the Rebalance path).
	QueueWaitLimit float64
	// Parallelism is the per-vertex choice made for this constraint.
	Parallelism map[string]int
	// Skipped is true when the summary did not cover the sequence yet.
	Skipped bool
	// Quantile is the constraint's target quantile (0 for mean
	// constraints); the fitted models' waits then predict that quantile.
	Quantile float64
	// TailHot lists vertices whose measured tail-quantile queue wait
	// exceeded the constraint bound, triggering bottleneck resolution
	// even though their utilization sat below ρ_max.
	TailHot []string
	// Coverage is the fraction of the sequence's task slots with fresh
	// QoS reports (set by ElasticScaler.Decide when MinCoverage is
	// enabled).
	Coverage float64
	// LowCoverage is true when Coverage fell below the scaler's
	// MinCoverage threshold, holding scale-downs for this sequence's
	// vertices.
	LowCoverage bool
	// Models holds the fitted per-vertex latency models the Rebalance
	// path worked from, in sequence order (nil on the bottleneck path and
	// for skipped constraints); the decision audit trail exports their
	// Kingman inputs.
	Models []*VertexModel
	// Steps records Rebalance's gradient-descent iterations (Rebalance
	// path only).
	Steps []RebalanceStep
}

// Decision is the aggregate outcome of one ScaleReactively invocation.
type Decision struct {
	// Desired is the merged per-vertex parallelism (maximum over all
	// constraints' choices).
	Desired map[string]int
	// Actions is the diff against the current parallelism, sorted by
	// vertex name.
	Actions []model.ScalingAction
	// PerConstraint holds one entry per input constraint, in input order.
	PerConstraint []ConstraintDecision
	// Holds lists the per-vertex gating interventions ElasticScaler.Decide
	// applied after ScaleReactively (dead band, scale-down clamp, low
	// coverage); nil when ScaleReactively is called directly.
	Holds []Hold
}

// Hold records one gating intervention: the optimizer proposed Proposed
// for Vertex, the named gate kept Kept instead.
type Hold struct {
	Vertex string
	// Reason is "dead-band", "scale-down-clamp" or "low-coverage".
	Reason   string
	Proposed int
	Kept     int
}

// HasScaleUp reports whether any action increases parallelism.
func (d *Decision) HasScaleUp() bool {
	for _, a := range d.Actions {
		if a.IsScaleUp() {
			return true
		}
	}
	return false
}

// ScaleReactively implements Algorithm 2: for every latency constraint it
// either resolves bottlenecks (last resort) or rebalances parallelism via
// the latency model, then merges the per-constraint choices with a
// per-vertex maximum so that overlapping constraints never undercut each
// other. current maps every elastically relevant vertex to its current
// parallelism.
func ScaleReactively(cfg StrategyConfig, g *model.JobGraph, constraints []*model.Constraint, s *qos.Summary, current map[string]int) (*Decision, error) {
	if len(constraints) == 0 {
		return nil, errors.New("core: no constraints given")
	}
	d := &Decision{Desired: make(map[string]int, len(current))}

	for _, c := range constraints {
		cd := ConstraintDecision{Constraint: c, Quantile: c.Quantile}
		if !s.Covers(c.Sequence) {
			cd.Skipped = true
			d.PerConstraint = append(d.PerConstraint, cd)
			continue
		}
		// Percentile constraints fit the models to the target quantile
		// (κ-inflated A) and extend the bottleneck trigger to tail-hot
		// vertices — tail violations the mean-driven ρ_max check never
		// sees.
		mo := cfg.Model
		var tailHot map[string]bool
		if c.IsPercentile() {
			mo.TailQuantile = c.Quantile
			for _, name := range c.Sequence.Vertices() {
				if mo.Tail.TailHot(name, c.Quantile, c.Bound.Seconds()) {
					if tailHot == nil {
						tailHot = make(map[string]bool)
					}
					tailHot[name] = true
					cd.TailHot = append(cd.TailHot, name)
				}
			}
		}
		if cfg.Bottleneck.HasBottleneck(g, c.Sequence, s) || len(tailHot) > 0 {
			p, unresolvable := cfg.Bottleneck.ResolveBottlenecksTail(g, c.Sequence, s, tailHot)
			cd.Bottleneck = true
			cd.Parallelism = p
			cd.Unresolvable = unresolvable
			cd.Infeasible = len(unresolvable) > 0
		} else {
			sm, err := BuildSequenceModel(g, c.Sequence, s, mo)
			if err != nil {
				return nil, fmt.Errorf("core: constraint %q: %w", c.Name, err)
			}
			// P_min guarantees this invocation cannot undercut choices
			// made for earlier constraints (Algorithm 2, line 6).
			pMin := make(map[string]int)
			for _, name := range c.Sequence.Vertices() {
				pMin[name] = g.Vertex(name).MinParallelism
				if prev, ok := d.Desired[name]; ok && prev > pMin[name] {
					pMin[name] = prev
				}
			}
			cd.QueueWaitLimit = cfg.Batching.QueueWaitLimit(s, c)
			cd.Models = sm.Vertices
			p, err := RebalanceTraced(sm, cd.QueueWaitLimit, pMin, &cd.Steps)
			if err != nil {
				if !errors.Is(err, ErrInfeasible) {
					return nil, fmt.Errorf("core: constraint %q: %w", c.Name, err)
				}
				cd.Infeasible = true
				// Algorithm 1 returns maximum scale-out here. Infeasibility
				// is usually transient, though: a burst inflates the
				// measured waits and thereby the fitted model (the same
				// measurement distortion Section IV-E describes for
				// bottlenecks), so jumping straight to p_max overspends
				// dramatically. Mirror ResolveBottlenecks instead: double
				// the current parallelism per adjustment round until the
				// model becomes feasible again (or p_max is reached).
				for _, name := range c.Sequence.Vertices() {
					jv := g.Vertex(name)
					cur, ok := current[name]
					if !ok || cur <= 0 {
						cur = jv.Parallelism
					}
					target := jv.ClampParallelism(2 * cur)
					if target < pMin[name] {
						target = pMin[name]
					}
					p[name] = target
				}
			}
			cd.Parallelism = p
		}
		for name, p := range cd.Parallelism {
			if p > d.Desired[name] {
				d.Desired[name] = p
			}
		}
		d.PerConstraint = append(d.PerConstraint, cd)
	}

	d.Actions = model.DiffParallelism(current, d.Desired)
	return d, nil
}

// ScalerConfig configures the ElasticScaler driver.
type ScalerConfig struct {
	Strategy StrategyConfig
	// InactivityIntervals is the number of adjustment intervals the scaler
	// stays inactive after a scale-up, so that new TCP connections and
	// measurements settle (Section V uses 2). Scale-downs do not trigger
	// an inactivity phase.
	InactivityIntervals int
	// DeadBandFraction suppresses scaling actions whose relative change
	// is below this fraction of the current parallelism (0 disables).
	// The paper names reducing the number of scaling actions as future
	// work; a dead band is the simplest such mechanism — small
	// oscillations of the optimizer's choice stop translating into task
	// churn. Scale-ups that resolve bottlenecks are never suppressed.
	DeadBandFraction float64
	// MaxScaleDownFraction bounds how much of a vertex's parallelism a
	// single decision may remove (0 < f ≤ 1; default 0.3). Large
	// instantaneous scale-downs re-concentrate per-task load and arrival
	// burstiness so abruptly that the fitted model (which assumes c_A is
	// unaffected by parallelism — a limitation the paper explicitly
	// defers) can flip straight back to maximum scale-out; incremental
	// scale-downs keep the measurement loop stable. Set to 1 for the
	// paper-literal behavior.
	MaxScaleDownFraction float64
	// MinCoverage is the minimum fraction of a constrained sequence's
	// task slots that must have fresh QoS reports for the scaler to act
	// on scale-downs for that sequence's vertices (0 disables). Stale
	// summaries under-report load — dead reporters keep contributing old
	// averages while their actual share of the traffic is redistributed —
	// so acting on them would remove capacity exactly when tasks just
	// crashed. Scale-ups (including bottleneck resolution) are never
	// held: adding capacity under uncertainty is safe, removing it is
	// not.
	MinCoverage float64
}

// DefaultScalerConfig returns the paper's evaluation configuration with
// incremental scale-downs.
func DefaultScalerConfig() ScalerConfig {
	return ScalerConfig{
		Strategy:             DefaultStrategyConfig(),
		InactivityIntervals:  2,
		MaxScaleDownFraction: 0.5,
		MinCoverage:          0.5,
	}
}

// ElasticScaler is the master-node driver: once per adjustment interval it
// receives the fresh global summary and decides scaling actions, honoring
// the post-scale-up inactivity phase. It is not safe for concurrent use.
type ElasticScaler struct {
	cfg         ScalerConfig
	graph       *model.JobGraph
	constraints []*model.Constraint
	cooldown    int
	// counters for reports
	decisions      int
	scaleUps       int
	scaleDowns     int
	heldScaleDowns int
}

// NewElasticScaler creates a scaler for the given job and constraints.
func NewElasticScaler(cfg ScalerConfig, g *model.JobGraph, constraints []*model.Constraint) (*ElasticScaler, error) {
	if len(constraints) == 0 {
		return nil, errors.New("core: elastic scaler needs at least one constraint")
	}
	for _, c := range constraints {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	if cfg.InactivityIntervals < 0 {
		cfg.InactivityIntervals = 0
	}
	// Percentile constraints need a tail fitter; create one tracking all
	// target quantiles unless the caller supplied its own. The runtime
	// binds it to telemetry, which feeds it windowed queue-wait quantiles
	// each adjustment interval.
	if cfg.Strategy.Model.Tail == nil {
		var qs []float64
		for _, c := range constraints {
			if c.IsPercentile() {
				qs = append(qs, c.Quantile)
			}
		}
		if len(qs) > 0 {
			cfg.Strategy.Model.Tail = NewTailFitter(DefaultTailFitterConfig(), qs...)
		}
	}
	return &ElasticScaler{cfg: cfg, graph: g, constraints: constraints}, nil
}

// TailFitter returns the scaler's tail-coefficient fitter, or nil when
// no percentile constraint needs one. The runtime hands it to telemetry
// so measured queue-wait windows flow into the fit.
func (e *ElasticScaler) TailFitter() *TailFitter { return e.cfg.Strategy.Model.Tail }

// Decide consumes one fresh global summary and returns the scaling actions
// to apply, or nil during an inactivity phase (or when nothing changes).
// current maps vertices to their present parallelism.
func (e *ElasticScaler) Decide(s *qos.Summary, current map[string]int) (*Decision, error) {
	if e.cooldown > 0 {
		e.cooldown--
		return nil, nil
	}
	d, err := ScaleReactively(e.cfg.Strategy, e.graph, e.constraints, s, current)
	if err != nil {
		return nil, err
	}
	e.applyDeadBand(d, current)
	e.clampScaleDowns(d, current)
	e.holdLowCoverageScaleDowns(d, s, current)
	e.decisions++
	for _, a := range d.Actions {
		if a.IsScaleUp() {
			e.scaleUps++
		} else {
			e.scaleDowns++
		}
	}
	if d.HasScaleUp() {
		e.cooldown = e.cfg.InactivityIntervals
	}
	return d, nil
}

// applyDeadBand drops desired changes smaller than the configured
// fraction of the current parallelism, except bottleneck-driven
// scale-ups.
func (e *ElasticScaler) applyDeadBand(d *Decision, current map[string]int) {
	f := e.cfg.DeadBandFraction
	if f <= 0 {
		return
	}
	bottleneck := make(map[string]bool)
	for _, cd := range d.PerConstraint {
		if !cd.Bottleneck {
			continue
		}
		for name := range cd.Parallelism {
			bottleneck[name] = true
		}
	}
	changed := false
	for name, to := range d.Desired {
		from, ok := current[name]
		if !ok || to == from {
			continue
		}
		if to > from && bottleneck[name] {
			continue // never delay bottleneck resolution
		}
		delta := to - from
		if delta < 0 {
			delta = -delta
		}
		if float64(delta) < f*float64(from) {
			d.Desired[name] = from
			d.Holds = append(d.Holds, Hold{Vertex: name, Reason: "dead-band", Proposed: to, Kept: from})
			changed = true
		}
	}
	if changed {
		d.Actions = model.DiffParallelism(current, d.Desired)
	}
}

// clampScaleDowns limits per-decision parallelism reductions to the
// configured fraction and rebuilds the action diff.
func (e *ElasticScaler) clampScaleDowns(d *Decision, current map[string]int) {
	f := e.cfg.MaxScaleDownFraction
	if f <= 0 || f >= 1 {
		return
	}
	changed := false
	for name, to := range d.Desired {
		from, ok := current[name]
		if !ok || to >= from {
			continue
		}
		maxDown := int(math.Ceil(f * float64(from)))
		if maxDown < 1 {
			maxDown = 1
		}
		if from-to > maxDown {
			d.Desired[name] = from - maxDown
			d.Holds = append(d.Holds, Hold{Vertex: name, Reason: "scale-down-clamp", Proposed: to, Kept: from - maxDown})
			changed = true
		}
	}
	if changed {
		d.Actions = model.DiffParallelism(current, d.Desired)
	}
}

// holdLowCoverageScaleDowns reverts parallelism reductions for vertices
// of sequences whose QoS coverage is below MinCoverage. Scale-ups pass
// through untouched so ResolveBottlenecks still works off whatever
// measurements remain.
func (e *ElasticScaler) holdLowCoverageScaleDowns(d *Decision, s *qos.Summary, current map[string]int) {
	min := e.cfg.MinCoverage
	if min <= 0 {
		return
	}
	changed := false
	for i := range d.PerConstraint {
		cd := &d.PerConstraint[i]
		cd.Coverage = s.SequenceCoverage(cd.Constraint.Sequence)
		if cd.Coverage >= min {
			continue
		}
		cd.LowCoverage = true
		for _, name := range cd.Constraint.Sequence.Vertices() {
			to, ok := d.Desired[name]
			from, cur := current[name]
			if ok && cur && to < from {
				d.Desired[name] = from
				d.Holds = append(d.Holds, Hold{Vertex: name, Reason: "low-coverage", Proposed: to, Kept: from})
				e.heldScaleDowns++
				changed = true
			}
		}
	}
	if changed {
		d.Actions = model.DiffParallelism(current, d.Desired)
	}
}

// Stats returns (decisions, scale-ups, scale-downs) counters for
// reporting.
func (e *ElasticScaler) Stats() (decisions, ups, downs int) {
	return e.decisions, e.scaleUps, e.scaleDowns
}

// HeldScaleDowns returns how many per-vertex scale-downs were held back
// because the constraint's sequence coverage was below MinCoverage.
func (e *ElasticScaler) HeldScaleDowns() int { return e.heldScaleDowns }
