package core

import (
	"math"

	"nephelix/internal/model"
	"nephelix/internal/qos"
)

// BottleneckPolicy configures bottleneck detection and resolution
// (Section IV-E).
type BottleneckPolicy struct {
	// RhoMax is the utilization threshold at or above which a vertex
	// counts as a bottleneck; "a value close to 1" per the paper.
	RhoMax float64
}

// DefaultBottleneckPolicy returns the default threshold ρ_max = 0.95.
func DefaultBottleneckPolicy() BottleneckPolicy {
	return BottleneckPolicy{RhoMax: 0.95}
}

func (p BottleneckPolicy) rhoMax() float64 {
	if p.RhoMax <= 0 || p.RhoMax > 1 {
		return 0.95
	}
	return p.RhoMax
}

// HasBottleneck reports whether any vertex of the sequence is measured at
// or above the utilization threshold.
func (p BottleneckPolicy) HasBottleneck(g *model.JobGraph, seq *model.Sequence, s *qos.Summary) bool {
	for _, name := range seq.Vertices() {
		vs, ok := s.Vertex(name)
		if !ok {
			continue
		}
		if vs.Utilization() >= p.rhoMax() {
			return true
		}
	}
	return false
}

// isHot reports whether a vertex triggers bottleneck resolution: either
// its measured utilization is at the threshold, or it is in the tailHot
// set (its measured tail-quantile queue wait exceeds the constraint
// bound even though the mean utilization looks fine).
func (p BottleneckPolicy) isHot(name string, vs qos.VertexStats, ok bool, tailHot map[string]bool) bool {
	if tailHot[name] {
		return true
	}
	return ok && vs.Utilization() >= p.rhoMax()
}

// ResolveBottlenecks implements Equation 10: every bottleneck vertex of
// the sequence gets the new parallelism
//
//	p* = min(p_max, max(2p, ⌈2 λ p S̄⌉)),
//
// i.e. at least a doubling, or twice the number of busy servers the
// measured load requires, whichever is larger. Non-bottleneck vertices
// keep their current parallelism. ResolveBottlenecks is a last resort:
// during backpressure the summary's rates are distorted, so Rebalance
// would behave erratically (Section IV-E).
//
// The returned map has an entry for every vertex of the sequence. The
// second return value lists vertices that are bottlenecked but already at
// maximum parallelism (or inelastic): per the paper the user must be
// informed, as scaling out cannot resolve them.
func (p BottleneckPolicy) ResolveBottlenecks(g *model.JobGraph, seq *model.Sequence, s *qos.Summary) (map[string]int, []string) {
	return p.ResolveBottlenecksTail(g, seq, s, nil)
}

// ResolveBottlenecksTail is ResolveBottlenecks with an additional set of
// tail-hot vertices: vertices whose measured tail-quantile queue wait
// violates a percentile constraint bound even though their utilization
// sits below ρ_max. The mean-driven trigger never sees these — a vertex
// at ρ = 0.7 can hold a p99 wait far above the bound under bursty
// arrivals — so percentile constraints feed them in here and they get
// the same Equation 10 treatment as utilization bottlenecks.
func (p BottleneckPolicy) ResolveBottlenecksTail(g *model.JobGraph, seq *model.Sequence, s *qos.Summary, tailHot map[string]bool) (map[string]int, []string) {
	result := make(map[string]int)
	var unresolvable []string
	for _, name := range seq.Vertices() {
		jv := g.Vertex(name)
		if jv == nil {
			continue
		}
		vs, ok := s.Vertex(name)
		cur := jv.Parallelism
		if ok && vs.Parallelism > 0 {
			cur = vs.Parallelism
		}
		result[name] = cur
		if !p.isHot(name, vs, ok, tailHot) {
			continue
		}
		// Equation 10. λ·p·S̄ is the total busy-server demand of the
		// measured load; doubling it (and at least doubling p) gives the
		// headroom to drain the grown queues.
		demand := vs.ArrivalRate() * float64(cur) * vs.ServiceTimeMean
		target := int(math.Ceil(2 * demand))
		if 2*cur > target {
			target = 2 * cur
		}
		clamped := jv.ClampParallelism(target)
		result[name] = clamped
		if clamped <= cur {
			unresolvable = append(unresolvable, name)
			result[name] = cur
		}
	}
	return result, unresolvable
}
