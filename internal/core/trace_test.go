package core

import (
	"math/rand"
	"testing"
	"time"

	"nephelix/internal/model"
)

// TestObsRebalanceTraceReplay: the audit trail must be a faithful replay
// of the descent — starting from the lower bounds and applying the steps
// in order reproduces exactly the allocation Rebalance returned.
func TestObsRebalanceTraceReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		sm := randomSequenceModel(rng, 1+rng.Intn(5), 64)
		wLimit := 0.002 + rng.Float64()*0.2

		var trace []RebalanceStep
		p, err := RebalanceTraced(sm, wLimit, nil, &trace)
		if err != nil {
			if len(trace) != 0 {
				t.Fatalf("trial %d: infeasible run recorded %d steps", trial, len(trace))
			}
			continue
		}

		replay := make(map[string]int, len(sm.Vertices))
		for _, vm := range sm.Vertices {
			replay[vm.Name] = vm.Min
		}
		for i, st := range trace {
			if st.To <= st.From {
				t.Fatalf("trial %d step %d: non-increasing step %+v", trial, i, st)
			}
			if replay[st.Vertex] != st.From {
				t.Fatalf("trial %d step %d: From=%d but replayed state is %d",
					trial, i, st.From, replay[st.Vertex])
			}
			replay[st.Vertex] = st.To
		}
		for name, want := range p {
			if replay[name] != want {
				t.Fatalf("trial %d: replaying %d steps gives %v, Rebalance returned %v",
					trial, len(trace), replay, p)
			}
		}

		// The traced variant must not change the optimization outcome.
		plain, err2 := Rebalance(sm, wLimit, nil)
		if err2 != nil {
			t.Fatalf("trial %d: plain Rebalance errored: %v", trial, err2)
		}
		for name, want := range plain {
			if p[name] != want {
				t.Fatalf("trial %d: traced result %v != plain result %v", trial, p, plain)
			}
		}
	}
}

// TestObsDecideExposesAuditData: ElasticScaler.Decide must surface the
// fitted model inputs, the descent steps and any gating holds on the
// decision so the flight recorder can export them.
func TestObsDecideExposesAuditData(t *testing.T) {
	// Moderate load at p=32: the Rebalance path runs and scales down.
	f := newScalerFixture(t, 20, 0.002, 32, 20*time.Millisecond)
	sc, err := NewElasticScaler(DefaultScalerConfig(), f.g, []*model.Constraint{f.constraint})
	if err != nil {
		t.Fatal(err)
	}
	d, err := sc.Decide(f.summary, map[string]int{"work": 32})
	if err != nil || d == nil {
		t.Fatalf("decide: d=%v err=%v", d, err)
	}
	cd := d.PerConstraint[0]
	if cd.Bottleneck || cd.Skipped {
		t.Fatalf("expected the Rebalance path: %+v", cd)
	}
	if len(cd.Models) == 0 {
		t.Fatal("no fitted models recorded on the Rebalance path")
	}
	m := cd.Models[0]
	if m.Name != "work" {
		t.Errorf("model vertex = %q, want work", m.Name)
	}
	if m.Lambda <= 0 || m.SMean <= 0 || m.CA2 <= 0 || m.CS2 <= 0 {
		t.Errorf("Kingman inputs not captured: λ=%v s̄=%v cA²=%v cS²=%v", m.Lambda, m.SMean, m.CA2, m.CS2)
	}
	if cd.QueueWaitLimit <= 0 {
		t.Errorf("queue-wait budget not recorded: %v", cd.QueueWaitLimit)
	}
	if len(cd.Steps) == 0 {
		t.Error("no descent steps recorded")
	}

	// The scale-down clamp must show up as a hold when it bites.
	clamped := DefaultScalerConfig()
	clamped.MaxScaleDownFraction = 0.05
	f2 := newScalerFixture(t, 10, 0.001, 64, 20*time.Millisecond)
	sc2, err := NewElasticScaler(clamped, f2.g, []*model.Constraint{f2.constraint})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := sc2.Decide(f2.summary, map[string]int{"work": 64})
	if err != nil || d2 == nil {
		t.Fatalf("decide: d=%v err=%v", d2, err)
	}
	var clampHolds int
	for _, h := range d2.Holds {
		if h.Reason == "scale-down-clamp" && h.Vertex == "work" {
			clampHolds++
			if h.Kept <= h.Proposed {
				t.Errorf("clamp hold should keep more than proposed: %+v", h)
			}
		}
	}
	if clampHolds != 1 {
		t.Errorf("scale-down clamp recorded %d holds, want 1 (%+v)", clampHolds, d2.Holds)
	}
}
