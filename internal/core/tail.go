package core

import (
	"math"
	"sort"
	"sync"
)

// TailWindow is one fit window's measured queue-wait distribution at a
// vertex: the observation count, the mean wait, and the q-th quantile
// wait, all taken from the same per-adjustment-interval sketch.
type TailWindow struct {
	// Count is the number of queue-wait observations in the window.
	Count uint64
	// MeanWait is the window's mean queue wait in seconds.
	MeanWait float64
	// TailWait is the window's q-quantile queue wait in seconds.
	TailWait float64
}

// TailFitterConfig tunes the online κ fit.
type TailFitterConfig struct {
	// MinSamples is the smallest window (observation count) accepted as
	// a fresh fit; sparser windows hold the previous κ instead.
	MinSamples uint64
	// KappaMax caps κ so a single pathological window cannot slam every
	// percentile Rebalance to maximum scale-out.
	KappaMax float64
	// Smoothing is the EWMA weight of the newest accepted window in
	// (0, 1]; 1 uses each fresh window verbatim.
	Smoothing float64
}

// DefaultTailFitterConfig returns the default fit parameters: windows of
// at least 16 observations, κ capped at 64, and an EWMA that weights the
// newest window at 0.5.
func DefaultTailFitterConfig() TailFitterConfig {
	return TailFitterConfig{MinSamples: 16, KappaMax: 64, Smoothing: 0.5}
}

type tailKey struct {
	vertex string
	q      float64
}

type tailCell struct {
	kappa    float64 // EWMA of accepted κ_raw = TailWait/MeanWait
	windows  int     // accepted windows folded into kappa
	held     int     // consecutive windows rejected since the last accept
	lastTail float64 // TailWait of the most recent window (accepted or not)
	lastOK   bool    // whether the most recent window met MinSamples
}

// Tail-fit states reported by Kappa — the rungs of the fallback ladder.
const (
	// TailFitFresh: the latest window met MinSamples and refreshed κ.
	TailFitFresh = "fit"
	// TailFitHeld: the latest window was too sparse; the prior κ is held.
	TailFitHeld = "held"
	// TailFitMean: no window has ever been accepted; κ = 1 (mean model).
	TailFitMean = "mean"
)

// TailFitter fits per-vertex tail coefficients κ_jv(q) = W_q/W̄ online
// from windowed queue-wait sketches. Multiplying a VertexModel's A by κ
// turns every Rebalance closed form (Wait, Marginal, StepToMarginal,
// ParallelismForWait) into its q-quantile counterpart without touching
// the optimizer: W_q(p*) ≈ κ · e·a/(p*−b).
//
// The fallback ladder: a window with ≥ MinSamples observations refreshes
// κ by EWMA ("fit"); a sparse window holds the previous fit ("held");
// with no fit at all κ degrades to 1 and the model is exactly the
// Kingman mean ("mean").
type TailFitter struct {
	mu    sync.Mutex
	cfg   TailFitterConfig
	qs    []float64
	cells map[tailKey]*tailCell
}

// NewTailFitter returns a fitter tracking the given target quantiles
// (out-of-range values are dropped, duplicates collapsed).
func NewTailFitter(cfg TailFitterConfig, quantiles ...float64) *TailFitter {
	if cfg.MinSamples == 0 {
		cfg.MinSamples = DefaultTailFitterConfig().MinSamples
	}
	if cfg.KappaMax <= 1 {
		cfg.KappaMax = DefaultTailFitterConfig().KappaMax
	}
	if cfg.Smoothing <= 0 || cfg.Smoothing > 1 {
		cfg.Smoothing = DefaultTailFitterConfig().Smoothing
	}
	f := &TailFitter{cfg: cfg, cells: make(map[tailKey]*tailCell)}
	seen := make(map[float64]bool)
	for _, q := range quantiles {
		if q > 0 && q < 1 && !seen[q] {
			seen[q] = true
			f.qs = append(f.qs, q)
		}
	}
	sort.Float64s(f.qs)
	return f
}

// Quantiles returns the target quantiles the fitter tracks (sorted).
func (f *TailFitter) Quantiles() []float64 {
	if f == nil {
		return nil
	}
	return f.qs
}

// Observe folds one fit window for (vertex, q) into the coefficient.
func (f *TailFitter) Observe(vertex string, q float64, w TailWindow) {
	if f == nil || !(q > 0 && q < 1) {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	key := tailKey{vertex, q}
	c := f.cells[key]
	if c == nil {
		c = &tailCell{}
		f.cells[key] = c
	}
	c.lastTail = w.TailWait
	c.lastOK = w.Count >= f.cfg.MinSamples
	if !c.lastOK || w.MeanWait <= 0 || w.TailWait <= 0 ||
		math.IsNaN(w.MeanWait) || math.IsNaN(w.TailWait) {
		c.held++
		return
	}
	raw := w.TailWait / w.MeanWait
	if raw < 1 {
		// The q-quantile of a window can estimate below its mean only
		// through sketch error; the tail of a wait distribution is never
		// better than the mean.
		raw = 1
	}
	if raw > f.cfg.KappaMax {
		raw = f.cfg.KappaMax
	}
	if c.windows == 0 {
		c.kappa = raw
	} else {
		c.kappa += f.cfg.Smoothing * (raw - c.kappa)
	}
	c.windows++
	c.held = 0
}

// Kappa returns the tail coefficient for (vertex, q) and the fallback
// rung that produced it ("fit", "held", "mean"). A nil fitter, unknown
// vertex, or never-accepted cell degrades to (1, "mean").
func (f *TailFitter) Kappa(vertex string, q float64) (float64, string) {
	if f == nil {
		return 1, TailFitMean
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	c := f.cells[tailKey{vertex, q}]
	if c == nil || c.windows == 0 {
		return 1, TailFitMean
	}
	if c.held > 0 {
		return c.kappa, TailFitHeld
	}
	return c.kappa, TailFitFresh
}

// TailHot reports whether the vertex's most recent fit window measured a
// q-quantile queue wait above boundSeconds — a tail violation visible to
// the bottleneck resolver even when the mean is comfortably under the
// bound. Sparse windows are never hot.
func (f *TailFitter) TailHot(vertex string, q, boundSeconds float64) bool {
	if f == nil || boundSeconds <= 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	c := f.cells[tailKey{vertex, q}]
	return c != nil && c.lastOK && c.lastTail > boundSeconds
}

// TailFitSnapshot is one (vertex, quantile) cell of the fitter, for
// gauges and decision audit trails.
type TailFitSnapshot struct {
	Vertex   string  `json:"vertex"`
	Quantile float64 `json:"quantile"`
	Kappa    float64 `json:"kappa"`
	State    string  `json:"state"`
	LastTail float64 `json:"last_tail_wait_seconds"`
	Windows  int     `json:"windows"`
}

// Snapshot returns all cells sorted by vertex then quantile.
func (f *TailFitter) Snapshot() []TailFitSnapshot {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]TailFitSnapshot, 0, len(f.cells))
	for k, c := range f.cells {
		kappa, state := 1.0, TailFitMean
		if c.windows > 0 {
			kappa = c.kappa
			if c.held > 0 {
				state = TailFitHeld
			} else {
				state = TailFitFresh
			}
		}
		out = append(out, TailFitSnapshot{
			Vertex:   k.vertex,
			Quantile: k.q,
			Kappa:    kappa,
			State:    state,
			LastTail: c.lastTail,
			Windows:  c.windows,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Vertex != out[j].Vertex {
			return out[i].Vertex < out[j].Vertex
		}
		return out[i].Quantile < out[j].Quantile
	})
	return out
}
