// Package core implements the paper's primary contribution (Section IV):
// a queueing-theoretic latency model for UDF-heavy data flows under
// changing degrees of parallelism, and the reactive scaling strategy
// built on it — Rebalance (Algorithm 1), ResolveBottlenecks (Equation 10)
// and ScaleReactively (Algorithm 2).
//
// Each task is modeled as a GI/G/1 queueing system. Kingman's formula
// approximates the queue waiting time of the average task of job vertex jv:
//
//	W_jv^K = (ρ/μ)/(1−ρ) · (c_A² + c_S²)/2
//
// and an error coefficient e_jv = (l_je − obl_je)/W_jv^K fits the
// approximation to the latest measurements, so that the model reproduces
// the currently observed queue wait at the current parallelism.
package core

import (
	"fmt"
	"math"

	"nephelix/internal/model"
	"nephelix/internal/qos"
)

// KingmanWait returns Kingman's GI/G/1 queue-wait approximation
// (Equation 3) for a task with per-task arrival rate lambda, mean service
// time s, and squared coefficients of variation ca2 and cs2. It returns
// +Inf when the utilization ρ = λ·S is at or above 1.
func KingmanWait(lambda, s, ca2, cs2 float64) float64 {
	rho := lambda * s
	if rho >= 1 {
		return math.Inf(1)
	}
	if rho <= 0 || s <= 0 {
		return 0
	}
	// (ρ/μ)/(1−ρ) = ρ·S/(1−ρ).
	return (rho * s / (1 - rho)) * (ca2 + cs2) / 2
}

// VertexModel is the latency model of one job vertex, derived from the
// global summary. With the coefficients
//
//	a = λ S̄² p (c_A² + c_S²)/2   and   b = λ S̄ p
//
// the fitted queue waiting time as a function of the candidate degree of
// parallelism p* is
//
//	W(p*) = e · a/(p* − b)   for p* > b,   +Inf otherwise,
//
// which is Equation 3 combined with the utilization scaling of Equation 5.
type VertexModel struct {
	// Name is the job vertex name.
	Name string
	// Current is the degree of parallelism the measurements were taken at.
	Current int
	// Min and Max bound the degrees of parallelism the optimizer may pick.
	Min, Max int

	// A and B are the model coefficients defined above, with the error
	// coefficient already folded into A (A = e·a).
	A, B float64

	// E is the error coefficient e_jv (Equation 4) used to build A; kept
	// for diagnostics.
	E float64

	// Lambda, SMean, CA2 and CS2 are the measured Kingman inputs the
	// coefficients were fitted from (per-task arrival rate λ, mean
	// service time s̄, squared coefficients of variation); kept for the
	// decision audit trail.
	Lambda, SMean, CA2, CS2 float64

	// Kappa is the tail coefficient κ ≥ 1 folded into A for percentile
	// constraints: W(p*) then models the TailQuantile-th quantile wait
	// κ·e·a/(p*−b) instead of the mean. 1 for mean constraints.
	Kappa float64
	// TailQuantile is the quantile the model targets (0 = mean).
	TailQuantile float64
	// TailFit records which rung of the fallback ladder produced Kappa:
	// "fit" (fresh window), "held" (sparse window, prior fit reused),
	// "mean" (no fit — κ = 1). Empty for mean constraints.
	TailFit string

	// Notes is the audit trail of input clamps applied while fitting
	// (e.g. a NaN CV from a sparse summary interval replaced by 0), so
	// decision logs show when the model ran on sanitized inputs.
	Notes []string
}

// Wait returns the modeled queue waiting time W(p*) at parallelism pStar.
func (m *VertexModel) Wait(pStar int) float64 {
	p := float64(pStar)
	if p <= m.B {
		return math.Inf(1)
	}
	if m.A <= 0 {
		return 0
	}
	return m.A / (p - m.B)
}

// Marginal returns Δ = W(p+1) − W(p), the (non-positive) decrease in
// queue waiting time from adding one task at parallelism p. When W(p) is
// infinite but W(p+1) is finite, the marginal is −Inf; when both are
// infinite it is also −Inf (the vertex strictly needs more tasks).
func (m *VertexModel) Marginal(p int) float64 {
	wNext := m.Wait(p + 1)
	w := m.Wait(p)
	if math.IsInf(w, 1) {
		return math.Inf(-1)
	}
	return wNext - w
}

// FeasibleMin returns the smallest parallelism with finite modeled wait
// (ρ < 1): ⌊b⌋ + 1.
func (m *VertexModel) FeasibleMin() int {
	return int(math.Floor(m.B)) + 1
}

// StepToMarginal implements P_Δ(i, δ): the smallest parallelism p at
// which the marginal improvement W(p+1) − W(p) has shrunk to δ (δ < 0).
// Solving −a/((p−b)(p−b+1)) = δ for p gives
//
//	p = b − 1/2 + sqrt(1/4 − a/δ),
//
// which equals the paper's closed form ⌈(2b−1)/2 + sqrt(((1−2b)/2)² −
// (a+δ(b²−b))/δ)⌉ after expansion. The result is clamped to keep ρ < 1.
func (m *VertexModel) StepToMarginal(delta float64) int {
	if delta >= 0 || m.A <= 0 {
		return m.FeasibleMin()
	}
	p := m.B - 0.5
	if math.IsInf(delta, -1) {
		// a/δ → 0: the target marginal is unboundedly good; the smallest
		// feasible parallelism suffices.
		p += 0.5
	} else {
		p += math.Sqrt(0.25 - m.A/delta)
	}
	result := int(math.Ceil(p))
	if fm := m.FeasibleMin(); result < fm {
		result = fm
	}
	return result
}

// ParallelismForWait implements P_W(i, w): the smallest parallelism p with
// W(p) ≤ w, i.e. ⌈a/w + b⌉ (clamped to keep ρ < 1). A non-positive budget
// returns Max.
func (m *VertexModel) ParallelismForWait(w float64) int {
	if w <= 0 {
		return m.Max
	}
	if m.A <= 0 {
		return m.FeasibleMin()
	}
	result := int(math.Ceil(m.A/w + m.B))
	if fm := m.FeasibleMin(); result < fm {
		result = fm
	}
	// Ceil can land exactly on W(p) == w with zero slack lost; verify and
	// bump once if floating point rounded the wrong way. The relative
	// epsilon keeps exact-boundary solutions (W(p) == w) from being
	// pushed one step too far.
	if m.Wait(result) > w*(1+1e-9)+1e-15 && result < m.Max {
		result++
	}
	return result
}

// ModelOptions configures how vertex models are fitted from summaries.
type ModelOptions struct {
	// UseErrorCoefficient enables the e_jv fit of Equation 4. Disabling it
	// (e = 1) reproduces the paper's ablation argument: without e the
	// model may recommend a scale-down when a scale-up is needed.
	UseErrorCoefficient bool
	// ErrorCoefficientMax caps e_jv to avoid extreme overscaling when
	// bursts inflate the measured queue latency. The paper leaves e
	// uncapped (and argues the resulting overscaling is useful); a value
	// of 0 means uncapped.
	ErrorCoefficientMax float64

	// TailQuantile, when in (0,1), fits the model to that quantile of
	// the queue wait instead of the mean by inflating A with the vertex's
	// tail coefficient κ from Tail. 0 keeps mean semantics.
	TailQuantile float64
	// Tail supplies per-vertex tail coefficients fitted online from the
	// observed queue-wait quantile sketches. Nil (or no fit yet) degrades
	// to κ = 1, i.e. the Kingman mean model.
	Tail *TailFitter
}

// DefaultModelOptions returns the default configuration: error
// coefficient enabled and capped at 10. The paper leaves e uncapped and
// accepts the resulting overscaling; uncapped, however, a batching-
// induced queue wait measured at near-zero utilization yields e in the
// hundreds (W^K is microseconds there) and slams every Rebalance to
// maximum scale-out. The cap bounds the fit without disabling the
// paper's intended burst overscaling; BenchmarkAblationErrorCoefficient
// explores the uncapped and disabled variants.
func DefaultModelOptions() ModelOptions {
	return ModelOptions{UseErrorCoefficient: true, ErrorCoefficientMax: 10}
}

// BuildVertexModel fits the latency model for one constrained vertex from
// the global summary. seq supplies the vertex's ingoing job edge, whose
// measured channel and output-batch latency define the error coefficient.
func BuildVertexModel(jv *model.JobVertex, seq *model.Sequence, s *qos.Summary, opts ModelOptions) (*VertexModel, error) {
	vs, ok := s.Vertex(jv.Name)
	if !ok {
		return nil, fmt.Errorf("core: no measurements for vertex %q", jv.Name)
	}
	p := vs.Parallelism
	if p <= 0 {
		p = jv.Parallelism
	}
	var notes []string
	// Sparse summary intervals (a handful of records, or a vertex that
	// saw no traffic) can yield NaN or negative moments. A NaN anywhere
	// in A or B poisons every Rebalance marginal comparison — NaN
	// compares false against everything, so the gradient loop stalls or
	// picks arbitrary vertices. Clamp each input with an audit note
	// instead of letting it through.
	sanitize := func(v float64, what string) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			notes = append(notes, fmt.Sprintf("%s %g clamped to 0 (sparse interval)", what, v))
			return 0
		}
		return v
	}
	lambda := sanitize(vs.ArrivalRate(), "arrival rate")
	sMean := sanitize(vs.ServiceTimeMean, "service-time mean")
	caV := sanitize(vs.InterarrivalCV, "interarrival CV")
	csV := sanitize(vs.ServiceTimeCV, "service-time CV")
	ca2 := caV * caV
	cs2 := csV * csV

	a := lambda * sMean * sMean * float64(p) * (ca2 + cs2) / 2
	b := lambda * sMean * float64(p)

	e := 1.0
	if opts.UseErrorCoefficient {
		// e = (l_je − obl_je) / W^K at the current parallelism.
		if key, ok := seq.IngoingEdge(jv.Name); ok {
			if es, ok := s.Edge(key); ok {
				wk := KingmanWait(lambda, sMean, ca2, cs2)
				if wk > 0 && !math.IsInf(wk, 1) {
					e = es.QueueWait() / wk
					// A non-finite or non-positive fit (NaN passes every
					// ordered comparison below false, so test it first)
					// falls back to the uncorrected model.
					if math.IsNaN(e) || math.IsInf(e, 0) || e <= 0 {
						notes = append(notes, fmt.Sprintf("error coefficient %g reset to 1", e))
						e = 1
					}
					if opts.ErrorCoefficientMax > 0 && e > opts.ErrorCoefficientMax {
						e = opts.ErrorCoefficientMax
					}
				}
			}
		}
	}

	kappa, fit := 1.0, ""
	if opts.TailQuantile > 0 && opts.TailQuantile < 1 {
		kappa, fit = opts.Tail.Kappa(jv.Name, opts.TailQuantile)
	}

	return &VertexModel{
		Name:         jv.Name,
		Current:      p,
		Min:          jv.MinParallelism,
		Max:          jv.MaxParallelism,
		A:            kappa * e * a,
		B:            b,
		E:            e,
		Lambda:       lambda,
		SMean:        sMean,
		CA2:          ca2,
		CS2:          cs2,
		Kappa:        kappa,
		TailQuantile: opts.TailQuantile,
		TailFit:      fit,
		Notes:        notes,
	}, nil
}

// SequenceModel is the latency model of a constrained job sequence: the
// vertex models of its elastically relevant vertices, in sequence order.
type SequenceModel struct {
	Vertices []*VertexModel
}

// BuildSequenceModel fits models for all vertices of the constrained
// sequence.
func BuildSequenceModel(g *model.JobGraph, seq *model.Sequence, s *qos.Summary, opts ModelOptions) (*SequenceModel, error) {
	sm := &SequenceModel{}
	for _, name := range seq.Vertices() {
		jv := g.Vertex(name)
		if jv == nil {
			return nil, fmt.Errorf("core: sequence vertex %q not in job graph", name)
		}
		vm, err := BuildVertexModel(jv, seq, s, opts)
		if err != nil {
			return nil, err
		}
		sm.Vertices = append(sm.Vertices, vm)
	}
	return sm, nil
}

// TotalWait returns W_js(p*₁, …, p*ₙ) = Σ W_i(p*ᵢ) for the given candidate
// parallelisms (indexed like Vertices).
func (sm *SequenceModel) TotalWait(p []int) float64 {
	total := 0.0
	for i, vm := range sm.Vertices {
		w := vm.Wait(p[i])
		if math.IsInf(w, 1) {
			return math.Inf(1)
		}
		total += w
	}
	return total
}

// MaxParallelisms returns each vertex's maximum parallelism.
func (sm *SequenceModel) MaxParallelisms() []int {
	out := make([]int, len(sm.Vertices))
	for i, vm := range sm.Vertices {
		out[i] = vm.Max
	}
	return out
}
