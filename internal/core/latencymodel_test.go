package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"nephelix/internal/model"
	"nephelix/internal/qos"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestKingmanWaitMM1(t *testing.T) {
	// For ca = cs = 1 Kingman is exact for M/M/1: W = ρ·S/(1−ρ).
	lambda, s := 80.0, 0.01 // ρ = 0.8
	want := 0.8 * 0.01 / 0.2
	if got := KingmanWait(lambda, s, 1, 1); !almostEqual(got, want, 1e-12) {
		t.Errorf("KingmanWait M/M/1: got %v, want %v", got, want)
	}
	// M/D/1 (cs = 0) halves the M/M/1 wait.
	if got := KingmanWait(lambda, s, 1, 0); !almostEqual(got, want/2, 1e-12) {
		t.Errorf("KingmanWait M/D/1: got %v, want %v", got, want/2)
	}
}

func TestKingmanWaitBoundaries(t *testing.T) {
	if got := KingmanWait(100, 0.01, 1, 1); !math.IsInf(got, 1) {
		t.Errorf("rho == 1: got %v, want +Inf", got)
	}
	if got := KingmanWait(200, 0.01, 1, 1); !math.IsInf(got, 1) {
		t.Errorf("rho > 1: got %v, want +Inf", got)
	}
	if got := KingmanWait(0, 0.01, 1, 1); got != 0 {
		t.Errorf("no arrivals: got %v, want 0", got)
	}
	if got := KingmanWait(100, 0, 1, 1); got != 0 {
		t.Errorf("zero service: got %v, want 0", got)
	}
}

func TestKingmanWaitMonotoneInLoad(t *testing.T) {
	prev := 0.0
	for rho := 0.1; rho < 0.95; rho += 0.1 {
		w := KingmanWait(rho/0.01, 0.01, 1, 1)
		if w <= prev {
			t.Fatalf("Kingman wait not increasing at rho=%v: %v <= %v", rho, w, prev)
		}
		prev = w
	}
}

// testModel builds a vertex model directly from coefficients.
func testModel(name string, a, b float64, cur, minP, maxP int) *VertexModel {
	return &VertexModel{Name: name, Current: cur, Min: minP, Max: maxP, A: a, B: b, E: 1}
}

func TestVertexModelWait(t *testing.T) {
	m := testModel("v", 0.1, 4.0, 8, 1, 64)
	if !math.IsInf(m.Wait(4), 1) || !math.IsInf(m.Wait(3), 1) {
		t.Error("wait at p <= b must be infinite")
	}
	if got := m.Wait(5); !almostEqual(got, 0.1, 1e-12) {
		t.Errorf("Wait(5): got %v, want 0.1", got)
	}
	// Strictly decreasing beyond the pole.
	for p := 5; p < 63; p++ {
		if m.Wait(p+1) >= m.Wait(p) {
			t.Fatalf("Wait not strictly decreasing at p=%d", p)
		}
	}
}

func TestVertexModelFeasibleMin(t *testing.T) {
	tests := []struct {
		b    float64
		want int
	}{{0, 1}, {0.5, 1}, {3.2, 4}, {4.0, 5}}
	for _, tt := range tests {
		m := testModel("v", 1, tt.b, 1, 1, 100)
		if got := m.FeasibleMin(); got != tt.want {
			t.Errorf("FeasibleMin(b=%v): got %d, want %d", tt.b, got, tt.want)
		}
	}
}

func TestStepToMarginalProperty(t *testing.T) {
	prop := func(aRaw, bRaw, dRaw uint16) bool {
		a := 0.001 + float64(aRaw%1000)/1000.0 // (0.001, 1]
		b := float64(bRaw % 50)
		m := testModel("v", a, b, 1, 1, 10000)
		// A marginal somewhere in the model's realistic range.
		pProbe := m.FeasibleMin() + int(dRaw%40)
		delta := m.Marginal(pProbe + 1)
		if delta >= 0 || math.IsInf(delta, -1) {
			return true
		}
		p := m.StepToMarginal(delta)
		if p < m.FeasibleMin() {
			return false
		}
		// At p the marginal must have flattened to at least delta.
		if m.Marginal(p) < delta-1e-9 {
			return false
		}
		// Minimality: one step earlier the marginal was steeper (when
		// still feasible).
		if p-1 >= m.FeasibleMin() && !math.IsInf(m.Marginal(p-1), -1) {
			return m.Marginal(p-1) <= delta+1e-9
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStepToMarginalInfiniteDelta(t *testing.T) {
	m := testModel("v", 0.5, 7.3, 1, 1, 100)
	if got := m.StepToMarginal(math.Inf(-1)); got != m.FeasibleMin() {
		t.Errorf("infinite delta: got %d, want feasible min %d", got, m.FeasibleMin())
	}
}

func TestParallelismForWaitProperty(t *testing.T) {
	prop := func(aRaw, bRaw, wRaw uint16) bool {
		a := 0.001 + float64(aRaw%1000)/1000.0
		b := float64(bRaw % 50)
		w := 0.0001 + float64(wRaw%10000)/10000.0
		m := testModel("v", a, b, 1, 1, 1<<20)
		p := m.ParallelismForWait(w)
		if m.Wait(p) > w+1e-9 {
			return false
		}
		// Minimality: p−1 violates the budget (unless p is the smallest
		// feasible parallelism anyway).
		if p-1 >= m.FeasibleMin() {
			return m.Wait(p-1) > w-1e-9
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParallelismForWaitZeroBudget(t *testing.T) {
	m := testModel("v", 0.5, 3, 1, 1, 77)
	if got := m.ParallelismForWait(0); got != 77 {
		t.Errorf("zero budget: got %d, want max 77", got)
	}
}

// buildTestSummary builds a graph src -> work -> sink plus a summary for
// "work" with the given measurements.
func buildTestSummary(t *testing.T, lambda, svc, svcCV, arrCV, chanLat, batchLat float64, p int) (*model.JobGraph, *model.Sequence, *qos.Summary) {
	t.Helper()
	g := model.NewJobGraph()
	for _, v := range []model.JobVertex{
		{Name: "src", Parallelism: 1},
		{Name: "work", Parallelism: p, MinParallelism: 1, MaxParallelism: 512},
		{Name: "sink", Parallelism: 1},
	} {
		if err := g.AddVertex(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge("src", "work", model.PatternRoundRobin); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("work", "sink", model.PatternRoundRobin); err != nil {
		t.Fatal(err)
	}
	seq, err := model.ParseSequence(g, "src->work", "work", "work->sink")
	if err != nil {
		t.Fatal(err)
	}
	s := qos.NewSummary()
	s.Vertices["work"] = qos.VertexStats{
		TaskLatency:      svc,
		ServiceTimeMean:  svc,
		ServiceTimeCV:    svcCV,
		InterarrivalMean: 1 / lambda,
		InterarrivalCV:   arrCV,
		Parallelism:      p,
	}
	s.Edges[model.EdgeKey{Source: "src", Target: "work"}] = qos.EdgeStats{
		ChannelLatency:     chanLat,
		OutputBatchLatency: batchLat,
	}
	s.Edges[model.EdgeKey{Source: "work", Target: "sink"}] = qos.EdgeStats{}
	return g, seq, s
}

func TestBuildVertexModelErrorCoefficient(t *testing.T) {
	// λ = 50/s per task, S = 10 ms → ρ = 0.5; ca = cs = 1 →
	// W^K = 0.5·0.01/0.5 = 10 ms. Measured queue wait = 20 ms → e = 2.
	g, seq, s := buildTestSummary(t, 50, 0.01, 1, 1, 0.025, 0.005, 8)
	vm, err := BuildVertexModel(g.Vertex("work"), seq, s, DefaultModelOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(vm.E, 2.0, 1e-9) {
		t.Errorf("error coefficient: got %v, want 2", vm.E)
	}
	// The fitted model reproduces the measured wait at current p.
	if got := vm.Wait(8); !almostEqual(got, 0.020, 1e-9) {
		t.Errorf("fitted wait at current parallelism: got %v, want 0.020", got)
	}
}

func TestBuildVertexModelWithoutErrorCoefficient(t *testing.T) {
	g, seq, s := buildTestSummary(t, 50, 0.01, 1, 1, 0.025, 0.005, 8)
	vm, err := BuildVertexModel(g.Vertex("work"), seq, s, ModelOptions{UseErrorCoefficient: false})
	if err != nil {
		t.Fatal(err)
	}
	if vm.E != 1 {
		t.Errorf("disabled error coefficient: got e=%v, want 1", vm.E)
	}
	// Without the fit the model returns the raw Kingman estimate (10 ms),
	// underestimating the measured 20 ms — the failure mode the paper
	// warns about.
	if got := vm.Wait(8); !almostEqual(got, 0.010, 1e-9) {
		t.Errorf("unfitted wait: got %v, want 0.010", got)
	}
}

func TestBuildVertexModelCapsErrorCoefficient(t *testing.T) {
	// Same setup but measured wait of 1 s → e would be 100; cap at 5.
	g, seq, s := buildTestSummary(t, 50, 0.01, 1, 1, 1.0, 0, 8)
	opts := DefaultModelOptions()
	opts.ErrorCoefficientMax = 5
	vm, err := BuildVertexModel(g.Vertex("work"), seq, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if vm.E != 5 {
		t.Errorf("capped error coefficient: got %v, want 5", vm.E)
	}
}

func TestBuildVertexModelMissingMeasurements(t *testing.T) {
	g, seq, s := buildTestSummary(t, 50, 0.01, 1, 1, 0.02, 0, 8)
	delete(s.Vertices, "work")
	if _, err := BuildVertexModel(g.Vertex("work"), seq, s, DefaultModelOptions()); err == nil {
		t.Error("missing vertex stats must error")
	}
}

func TestSequenceModelTotalWait(t *testing.T) {
	sm := &SequenceModel{Vertices: []*VertexModel{
		testModel("a", 0.1, 2, 4, 1, 16),
		testModel("b", 0.2, 3, 4, 1, 16),
	}}
	got := sm.TotalWait([]int{4, 5})
	want := 0.1/2 + 0.2/2
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("TotalWait: got %v, want %v", got, want)
	}
	if !math.IsInf(sm.TotalWait([]int{2, 5}), 1) {
		t.Error("TotalWait with saturated vertex must be +Inf")
	}
}

func TestBuildSequenceModelFromSummary(t *testing.T) {
	g, seq, s := buildTestSummary(t, 50, 0.01, 1, 1, 0.02, 0.005, 8)
	// Constraint machinery expects coverage of both sequence vertices.
	s.Vertices["sink"] = qos.VertexStats{ServiceTimeMean: 0.0001, InterarrivalMean: 0.001, Parallelism: 1}
	full, err := model.ParseSequence(g, "src->work", "work", "work->sink", "sink")
	if err != nil {
		t.Fatal(err)
	}
	_ = seq
	sm, err := BuildSequenceModel(g, full, s, DefaultModelOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sm.Vertices) != 2 || sm.Vertices[0].Name != "work" || sm.Vertices[1].Name != "sink" {
		t.Errorf("sequence model vertices: %+v", sm.Vertices)
	}
}

// TestFittedModelPredictsScaledQueue checks the model's core promise: a
// synthetic M/M/1-style vertex measured at parallelism p predicts lower
// waits at higher parallelism, following W(p*) = e·a/(p*−b).
func TestFittedModelPredictsScaledQueue(t *testing.T) {
	rng := rand.New(rand.NewSource(time.Now().UnixNano() % 1000))
	_ = rng
	g, seq, s := buildTestSummary(t, 90, 0.01, 1, 1, 0.1, 0.0, 4) // ρ = 0.9 per task
	vm, err := BuildVertexModel(g.Vertex("work"), seq, s, DefaultModelOptions())
	if err != nil {
		t.Fatal(err)
	}
	wCur := vm.Wait(4)
	wDouble := vm.Wait(8)
	if !(wDouble < wCur/3) {
		t.Errorf("doubling parallelism at rho=0.9 should cut wait sharply: %v -> %v", wCur, wDouble)
	}
}

// TestStepToMarginalMatchesPaperClosedForm verifies that the simplified
// expression p = b − 1/2 + sqrt(1/4 − a/δ) equals the paper's literal
// ⌈(2b−1)/2 + sqrt(((1−2b)/2)² − (a+δ(b²−b))/δ)⌉ for all valid inputs.
func TestStepToMarginalMatchesPaperClosedForm(t *testing.T) {
	paper := func(a, b, delta float64) float64 {
		return (2*b-1)/2 + math.Sqrt(math.Pow((1-2*b)/2, 2)-(a+delta*(b*b-b))/delta)
	}
	prop := func(aRaw, bRaw, dRaw uint16) bool {
		a := 0.001 + float64(aRaw%1000)/500.0
		b := float64(bRaw%200) / 2.0
		delta := -(1e-6 + float64(dRaw%10000)/1e6)
		ours := b - 0.5 + math.Sqrt(0.25-a/delta)
		theirs := paper(a, b, delta)
		return almostEqual(ours, theirs, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestRebalanceRespectsVertexBounds is a property test across random
// problems: results always lie within [max(min, pMin), max].
func TestRebalanceRespectsVertexBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(4)
		sm := &SequenceModel{}
		pMin := map[string]int{}
		for i := 0; i < n; i++ {
			name := string(rune('a' + i))
			minP := 1 + rng.Intn(4)
			maxP := minP + rng.Intn(60)
			sm.Vertices = append(sm.Vertices, &VertexModel{
				Name: name, Current: minP, Min: minP, Max: maxP,
				A: rng.Float64() * 0.3, B: rng.Float64() * float64(maxP) / 2, E: 1,
			})
			if rng.Intn(2) == 0 {
				pMin[name] = minP + rng.Intn(maxP-minP+1)
			}
		}
		p, err := Rebalance(sm, 0.001+rng.Float64()*0.2, pMin)
		infeasible := errors.Is(err, ErrInfeasible)
		if err != nil && !infeasible {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, vm := range sm.Vertices {
			got := p[vm.Name]
			lo := vm.Min
			if pm, ok := pMin[vm.Name]; ok && pm > lo && !infeasible {
				lo = pm
			}
			if got < lo || got > vm.Max {
				t.Fatalf("trial %d: %s=%d outside [%d, %d] (infeasible=%v)",
					trial, vm.Name, got, lo, vm.Max, infeasible)
			}
		}
	}
}
