package core

import (
	"math"
	"math/rand"
	"testing"

	"nephelix/internal/qos"
)

// TestBuildVertexModelNaNCVSanitized is the regression test for the
// sparse-interval bug: a summary interval with too few records yields
// NaN coefficients of variation, which used to flow straight into A and
// B and poison every Rebalance marginal comparison (NaN compares false
// everywhere, so the gradient loop could stall or pick arbitrary
// vertices). The model must clamp the inputs, leave an audit note, and
// Rebalance must still produce a finite, sane plan.
func TestBuildVertexModelNaNCVSanitized(t *testing.T) {
	g, seq, s := buildTestSummary(t, 50, 0.01, math.NaN(), math.NaN(), 0.025, 0.005, 8)
	vm, err := BuildVertexModel(g.Vertex("work"), seq, s, DefaultModelOptions())
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{"A": vm.A, "B": vm.B, "E": vm.E, "CA2": vm.CA2, "CS2": vm.CS2} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v; NaN CVs must be clamped to finite coefficients", name, v)
		}
	}
	if len(vm.Notes) == 0 {
		t.Error("clamped inputs must leave an audit-trail note")
	}

	// The full gradient loop on a poisoned-then-sanitized model: every
	// chosen parallelism must be finite and within bounds.
	s.Vertices["sink"] = qos.VertexStats{ServiceTimeMean: 0.0001, InterarrivalMean: 0.001, Parallelism: 1}
	sm, err := BuildSequenceModel(g, seq, s, DefaultModelOptions())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Rebalance(sm, 0.050, nil)
	if err != nil {
		t.Fatalf("Rebalance on sanitized model: %v", err)
	}
	for name, p := range plan {
		jv := g.Vertex(name)
		if p < 1 || (jv != nil && p > jv.MaxParallelism && jv.MaxParallelism > 0) {
			t.Errorf("plan[%s] = %d out of bounds", name, p)
		}
	}
	// A NaN service-time mean must also sanitize, not propagate.
	bad := s.Vertices["work"]
	bad.ServiceTimeMean = math.NaN()
	s.Vertices["work"] = bad
	vm2, err := BuildVertexModel(g.Vertex("work"), seq, s, DefaultModelOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(vm2.A) || math.IsNaN(vm2.B) {
		t.Errorf("NaN service mean leaked: A=%v B=%v", vm2.A, vm2.B)
	}
}

// TestTailWaitProperties is the property test for the tail-aware model
// over randomized Kingman inputs and fit windows:
//  1. the tail-inflated wait is ≥ the Kingman mean wait,
//  2. it is monotone non-decreasing in the target quantile,
//  3. it degrades to exactly the mean when the fit window has too few
//     samples.
func TestTailWaitProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	quantiles := []float64{0.5, 0.9, 0.95, 0.99, 0.999}
	for trial := 0; trial < 200; trial++ {
		lambda := 10 + 80*rng.Float64()
		svc := 0.001 + 0.009*rng.Float64() // ρ in (0.01, 0.9)
		p := 2 + rng.Intn(16)
		g, seq, s := buildTestSummary(t, lambda, svc, 0.5+rng.Float64(), 0.5+rng.Float64(), 0.02, 0.002, p)

		fit := NewTailFitter(DefaultTailFitterConfig(), quantiles...)
		// One fit window whose measured quantile wait grows with q, as
		// any real quantile function does.
		meanWait := 0.001 + 0.02*rng.Float64()
		tail := meanWait
		for _, q := range quantiles {
			tail += meanWait * rng.Float64() * 3 // quantile functions are non-decreasing
			fit.Observe("work", q, TailWindow{Count: 64, MeanWait: meanWait, TailWait: tail})
		}

		base := DefaultModelOptions()
		mean, err := BuildVertexModel(g.Vertex("work"), seq, s, base)
		if err != nil {
			t.Fatal(err)
		}
		prev := 0.0
		for _, q := range quantiles {
			opts := base
			opts.TailQuantile = q
			opts.Tail = fit
			vm, err := BuildVertexModel(g.Vertex("work"), seq, s, opts)
			if err != nil {
				t.Fatal(err)
			}
			if vm.TailFit != TailFitFresh {
				t.Fatalf("q=%v: fit state %q, want %q", q, vm.TailFit, TailFitFresh)
			}
			for pp := vm.FeasibleMin(); pp <= vm.Max; pp += 7 {
				wTail, wMean := vm.Wait(pp), mean.Wait(pp)
				if wTail < wMean {
					t.Fatalf("trial %d q=%v p=%d: tail wait %v < mean wait %v", trial, q, pp, wTail, wMean)
				}
			}
			if vm.Kappa < prev {
				t.Fatalf("trial %d: κ(%v)=%v not monotone in q (prev %v)", trial, q, vm.Kappa, prev)
			}
			prev = vm.Kappa
		}

		// Sparse window: fewer samples than MinSamples must degrade to
		// exactly the mean model.
		sparse := NewTailFitter(DefaultTailFitterConfig(), 0.99)
		sparse.Observe("work", 0.99, TailWindow{Count: 3, MeanWait: meanWait, TailWait: meanWait * 40})
		opts := base
		opts.TailQuantile = 0.99
		opts.Tail = sparse
		vm, err := BuildVertexModel(g.Vertex("work"), seq, s, opts)
		if err != nil {
			t.Fatal(err)
		}
		if vm.Kappa != 1 || vm.TailFit != TailFitMean {
			t.Fatalf("sparse fit must degrade to mean: κ=%v state=%q", vm.Kappa, vm.TailFit)
		}
		if vm.Wait(p+1) != mean.Wait(p+1) {
			t.Fatalf("sparse fit wait %v != mean wait %v", vm.Wait(p+1), mean.Wait(p+1))
		}
	}
}

// TestTailFitterFallbackLadder walks the three rungs: fresh fit, held
// prior, and mean degradation, plus the κ clamps at both ends.
func TestTailFitterFallbackLadder(t *testing.T) {
	f := NewTailFitter(TailFitterConfig{MinSamples: 10, KappaMax: 8, Smoothing: 1}, 0.99)

	if k, st := f.Kappa("v", 0.99); k != 1 || st != TailFitMean {
		t.Fatalf("no fit: got (%v, %q), want (1, mean)", k, st)
	}
	f.Observe("v", 0.99, TailWindow{Count: 100, MeanWait: 0.010, TailWait: 0.040})
	if k, st := f.Kappa("v", 0.99); k != 4 || st != TailFitFresh {
		t.Fatalf("fresh fit: got (%v, %q), want (4, fit)", k, st)
	}
	f.Observe("v", 0.99, TailWindow{Count: 3, MeanWait: 0.010, TailWait: 0.100})
	if k, st := f.Kappa("v", 0.99); k != 4 || st != TailFitHeld {
		t.Fatalf("sparse window must hold prior: got (%v, %q), want (4, held)", k, st)
	}
	// Sketch error can put the window quantile below the mean; κ floors
	// at 1 (the tail is never better than the mean).
	f.Observe("v", 0.99, TailWindow{Count: 100, MeanWait: 0.010, TailWait: 0.005})
	if k, _ := f.Kappa("v", 0.99); k != 1 {
		t.Fatalf("κ below 1 must floor: got %v", k)
	}
	// A pathological window caps at KappaMax.
	f.Observe("v", 0.99, TailWindow{Count: 100, MeanWait: 0.001, TailWait: 10})
	if k, _ := f.Kappa("v", 0.99); k != 8 {
		t.Fatalf("κ must cap at KappaMax: got %v", k)
	}
	// A nil fitter is always the mean model.
	var nilF *TailFitter
	if k, st := nilF.Kappa("v", 0.99); k != 1 || st != TailFitMean {
		t.Fatalf("nil fitter: got (%v, %q)", k, st)
	}
	nilF.Observe("v", 0.99, TailWindow{Count: 100, MeanWait: 1, TailWait: 2}) // must not panic
}

// TestResolveBottlenecksTailHot: a vertex comfortably below ρ_max whose
// measured p99 queue wait violates the bound still gets the Equation 10
// scale-up through the tail-hot trigger.
func TestResolveBottlenecksTailHot(t *testing.T) {
	// ρ = 50·0.01 = 0.5, far below ρ_max = 0.95: the mean trigger is blind.
	g, seq, s := buildTestSummary(t, 50, 0.01, 1, 1, 0.02, 0.002, 8)
	pol := DefaultBottleneckPolicy()
	if pol.HasBottleneck(g, seq, s) {
		t.Fatal("precondition: no utilization bottleneck expected")
	}
	plan, unresolvable := pol.ResolveBottlenecksTail(g, seq, s, map[string]bool{"work": true})
	if len(unresolvable) != 0 {
		t.Fatalf("unexpected unresolvable vertices: %v", unresolvable)
	}
	if plan["work"] <= 8 {
		t.Fatalf("tail-hot vertex must scale out: got %d, had 8", plan["work"])
	}
	// Without the tail-hot set nothing changes.
	plan, _ = pol.ResolveBottlenecks(g, seq, s)
	if plan["work"] != 8 {
		t.Fatalf("mean-only resolution must keep 8, got %d", plan["work"])
	}
}
