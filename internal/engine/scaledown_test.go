package engine

import (
	"sync/atomic"
	"testing"
	"time"

	"nephelix/internal/model"
	"nephelix/internal/workload"
)

// TestEngineScaleDownIntegrity is the regression test for the
// draining-task double-count bug: consecutive scale-down decisions once
// counted draining tasks as current parallelism and could drain every
// live consumer, silently dropping records at the producer gates.
func TestEngineScaleDownIntegrity(t *testing.T) {
	g := buildChain(t, 4, 8, model.PatternRoundRobin)
	var emitted, workSeen, received atomic.Int64
	seq, _ := model.ParseSequence(g, "src->work", "work", "work->sink")
	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.StepSchedule{WarmUpRate: 400, StepDelta: 1, IncrementSteps: 1, StepDuration: 2},
			Emit: func(ctx *Context) {
				emitted.Add(1)
				ctx.Emit(0, Record{})
			},
		}).
		SetUDF("work", func(int) UDF {
			return UDFFunc(func(ctx *Context, rec Record) {
				workSeen.Add(1)
				busySpin(500 * time.Microsecond)
				ctx.Emit(0, rec)
			})
		}).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received} }).
		AddConstraint(&model.Constraint{Name: "c", Sequence: seq, Bound: 100 * time.Millisecond, Window: 10 * time.Second})
	exec, err := New(Config{Seed: 12, Elastic: true,
		MeasurementInterval: 100 * time.Millisecond, AdjustmentInterval: 300 * time.Millisecond}).Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, exec, 40*time.Second)
	_, downs := exec.ScaleEvents()
	if downs == 0 {
		t.Skip("no scale-down this run; nothing to verify")
	}
	if workSeen.Load() != emitted.Load() || received.Load() != emitted.Load() {
		t.Errorf("record loss across scale-down: emitted=%d workSeen=%d received=%d",
			emitted.Load(), workSeen.Load(), received.Load())
	}
	if d := exec.DroppedNoConsumer(); d != 0 {
		t.Errorf("%d records dropped for lack of consumers", d)
	}
}
