package engine

import (
	"sync"
	"sync/atomic"
	"time"
)

// flushWheel is the execution's single timer wheel for batch flush
// deadlines, replacing the per-task FlushTick tickers of the
// channel-era engine. Emitters arm an entry when a gate buffer goes
// empty→non-empty under a finite deadline; the wheel goroutine wakes
// the owning emitter when the deadline lapses (one fire sets the
// emitter's flushReq flag and pokes its park channel). With nothing
// armed the wheel goroutine blocks on its notify channel — an idle
// topology costs zero timer wakeups (see TestWheelIdleTopologyNoFires).
//
// Entries hash into wheelSlots buckets to spread arm-side mutex
// contention across producers; while anything is armed the wheel ticks
// once per resolution and sweeps every bucket, firing lapsed entries.
// A cursor-walked wheel (only visiting the slots between the last and
// current tick) would strand sub-resolution deadlines: a 200 µs
// deadline under a 1 ms tick usually hashes into the tick being (or
// just) processed, and would then wait a whole lap. Sweeping is cheap
// here because armFlush dedups arms per emitter — the armed population
// is bounded by the live emitter count, control-plane sized, so a
// sweep is 64 mutex hops over a handful of entries. N armed deadlines
// still cost one timer tick per resolution, not N tickers. Entries are
// one-shot: after a fire the emitter re-arms at the earliest residual
// deadline if buffers remain (emitter.flushDue).
type flushWheel struct {
	res   time.Duration
	slots []wheelSlot

	// armed counts outstanding entries; the wheel parks at zero.
	armed atomic.Int64
	// fires counts delivered fires (regression guard: must stay zero on
	// an idle topology).
	fires atomic.Int64

	// parkedNs accumulates time the wheel goroutine spent blocked on
	// notify with nothing armed; parkedSince holds the start of the
	// in-progress park (0 while ticking). Both are written only by the
	// wheel goroutine and read by the data-plane sampler, which adds the
	// in-progress park so the parked fraction stays honest across an
	// interval the wheel slept through entirely.
	parkedNs    atomic.Int64
	parkedSince atomic.Int64

	notify chan struct{}
	quit   chan struct{}
}

type wheelSlot struct {
	mu      sync.Mutex
	entries []wheelEntry
}

type wheelEntry struct {
	atNs int64
	e    *emitter
}

const wheelSlots = 64

func newFlushWheel(res time.Duration) *flushWheel {
	return &flushWheel{
		res:    res,
		slots:  make([]wheelSlot, wheelSlots),
		notify: make(chan struct{}, 1),
		quit:   make(chan struct{}),
	}
}

// arm schedules a fire for emitter e at atNs (unix nanos). Callable
// from any producer goroutine; duplicate arms for one emitter are
// allowed (fires are idempotent — a spurious flushDue on an empty gate
// is a no-op).
func (w *flushWheel) arm(e *emitter, atNs int64) {
	s := &w.slots[(atNs/int64(w.res))%wheelSlots]
	s.mu.Lock()
	s.entries = append(s.entries, wheelEntry{atNs: atNs, e: e})
	s.mu.Unlock()
	if w.armed.Add(1) == 1 {
		select {
		case w.notify <- struct{}{}:
		default:
		}
	}
}

// run is the wheel goroutine: park while nothing is armed, otherwise
// tick once per resolution and sweep for lapsed entries.
func (w *flushWheel) run() {
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		if w.armed.Load() == 0 {
			w.parkedSince.Store(time.Now().UnixNano())
			select {
			case <-w.notify:
			case <-w.quit:
				return
			}
			w.parkedNs.Add(time.Now().UnixNano() - w.parkedSince.Load())
			w.parkedSince.Store(0)
		}
		timer.Reset(w.res)
		select {
		case <-timer.C:
		case <-w.quit:
			return
		}
		w.advance(time.Now().UnixNano())
	}
}

func (w *flushWheel) stop() { close(w.quit) }

// advance fires every entry whose deadline lapsed (wheel goroutine
// only). All buckets are swept — see the type comment for why that
// beats a cursor walk for this population.
func (w *flushWheel) advance(nowNs int64) {
	for i := range w.slots {
		s := &w.slots[i]
		s.mu.Lock()
		if len(s.entries) == 0 {
			s.mu.Unlock()
			continue
		}
		kept := s.entries[:0]
		for _, ent := range s.entries {
			if ent.atNs <= nowNs {
				w.fire(ent.e)
			} else {
				kept = append(kept, ent)
			}
		}
		for j := len(kept); j < len(s.entries); j++ {
			s.entries[j] = wheelEntry{}
		}
		s.entries = kept
		s.mu.Unlock()
	}
}

// wheelStats is the sampler's snapshot of the wheel's counters. The
// parked accumulator includes the park in progress (if any) up to
// nowNs; a wake racing the two loads can double-count that park by at
// most one sampling interval, which is noise at gauge granularity.
type wheelStats struct {
	fires    int64
	armed    int64
	parkedNs int64
}

// stats samples the wheel counters; callable from any goroutine.
func (w *flushWheel) stats(nowNs int64) wheelStats {
	parked := w.parkedNs.Load()
	if since := w.parkedSince.Load(); since != 0 && nowNs > since {
		parked += nowNs - since
	}
	return wheelStats{fires: w.fires.Load(), armed: w.armed.Load(), parkedNs: parked}
}

// fire delivers one lapsed entry: clear the emitter's armed marker,
// raise its flush request and wake its owning goroutine.
func (w *flushWheel) fire(e *emitter) {
	w.armed.Add(-1)
	w.fires.Add(1)
	e.armedUntil.Store(0)
	e.flushReq.Store(true)
	e.wake()
}
