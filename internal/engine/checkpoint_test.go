package engine

import (
	"context"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nephelix/internal/ckpt"
	"nephelix/internal/model"
	"nephelix/internal/obs"
	"nephelix/internal/qos"
	"nephelix/internal/ring"
	"nephelix/internal/workload"
)

// guaranteeConfig is the shared fast-cadence configuration for the
// processing-guarantee integration tests: checkpoints every 20 ms,
// quick supervised restarts, generous restart budget.
func guaranteeConfig(seed int64, g ckpt.Guarantee, rec *obs.Recorder) Config {
	return Config{
		Seed:               seed,
		Guarantee:          g,
		CheckpointInterval: 20 * time.Millisecond,
		RestartBackoff:     2 * time.Millisecond,
		RestartBackoffCap:  10 * time.Millisecond,
		MaxTaskRestarts:    50,
		Recorder:           rec,
	}
}

// TestEngineAtLeastOnceZeroLoss is the tentpole robustness check: with
// at-least-once guarantees, a pipeline whose workers panic repeatedly
// must deliver every source record to the sink at least once — replay
// from the source logs covers everything a crash destroyed. Loss is
// measured two ways: committed-but-undelivered offsets (holes in the
// sink dedup windows) and distinct sink deliveries vs distinct source
// offsets.
func TestEngineAtLeastOnceZeroLoss(t *testing.T) {
	g := buildChain(t, 2, 2, model.PatternRoundRobin)
	var emitted, received, seen atomic.Int64

	store, err := ckpt.OpenFileStore(filepath.Join(t.TempDir(), "ckpt.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.ConstantSchedule{RatePerSecond: 300, Length: 1.5},
			Emit: func(ctx *Context) {
				n := emitted.Add(1)
				ctx.Emit(0, Record{Key: uint64(n)})
			},
		}).
		SetUDF("work", func(int) UDF { return &panicky{n: &seen, every: 100} }).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received} })

	rec := obs.NewRecorder(0)
	cfg := guaranteeConfig(21, ckpt.AtLeastOnce, rec)
	cfg.CheckpointStore = store
	exec, err := New(cfg).Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := exec.Wait(ctx); err != nil {
		t.Fatalf("job should survive UDF panics, got: %v", err)
	}

	if exec.TaskFailures() == 0 {
		t.Fatal("test needs at least one supervised failure to exercise replay")
	}
	if exec.LingerTimeouts() != 0 {
		t.Errorf("LingerTimeouts = %d, want 0 (tail never checkpointed)", exec.LingerTimeouts())
	}

	// Zero loss, stated exactly: every distinct source offset reached the
	// sink, and no committed offset is missing from the dedup windows.
	distinct, dups, holes := exec.SinkDeliveries()
	if holes != 0 {
		t.Errorf("holes = %d, want 0 (committed offsets never delivered)", holes)
	}
	if src := exec.SourceRecords(); distinct != src {
		t.Errorf("distinct sink deliveries = %d, want %d (distinct source offsets)", distinct, src)
	}
	if emitted.Load() != exec.SourceRecords() {
		t.Errorf("emitted %d but SourceRecords %d (replays must not re-stamp)", emitted.Load(), exec.SourceRecords())
	}
	// At-least-once delivers duplicates instead of suppressing them.
	if received.Load() != distinct+dups {
		t.Errorf("sink saw %d records, want distinct+dups = %d", received.Load(), distinct+dups)
	}
	if received.Load() < emitted.Load() {
		t.Errorf("received %d < emitted %d: records lost under at-least-once", received.Load(), emitted.Load())
	}
	if exec.ReplayedRecords() == 0 {
		t.Error("failures happened but no records were replayed")
	}

	committed, _ := exec.Checkpoints()
	if committed == 0 {
		t.Fatal("no checkpoint committed")
	}
	// The final committed checkpoint must cover the whole stream (sources
	// linger until their log is committed).
	ck, ok := exec.LastCheckpoint()
	if !ok {
		t.Fatal("LastCheckpoint: none after committed > 0")
	}
	if got := ck.TotalOffsets(); got != uint64(emitted.Load()) {
		t.Errorf("final checkpoint covers %d offsets, want %d", got, emitted.Load())
	}
	// And it survived the trip through the file store.
	stored, ok, err := store.Latest()
	if err != nil || !ok || stored.ID != ck.ID {
		t.Errorf("file store Latest = (%+v, %v, %v), want checkpoint %d", stored, ok, err, ck.ID)
	}

	// Lifecycle audit trail: starts for every checkpoint, commits carry
	// id and duration, at least one replay event.
	byKind := eventsByKind(rec)
	if starts, commits := len(byKind[obs.KindCheckpointStart]), len(byKind[obs.KindCheckpointCommit]); starts < commits || commits != int(committed) {
		t.Errorf("checkpoint events: %d starts / %d commits, execution committed %d", starts, commits, committed)
	}
	for _, ev := range byKind[obs.KindCheckpointCommit] {
		if ev.Lifecycle.CheckpointID <= 0 {
			t.Errorf("commit event without checkpoint id: %+v", ev.Lifecycle)
		}
	}
	if len(byKind[obs.KindReplay]) == 0 {
		t.Error("no replay lifecycle event recorded")
	}
}

// dedupSink counts deliveries and flags any record seen twice — under
// exactly-once the engine must suppress replay duplicates before the
// UDF runs.
type dedupSink struct {
	count   *atomic.Int64
	seen    *sync.Map // key -> struct{}
	doubled *atomic.Int64
}

func (s *dedupSink) Process(_ *Context, rec Record) {
	s.count.Add(1)
	if _, loaded := s.seen.LoadOrStore(rec.Key, struct{}{}); loaded {
		s.doubled.Add(1)
	}
}

// TestEngineExactlyOnceNoDuplicates: with exactly-once guarantees the
// sink UDF observes every source record exactly once — replay covers
// crashes (zero loss) and the dedup wrapper suppresses the duplicates
// replay necessarily creates.
func TestEngineExactlyOnceNoDuplicates(t *testing.T) {
	g := buildChain(t, 2, 2, model.PatternRoundRobin)
	var emitted, received, seen, doubled atomic.Int64

	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.ConstantSchedule{RatePerSecond: 300, Length: 1.5},
			Emit: func(ctx *Context) {
				n := emitted.Add(1)
				ctx.Emit(0, Record{Key: uint64(n)})
			},
		}).
		SetUDF("work", func(int) UDF { return &panicky{n: &seen, every: 100} }).
		SetUDF("sink", func(int) UDF { return &dedupSink{count: &received, seen: &sync.Map{}, doubled: &doubled} })

	exec, err := New(guaranteeConfig(22, ckpt.ExactlyOnce, nil)).Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := exec.Wait(ctx); err != nil {
		t.Fatalf("job should survive UDF panics, got: %v", err)
	}

	if exec.TaskFailures() == 0 {
		t.Fatal("test needs at least one supervised failure to exercise dedup")
	}
	if doubled.Load() != 0 {
		t.Errorf("sink saw %d records more than once under exactly-once", doubled.Load())
	}
	if received.Load() != emitted.Load() {
		t.Errorf("sink deliveries = %d, want exactly %d (emitted)", received.Load(), emitted.Load())
	}
	distinct, _, holes := exec.SinkDeliveries()
	if holes != 0 {
		t.Errorf("holes = %d, want 0", holes)
	}
	if distinct != emitted.Load() {
		t.Errorf("distinct = %d, want %d", distinct, emitted.Load())
	}
}

// holdingForwarder forwards records, but while hold is set it blocks
// inside Process (reporting via blocked) — pinning any barrier behind
// the record being processed so an in-flight checkpoint provably
// cannot complete until released.
type holdingForwarder struct {
	hold    *atomic.Bool
	blocked *atomic.Int64
}

func (h *holdingForwarder) Process(ctx *Context, rec Record) {
	if h.hold.Load() {
		h.blocked.Add(1)
		for h.hold.Load() {
			time.Sleep(time.Millisecond)
		}
	}
	ctx.Emit(0, rec)
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEngineGuaranteeChurnAlignment (satellite): barrier checkpoints
// racing scale-up/scale-down churn must neither deadlock a task on a
// stale alignment count nor commit an inconsistent cut. The test makes
// the race deterministic: workers are blocked mid-record so the next
// checkpoint is provably stuck in alignment, then the worker vertex is
// churned — the stuck checkpoint must abort, the job must still finish,
// and the zero-loss/zero-dup invariants must still hold.
func TestEngineGuaranteeChurnAlignment(t *testing.T) {
	g := buildChain(t, 2, 4, model.PatternRoundRobin)
	var emitted, received atomic.Int64
	var hold atomic.Bool
	var blocked atomic.Int64

	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.ConstantSchedule{RatePerSecond: 400, Length: 1.2},
			Emit: func(ctx *Context) {
				n := emitted.Add(1)
				ctx.Emit(0, Record{Key: uint64(n)})
			},
		}).
		SetUDF("work", func(int) UDF { return &holdingForwarder{hold: &hold, blocked: &blocked} }).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received} })

	cfg := guaranteeConfig(23, ckpt.ExactlyOnce, nil)
	cfg.CheckpointInterval = 10 * time.Millisecond
	cfg.DrainIdle = 50 * time.Millisecond
	exec, err := New(cfg).Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Two churn rounds, each against a checkpoint pinned in alignment:
	// once adding a consumer, once removing one.
	for round, churn := range []func(){
		func() { exec.ex.scaleUp("work", 1) },
		func() { exec.ex.scaleDown("work", 1) },
	} {
		base := blocked.Load()
		workers := int64(exec.Parallelism("work"))
		hold.Store(true)
		waitUntil(t, "all workers to block mid-record", 5*time.Second, func() bool {
			return blocked.Load() >= base+workers
		})
		// With every worker stuck inside Process, no worker can ack, so an
		// in-flight checkpoint cannot fully commit before the churn below
		// lands: either the abort-in-flight path or the commit-time
		// generation check must discard it.
		waitUntil(t, "a checkpoint in flight", 5*time.Second, func() bool {
			return exec.ex.coord.inFlight() != 0
		})
		churn()
		hold.Store(false)
		_ = round
		// Let drains settle before the next round.
		time.Sleep(100 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := exec.Wait(ctx); err != nil {
		t.Fatalf("churned job did not finish: %v", err)
	}

	committed, aborted := exec.Checkpoints()
	if committed == 0 {
		t.Error("no checkpoint committed after churn settled")
	}
	if aborted == 0 {
		t.Error("churn racing checkpoints should abort at least one (else the race never happened)")
	}
	if received.Load() != emitted.Load() {
		t.Errorf("sink deliveries = %d, want %d", received.Load(), emitted.Load())
	}
	if _, _, holes := exec.SinkDeliveries(); holes != 0 {
		t.Errorf("holes = %d, want 0", holes)
	}
	if exec.LingerTimeouts() != 0 {
		t.Errorf("LingerTimeouts = %d, want 0", exec.LingerTimeouts())
	}
}

// TestEngineShardedChurnAlignment (satellite): the counting-alignment
// invariants must survive sharded source emission. With SourceShards=3
// the source vertex runs three emitter lanes, each owning a disjoint
// offset range through its own sourceLog and its own set of outbound
// rings — so a barrier id is injected once per offset-shard and a
// consumer's alignment count is the number of producer *emitters*, not
// producer tasks. Churn races checkpoints exactly as in the unsharded
// test; the cut must stay consistent: no deadlock on a stale count, no
// holes, no lost or duplicated offsets across shards.
func TestEngineShardedChurnAlignment(t *testing.T) {
	g := buildChain(t, 2, 4, model.PatternRoundRobin)
	var emitted, received atomic.Int64
	var hold atomic.Bool
	var blocked atomic.Int64

	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.ConstantSchedule{RatePerSecond: 400, Length: 1.2},
			Emit: func(ctx *Context) {
				n := emitted.Add(1)
				ctx.Emit(0, Record{Key: uint64(n)})
			},
		}).
		SetUDF("work", func(int) UDF { return &holdingForwarder{hold: &hold, blocked: &blocked} }).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received} })

	cfg := guaranteeConfig(29, ckpt.ExactlyOnce, nil)
	cfg.SourceShards = 3
	cfg.CheckpointInterval = 10 * time.Millisecond
	cfg.DrainIdle = 50 * time.Millisecond
	exec, err := New(cfg).Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The source task must actually be sharded: three emitter lanes with
	// three distinct source logs (distinct srcIDs = disjoint offsets).
	exec.ex.mu.Lock()
	srcTasks := exec.ex.vertices["src"].tasks
	shardIDs := map[int32]bool{}
	for _, st := range srcTasks {
		for _, e := range st.emitters {
			if e.srcLog == nil {
				t.Error("sharded source emitter has no source log")
				continue
			}
			shardIDs[e.srcLog.id] = true
		}
	}
	exec.ex.mu.Unlock()
	if len(shardIDs) != 3 {
		t.Fatalf("source runs %d distinct offset shards, want 3", len(shardIDs))
	}

	for _, churn := range []func(){
		func() { exec.ex.scaleUp("work", 1) },
		func() { exec.ex.scaleDown("work", 1) },
	} {
		base := blocked.Load()
		workers := int64(exec.Parallelism("work"))
		hold.Store(true)
		waitUntil(t, "all workers to block mid-record", 5*time.Second, func() bool {
			return blocked.Load() >= base+workers
		})
		waitUntil(t, "a checkpoint in flight", 5*time.Second, func() bool {
			return exec.ex.coord.inFlight() != 0
		})
		churn()
		hold.Store(false)
		time.Sleep(100 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := exec.Wait(ctx); err != nil {
		t.Fatalf("sharded churned job did not finish: %v", err)
	}

	committed, aborted := exec.Checkpoints()
	if committed == 0 {
		t.Error("no checkpoint committed after churn settled")
	}
	if aborted == 0 {
		t.Error("churn racing checkpoints should abort at least one (else the race never happened)")
	}
	if received.Load() != emitted.Load() {
		t.Errorf("sink deliveries = %d, want %d", received.Load(), emitted.Load())
	}
	// Offsets are stamped once across the shards: disjoint ranges mean
	// SourceRecords (the union of the three logs) equals the emit count.
	if exec.SourceRecords() != emitted.Load() {
		t.Errorf("SourceRecords = %d, want %d (shards must own disjoint offsets)", exec.SourceRecords(), emitted.Load())
	}
	distinct, _, holes := exec.SinkDeliveries()
	if holes != 0 {
		t.Errorf("holes = %d, want 0", holes)
	}
	if distinct != emitted.Load() {
		t.Errorf("distinct sink deliveries = %d, want %d", distinct, emitted.Load())
	}
	if exec.LingerTimeouts() != 0 {
		t.Errorf("LingerTimeouts = %d, want 0", exec.LingerTimeouts())
	}
}

// TestLostRecordsMidBatchPanic (satellite) pins the panic accounting
// semantics in handleBatch: the record being processed when the UDF
// panics and the unprocessed remainder of its batch are lost; already-
// completed records are not.
func TestLostRecordsMidBatchPanic(t *testing.T) {
	ex := &execution{
		cfg:   Config{}.withDefaults(),
		modes: map[string]model.LatencyMode{"v": model.LatencyReadReady},
	}
	id := model.TaskID{Vertex: "v", Index: 0}
	tk := &task{
		id:       id,
		ex:       ex,
		reporter: qos.NewTaskReporter(id),
		chanReps: make(map[model.ChannelID]*qos.ChannelReporter),
	}
	tke := &emitter{t: tk}
	tk.emitters = []*emitter{tke}
	tk.ctx = Context{t: tk, e: tke}
	var processed int
	tk.udf = UDFFunc(func(*Context, Record) {
		processed++
		if processed == 3 {
			panic("mid-batch")
		}
	})
	b := batch{items: make([]Record, 5), oldestBuf: time.Now(), shipped: time.Now()}

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("UDF panic must propagate to the supervisor defer")
			}
		}()
		tk.handleBatch(b)
	}()

	// Records 1 and 2 completed; record 3 died mid-Process; 4 and 5 never
	// ran: exactly 3 lost.
	if got := ex.lostRecords.Load(); got != 3 {
		t.Errorf("lostRecords = %d, want 3 (panicking record + remainder)", got)
	}
	if got := tk.processed.Load(); got != 2 {
		t.Errorf("processed = %d, want 2 (completed records only)", got)
	}
}

// TestLostRecordsDeadConsumerShip (satellite) pins the other loss path:
// a shipment into a dead consumer's ring (closed by the master after
// the crash, or dead channel observed while the ring is full) counts
// every record in the batch as lost, exactly once, and recycles the
// slice.
func TestLostRecordsDeadConsumerShip(t *testing.T) {
	ex := &execution{cfg: Config{}.withDefaults()}
	producer := &task{ex: ex, quit: make(chan struct{})}
	pe := &emitter{t: producer}
	producer.emitters = []*emitter{pe}
	consumer := &task{dead: make(chan struct{})}
	close(consumer.dead)
	deadRing := ring.New[batch](4)
	deadRing.Close()

	pe.ship([]shipment{
		{ref: &channelRef{to: consumer, ring: deadRing}, b: batch{items: make([]Record, 7)}},
		{ref: &channelRef{to: consumer, ring: deadRing}, b: batch{items: make([]Record, 2)}},
	})
	if got := ex.lostRecords.Load(); got != 9 {
		t.Errorf("lostRecords = %d, want 9 (both dead-consumer batches)", got)
	}

	// A live consumer with ring room loses nothing.
	live := &task{dead: make(chan struct{}), wakeCh: make(chan struct{}, 1)}
	liveRing := ring.New[batch](4)
	pe.ship([]shipment{{ref: &channelRef{to: live, ring: liveRing}, b: batch{items: make([]Record, 4)}}})
	if got := ex.lostRecords.Load(); got != 9 {
		t.Errorf("lostRecords = %d after live ship, want still 9", got)
	}
	b, ok := liveRing.Pop()
	if !ok || len(b.items) != 4 {
		t.Errorf("live consumer ring got ok=%v len=%d, want a 4-record batch", ok, len(b.items))
	}
}

// restartProbe panics once per configured epoch (spaced beyond the
// backoff-reset window) so every supervised restart should start from a
// fresh backoff.
type restartProbe struct {
	mu        sync.Mutex
	lastPanic time.Time
	panics    int
	maxPanics int
	gap       time.Duration
}

func (p *restartProbe) Process(ctx *Context, rec Record) {
	p.mu.Lock()
	due := p.panics < p.maxPanics && (p.lastPanic.IsZero() || time.Since(p.lastPanic) > p.gap)
	if due {
		p.panics++
		p.lastPanic = time.Now()
	}
	p.mu.Unlock()
	if due {
		panic("spaced failure")
	}
	ctx.Emit(0, rec)
}

// TestBackoffResetAfterStableRun (satellite): failures spaced further
// apart than BackoffResetAfter must each restart at attempt 1 — the
// stable run in between earns the base backoff back. Without the reset
// the recorded attempts would climb 1, 2, 3.
func TestBackoffResetAfterStableRun(t *testing.T) {
	g := buildChain(t, 1, 1, model.PatternRoundRobin)
	var emitted, received atomic.Int64
	probe := &restartProbe{maxPanics: 3, gap: 200 * time.Millisecond}

	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.ConstantSchedule{RatePerSecond: 300, Length: 1.2},
			Emit: func(ctx *Context) {
				n := emitted.Add(1)
				ctx.Emit(0, Record{Key: uint64(n)})
			},
		}).
		SetUDF("work", func(int) UDF { return probe }).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received} })

	rec := obs.NewRecorder(0)
	exec, err := New(Config{
		Seed:               31,
		AdjustmentInterval: 25 * time.Millisecond,
		BackoffResetAfter:  100 * time.Millisecond,
		RestartBackoff:     2 * time.Millisecond,
		RestartBackoffCap:  10 * time.Millisecond,
		MaxTaskRestarts:    3,
		Recorder:           rec,
	}).Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := exec.Wait(ctx); err != nil {
		t.Fatalf("spaced failures must never degrade the vertex: %v", err)
	}
	if got := exec.TaskFailures(); got != 3 {
		t.Fatalf("TaskFailures = %d, want 3", got)
	}
	restarts := eventsByKind(rec)[obs.KindTaskRestart]
	if len(restarts) != 3 {
		t.Fatalf("task_restart events: got %d, want 3", len(restarts))
	}
	for i, ev := range restarts {
		if ev.Lifecycle.Attempts != 1 {
			t.Errorf("restart %d recorded attempt %d, want 1 (backoff reset between spaced failures)",
				i, ev.Lifecycle.Attempts)
		}
	}
}

// TestEngineSteadyStateAllocsWithGuarantees (satellite) extends the
// alloc guard to the guarantee-enabled data plane: offset stamping, the
// replay log, barrier traffic and sink dedup together must keep the
// steady state at or under the same 0.5 allocs/record budget as the
// plain plane.
func TestEngineSteadyStateAllocsWithGuarantees(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock engine runs")
	}
	var records float64
	allocs := testing.AllocsPerRun(3, func() {
		records = allocGuaranteeRun(t)
	})
	if perRecord := allocs / records; perRecord > 0.5 {
		t.Errorf("guarantee-enabled allocations: %.3f allocs/record (%.0f allocs / %.0f records), want ≤ 0.5",
			perRecord, allocs, records)
	}
}

// allocGuaranteeRun mirrors allocEngineRun with exactly-once guarantees
// and a fast checkpoint cadence.
func allocGuaranteeRun(t *testing.T) float64 {
	t.Helper()
	g := buildChain(t, 2, 2, model.PatternRoundRobin)
	var emitted, received atomic.Int64
	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.ConstantSchedule{RatePerSecond: 1000, Length: 0.5},
			Emit: func(ctx *Context) {
				n := emitted.Add(64)
				for i := 0; i < 64; i++ {
					ctx.Emit(0, Record{Key: uint64(n) + uint64(i)})
				}
			},
		}).
		SetUDF("work", func(int) UDF { return &forwarder{} }).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received} }).
		SetEdgeBatching("src", "work", BatchingAdaptive).
		SetEdgeBatching("work", "sink", BatchingAdaptive)
	seq, err := model.ParseSequence(g, "src->work", "work", "work->sink")
	if err != nil {
		t.Fatal(err)
	}
	spec.AddConstraint(&model.Constraint{
		Name: "alloc", Sequence: seq,
		Bound: 20 * time.Millisecond, Window: 10 * time.Second,
	})
	exec, err := New(Config{
		Seed:                1,
		MeasurementInterval: 100 * time.Millisecond,
		AdjustmentInterval:  250 * time.Millisecond,
		Guarantee:           ckpt.ExactlyOnce,
		CheckpointInterval:  50 * time.Millisecond,
	}).Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := exec.Wait(ctx); err != nil {
		t.Fatalf("alloc run did not finish: %v", err)
	}
	if received.Load() == 0 {
		t.Fatal("no records delivered")
	}
	if _, _, holes := exec.SinkDeliveries(); holes != 0 {
		t.Fatalf("holes = %d in a failure-free run", holes)
	}
	return float64(received.Load())
}
