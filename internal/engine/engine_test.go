package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nephelix/internal/model"
	"nephelix/internal/probe"
	"nephelix/internal/workload"
)

// buildChain creates src -> work -> sink with the given parallelism and
// pattern on both edges.
func buildChain(t *testing.T, workP, maxP int, pattern model.WiringPattern) *model.JobGraph {
	t.Helper()
	g := model.NewJobGraph()
	for _, v := range []model.JobVertex{
		{Name: "src", Parallelism: 1, MinParallelism: 1, MaxParallelism: 1},
		{Name: "work", Parallelism: workP, MinParallelism: 1, MaxParallelism: maxP},
		{Name: "sink", Parallelism: 1, MinParallelism: 1, MaxParallelism: 1},
	} {
		if err := g.AddVertex(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge("src", "work", pattern); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("work", "sink", model.PatternRoundRobin); err != nil {
		t.Fatal(err)
	}
	return g
}

// countingSink counts records and checks sampled latency wiring.
type countingSink struct {
	count *atomic.Int64
	probe *probe.Probe
}

func (s *countingSink) Process(_ *Context, rec Record) {
	s.count.Add(1)
	if s.probe != nil && rec.Sampled {
		s.probe.Record(time.Since(rec.EmitTime).Seconds())
	}
}

// forwarder forwards records downstream, optionally tagging each with the
// handling task index.
type forwarder struct {
	tag     bool
	handled *sync.Map // key -> task index (for partition checks)
	index   int
}

func (f *forwarder) Process(ctx *Context, rec Record) {
	if f.handled != nil {
		if prev, loaded := f.handled.LoadOrStore(rec.Key, ctx.TaskIndex()); loaded && prev.(int) != ctx.TaskIndex() {
			f.handled.Store(rec.Key, -1) // same key seen on two tasks
		}
	}
	ctx.Emit(0, rec)
}

func waitDone(t *testing.T, exec *Execution, timeout time.Duration) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := exec.Wait(ctx); err != nil {
		t.Fatalf("execution did not finish: %v", err)
	}
}

func TestEngineEndToEndDelivery(t *testing.T) {
	g := buildChain(t, 3, 3, model.PatternRoundRobin)
	var emitted, received atomic.Int64
	probes := probe.NewProbeSet()
	pr := probes.Probe("e2e")

	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.ConstantSchedule{RatePerSecond: 500, Length: 1.5},
			Emit: func(ctx *Context) {
				emitted.Add(1)
				ctx.Emit(0, Record{Key: uint64(emitted.Load()), EmitTime: time.Now(), Sampled: ctx.Sample()})
			},
			SampleProbability: 1,
		}).
		SetUDF("work", func(int) UDF { return &forwarder{} }).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received, probe: pr} })

	exec, err := New(Config{Seed: 1}).Submit(spec, probes)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, exec, 20*time.Second)

	if received.Load() != emitted.Load() {
		t.Errorf("delivery: emitted %d, received %d", emitted.Load(), received.Load())
	}
	if emitted.Load() < 400 {
		t.Errorf("source underran: %d emissions", emitted.Load())
	}
	if pr.TotalCount() == 0 {
		t.Error("no latency samples recorded")
	}
	if mean := pr.TotalMean(); mean <= 0 || mean > 1 {
		t.Errorf("implausible mean latency %v s", mean)
	}
}

func TestEngineKeyPartitioning(t *testing.T) {
	g := buildChain(t, 4, 4, model.PatternKeyBased)
	var emitted, received atomic.Int64
	handled := &sync.Map{}

	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.ConstantSchedule{RatePerSecond: 800, Length: 1},
			Emit: func(ctx *Context) {
				n := emitted.Add(1)
				ctx.Emit(0, Record{Key: uint64(n % 16)}) // 16 distinct keys
			},
		}).
		SetUDF("work", func(i int) UDF { return &forwarder{handled: handled, index: i} }).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received} })

	exec, err := New(Config{Seed: 2}).Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, exec, 20*time.Second)

	if received.Load() != emitted.Load() {
		t.Errorf("delivery: emitted %d, received %d", emitted.Load(), received.Load())
	}
	distinct := map[int]bool{}
	handled.Range(func(key, owner any) bool {
		if owner.(int) == -1 {
			t.Errorf("key %v processed by more than one task", key)
		}
		distinct[owner.(int)] = true
		return true
	})
	if len(distinct) < 2 {
		t.Errorf("keys not spread over tasks: %d owners", len(distinct))
	}
}

func TestEngineBroadcast(t *testing.T) {
	g := buildChain(t, 3, 3, model.PatternBroadcast)
	var emitted, workSeen, received atomic.Int64

	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.ConstantSchedule{RatePerSecond: 300, Length: 1},
			Emit: func(ctx *Context) {
				emitted.Add(1)
				ctx.Emit(0, Record{})
			},
		}).
		SetUDF("work", func(int) UDF {
			return UDFFunc(func(ctx *Context, rec Record) {
				workSeen.Add(1)
				if ctx.TaskIndex() == 0 {
					ctx.Emit(0, rec) // only one replica forwards
				}
			})
		}).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received} })

	exec, err := New(Config{Seed: 3}).Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, exec, 20*time.Second)

	if workSeen.Load() != 3*emitted.Load() {
		t.Errorf("broadcast fan-out: %d records seen by workers, want %d", workSeen.Load(), 3*emitted.Load())
	}
	if received.Load() != emitted.Load() {
		t.Errorf("sink received %d, want %d", received.Load(), emitted.Load())
	}
}

func TestEngineBackpressure(t *testing.T) {
	g := buildChain(t, 1, 1, model.PatternRoundRobin)
	var emitted, received atomic.Int64

	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			// Offered 2000/s against a consumer that can do ~500/s.
			Schedule: &workload.ConstantSchedule{RatePerSecond: 2000, Length: 1.0},
			Emit: func(ctx *Context) {
				emitted.Add(1)
				ctx.Emit(0, Record{})
			},
		}).
		SetUDF("work", func(int) UDF {
			return UDFFunc(func(ctx *Context, rec Record) {
				time.Sleep(2 * time.Millisecond) // service ≈ 2 ms
				ctx.Emit(0, rec)
			})
		}).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received} })

	exec, err := New(Config{Seed: 4, QueueCapacity: 4, MaxBatchRecords: 8}).Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, exec, 30*time.Second)

	// Backpressure must throttle the source well below the offered count
	// and nothing may be lost.
	if emitted.Load() > 1500 {
		t.Errorf("no backpressure: %d emissions of 2000 offered", emitted.Load())
	}
	if received.Load() != emitted.Load() {
		t.Errorf("loss under backpressure: emitted %d received %d", emitted.Load(), received.Load())
	}
}

func TestEngineElasticScalesUp(t *testing.T) {
	g := buildChain(t, 1, 8, model.PatternRoundRobin)
	var received atomic.Int64
	probes := probe.NewProbeSet()

	seq, err := model.ParseSequence(g, "src->work", "work", "work->sink")
	if err != nil {
		t.Fatal(err)
	}
	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.ConstantSchedule{RatePerSecond: 600, Length: 6},
			Emit: func(ctx *Context) {
				ctx.Emit(0, Record{EmitTime: time.Now(), Sampled: ctx.Sample()})
			},
		}).
		SetUDF("work", func(int) UDF {
			return UDFFunc(func(ctx *Context, rec Record) {
				// Service ≈ 3 ms: one task saturates at ~330/s; the offered
				// 600/s needs at least 2–3 tasks.
				busySpin(3 * time.Millisecond)
				ctx.Emit(0, rec)
			})
		}).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received} }).
		AddConstraint(&model.Constraint{
			Name: "c", Sequence: seq, Bound: 50 * time.Millisecond, Window: 10 * time.Second,
		})

	exec, err := New(Config{
		Seed:                5,
		Elastic:             true,
		MeasurementInterval: 100 * time.Millisecond,
		AdjustmentInterval:  400 * time.Millisecond,
	}).Submit(spec, probes)
	if err != nil {
		t.Fatal(err)
	}

	peak := 1
	deadline := time.Now().Add(30 * time.Second)
	for !exec.Done() && time.Now().Before(deadline) {
		if p := exec.Parallelism("work"); p > peak {
			peak = p
		}
		time.Sleep(50 * time.Millisecond)
	}
	waitDone(t, exec, 30*time.Second)

	if peak < 2 {
		t.Errorf("overloaded vertex never scaled up (peak %d)", peak)
	}
	ups, _ := exec.ScaleEvents()
	if ups == 0 {
		t.Error("no scale-up events recorded")
	}
	if received.Load() == 0 {
		t.Error("nothing delivered")
	}
}

// TestEngineRampIntoSaturationScalesUp steps the offered rate from well
// under one task's capacity to ~1.5x over it mid-run. Unlike
// TestEngineElasticScalesUp (saturated from the first interval), the
// bottleneck here must be detected from reports produced *while* the
// worker is saturated: a worker whose scan loop drains rings unboundedly
// (or grinds a backlog batch without flushing interval reports) goes
// stale in the master's freshness gating, coverage collapses, and the
// scaler skips the constraint exactly when ResolveBottlenecks should
// fire — the regression this test pins down.
func TestEngineRampIntoSaturationScalesUp(t *testing.T) {
	g := buildChain(t, 1, 8, model.PatternRoundRobin)
	var received atomic.Int64
	probes := probe.NewProbeSet()

	seq, err := model.ParseSequence(g, "src->work", "work", "work->sink")
	if err != nil {
		t.Fatal(err)
	}
	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			// 2 s at 100/s (ρ ≈ 0.3), then 4 s at 500/s (ρ ≈ 1.5), back
			// to 100/s.
			Schedule: &workload.StepSchedule{
				WarmUpRate: 100, StepDelta: 400, IncrementSteps: 1, StepDuration: 2,
			},
			Emit: func(ctx *Context) {
				ctx.Emit(0, Record{EmitTime: time.Now(), Sampled: ctx.Sample()})
			},
		}).
		SetUDF("work", func(int) UDF {
			return UDFFunc(func(ctx *Context, rec Record) {
				busySpin(3 * time.Millisecond)
				ctx.Emit(0, rec)
			})
		}).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received} }).
		AddConstraint(&model.Constraint{
			Name: "c", Sequence: seq, Bound: 50 * time.Millisecond, Window: 10 * time.Second,
		})

	exec, err := New(Config{
		Seed:                11,
		Elastic:             true,
		MeasurementInterval: 100 * time.Millisecond,
		AdjustmentInterval:  400 * time.Millisecond,
	}).Submit(spec, probes)
	if err != nil {
		t.Fatal(err)
	}

	peak := 1
	deadline := time.Now().Add(40 * time.Second)
	for !exec.Done() && time.Now().Before(deadline) {
		if p := exec.Parallelism("work"); p > peak {
			peak = p
		}
		time.Sleep(50 * time.Millisecond)
	}
	waitDone(t, exec, 30*time.Second)

	if peak < 2 {
		t.Errorf("vertex saturated mid-run never scaled up (peak %d)", peak)
	}
	ups, _ := exec.ScaleEvents()
	if ups == 0 {
		t.Error("no scale-up events recorded")
	}
	if received.Load() == 0 {
		t.Error("nothing delivered")
	}
}

// busySpin burns CPU for roughly d (sleep-based services give the sampled
// service times the engine's QoS plane expects to see as busy time).
func busySpin(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
		runtime.Gosched()
	}
}

func TestEngineStop(t *testing.T) {
	g := buildChain(t, 1, 1, model.PatternRoundRobin)
	var received atomic.Int64
	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.ConstantSchedule{RatePerSecond: 100, Length: 3600}, // effectively endless
			Emit:     func(ctx *Context) { ctx.Emit(0, Record{}) },
		}).
		SetUDF("work", func(int) UDF { return &forwarder{} }).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received} })

	exec, err := New(Config{Seed: 6}).Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	exec.Stop()
	waitDone(t, exec, 20*time.Second)
	if received.Load() == 0 {
		t.Error("nothing processed before stop")
	}
}

func TestEngineTimerUDF(t *testing.T) {
	g := buildChain(t, 1, 1, model.PatternRoundRobin)
	g.Vertex("work").LatencyMode = model.LatencyReadWrite
	var windows, received atomic.Int64

	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.ConstantSchedule{RatePerSecond: 200, Length: 1.2},
			Emit:     func(ctx *Context) { ctx.Emit(0, Record{}) },
		}).
		SetUDF("work", func(int) UDF { return &windowUDF{windows: &windows} }).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received} })

	exec, err := New(Config{Seed: 7}).Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, exec, 20*time.Second)
	// 1.2 s of 100 ms windows ≈ 12 emissions (minus drain raggedness).
	if w := windows.Load(); w < 6 || w > 20 {
		t.Errorf("window emissions: got %d, want ≈12", w)
	}
	if received.Load() != windows.Load() {
		t.Errorf("sink received %d, want %d window records", received.Load(), windows.Load())
	}
}

// windowUDF counts records and emits one summary record per 100 ms.
type windowUDF struct {
	count   int
	windows *atomic.Int64
}

func (w *windowUDF) Process(_ *Context, _ Record) { w.count++ }

func (w *windowUDF) TimerInterval() time.Duration { return 100 * time.Millisecond }

func (w *windowUDF) OnTimer(ctx *Context) {
	if w.count == 0 {
		return
	}
	w.windows.Add(1)
	ctx.Emit(0, Record{Key: uint64(w.count)})
	w.count = 0
}

func TestEngineSpecValidation(t *testing.T) {
	g := buildChain(t, 1, 1, model.PatternRoundRobin)
	eng := New(Config{})

	// Missing UDFs.
	if _, err := eng.Submit(NewJobSpec(g), nil); err == nil {
		t.Error("spec without UDFs accepted")
	}
	// Source on a vertex with inputs.
	bad := NewJobSpec(g).
		SetSource("src", SourceSpec{Schedule: &workload.ConstantSchedule{RatePerSecond: 1, Length: 1}, Emit: func(*Context) {}}).
		SetSource("work", SourceSpec{Schedule: &workload.ConstantSchedule{RatePerSecond: 1, Length: 1}, Emit: func(*Context) {}}).
		SetUDF("sink", func(int) UDF { return &forwarder{} })
	if _, err := eng.Submit(bad, nil); err == nil {
		t.Error("source with inbound edges accepted")
	}
	// Elastic without constraints.
	ok := NewJobSpec(g).
		SetSource("src", SourceSpec{Schedule: &workload.ConstantSchedule{RatePerSecond: 1, Length: 1}, Emit: func(*Context) {}}).
		SetUDF("work", func(int) UDF { return &forwarder{} }).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &atomic.Int64{}} })
	if _, err := New(Config{Elastic: true}).Submit(ok, nil); err == nil {
		t.Error("elastic execution without constraints accepted")
	}
}

func TestEngineNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		g := buildChain(t, 2, 2, model.PatternRoundRobin)
		var received atomic.Int64
		spec := NewJobSpec(g).
			SetSource("src", SourceSpec{
				Schedule: &workload.ConstantSchedule{RatePerSecond: 200, Length: 0.5},
				Emit:     func(ctx *Context) { ctx.Emit(0, Record{}) },
			}).
			SetUDF("work", func(int) UDF { return &forwarder{} }).
			SetUDF("sink", func(int) UDF { return &countingSink{count: &received} })
		exec, err := New(Config{Seed: int64(i)}).Submit(spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, exec, 20*time.Second)
	}
	// Allow the runtime a moment to unwind.
	time.Sleep(200 * time.Millisecond)
	after := runtime.NumGoroutine()
	if after > before+5 {
		t.Errorf("goroutine leak: %d before, %d after", before, after)
	}
}

// multiEmitter sends each record on both outgoing edges (like the
// paper's TweetSource).
func TestEngineMultiOutEdges(t *testing.T) {
	g := model.NewJobGraph()
	for _, v := range []model.JobVertex{
		{Name: "src", Parallelism: 1, MinParallelism: 1, MaxParallelism: 1},
		{Name: "a", Parallelism: 2, MinParallelism: 2, MaxParallelism: 2},
		{Name: "b", Parallelism: 1, MinParallelism: 1, MaxParallelism: 1},
		{Name: "sink", Parallelism: 1, MinParallelism: 1, MaxParallelism: 1},
	} {
		if err := g.AddVertex(v); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"src", "a"}, {"src", "b"}, {"a", "sink"}, {"b", "sink"}} {
		if err := g.AddEdge(e[0], e[1], model.PatternRoundRobin); err != nil {
			t.Fatal(err)
		}
	}
	var emitted, viaA, viaB, sunk atomic.Int64
	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.ConstantSchedule{RatePerSecond: 400, Length: 1},
			Emit: func(ctx *Context) {
				emitted.Add(1)
				ctx.Emit(0, Record{}) // edge src->a
				ctx.Emit(1, Record{}) // edge src->b
			},
		}).
		SetUDF("a", func(int) UDF {
			return UDFFunc(func(ctx *Context, rec Record) { viaA.Add(1); ctx.Emit(0, rec) })
		}).
		SetUDF("b", func(int) UDF {
			return UDFFunc(func(ctx *Context, rec Record) { viaB.Add(1); ctx.Emit(0, rec) })
		}).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &sunk} })
	exec, err := New(Config{Seed: 11}).Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, exec, 20*time.Second)
	if viaA.Load() != emitted.Load() || viaB.Load() != emitted.Load() {
		t.Errorf("fan-out: emitted %d, viaA %d, viaB %d", emitted.Load(), viaA.Load(), viaB.Load())
	}
	if sunk.Load() != 2*emitted.Load() {
		t.Errorf("sink: got %d, want %d", sunk.Load(), 2*emitted.Load())
	}
}

// TestEngineElasticScalesDown: after a load drop the scaler removes tasks
// without losing records.
func TestEngineElasticScalesDown(t *testing.T) {
	g := buildChain(t, 4, 8, model.PatternRoundRobin)
	var emitted, received atomic.Int64
	seq, err := model.ParseSequence(g, "src->work", "work", "work->sink")
	if err != nil {
		t.Fatal(err)
	}
	// Load falls off a cliff after 1.5 s, then trickles for 4.5 s giving
	// the scaler time to shrink the over-provisioned vertex.
	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.StepSchedule{WarmUpRate: 400, StepDelta: 1, IncrementSteps: 1, StepDuration: 2},
			Emit: func(ctx *Context) {
				emitted.Add(1)
				ctx.Emit(0, Record{})
			},
		}).
		SetUDF("work", func(int) UDF {
			return UDFFunc(func(ctx *Context, rec Record) {
				busySpin(500 * time.Microsecond)
				ctx.Emit(0, rec)
			})
		}).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received} }).
		AddConstraint(&model.Constraint{
			Name: "c", Sequence: seq, Bound: 100 * time.Millisecond, Window: 10 * time.Second,
		})
	exec, err := New(Config{
		Seed:                12,
		Elastic:             true,
		MeasurementInterval: 100 * time.Millisecond,
		AdjustmentInterval:  300 * time.Millisecond,
	}).Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	minP := 4
	deadline := time.Now().Add(30 * time.Second)
	for !exec.Done() && time.Now().Before(deadline) {
		if p := exec.Parallelism("work"); p > 0 && p < minP {
			minP = p
		}
		time.Sleep(50 * time.Millisecond)
	}
	waitDone(t, exec, 20*time.Second)
	if minP >= 4 {
		t.Errorf("over-provisioned vertex never scaled down (min %d)", minP)
	}
	if received.Load() != emitted.Load() {
		t.Errorf("loss across scale-down: emitted %d received %d", emitted.Load(), received.Load())
	}
}

// TestEngineFixedBatching: a fixed-batch edge delivers in full batches
// with much higher latency than instant flushing.
func TestEngineFixedBatching(t *testing.T) {
	g := buildChain(t, 1, 1, model.PatternRoundRobin)
	probes := probe.NewProbeSet()
	pr := probes.Probe("e2e")
	var received atomic.Int64
	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule:          &workload.ConstantSchedule{RatePerSecond: 100, Length: 2},
			SampleProbability: 1,
			Emit: func(ctx *Context) {
				ctx.Emit(0, Record{EmitTime: time.Now(), Sampled: true})
			},
		}).
		SetUDF("work", func(int) UDF { return &forwarder{} }).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received, probe: pr} }).
		SetEdgeBatching("src", "work", BatchingFixed).
		SetEdgeBatching("work", "sink", BatchingFixed)
	exec, err := New(Config{Seed: 13, MaxBatchRecords: 64}).Submit(spec, probes)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, exec, 20*time.Second)
	// 64-record batches at 100/s fill in 640 ms; mean wait far above the
	// sub-ms instant-flush latency.
	if mean := pr.TotalMean(); mean < 0.050 {
		t.Errorf("fixed batching mean latency %.4f s implausibly low", mean)
	}
	if received.Load() == 0 {
		t.Error("nothing delivered")
	}
}

// TestEngineCPUUtilization: the utilization metric reflects UDF busy time.
func TestEngineCPUUtilization(t *testing.T) {
	g := buildChain(t, 1, 1, model.PatternRoundRobin)
	var received atomic.Int64
	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.ConstantSchedule{RatePerSecond: 200, Length: 1.5},
			Emit:     func(ctx *Context) { ctx.Emit(0, Record{}) },
		}).
		SetUDF("work", func(int) UDF {
			return UDFFunc(func(ctx *Context, rec Record) {
				busySpin(2 * time.Millisecond) // ρ ≈ 0.4 at 200/s
				ctx.Emit(0, rec)
			})
		}).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received} })
	exec, err := New(Config{Seed: 14}).Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, exec, 20*time.Second)
	util := exec.CPUUtilization()
	// 3 tasks total, one ~40% busy → overall ≈ 13%; accept a broad band.
	if util < 0.02 || util > 0.6 {
		t.Errorf("utilization %.3f outside plausible band", util)
	}
}

func TestEnginePoolTooSmall(t *testing.T) {
	g := buildChain(t, 4, 4, model.PatternRoundRobin)
	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.ConstantSchedule{RatePerSecond: 1, Length: 1},
			Emit:     func(ctx *Context) { ctx.Emit(0, Record{}) },
		}).
		SetUDF("work", func(int) UDF { return &forwarder{} }).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &atomic.Int64{}} })
	// 6 tasks needed, 1 worker × 4 slots available.
	if _, err := New(Config{Workers: 1, SlotsPerWorker: 4}).Submit(spec, nil); err == nil {
		t.Error("submit succeeded despite exhausted slot pool")
	}
}

func TestEngineStopIsIdempotent(t *testing.T) {
	g := buildChain(t, 1, 1, model.PatternRoundRobin)
	var received atomic.Int64
	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.ConstantSchedule{RatePerSecond: 50, Length: 3600},
			Emit:     func(ctx *Context) { ctx.Emit(0, Record{}) },
		}).
		SetUDF("work", func(int) UDF { return &forwarder{} }).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received} })
	exec, err := New(Config{Seed: 21}).Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	exec.Stop()
	exec.Stop() // second call must be a no-op
	waitDone(t, exec, 20*time.Second)
	if !exec.Done() {
		t.Error("Done() false after Wait returned")
	}
}

func TestEngineSummaryPublished(t *testing.T) {
	g := buildChain(t, 2, 2, model.PatternRoundRobin)
	var received atomic.Int64
	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.ConstantSchedule{RatePerSecond: 300, Length: 2},
			Emit:     func(ctx *Context) { ctx.Emit(0, Record{}) },
		}).
		SetUDF("work", func(int) UDF {
			return UDFFunc(func(ctx *Context, rec Record) {
				busySpin(time.Millisecond)
				ctx.Emit(0, rec)
			})
		}).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received} })
	exec, err := New(Config{
		Seed:                22,
		MeasurementInterval: 100 * time.Millisecond,
		AdjustmentInterval:  400 * time.Millisecond,
	}).Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, exec, 20*time.Second)
	s := exec.Summary()
	if s == nil {
		t.Fatal("no summary published")
	}
	v, ok := s.Vertex("work")
	if !ok {
		t.Fatal("summary lacks the work vertex")
	}
	// The spin-based UDF's measured service time must be near 1 ms.
	if v.ServiceTimeMean < 0.0005 || v.ServiceTimeMean > 0.01 {
		t.Errorf("measured service time %.5f s, want ≈0.001", v.ServiceTimeMean)
	}
	if v.ArrivalRate() <= 0 {
		t.Error("no arrival rate measured")
	}
}

func TestEngineTimeSeries(t *testing.T) {
	g := buildChain(t, 1, 1, model.PatternRoundRobin)
	probes := probe.NewProbeSet()
	pr := probes.Probe("e2e")
	var received atomic.Int64
	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule:          &workload.ConstantSchedule{RatePerSecond: 200, Length: 1.5},
			SampleProbability: 1,
			Emit: func(ctx *Context) {
				ctx.Emit(0, Record{EmitTime: time.Now(), Sampled: true})
			},
		}).
		SetUDF("work", func(int) UDF { return &forwarder{} }).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received, probe: pr} })
	exec, err := New(Config{Seed: 30, RecordInterval: 200 * time.Millisecond}).Submit(spec, probes)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, exec, 20*time.Second)
	rows := exec.Rows()
	if len(rows) < 4 {
		t.Fatalf("time series too short: %d rows", len(rows))
	}
	last := rows[len(rows)-1]
	if last.Emitted == 0 || last.Parallelism["work"] == 0 {
		t.Errorf("row content missing: %+v", last)
	}
	samples := int64(0)
	for _, r := range rows {
		samples += r.Probes["e2e"].Count
	}
	if samples == 0 {
		t.Error("no probe samples across rows")
	}
	// Elapsed strictly increases.
	for i := 1; i < len(rows); i++ {
		if rows[i].Elapsed <= rows[i-1].Elapsed {
			t.Fatalf("rows out of order at %d", i)
		}
	}
}
