package engine

import (
	"math/rand"
	"testing"
	"time"
)

func TestBackoffExponentialAndCap(t *testing.T) {
	b := NewBackoff(10*time.Millisecond, 80*time.Millisecond, 0, rand.NewSource(1))
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
		80 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Errorf("attempt %d: got %v, want %v", i, got, w)
		}
	}
	if b.Attempts() != len(want) {
		t.Errorf("Attempts() = %d, want %d", b.Attempts(), len(want))
	}
}

func TestBackoffDeterministicJitter(t *testing.T) {
	mk := func() *Backoff {
		return NewBackoff(10*time.Millisecond, time.Second, 0.2, rand.NewSource(42))
	}
	a, b := mk(), mk()
	for i := 0; i < 12; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	base, cap := 10*time.Millisecond, 160*time.Millisecond
	b := NewBackoff(base, cap, 0.5, rand.NewSource(7))
	for i := 0; i < 64; i++ {
		nominal := base << uint(i)
		if nominal > cap || nominal <= 0 {
			nominal = cap
		}
		got := b.Next()
		lo := time.Duration(float64(nominal) * 0.5)
		hi := time.Duration(float64(nominal) * 1.5)
		if got < lo || got > hi {
			t.Fatalf("attempt %d: %v outside jitter band [%v, %v]", i, got, lo, hi)
		}
	}
}

func TestBackoffReset(t *testing.T) {
	b := NewBackoff(10*time.Millisecond, time.Second, 0, rand.NewSource(1))
	for i := 0; i < 4; i++ {
		b.Next()
	}
	b.Reset()
	if b.Attempts() != 0 {
		t.Errorf("Attempts() after Reset = %d, want 0", b.Attempts())
	}
	if got := b.Next(); got != 10*time.Millisecond {
		t.Errorf("first delay after Reset = %v, want base 10ms", got)
	}
}

func TestBackoffDegenerateInputs(t *testing.T) {
	// Non-positive base falls back to 1ms; cap below base is raised to
	// base; jitter outside [0, 1) is disabled.
	b := NewBackoff(0, 0, 1.5, rand.NewSource(1))
	if got := b.Next(); got != time.Millisecond {
		t.Errorf("degenerate base: first delay = %v, want 1ms", got)
	}
	for i := 0; i < 8; i++ {
		if got := b.Next(); got != time.Millisecond {
			t.Errorf("degenerate cap: delay = %v, want 1ms (cap == base)", got)
		}
	}
}
