package engine

import (
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"nephelix/internal/model"
)

// channelRef is one producer→consumer path of a job edge.
type channelRef struct {
	id model.ChannelID
	to *task
}

// gate is a task's output side for one outgoing job edge: a producer-side
// batch buffer flushed to the next consumer in rotation (round-robin), to
// all consumers (broadcast), or per key partition (key-based, one buffer
// per consumer). The buffer is owned by the producing task goroutine; the
// consumer list and the flush deadline are updated by the master and read
// via atomics.
type gate struct {
	edge    model.EdgeKey
	pos     int
	pattern model.WiringPattern

	// consumers is the active consumer snapshot (copy-on-write by the
	// master).
	consumers atomic.Pointer[[]*channelRef]
	// deadlineNs is the adaptive flush deadline (0 = instant flush,
	// math.MaxInt64 = size-only).
	deadlineNs atomic.Int64

	// consumerGen counts consumer-set changes (master-incremented); the
	// producer re-draws its rotation offset when it observes a change.
	consumerGen atomic.Int64

	// drops points at the owning execution's no-consumer drop counter.
	drops *atomic.Int64

	// Producer-goroutine-owned state.
	rng      *rand.Rand
	rr       int
	rrGen    int64
	rrInit   bool
	buf      []Record
	oldest   time.Time
	perKey   map[*channelRef][]Record
	perKeyT  map[*channelRef]time.Time
	producer int
	maxBatch int
}

// newGate builds a gate for a producer task.
func newGate(edge model.EdgeKey, pos, producer int, pattern model.WiringPattern, maxBatch int, drops *atomic.Int64) *gate {
	g := &gate{
		edge:     edge,
		pos:      pos,
		pattern:  pattern,
		producer: producer,
		maxBatch: maxBatch,
		drops:    drops,
		rng:      rand.New(rand.NewSource(int64(producer)*2654435761 + int64(pos) + 1)),
	}
	if pattern == model.PatternKeyBased {
		g.perKey = make(map[*channelRef][]Record)
		g.perKeyT = make(map[*channelRef]time.Time)
	}
	empty := make([]*channelRef, 0)
	g.consumers.Store(&empty)
	return g
}

// deadline returns the current flush deadline.
func (g *gate) deadline() time.Duration {
	return time.Duration(g.deadlineNs.Load())
}

// setDeadline publishes a new flush deadline (clamped at 0).
func (g *gate) setDeadline(d time.Duration) {
	if d < 0 {
		d = 0
	}
	g.deadlineNs.Store(int64(d))
}

// snapshot returns the current consumer list.
func (g *gate) snapshot() []*channelRef { return *g.consumers.Load() }

// addConsumer appends a consumer (master only).
func (g *gate) addConsumer(ref *channelRef) {
	cur := g.snapshot()
	next := make([]*channelRef, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = ref
	g.consumers.Store(&next)
	g.consumerGen.Add(1)
}

// removeConsumer drops a consumer task's channel (master only).
func (g *gate) removeConsumer(t *task) {
	cur := g.snapshot()
	next := make([]*channelRef, 0, len(cur))
	for _, ref := range cur {
		if ref.to != t {
			next = append(next, ref)
		}
	}
	g.consumers.Store(&next)
	g.consumerGen.Add(1)
}

// push buffers a record and returns batches due for shipping (producer
// goroutine only). The caller ships them (possibly blocking).
func (g *gate) push(rec Record, now time.Time) []shipment {
	consumers := g.snapshot()
	if len(consumers) == 0 {
		g.drops.Add(1)
		return nil
	}
	if g.pattern == model.PatternKeyBased {
		ref := consumers[int(mix64(rec.Key)%uint64(len(consumers)))]
		buf := g.perKey[ref]
		if len(buf) == 0 {
			g.perKeyT[ref] = now
		}
		buf = append(buf, rec)
		g.perKey[ref] = buf
		if g.deadline() <= 0 || len(buf) >= g.maxBatch {
			return g.takeKeyed(ref, now)
		}
		return nil
	}
	if len(g.buf) == 0 {
		g.oldest = now
	}
	g.buf = append(g.buf, rec)
	if g.deadline() <= 0 || len(g.buf) >= g.maxBatch {
		return g.takeShared(now)
	}
	return nil
}

// shipment is one batch addressed to one consumer.
type shipment struct {
	ref *channelRef
	b   batch
}

// takeShared drains the shared buffer into shipments per the pattern.
func (g *gate) takeShared(now time.Time) []shipment {
	if len(g.buf) == 0 {
		return nil
	}
	consumers := g.snapshot()
	if len(consumers) == 0 {
		g.drops.Add(int64(len(g.buf)))
		g.buf = nil
		return nil
	}
	items := g.buf
	g.buf = nil
	b := batch{items: items, producer: g.producer, edgePos: g.pos, oldestBuf: g.oldest, shipped: now}
	if g.pattern == model.PatternBroadcast {
		out := make([]shipment, 0, len(consumers))
		for i, ref := range consumers {
			bb := b
			if i < len(consumers)-1 {
				cp := make([]Record, len(items))
				copy(cp, items)
				bb.items = cp
			}
			out = append(out, shipment{ref: ref, b: bb})
		}
		return out
	}
	if gen := g.consumerGen.Load(); !g.rrInit || gen != g.rrGen {
		// (Re-)start the rotation at a random offset on every consumer-
		// set change so producer sweeps never phase-lock (see the
		// simulator's gate for the full rationale).
		g.rr = g.rng.Intn(len(consumers))
		g.rrInit = true
		g.rrGen = gen
	}
	if g.rr >= len(consumers) {
		g.rr = 0
	}
	ref := consumers[g.rr]
	g.rr = (g.rr + 1) % len(consumers)
	return []shipment{{ref: ref, b: b}}
}

// takeKeyed drains one key-pinned buffer.
func (g *gate) takeKeyed(ref *channelRef, now time.Time) []shipment {
	buf := g.perKey[ref]
	if len(buf) == 0 {
		return nil
	}
	delete(g.perKey, ref)
	oldest := g.perKeyT[ref]
	delete(g.perKeyT, ref)
	return []shipment{{ref: ref, b: batch{items: buf, producer: g.producer, edgePos: g.pos, oldestBuf: oldest, shipped: now}}}
}

// due returns all shipments whose oldest buffered record has exceeded the
// deadline (called from the producer's flush tick).
func (g *gate) due(now time.Time) []shipment {
	dl := g.deadline()
	var out []shipment
	if len(g.buf) > 0 && now.Sub(g.oldest) >= dl {
		out = append(out, g.takeShared(now)...)
	}
	for ref, buf := range g.perKey {
		if len(buf) > 0 && now.Sub(g.perKeyT[ref]) >= dl {
			out = append(out, g.takeKeyed(ref, now)...)
		}
	}
	return out
}

// drainAll force-flushes everything buffered (task shutdown).
func (g *gate) drainAll(now time.Time) []shipment {
	out := g.takeShared(now)
	for ref := range g.perKey {
		out = append(out, g.takeKeyed(ref, now)...)
	}
	return out
}

// mix64 is a splitmix64 finalizer used for key partitioning.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// noDeadline marks size-only flushing.
const noDeadline = time.Duration(math.MaxInt64)
