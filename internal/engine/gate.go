package engine

import (
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"nephelix/internal/model"
	"nephelix/internal/ring"
)

// channelRef is one producer→consumer path of a job edge: the target
// task plus the SPSC ring this producer emitter pushes into. Each ring
// has exactly one pushing goroutine (the emitter that owns the gate
// holding this ref) and one popping goroutine (the consumer task), so
// the lock-free SPSC discipline holds by construction.
type channelRef struct {
	id   model.ChannelID
	to   *task
	ring *ring.SPSC[batch]
}

// gate is a task's output side for one outgoing job edge: a producer-side
// batch buffer flushed to the next consumer in rotation (round-robin), to
// all consumers (broadcast), or per key partition (key-based, one buffer
// per consumer). The buffer is owned by the producing task goroutine; the
// consumer list and the flush deadline are updated by the master and read
// via atomics. Buffer slices cycle through the execution's batchPool (see
// pool.go for the ownership contract), so the steady-state flush path
// allocates nothing.
type gate struct {
	edge    model.EdgeKey
	pos     int
	pattern model.WiringPattern

	// consumers is the active consumer snapshot (copy-on-write by the
	// master).
	consumers atomic.Pointer[[]*channelRef]
	// deadlineNs is the adaptive flush deadline (0 = instant flush,
	// math.MaxInt64 = size-only).
	deadlineNs atomic.Int64

	// consumerGen counts consumer-set changes (master-incremented); the
	// producer re-draws its rotation offset and reconciles key-pinned
	// buffers when it observes a change.
	consumerGen atomic.Int64

	// drops points at the owning execution's no-consumer drop counter.
	drops *atomic.Int64

	// pool recycles batch slices execution-wide; poolHint spreads this
	// gate's traffic across the pool's shards.
	pool     *batchPool
	poolHint int

	// owner is the emitter whose goroutine drives this gate; push arms
	// the execution's flush wheel through it on empty→non-empty buffer
	// transitions. Nil in gate-level unit tests (no wheel — callers
	// flush via explicit due calls).
	owner *emitter

	// Producer-goroutine-owned state. out is the reusable shipment
	// scratch every flush entry point (push, due, drainAll) returns; it
	// is valid until the next gate call, which the single-producer
	// discipline guarantees is after the caller shipped it.
	rng      *rand.Rand
	rr       int
	rrGen    int64
	rrInit   bool
	keyGen   int64
	buf      []Record
	out      []shipment
	oldest   time.Time
	perKey   map[*channelRef][]Record
	perKeyT  map[*channelRef]time.Time
	producer int
	maxBatch int
}

// newGate builds a gate for a producer task.
func newGate(edge model.EdgeKey, pos, producer int, pattern model.WiringPattern, maxBatch int, drops *atomic.Int64, pool *batchPool) *gate {
	g := &gate{
		edge:     edge,
		pos:      pos,
		pattern:  pattern,
		producer: producer,
		maxBatch: maxBatch,
		drops:    drops,
		pool:     pool,
		rng:      rand.New(rand.NewSource(int64(producer)*2654435761 + int64(pos) + 1)),
	}
	if pattern == model.PatternKeyBased {
		g.perKey = make(map[*channelRef][]Record)
		g.perKeyT = make(map[*channelRef]time.Time)
	}
	empty := make([]*channelRef, 0)
	g.consumers.Store(&empty)
	return g
}

// deadline returns the current flush deadline.
func (g *gate) deadline() time.Duration {
	return time.Duration(g.deadlineNs.Load())
}

// setDeadline publishes a new flush deadline (clamped at 0).
func (g *gate) setDeadline(d time.Duration) {
	if d < 0 {
		d = 0
	}
	g.deadlineNs.Store(int64(d))
}

// snapshot returns the current consumer list.
func (g *gate) snapshot() []*channelRef { return *g.consumers.Load() }

// addConsumer appends a consumer (master only).
func (g *gate) addConsumer(ref *channelRef) {
	cur := g.snapshot()
	next := make([]*channelRef, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = ref
	g.consumers.Store(&next)
	g.consumerGen.Add(1)
}

// removeConsumer drops a consumer task's channel (master only). Key
// buffers pinned to the removed channel are reconciled by the producer
// goroutine the next time it observes the generation change (push, due
// or drainAll) — the master must not touch producer-owned maps.
func (g *gate) removeConsumer(t *task) {
	cur := g.snapshot()
	next := make([]*channelRef, 0, len(cur))
	for _, ref := range cur {
		if ref.to != t {
			next = append(next, ref)
		}
	}
	g.consumers.Store(&next)
	g.consumerGen.Add(1)
}

// refLive reports whether ref is in the consumer snapshot.
func refLive(consumers []*channelRef, ref *channelRef) bool {
	for _, c := range consumers {
		if c == ref {
			return true
		}
	}
	return false
}

// reconcileKeys re-partitions key buffers stranded on consumers that
// left the routing table (scale-down or crash) across the live consumer
// set, so no buffered record is ever shipped to a removed task. Runs on
// the producer goroutine; in steady state it costs one atomic load.
func (g *gate) reconcileKeys(now time.Time) {
	gen := g.consumerGen.Load()
	if gen == g.keyGen {
		return
	}
	g.keyGen = gen
	if len(g.perKey) == 0 {
		return
	}
	consumers := g.snapshot()
	for ref, buf := range g.perKey {
		if refLive(consumers, ref) {
			continue
		}
		oldest := g.perKeyT[ref]
		delete(g.perKey, ref)
		delete(g.perKeyT, ref)
		if len(consumers) == 0 {
			g.drops.Add(int64(len(buf)))
			g.pool.put(g.poolHint, buf)
			continue
		}
		for _, rec := range buf {
			nref := consumers[int(mix64(rec.Key)%uint64(len(consumers)))]
			nbuf := g.perKey[nref]
			if nbuf == nil {
				nbuf = g.pool.get(g.poolHint)
			}
			g.perKey[nref] = append(nbuf, rec)
			// The moved records keep their buffered age so the flush
			// deadline still fires on time.
			if t, ok := g.perKeyT[nref]; !ok || oldest.Before(t) {
				g.perKeyT[nref] = oldest
			}
		}
		g.pool.put(g.poolHint, buf)
	}
}

// armOwner arms the owning emitter's flush-wheel entry when a buffer
// just went empty→non-empty under a finite deadline (producer
// goroutine). Without it the batch would sit until the next size-cap
// flush.
func (g *gate) armOwner(now time.Time) {
	if g.owner == nil {
		return
	}
	dl := g.deadline()
	if dl <= 0 || dl == noDeadline {
		return
	}
	g.owner.armFlush(now.Add(dl))
}

// push buffers a record and returns batches due for shipping (producer
// goroutine only). The caller ships them (possibly blocking); the
// returned slice is gate-owned scratch, valid until the next gate call.
func (g *gate) push(rec Record, now time.Time) []shipment {
	consumers := g.snapshot()
	if len(consumers) == 0 {
		g.drops.Add(1)
		return nil
	}
	if g.pattern == model.PatternKeyBased {
		g.reconcileKeys(now)
		ref := consumers[int(mix64(rec.Key)%uint64(len(consumers)))]
		buf := g.perKey[ref]
		if len(buf) == 0 {
			if buf == nil {
				buf = g.pool.get(g.poolHint)
			}
			g.perKeyT[ref] = now
			g.armOwner(now)
		}
		buf = append(buf, rec)
		g.perKey[ref] = buf
		if g.deadline() <= 0 || len(buf) >= g.maxBatch {
			g.out = g.takeKeyed(ref, now, g.out[:0])
			return g.out
		}
		return nil
	}
	if len(g.buf) == 0 {
		g.oldest = now
		g.armOwner(now)
	}
	g.buf = append(g.buf, rec)
	if g.deadline() <= 0 || len(g.buf) >= g.maxBatch {
		g.out = g.takeShared(now, g.out[:0])
		return g.out
	}
	return nil
}

// shipment is one batch addressed to one consumer.
type shipment struct {
	ref *channelRef
	b   batch
}

// takeShared drains the shared buffer into shipments appended to dst,
// per the pattern.
func (g *gate) takeShared(now time.Time, dst []shipment) []shipment {
	if len(g.buf) == 0 {
		return dst
	}
	consumers := g.snapshot()
	if len(consumers) == 0 {
		g.drops.Add(int64(len(g.buf)))
		g.resetBuf()
		return dst
	}
	items := g.buf
	b := batch{items: items, producer: g.producer, edgePos: g.pos, oldestBuf: g.oldest, shipped: now, poolHint: g.poolHint}
	if g.pattern == model.PatternBroadcast {
		// Uniform ownership: every consumer gets its own pooled copy and
		// the gate keeps its buffer. Handing any consumer the original
		// would let a record-mutating UDF corrupt the other copies'
		// source — and under pooling, alias a recycled slice.
		for _, ref := range consumers {
			bb := b
			bb.items = append(g.pool.get(g.poolHint), items...)
			dst = append(dst, shipment{ref: ref, b: bb})
		}
		g.resetBuf()
		return dst
	}
	// Rotation: the single addressee takes ownership of the buffer; the
	// gate refills from the pool.
	g.buf = g.pool.get(g.poolHint)
	if gen := g.consumerGen.Load(); !g.rrInit || gen != g.rrGen {
		// (Re-)start the rotation at a random offset on every consumer-
		// set change so producer sweeps never phase-lock (see the
		// simulator's gate for the full rationale).
		g.rr = g.rng.Intn(len(consumers))
		g.rrInit = true
		g.rrGen = gen
	}
	if g.rr >= len(consumers) {
		g.rr = 0
	}
	ref := consumers[g.rr]
	g.rr = (g.rr + 1) % len(consumers)
	return append(dst, shipment{ref: ref, b: b})
}

// resetBuf empties the shared buffer in place, zeroing dropped or copied
// records so retained capacity pins no payloads or spans.
func (g *gate) resetBuf() {
	for i := range g.buf {
		g.buf[i] = Record{}
	}
	g.buf = g.buf[:0]
}

// takeKeyed drains one key-pinned buffer into dst.
func (g *gate) takeKeyed(ref *channelRef, now time.Time, dst []shipment) []shipment {
	buf := g.perKey[ref]
	if len(buf) == 0 {
		return dst
	}
	delete(g.perKey, ref)
	oldest := g.perKeyT[ref]
	delete(g.perKeyT, ref)
	return append(dst, shipment{ref: ref, b: batch{items: buf, producer: g.producer, edgePos: g.pos, oldestBuf: oldest, shipped: now, poolHint: g.poolHint}})
}

// due returns all shipments whose oldest buffered record has exceeded the
// deadline (called from the producer's flush tick). The returned slice
// is gate-owned scratch, valid until the next gate call.
func (g *gate) due(now time.Time) []shipment {
	dl := g.deadline()
	out := g.out[:0]
	if len(g.buf) > 0 && now.Sub(g.oldest) >= dl {
		out = g.takeShared(now, out)
	}
	if g.perKey != nil {
		g.reconcileKeys(now)
		for ref, buf := range g.perKey {
			if len(buf) > 0 && now.Sub(g.perKeyT[ref]) >= dl {
				out = g.takeKeyed(ref, now, out)
			}
		}
	}
	g.out = out
	return out
}

// nextDue returns the earliest moment a currently buffered record's
// flush deadline lapses (producer goroutine; used to re-arm the flush
// wheel after a fire). ok is false when nothing is buffered or the
// gate's deadline is not finite.
func (g *gate) nextDue() (at time.Time, ok bool) {
	dl := g.deadline()
	if dl <= 0 || dl == noDeadline {
		return time.Time{}, false
	}
	if len(g.buf) > 0 {
		at, ok = g.oldest.Add(dl), true
	}
	for ref, buf := range g.perKey {
		if len(buf) == 0 {
			continue
		}
		if t := g.perKeyT[ref].Add(dl); !ok || t.Before(at) {
			at, ok = t, true
		}
	}
	return at, ok
}

// barrierShipments returns one barrier batch addressed to every
// current consumer — all of them regardless of wiring pattern, because
// alignment counts producers, not partitions. The caller must drain the
// gate first so buffered pre-barrier records precede the marker in
// channel FIFO order. Like due, the returned slice is gate-owned
// scratch, valid until the next gate call.
func (g *gate) barrierShipments(id int64, now time.Time) []shipment {
	out := g.out[:0]
	for _, ref := range g.snapshot() {
		out = append(out, shipment{ref: ref, b: batch{
			producer: g.producer, edgePos: g.pos, barrier: id,
			oldestBuf: now, shipped: now,
		}})
	}
	g.out = out
	return out
}

// drainAll force-flushes everything buffered (task shutdown). Like due,
// the returned slice is gate-owned scratch.
func (g *gate) drainAll(now time.Time) []shipment {
	out := g.out[:0]
	out = g.takeShared(now, out)
	if g.perKey != nil {
		g.reconcileKeys(now)
		for ref := range g.perKey {
			out = g.takeKeyed(ref, now, out)
		}
	}
	g.out = out
	return out
}

// mix64 is a splitmix64 finalizer used for key partitioning.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// noDeadline marks size-only flushing.
const noDeadline = time.Duration(math.MaxInt64)
