package engine

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nephelix/internal/ckpt"
	"nephelix/internal/cluster"
	"nephelix/internal/core"
	"nephelix/internal/model"
	"nephelix/internal/obs"
	"nephelix/internal/probe"
	"nephelix/internal/qos"
	"nephelix/internal/ring"
)

// Config tunes the engine. Zero values take the defaults noted per field;
// the intervals default to laptop-friendly values rather than the paper's
// cluster setup (1 s / 5 s), so short example runs still get several
// adjustment rounds.
type Config struct {
	// Workers and SlotsPerWorker bound the scheduler's slot pool
	// (defaults 16 × 4).
	Workers        int
	SlotsPerWorker int
	// MeasurementInterval and AdjustmentInterval pace the QoS plane
	// (defaults 250 ms and 1 s).
	MeasurementInterval time.Duration
	AdjustmentInterval  time.Duration
	// Elastic enables the reactive scaler.
	Elastic bool
	// Scaler configures the elastic scaler (DefaultScalerConfig when
	// zero).
	Scaler core.ScalerConfig
	// QueueCapacity bounds each producer→consumer SPSC ring in batches
	// (default 64, rounded up to a power of two); full rings exert
	// backpressure.
	QueueCapacity int
	// SourceShards is the number of concurrent emitter shards per source
	// task (default GOMAXPROCS-derived: GOMAXPROCS/2, clamped to [1, 4]).
	// Each shard runs its own pacing loop and, under guarantees, owns its
	// own offset log, so one source task can emit from several cores.
	SourceShards int
	// WheelResolution is the tick of the execution's flush-timer wheel
	// (default FlushTick). Batch-flush deadlines are delivered with this
	// granularity by one wheel goroutine instead of per-task tickers.
	WheelResolution time.Duration
	// MaxBatchRecords caps output batches (default 256).
	MaxBatchRecords int
	// FlushTick is the granularity of deadline flushing (default 1 ms).
	FlushTick time.Duration
	// DrainIdle is how long a draining task waits for stragglers before
	// exiting (default 300 ms).
	DrainIdle time.Duration
	// RecordInterval paces the execution's time series (Execution.Rows);
	// 0 disables recording.
	RecordInterval time.Duration
	// Seed drives task-local randomness.
	Seed int64
	// MaxTaskRestarts caps consecutive supervised restarts per vertex
	// (default 5). When a vertex's tasks keep crashing past the cap the
	// vertex is marked degraded and the job shuts down cleanly with an
	// error instead of deadlocking on a dead pipeline stage.
	MaxTaskRestarts int
	// RestartBackoff is the supervisor's initial restart delay
	// (default 25 ms); it doubles per consecutive failure.
	RestartBackoff time.Duration
	// RestartBackoffCap bounds the exponential restart delay
	// (default 1 s).
	RestartBackoffCap time.Duration
	// BackoffResetAfter is the stable-run period after which a vertex's
	// restart backoff resets to base (default AdjustmentInterval), so a
	// long-lived task that panics rarely doesn't escalate toward the
	// degradation cap forever. Checked once per adjustment tick, so the
	// effective resolution is one AdjustmentInterval.
	BackoffResetAfter time.Duration
	// Guarantee selects the processing-guarantee level (default
	// AtMostOnce: crashes lose records, as before). AtLeastOnce enables
	// source offsets, barrier checkpoints and replay-on-restart;
	// ExactlyOnce additionally deduplicates at the sinks.
	Guarantee ckpt.Guarantee
	// CheckpointInterval paces barrier injection when Guarantee is
	// enabled (default 250 ms).
	CheckpointInterval time.Duration
	// ReplayBufferRecords bounds each source's replay buffer (default
	// 65536); at the bound the source pauses emission until a checkpoint
	// commits — backpressure, never loss.
	ReplayBufferRecords int
	// CheckpointStore persists committed checkpoints (default: an
	// in-memory store keeping the last 8). Ignored when Guarantee is
	// AtMostOnce.
	CheckpointStore ckpt.Store
	// Recorder, when set, receives the execution's flight-recorder
	// events: task lifecycle (start, panic, backoff restart, vertex
	// degradation), drop counters at shutdown, and one scaling_decision
	// audit event per adjustment interval with a decision.
	Recorder *obs.Recorder
	// Tracer, when set, head-samples source emissions and attributes
	// their end-to-end latency per hop. Nil disables tracing at
	// near-zero cost.
	Tracer *obs.Tracer
	// Telemetry, when set, is scraped every adjustment interval (QoS
	// summary, scaler decision, Go runtime) and scores the Kingman
	// queue-wait predictions against the next interval's measurements.
	// Nil disables telemetry at zero cost.
	Telemetry *obs.Telemetry
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.SlotsPerWorker <= 0 {
		c.SlotsPerWorker = 4
	}
	if c.MeasurementInterval <= 0 {
		c.MeasurementInterval = 250 * time.Millisecond
	}
	if c.AdjustmentInterval <= 0 {
		c.AdjustmentInterval = time.Second
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 64
	}
	if c.MaxBatchRecords <= 0 {
		c.MaxBatchRecords = 256
	}
	if c.FlushTick <= 0 {
		c.FlushTick = time.Millisecond
	}
	if c.SourceShards <= 0 {
		c.SourceShards = flagSourceShards // -engine.shards (see flags.go)
	}
	if c.SourceShards <= 0 {
		s := runtime.GOMAXPROCS(0) / 2
		if s < 1 {
			s = 1
		}
		if s > 4 {
			s = 4
		}
		c.SourceShards = s
	}
	if c.WheelResolution <= 0 {
		c.WheelResolution = flagWheelResolution // -engine.wheel (see flags.go)
	}
	if c.WheelResolution <= 0 {
		c.WheelResolution = c.FlushTick
	}
	if c.DrainIdle <= 0 {
		c.DrainIdle = 300 * time.Millisecond
	}
	if c.Scaler.Strategy == (core.StrategyConfig{}) {
		c.Scaler = core.DefaultScalerConfig()
		c.Scaler.InactivityIntervals = 2
	}
	if c.MaxTaskRestarts <= 0 {
		c.MaxTaskRestarts = 5
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 25 * time.Millisecond
	}
	if c.RestartBackoffCap <= 0 {
		c.RestartBackoffCap = time.Second
	}
	if c.BackoffResetAfter <= 0 {
		c.BackoffResetAfter = c.AdjustmentInterval
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = 250 * time.Millisecond
	}
	if c.ReplayBufferRecords <= 0 {
		c.ReplayBufferRecords = 1 << 16
	}
	if c.Guarantee.Enabled() && c.CheckpointStore == nil {
		c.CheckpointStore = ckpt.NewMemStore(8)
	}
	return c
}

// Engine creates executions from job specs.
type Engine struct {
	cfg Config
}

// New creates an engine.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults()}
}

// Submit validates the spec, builds the runtime graph, starts all task
// goroutines and the master loop, and returns the running execution.
// probes may be nil.
func (e *Engine) Submit(spec *JobSpec, probes *probe.ProbeSet) (*Execution, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if probes == nil {
		probes = probe.NewProbeSet()
	}
	rm, err := cluster.NewResourceManager(e.cfg.Workers, e.cfg.SlotsPerWorker)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	ex := &execution{
		cfg:       e.cfg,
		spec:      spec,
		probes:    probes,
		rm:        rm,
		scheduler: cluster.NewScheduler(rm),
		manager:   qos.NewManager(managerConfigFor(e.cfg)),
		vertices:  make(map[string]*vertexState),
		edgePos:   make(map[model.EdgeKey]int),
		modes:     make(map[string]model.LatencyMode),
		deadlines: make(map[model.EdgeKey]time.Duration),
		reports:     make(chan any, 4096),
		failures:    make(chan taskFailure, 1024),
		restarts:    make(chan string, 1024),
		supervisors: make(map[string]*supervisor),
		stopCh:      make(chan struct{}),
		doneCh:      make(chan struct{}),
	}
	ex.wheel = newFlushWheel(e.cfg.WheelResolution)
	ex.sloTargets = obs.SLOTargetsFromConstraints(spec.constraints)
	ex.controller = qos.NewBatchingController(e.cfg.Scaler.Strategy.Batching)
	ex.controller.SetElastic(e.cfg.Elastic)
	ex.guarantee = e.cfg.Guarantee
	if ex.guarantee.Enabled() {
		ex.suppressDups = ex.guarantee.Dedup()
		ex.ckptStore = e.cfg.CheckpointStore
		ex.coord = newCkptCoordinator()
		ex.srcLogs = make(map[int32]*sourceLog)
		ex.orphanLogs = make(map[string][]*sourceLog)
		// Sink vertices (no out-edges) each get one dedup table, shared by
		// all their tasks; must exist before bootstrap creates tasks.
		ex.dedups = make(map[string]*sinkDedup)
		for _, jv := range spec.graph.Vertices() {
			if len(spec.graph.OutEdges(jv.Name)) == 0 {
				ex.dedups[jv.Name] = newSinkDedup()
			}
		}
	}
	if e.cfg.Elastic {
		if len(spec.constraints) == 0 {
			return nil, fmt.Errorf("engine: elastic execution needs at least one constraint")
		}
		sc, err := core.NewElasticScaler(e.cfg.Scaler, spec.graph, spec.constraints)
		if err != nil {
			return nil, err
		}
		ex.scaler = sc
		// Percentile constraints: telemetry feeds the scaler's tail
		// fitter with windowed queue-wait quantiles each interval. The
		// fit windows are filled from sampled hop decompositions, so a
		// tail-constrained run needs a tracer even when the caller
		// configured none.
		e.cfg.Telemetry.BindTailFitter(sc.TailFitter())
		if sc.TailFitter() != nil && ex.cfg.Tracer == nil {
			ex.cfg.Tracer = obs.NewTracer(obs.DefaultTailSampleEvery)
		}
	}
	if err := ex.bootstrap(); err != nil {
		return nil, err
	}
	ex.start = time.Now()
	ex.lastCommit = ex.start
	ex.meter.Advance(0, 0, 0)
	go ex.wheel.run()
	ex.launchAll()
	go ex.masterLoop()
	return &Execution{ex: ex}, nil
}

// managerConfigFor derives the QoS history length from the intervals.
func managerConfigFor(cfg Config) qos.ManagerConfig {
	m := qos.DefaultManagerConfig()
	if n := int(cfg.AdjustmentInterval / cfg.MeasurementInterval); n >= 1 {
		m.HistoryLength = n
	}
	return m
}

// vertexState groups a vertex's tasks (master-owned; count holds the
// number of live, i.e. non-draining, tasks and is read lock-free by
// source tasks).
type vertexState struct {
	jv        *model.JobVertex
	tasks     []*task
	nextIndex int
	count     atomic.Int32
}

// refreshCount recomputes the live-task count (caller holds ex.mu).
func (vs *vertexState) refreshCount() {
	n := int32(0)
	for _, t := range vs.tasks {
		if !t.draining.Load() {
			n++
		}
	}
	vs.count.Store(n)
}

// execution is the runtime of one submitted job.
type execution struct {
	cfg  Config
	spec *JobSpec

	start time.Time

	// mu guards vertices' task slices, deadlines and the scheduler/meter.
	mu        sync.Mutex
	vertices  map[string]*vertexState
	order     []string
	scheduler *cluster.Scheduler
	rm        *cluster.ResourceManager
	meter     cluster.UsageMeter
	retired   int64 // busyNs of exited tasks

	edgePos map[model.EdgeKey]int
	modes   map[string]model.LatencyMode

	deadlines  map[model.EdgeKey]time.Duration
	controller *qos.BatchingController
	manager    *qos.Manager
	scaler     *core.ElasticScaler

	probes  *probe.ProbeSet
	reports chan any

	// sloTargets are the per-constraint SLO targets derived from the job
	// spec's constraints, used when no bounded probe covers them.
	sloTargets []obs.SLOTarget

	// pool recycles batch slices across all tasks of the execution (see
	// pool.go for the ownership contract); poolSeq hands out shard hints
	// round-robin at task/emitter construction.
	pool    batchPool
	poolSeq atomic.Int64

	// wheel is the execution's single flush-timer wheel (wheel.go):
	// emitters arm flush deadlines on it instead of running per-task
	// FlushTick tickers.
	wheel *flushWheel

	// dp is the data-plane sampler's interval state (dataplane.go);
	// master goroutine only, lazily built on the first scrape.
	dp *dataplaneScraper

	// Supervision: tasks announce panics on failures (before their exit
	// hook runs), the master schedules restarts onto restarts after a
	// backoff delay. supervisors is master-goroutine-only state.
	failures    chan taskFailure
	restarts    chan string
	supervisors map[string]*supervisor

	emitted        atomic.Int64
	droppedReports atomic.Int64
	scaleUps       atomic.Int64
	scaleDowns     atomic.Int64

	taskFailures atomic.Int64
	taskRestarts atomic.Int64
	lostRecords  atomic.Int64

	// Processing guarantees (nil/zero when cfg.Guarantee is AtMostOnce).
	// guarantee and suppressDups are immutable after Submit; coord owns the
	// in-flight checkpoint; topoGen counts topology changes so a commit
	// racing churn is detected and discarded.
	guarantee    ckpt.Guarantee
	suppressDups bool
	ckptStore    ckpt.Store
	coord        *ckptCoordinator
	topoGen      atomic.Int64
	// Master-loop-only checkpoint state.
	ckptSeq      int64
	lastCommit   time.Time
	lastDupCount int64
	// srcMu guards the source-log registry; leaf lock under ex.mu.
	srcMu      sync.Mutex
	srcLogs    map[int32]*sourceLog
	orphanLogs map[string][]*sourceLog
	nextSrcID  int32
	// dedups maps sink vertex → shared dedup table (immutable map after
	// Submit; the tables themselves are mutex-guarded).
	dedups map[string]*sinkDedup

	checkpointsCommitted atomic.Int64
	checkpointsAborted   atomic.Int64
	replayedRecords      atomic.Int64
	lingerTimeouts       atomic.Int64
	// dropNoConsumer counts records dropped because a gate had no
	// consumers; gates hold a pointer to it (they have no execution
	// back-pointer). Zero in healthy executions.
	dropNoConsumer atomic.Int64
	// pendingRecovery counts crashed tasks whose restart has not landed
	// yet. Incremented by the crashing task before its exit hook
	// decrements the live counters, so the master never mistakes a
	// crashed-but-restarting source for "all sources finished".
	pendingRecovery atomic.Int32

	lastSummary atomic.Pointer[qos.Summary]

	// failErr is the terminal failure (degraded vertex); written by the
	// master loop before doneCh closes, read after Wait returns.
	failErr error

	// adjustRounds counts adjustment ticks (master loop only); it is the
	// interval ordinal on recorded scaling decisions.
	adjustRounds int

	rowsMu sync.Mutex
	rows   []Row

	wg          sync.WaitGroup
	sourcesLeft atomic.Int32
	stopOnce    sync.Once
	stopCh      chan struct{}
	doneCh      chan struct{}
}

// taskFailure is a task goroutine's dying message to the master.
type taskFailure struct {
	t      *task
	reason any
}

// supervisor is the master's per-vertex restart state.
type supervisor struct {
	backoff     *Backoff
	lastFailure time.Time
	degraded    bool
}

// Row is one record-interval sample of a live execution's time series.
type Row struct {
	// Elapsed is the time since execution start.
	Elapsed time.Duration
	// Probes holds per-probe (count, mean, p95) for the interval.
	Probes map[string]ProbeSample
	// Parallelism is the live task count per vertex.
	Parallelism map[string]int
	// Emitted is the cumulative source-emission count.
	Emitted int64
}

// ProbeSample is one probe's interval measurement.
type ProbeSample struct {
	Count int64
	Mean  float64
	P95   float64
}

// report messages from tasks to the master.
type taskReportMsg struct{ report qos.TaskReport }
type channelReportMsg struct{ report qos.ChannelReport }

// offerReport enqueues a report without ever blocking a task.
func (ex *execution) offerReport(msg any) {
	select {
	case ex.reports <- msg:
	default:
		ex.droppedReports.Add(1)
	}
}

// currentDeadline returns the master's current deadline for an edge.
func (ex *execution) currentDeadline(edge model.EdgeKey) (time.Duration, bool) {
	d, ok := ex.deadlines[edge]
	return d, ok
}

// latencyMode returns a vertex's latency mode.
func (ex *execution) latencyMode(vertex string) model.LatencyMode { return ex.modes[vertex] }

// parallelismOf returns a vertex's live task count (lock-free).
func (ex *execution) parallelismOf(vertex string) int {
	if vs, ok := ex.vertices[vertex]; ok {
		return int(vs.count.Load())
	}
	return 0
}

// bootstrap builds the initial tasks and wiring (pre-start, single
// goroutine).
func (ex *execution) bootstrap() error {
	g := ex.spec.graph
	for _, jv := range g.Vertices() {
		ex.modes[jv.Name] = jv.LatencyMode
		for pos, ek := range g.OutEdges(jv.Name) {
			ex.edgePos[ek] = pos
		}
		ex.vertices[jv.Name] = &vertexState{jv: jv}
		ex.order = append(ex.order, jv.Name)
	}
	for _, name := range ex.order {
		vs := ex.vertices[name]
		for i := 0; i < vs.jv.Parallelism; i++ {
			if _, err := ex.createTask(name); err != nil {
				return err
			}
		}
	}
	// Wire all edges producer × consumer: one SPSC ring per producer
	// emitter → consumer pair.
	for _, e := range g.Edges() {
		pos := ex.edgePos[e.Key()]
		for _, p := range ex.vertices[e.Source].tasks {
			for _, c := range ex.vertices[e.Target].tasks {
				ex.connect(p, pos, e.Key(), c)
			}
		}
	}
	return nil
}

// connect wires one producer task to one consumer task on an edge: one
// SPSC ring per producer emitter, registered with the consumer's poll
// set (bootstrap or master goroutine). Each ring's push side belongs to
// exactly one emitter goroutine and its pop side to the consumer's, so
// the SPSC discipline holds by construction.
func (ex *execution) connect(p *task, pos int, ek model.EdgeKey, c *task) {
	for _, e := range p.emitters {
		r := ring.New[batch](ex.cfg.QueueCapacity)
		e.gates[pos].addConsumer(&channelRef{
			id:   model.ChannelID{Edge: ek, Producer: p.id.Index, Consumer: c.id.Index},
			to:   c,
			ring: r,
		})
		c.addInRing(r)
	}
}

// createTask builds and places one task (caller holds no lock during
// bootstrap; scaling calls hold ex.mu).
func (ex *execution) createTask(vertex string) (*task, error) {
	vs := ex.vertices[vertex]
	id := model.TaskID{Vertex: vertex, Index: vs.nextIndex}
	vs.nextIndex++
	var udf UDF
	var src *SourceSpec
	if factory, ok := ex.spec.udfs[vertex]; ok {
		udf = factory(id.Index)
	} else {
		s := ex.spec.sources[vertex]
		src = &s
	}
	if _, err := ex.scheduler.Place(id); err != nil {
		return nil, fmt.Errorf("engine: placing %s: %w", id, err)
	}
	t := newTask(ex, id, udf, src, ex.cfg.Seed+int64(len(vs.tasks))*7919+int64(vs.nextIndex))
	vs.tasks = append(vs.tasks, t)
	vs.refreshCount()
	return t, nil
}

// launchAll starts every bootstrapped task.
func (ex *execution) launchAll() {
	for _, name := range ex.order {
		for _, t := range ex.vertices[name].tasks {
			ex.launch(t)
		}
	}
}

// recordLifecycle emits one lifecycle event to the configured flight
// recorder (no-op when none is set). Event time is seconds since
// execution start, matching the simulator's virtual clock convention.
func (ex *execution) recordLifecycle(kind string, lc obs.Lifecycle) {
	ex.cfg.Recorder.RecordLifecycle(time.Since(ex.start).Seconds(), kind, lc)
}

// launch starts one task goroutine.
func (ex *execution) launch(t *task) {
	ex.recordLifecycle(obs.KindTaskStart, obs.Lifecycle{Vertex: t.id.Vertex, Task: t.id.String()})
	ex.wg.Add(1)
	if t.src != nil {
		ex.sourcesLeft.Add(1)
		go t.runSource()
		return
	}
	go t.run()
}

// taskDone is each task goroutine's exit hook.
func (ex *execution) taskDone(t *task) {
	ex.mu.Lock()
	ex.accountUsageLocked()
	ex.retired += t.busyNs.Load()
	// Unplace frees the slot; a nil map hit can only mean a double exit,
	// which the registry removal below would also surface.
	_ = ex.scheduler.Unplace(t.id)
	vs := ex.vertices[t.id.Vertex]
	for i, tt := range vs.tasks {
		if tt == t {
			vs.tasks = append(vs.tasks[:i], vs.tasks[i+1:]...)
			break
		}
	}
	vs.refreshCount()
	ex.mu.Unlock()
	// Unblock producers shipping into this task's queue; reportFailure
	// (if any) already ran, so pendingRecovery covers the gap before the
	// source counter drops.
	close(t.dead)
	if t.src != nil {
		ex.sourcesLeft.Add(-1)
	}
	ex.wg.Done()
}

// accountUsageLocked integrates task usage (caller holds ex.mu).
func (ex *execution) accountUsageLocked() {
	total := 0
	for _, name := range ex.order {
		total += len(ex.vertices[name].tasks)
	}
	ex.meter.Advance(time.Since(ex.start).Seconds(), total, ex.rm.Leased())
}

// masterLoop runs the control plane until shutdown.
func (ex *execution) masterLoop() {
	adjust := time.NewTicker(ex.cfg.AdjustmentInterval)
	defer adjust.Stop()
	quiesce := time.NewTicker(ex.cfg.MeasurementInterval)
	defer quiesce.Stop()
	var recordC <-chan time.Time
	if ex.cfg.RecordInterval > 0 {
		record := time.NewTicker(ex.cfg.RecordInterval)
		defer record.Stop()
		recordC = record.C
	}
	var ckptC <-chan time.Time
	var ckptDone <-chan ckptResult
	if ex.guarantee.Enabled() {
		ckptTicker := time.NewTicker(ex.cfg.CheckpointInterval)
		defer ckptTicker.Stop()
		ckptC = ckptTicker.C
		ckptDone = ex.coord.done
	}

	var lastProcessed int64
	stableRounds := 0
	stopping := false

	finish := func() {
		ex.stopAllTasks()
		ex.wg.Wait()
		ex.drainReports()
		ex.mu.Lock()
		ex.accountUsageLocked()
		ex.mu.Unlock()
		ex.recordLifecycle(obs.KindDropCounters, obs.Lifecycle{
			LostRecords:       ex.lostRecords.Load(),
			DroppedReports:    ex.droppedReports.Load(),
			DroppedNoConsumer: ex.dropNoConsumer.Load(),
		})
		ex.wheel.stop()
		close(ex.doneCh)
	}

	for {
		select {
		case msg := <-ex.reports:
			ex.consumeReport(msg)
		case f := <-ex.failures:
			ex.handleTaskFailure(f, stopping)
		case vertex := <-ex.restarts:
			ex.restartTask(vertex, stopping)
		case <-adjust.C:
			ex.adjustTick()
		case <-recordC:
			ex.recordTick()
		case <-ckptC:
			if !stopping {
				ex.startCheckpoint()
			}
		case res := <-ckptDone:
			ex.commitCheckpoint(res)
		case <-quiesce.C:
			if !stopping {
				continue
			}
			cur := ex.totalProcessed()
			if cur == lastProcessed {
				stableRounds++
			} else {
				stableRounds = 0
			}
			lastProcessed = cur
			if stableRounds >= 3 {
				finish()
				return
			}
		case <-ex.stopCh:
			stopping = true
			// Force path: stop sources immediately; workers drain via the
			// quiescence checks above.
			ex.stopSources()
		}
		// pendingRecovery keeps a crashed source counted until its
		// replacement launches, so a transient sourcesLeft == 0 during a
		// restart cannot end the job early.
		if !stopping && ex.sourcesLeft.Load() == 0 && ex.pendingRecovery.Load() == 0 {
			stopping = true
		}
	}
}

// startCheckpoint injects one barrier checkpoint at the sources (master
// loop only). Injection needs a quiet topology: no crashed task awaiting
// restart, no draining task, at least one live source — otherwise this
// tick is skipped and the next one retries. A predecessor still in
// flight is superseded first (its alignment counts are stale anyway if
// it has not completed within a full interval).
func (ex *execution) startCheckpoint() {
	if ex.pendingRecovery.Load() != 0 {
		return
	}
	if id := ex.coord.inFlight(); id != 0 {
		ex.abortCheckpoint(id, "superseded by next interval")
	}
	ex.mu.Lock()
	var sourceEmitters []*emitter
	expect := make(map[*task]int)
	pending := 0
	for _, name := range ex.order {
		for _, t := range ex.vertices[name].tasks {
			if t.draining.Load() {
				ex.mu.Unlock()
				return
			}
			if t.src != nil {
				// One barrier per offset shard: each shard emitter injects
				// the marker into its own rings and acks its own log's
				// watermark.
				for _, e := range t.emitters {
					sourceEmitters = append(sourceEmitters, e)
					pending++
				}
				continue
			}
			// A worker aligns one barrier per live upstream producer
			// emitter, on every inbound edge (barriers broadcast to all
			// consumers regardless of wiring pattern). No task is draining
			// here — the loop above bailed otherwise — so every producer
			// counts.
			exp := 0
			for _, ek := range ex.spec.graph.InEdges(name) {
				for _, p := range ex.vertices[ek.Source].tasks {
					exp += len(p.emitters)
				}
			}
			expect[t] = exp
			pending++
		}
	}
	if len(sourceEmitters) == 0 {
		ex.mu.Unlock()
		return
	}
	ex.ckptSeq++
	id := ex.ckptSeq
	ex.coord.begin(id, ex.topoGen.Load(), expect, pending)
	for _, e := range sourceEmitters {
		e.barrierReq.Store(id)
		e.wake()
	}
	ex.mu.Unlock()
	ex.recordLifecycle(obs.KindCheckpointStart, obs.Lifecycle{CheckpointID: id})
}

// commitCheckpoint finalizes a fully-acked checkpoint (master loop
// only): validate the topology generation, persist the source offsets,
// then prune replay buffers and dedup windows up to the committed
// watermarks. Persist-then-prune: a crash between the two replays a
// committed suffix — duplicates, which the guarantee ladder absorbs —
// whereas the reverse order could lose records.
func (ex *execution) commitCheckpoint(res ckptResult) {
	now := time.Since(ex.start).Seconds()
	dur := time.Since(res.started).Seconds()
	if res.gen != ex.topoGen.Load() {
		// The topology changed while the final acks were in flight: the
		// barrier cut may straddle rewired channels, so discard it.
		ex.checkpointsAborted.Add(1)
		ex.recordLifecycle(obs.KindCheckpointAbort, obs.Lifecycle{
			CheckpointID: res.id, Reason: "topology changed during alignment",
		})
		ex.cfg.Telemetry.ObserveCheckpoint(now, dur, 0, res.maxStall.Seconds(), false)
		return
	}
	ck := ckpt.Checkpoint{
		ID:            res.id,
		At:            now,
		SourceOffsets: make(map[string]uint64, len(res.offsets)),
		Emitted:       ex.emitted.Load(),
		LostRecords:   ex.lostRecords.Load(),
	}
	ex.srcMu.Lock()
	for srcID, off := range res.offsets {
		if l := ex.srcLogs[srcID]; l != nil {
			ck.SourceOffsets[l.name] = off
		}
	}
	ex.srcMu.Unlock()
	if err := ex.ckptStore.Save(ck); err != nil {
		ex.checkpointsAborted.Add(1)
		ex.recordLifecycle(obs.KindCheckpointAbort, obs.Lifecycle{
			CheckpointID: res.id, Reason: "store: " + err.Error(),
		})
		ex.cfg.Telemetry.ObserveCheckpoint(now, dur, 0, res.maxStall.Seconds(), false)
		return
	}
	ex.srcMu.Lock()
	for srcID, off := range res.offsets {
		if l := ex.srcLogs[srcID]; l != nil {
			l.commitTo(off)
		}
	}
	ex.srcMu.Unlock()
	for _, d := range ex.dedups {
		d.pruneAll(res.offsets)
	}
	ex.checkpointsCommitted.Add(1)
	interval := time.Since(ex.lastCommit).Seconds()
	ex.lastCommit = time.Now()
	ex.cfg.Telemetry.ObserveCheckpoint(now, dur, interval, res.maxStall.Seconds(), true)
	ex.recordLifecycle(obs.KindCheckpointCommit, obs.Lifecycle{
		CheckpointID: res.id, DurationSeconds: dur, CommittedOffsets: ck.TotalOffsets(),
	})
}

// abortCheckpoint discards in-flight checkpoint id (master loop only).
func (ex *execution) abortCheckpoint(id int64, reason string) {
	if !ex.coord.abort(id) {
		return
	}
	ex.checkpointsAborted.Add(1)
	ex.recordLifecycle(obs.KindCheckpointAbort, obs.Lifecycle{CheckpointID: id, Reason: reason})
	ex.cfg.Telemetry.ObserveCheckpoint(time.Since(ex.start).Seconds(), 0, 0, 0, false)
}

// noteChurn records a topology change (master loop only): the
// generation bump invalidates any checkpoint begun before it — an
// in-flight one is aborted now, a completed-but-uncommitted one is
// discarded by commitCheckpoint's generation check.
func (ex *execution) noteChurn(reason string) {
	if !ex.guarantee.Enabled() {
		return
	}
	ex.topoGen.Add(1)
	if id := ex.coord.inFlight(); id != 0 {
		ex.abortCheckpoint(id, reason)
	}
}

// reportFailure is called from a dying task goroutine's recover handler,
// before taskDone tears the task down. It must never block forever: if
// the failure queue is full (pathological crash storm) the failure is
// counted but the task stays down.
func (ex *execution) reportFailure(t *task, reason any) {
	ex.taskFailures.Add(1)
	ex.recordLifecycle(obs.KindTaskPanic, obs.Lifecycle{
		Vertex: t.id.Vertex, Task: t.id.String(), Reason: fmt.Sprint(reason),
	})
	ex.pendingRecovery.Add(1)
	select {
	case ex.failures <- taskFailure{t: t, reason: reason}:
	default:
		ex.pendingRecovery.Add(-1)
	}
}

// handleTaskFailure processes one crash on the master loop: the dead task
// leaves all routing tables, its queued records are counted as lost, and
// its vertex either gets a delayed restart or — past the restart cap —
// degrades and fails the job.
func (ex *execution) handleTaskFailure(f taskFailure, stopping bool) {
	ex.mu.Lock()
	g := ex.spec.graph
	for _, ek := range g.InEdges(f.t.id.Vertex) {
		pos := ex.edgePos[ek]
		for _, p := range ex.vertices[ek.Source].tasks {
			for _, pe := range p.emitters {
				pe.gates[pos].removeConsumer(f.t)
			}
		}
	}
	ex.mu.Unlock()
	ex.noteChurn("task failure")
	for _, e := range f.t.emitters {
		if e.srcLog != nil {
			// Park the dead source shard's offset log for its replacement,
			// which replays the uncommitted suffix (harmless while stopping:
			// the log is simply never reattached).
			ex.orphanSourceLog(f.t.id.Vertex, e.srcLog)
		}
		// The dying goroutine's defer closed these rings already; repeat
		// for any consumer that was wired in mid-crash (Close is
		// idempotent).
		e.closeOutRings()
	}
	// Whatever was queued for the dead task is gone with it; the batch
	// slices never reached a consumer, so the master recycles them.
	// Close first so producers stop pushing, then drain: the dead task's
	// goroutine no longer pops (reportFailure runs during its unwind), so
	// Drain cannot race a Pop.
	lostByEdge := make(map[model.EdgeKey]int64)
	for _, r := range f.t.ringsSnapshot() {
		r.Close()
		for {
			b, ok := r.Drain()
			if !ok {
				break
			}
			if b.barrier == 0 {
				ex.lostRecords.Add(int64(len(b.items)))
				lostByEdge[f.t.inEdge(b)] += int64(len(b.items))
				ex.pool.put(b.poolHint, b.items)
			}
		}
	}
	// Audit the reclaim: one ring_drain event per inbound edge that lost
	// queued records, so the flight recorder shows where a crash cost
	// data instead of a bare execution-wide counter.
	for _, ek := range g.InEdges(f.t.id.Vertex) {
		if lost := lostByEdge[ek]; lost > 0 {
			ex.recordLifecycle(obs.KindRingDrain, obs.Lifecycle{
				Vertex:      f.t.id.Vertex,
				Task:        f.t.id.String(),
				Edge:        ek.String(),
				LostRecords: lost,
			})
		}
	}
	if stopping {
		ex.pendingRecovery.Add(-1)
		return
	}
	ex.superviseFailure(f.t.id.Vertex, f.reason)
}

// superviseFailure advances a vertex's restart state (master loop only):
// schedule a backoff-delayed restart, or degrade past the cap. The
// caller has already incremented pendingRecovery for this failure.
func (ex *execution) superviseFailure(vertex string, reason any) {
	sup := ex.supervisors[vertex]
	if sup == nil {
		sup = &supervisor{backoff: NewBackoff(
			ex.cfg.RestartBackoff, ex.cfg.RestartBackoffCap, 0.2,
			rand.NewSource(ex.cfg.Seed^int64(len(vertex))*1099511628211),
		)}
		ex.supervisors[vertex] = sup
	}
	sup.lastFailure = time.Now()
	if sup.degraded || sup.backoff.Attempts() >= ex.cfg.MaxTaskRestarts {
		sup.degraded = true
		ex.recordLifecycle(obs.KindVertexDegraded, obs.Lifecycle{
			Vertex: vertex, Reason: fmt.Sprint(reason), Attempts: sup.backoff.Attempts(),
		})
		ex.pendingRecovery.Add(-1)
		if ex.failErr == nil {
			ex.failErr = fmt.Errorf("engine: vertex %q degraded after %d failed restarts (last failure: %v)",
				vertex, ex.cfg.MaxTaskRestarts, reason)
		}
		ex.stopOnce.Do(func() { close(ex.stopCh) })
		return
	}
	delay := sup.backoff.Next()
	ex.recordLifecycle(obs.KindTaskRestart, obs.Lifecycle{
		Vertex: vertex, Attempts: sup.backoff.Attempts(), BackoffSeconds: delay.Seconds(),
	})
	time.AfterFunc(delay, func() {
		select {
		case ex.restarts <- vertex:
		case <-ex.doneCh:
		}
	})
}

// restartTask replaces one crashed task of a vertex (master loop only).
func (ex *execution) restartTask(vertex string, stopping bool) {
	if stopping {
		ex.pendingRecovery.Add(-1)
		return
	}
	ex.mu.Lock()
	ex.accountUsageLocked()
	t, err := ex.createTask(vertex)
	if err == nil {
		ex.wireTaskLocked(t)
	}
	ex.mu.Unlock()
	if err != nil {
		// Placement failed (pool exhausted by concurrent scale-ups):
		// treat as another failure so the backoff keeps climbing toward
		// the degradation cap instead of spinning.
		ex.superviseFailure(vertex, err)
		return
	}
	ex.taskRestarts.Add(1)
	ex.launch(t)
	ex.noteChurn("restart rewired topology")
	if ex.guarantee.Enabled() {
		// At-least-once recovery: every source replays its uncommitted
		// suffix, re-covering whatever died queued at or in flight to the
		// crashed task. Flags are set before pendingRecovery drops so no
		// barrier can be injected ahead of the replays (sources service
		// replay requests before barrier requests).
		ex.requestReplayAll()
	}
	ex.pendingRecovery.Add(-1)
}

// wireTaskLocked connects a fresh task to live upstream producers and
// downstream consumers (caller holds ex.mu).
func (ex *execution) wireTaskLocked(t *task) {
	g := ex.spec.graph
	vertex := t.id.Vertex
	for _, ek := range g.InEdges(vertex) {
		pos := ex.edgePos[ek]
		for _, p := range ex.vertices[ek.Source].tasks {
			if p == t || p.draining.Load() {
				continue
			}
			ex.connect(p, pos, ek, t)
		}
	}
	for _, ek := range g.OutEdges(vertex) {
		pos := ex.edgePos[ek]
		for _, c := range ex.vertices[ek.Target].tasks {
			if c.draining.Load() {
				continue
			}
			ex.connect(t, pos, ek, c)
		}
	}
}

// consumeReport feeds one task/channel report into the manager.
func (ex *execution) consumeReport(msg any) {
	switch m := msg.(type) {
	case taskReportMsg:
		ex.manager.ReportTask(m.report)
	case channelReportMsg:
		ex.manager.ReportChannel(m.report)
	}
}

// drainReports empties the report queue after tasks exited.
func (ex *execution) drainReports() {
	for {
		select {
		case msg := <-ex.reports:
			ex.consumeReport(msg)
		default:
			return
		}
	}
}

// totalProcessed sums all live tasks' processed counters.
func (ex *execution) totalProcessed() int64 {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	var total int64
	for _, name := range ex.order {
		for _, t := range ex.vertices[name].tasks {
			total += t.processed.Load()
		}
	}
	return total
}

// recordTick appends one time-series row.
func (ex *execution) recordTick() {
	row := Row{
		Elapsed:     time.Since(ex.start),
		Probes:      make(map[string]ProbeSample),
		Parallelism: make(map[string]int),
		Emitted:     ex.emitted.Load(),
	}
	for _, name := range ex.probes.Names() {
		count, mean, p95 := ex.probes.Probe(name).RecSnapshot()
		row.Probes[name] = ProbeSample{Count: count, Mean: mean, P95: p95}
	}
	ex.mu.Lock()
	for _, name := range ex.order {
		row.Parallelism[name] = int(ex.vertices[name].count.Load())
	}
	ex.mu.Unlock()
	ex.rowsMu.Lock()
	ex.rows = append(ex.rows, row)
	ex.rowsMu.Unlock()
}

// observeSLOs feeds per-constraint SLO accounting each adjustment
// interval. Bounded probes see the ground-truth per-path latency
// stream, so each drives its own SLO cell; without bounded probes the
// telemetry falls back to its sampled end-to-end sketch against the
// spec's constraints.
func (ex *execution) observeSLOs() {
	if ex.cfg.Telemetry == nil {
		return
	}
	now := time.Since(ex.start).Seconds()
	fed := false
	for _, name := range ex.probes.Names() {
		p := ex.probes.Probe(name)
		if p.BoundSeconds <= 0 {
			continue
		}
		q := obs.DefaultSLOQuantile
		if p.Quantile > 0 && p.Quantile < 1 {
			q = p.Quantile // percentile constraint: track its own quantile
		}
		count, bad, est := p.TailState(q)
		ex.cfg.Telemetry.ObserveSLO(now, obs.SLOTarget{
			Constraint:   name,
			Quantile:     q,
			BoundSeconds: p.BoundSeconds,
		}, count, bad, est, ex.cfg.Recorder)
		fed = true
	}
	if !fed {
		ex.cfg.Telemetry.ObserveSLOs(now, ex.sloTargets, ex.cfg.Recorder)
	}
}

// adjustTick runs one adjustment interval: summary, batching deadlines,
// scaling.
func (ex *execution) adjustTick() {
	for _, name := range ex.probes.Names() {
		ex.probes.Probe(name).AdjSnapshot()
	}
	// Current parallelism counts only live (non-draining) tasks: draining
	// tasks left the routing tables and must not be double-counted by
	// consecutive scale-down decisions.
	ex.mu.Lock()
	par := make(map[string]int, len(ex.order))
	for _, name := range ex.order {
		par[name] = int(ex.vertices[name].count.Load())
	}
	ex.mu.Unlock()

	summary := qos.MergePartials(par, ex.manager.PartialSummary())
	ex.lastSummary.Store(summary)

	// Reset-on-success: a vertex that stayed up for BackoffResetAfter
	// since its last crash earns its base backoff back (adjustTick runs
	// on the master loop, same goroutine as the supervisors).
	for _, sup := range ex.supervisors {
		if !sup.degraded && !sup.lastFailure.IsZero() &&
			time.Since(sup.lastFailure) >= ex.cfg.BackoffResetAfter {
			sup.backoff.Reset()
		}
	}

	if ex.guarantee.Enabled() {
		// Push the interval's suppressed-duplicate delta to telemetry.
		_, dups, _ := ex.sinkStats()
		if d := dups - ex.lastDupCount; d > 0 {
			ex.cfg.Telemetry.AddDeduped(time.Since(ex.start).Seconds(), d)
		}
		ex.lastDupCount = dups
	}

	if len(ex.spec.constraints) > 0 {
		deadlines := ex.controller.Update(summary, ex.spec.constraints)
		ex.applyDeadlines(deadlines)
	}

	var decision *core.Decision
	if ex.scaler != nil {
		ex.adjustRounds++
		if d, err := ex.scaler.Decide(summary, par); err == nil {
			decision = d
		}
	}
	// Telemetry scrapes even without an elastic scaler (decision nil),
	// and before recording so the audit event carries the drift flags.
	drift := ex.cfg.Telemetry.ObserveInterval(time.Since(ex.start).Seconds(), summary, decision, par)
	ex.scrapeShardGauges()
	ex.scrapeDataplane()
	ex.observeSLOs()
	if decision == nil {
		return
	}
	sd := obs.NewScalingDecision(ex.adjustRounds, decision, par)
	sd.Drift = drift
	ex.cfg.Recorder.RecordDecision(time.Since(ex.start).Seconds(), sd)
	for _, a := range decision.Actions {
		if d := a.Delta(); d > 0 {
			ex.scaleUp(a.Vertex, d)
			ex.scaleUps.Add(1)
		} else if d < 0 {
			ex.scaleDown(a.Vertex, -d)
			ex.scaleDowns.Add(1)
		}
	}
}

// scrapeShardGauges publishes per-shard source emission counters each
// adjustment interval so the dash can show shard balance.
func (ex *execution) scrapeShardGauges() {
	store := ex.cfg.Telemetry.Store()
	if store == nil {
		return
	}
	now := time.Since(ex.start).Seconds()
	ex.mu.Lock()
	defer ex.mu.Unlock()
	for _, name := range ex.order {
		for _, t := range ex.vertices[name].tasks {
			if t.src == nil {
				continue
			}
			for _, e := range t.emitters {
				store.Gauge("nephelix_source_shard_emitted", map[string]string{
					"vertex": name,
					"task":   t.id.String(),
					"shard":  strconv.Itoa(e.shard),
				}).Set(now, float64(e.emitCount.Load()))
			}
		}
	}
}

// applyDeadlines publishes new flush deadlines to all gates.
func (ex *execution) applyDeadlines(deadlines map[model.EdgeKey]float64) {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	for key, dl := range deadlines {
		ex.deadlines[key] = time.Duration(dl * float64(time.Second))
	}
	for _, name := range ex.order {
		for _, t := range ex.vertices[name].tasks {
			for _, e := range t.emitters {
				changed := false
				for _, g := range e.gates {
					if ex.spec.edgeBatching(g.edge) != BatchingAdaptive {
						continue
					}
					if d, ok := ex.deadlines[g.edge]; ok {
						g.setDeadline(d)
						changed = true
					}
				}
				if changed {
					// Wheel entries armed under the old deadline may now be
					// stale; a flush pass re-evaluates the buffers and
					// re-arms at the new deadlines.
					e.flushReq.Store(true)
					e.wake()
				}
			}
		}
	}
}

// scaleUp adds n tasks to a vertex and wires them in.
func (ex *execution) scaleUp(vertex string, n int) {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	ex.accountUsageLocked()
	for i := 0; i < n; i++ {
		t, err := ex.createTask(vertex)
		if err != nil {
			return // pool exhausted; keep what we have
		}
		ex.wireTaskLocked(t)
		ex.launch(t)
		ex.noteChurn("scale-up")
	}
}

// scaleDown marks the newest n tasks of a vertex as draining and removes
// them from all routing tables; they exit on their own after draining.
func (ex *execution) scaleDown(vertex string, n int) {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	vs := ex.vertices[vertex]
	g := ex.spec.graph
	live := make([]*task, 0, len(vs.tasks))
	for _, t := range vs.tasks {
		if !t.draining.Load() {
			live = append(live, t)
		}
	}
	// Never drain below the vertex's minimum parallelism (and never to
	// zero): the routing tables must always have a live consumer.
	floor := vs.jv.MinParallelism
	if floor < 1 {
		floor = 1
	}
	for i := 0; i < n && len(live) > floor; i++ {
		t := live[len(live)-1]
		live = live[:len(live)-1]
		// Unroute from upstream producers.
		for _, ek := range g.InEdges(vertex) {
			pos := ex.edgePos[ek]
			for _, p := range ex.vertices[ek.Source].tasks {
				for _, pe := range p.emitters {
					pe.gates[pos].removeConsumer(t)
				}
			}
		}
		t.draining.Store(true)
		// Wake the drained task so its park ends and the drain-idle clock
		// starts now rather than at the next housekeeping timeout.
		t.wake()
		for _, e := range t.emitters {
			e.wake()
		}
		ex.noteChurn("scale-down")
	}
	vs.refreshCount()
}

// stopSources asks all source tasks to finish.
func (ex *execution) stopSources() {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	for _, name := range ex.order {
		for _, t := range ex.vertices[name].tasks {
			if t.src != nil {
				t.draining.Store(true)
				for _, e := range t.emitters {
					e.wake()
				}
			}
		}
	}
}

// stopAllTasks force-quits every remaining task.
func (ex *execution) stopAllTasks() {
	ex.mu.Lock()
	tasks := make([]*task, 0)
	for _, name := range ex.order {
		tasks = append(tasks, ex.vertices[name].tasks...)
	}
	ex.mu.Unlock()
	for _, t := range tasks {
		select {
		case <-t.quit:
		default:
			close(t.quit)
		}
	}
}

// Execution is the public handle on a submitted job.
type Execution struct {
	ex *execution
}

// Wait blocks until the job finishes (sources exhausted and pipelines
// drained), Stop is called, or the context is cancelled. If the job
// failed — a vertex degraded past its restart cap — Wait returns that
// error on every call.
func (e *Execution) Wait(ctx context.Context) error {
	select {
	case <-e.ex.doneCh:
		return e.ex.failErr
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Err returns the terminal failure after the execution finished (nil
// while running or after a clean finish).
func (e *Execution) Err() error {
	select {
	case <-e.ex.doneCh:
		return e.ex.failErr
	default:
		return nil
	}
}

// Stop initiates a graceful shutdown: sources stop, pipelines drain.
func (e *Execution) Stop() {
	e.ex.stopOnce.Do(func() { close(e.ex.stopCh) })
}

// Done reports whether the execution has finished.
func (e *Execution) Done() bool {
	select {
	case <-e.ex.doneCh:
		return true
	default:
		return false
	}
}

// Parallelism returns a vertex's current live task count.
func (e *Execution) Parallelism(vertex string) int { return e.ex.parallelismOf(vertex) }

// Emitted returns the total number of source emissions.
func (e *Execution) Emitted() int64 { return e.ex.emitted.Load() }

// TaskHours returns the resource consumption so far.
func (e *Execution) TaskHours() float64 {
	e.ex.mu.Lock()
	defer e.ex.mu.Unlock()
	e.ex.accountUsageLocked()
	return e.ex.meter.TaskHours()
}

// Summary returns the latest global QoS summary (nil before the first
// adjustment interval).
func (e *Execution) Summary() *qos.Summary { return e.ex.lastSummary.Load() }

// ScaleEvents returns the numbers of scale-up and scale-down actions.
func (e *Execution) ScaleEvents() (ups, downs int64) {
	return e.ex.scaleUps.Load(), e.ex.scaleDowns.Load()
}

// DroppedReports returns how many QoS reports were shed under load
// (diagnostics; sheds accuracy, never data).
func (e *Execution) DroppedReports() int64 { return e.ex.droppedReports.Load() }

// TaskFailures returns how many task goroutines died to a recovered UDF
// panic.
func (e *Execution) TaskFailures() int64 { return e.ex.taskFailures.Load() }

// TaskRestarts returns how many crashed tasks the supervisor replaced.
func (e *Execution) TaskRestarts() int64 { return e.ex.taskRestarts.Load() }

// LostRecords returns how many records died with crashed tasks (queued
// at or in flight to a task that panicked).
func (e *Execution) LostRecords() int64 { return e.ex.lostRecords.Load() }

// DroppedNoConsumer returns how many records this execution dropped
// because a gate had no consumers; zero in healthy executions.
func (e *Execution) DroppedNoConsumer() int64 { return e.ex.dropNoConsumer.Load() }

// Rows returns the recorded time series (requires Config.RecordInterval).
func (e *Execution) Rows() []Row {
	e.ex.rowsMu.Lock()
	defer e.ex.rowsMu.Unlock()
	out := make([]Row, len(e.ex.rows))
	copy(out, e.ex.rows)
	return out
}

// Guarantee returns the execution's processing-guarantee level.
func (e *Execution) Guarantee() ckpt.Guarantee { return e.ex.guarantee }

// Checkpoints returns how many barrier checkpoints committed and how
// many aborted (superseded, topology churn, or store failure).
func (e *Execution) Checkpoints() (committed, aborted int64) {
	return e.ex.checkpointsCommitted.Load(), e.ex.checkpointsAborted.Load()
}

// ReplayedRecords returns how many buffered records sources re-emitted
// during recoveries (each replay round counts its full uncommitted
// suffix, so one record can be counted across several rounds).
func (e *Execution) ReplayedRecords() int64 { return e.ex.replayedRecords.Load() }

// SourceRecords returns the number of distinct offsets sources ever
// assigned — the denominator for loss accounting under guarantees
// (replays re-emit existing offsets and do not move it). Zero when
// guarantees are disabled.
func (e *Execution) SourceRecords() int64 { return e.ex.sourceRecords() }

// SinkDeliveries returns the sink-side dedup accounting: distinct
// (source, offset) pairs delivered, duplicate deliveries observed
// (suppressed before the UDF under ExactlyOnce, delivered under
// AtLeastOnce), and holes — offsets a checkpoint committed that never
// reached a sink, i.e. actual loss under guarantees. All zero when
// guarantees are disabled.
func (e *Execution) SinkDeliveries() (distinct, dups, holes int64) {
	return e.ex.sinkStats()
}

// ReplayStalls returns how many emissions sources deferred because the
// replay buffer was at capacity (backpressure, not loss).
func (e *Execution) ReplayStalls() int64 { return e.ex.replayStalls() }

// LingerTimeouts returns how many exhausted sources gave up waiting for
// a final checkpoint to commit their replay buffer; non-zero means the
// tail of the stream was never covered by a checkpoint.
func (e *Execution) LingerTimeouts() int64 { return e.ex.lingerTimeouts.Load() }

// LastCheckpoint returns the most recently committed checkpoint, if any.
func (e *Execution) LastCheckpoint() (ckpt.Checkpoint, bool) {
	if e.ex.ckptStore == nil {
		return ckpt.Checkpoint{}, false
	}
	ck, ok, err := e.ex.ckptStore.Latest()
	if err != nil {
		return ckpt.Checkpoint{}, false
	}
	return ck, ok
}

// CPUUtilization returns the mean task CPU (UDF) utilization so far:
// busy time over allocated task time.
func (e *Execution) CPUUtilization() float64 {
	ex := e.ex
	ex.mu.Lock()
	defer ex.mu.Unlock()
	ex.accountUsageLocked()
	busy := float64(ex.retired)
	for _, name := range ex.order {
		for _, t := range ex.vertices[name].tasks {
			busy += float64(t.busyNs.Load())
		}
	}
	if ts := ex.meter.TaskSeconds(); ts > 0 {
		return busy / 1e9 / ts
	}
	return 0
}
