package engine

import (
	"sync/atomic"
	"testing"
	"time"

	"nephelix/internal/model"
	"nephelix/internal/obs"
	"nephelix/internal/probe"
	"nephelix/internal/workload"
)

// TestObsEngineTracing: head-sampled spans must flow through the live
// engine, decomposing per-hop latency for every vertex and edge on the
// record path.
func TestObsEngineTracing(t *testing.T) {
	g := buildChain(t, 2, 2, model.PatternRoundRobin)
	var emitted, received atomic.Int64
	tr := obs.NewTracer(1) // trace everything: assertions stay exact

	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.ConstantSchedule{RatePerSecond: 400, Length: 1.5},
			Emit: func(ctx *Context) {
				emitted.Add(1)
				ctx.Emit(0, Record{EmitTime: time.Now()})
			},
		}).
		SetUDF("work", func(int) UDF { return &forwarder{} }).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received} })

	exec, err := New(Config{Seed: 21, Tracer: tr}).Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, exec, 30*time.Second)

	if tr.Emissions() != uint64(emitted.Load()) {
		t.Errorf("tracer saw %d emissions, source emitted %d", tr.Emissions(), emitted.Load())
	}
	if tr.Spans() != int64(tr.Emissions()) {
		t.Errorf("every-1 sampling started %d spans for %d emissions", tr.Spans(), tr.Emissions())
	}
	finished, mean := tr.EndToEnd()
	if finished == 0 || finished > tr.Spans() {
		t.Errorf("finished spans: got %d of %d", finished, tr.Spans())
	}
	if mean <= 0 {
		t.Errorf("end-to-end mean %v, want > 0", mean)
	}
	for _, vertex := range []string{"work", "sink"} {
		if n, svc := tr.VertexAttribution(vertex); n == 0 || svc < 0 {
			t.Errorf("vertex %s: %d traced samples, service %v", vertex, n, svc)
		}
	}
	for _, edge := range []string{"src->work", "work->sink"} {
		n, batch, _, wait, channel := tr.EdgeAttribution(edge)
		if n == 0 {
			t.Errorf("edge %s: no traced hops", edge)
			continue
		}
		if batch < 0 || wait < 0 || channel < batch+wait-1e-9 {
			t.Errorf("edge %s: implausible decomposition batch=%v wait=%v channel=%v", edge, batch, wait, channel)
		}
	}
}

// TestObsEngineDecisionAudit: the engine's elastic scale-up must land on
// the flight recorder with the parallelism diff and the justification
// (bottleneck flag or fitted model inputs), alongside the task_start
// events of the spawned replicas.
func TestObsEngineDecisionAudit(t *testing.T) {
	g := buildChain(t, 1, 8, model.PatternRoundRobin)
	var received atomic.Int64
	probes := probe.NewProbeSet()
	rec := obs.NewRecorder(0)

	seq, err := model.ParseSequence(g, "src->work", "work", "work->sink")
	if err != nil {
		t.Fatal(err)
	}
	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.ConstantSchedule{RatePerSecond: 600, Length: 6},
			Emit: func(ctx *Context) {
				ctx.Emit(0, Record{EmitTime: time.Now(), Sampled: ctx.Sample()})
			},
		}).
		SetUDF("work", func(int) UDF {
			return UDFFunc(func(ctx *Context, rec Record) {
				busySpin(3 * time.Millisecond)
				ctx.Emit(0, rec)
			})
		}).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received} }).
		AddConstraint(&model.Constraint{
			Name: "c", Sequence: seq, Bound: 50 * time.Millisecond, Window: 10 * time.Second,
		})

	exec, err := New(Config{
		Seed:                22,
		Elastic:             true,
		MeasurementInterval: 100 * time.Millisecond,
		AdjustmentInterval:  400 * time.Millisecond,
		Recorder:            rec,
	}).Submit(spec, probes)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, exec, 30*time.Second)

	ups, _ := exec.ScaleEvents()
	if ups == 0 {
		t.Skip("run produced no scale-ups; nothing to audit (timing-sensitive)")
	}
	decisions := rec.Decisions()
	if len(decisions) == 0 {
		t.Fatal("scale-ups happened but no decision events were recorded")
	}
	audited := 0
	for i, ev := range decisions {
		d := ev.Decision
		if d.New["work"] > d.Old["work"] {
			audited++
			justified := false
			for _, cd := range d.Constraints {
				if cd.Bottleneck || len(cd.Model) > 0 {
					justified = true
				}
			}
			if !justified {
				t.Errorf("decision %d scaled up without bottleneck flag or model inputs: %+v", i, d)
			}
			if len(d.Actions) == 0 {
				t.Errorf("decision %d changed parallelism but lists no actions", i)
			}
		}
	}
	if audited == 0 {
		t.Errorf("%d scale-ups performed but no decision event shows a work increase", ups)
	}

	byKind := eventsByKind(rec)
	// 3 initial tasks plus one start per added replica.
	if got := len(byKind[obs.KindTaskStart]); got < 3+int(ups) {
		t.Errorf("task_start events: got %d, want >= %d (3 initial + %d scale-up spawns)", got, 3+int(ups), ups)
	}
	if len(byKind[obs.KindDropCounters]) != 1 {
		t.Errorf("drop_counters events: got %d, want 1", len(byKind[obs.KindDropCounters]))
	}
}

// TestObsEngineTelemetry: the live engine must feed the telemetry plane
// every adjustment interval — QoS gauges, interval counters and Go
// runtime stats — and feed the e2e histogram from finished trace spans.
// The /timeseries handler must then serve the scraped store.
func TestObsEngineTelemetry(t *testing.T) {
	g := buildChain(t, 1, 4, model.PatternRoundRobin)
	var received atomic.Int64
	tel := obs.NewTelemetry(0)
	tr := obs.NewTracer(1)

	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.ConstantSchedule{RatePerSecond: 300, Length: 2.5},
			Emit: func(ctx *Context) {
				ctx.Emit(0, Record{EmitTime: time.Now(), Sampled: ctx.Sample()})
			},
		}).
		SetUDF("work", func(int) UDF { return &forwarder{} }).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received} })

	exec, err := New(Config{
		Seed:                23,
		MeasurementInterval: 100 * time.Millisecond,
		AdjustmentInterval:  400 * time.Millisecond,
		Telemetry:           tel,
		Tracer:              tr,
	}).Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, exec, 30*time.Second)

	if received.Load() == 0 {
		t.Fatal("no records delivered")
	}
	snap := tel.Snapshot("", 0, 0)
	byName := make(map[string]int)
	for _, s := range snap.Series {
		byName[s.Name]++
	}
	// Telemetry scrapes even without an elastic scaler: the QoS plane and
	// interval counter must be populated after a multi-interval run.
	for _, want := range []string{
		"nephelix_adjust_intervals_total",
		"nephelix_vertex_parallelism",
		"nephelix_vertex_utilization",
		"nephelix_edge_queue_wait_seconds",
		"nephelix_go_heap_alloc_bytes",
		"nephelix_e2e_latency_seconds",
	} {
		if byName[want] == 0 {
			t.Errorf("series %s missing from engine telemetry", want)
		}
	}
	for _, s := range snap.Series {
		switch s.Name {
		case "nephelix_adjust_intervals_total":
			if s.Total < 2 {
				t.Errorf("adjust intervals counted %v, want >= 2", s.Total)
			}
		case "nephelix_e2e_latency_seconds":
			if s.Count == 0 || s.Sum <= 0 {
				t.Errorf("e2e histogram: count %d sum %v, want observations from finished spans", s.Count, s.Sum)
			}
		}
	}
}
