package engine

import (
	"math/rand"
	"time"
)

// Backoff computes exponential restart delays with multiplicative jitter:
// base·2^attempt, capped, then scaled by a random factor in
// [1−Jitter, 1+Jitter]. The jitter source is injected so supervisors are
// deterministic under a fixed seed (and testable without sleeping).
type Backoff struct {
	base    time.Duration
	cap     time.Duration
	jitter  float64
	rng     *rand.Rand
	attempt int
}

// NewBackoff creates a backoff policy. jitter is a fraction (0.2 → ±20%);
// values outside [0, 1) disable jitter. src must not be nil.
func NewBackoff(base, cap time.Duration, jitter float64, src rand.Source) *Backoff {
	if base <= 0 {
		base = time.Millisecond
	}
	if cap < base {
		cap = base
	}
	if jitter < 0 || jitter >= 1 {
		jitter = 0
	}
	return &Backoff{base: base, cap: cap, jitter: jitter, rng: rand.New(src)}
}

// Next returns the delay for the current attempt and advances the
// counter. The exponential is computed before jitter, so the cap bounds
// the mean delay; with jitter j the worst case is cap·(1+j).
func (b *Backoff) Next() time.Duration {
	d := b.base << uint(b.attempt)
	if d > b.cap || d <= 0 { // d <= 0 catches shift overflow
		d = b.cap
	}
	b.attempt++
	if b.jitter > 0 {
		f := 1 + b.jitter*(2*b.rng.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	return d
}

// Reset clears the attempt counter after a period of stability, so a
// task that crashes again much later starts from the base delay.
func (b *Backoff) Reset() { b.attempt = 0 }

// Attempts returns the number of Next calls since the last Reset.
func (b *Backoff) Attempts() int { return b.attempt }
