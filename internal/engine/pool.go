package engine

import "sync"

// batchPool is the execution-wide free list of Record slices, the
// engine-side counterpart of the simulator's batch pooling (sim/pool.go).
// Unlike the single-threaded simulator, slices here cross goroutines —
// detached from a producer's gate at flush, in flight inside a batch,
// returned by whichever goroutine finishes with them — so the free list
// is mutex-guarded. One uncontended lock round-trip per batch is noise
// next to the channel send the batch already pays; what the pool buys is
// the per-flush slice allocation and its GC pressure.
//
// Ownership contract (see DESIGN.md "Engine data plane"):
//
//   - A gate owns its buffer slices (buf, perKey values) exclusively;
//     only the producing task's goroutine touches them.
//   - takeShared/takeKeyed transfer ownership of the flushed slice to the
//     shipment's batch. Broadcast shipments each own a pooled copy; the
//     gate keeps (and re-uses) its buffer.
//   - Exactly one party returns every shipped slice: the consumer after
//     handleBatch, the producer when the consumer is dead, or the master
//     when it drains a crashed task's queue. After put the slice must
//     not be touched.
//   - A batch that dies with a panicking UDF is never recycled (the
//     collector reclaims it); correctness first, reuse second.
type batchPool struct {
	mu   sync.Mutex
	free [][]Record
}

// maxPooledBatches bounds the free list so a transient backpressure
// spike cannot pin an arbitrary amount of memory for the rest of the
// execution.
const maxPooledBatches = 4096

// get returns an empty batch slice, reusing recycled capacity when
// available. The zero return is nil: append allocates on first use and
// the allocation is recovered at recycle time.
func (p *batchPool) get() []Record {
	p.mu.Lock()
	n := len(p.free)
	if n == 0 {
		p.mu.Unlock()
		return nil
	}
	b := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	p.mu.Unlock()
	return b
}

// put returns a slice whose records have been fully consumed. Records
// are zeroed first so recycled capacity pins no payloads or trace spans;
// elements past len were zeroed by an earlier put and are never re-set.
func (p *batchPool) put(b []Record) {
	if cap(b) == 0 {
		return
	}
	for i := range b {
		b[i] = Record{}
	}
	p.mu.Lock()
	if len(p.free) < maxPooledBatches {
		p.free = append(p.free, b[:0])
	}
	p.mu.Unlock()
}
