package engine

import "sync"

// batchPool is the execution-wide free list of Record slices, the
// engine-side counterpart of the simulator's batch pooling (sim/pool.go).
// Unlike the single-threaded simulator, slices here cross goroutines —
// detached from a producer's gate at flush, in flight inside a batch,
// returned by whichever goroutine finishes with them — so the free
// lists are mutex-guarded. With the sharded data plane many emitters
// and consumers hit the pool concurrently; the free list is split into
// poolShards independently locked shards, and every caller carries a
// stable hint assigned at task/emitter construction so its traffic
// stays on one shard (hints are spread round-robin, keeping the shards
// balanced without any cross-shard stealing).
//
// Ownership contract (see DESIGN.md "Engine data plane"):
//
//   - A gate owns its buffer slices (buf, perKey values) exclusively;
//     only the producing emitter's goroutine touches them.
//   - takeShared/takeKeyed transfer ownership of the flushed slice to the
//     shipment's batch. Broadcast shipments each own a pooled copy; the
//     gate keeps (and re-uses) its buffer.
//   - Exactly one party returns every shipped slice: the consumer after
//     handleBatch, the producer when the consumer is dead, or the master
//     when it drains a crashed task's rings. After put the slice must
//     not be touched.
//   - A batch that dies with a panicking UDF is never recycled (the
//     collector reclaims it); correctness first, reuse second.
//
// The zero value is ready to use (gate-level tests build gates around
// a zero batchPool).
type batchPool struct {
	shards [poolShards]poolShard
}

type poolShard struct {
	mu   sync.Mutex
	free [][]Record
	// hits/misses/puts count get() outcomes and returns; guarded by mu
	// (the counters piggyback on the lock every caller already takes,
	// so instrumentation adds no synchronization).
	hits   int64
	misses int64
	puts   int64
}

// poolShardStats is one shard's sampled counters.
type poolShardStats struct {
	Hits   int64
	Misses int64
	Puts   int64
}

// poolShards is a power of two so hint masking is cheap.
const poolShards = 8

// maxPooledPerShard bounds each shard's free list so a transient
// backpressure spike cannot pin an arbitrary amount of memory for the
// rest of the execution (total bound matches the pre-shard pool).
const maxPooledPerShard = 4096 / poolShards

// get returns an empty batch slice, reusing recycled capacity when
// available. The zero return is nil: append allocates on first use and
// the allocation is recovered at recycle time.
func (p *batchPool) get(hint int) []Record {
	s := &p.shards[hint&(poolShards-1)]
	s.mu.Lock()
	n := len(s.free)
	if n == 0 {
		s.misses++
		s.mu.Unlock()
		return nil
	}
	b := s.free[n-1]
	s.free[n-1] = nil
	s.free = s.free[:n-1]
	s.hits++
	s.mu.Unlock()
	return b
}

// stats snapshots every shard's counters (sampler path; takes each
// shard lock briefly).
func (p *batchPool) stats() [poolShards]poolShardStats {
	var out [poolShards]poolShardStats
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		out[i] = poolShardStats{Hits: s.hits, Misses: s.misses, Puts: s.puts}
		s.mu.Unlock()
	}
	return out
}

// put returns a slice whose records have been fully consumed. Records
// are zeroed first so recycled capacity pins no payloads or trace spans;
// elements past len were zeroed by an earlier put and are never re-set.
func (p *batchPool) put(hint int, b []Record) {
	if cap(b) == 0 {
		return
	}
	for i := range b {
		b[i] = Record{}
	}
	s := &p.shards[hint&(poolShards-1)]
	s.mu.Lock()
	if len(s.free) < maxPooledPerShard {
		s.free = append(s.free, b[:0])
	}
	s.puts++
	s.mu.Unlock()
}
