package engine

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nephelix/internal/model"
	"nephelix/internal/obs"
	"nephelix/internal/workload"
)

// eventsByKind buckets recorded flight-recorder events for assertions.
func eventsByKind(rec *obs.Recorder) map[string][]obs.Event {
	out := make(map[string][]obs.Event)
	for _, ev := range rec.Events() {
		out[ev.Kind] = append(out[ev.Kind], ev)
	}
	return out
}

// panicky forwards records downstream but panics on every Nth record
// across all task replicas of the vertex.
type panicky struct {
	n     *atomic.Int64
	every int64
}

func (p *panicky) Process(ctx *Context, rec Record) {
	if p.n.Add(1)%p.every == 0 {
		panic("injected UDF failure")
	}
	ctx.Emit(0, rec)
}

// TestEnginePanicRecovery is the headline robustness check: a UDF that
// panics every Nth record must not crash the process. The supervisor
// restarts the crashed tasks with backoff and the job still completes
// cleanly.
func TestEnginePanicRecovery(t *testing.T) {
	g := buildChain(t, 2, 2, model.PatternRoundRobin)
	var emitted, received, seen atomic.Int64

	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.ConstantSchedule{RatePerSecond: 300, Length: 1.5},
			Emit: func(ctx *Context) {
				n := emitted.Add(1)
				ctx.Emit(0, Record{Key: uint64(n)})
			},
		}).
		SetUDF("work", func(int) UDF { return &panicky{n: &seen, every: 100} }).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received} })

	rec := obs.NewRecorder(0)
	exec, err := New(Config{
		Seed:              11,
		RestartBackoff:    2 * time.Millisecond,
		RestartBackoffCap: 10 * time.Millisecond,
		MaxTaskRestarts:   50,
		Recorder:          rec,
	}).Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := exec.Wait(ctx); err != nil {
		t.Fatalf("job should survive UDF panics, got: %v", err)
	}
	if exec.Err() != nil {
		t.Errorf("Err() after clean finish = %v, want nil", exec.Err())
	}
	if exec.TaskFailures() == 0 {
		t.Error("expected at least one supervised task failure")
	}
	if exec.TaskRestarts() == 0 {
		t.Error("expected at least one supervised task restart")
	}
	if received.Load() == 0 {
		t.Error("no records delivered after recovery")
	}
	// Crashed tasks lose in-flight records, never duplicate them.
	if received.Load() > emitted.Load() {
		t.Errorf("received %d > emitted %d", received.Load(), emitted.Load())
	}

	// The flight recorder must tell the whole story: starts for the
	// initial tasks and every respawn, one panic per supervised failure,
	// one restart event per supervised restart, and the drop counters at
	// shutdown.
	byKind := eventsByKind(rec)
	// 1 src + 2 work + 1 sink initially, plus one start per restart.
	wantStarts := 4 + int(exec.TaskRestarts())
	if got := len(byKind[obs.KindTaskStart]); got != wantStarts {
		t.Errorf("task_start events: got %d, want %d (4 initial + %d restarts)",
			got, wantStarts, exec.TaskRestarts())
	}
	if got := len(byKind[obs.KindTaskPanic]); got != int(exec.TaskFailures()) {
		t.Errorf("task_panic events: got %d, want %d (TaskFailures)", got, exec.TaskFailures())
	}
	for _, ev := range byKind[obs.KindTaskPanic] {
		if ev.Lifecycle.Vertex != "work" || !strings.Contains(ev.Lifecycle.Reason, "injected UDF failure") {
			t.Errorf("panic event lacks vertex/reason: %+v", ev.Lifecycle)
		}
	}
	if got := len(byKind[obs.KindTaskRestart]); got != int(exec.TaskRestarts()) {
		t.Errorf("task_restart events: got %d, want %d (TaskRestarts)", got, exec.TaskRestarts())
	}
	for _, ev := range byKind[obs.KindTaskRestart] {
		if ev.Lifecycle.Attempts < 1 || ev.Lifecycle.BackoffSeconds <= 0 {
			t.Errorf("restart event lacks backoff data: %+v", ev.Lifecycle)
		}
	}
	if got := len(byKind[obs.KindVertexDegraded]); got != 0 {
		t.Errorf("clean recovery must not record degradation, got %d events", got)
	}
	drops := byKind[obs.KindDropCounters]
	if len(drops) != 1 {
		t.Fatalf("drop_counters events: got %d, want exactly 1 at shutdown", len(drops))
	}
	if exec.LostRecords() > 0 && drops[0].Lifecycle.LostRecords != exec.LostRecords() {
		t.Errorf("drop_counters LostRecords = %d, execution reports %d",
			drops[0].Lifecycle.LostRecords, exec.LostRecords())
	}
}

// TestEngineVertexDegradesCleanly: a vertex whose tasks keep crashing
// past the restart cap must fail the job with an error instead of
// deadlocking the pipeline.
func TestEngineVertexDegradesCleanly(t *testing.T) {
	g := buildChain(t, 1, 1, model.PatternRoundRobin)
	var emitted, received atomic.Int64

	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.ConstantSchedule{RatePerSecond: 300, Length: 10},
			Emit: func(ctx *Context) {
				n := emitted.Add(1)
				ctx.Emit(0, Record{Key: uint64(n)})
			},
		}).
		SetUDF("work", func(int) UDF {
			return UDFFunc(func(*Context, Record) { panic("always down") })
		}).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received} })

	rec := obs.NewRecorder(0)
	exec, err := New(Config{
		Seed:              12,
		RestartBackoff:    2 * time.Millisecond,
		RestartBackoffCap: 5 * time.Millisecond,
		MaxTaskRestarts:   2,
		Recorder:          rec,
	}).Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	werr := exec.Wait(ctx)
	if werr == nil {
		t.Fatal("Wait returned nil for a degraded job")
	}
	if !strings.Contains(werr.Error(), "degraded") {
		t.Errorf("error should name the degraded vertex cap: %v", werr)
	}
	if exec.Err() == nil || exec.Err().Error() != werr.Error() {
		t.Errorf("Err() = %v, want the Wait error %v", exec.Err(), werr)
	}
	// Initial crash + MaxTaskRestarts failed restarts.
	if got := exec.TaskFailures(); got < 3 {
		t.Errorf("TaskFailures() = %d, want >= 3", got)
	}

	// The degradation must be on the audit trail with the vertex, the
	// exhausted restart budget and the final panic reason.
	byKind := eventsByKind(rec)
	degraded := byKind[obs.KindVertexDegraded]
	if len(degraded) == 0 {
		t.Fatal("no vertex_degraded event recorded")
	}
	lc := degraded[0].Lifecycle
	if lc.Vertex != "work" || lc.Attempts < 2 || !strings.Contains(lc.Reason, "always down") {
		t.Errorf("vertex_degraded payload incomplete: %+v", lc)
	}
	if len(byKind[obs.KindTaskRestart]) != 2 {
		t.Errorf("task_restart events: got %d, want 2 (MaxTaskRestarts)", len(byKind[obs.KindTaskRestart]))
	}
	if len(byKind[obs.KindDropCounters]) != 1 {
		t.Errorf("drop_counters events at shutdown: got %d, want 1", len(byKind[obs.KindDropCounters]))
	}
}

// TestEngineStopIdempotent: Stop twice and Wait on an already-stopped
// execution must both be safe no-ops (regression for double-close).
func TestEngineStopIdempotent(t *testing.T) {
	g := buildChain(t, 2, 2, model.PatternRoundRobin)
	var emitted, received atomic.Int64

	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.ConstantSchedule{RatePerSecond: 200, Length: 30},
			Emit: func(ctx *Context) {
				emitted.Add(1)
				ctx.Emit(0, Record{Key: uint64(emitted.Load())})
			},
		}).
		SetUDF("work", func(int) UDF { return &forwarder{} }).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received} })

	exec, err := New(Config{Seed: 13}).Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	exec.Stop()
	exec.Stop() // second call must not panic on a closed channel
	waitDone(t, exec, 20*time.Second)

	if !exec.Done() {
		t.Error("Done() = false after Wait returned")
	}
	// Wait on the already-stopped execution returns immediately.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := exec.Wait(ctx); err != nil {
		t.Errorf("Wait on stopped execution = %v, want nil", err)
	}
	exec.Stop() // and stopping a finished execution is still a no-op
}
