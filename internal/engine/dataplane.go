package engine

import (
	"strconv"
	"time"

	"nephelix/internal/model"
	"nephelix/internal/obs"
)

// dataplaneScraper derives one obs.DataplaneSnapshot per adjustment
// interval from the sharded data plane's cumulative counters: ring
// push/stall/pop totals per edge, emitter pacing per source shard, the
// flush wheel's fire/park accounting and the batch pool's hit/miss
// counts. It runs on the master goroutine only; all cross-goroutine
// reads go through the counters' own atomic (or mutex) snapshots, so
// sampling adds no synchronization to the hot path. Rates are the
// difference of consecutive cumulative samples over the elapsed
// interval, with negative deltas clamped to zero (rings and tasks come
// and go under scaling and churn).
type dataplaneScraper struct {
	lastAt    time.Time
	prevEdges map[model.EdgeKey]edgeTotals
	prevBusy  map[string]int64 // per-task cumulative busyNs, keyed by TaskID string
	prevEmit  map[string]int64 // per-lane cumulative emitted, keyed by task/shard
	prevWheel wheelStats
	prevPool  [poolShards]poolShardStats
}

// edgeTotals is one edge's summed cumulative ring counters.
type edgeTotals struct {
	pushes uint64
	fails  uint64
	pops   uint64
}

// edgeSample accumulates one edge's walk state before derivation.
type edgeSample struct {
	rings     int
	occupancy int
	capacity  int
	highWater int
	totals    edgeTotals
}

// scrapeDataplane samples the data plane and feeds telemetry (master
// loop, once per adjustment interval). No-op without telemetry.
func (ex *execution) scrapeDataplane() {
	if ex.cfg.Telemetry == nil {
		return
	}
	if ex.dp == nil {
		ex.dp = &dataplaneScraper{
			lastAt:    ex.start,
			prevEdges: make(map[model.EdgeKey]edgeTotals),
			prevBusy:  make(map[string]int64),
			prevEmit:  make(map[string]int64),
		}
	}
	dp := ex.dp
	now := time.Now()
	interval := now.Sub(dp.lastAt).Seconds()
	if interval <= 0 {
		interval = ex.cfg.AdjustmentInterval.Seconds()
	}
	snap := obs.DataplaneSnapshot{
		At:              time.Since(ex.start).Seconds(),
		Layer:           "engine",
		IntervalSeconds: interval,
	}

	ex.mu.Lock()
	// Per-edge ring walk: every producer emitter's gates hold the rings
	// into each consumer; aggregate them per job edge.
	edges := make(map[model.EdgeKey]*edgeSample)
	busyNow := make(map[string]int64)
	vertexBusy := make(map[string]float64)
	for _, name := range ex.order {
		vs := ex.vertices[name]
		var busyDelta int64
		for _, t := range vs.tasks {
			b := t.busyNs.Load()
			id := t.id.String()
			busyNow[id] = b
			if prev, ok := dp.prevBusy[id]; ok && b >= prev {
				busyDelta += b - prev
			} else {
				busyDelta += b
			}
			for _, e := range t.emitters {
				for _, g := range e.gates {
					es := edges[g.edge]
					if es == nil {
						es = &edgeSample{}
						edges[g.edge] = es
					}
					for _, ref := range g.snapshot() {
						st := ref.ring.Stats()
						es.rings++
						es.occupancy += ref.ring.Len()
						es.capacity += ref.ring.Cap()
						if hw := int(st.HighWater); hw > es.highWater {
							es.highWater = hw
						}
						es.totals.pushes += st.Pushes
						es.totals.fails += st.PushFails
						es.totals.pops += st.Pops
					}
				}
			}
		}
		if n := len(vs.tasks); n > 0 {
			frac := float64(busyDelta) / (interval * 1e9 * float64(n))
			if frac > 1 {
				frac = 1
			}
			vertexBusy[name] = frac
		}
	}

	// Source emitter lanes: intended vs actual emit rate, park/wake.
	for _, name := range ex.order {
		vs := ex.vertices[name]
		for _, t := range vs.tasks {
			if t.src == nil {
				continue
			}
			n := int(vs.count.Load())
			if n < 1 {
				n = 1
			}
			shards := len(t.emitters)
			intended := t.src.Schedule.Rate(snap.At) / float64(n*shards)
			if intended < 0 {
				intended = 0
			}
			for _, e := range t.emitters {
				emitted := e.emitCount.Load()
				key := t.id.String() + "/" + strconv.Itoa(e.shard)
				var d int64
				if prev, ok := dp.prevEmit[key]; ok && emitted >= prev {
					d = emitted - prev
				} else {
					d = emitted
				}
				dp.prevEmit[key] = emitted
				actual := float64(d) / interval
				lag := 0.0
				if intended > 0 && actual < intended {
					lag = (intended - actual) / intended
				}
				snap.Shards = append(snap.Shards, obs.DataplaneShard{
					Vertex:       name,
					Task:         t.id.String(),
					Shard:        e.shard,
					Emitted:      emitted,
					ActualRate:   actual,
					IntendedRate: intended,
					LagFrac:      lag,
					Parks:        e.parks.Load(),
					Wakes:        e.wakes.Load(),
				})
			}
		}
	}
	ex.mu.Unlock()
	dp.prevBusy = busyNow

	// Derive per-edge interval rates in deterministic edge order.
	g := ex.spec.graph
	for _, e := range g.Edges() {
		ek := e.Key()
		es := edges[ek]
		if es == nil {
			continue
		}
		prev := dp.prevEdges[ek]
		dp.prevEdges[ek] = es.totals
		de := obs.DataplaneEdge{
			Edge:      ek.String(),
			Producer:  ek.Source,
			Consumer:  ek.Target,
			Rings:     es.rings,
			Occupancy: es.occupancy,
			Capacity:  es.capacity,
			HighWater: es.highWater,
			Pushes:    es.totals.pushes,
			PushFails: es.totals.fails,
			Pops:      es.totals.pops,
		}
		de.PushRate = counterRate(es.totals.pushes, prev.pushes, interval)
		de.PopRate = counterRate(es.totals.pops, prev.pops, interval)
		de.StallRate = counterRate(es.totals.fails, prev.fails, interval)
		attempts := de.PushRate + de.StallRate
		if attempts > 0 {
			de.StallFrac = de.StallRate / attempts
		}
		if es.capacity > 0 {
			de.OccupancyFrac = float64(es.occupancy) / float64(es.capacity)
		}
		if de.PopRate > 0 {
			de.RingWaitSeconds = float64(es.occupancy) / de.PopRate
		}
		de.ConsumerBusy = vertexBusy[ek.Target]
		snap.Edges = append(snap.Edges, de)
	}

	ws := ex.wheel.stats(now.UnixNano())
	parked := float64(ws.parkedNs-dp.prevWheel.parkedNs) / (interval * 1e9)
	if parked < 0 {
		parked = 0
	}
	if parked > 1 {
		parked = 1
	}
	snap.Wheel = &obs.DataplaneWheel{Fires: ws.fires, Armed: ws.armed, ParkedFrac: parked}
	dp.prevWheel = ws

	ps := ex.pool.stats()
	for i := range ps {
		dh := ps[i].Hits - dp.prevPool[i].Hits
		dm := ps[i].Misses - dp.prevPool[i].Misses
		rate := 1.0
		if dh+dm > 0 {
			rate = float64(dh) / float64(dh+dm)
		}
		snap.Pool = append(snap.Pool, obs.DataplanePoolShard{
			Shard: i, Hits: ps[i].Hits, Misses: ps[i].Misses, Puts: ps[i].Puts, HitRate: rate,
		})
	}
	dp.prevPool = ps
	dp.lastAt = now

	ex.cfg.Telemetry.ObserveDataplane(snap, ex.cfg.Recorder)
}

// counterRate is the clamped per-second delta of a cumulative counter.
func counterRate(cur, prev uint64, interval float64) float64 {
	if cur <= prev || interval <= 0 {
		return 0
	}
	return float64(cur-prev) / interval
}
