package engine

import (
	"flag"
	"time"
)

// Process-wide data-plane tuning, set by RegisterFlags. Configs that
// leave SourceShards or WheelResolution zero fall back to these before
// the built-in defaults, so CLIs tune the engine without plumbing the
// values through every library layer that builds a Config (benchmark
// suites, app drivers).
var (
	flagSourceShards    int
	flagWheelResolution time.Duration
)

// RegisterFlags registers the engine's data-plane tuning flags on fs
// (typically flag.CommandLine, before flag.Parse):
//
//	-engine.shards  source emitter shards per source task
//	-engine.wheel   flush-timer wheel resolution
//
// Zero keeps the built-in defaults (GOMAXPROCS/2 clamped to [1,4]
// shards; wheel at the flush tick). Explicit Config fields always win
// over the flags.
func RegisterFlags(fs *flag.FlagSet) {
	fs.IntVar(&flagSourceShards, "engine.shards", 0,
		"engine source emitter shards per source task (0 = GOMAXPROCS/2, clamped to [1,4])")
	fs.DurationVar(&flagWheelResolution, "engine.wheel", 0,
		"engine flush-timer wheel resolution (0 = flush tick, default 1ms)")
}
