package engine

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nephelix/internal/ckpt"
)

// This file is the engine half of the processing-guarantees subsystem
// (see internal/ckpt for the shared primitives and DESIGN.md
// "Processing guarantees" for the protocol):
//
//   - sourceLog gives every source task a monotonically increasing
//     offset sequence and a bounded replay buffer of un-checkpointed
//     records. Logs survive their task: a crashed source's log is
//     orphaned to the vertex and reattached to the supervised
//     replacement, which replays the uncommitted suffix.
//   - ckptCoordinator tracks one in-flight barrier checkpoint: the
//     master computes each task's expected barrier count at injection,
//     tasks acknowledge alignment from their own goroutines, and the
//     full ack set completes the checkpoint back to the master loop.
//   - sinkDedup wraps a ckpt.DedupTable per sink vertex (shared across
//     the vertex's tasks, because rotation rerouting can deliver a
//     replayed record to a different task than the original).

// logEntry is one buffered source emission: the record as emitted plus
// the out-edge it left on, so a replay retraces the original routing.
type logEntry struct {
	rec  Record
	edge int32
}

// sourceLog is one source partition's offset authority and replay
// buffer. The owning source goroutine stamps and appends on emit and
// replays on request; the master commits watermarks and reads the next
// offset — all under mu (uncontended in steady state).
type sourceLog struct {
	id   int32  // stable partition id, survives task restarts
	name string // stable partition name for checkpoint metadata
	cap  int    // advisory bound: sources pause emission when full

	mu   sync.Mutex
	next uint64 // next offset to assign
	base uint64 // committed watermark == offset of buf[0]
	buf  []logEntry

	// replayReq asks the owning goroutine to re-emit the uncommitted
	// suffix (set by the master after a restart landed, or at orphan
	// reattachment).
	replayReq atomic.Int32
	// stalls counts emissions deferred because the buffer was full.
	stalls atomic.Int64
}

// stamp assigns the next offset to rec and appends it to the replay
// buffer (source goroutine only).
func (l *sourceLog) stamp(rec *Record, edge int32) {
	l.mu.Lock()
	rec.srcID = l.id
	rec.offset = l.next
	l.next++
	e := logEntry{rec: *rec, edge: edge}
	e.rec.span = nil // replays re-trace nothing; don't pin spans
	l.buf = append(l.buf, e)
	l.mu.Unlock()
}

// nextOffset returns the snapshot watermark for a barrier emitted now:
// every offset below it was shipped before the barrier.
func (l *sourceLog) nextOffset() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// commitTo advances the committed watermark, releasing the buffered
// prefix (master loop).
func (l *sourceLog) commitTo(watermark uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if watermark <= l.base {
		return
	}
	drop := watermark - l.base
	if drop > uint64(len(l.buf)) {
		drop = uint64(len(l.buf))
	}
	n := copy(l.buf, l.buf[drop:])
	for i := n; i < len(l.buf); i++ {
		l.buf[i] = logEntry{}
	}
	l.buf = l.buf[:n]
	l.base = watermark
}

// uncommitted returns the replay-buffer length.
func (l *sourceLog) uncommitted() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// full reports whether the buffer reached its advisory bound.
func (l *sourceLog) full() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf) >= l.cap
}

// copyUncommitted appends the uncommitted entries to dst (replay
// snapshot; the caller re-emits outside the lock).
func (l *sourceLog) copyUncommitted(dst []logEntry) []logEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append(dst, l.buf...)
}

// ckptResult is a completed checkpoint's payload back to the master.
type ckptResult struct {
	id       int64
	gen      int64 // topology generation at injection
	started  time.Time
	offsets  map[int32]uint64 // source id → snapshot watermark
	maxStall time.Duration    // worst barrier-alignment stall
}

// ckptCoordinator tracks the single in-flight barrier checkpoint. The
// master begins and aborts; task goroutines acknowledge. All state is
// guarded by mu; completion is handed to the master over done.
type ckptCoordinator struct {
	mu       sync.Mutex
	id       int64 // in-flight checkpoint id (0 = none)
	gen      int64
	started  time.Time
	expect   map[*task]int // per worker task: barriers to align
	pending  int           // unacked tasks (sources + workers)
	offsets  map[int32]uint64
	maxStall time.Duration

	done chan ckptResult
}

func newCkptCoordinator() *ckptCoordinator {
	return &ckptCoordinator{done: make(chan ckptResult, 1)}
}

// begin arms the coordinator for checkpoint id (master, no checkpoint
// in flight).
func (c *ckptCoordinator) begin(id, gen int64, expect map[*task]int, pending int) {
	c.mu.Lock()
	c.id = id
	c.gen = gen
	c.started = time.Now()
	c.expect = expect
	c.pending = pending
	c.offsets = make(map[int32]uint64, 4)
	c.maxStall = 0
	c.mu.Unlock()
}

// inFlight returns the current checkpoint id (0 when idle).
func (c *ckptCoordinator) inFlight() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.id
}

// abort discards checkpoint id if it is still in flight.
func (c *ckptCoordinator) abort(id int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id == 0 || c.id != id {
		return false
	}
	c.id = 0
	c.expect = nil
	return true
}

// expected returns how many barriers task t must align for checkpoint
// id, or -1 when id is not in flight or t is not part of it (created
// after injection, or already acked).
func (c *ckptCoordinator) expected(id int64, t *task) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.id != id {
		return -1
	}
	exp, ok := c.expect[t]
	if !ok {
		return -1
	}
	return exp
}

// ackSource acknowledges a source's barrier emission with its snapshot
// watermark (source goroutine).
func (c *ckptCoordinator) ackSource(id int64, src int32, watermark uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.id != id {
		return
	}
	if _, dup := c.offsets[src]; dup {
		return
	}
	c.offsets[src] = watermark
	c.finishAckLocked()
}

// ackWorker acknowledges a worker task's completed alignment (task
// goroutine).
func (c *ckptCoordinator) ackWorker(id int64, t *task, stall time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.id != id {
		return
	}
	if _, ok := c.expect[t]; !ok {
		return
	}
	delete(c.expect, t)
	if stall > c.maxStall {
		c.maxStall = stall
	}
	c.finishAckLocked()
}

// finishAckLocked completes the checkpoint once every task acked.
func (c *ckptCoordinator) finishAckLocked() {
	c.pending--
	if c.pending > 0 {
		return
	}
	res := ckptResult{id: c.id, gen: c.gen, started: c.started, offsets: c.offsets, maxStall: c.maxStall}
	c.id = 0
	c.expect = nil
	c.offsets = nil
	select {
	case c.done <- res:
	default:
		// The master has an uncollected completion (cannot happen with a
		// single in-flight checkpoint, but never block a task goroutine).
	}
}

// sinkDedup is one sink vertex's shared (source, offset) dedup table.
// Shared across the vertex's tasks and pruned by the master, hence the
// mutex; the bitmap windows keep the steady-state admit allocation-free.
type sinkDedup struct {
	mu  sync.Mutex
	tab *ckpt.DedupTable
}

func newSinkDedup() *sinkDedup { return &sinkDedup{tab: ckpt.NewDedupTable()} }

// admit reports whether (src, off) is a first delivery.
func (d *sinkDedup) admit(src int32, off uint64) bool {
	d.mu.Lock()
	ok := d.tab.Admit(src, off)
	d.mu.Unlock()
	return ok
}

// pruneAll advances every source window to its committed watermark.
func (d *sinkDedup) pruneAll(offsets map[int32]uint64) {
	d.mu.Lock()
	for src, off := range offsets {
		d.tab.Prune(src, off)
	}
	d.mu.Unlock()
}

// stats returns the table counters.
func (d *sinkDedup) stats() (distinct, dups, holes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tab.Distinct(), d.tab.Dups(), d.tab.Holes()
}

// ---- execution-side plumbing (called from engine.go) ----

// takeSourceLog attaches a log to a new source task of vertex: a
// crashed predecessor's orphaned log when one exists (its uncommitted
// suffix is scheduled for replay), a fresh one otherwise. Caller may
// hold ex.mu; srcMu is leaf-level.
func (ex *execution) takeSourceLog(vertex string) *sourceLog {
	ex.srcMu.Lock()
	defer ex.srcMu.Unlock()
	if logs := ex.orphanLogs[vertex]; len(logs) > 0 {
		l := logs[len(logs)-1]
		ex.orphanLogs[vertex] = logs[:len(logs)-1]
		if len(l.buf) > 0 {
			l.replayReq.Store(1)
		}
		return l
	}
	ex.nextSrcID++
	l := &sourceLog{
		id:   ex.nextSrcID,
		name: vertex + "#" + strconv.Itoa(int(ex.nextSrcID)),
		cap:  ex.cfg.ReplayBufferRecords,
	}
	ex.srcLogs[l.id] = l
	return l
}

// orphanSourceLog parks a crashed source's log for the replacement task.
func (ex *execution) orphanSourceLog(vertex string, l *sourceLog) {
	ex.srcMu.Lock()
	ex.orphanLogs[vertex] = append(ex.orphanLogs[vertex], l)
	ex.srcMu.Unlock()
}

// requestReplayAll asks every source log's owner to re-emit its
// uncommitted suffix (master, after a restart landed). Logs whose
// source already exited cleanly are empty; the flag is harmless there.
func (ex *execution) requestReplayAll() {
	ex.srcMu.Lock()
	for _, l := range ex.srcLogs {
		l.replayReq.Store(1)
	}
	ex.srcMu.Unlock()
	// Parked source shards only act on the flag once awake; ex.mu after
	// srcMu matches the established lock order (srcMu is a leaf).
	ex.mu.Lock()
	for _, name := range ex.order {
		for _, t := range ex.vertices[name].tasks {
			if t.src == nil {
				continue
			}
			for _, e := range t.emitters {
				e.wake()
			}
		}
	}
	ex.mu.Unlock()
}

// sourceRecords sums the distinct offsets ever emitted across sources.
func (ex *execution) sourceRecords() int64 {
	ex.srcMu.Lock()
	defer ex.srcMu.Unlock()
	var total int64
	for _, l := range ex.srcLogs {
		l.mu.Lock()
		total += int64(l.next)
		l.mu.Unlock()
	}
	return total
}

// replayStalls sums emissions deferred on full replay buffers.
func (ex *execution) replayStalls() int64 {
	ex.srcMu.Lock()
	defer ex.srcMu.Unlock()
	var total int64
	for _, l := range ex.srcLogs {
		total += l.stalls.Load()
	}
	return total
}

// sinkStats sums the dedup counters over all sink vertices.
func (ex *execution) sinkStats() (distinct, dups, holes int64) {
	for _, d := range ex.dedups {
		di, du, ho := d.stats()
		distinct += di
		dups += du
		holes += ho
	}
	return
}
