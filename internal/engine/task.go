package engine

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nephelix/internal/model"
	"nephelix/internal/obs"
	"nephelix/internal/qos"
	"nephelix/internal/ring"
)

// task is one running task of the cooperative data plane. Its input
// side is a set of SPSC rings (one per upstream producer emitter); its
// output side is one or more emitters, each owning a private set of
// gates and the rings into every downstream consumer.
//
// Workers and sinks have exactly one emitter, owned by the task
// goroutine. Source tasks have Config.SourceShards emitters, each run
// by its own shard goroutine with a private pacing loop, rng, QoS
// reporter and (under guarantees) offset log — so one source task can
// saturate several cores without any cross-shard synchronization on
// the emit path.
type task struct {
	id  model.TaskID
	ex  *execution
	udf UDF
	src *SourceSpec

	// emitters is the output side; immutable after newTask.
	emitters []*emitter

	// inRings is the consumer-side ring set (copy-on-write: the master
	// appends at wiring time, the consumer goroutine prunes closed+empty
	// rings after producer exits). inMu serializes rewrites only.
	inRings atomic.Pointer[[]*ring.SPSC[batch]]
	inMu    sync.Mutex

	// wakeCh + parked implement the consumer's park/wake protocol:
	// the consumer publishes parked=true, re-checks its rings, then
	// blocks on wakeCh; producers push, then check parked and poke
	// wakeCh. Sequential consistency of sync/atomic makes the lost-
	// wakeup interleaving impossible (either the producer sees parked
	// and wakes, or the consumer's re-check sees the push).
	wakeCh chan struct{}
	parked atomic.Bool

	// draining is set by the master after the task left all routing
	// tables; the task exits once its input has been idle for DrainIdle.
	draining atomic.Bool
	// quit force-stops the task (execution shutdown).
	quit chan struct{}
	// dead closes when the task goroutine has exited (crash or drain), so
	// producers spinning on its full input rings get out instead of
	// waiting on a consumer that will never pop again.
	dead chan struct{}
	// shardAbort (sources only) stops sibling shard goroutines after one
	// of them panicked, so the task dies — and restarts — as a unit.
	shardAbort chan struct{}
	abortOnce  sync.Once

	// processed counts handled records (quiescence detection).
	processed atomic.Int64

	// Consumer-side reporters, owned by the task goroutine; interval
	// aggregates are sent to the master over ex.reports. Source shards
	// carry their own reporters (emitter.reporter).
	reporter  *qos.TaskReporter
	chanReps  map[model.ChannelID]*qos.ChannelReporter
	lastFlush time.Time

	// inEdges is the vertex's inbound edge list, snapshotted once so the
	// per-batch edge resolution never re-allocates it from the graph.
	inEdges []model.EdgeKey
	// edgeNames caches EdgeKey.String() per inbound edge for trace hops.
	edgeNames map[model.EdgeKey]string

	// now is the task's amortized wall clock: refreshed once per
	// delivered batch, per UDF service completion and per park wakeup —
	// never per emitted record. Task-goroutine-only state.
	now time.Time

	// dedup is the sink vertex's shared dedup table (guarantees only).
	dedup *sinkDedup

	// Barrier-alignment state (task-goroutine-only): alignSeen barriers
	// of alignID arrived; alignDone is the last id fully aligned and
	// forwarded.
	alignID    int64
	alignSeen  int
	alignDone  int64
	alignStart time.Time

	// busyNs integrates UDF time for utilization reporting.
	busyNs atomic.Int64

	// parks counts consumer park transitions (entered blocked state);
	// wakes counts producer pokes delivered to a parked consumer. Both
	// feed the data-plane sampler and sit off the per-record path: a
	// park costs idleSpins empty scans first, a wake only fires on the
	// parked transition.
	parks atomic.Int64
	wakes atomic.Int64

	// poolHint spreads this task's batchPool traffic across pool shards.
	poolHint int

	ctx Context
}

// emitter is one producer lane of a task: a private set of gates (and
// through them, SPSC rings to every consumer), an rng, an amortized
// clock and the flush-wheel plumbing. Everything here is owned by
// exactly one goroutine — the task goroutine for workers/sinks, the
// shard goroutine for source shards — except the atomics the wheel and
// master touch (flushReq, armedUntil, barrierReq, emitCount).
type emitter struct {
	t     *task
	shard int
	gates []*gate
	rng   *rand.Rand

	// reporter aggregates this lane's QoS; for worker emitters it is the
	// task's reporter (same goroutine), for source shards a private one.
	reporter  *qos.TaskReporter
	lastFlush time.Time

	// now is the lane's amortized wall clock (emit reads it instead of
	// calling time.Now per record).
	now time.Time

	// rwPending holds consume times of sampled records awaiting the next
	// write (read-write task latency).
	rwPending []time.Time

	// curSpan is the trace span of the record currently being processed
	// (or emitted, for sources); records emitted meanwhile inherit it.
	curSpan *obs.Span
	// curSrcID/curOffset carry the lineage of the record currently being
	// processed so emitted descendants inherit it.
	curSrcID  int32
	curOffset uint64

	// emitCount counts this shard's source emissions (per-shard balance
	// gauge on /metrics).
	emitCount atomic.Int64

	// poolHint spreads this lane's batchPool traffic across pool shards.
	poolHint int

	// Flush-wheel plumbing: gates arm the wheel on empty→non-empty
	// transitions; a fire raises flushReq and wakes the owner.
	flushReq   atomic.Bool
	armedUntil atomic.Int64
	wakeCh     chan struct{}
	parked     *atomic.Bool
	ownParked  atomic.Bool

	// Processing-guarantee state (source shards, nil otherwise). srcLog
	// is this shard's offset authority and replay buffer — each shard
	// owns a disjoint offset range because each owns a distinct log.
	srcLog *sourceLog
	// parks/wakes mirror the task-level counters for source-shard lanes
	// (worker emitters never park themselves; their wakes land here when
	// the wheel pokes the shared task channel).
	parks atomic.Int64
	wakes atomic.Int64

	// barrierReq asks the shard to inject the barrier with that id
	// (master-written, shard-goroutine-consumed).
	barrierReq    atomic.Int64
	replaying     bool
	replayScratch []logEntry
	// lingerStart bounds the post-schedule wait for a final commit.
	lingerStart time.Time

	ctx Context
}

// idleSpins is how many empty polls a consumer or source loop burns
// (with Gosched) before parking on its wake channel.
const idleSpins = 64

// maxPopsPerScan caps how many batches one worker scan takes from a
// single input ring before moving on, so a saturated producer cannot
// starve other rings or the between-scan flush/report servicing.
const maxPopsPerScan = 64

// shipSpins is how many failed pushes a producer burns before backing
// off with a short sleep (sustained backpressure).
const shipSpins = 128

// newTask builds a task and its emitters (wiring happens in the
// execution).
func newTask(ex *execution, id model.TaskID, udf UDF, src *SourceSpec, seed int64) *task {
	t := &task{
		id:       id,
		ex:       ex,
		udf:      udf,
		src:      src,
		quit:     make(chan struct{}),
		dead:     make(chan struct{}),
		wakeCh:   make(chan struct{}, 1),
		reporter: qos.NewTaskReporter(id),
		chanReps: make(map[model.ChannelID]*qos.ChannelReporter),
		poolHint: int(ex.poolSeq.Add(1)),
	}
	empty := make([]*ring.SPSC[batch], 0)
	t.inRings.Store(&empty)
	t.inEdges = ex.spec.graph.InEdges(id.Vertex)
	t.edgeNames = make(map[model.EdgeKey]string, len(t.inEdges))
	for _, ek := range t.inEdges {
		t.edgeNames[ek] = ek.String()
	}
	shards := 1
	if src != nil {
		t.shardAbort = make(chan struct{})
		if ex.cfg.SourceShards > 1 {
			shards = ex.cfg.SourceShards
		}
	}
	outs := ex.spec.graph.OutEdges(id.Vertex)
	t.emitters = make([]*emitter, shards)
	for si := range t.emitters {
		e := &emitter{
			t:        t,
			shard:    si,
			rng:      rand.New(rand.NewSource(seed + int64(si)*104729)),
			poolHint: int(ex.poolSeq.Add(1)),
		}
		if src != nil {
			e.reporter = qos.NewTaskReporter(id)
			e.wakeCh = make(chan struct{}, 1)
			e.parked = &e.ownParked
		} else {
			e.reporter = t.reporter
			e.wakeCh = t.wakeCh
			e.parked = &t.parked
		}
		e.gates = make([]*gate, len(outs))
		for pos, ek := range outs {
			g := newGate(ek, pos, id.Index, ex.spec.graph.Edge(ek).Pattern, ex.cfg.MaxBatchRecords, &ex.dropNoConsumer, &ex.pool)
			g.owner = e
			g.poolHint = e.poolHint
			switch ex.spec.edgeBatching(ek) {
			case BatchingFixed:
				g.setDeadline(noDeadline)
			case BatchingInstant:
				// Stays at 0; applyDeadlines never touches non-adaptive edges.
			default:
				if d, ok := ex.currentDeadline(ek); ok {
					g.setDeadline(d)
				}
			}
			e.gates[pos] = g
		}
		if ex.guarantee.Enabled() && src != nil {
			e.srcLog = ex.takeSourceLog(id.Vertex)
		}
		e.ctx = Context{t: t, e: e}
		t.emitters[si] = e
	}
	if ex.guarantee.Enabled() && src == nil && len(outs) == 0 {
		t.dedup = ex.dedups[id.Vertex]
	}
	t.ctx = Context{t: t, e: t.emitters[0]}
	return t
}

// ---- consumer-side ring plumbing ----

// ringsSnapshot returns the current in-ring set (lock-free read).
func (t *task) ringsSnapshot() []*ring.SPSC[batch] { return *t.inRings.Load() }

// addInRing registers a producer's ring with this consumer (master,
// wiring time).
func (t *task) addInRing(r *ring.SPSC[batch]) {
	t.inMu.Lock()
	cur := *t.inRings.Load()
	next := make([]*ring.SPSC[batch], len(cur)+1)
	copy(next, cur)
	next[len(cur)] = r
	t.inRings.Store(&next)
	t.inMu.Unlock()
}

// pruneClosedRings drops rings whose producer exited and whose buffer
// is drained (consumer goroutine), bounding the poll scan under churn.
func (t *task) pruneClosedRings() {
	t.inMu.Lock()
	cur := *t.inRings.Load()
	kept := make([]*ring.SPSC[batch], 0, len(cur))
	for _, r := range cur {
		if r.Closed() && r.Empty() {
			continue
		}
		kept = append(kept, r)
	}
	t.inRings.Store(&kept)
	t.inMu.Unlock()
}

// ringsNonEmpty reports whether any in-ring currently holds a batch.
func (t *task) ringsNonEmpty() bool {
	for _, r := range t.ringsSnapshot() {
		if !r.Empty() {
			return true
		}
	}
	return false
}

// wake pokes a parked consumer (any goroutine).
func (t *task) wake() {
	if t.parked.Load() {
		t.wakes.Add(1)
		select {
		case t.wakeCh <- struct{}{}:
		default:
		}
	}
}

// wake pokes the emitter's owning goroutine (wheel fires, master
// barrier/replay requests). For worker emitters this is the task wake.
func (e *emitter) wake() {
	if e.parked.Load() {
		e.wakes.Add(1)
		select {
		case e.wakeCh <- struct{}{}:
		default:
		}
	}
}

// isDead reports whether the consumer's goroutine has exited.
func (t *task) isDead() bool {
	select {
	case <-t.dead:
		return true
	default:
		return false
	}
}

// quitClosed reports whether the execution force-stopped this task.
func (t *task) quitClosed() bool {
	select {
	case <-t.quit:
		return true
	default:
		return false
	}
}

// abortClosed reports whether a sibling source shard panicked.
func (t *task) abortClosed() bool {
	if t.shardAbort == nil {
		return false
	}
	select {
	case <-t.shardAbort:
		return true
	default:
		return false
	}
}

// abortShards stops all sibling shard goroutines (first panic wins).
func (t *task) abortShards() {
	t.abortOnce.Do(func() { close(t.shardAbort) })
}

// ---- producer side (emitter) ----

// emit routes a record into the edgeIdx-th gate, shipping due batches.
// It runs on the emitter's goroutine and may block under backpressure.
// Time comes from the emitter's amortized clock, not a per-record
// time.Now().
func (e *emitter) emit(edgeIdx int, rec Record) {
	if edgeIdx < 0 || edgeIdx >= len(e.gates) {
		return
	}
	if rec.span == nil {
		rec.span = e.curSpan
	}
	if e.srcLog != nil {
		if !e.replaying {
			// Fresh source emission: assign the next offset and buffer the
			// record for replay. Replayed records keep their original
			// lineage and are not re-logged.
			e.srcLog.stamp(&rec, int32(edgeIdx))
		}
	} else if rec.srcID == 0 {
		// Worker emission: descendants inherit the lineage of the record
		// being processed (zero outside Process, e.g. timer emissions,
		// which are genuinely new data and stay untracked).
		rec.srcID, rec.offset = e.curSrcID, e.curOffset
	}
	now := e.now
	// A write completes read-write latency measurement.
	if len(e.rwPending) > 0 {
		for _, tc := range e.rwPending {
			e.reporter.RecordTaskLatency(now.Sub(tc).Seconds())
		}
		e.rwPending = e.rwPending[:0]
	}
	e.ship(e.gates[edgeIdx].push(rec, now))
}

// ship pushes shipments into the addressees' rings, spinning (then
// briefly sleeping) on full rings — backpressure. A consumer that died
// unblocks the producer via its closed ring or dead channel; those
// records are counted as lost and their batch — which never left this
// goroutine — returns to the pool.
func (e *emitter) ship(shipments []shipment) {
	for i := range shipments {
		s := &shipments[i]
		r := s.ref.ring
		if r == nil {
			// Refs without rings only exist in gate-level tests.
			e.t.ex.lostRecords.Add(int64(len(s.b.items)))
			e.t.ex.pool.put(s.b.poolHint, s.b.items)
			continue
		}
		spins := 0
		for {
			if r.Push(s.b) {
				s.ref.to.wake()
				break
			}
			if r.Closed() || s.ref.to.isDead() {
				e.t.ex.lostRecords.Add(int64(len(s.b.items)))
				e.t.ex.pool.put(s.b.poolHint, s.b.items)
				break
			}
			if e.t.quitClosed() || e.t.abortClosed() {
				return
			}
			spins++
			if spins < shipSpins {
				runtime.Gosched()
			} else {
				time.Sleep(20 * time.Microsecond)
				// Sustained backpressure can pin this goroutine here for
				// whole measurement intervals; keep flushing interval
				// reports so freshness gating doesn't blind the scaler to
				// the very vertex chain that is saturated.
				if spins%512 == 0 {
					now := time.Now()
					e.now = now
					if e.t.src != nil {
						e.maybeReport(now)
					} else {
						e.t.maybeReport(now)
					}
				}
			}
		}
	}
}

// armFlush arms the execution's flush wheel for this emitter at the
// given deadline, unless an earlier arm is already outstanding
// (producer goroutine; the wheel clears armedUntil at fire).
func (e *emitter) armFlush(at time.Time) {
	w := e.t.ex.wheel
	if w == nil {
		return
	}
	atNs := at.UnixNano()
	for {
		cur := e.armedUntil.Load()
		if cur != 0 && cur <= atNs {
			return
		}
		if e.armedUntil.CompareAndSwap(cur, atNs) {
			w.arm(e, atNs)
			return
		}
	}
}

// flushDue ships batches whose deadline expired and re-arms the wheel
// at the earliest residual deadline.
func (e *emitter) flushDue(now time.Time) {
	var nextAt time.Time
	for _, g := range e.gates {
		e.ship(g.due(now))
		if at, ok := g.nextDue(); ok && (nextAt.IsZero() || at.Before(nextAt)) {
			nextAt = at
		}
	}
	if !nextAt.IsZero() {
		e.armFlush(nextAt)
	}
}

// drainGates force-flushes all buffers (shutdown, barriers).
func (e *emitter) drainGates(now time.Time) {
	for _, g := range e.gates {
		e.ship(g.drainAll(now))
	}
}

// closeOutRings closes every ring this emitter feeds (producer exit,
// clean or panicking — the defer runs either way). Consumers prune the
// closed rings once drained; idempotent.
func (e *emitter) closeOutRings() {
	for _, g := range e.gates {
		for _, ref := range g.snapshot() {
			if ref.ring != nil {
				ref.ring.Close()
			}
		}
	}
}

// forwardBarrier ships the barrier to every consumer of every gate.
func (e *emitter) forwardBarrier(id int64, now time.Time) {
	for _, g := range e.gates {
		e.ship(g.barrierShipments(id, now))
	}
}

// maybeReport flushes a source shard's interval report to the master.
func (e *emitter) maybeReport(now time.Time) {
	if now.Sub(e.lastFlush) < e.t.ex.cfg.MeasurementInterval {
		return
	}
	e.lastFlush = now
	rep := e.reporter.Flush()
	// The vertex's true arrival process is the union of its shards'
	// interleaved streams; scale the per-shard interarrival so the
	// task-level rate the QoS manager derives stays honest.
	if s := len(e.t.emitters); s > 1 && rep.InterarrivalCount > 0 {
		rep.InterarrivalMean /= float64(s)
	}
	e.t.ex.offerReport(taskReportMsg{report: rep})
}

// ---- consumer-side processing ----

// maybeReport flushes interval reports to the master (worker/sink
// goroutine).
func (t *task) maybeReport(now time.Time) {
	if now.Sub(t.lastFlush) < t.ex.cfg.MeasurementInterval {
		return
	}
	t.lastFlush = now
	t.ex.offerReport(taskReportMsg{report: t.reporter.Flush()})
	for id, cr := range t.chanReps {
		rep := cr.Flush()
		if !rep.Empty() {
			t.ex.offerReport(channelReportMsg{report: rep})
		}
		_ = id
	}
}

// handleBatch processes one delivered batch and recycles its slice. The
// wall clock is read once at batch arrival and once per completed UDF
// call (the completion time is also the next record's arrival time), so
// the whole loop costs one time.Now() per record instead of three plus
// one per emission.
func (t *task) handleBatch(b batch) {
	now := time.Now()
	t.now = now
	e := t.emitters[0]
	e.now = now
	// Channel-level QoS: one sample per batch against the oldest record.
	chID := model.ChannelID{Edge: t.inEdge(b), Producer: b.producer, Consumer: t.id.Index}
	cr := t.chanReps[chID]
	if cr == nil {
		cr = qos.NewChannelReporter(chID)
		t.chanReps[chID] = cr
	}
	cr.RecordTransfer(now.Sub(b.oldestBuf).Seconds(), b.shipped.Sub(b.oldestBuf).Seconds())

	rw := t.ex.latencyMode(t.id.Vertex) == model.LatencyReadWrite
	done := 0
	defer func() {
		if r := recover(); r != nil {
			// A panicking UDF kills the record it was processing and the
			// unprocessed remainder of the batch; count them as lost and
			// let the supervisor defer in run() handle the crash. The
			// batch slice dies with them — never recycle a batch whose
			// consumption did not complete.
			t.ex.lostRecords.Add(int64(len(b.items) - done))
			panic(r)
		}
	}()
	cur := now
	for _, rec := range b.items {
		if t.dedup != nil && rec.srcID != 0 && !t.dedup.admit(rec.srcID, rec.offset) && t.ex.suppressDups {
			// Replay duplicate under exactly-once: suppressed before the
			// UDF sees it, but still counted for quiescence detection and
			// the panic-remainder accounting.
			t.processed.Add(1)
			done++
			continue
		}
		t.reporter.RecordArrival(nowSeconds(cur))
		e.curSpan = rec.span
		e.curSrcID, e.curOffset = rec.srcID, rec.offset
		t.udf.Process(&t.ctx, rec)
		e.curSpan = nil
		e.curSrcID, e.curOffset = 0, 0
		end := time.Now()
		t.now = end
		e.now = end
		service := end.Sub(cur)
		t.busyNs.Add(int64(service))
		t.reporter.RecordService(service.Seconds())
		if rw {
			if rec.Sampled && len(e.rwPending) < 64 {
				e.rwPending = append(e.rwPending, cur)
			}
		} else {
			t.reporter.RecordTaskLatency(service.Seconds())
		}
		if rec.span != nil {
			// Per-hop decomposition: time buffered at the producer, no
			// separable network transit (in-process rings), then wait
			// from ship to service start.
			batchDelay := b.shipped.Sub(b.oldestBuf).Seconds()
			wait := cur.Sub(b.shipped).Seconds()
			rec.span.Hop(t.id.Vertex, t.edgeNames[chID.Edge], batchDelay, 0, wait, service.Seconds())
			t.ex.cfg.Telemetry.ObserveHop(nowSeconds(end), t.id.Vertex, t.edgeNames[chID.Edge], batchDelay, 0, wait, service.Seconds())
			if len(e.gates) == 0 {
				endS := nowSeconds(end)
				rec.span.Finish(endS)
				t.ex.cfg.Telemetry.ObserveE2E(endS, endS-rec.span.Start())
			}
		}
		t.processed.Add(1)
		done++
		cur = end
		// One slow-UDF batch can span several measurement intervals;
		// flush interval reports mid-batch so the master's freshness
		// gating keeps seeing this task while it grinds through a
		// backlog (maybeReport is cheap when the interval hasn't lapsed).
		if done&63 == 0 {
			t.maybeReport(cur)
		}
	}
	t.ex.pool.put(b.poolHint, b.items)
}

// inEdge reconstructs the job edge a batch arrived on from its edge
// position at the producer, matched against the consumer vertex's
// snapshotted inbound edge list.
func (t *task) inEdge(b batch) model.EdgeKey {
	for _, ek := range t.inEdges {
		if t.ex.edgePos[ek] == b.edgePos {
			return ek
		}
	}
	return model.EdgeKey{Target: t.id.Vertex}
}

// resetTimer safely re-arms a timer owned by this goroutine.
func resetTimer(tm *time.Timer, d time.Duration) {
	if !tm.Stop() {
		select {
		case <-tm.C:
		default:
		}
	}
	tm.Reset(d)
}

// parkTimeout is how long an idle consumer sleeps before housekeeping
// (report flush, drain-idle check) when nothing wakes it.
func (t *task) parkTimeout() time.Duration {
	if t.draining.Load() {
		d := t.ex.cfg.DrainIdle / 4
		if d < time.Millisecond {
			d = time.Millisecond
		}
		return d
	}
	return t.ex.cfg.MeasurementInterval
}

// run is the worker-task main loop: poll the input rings round-robin,
// process, then spin briefly and park. A panicking UDF does not crash
// the process: the supervisor defer (LIFO: it runs before taskDone)
// reports the crash to the master, which unroutes the dead task and
// schedules a backoff-delayed replacement.
func (t *task) run() {
	defer t.ex.taskDone(t)
	defer func() {
		if r := recover(); r != nil {
			t.ex.reportFailure(t, r)
		}
	}()
	e := t.emitters[0]
	defer e.closeOutRings()

	var timerC <-chan time.Time
	if tu, ok := t.udf.(TimerUDF); ok {
		timerTicker := time.NewTicker(tu.TimerInterval())
		timerC = timerTicker.C
		defer timerTicker.Stop()
	}
	parkTimer := time.NewTimer(time.Hour)
	defer parkTimer.Stop()
	resetTimer(parkTimer, time.Hour)

	t.now = time.Now()
	e.now = t.now
	lastItem := t.now
	spins := 0
	for {
		if t.quitClosed() {
			return
		}
		worked := false
		sawClosed := false
		for _, r := range t.ringsSnapshot() {
			// Bounded pops per ring per scan: a saturated producer must not
			// pin the loop inside one ring, both for fairness across inputs
			// and because flush servicing and QoS reporting only happen
			// between scans — an unbounded drain starves maybeReport, the
			// master marks the task's reports stale, and coverage gating
			// then disables the scaler exactly when the task is the
			// bottleneck it should resolve.
			for popped := 0; popped < maxPopsPerScan; popped++ {
				b, ok := r.Pop()
				if !ok {
					if r.Closed() {
						sawClosed = true
					}
					break
				}
				if b.barrier != 0 {
					t.onBarrier(b)
				} else {
					t.handleBatch(b)
				}
				worked = true
				// Rate-limited (one clock compare when not due): a slow
				// UDF over small batches must still deliver interval
				// reports while a backlog keeps the rings non-empty.
				t.maybeReport(t.now)
			}
		}
		if sawClosed {
			t.pruneClosedRings()
		}
		if worked {
			lastItem = t.now
		}
		if timerC != nil {
			select {
			case <-timerC:
				t.now = time.Now()
				e.now = t.now
				t.udf.(TimerUDF).OnTimer(&t.ctx)
			default:
			}
		}
		if e.flushReq.Swap(false) {
			t.now = time.Now()
			e.now = t.now
			e.flushDue(t.now)
		}
		t.maybeReport(t.now)
		if t.draining.Load() && t.now.Sub(lastItem) > t.ex.cfg.DrainIdle {
			// Drain leftovers that raced the idle check, flush gates, and
			// exit. Stray barriers are dropped: a draining task is outside
			// the barrier flow (the master pauses injection while any task
			// drains).
			for _, r := range t.ringsSnapshot() {
				for {
					b, ok := r.Pop()
					if !ok {
						break
					}
					if b.barrier == 0 {
						t.handleBatch(b)
					}
				}
			}
			t.now = time.Now()
			e.now = t.now
			e.drainGates(t.now)
			return
		}
		if worked {
			spins = 0
			continue
		}
		spins++
		if spins < idleSpins {
			runtime.Gosched()
			continue
		}
		// Park: publish parked, re-check the rings (the push-then-load
		// protocol makes a missed wake impossible), then block.
		t.parked.Store(true)
		if t.ringsNonEmpty() || e.flushReq.Load() {
			t.parked.Store(false)
			spins = 0
			continue
		}
		t.parks.Add(1)
		resetTimer(parkTimer, t.parkTimeout())
		onTimer := false
		select {
		case <-t.wakeCh:
		case <-timerC:
			onTimer = true
		case <-parkTimer.C:
		case <-t.quit:
			t.parked.Store(false)
			return
		}
		t.parked.Store(false)
		t.now = time.Now()
		e.now = t.now
		if onTimer {
			t.udf.(TimerUDF).OnTimer(&t.ctx)
		}
		spins = 0
	}
}

// runSource is the source-task supervisor loop: it runs the task's
// shard emitters as goroutines and dies as a unit when one panics (the
// first panic aborts the siblings and is re-raised here, so the master
// sees exactly one failure per task, as with workers).
func (t *task) runSource() {
	defer t.ex.taskDone(t)
	defer func() {
		if r := recover(); r != nil {
			t.ex.reportFailure(t, r)
		}
	}()
	var firstPanic any
	var panicOnce sync.Once
	var wg sync.WaitGroup
	for _, e := range t.emitters {
		wg.Add(1)
		go func(e *emitter) {
			defer wg.Done()
			defer e.closeOutRings()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { firstPanic = r })
					t.abortShards()
				}
			}()
			e.runSourceShard()
		}(e)
	}
	wg.Wait()
	if firstPanic != nil {
		panic(firstPanic)
	}
}

// spinWait is the pacing threshold below which a source shard busy-
// polls instead of parking on a timer: OS timer granularity would
// otherwise cap the emission rate at a few thousand rounds per second.
const spinWait = 100 * time.Microsecond

// maxBurst bounds how many emissions one pacing round performs, so
// guarantees servicing and flush requests stay responsive under
// saturating schedules.
const maxBurst = 1024

// runSourceShard is one source shard's pacing loop. Emission is
// batched: every round emits all records that came due since the last
// round (up to maxBurst), with per-emission schedule jitter, so the
// per-round timer and clock overhead amortizes across the burst — this
// is what breaks the one-timer-wakeup-per-record ceiling of the old
// source loop. Behind schedule the shard does not try to catch up a
// backlog (next = now), which keeps backpressure semantics intact.
func (e *emitter) runSourceShard() {
	t := e.t
	ex := t.ex
	start := ex.start
	sched := t.src.Schedule
	shards := len(t.emitters)

	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	resetTimer(timer, time.Hour)

	next := time.Now()
	for {
		if t.quitClosed() || t.abortClosed() {
			return
		}
		now := time.Now()
		e.now = now
		e.serviceGuarantees(now)
		if e.flushReq.Swap(false) {
			e.flushDue(now)
		}
		if t.draining.Load() {
			e.drainGates(now)
			return
		}
		elapsed := now.Sub(start).Seconds()
		rate := sched.Rate(elapsed)
		if rate <= 0 {
			if elapsed >= sched.Duration() {
				if e.lingerForCommit(now) {
					// Uncommitted replay buffer: stay alive (servicing
					// barriers and replays) until a checkpoint commits it, so
					// a late downstream crash can still be replayed.
					e.park(timer, ex.cfg.FlushTick)
					continue
				}
				e.drainGates(now)
				return
			}
			e.park(timer, 50*time.Millisecond)
			continue
		}
		if e.srcLog != nil && e.srcLog.full() {
			// Replay buffer at capacity: pause emission until a commit
			// prunes it — backpressure, never loss.
			e.srcLog.stalls.Add(1)
			e.park(timer, ex.cfg.FlushTick)
			continue
		}
		// The shard's share of the schedule: the vertex rate divides by
		// live tasks × shards per task.
		n := ex.parallelismOf(t.id.Vertex)
		if n < 1 {
			n = 1
		}
		perEmit := float64(n*shards) / rate
		burst := 0
		for burst < maxBurst && !next.After(now) {
			e.curSpan = ex.cfg.Tracer.StartSpan(nowSeconds(e.now))
			t.src.Emit(&e.ctx)
			e.curSpan = nil
			burst++
			// ±10% jitter keeps source shards out of lockstep.
			jitter := 0.9 + 0.2*e.rng.Float64()
			next = next.Add(time.Duration(perEmit * jitter * float64(time.Second)))
			if e.srcLog != nil && e.srcLog.full() {
				break
			}
		}
		if burst > 0 {
			end := time.Now()
			e.now = end
			cost := end.Sub(now)
			t.busyNs.Add(int64(cost))
			per := cost.Seconds() / float64(burst)
			ts := nowSeconds(now)
			for i := 0; i < burst; i++ {
				e.reporter.RecordArrival(ts)
				e.reporter.RecordService(per)
				e.reporter.RecordTaskLatency(per)
			}
			ex.emitted.Add(int64(burst))
			t.processed.Add(int64(burst))
			e.emitCount.Add(int64(burst))
			now = end
			if next.Before(now) {
				// Backpressure or saturation pushed us behind schedule; do
				// not try to catch up a backlog.
				next = now
			}
		}
		e.maybeReport(now)
		if wait := next.Sub(now); wait > spinWait {
			e.park(timer, wait)
		} else if burst == 0 {
			runtime.Gosched()
		}
	}
}

// park blocks a source shard for d, or until the master or the flush
// wheel wakes it (barrier/replay/flush requests raised before the
// parked flag became visible are caught by the re-check).
func (e *emitter) park(timer *time.Timer, d time.Duration) {
	e.parked.Store(true)
	if e.flushReq.Load() || e.barrierReq.Load() != 0 ||
		(e.srcLog != nil && e.srcLog.replayReq.Load() != 0) || e.t.draining.Load() {
		e.parked.Store(false)
		return
	}
	e.parks.Add(1)
	resetTimer(timer, d)
	select {
	case <-timer.C:
	case <-e.wakeCh:
	case <-e.t.quit:
	case <-e.t.shardAbort:
	}
	e.parked.Store(false)
}

// onBarrier aligns one inbound checkpoint barrier (worker goroutine).
// Counting alignment: the task forwards the barrier once markers from
// every live upstream producer emitter arrived, without blocking any
// ring (at-least-once alignment — replay duplicates are the dedup
// sinks' job). Expected counts come from the coordinator, which arms
// them at injection; barriers of superseded checkpoints simply never
// complete.
func (t *task) onBarrier(b batch) {
	id := b.barrier
	if id == t.alignDone {
		return // late marker of an already-forwarded barrier
	}
	if id != t.alignID {
		t.alignID = id
		t.alignSeen = 0
		t.alignStart = time.Now()
	}
	t.alignSeen++
	exp := t.ex.coord.expected(id, t)
	if exp < 0 || t.alignSeen < exp {
		return
	}
	now := time.Now()
	t.now = now
	e := t.emitters[0]
	e.now = now
	t.alignDone = id
	// Flush buffered pre-barrier output before forwarding so the marker
	// stays behind everything this task derived from pre-barrier input.
	e.drainGates(now)
	e.forwardBarrier(id, now)
	t.ex.coord.ackWorker(id, t, now.Sub(t.alignStart))
}

// serviceGuarantees handles a source shard's pending replay and barrier
// requests (shard goroutine). Replay runs first: a barrier injected
// after a recovery must trail the re-emitted records, so the commit's
// "everything below the watermark was delivered" claim covers them.
func (e *emitter) serviceGuarantees(now time.Time) {
	if e.srcLog == nil {
		return
	}
	if e.srcLog.replayReq.Swap(0) != 0 {
		e.replayLog(now)
	}
	if id := e.barrierReq.Swap(0); id != 0 {
		e.drainGates(now)
		e.forwardBarrier(id, now)
		e.t.ex.coord.ackSource(id, e.srcLog.id, e.srcLog.nextOffset())
	}
}

// replayLog re-emits the log's uncommitted suffix through the gates
// with the original offsets (shard goroutine). Downstream this looks
// like fresh traffic; sinks dedup on (source, offset).
func (e *emitter) replayLog(now time.Time) {
	e.replayScratch = e.srcLog.copyUncommitted(e.replayScratch[:0])
	n := len(e.replayScratch)
	if n == 0 {
		return
	}
	e.replaying = true
	for i := range e.replayScratch {
		e.emit(int(e.replayScratch[i].edge), e.replayScratch[i].rec)
		e.replayScratch[i] = logEntry{} // drop payload references
	}
	e.replaying = false
	e.t.ex.replayedRecords.Add(int64(n))
	e.t.ex.recordLifecycle(obs.KindReplay, obs.Lifecycle{
		Vertex: e.t.id.Vertex, Task: e.t.id.String(), CommittedOffsets: uint64(n),
	})
	e.t.ex.cfg.Telemetry.AddReplayed(nowSeconds(now), int64(n))
}

// lingerForCommit reports whether an exhausted source shard should keep
// running so a final checkpoint can commit its replay buffer — records
// are only safe from a downstream crash once committed. Bounded so a
// pipeline that can no longer commit (e.g. a degraded vertex) cannot
// hang shutdown forever.
func (e *emitter) lingerForCommit(now time.Time) bool {
	if e.srcLog == nil || e.srcLog.uncommitted() == 0 {
		return false
	}
	if e.lingerStart.IsZero() {
		e.lingerStart = now
	}
	cap := 10 * e.t.ex.cfg.CheckpointInterval
	if cap < 2*time.Second {
		cap = 2 * time.Second
	}
	if now.Sub(e.lingerStart) > cap {
		e.t.ex.lingerTimeouts.Add(1)
		return false
	}
	return true
}

// Sample reports whether the next source emission should be tagged for
// latency probing.
func (c *Context) Sample() bool {
	p := 0.1
	if c.t.src != nil && c.t.src.SampleProbability > 0 {
		p = c.t.src.SampleProbability
	}
	return c.e.rng.Float64() < p
}

// nowSeconds converts a wall-clock time to float64 seconds.
func nowSeconds(t time.Time) float64 {
	return float64(t.UnixNano()) / 1e9
}
