package engine

import (
	"math/rand"
	"sync/atomic"
	"time"

	"nephelix/internal/model"
	"nephelix/internal/obs"
	"nephelix/internal/qos"
)

// task is one running task: a goroutine with a bounded input channel,
// output gates and QoS reporters.
type task struct {
	id  model.TaskID
	ex  *execution
	udf UDF
	src *SourceSpec

	in    chan batch
	gates []*gate
	rng   *rand.Rand

	// draining is set by the master after the task left all routing
	// tables; the task exits once its input has been idle for DrainIdle.
	draining atomic.Bool
	// quit force-stops the task (execution shutdown).
	quit chan struct{}
	// dead closes when the task goroutine has exited (crash or drain), so
	// producers blocked on its full input queue get out instead of
	// hanging on a consumer that will never read again.
	dead chan struct{}

	// processed counts handled records (quiescence detection).
	processed atomic.Int64

	// Reporters are owned by the task goroutine; interval aggregates are
	// sent to the master over ex.reports.
	reporter  *qos.TaskReporter
	chanReps  map[model.ChannelID]*qos.ChannelReporter
	lastFlush time.Time

	// inEdges is the vertex's inbound edge list, snapshotted once so the
	// per-batch edge resolution never re-allocates it from the graph.
	inEdges []model.EdgeKey
	// edgeNames caches EdgeKey.String() per inbound edge for trace hops.
	edgeNames map[model.EdgeKey]string

	// now is the task's amortized wall clock: refreshed once per
	// delivered batch, per UDF service completion, per flush tick and per
	// source emission — never per emitted record. emit and the gates read
	// it instead of calling time.Now() per record, so its error is
	// bounded by one UDF service time. Task-goroutine-only state.
	now time.Time

	// rwPending holds consume times of sampled records awaiting the next
	// write (read-write task latency).
	rwPending []time.Time

	// curSpan is the trace span of the record currently being processed
	// (or emitted, for sources); records emitted meanwhile inherit it.
	// Task-goroutine-only state.
	curSpan *obs.Span

	// Processing-guarantee state (nil / zero when Config.Guarantee is
	// AtMostOnce). srcLog is the source partition's offset authority and
	// replay buffer; dedup is the sink vertex's shared dedup table.
	srcLog *sourceLog
	dedup  *sinkDedup
	// barrierReq asks a source to inject the barrier with that id
	// (master-written, source-goroutine-consumed).
	barrierReq atomic.Int64
	// curSrcID/curOffset carry the lineage of the record currently being
	// processed so emitted descendants inherit it (task-goroutine-only,
	// cleared after each Process call).
	curSrcID  int32
	curOffset uint64
	// Barrier-alignment state (task-goroutine-only): alignSeen barriers
	// of alignID arrived; alignDone is the last id fully aligned and
	// forwarded.
	alignID    int64
	alignSeen  int
	alignDone  int64
	alignStart time.Time
	// replaying marks log re-emission so emit skips re-stamping.
	replaying     bool
	replayScratch []logEntry
	// lingerStart bounds the post-schedule wait for a final commit.
	lingerStart time.Time

	// busyNs integrates UDF time for utilization reporting.
	busyNs atomic.Int64

	ctx Context
}

// newTask builds a task (wiring happens in the execution).
func newTask(ex *execution, id model.TaskID, udf UDF, src *SourceSpec, seed int64) *task {
	t := &task{
		id:       id,
		ex:       ex,
		udf:      udf,
		src:      src,
		in:       make(chan batch, ex.cfg.QueueCapacity),
		rng:      rand.New(rand.NewSource(seed)),
		quit:     make(chan struct{}),
		dead:     make(chan struct{}),
		reporter: qos.NewTaskReporter(id),
		chanReps: make(map[model.ChannelID]*qos.ChannelReporter),
	}
	t.ctx = Context{t: t}
	t.inEdges = ex.spec.graph.InEdges(id.Vertex)
	t.edgeNames = make(map[model.EdgeKey]string, len(t.inEdges))
	for _, ek := range t.inEdges {
		t.edgeNames[ek] = ek.String()
	}
	outs := ex.spec.graph.OutEdges(id.Vertex)
	t.gates = make([]*gate, len(outs))
	for pos, ek := range outs {
		g := newGate(ek, pos, id.Index, ex.spec.graph.Edge(ek).Pattern, ex.cfg.MaxBatchRecords, &ex.dropNoConsumer, &ex.pool)
		switch ex.spec.edgeBatching(ek) {
		case BatchingFixed:
			g.setDeadline(noDeadline)
		case BatchingInstant:
			// Stays at 0; applyDeadlines never touches non-adaptive edges.
		default:
			if d, ok := ex.currentDeadline(ek); ok {
				g.setDeadline(d)
			}
		}
		t.gates[pos] = g
	}
	if ex.guarantee.Enabled() {
		if src != nil {
			t.srcLog = ex.takeSourceLog(id.Vertex)
		} else if len(t.gates) == 0 {
			t.dedup = ex.dedups[id.Vertex]
		}
	}
	return t
}

// emit routes a record into the edgeIdx-th gate, shipping due batches.
// It runs on the task goroutine and may block under backpressure. Time
// comes from the task's amortized clock, not a per-record time.Now().
func (t *task) emit(edgeIdx int, rec Record) {
	if edgeIdx < 0 || edgeIdx >= len(t.gates) {
		return
	}
	if rec.span == nil {
		rec.span = t.curSpan
	}
	if t.srcLog != nil {
		if !t.replaying {
			// Fresh source emission: assign the next offset and buffer the
			// record for replay. Replayed records keep their original
			// lineage and are not re-logged.
			t.srcLog.stamp(&rec, int32(edgeIdx))
		}
	} else if rec.srcID == 0 {
		// Worker emission: descendants inherit the lineage of the record
		// being processed (zero outside Process, e.g. timer emissions,
		// which are genuinely new data and stay untracked).
		rec.srcID, rec.offset = t.curSrcID, t.curOffset
	}
	now := t.now
	// A write completes read-write latency measurement.
	if len(t.rwPending) > 0 {
		for _, tc := range t.rwPending {
			t.reporter.RecordTaskLatency(now.Sub(tc).Seconds())
		}
		t.rwPending = t.rwPending[:0]
	}
	t.ship(t.gates[edgeIdx].push(rec, now))
}

// ship delivers shipments, blocking on full consumer queues
// (backpressure). Shipments to draining consumers are dropped by the
// consumer-side idle exit, never lost while the consumer runs. A
// consumer that died (crashed, or exited mid-drain) unblocks the
// producer via its dead channel; those records are counted as lost and
// their batch — which never left this goroutine — returns to the pool.
func (t *task) ship(shipments []shipment) {
	for _, s := range shipments {
		select {
		case s.ref.to.in <- s.b:
		case <-s.ref.to.dead:
			t.ex.lostRecords.Add(int64(len(s.b.items)))
			t.ex.pool.put(s.b.items)
		case <-t.quit:
			return
		}
	}
}

// flushDue ships batches whose deadline expired.
func (t *task) flushDue(now time.Time) {
	for _, g := range t.gates {
		t.ship(g.due(now))
	}
}

// drainGates force-flushes all buffers (shutdown).
func (t *task) drainGates(now time.Time) {
	for _, g := range t.gates {
		t.ship(g.drainAll(now))
	}
}

// maybeReport flushes interval reports to the master.
func (t *task) maybeReport(now time.Time) {
	if now.Sub(t.lastFlush) < t.ex.cfg.MeasurementInterval {
		return
	}
	t.lastFlush = now
	t.ex.offerReport(taskReportMsg{report: t.reporter.Flush()})
	for id, cr := range t.chanReps {
		rep := cr.Flush()
		if !rep.Empty() {
			t.ex.offerReport(channelReportMsg{report: rep})
		}
		_ = id
	}
}

// handleBatch processes one delivered batch and recycles its slice. The
// wall clock is read once at batch arrival and once per completed UDF
// call (the completion time is also the next record's arrival time), so
// the whole loop costs one time.Now() per record instead of three plus
// one per emission.
func (t *task) handleBatch(b batch) {
	now := time.Now()
	t.now = now
	// Channel-level QoS: one sample per batch against the oldest record.
	chID := model.ChannelID{Edge: t.inEdge(b), Producer: b.producer, Consumer: t.id.Index}
	cr := t.chanReps[chID]
	if cr == nil {
		cr = qos.NewChannelReporter(chID)
		t.chanReps[chID] = cr
	}
	cr.RecordTransfer(now.Sub(b.oldestBuf).Seconds(), b.shipped.Sub(b.oldestBuf).Seconds())

	rw := t.ex.latencyMode(t.id.Vertex) == model.LatencyReadWrite
	done := 0
	defer func() {
		if r := recover(); r != nil {
			// A panicking UDF kills the record it was processing and the
			// unprocessed remainder of the batch; count them as lost and
			// let the supervisor defer in run() handle the crash. The
			// batch slice dies with them — never recycle a batch whose
			// consumption did not complete.
			t.ex.lostRecords.Add(int64(len(b.items) - done))
			panic(r)
		}
	}()
	cur := now
	for _, rec := range b.items {
		if t.dedup != nil && rec.srcID != 0 && !t.dedup.admit(rec.srcID, rec.offset) && t.ex.suppressDups {
			// Replay duplicate under exactly-once: suppressed before the
			// UDF sees it, but still counted for quiescence detection and
			// the panic-remainder accounting.
			t.processed.Add(1)
			done++
			continue
		}
		t.reporter.RecordArrival(nowSeconds(cur))
		t.curSpan = rec.span
		t.curSrcID, t.curOffset = rec.srcID, rec.offset
		t.udf.Process(&t.ctx, rec)
		t.curSpan = nil
		t.curSrcID, t.curOffset = 0, 0
		end := time.Now()
		t.now = end
		service := end.Sub(cur)
		t.busyNs.Add(int64(service))
		t.reporter.RecordService(service.Seconds())
		if rw {
			if rec.Sampled && len(t.rwPending) < 64 {
				t.rwPending = append(t.rwPending, cur)
			}
		} else {
			t.reporter.RecordTaskLatency(service.Seconds())
		}
		if rec.span != nil {
			// Per-hop decomposition: time buffered at the producer, no
			// separable network transit (in-process channels), then wait
			// from ship to service start.
			batchDelay := b.shipped.Sub(b.oldestBuf).Seconds()
			wait := cur.Sub(b.shipped).Seconds()
			rec.span.Hop(t.id.Vertex, t.edgeNames[chID.Edge], batchDelay, 0, wait, service.Seconds())
			t.ex.cfg.Telemetry.ObserveHop(nowSeconds(end), t.id.Vertex, t.edgeNames[chID.Edge], batchDelay, 0, wait, service.Seconds())
			if len(t.gates) == 0 {
				endS := nowSeconds(end)
				rec.span.Finish(endS)
				t.ex.cfg.Telemetry.ObserveE2E(endS, endS-rec.span.Start())
			}
		}
		t.processed.Add(1)
		done++
		cur = end
	}
	t.ex.pool.put(b.items)
}

// inEdge reconstructs the job edge a batch arrived on from its edge
// position at the producer, matched against the consumer vertex's
// snapshotted inbound edge list.
func (t *task) inEdge(b batch) model.EdgeKey {
	for _, ek := range t.inEdges {
		if t.ex.edgePos[ek] == b.edgePos {
			return ek
		}
	}
	return model.EdgeKey{Target: t.id.Vertex}
}

// run is the worker-task main loop. A panicking UDF does not crash the
// process: the supervisor defer (LIFO: it runs before taskDone) reports
// the crash to the master, which unroutes the dead task and schedules a
// backoff-delayed replacement.
func (t *task) run() {
	defer t.ex.taskDone(t)
	defer func() {
		if r := recover(); r != nil {
			t.ex.reportFailure(t, r)
		}
	}()
	ticker := time.NewTicker(t.ex.cfg.FlushTick)
	defer ticker.Stop()

	var timerC <-chan time.Time
	var timerTicker *time.Ticker
	if tu, ok := t.udf.(TimerUDF); ok {
		timerTicker = time.NewTicker(tu.TimerInterval())
		timerC = timerTicker.C
		defer timerTicker.Stop()
	}

	lastItem := time.Now()
	for {
		select {
		case b := <-t.in:
			if b.barrier != 0 {
				t.onBarrier(b)
				continue
			}
			t.handleBatch(b)
			lastItem = t.now
		case <-timerC:
			t.now = time.Now()
			t.udf.(TimerUDF).OnTimer(&t.ctx)
		case now := <-ticker.C:
			t.now = now
			t.flushDue(now)
			t.maybeReport(now)
			if t.draining.Load() && now.Sub(lastItem) > t.ex.cfg.DrainIdle {
				// Drain leftovers that raced the idle check, flush gates,
				// and exit. Stray barriers are dropped: a draining task is
				// outside the barrier flow (the master pauses injection
				// while any task drains).
				for {
					select {
					case b := <-t.in:
						if b.barrier == 0 {
							t.handleBatch(b)
						}
					default:
						t.now = time.Now()
						t.drainGates(t.now)
						return
					}
				}
			}
		case <-t.quit:
			return
		}
	}
}

// runSource is the source-task main loop: schedule-paced emission. Like
// run it is supervised: a panicking Emit is reported and the source
// restarted instead of taking the process down.
func (t *task) runSource() {
	defer t.ex.taskDone(t)
	defer func() {
		if r := recover(); r != nil {
			t.ex.reportFailure(t, r)
		}
	}()
	ticker := time.NewTicker(t.ex.cfg.FlushTick)
	defer ticker.Stop()

	start := t.ex.start
	sched := t.src.Schedule
	next := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()

	for {
		select {
		case <-t.quit:
			return
		case now := <-ticker.C:
			t.now = now
			t.serviceGuarantees(now)
			t.flushDue(now)
			t.maybeReport(now)
		case <-timer.C:
			now := time.Now()
			elapsed := now.Sub(start).Seconds()
			if t.draining.Load() {
				t.now = now
				t.drainGates(now)
				return
			}
			rate := sched.Rate(elapsed)
			if rate <= 0 {
				if elapsed >= sched.Duration() {
					t.now = now
					if t.lingerForCommit(now) {
						// Uncommitted replay buffer: stay alive (servicing
						// barriers and replays on the flush ticker) until a
						// checkpoint commits it, so a late downstream crash
						// can still be replayed.
						timer.Reset(t.ex.cfg.FlushTick)
						continue
					}
					t.drainGates(now)
					return
				}
				timer.Reset(50 * time.Millisecond)
				continue
			}
			if t.srcLog != nil && t.srcLog.full() {
				// Replay buffer at capacity: pause emission until a commit
				// prunes it — backpressure, never loss.
				t.srcLog.stalls.Add(1)
				timer.Reset(t.ex.cfg.FlushTick)
				continue
			}
			emitStart := time.Now()
			t.now = emitStart
			t.reporter.RecordArrival(nowSeconds(emitStart))
			t.curSpan = t.ex.cfg.Tracer.StartSpan(nowSeconds(emitStart))
			t.src.Emit(&t.ctx)
			t.curSpan = nil
			emitCost := time.Since(emitStart)
			t.busyNs.Add(int64(emitCost))
			t.reporter.RecordService(emitCost.Seconds())
			t.reporter.RecordTaskLatency(emitCost.Seconds())
			t.ex.emitted.Add(1)
			t.processed.Add(1)
			n := t.ex.parallelismOf(t.id.Vertex)
			if n < 1 {
				n = 1
			}
			interval := time.Duration(float64(n) / rate * float64(time.Second))
			// ±10% jitter keeps source tasks out of lockstep.
			interval = time.Duration(float64(interval) * (0.9 + 0.2*t.rng.Float64()))
			next = next.Add(interval)
			if wait := time.Until(next); wait > 0 {
				timer.Reset(wait)
			} else {
				// Backpressure or saturation pushed us behind schedule;
				// do not try to catch up a backlog.
				next = now
				timer.Reset(0)
			}
		}
	}
}

// onBarrier aligns one inbound checkpoint barrier (worker goroutine).
// Counting alignment: the task forwards the barrier once markers from
// every live upstream producer arrived, without blocking any channel
// (at-least-once alignment — replay duplicates are the dedup sinks'
// job). Expected counts come from the coordinator, which arms them at
// injection; barriers of superseded checkpoints simply never complete.
func (t *task) onBarrier(b batch) {
	id := b.barrier
	if id == t.alignDone {
		return // late marker of an already-forwarded barrier
	}
	if id != t.alignID {
		t.alignID = id
		t.alignSeen = 0
		t.alignStart = time.Now()
	}
	t.alignSeen++
	exp := t.ex.coord.expected(id, t)
	if exp < 0 || t.alignSeen < exp {
		return
	}
	now := time.Now()
	t.now = now
	t.alignDone = id
	// Flush buffered pre-barrier output before forwarding so the marker
	// stays behind everything this task derived from pre-barrier input.
	t.drainGates(now)
	t.forwardBarrier(id, now)
	t.ex.coord.ackWorker(id, t, now.Sub(t.alignStart))
}

// forwardBarrier ships the barrier to every consumer of every out-gate.
func (t *task) forwardBarrier(id int64, now time.Time) {
	for _, g := range t.gates {
		t.ship(g.barrierShipments(id, now))
	}
}

// serviceGuarantees handles a source's pending replay and barrier
// requests (source goroutine, flush tick). Replay runs first: a barrier
// injected after a recovery must trail the re-emitted records, so the
// commit's "everything below the watermark was delivered" claim covers
// them.
func (t *task) serviceGuarantees(now time.Time) {
	if t.srcLog == nil {
		return
	}
	if t.srcLog.replayReq.Swap(0) != 0 {
		t.replayLog(now)
	}
	if id := t.barrierReq.Swap(0); id != 0 {
		t.drainGates(now)
		t.forwardBarrier(id, now)
		t.ex.coord.ackSource(id, t.srcLog.id, t.srcLog.nextOffset())
	}
}

// replayLog re-emits the log's uncommitted suffix through the gates
// with the original offsets (source goroutine). Downstream this looks
// like fresh traffic; sinks dedup on (source, offset).
func (t *task) replayLog(now time.Time) {
	t.replayScratch = t.srcLog.copyUncommitted(t.replayScratch[:0])
	n := len(t.replayScratch)
	if n == 0 {
		return
	}
	t.replaying = true
	for i := range t.replayScratch {
		t.emit(int(t.replayScratch[i].edge), t.replayScratch[i].rec)
		t.replayScratch[i] = logEntry{} // drop payload references
	}
	t.replaying = false
	t.ex.replayedRecords.Add(int64(n))
	t.ex.recordLifecycle(obs.KindReplay, obs.Lifecycle{
		Vertex: t.id.Vertex, Task: t.id.String(), CommittedOffsets: uint64(n),
	})
	t.ex.cfg.Telemetry.AddReplayed(nowSeconds(now), int64(n))
}

// lingerForCommit reports whether an exhausted source should keep
// running so a final checkpoint can commit its replay buffer — records
// are only safe from a downstream crash once committed. Bounded so a
// pipeline that can no longer commit (e.g. a degraded vertex) cannot
// hang shutdown forever.
func (t *task) lingerForCommit(now time.Time) bool {
	if t.srcLog == nil || t.srcLog.uncommitted() == 0 {
		return false
	}
	if t.lingerStart.IsZero() {
		t.lingerStart = now
	}
	cap := 10 * t.ex.cfg.CheckpointInterval
	if cap < 2*time.Second {
		cap = 2 * time.Second
	}
	if now.Sub(t.lingerStart) > cap {
		t.ex.lingerTimeouts.Add(1)
		return false
	}
	return true
}

// Sample reports whether the next source emission should be tagged for
// latency probing.
func (c *Context) Sample() bool {
	p := 0.1
	if c.t.src != nil && c.t.src.SampleProbability > 0 {
		p = c.t.src.SampleProbability
	}
	return c.t.rng.Float64() < p
}

// nowSeconds converts a wall-clock time to float64 seconds.
func nowSeconds(t time.Time) float64 {
	return float64(t.UnixNano()) / 1e9
}
