package engine

import (
	"fmt"
	"math/rand"
	"time"

	"nephelix/internal/model"
	"nephelix/internal/workload"
)

// Context is the per-task API a UDF sees. Each emitter lane (the task
// goroutine for workers and sinks, each shard goroutine for sources)
// carries its own Context, so UDF calls never cross lanes.
type Context struct {
	t *task
	e *emitter
}

// TaskIndex returns the task's index within its vertex.
func (c *Context) TaskIndex() int { return c.t.id.Index }

// Vertex returns the task's job-vertex name.
func (c *Context) Vertex() string { return c.t.id.Vertex }

// Rand returns a lane-local deterministic random source.
func (c *Context) Rand() *rand.Rand { return c.e.rng }

// OutEdges returns the number of outgoing job edges.
func (c *Context) OutEdges() int { return len(c.e.gates) }

// Emit sends a record along the task's edgeIdx-th outgoing job edge
// (ordered as in JobGraph.OutEdges). It may block under backpressure.
func (c *Context) Emit(edgeIdx int, rec Record) {
	c.e.emit(edgeIdx, rec)
}

// Origin returns the lineage of the record currently being processed
// under processing guarantees: the source partition that emitted its
// ancestor (0 = untracked, e.g. guarantees disabled or a timer
// emission) and the per-source offset. Records emitted during Process
// inherit this lineage automatically; Origin exposes it to UDFs that
// want offset-aware side effects.
func (c *Context) Origin() (source int32, offset uint64) {
	return c.e.curSrcID, c.e.curOffset
}

// UDF is a user-defined function executed by each task of a vertex. One
// instance exists per task, so implementations may keep per-task state;
// the engine serializes all calls on the owning task goroutine.
type UDF interface {
	// Process handles one record; results go out via ctx.Emit.
	Process(ctx *Context, rec Record)
}

// TimerUDF is implemented by window-style UDFs that additionally emit on
// a fixed interval (e.g. time-based aggregation windows). Such vertices
// should declare model.LatencyReadWrite.
type TimerUDF interface {
	UDF
	// TimerInterval returns the emission period.
	TimerInterval() time.Duration
	// OnTimer fires once per period on the task goroutine.
	OnTimer(ctx *Context)
}

// UDFFunc adapts a plain function to the UDF interface.
type UDFFunc func(ctx *Context, rec Record)

// Process implements UDF.
func (f UDFFunc) Process(ctx *Context, rec Record) { f(ctx, rec) }

// SourceSpec drives a source vertex: the engine paces emissions to the
// schedule (split across the vertex's tasks) and calls Emit for each.
type SourceSpec struct {
	// Schedule yields the attempted total emission rate; the run ends
	// when every source schedule is exhausted (or Stop is called).
	Schedule workload.Schedule
	// Emit produces one emission (typically one record via ctx.Emit).
	Emit func(ctx *Context)
	// SampleProbability tags emissions for end-to-end latency probing
	// (default 0.1).
	SampleProbability float64
}

// EdgeBatching selects an edge's output-batching mode.
type EdgeBatching int

const (
	// BatchingAdaptive (the default) lets the QoS plane set flush
	// deadlines from the latency constraints; edges start at instant
	// flushing until the first adjustment interval.
	BatchingAdaptive EdgeBatching = iota + 1
	// BatchingInstant pins the edge to per-record flushing (the
	// Storm/Nephele-IF configuration).
	BatchingInstant
	// BatchingFixed flushes only when the batch-size cap is reached
	// (the Nephele-16KiB configuration): maximum throughput, unbounded
	// buffer latency.
	BatchingFixed
)

// JobSpec binds UDFs and sources to a job graph and carries the job's
// latency constraints. Build it with NewJobSpec, then Submit it to an
// Engine.
type JobSpec struct {
	graph       *model.JobGraph
	constraints []*model.Constraint
	udfs        map[string]func(taskIndex int) UDF
	sources     map[string]SourceSpec
	edgeModes   map[model.EdgeKey]EdgeBatching
}

// NewJobSpec creates a spec for the given (not yet validated) graph.
func NewJobSpec(graph *model.JobGraph) *JobSpec {
	return &JobSpec{
		graph:     graph,
		udfs:      make(map[string]func(int) UDF),
		sources:   make(map[string]SourceSpec),
		edgeModes: make(map[model.EdgeKey]EdgeBatching),
	}
}

// SetEdgeBatching overrides an edge's batching mode (default adaptive).
func (s *JobSpec) SetEdgeBatching(source, target string, mode EdgeBatching) *JobSpec {
	s.edgeModes[model.EdgeKey{Source: source, Target: target}] = mode
	return s
}

// edgeBatching returns the mode for an edge.
func (s *JobSpec) edgeBatching(key model.EdgeKey) EdgeBatching {
	if m, ok := s.edgeModes[key]; ok {
		return m
	}
	return BatchingAdaptive
}

// SetUDF installs the UDF factory for a vertex.
func (s *JobSpec) SetUDF(vertex string, factory func(taskIndex int) UDF) *JobSpec {
	s.udfs[vertex] = factory
	return s
}

// SetSource installs the source spec for a source vertex.
func (s *JobSpec) SetSource(vertex string, src SourceSpec) *JobSpec {
	s.sources[vertex] = src
	return s
}

// AddConstraint attaches a latency constraint.
func (s *JobSpec) AddConstraint(c *model.Constraint) *JobSpec {
	s.constraints = append(s.constraints, c)
	return s
}

// Graph returns the spec's job graph.
func (s *JobSpec) Graph() *model.JobGraph { return s.graph }

// validate checks completeness.
func (s *JobSpec) validate() error {
	if s.graph == nil {
		return fmt.Errorf("engine: job spec has no graph")
	}
	if err := s.graph.Validate(); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	for _, v := range s.graph.Vertices() {
		_, hasUDF := s.udfs[v.Name]
		src, hasSrc := s.sources[v.Name]
		switch {
		case hasUDF && hasSrc:
			return fmt.Errorf("engine: vertex %q has both a UDF and a source", v.Name)
		case !hasUDF && !hasSrc:
			return fmt.Errorf("engine: vertex %q has neither a UDF nor a source", v.Name)
		case hasSrc && len(s.graph.InEdges(v.Name)) > 0:
			return fmt.Errorf("engine: source vertex %q has inbound edges", v.Name)
		case hasSrc && (src.Schedule == nil || src.Emit == nil):
			return fmt.Errorf("engine: source vertex %q needs a schedule and an emit function", v.Name)
		case hasUDF && len(s.graph.InEdges(v.Name)) == 0:
			return fmt.Errorf("engine: vertex %q has a UDF but no inputs", v.Name)
		}
	}
	for _, c := range s.constraints {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("engine: %w", err)
		}
	}
	return nil
}
