package engine

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"nephelix/internal/model"
	"nephelix/internal/workload"
)

// TestWheelFiresArmedEntry is the unit-level counterpart of the idle
// regression below: an armed entry must fire within a few resolutions,
// raise the emitter's flush request, wake it, and leave the wheel
// disarmed. Without this, a zero-fires assertion could pass vacuously.
func TestWheelFiresArmedEntry(t *testing.T) {
	w := newFlushWheel(time.Millisecond)
	go w.run()
	defer w.stop()

	e := &emitter{wakeCh: make(chan struct{}, 1)}
	e.parked = &e.ownParked
	e.ownParked.Store(true)
	e.armedUntil.Store(time.Now().UnixNano())

	w.arm(e, time.Now().UnixNano())
	waitUntil(t, "armed entry to fire", 5*time.Second, func() bool {
		return w.fires.Load() == 1
	})
	if !e.flushReq.Load() {
		t.Error("fire did not raise the emitter's flushReq")
	}
	if e.armedUntil.Load() != 0 {
		t.Error("fire did not clear the emitter's armedUntil marker")
	}
	select {
	case <-e.wakeCh:
	default:
		t.Error("fire did not wake the parked emitter")
	}
	if got := w.armed.Load(); got != 0 {
		t.Errorf("armed = %d after fire, want 0", got)
	}
}

// TestWheelIdleTopologyNoFires (satellite): the wheel arms only on
// empty→non-empty buffer transitions, so a topology that moves no
// records must cost zero timer fires — the regression this guards is
// the channel-era engine, where every task ran a FlushTick ticker
// whether or not it had anything buffered. The source's schedule runs
// for 300 ms (hundreds of old-style ticks at the 1 ms default) while
// its Emit produces nothing; adaptive batching on both edges keeps the
// gates in the one mode whose finite deadlines would use the wheel.
func TestWheelIdleTopologyNoFires(t *testing.T) {
	g := buildChain(t, 2, 2, model.PatternRoundRobin)
	var received atomic.Int64

	seq, err := model.ParseSequence(g, "src->work", "work", "work->sink")
	if err != nil {
		t.Fatal(err)
	}
	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.ConstantSchedule{RatePerSecond: 1000, Length: 0.3},
			Emit:     func(*Context) {}, // scheduled, but never emits
		}).
		SetUDF("work", func(int) UDF {
			return UDFFunc(func(ctx *Context, rec Record) { ctx.Emit(0, rec) })
		}).
		SetUDF("sink", func(int) UDF {
			return UDFFunc(func(*Context, Record) { received.Add(1) })
		}).
		SetEdgeBatching("src", "work", BatchingAdaptive).
		SetEdgeBatching("work", "sink", BatchingAdaptive)
	spec.AddConstraint(&model.Constraint{
		Name: "idle", Sequence: seq,
		Bound: 20 * time.Millisecond, Window: 10 * time.Second,
	})

	exec, err := New(Config{
		Seed:                7,
		MeasurementInterval: 20 * time.Millisecond,
		AdjustmentInterval:  50 * time.Millisecond,
		DrainIdle:           50 * time.Millisecond,
	}).Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := exec.Wait(ctx); err != nil {
		t.Fatalf("idle job did not finish: %v", err)
	}

	if got := received.Load(); got != 0 {
		t.Fatalf("idle topology delivered %d records, want 0 (test is broken)", got)
	}
	if got := exec.ex.wheel.fires.Load(); got != 0 {
		t.Errorf("wheel fired %d times on an idle topology, want 0", got)
	}
	if got := exec.ex.wheel.armed.Load(); got != 0 {
		t.Errorf("wheel still has %d armed entries after an idle run, want 0", got)
	}
}
