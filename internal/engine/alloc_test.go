package engine

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"nephelix/internal/model"
	"nephelix/internal/obs"
	"nephelix/internal/workload"
)

// allocEngineRun executes one src(1)→work(2)→sink(1) run with adaptive
// batching over rotation wiring — the scaler's steady-state configuration
// — and returns the number of records delivered at the sink. The source
// bursts 64 records per scheduled emission so the data plane, not the
// pacing timer, dominates the allocation profile.
func allocEngineRun(t *testing.T) float64 {
	t.Helper()
	g := buildChain(t, 2, 2, model.PatternRoundRobin)
	var emitted, received atomic.Int64
	spec := NewJobSpec(g).
		SetSource("src", SourceSpec{
			Schedule: &workload.ConstantSchedule{RatePerSecond: 1000, Length: 0.5},
			Emit: func(ctx *Context) {
				n := emitted.Add(64)
				for i := 0; i < 64; i++ {
					ctx.Emit(0, Record{Key: uint64(n) + uint64(i)})
				}
			},
		}).
		SetUDF("work", func(int) UDF { return &forwarder{} }).
		SetUDF("sink", func(int) UDF { return &countingSink{count: &received} }).
		SetEdgeBatching("src", "work", BatchingAdaptive).
		SetEdgeBatching("work", "sink", BatchingAdaptive)
	seq, err := model.ParseSequence(g, "src->work", "work", "work->sink")
	if err != nil {
		t.Fatal(err)
	}
	spec.AddConstraint(&model.Constraint{
		Name: "alloc", Sequence: seq,
		Bound: 20 * time.Millisecond, Window: 10 * time.Second,
	})
	exec, err := New(Config{
		Seed:                1,
		MeasurementInterval: 100 * time.Millisecond,
		AdjustmentInterval:  250 * time.Millisecond,
		// Full data-plane instrumentation stays on: the scrape and the
		// ring/wheel/pool counters must not put allocations (or any other
		// cost) on the per-record path — the budget below covers them.
		Telemetry: obs.NewTelemetry(64),
		Recorder:  obs.NewRecorder(64),
	}).Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := exec.Wait(ctx); err != nil {
		t.Fatalf("alloc run did not finish: %v", err)
	}
	if received.Load() == 0 {
		t.Fatal("no records delivered")
	}
	return float64(received.Load())
}

// TestEngineSteadyStateAllocsPerRecord pins the pooled data plane: with
// batch slices recycled through the execution's free list, the shipment
// scratch reused, and the amortized task clock, a whole run — setup,
// goroutine stacks and QoS-interval bookkeeping included — must stay
// well under one allocation per delivered record. The pre-pooling
// engine sat near 1.6 allocs/record on this configuration (6 with
// instant batching); the pooled plane measures ~0.02. The 0.5 budget
// guards against per-record allocations creeping back in (closures,
// boxing, buffer reallocation) while tolerating control-plane noise.
func TestEngineSteadyStateAllocsPerRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock engine runs")
	}
	var records float64
	allocs := testing.AllocsPerRun(3, func() {
		records = allocEngineRun(t)
	})
	if perRecord := allocs / records; perRecord > 0.5 {
		t.Errorf("steady-state allocations: %.3f allocs/record (%.0f allocs / %.0f records), want ≤ 0.5",
			perRecord, allocs, records)
	}
}
