package engine

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nephelix/internal/model"
)

// testGate builds a bare gate wired to nobody, for direct unit tests of
// the routing and buffering logic (no running tasks involved).
func testGate(pattern model.WiringPattern, maxBatch int) (*gate, *atomic.Int64, *batchPool) {
	drops := &atomic.Int64{}
	pool := &batchPool{}
	g := newGate(model.EdgeKey{Source: "a", Target: "b"}, 0, 0, pattern, maxBatch, drops, pool)
	return g, drops, pool
}

// TestGateStrandedKeyBuffers is the regression test for the scale-down
// routing bug: key buffers pinned to a removed consumer must be
// re-partitioned over the live consumer set, never shipped to the
// removed task. Pre-fix, removeConsumer left perKey[removed] in place
// and due/drainAll shipped it to the dead task.
func TestGateStrandedKeyBuffers(t *testing.T) {
	g, _, _ := testGate(model.PatternKeyBased, 1024)
	g.setDeadline(time.Minute)
	keep, gone := &task{}, &task{}
	refKeep := &channelRef{to: keep}
	refGone := &channelRef{to: gone}
	g.addConsumer(refKeep)
	g.addConsumer(refGone)

	now := time.Now()
	const n = 64
	for i := 0; i < n; i++ {
		if out := g.push(Record{Key: uint64(i), Value: i}, now); len(out) != 0 {
			t.Fatalf("push %d flushed early: %d shipments", i, len(out))
		}
	}
	if len(g.perKey[refGone]) == 0 {
		t.Fatal("test setup: no keys hashed to the removed consumer")
	}

	g.removeConsumer(gone)

	// The moved records must keep their buffered age: a flush tick at
	// exactly now+deadline has to ship everything. If reconciliation
	// reset the age, nothing stranded would be due yet.
	out := g.due(now.Add(time.Minute))
	total := 0
	for _, s := range out {
		if s.ref.to == gone {
			t.Fatalf("batch of %d records shipped to removed consumer", len(s.b.items))
		}
		if s.ref != refKeep {
			t.Fatalf("shipment addressed to unknown ref %p", s.ref)
		}
		total += len(s.b.items)
	}
	if total != n {
		t.Fatalf("flushed %d records after scale-down, want all %d", total, n)
	}
	if len(g.perKey) != 0 {
		t.Fatalf("%d key buffers left behind after full flush", len(g.perKey))
	}
}

// TestGateStrandedKeyBuffersNoConsumers covers the degenerate tail of the
// same bug: when the last consumer leaves, stranded records are dropped
// and counted, not kept pinned forever.
func TestGateStrandedKeyBuffersNoConsumers(t *testing.T) {
	g, drops, _ := testGate(model.PatternKeyBased, 1024)
	g.setDeadline(time.Minute)
	gone := &task{}
	g.addConsumer(&channelRef{to: gone})

	now := time.Now()
	for i := 0; i < 16; i++ {
		g.push(Record{Key: uint64(i)}, now)
	}
	g.removeConsumer(gone)
	if out := g.drainAll(now.Add(time.Second)); len(out) != 0 {
		t.Fatalf("drainAll shipped %d batches with no consumers", len(out))
	}
	if got := drops.Load(); got != 16 {
		t.Fatalf("dropped %d records, want 16", got)
	}
	if len(g.perKey) != 0 {
		t.Fatal("stranded key buffers survived reconciliation")
	}
}

// TestGateBroadcastOwnership is the regression test for the broadcast
// aliasing bug: every consumer must receive its own copy of the batch.
// Pre-fix, the last consumer was handed the gate's buffer itself, so a
// record-mutating UDF (or, under pooling, a recycle) corrupted the
// other consumers' view.
func TestGateBroadcastOwnership(t *testing.T) {
	g, _, _ := testGate(model.PatternBroadcast, 1024)
	g.setDeadline(time.Minute)
	refs := []*channelRef{{to: &task{}}, {to: &task{}}, {to: &task{}}}
	for _, r := range refs {
		g.addConsumer(r)
	}

	now := time.Now()
	const n = 8
	for i := 0; i < n; i++ {
		g.push(Record{Key: uint64(i), Value: i}, now)
	}
	bufPtr := &g.buf[0]

	out := g.drainAll(now.Add(time.Second))
	if len(out) != len(refs) {
		t.Fatalf("broadcast produced %d shipments, want %d", len(out), len(refs))
	}
	seen := make(map[*Record]bool)
	for _, s := range out {
		if len(s.b.items) != n {
			t.Fatalf("shipment has %d records, want %d", len(s.b.items), n)
		}
		head := &s.b.items[0]
		if head == bufPtr {
			t.Fatal("a consumer was handed the gate's own buffer (aliasing)")
		}
		if seen[head] {
			t.Fatal("two consumers share a batch backing array")
		}
		seen[head] = true
		for i, rec := range s.b.items {
			if rec.Value != i {
				t.Fatalf("record %d has value %v, want %d", i, rec.Value, i)
			}
		}
	}
	// The gate keeps (and reuses) its buffer across broadcast flushes.
	if cap(g.buf) == 0 || len(g.buf) != 0 {
		t.Fatalf("gate buffer not retained empty: len=%d cap=%d", len(g.buf), cap(g.buf))
	}
}

// TestGateConcurrentConsumerChurn runs a producer (push/due/drainAll)
// against a master goroutine adding and removing consumers, under every
// wiring pattern. It exists to fail under -race if the consumer
// snapshot, generation counters (rrGen redraw, keyGen reconciliation) or
// pool hand-off ever grow an unsynchronized access.
func TestGateConcurrentConsumerChurn(t *testing.T) {
	patterns := map[string]model.WiringPattern{
		"roundrobin": model.PatternRoundRobin,
		"broadcast":  model.PatternBroadcast,
		"keybased":   model.PatternKeyBased,
	}
	for name, pattern := range patterns {
		pattern := pattern
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			g, _, pool := testGate(pattern, 8)
			g.setDeadline(200 * time.Microsecond)
			anchor := &channelRef{to: &task{}}
			g.addConsumer(anchor) // never removed: push always has a target

			done := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() { // master: churn the consumer set
				defer wg.Done()
				churn := make([]*task, 0, 4)
				for i := 0; ; i++ {
					select {
					case <-done:
						return
					default:
					}
					if len(churn) < 4 {
						tt := &task{}
						churn = append(churn, tt)
						g.addConsumer(&channelRef{to: tt})
					} else {
						g.removeConsumer(churn[0])
						churn = churn[1:]
					}
					if i%8 == 0 {
						time.Sleep(50 * time.Microsecond)
					}
				}
			}()

			// Producer: single goroutine, as the ownership contract
			// requires; consumes its own shipments back into the pool
			// (standing in for the consumer-side recycle).
			recycle := func(out []shipment) {
				for _, s := range out {
					pool.put(0, s.b.items)
				}
			}
			for i := 0; i < 4000; i++ {
				now := time.Now()
				recycle(g.push(Record{Key: uint64(i)}, now))
				if i%16 == 0 {
					recycle(g.due(now))
				}
			}
			recycle(g.drainAll(time.Now()))
			close(done)
			wg.Wait()
		})
	}
}
