// Package engine is the live, goroutine-based streaming runtime: the
// Nephele-style execution layer that runs real UDFs over real data with
// the same control plane the paper describes — QoS reporters and
// managers, adaptive output batching, and the reactive elastic scaler of
// internal/core. Each task is a goroutine; channels are bounded Go
// channels of record batches, so backpressure arises naturally; the
// master goroutine adjusts flush deadlines and degrees of parallelism
// once per adjustment interval.
//
// The engine targets laptop-scale executions (examples, integration
// tests, small deployments). Cluster-scale reproductions of the paper's
// figures run on the virtual-time simulator in internal/sim instead; both
// layers share the model, QoS, probe and core packages, so the control
// plane under test is identical.
package engine

import (
	"time"

	"nephelix/internal/obs"
)

// Record is one data item flowing through the job.
type Record struct {
	// Key selects the partition under key-based wiring and is available
	// to UDFs as a lightweight identifier.
	Key uint64
	// Value is the payload. UDFs agree on the concrete types per edge.
	Value any

	// EmitTime is the wall-clock time the record (or its oldest sampled
	// ancestor) entered the constrained sequence; zero when unsampled.
	// End-to-end probes measure against it.
	EmitTime time.Time
	// Sampled marks records participating in latency probing.
	Sampled bool

	// span is the record's trace span (nil unless the record descends
	// from a head-sampled emission and tracing is on). Records emitted
	// while processing a traced record inherit it.
	span *obs.Span

	// srcID and offset are the record's lineage under processing
	// guarantees: the stable source-partition id that emitted it (0 =
	// untracked) and its per-source sequence number. Value fields, so
	// offset tagging costs no allocation; records emitted while
	// processing a tracked record inherit the lineage (emit), which is
	// how 1:1 pipelines carry offsets to the dedup sinks.
	srcID  int32
	offset uint64
}

// batch is the unit shipped between tasks: records that left one
// producer's output gate together. Its items slice is pool-recycled
// (see pool.go): the receiving consumer owns it exclusively from ship
// to recycle, and no other party — including the producing gate — may
// retain a reference after the shipment is handed off.
type batch struct {
	items []Record
	// from identifies the producing channel for QoS attribution.
	producer  int
	edgePos   int
	oldestBuf time.Time
	shipped   time.Time
	// poolHint is the batch-pool shard the items slice came from; the
	// recycler passes it back to pool.put so slices return to the shard
	// their producer draws from (recycle affinity — without it producer
	// shards starve and every flush allocates).
	poolHint int
	// barrier, when non-zero, marks this batch as a checkpoint barrier
	// with that id: items is nil, the batch rides the same channels as
	// data (per-producer FIFO is what makes alignment a consistent cut),
	// and consumers align instead of processing (task.onBarrier).
	barrier int64
}
