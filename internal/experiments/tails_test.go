package experiments

import "testing"

// TestTailsSketchAccuracy is the acceptance check for the quantile
// sketches: over a bursty TwitterSentiment run, every probe quantile
// estimated from the mergeable sketch must sit within the declared
// relative-error bound α of the exact nearest-rank percentile of the
// fully captured latency stream, and the SLO/attribution layers must
// produce well-formed state.
func TestTailsSketchAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment; skipped in -short mode")
	}
	opts := TailsQuick()
	opts.Duration = 1100 // covers the 900 s burst, keeps CI fast
	res, err := RunTails(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Checks.Failed() {
		t.Errorf("check failed: %+v", f)
	}
	if res.MaxRelErr > opts.Alpha+1e-12 {
		for _, v := range res.Validation {
			t.Logf("%s q=%g exact=%.6f sketch=%.6f rel=%.5f", v.Probe, v.Quantile, v.Exact, v.Sketch, v.RelErr)
		}
		t.Fatalf("sketch max rel err %.5f exceeds α=%g", res.MaxRelErr, opts.Alpha)
	}
}
