package experiments

import (
	"strings"
	"testing"
)

// TestTailScalerReproduction runs the tail-aware scaling experiment at
// quick scale and requires every trade-off check to hold — in
// particular the p99-fulfillment gap: the percentile-constrained scaler
// must resolve a tail violation the mean-constrained scaler never
// reacts to.
func TestTailScalerReproduction(t *testing.T) {
	res, err := RunTailScaler(TailScalerQuick())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Checks.AllPass() {
		t.Fatalf("tailscaler checks failed:\n%s", res.Checks)
	}
	if res.Gap < 0.05 {
		t.Fatalf("p99 fulfillment gap %+.3f on %s: elastic-tail did not beat elastic-mean", res.Gap, res.GapProbe)
	}
	// The mean and tail runs share trace, seed and scale; only the
	// constraint semantics differ, so a diverging decision history is
	// the tail model at work.
	if res.Tail.TaskHours == res.Mean.TaskHours && res.Tail.ScaleUps == res.Mean.ScaleUps {
		t.Fatal("elastic-tail run is identical to elastic-mean: percentile constraints had no effect")
	}
	if res.Steady.TailRelErrSamples == 0 {
		t.Fatal("no tail predictions were scored against measured percentiles")
	}

	var csv strings.Builder
	if err := res.WriteTailScalerCSV(&csv); err != nil {
		t.Fatal(err)
	}
	out := csv.String()
	if !strings.Contains(out, "elastic-mean") || !strings.Contains(out, "elastic-tail-steady") {
		t.Fatalf("CSV missing variants:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 1+3*len(tailScalerProbes) {
		t.Fatalf("CSV has %d lines, want %d:\n%s", got, 1+3*len(tailScalerProbes), out)
	}
}
