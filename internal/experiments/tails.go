package experiments

import (
	"fmt"
	"math"

	"nephelix/internal/apps"
	"nephelix/internal/metrics/sketch"
	"nephelix/internal/obs"
	"nephelix/internal/sim"
	"nephelix/internal/workload"
)

// TailsOptions parameterizes the tail-latency observability experiment:
// the TwitterSentiment job under its bursty tweet trace, with the
// probe streams captured exactly so the quantile sketches can be
// validated against ground truth.
type TailsOptions struct {
	// Scale divides the trace rates and parallelism (as in Figure 8).
	Scale int
	// Duration truncates the trace (0 = full 6000 s). The default quick
	// variant covers the 900 s burst and the main 2300 s burst.
	Duration float64
	Seed     int64
	// SampleEvery is the tracer's head-sampling period for per-hop
	// attribution (every SampleEvery-th source record carries a span).
	SampleEvery int
	// Alpha is the sketch relative-error bound under validation.
	Alpha float64

	// Recorder and Telemetry, when set, receive the run's audit events
	// and time series (SLO gauges, tail quantiles, hop sketches).
	Recorder  *obs.Recorder
	Telemetry *obs.Telemetry
}

// TailsQuick returns the laptop-scale configuration.
func TailsQuick() TailsOptions {
	return TailsOptions{Scale: 4, Duration: 2600, Seed: 1, SampleEvery: 8, Alpha: sketch.DefaultAlpha}
}

// TailsPaper runs the full-scale trace end to end.
func TailsPaper() TailsOptions {
	return TailsOptions{Scale: 1, Seed: 1, SampleEvery: 8, Alpha: sketch.DefaultAlpha}
}

// TailsQuantile is one sketch-vs-exact comparison: the probe's quantile
// estimate from its mergeable sketch against the nearest-rank value of
// the exactly captured latency stream.
type TailsQuantile struct {
	Probe    string
	Quantile float64
	Exact    float64
	Sketch   float64
	RelErr   float64
}

// TailsResult aggregates the run, the sketch validation, the p99
// attribution and the SLO accounting.
type TailsResult struct {
	Options TailsOptions
	Rows    []sim.Row

	// Validation holds one row per probe and quantile; MaxRelErr is the
	// worst observed |sketch−exact|/exact (must stay ≤ Alpha).
	Validation []TailsQuantile
	MaxRelErr  float64

	// Attribution decomposes the sampled end-to-end latency per hop at
	// p99 — which vertex or edge dominates the tail vs the mean.
	Attribution obs.TailAttributionReport

	// SLO is the final per-constraint error-budget state.
	SLO []obs.SLOStatus

	Checks CheckList
}

// tailsQuantiles are the validated quantiles.
var tailsQuantiles = []float64{0.5, 0.9, 0.95, 0.99, 0.999}

// scaleTwitterOptions divides the TwitterSentiment trace rates and
// parallelism-related quantities by scale (shared by Figure 8 and the
// tails experiment).
func scaleTwitterOptions(appOpts *apps.TwitterSentimentOptions, scale int) {
	if scale <= 1 {
		return
	}
	f := float64(scale)
	tr := *appOpts.Schedule
	tr.BaseRate /= f
	tr.DailyAmplitude /= f
	bursts := make([]workload.Burst, len(tr.Bursts))
	copy(bursts, tr.Bursts)
	for i := range bursts {
		bursts[i].ExtraRate /= f
	}
	tr.Bursts = bursts
	appOpts.Schedule = &tr
	div := func(v int) int {
		r := v / scale
		if r < 1 {
			r = 1
		}
		return r
	}
	appOpts.Sources = div(appOpts.Sources)
	appOpts.InitialHT = div(appOpts.InitialHT)
	appOpts.InitialFilter = div(appOpts.InitialFilter)
	appOpts.InitialSentiment = div(appOpts.InitialSentiment)
	appOpts.MaxElastic = div(appOpts.MaxElastic)
	appOpts.WorkerNodes = div(appOpts.WorkerNodes)
}

// RunTails executes the tail-latency observability experiment.
func RunTails(opts TailsOptions) (*TailsResult, error) {
	if opts.Scale <= 0 {
		opts.Scale = 4
	}
	if opts.SampleEvery <= 0 {
		opts.SampleEvery = 8
	}
	if opts.Alpha <= 0 {
		opts.Alpha = sketch.DefaultAlpha
	}
	appOpts := apps.DefaultTwitterSentimentOptions()
	appOpts.Seed = opts.Seed
	scaleTwitterOptions(&appOpts, opts.Scale)
	cfg, probes, err := apps.BuildTwitterSentiment(appOpts)
	if err != nil {
		return nil, fmt.Errorf("experiments: tails: %w", err)
	}
	if opts.Duration > 0 {
		cfg.Duration = opts.Duration
	}
	tracer := obs.NewTracer(opts.SampleEvery)
	cfg.Tracer = tracer
	cfg.Recorder = opts.Recorder
	telemetry := opts.Telemetry
	if telemetry == nil {
		telemetry = obs.NewTelemetry(0)
	}
	cfg.Telemetry = telemetry

	// Capture the exact probe streams: every probed record's latency,
	// in arrival order, next to the probe's own sketch ingest.
	exact := map[string]*[]float64{}
	for _, name := range []string{apps.HotTopicsProbe, apps.SentimentProbe} {
		buf := make([]float64, 0, 1<<16)
		exact[name] = &buf
		bp := &buf
		probes.Probe(name).Tap = func(latency float64) {
			*bp = append(*bp, latency)
		}
	}

	s, err := sim.New(cfg, probes)
	if err != nil {
		return nil, fmt.Errorf("experiments: tails: %w", err)
	}
	out, err := s.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: tails: %w", err)
	}

	res := &TailsResult{Options: opts, Rows: out.Rows}
	for _, name := range []string{apps.HotTopicsProbe, apps.SentimentProbe} {
		samples := *exact[name]
		p := probes.Probe(name)
		for _, q := range tailsQuantiles {
			ex := sketch.NearestRankOf(samples, q)
			est := p.TotalQuantile(q)
			v := TailsQuantile{Probe: name, Quantile: q, Exact: ex, Sketch: est}
			if ex > 0 {
				v.RelErr = math.Abs(est-ex) / ex
			}
			if v.RelErr > res.MaxRelErr {
				res.MaxRelErr = v.RelErr
			}
			res.Validation = append(res.Validation, v)
		}
	}
	res.Attribution = tracer.TailAttribution(0.99)
	res.SLO = telemetry.SLOSnapshot()
	res.Checks = tailsChecks(res, exact)
	return res, nil
}

// tailsChecks asserts the observability layer's own guarantees.
func tailsChecks(res *TailsResult, exact map[string]*[]float64) CheckList {
	var checks CheckList
	var captured int
	for _, buf := range exact {
		captured += len(*buf)
	}
	checks.Add("exact streams captured",
		"both probe paths produced ground-truth latency samples",
		fmt.Sprintf("%d samples", captured),
		captured > 1000)
	checks.Add("sketch relative-error bound",
		fmt.Sprintf("every quantile within α=%g of the exact nearest-rank value", res.Options.Alpha),
		fmt.Sprintf("max rel err %.5f over %d comparisons", res.MaxRelErr, len(res.Validation)),
		res.MaxRelErr <= res.Options.Alpha+1e-12)
	checks.Add("hops attributed",
		"per-hop sketches cover the sampled spans",
		fmt.Sprintf("%d hops, e2e n=%d", len(res.Attribution.Hops), res.Attribution.E2ECount),
		len(res.Attribution.Hops) > 0 && res.Attribution.E2ECount > 100)
	checks.Add("tail dominance identified",
		"a dominant hop exists at the mean and at p99",
		fmt.Sprintf("mean: %s; p99: %s", res.Attribution.DominantMean, res.Attribution.DominantTail),
		res.Attribution.DominantMean != "" && res.Attribution.DominantTail != "")
	var sloOK, withObs int
	for _, st := range res.SLO {
		if st.Count > 0 {
			withObs++
		}
		if st.WindowIntervals > 0 && st.BadFraction >= 0 && st.BadFraction <= 1 {
			sloOK++
		}
	}
	checks.Add("SLO budgets tracked",
		"both latency constraints accumulate error-budget state",
		fmt.Sprintf("%d targets, %d with observations", len(res.SLO), withObs),
		len(res.SLO) == 2 && withObs == 2 && sloOK == len(res.SLO))
	// The tail quantiles the dashboard draws must be monotone.
	e := res.Attribution
	checks.Add("e2e quantiles monotone",
		"p50 ≤ p95 ≤ p99 ≤ p999 on the sampled end-to-end stream",
		fmt.Sprintf("p50=%.3fs p95=%.3fs p99=%.3fs p999=%.3fs", e.E2EP50, e.E2EP95, e.E2EP99, e.E2EP999),
		e.E2EP50 <= e.E2EP95 && e.E2EP95 <= e.E2EP99 && e.E2EP99 <= e.E2EP999)
	return checks
}

// WriteTailsCSV renders the p99 attribution as CSV: the end-to-end
// distribution first, then one row per hop with its mean/tail shares.
func (r *TailsResult) WriteTailsCSV(w interface{ Write([]byte) (int, error) }) error {
	a := r.Attribution
	if _, err := fmt.Fprintln(w, "kind,name,count,mean_s,p50_s,p95_s,p99_s,p999_s,mean_share,tail_share"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "e2e,e2e,%d,%g,%g,%g,%g,%g,,\n",
		a.E2ECount, a.E2EMean, a.E2EP50, a.E2EP95, a.E2EP99, a.E2EP999); err != nil {
		return err
	}
	for _, h := range a.Hops {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%g,%g,%g,%g,%g,%g,%g\n",
			h.Kind, h.Name, h.Count, h.Mean, h.P50, h.P95, h.P99, h.P999,
			h.MeanShare, h.TailShare); err != nil {
			return err
		}
	}
	return nil
}
