package experiments

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"nephelix/internal/engine"
	"nephelix/internal/model"
	"nephelix/internal/workload"
)

// The engine bench suite measures the live runtime's data plane — the
// produce→batch→ship→consume path of internal/engine — across the three
// output-batching modes and the three wiring patterns. Unlike the
// simulator benchmarks these run in wall-clock time: a saturating burst
// source drives a src→work→sink pipeline for about a second and the
// suite reports delivered records per second plus whole-run allocation
// figures, emitted to BENCH_engine.json by the `experiments bench`
// subcommand.

// EngineBenchCase names one engine data-plane configuration.
type EngineBenchCase struct {
	Name     string
	Pattern  model.WiringPattern
	Batching engine.EdgeBatching
}

// EngineBenchCases enumerates batching mode × wiring pattern.
func EngineBenchCases() []EngineBenchCase {
	modes := []struct {
		name string
		m    engine.EdgeBatching
	}{
		{"instant", engine.BatchingInstant},
		{"fixed", engine.BatchingFixed},
		{"adaptive", engine.BatchingAdaptive},
	}
	patterns := []struct {
		name string
		p    model.WiringPattern
	}{
		{"rotation", model.PatternRoundRobin},
		{"broadcast", model.PatternBroadcast},
		{"keybased", model.PatternKeyBased},
	}
	var cases []EngineBenchCase
	for _, m := range modes {
		for _, p := range patterns {
			cases = append(cases, EngineBenchCase{
				Name:     m.name + "-" + p.name,
				Pattern:  p.p,
				Batching: m.m,
			})
		}
	}
	return cases
}

// engineBenchBurst is how many records one scheduled source emission
// pushes: the schedule paces emissions, the burst saturates the gates so
// backpressure (not the pacing timer) bounds throughput.
const engineBenchBurst = 64

// RunEngineBench executes one case: a src(1)→work(2)→sink(1) pipeline
// driven by a bursting source for about a second of wall-clock time.
// Returned metrics: "records" delivered at the sink, "records/s" of
// wall time, and "emitted" source records.
func RunEngineBench(c EngineBenchCase) (map[string]float64, error) {
	g := model.NewJobGraph()
	for _, v := range []model.JobVertex{
		{Name: "src", Parallelism: 1, MinParallelism: 1, MaxParallelism: 1},
		{Name: "work", Parallelism: 2, MinParallelism: 2, MaxParallelism: 2},
		{Name: "sink", Parallelism: 1, MinParallelism: 1, MaxParallelism: 1},
	} {
		if err := g.AddVertex(v); err != nil {
			return nil, err
		}
	}
	if err := g.AddEdge("src", "work", c.Pattern); err != nil {
		return nil, err
	}
	if err := g.AddEdge("work", "sink", model.PatternRoundRobin); err != nil {
		return nil, err
	}
	var emitted, received atomic.Int64
	spec := engine.NewJobSpec(g).
		SetSource("src", engine.SourceSpec{
			// 50k scheduled emissions/s × 64-record bursts attempts 3.2M
			// records/s — far past what the plane sustains, so capacity and
			// backpressure (not the pacing loop) bound the measurement.
			Schedule: &workload.ConstantSchedule{RatePerSecond: 50000, Length: 1.0},
			Emit: func(ctx *engine.Context) {
				n := emitted.Add(int64(engineBenchBurst))
				for i := 0; i < engineBenchBurst; i++ {
					ctx.Emit(0, engine.Record{Key: uint64(n) + uint64(i)})
				}
			},
		}).
		SetUDF("work", func(int) engine.UDF {
			return engine.UDFFunc(func(ctx *engine.Context, rec engine.Record) {
				ctx.Emit(0, rec)
			})
		}).
		SetUDF("sink", func(int) engine.UDF {
			return engine.UDFFunc(func(*engine.Context, engine.Record) {
				received.Add(1)
			})
		}).
		SetEdgeBatching("src", "work", c.Batching).
		SetEdgeBatching("work", "sink", c.Batching)
	if c.Batching == engine.BatchingAdaptive {
		// Adaptive flushing needs a constraint for the batching controller
		// to budget deadlines against.
		seq, err := model.ParseSequence(g, "src->work", "work", "work->sink")
		if err != nil {
			return nil, err
		}
		spec.AddConstraint(&model.Constraint{
			Name: "bench", Sequence: seq,
			Bound: 20 * time.Millisecond, Window: 10 * time.Second,
		})
	}
	start := time.Now()
	exec, err := engine.New(engine.Config{
		Seed:                1,
		MeasurementInterval: 100 * time.Millisecond,
		AdjustmentInterval:  250 * time.Millisecond,
	}).Submit(spec, nil)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := exec.Wait(ctx); err != nil {
		return nil, fmt.Errorf("experiments: engine bench %s: %w", c.Name, err)
	}
	wall := time.Since(start).Seconds()
	recs := float64(received.Load())
	if recs == 0 {
		return nil, fmt.Errorf("experiments: engine bench %s delivered nothing", c.Name)
	}
	return map[string]float64{
		"records":   recs,
		"records/s": recs / wall,
		"emitted":   float64(emitted.Load()),
	}, nil
}

// RunEngineBenchSuite executes every engine case once, sequentially, and
// derives allocs-per-delivered-record from the whole-run allocation
// counts (the engine's steady-state data plane is pooled; setup and
// QoS-interval bookkeeping amortize over the delivered records).
func RunEngineBenchSuite() (*BenchSuite, error) {
	suite := newBenchSuite()
	for _, c := range EngineBenchCases() {
		c := c
		m, err := measureBench("EngineThroughput/"+c.Name, 1, func() (map[string]float64, error) {
			return RunEngineBench(c)
		})
		if err != nil {
			return nil, err
		}
		if recs := m.Metrics["records"]; recs > 0 {
			m.Metrics["allocs/record"] = m.AllocsPerOp / recs
		}
		suite.Results = append(suite.Results, m)
	}
	return suite, nil
}
