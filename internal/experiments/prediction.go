package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"nephelix/internal/apps"
	"nephelix/internal/core"
	"nephelix/internal/model"
	"nephelix/internal/obs"
	"nephelix/internal/sim"
	"nephelix/internal/workload"
)

// The paper closes with "for future work we intend to focus on improving
// the prediction quality of our latency model". This experiment
// quantifies that quality: at every adjustment interval the fitted model
// predicts the queue waiting time for the parallelism it just chose; two
// adjustment intervals later (after the inactivity window) the measured
// wait is compared against that prediction.

// PredictionSample is one prediction/outcome pair.
type PredictionSample struct {
	// At is the decision time (seconds).
	At float64
	// FromP and ToP are the parallelism before and after the decision.
	FromP, ToP int
	// Predicted is W_model(ToP) at decision time; Measured the wait
	// observed after the change settled.
	Predicted float64
	Measured  float64
}

// PredictionQualityResult summarizes the model's prediction error.
type PredictionQualityResult struct {
	Samples []PredictionSample
	// MedianAbsRelError is the median of |measured−predicted|/measured.
	MedianAbsRelError float64
	// WithinFactor2 is the fraction of predictions within 2× of the
	// measurement (both directions).
	WithinFactor2 float64
	// Residuals are the telemetry residual monitor's per-(constraint,
	// vertex) statistics — the online counterpart of Samples, scored at
	// a one-interval horizon and merged across seeds in the sweep.
	Residuals []obs.ResidualStat
	// Drift lists the cells the monitor currently flags as drifting.
	Drift  []obs.DriftFlag
	Checks CheckList

	// monitor backs Residuals/Drift; the sweep merges per-seed monitors.
	monitor *obs.ResidualMonitor
}

// abs returns |x|.
func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// RunPredictionQuality runs an elastic PrimeTester under a step load and
// scores every scaling decision's wait prediction.
func RunPredictionQuality(scale int, seed int64) (*PredictionQualityResult, error) {
	if scale <= 0 {
		scale = 8
	}
	opts := apps.ScalePrimeTesterOptions(apps.PrimeTesterOptions{
		Sources: 32, Sinks: 32, PrimeTesters: 64, MinPT: 1, MaxPT: 520,
		Schedule: &workload.StepSchedule{
			WarmUpRate: 10000, StepDelta: 10000, IncrementSteps: 4, StepDuration: 25,
		},
		Mode:            sim.BatchAdaptive,
		ConstraintBound: 20 * time.Millisecond,
		Elastic:         true,
		WorkerNodes:     130,
		SlotsPerNode:    5,
		Seed:            seed,
	}, scale)
	cfg, probes, err := apps.BuildPrimeTester(opts)
	if err != nil {
		return nil, err
	}

	edge := model.EdgeKey{Source: apps.PTSource, Target: apps.PTWorker}
	seq := cfg.Constraints[0].Sequence
	type pending struct {
		sample PredictionSample
		due    int // adjustment rounds until scoring
	}
	var open []*pending
	res := &PredictionQualityResult{}
	modelOpts := core.DefaultModelOptions()

	cfg.OnAdjust = func(info sim.AdjustmentInfo) {
		// Score matured predictions against the current measurement.
		es, okE := info.Summary.Edge(edge)
		vs, okV := info.Summary.Vertex(apps.PTWorker)
		keep := open[:0]
		for _, p := range open {
			if p.due > 0 {
				p.due--
				keep = append(keep, p)
				continue
			}
			// Score if the parallelism is still (approximately) the one
			// the prediction was made for; the scaler nudges by a task
			// or two between rounds.
			tol := p.sample.ToP / 10
			if tol < 1 {
				tol = 1
			}
			if okE && okV && abs(vs.Parallelism-p.sample.ToP) <= tol {
				p.sample.Measured = es.QueueWait()
				res.Samples = append(res.Samples, p.sample)
			}
			// Parallelism moved on (or no data): discard silently.
		}
		open = keep

		// Register a new prediction when the scaler acted.
		if info.Decision == nil || len(info.Decision.Actions) == 0 || !okV {
			return
		}
		for _, a := range info.Decision.Actions {
			if a.Vertex != apps.PTWorker {
				continue
			}
			jv := cfg.Graph.Vertex(apps.PTWorker)
			vm, err := core.BuildVertexModel(jv, seq, info.Summary, modelOpts)
			if err != nil {
				continue
			}
			pred := vm.Wait(a.To)
			if math.IsInf(pred, 1) {
				continue
			}
			open = append(open, &pending{
				sample: PredictionSample{At: info.Now, FromP: a.From, ToP: a.To, Predicted: pred},
				due:    3, // inactivity window + one settling interval
			})
		}
	}

	// The telemetry residual monitor scores the same predictions online
	// at a one-interval horizon; its per-vertex aggregates land in
	// res.Residuals for drift interpretation.
	tel := obs.NewTelemetry(0)
	cfg.Telemetry = tel

	s, err := sim.New(cfg, probes)
	if err != nil {
		return nil, err
	}
	if _, err := s.Run(); err != nil {
		return nil, err
	}

	if len(res.Samples) == 0 {
		return nil, fmt.Errorf("experiments: no scoreable predictions (no stable scaling actions)")
	}
	res.monitor = tel.Residuals()
	res.Residuals = res.monitor.Snapshot()
	res.Drift = res.monitor.DriftFlags()
	res.score()
	return res, nil
}

// score fills the aggregate error statistics and checks from Samples.
func (res *PredictionQualityResult) score() {
	var relErrs []float64
	within := 0
	for _, sm := range res.Samples {
		if sm.Measured <= 0 {
			continue
		}
		relErrs = append(relErrs, math.Abs(sm.Measured-sm.Predicted)/sm.Measured)
		ratio := sm.Predicted / sm.Measured
		if ratio >= 0.5 && ratio <= 2 {
			within++
		}
	}
	if len(relErrs) > 0 {
		sort.Float64s(relErrs)
		res.MedianAbsRelError = relErrs[len(relErrs)/2]
		res.WithinFactor2 = float64(within) / float64(len(relErrs))
	}

	res.Checks = nil
	res.Checks.Add("predictions carry signal",
		"model is 'a rough predictor' (Section IV-C2)",
		fmt.Sprintf("median |rel err| %.2f over %d predictions", res.MedianAbsRelError, len(res.Samples)),
		res.MedianAbsRelError < 2.0)
	res.Checks.Add("half of predictions within 2x",
		"fit quality sufficient to rank scaling choices",
		fmt.Sprintf("%.0f%% within 2x", res.WithinFactor2*100),
		res.WithinFactor2 >= 0.4)
	if len(res.Residuals) > 0 {
		var scored int64
		for _, rs := range res.Residuals {
			scored += rs.Samples
		}
		res.Checks.Add("residual monitor scored predictions",
			"online W(p*) vs next-interval measured wait pairs accumulated",
			fmt.Sprintf("%d pairs over %d cells, %d drifting", scored, len(res.Residuals), len(res.Drift)),
			scored > 0)
	}
}

// RunPredictionQualitySweep runs RunPredictionQuality for every seed
// (fanned across the worker pool) and scores the pooled samples. Samples
// are concatenated in seed order, so the result is identical for any
// MaxWorkers setting.
func RunPredictionQualitySweep(scale int, seeds []int64) (*PredictionQualityResult, error) {
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	perSeed := make([]*PredictionQualityResult, len(seeds))
	err := forEachRun(len(seeds), func(i int) error {
		r, err := RunPredictionQuality(scale, seeds[i])
		if err != nil {
			return fmt.Errorf("experiments: prediction seed %d: %w", seeds[i], err)
		}
		perSeed[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &PredictionQualityResult{monitor: obs.NewResidualMonitor(obs.ResidualConfig{})}
	for _, r := range perSeed {
		res.Samples = append(res.Samples, r.Samples...)
		// Merge in seed order: the Welford merge result is order-
		// dependent, so this keeps the pooled statistics identical for
		// any MaxWorkers setting.
		res.monitor.Merge(r.monitor)
	}
	res.Residuals = res.monitor.Snapshot()
	res.Drift = res.monitor.DriftFlags()
	res.score()
	return res, nil
}
