package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"nephelix/internal/apps"
	"nephelix/internal/ckpt"
	"nephelix/internal/obs"
	"nephelix/internal/sim"
	"nephelix/internal/workload"
)

// GuaranteesOptions parameterizes the processing-guarantee sweep: the
// fault-injection scenario (elastic PrimeTester, a fraction of its
// tester tasks killed mid-plateau, supervised respawn) repeated under
// each guarantee mode and a range of checkpoint intervals. The sweep
// quantifies the guarantee ladder end to end — at-most-once loses the
// killed records, at-least-once replays them all (zero lost), and
// exactly-once additionally suppresses the replay duplicates at the
// sinks — and measures the latency-constraint violation window during
// recovery against the checkpoint interval.
type GuaranteesOptions struct {
	// Scale divides task counts and rates (reported values scaled back).
	Scale int
	// StepDuration is the phase-step length in seconds.
	StepDuration float64
	// KillFraction is the fraction of PrimeTester tasks killed at the
	// middle of the plateau (default 0.10).
	KillFraction float64
	// RestartDelay is the supervised-respawn latency in virtual seconds
	// (default 1).
	RestartDelay float64
	// Intervals are the checkpoint intervals (virtual seconds) swept for
	// the at-least-once and exactly-once runs (default 0.5, 1, 2).
	Intervals []float64
	// RecoveryBudget is the number of adjustment intervals after the
	// kill within which a fulfilled interval must occur (default 6).
	RecoveryBudget int
	Seed           int64
	// Telemetry, when set, receives the time series of the at-least-once
	// run at the first interval (the CI chaos job's recovery-window
	// artifact).
	Telemetry *obs.Telemetry
}

// GuaranteesQuick returns the laptop-scale configuration.
func GuaranteesQuick() GuaranteesOptions {
	return GuaranteesOptions{
		Scale: 8, StepDuration: 20, KillFraction: 0.10, RestartDelay: 1,
		Intervals: []float64{0.5, 1, 2}, RecoveryBudget: 6, Seed: 1,
	}
}

// GuaranteesPaper returns the paper-scale configuration.
func GuaranteesPaper() GuaranteesOptions {
	opts := GuaranteesQuick()
	opts.Scale = 1
	opts.StepDuration = 60
	return opts
}

// GuaranteeRun is one cell of the sweep.
type GuaranteeRun struct {
	Mode ckpt.Guarantee
	// CheckpointInterval is the barrier period in virtual seconds (0 for
	// the at-most-once run, which takes no checkpoints).
	CheckpointInterval float64

	// Emitted counts source emissions; Delivered counts sink-behavior
	// invocations (suppressed duplicates excluded).
	Emitted   int64
	Delivered int64
	// Distinct is the number of unique source offsets that reached a
	// sink; Lost is Emitted-Distinct for guaranteed runs (end-to-end
	// records never delivered) and the direct kill count for
	// at-most-once, which tracks no offsets.
	Distinct int64
	Lost     int64
	// Holes counts offsets below a committed checkpoint watermark that
	// never reached a sink — loss the guarantee claimed to cover.
	Holes int64
	// Replayed / DupDetected / DupDelivered quantify the replay cost:
	// duplicates are detected by the sink dedup in both guaranteed modes
	// but only delivered to the sink behavior under at-least-once.
	Replayed     int64
	DupDetected  int64
	DupDelivered int64

	CheckpointsCommitted int
	CheckpointsAborted   int

	// RecoveryWindow is the virtual time from the kill to the end of the
	// first fulfilled adjustment interval (-1: never recovered);
	// RecoveryIntervals the same in adjustment-interval counts.
	RecoveryWindow    float64
	RecoveryIntervals int
	// Fulfillment is the whole-run constraint fulfillment.
	Fulfillment float64
}

// GuaranteesResult aggregates the sweep.
type GuaranteesResult struct {
	Options GuaranteesOptions
	// KillTime is when the tasks died (mid-plateau, virtual seconds).
	KillTime float64
	Runs     []GuaranteeRun
	Checks   CheckList
}

// countingBehavior wraps a sink behavior and counts its Process
// invocations, so suppressed duplicates are observable from outside.
type countingBehavior struct {
	inner sim.Behavior
	n     *int64
}

func (b countingBehavior) ServiceTime(rng *rand.Rand, it *sim.Item) float64 {
	return b.inner.ServiceTime(rng, it)
}

func (b countingBehavior) Process(ctx *sim.TaskContext, it sim.Item) {
	*b.n++
	b.inner.Process(ctx, it)
}

// RunFaultsGuarantees executes the guarantee-mode sweep.
func RunFaultsGuarantees(opts GuaranteesOptions) (*GuaranteesResult, error) {
	if opts.Scale <= 0 {
		opts.Scale = 8
	}
	if opts.StepDuration <= 0 {
		opts.StepDuration = 20
	}
	if opts.KillFraction <= 0 || opts.KillFraction > 1 {
		opts.KillFraction = 0.10
	}
	if opts.RestartDelay <= 0 {
		opts.RestartDelay = 1
	}
	if len(opts.Intervals) == 0 {
		opts.Intervals = []float64{0.5, 1, 2}
	}
	if opts.RecoveryBudget <= 0 {
		opts.RecoveryBudget = 6
	}
	res := &GuaranteesResult{Options: opts}

	// One at-most-once baseline, then each guaranteed mode at each
	// checkpoint interval.
	cells := []GuaranteeRun{{Mode: ckpt.AtMostOnce}}
	for _, mode := range []ckpt.Guarantee{ckpt.AtLeastOnce, ckpt.ExactlyOnce} {
		for _, iv := range opts.Intervals {
			cells = append(cells, GuaranteeRun{Mode: mode, CheckpointInterval: iv})
		}
	}
	for _, cell := range cells {
		var telemetry *obs.Telemetry
		if cell.Mode == ckpt.AtLeastOnce && cell.CheckpointInterval == opts.Intervals[0] {
			telemetry = opts.Telemetry
		}
		run, killTime, err := runGuaranteeCell(opts, cell.Mode, cell.CheckpointInterval, telemetry)
		if err != nil {
			return nil, err
		}
		res.KillTime = killTime
		res.Runs = append(res.Runs, *run)
	}

	res.Checks = guaranteesChecks(res)
	return res, nil
}

// runGuaranteeCell executes one faulted elastic run under the given
// mode and interval.
func runGuaranteeCell(opts GuaranteesOptions, mode ckpt.Guarantee, interval float64, telemetry *obs.Telemetry) (*GuaranteeRun, float64, error) {
	schedule := &workload.StepSchedule{
		WarmUpRate:     10000,
		StepDelta:      10000,
		IncrementSteps: 2,
		StepDuration:   opts.StepDuration,
	}
	killTime := (float64(schedule.IncrementSteps) + 1.5) * opts.StepDuration

	elasticOpts := apps.ScalePrimeTesterOptions(apps.PrimeTesterOptions{
		Sources:            32,
		Sinks:              32,
		PrimeTesters:       64,
		MinPT:              1,
		MaxPT:              520,
		Schedule:           schedule,
		Mode:               sim.BatchAdaptive,
		ConstraintBound:    20 * time.Millisecond,
		Elastic:            true,
		WorkerNodes:        130,
		SlotsPerNode:       5,
		Seed:               opts.Seed,
		Guarantee:          mode,
		CheckpointInterval: interval,
	}, opts.Scale)
	cfg, probes, err := apps.BuildPrimeTester(elasticOpts)
	if err != nil {
		return nil, 0, fmt.Errorf("experiments: guarantees: %w", err)
	}
	// Every mode gets the supervisor's restart; the guarantee decides
	// whether anything is replayed after it.
	cfg.Faults = &sim.FaultPlan{
		TaskKills: []sim.TaskKill{{
			At:       killTime,
			Vertex:   apps.PTWorker,
			Fraction: opts.KillFraction,
		}},
		Respawn:      true,
		RestartDelay: opts.RestartDelay,
	}
	cfg.Telemetry = telemetry

	// Count sink-behavior invocations to observe duplicate suppression.
	var delivered int64
	inner := cfg.Vertices[apps.PTSink].NewBehavior
	vc := cfg.Vertices[apps.PTSink]
	vc.NewBehavior = func(i int) sim.Behavior {
		return countingBehavior{inner: inner(i), n: &delivered}
	}
	cfg.Vertices[apps.PTSink] = vc

	run := &GuaranteeRun{Mode: mode, CheckpointInterval: interval}
	prime := probes.Probe(apps.PrimeProbe)
	var lastFulfilled, lastIntervals, postKill int
	run.RecoveryIntervals = -1
	run.RecoveryWindow = -1
	cfg.OnAdjust = func(info sim.AdjustmentInfo) {
		frac, n := prime.Fulfillment()
		fulfilled := int(math.Round(frac * float64(n)))
		intervalMet := n > lastIntervals && fulfilled > lastFulfilled
		closedInterval := n > lastIntervals
		lastFulfilled, lastIntervals = fulfilled, n
		if info.Now <= killTime || run.RecoveryIntervals >= 0 {
			return
		}
		if closedInterval {
			if intervalMet {
				run.RecoveryIntervals = postKill
				run.RecoveryWindow = info.Now - killTime
				return
			}
			postKill++
		}
	}

	s, err := sim.New(cfg, probes)
	if err != nil {
		return nil, 0, fmt.Errorf("experiments: guarantees: %w", err)
	}
	out, err := s.Run()
	if err != nil {
		return nil, 0, fmt.Errorf("experiments: guarantees: %w", err)
	}

	run.Emitted = out.Emitted[apps.PTSource]
	run.Delivered = delivered
	run.Distinct = out.SinkDistinct
	run.Holes = out.SinkHoles
	run.Replayed = out.ReplayedItems
	run.DupDetected = out.SinkDuplicates
	run.CheckpointsCommitted = out.CheckpointsCommitted
	run.CheckpointsAborted = out.CheckpointsAborted
	run.Fulfillment = out.Probes[apps.PrimeProbe].Fulfillment
	if mode.Enabled() {
		run.Lost = run.Emitted - run.Distinct
		if !mode.Dedup() {
			run.DupDelivered = run.DupDetected
		}
	} else {
		// No offset tracking: the direct kill counter is the loss.
		run.Lost = out.KilledItems
	}
	return run, killTime, nil
}

// guaranteesChecks asserts the guarantee ladder.
func guaranteesChecks(res *GuaranteesResult) CheckList {
	var checks CheckList
	var base *GuaranteeRun
	alOK, eoOK, committedOK, recoveredOK := true, true, true, true
	var alLost, eoDelivered int64
	var worstRecovery float64
	worstIntervals := 0
	for i := range res.Runs {
		r := &res.Runs[i]
		if !r.Mode.Enabled() {
			base = r
			continue
		}
		if r.Lost != 0 || r.Holes != 0 {
			alOK = false
			alLost += r.Lost + r.Holes
		}
		if r.Mode.Dedup() {
			if r.Delivered != r.Distinct {
				eoOK = false
			}
			eoDelivered += r.Delivered - r.Distinct
		}
		if r.CheckpointsCommitted == 0 || r.Replayed == 0 {
			committedOK = false
		}
		if r.RecoveryIntervals < 0 || r.RecoveryIntervals > res.Options.RecoveryBudget {
			recoveredOK = false
		}
		if r.RecoveryIntervals > worstIntervals {
			worstIntervals = r.RecoveryIntervals
		}
		if r.RecoveryWindow > worstRecovery {
			worstRecovery = r.RecoveryWindow
		}
	}
	checks.Add("at-most-once loses the killed records",
		"baseline run loses records with no replay",
		fmt.Sprintf("%d lost, %d replayed", base.Lost, base.Replayed),
		base.Lost > 0 && base.Replayed == 0)
	checks.Add("at-least-once and above lose nothing",
		"zero lost records and zero committed holes in every guaranteed run",
		fmt.Sprintf("%d lost across %d runs", alLost, len(res.Runs)-1),
		alOK)
	checks.Add("exactly-once delivers no duplicates",
		"sink behaviors see each record once in every exactly-once run",
		fmt.Sprintf("%d duplicate deliveries", eoDelivered),
		eoOK)
	checks.Add("checkpoints commit and replay fires",
		"every guaranteed run commits checkpoints and replays after the kill",
		fmt.Sprintf("committed and replayed in all runs: %v", committedOK),
		committedOK)
	checks.Add("constraint recovers within bounded intervals",
		fmt.Sprintf("a fulfilled adjustment interval within %d intervals of the kill, every run", res.Options.RecoveryBudget),
		fmt.Sprintf("worst %d intervals (%.0fs violation window)", worstIntervals, worstRecovery),
		recoveredOK)
	return checks
}
