package experiments

import (
	"fmt"

	"nephelix/internal/apps"
	"nephelix/internal/model"
	"nephelix/internal/obs"
	"nephelix/internal/sim"
)

// TailScalerOptions parameterizes the tail-aware scaling experiment:
// the TwitterSentiment job under the bursty tweet trace, scaled with
// mean constraints (the paper's semantics) versus percentile
// constraints (js, ℓ_p99, t), plus a steady no-burst run that validates
// the fitted tail model against the simulator's measured percentiles.
type TailScalerOptions struct {
	// Scale divides trace rates and parallelism (reported values scaled
	// back).
	Scale int
	// Duration truncates the 6000 s trace; the default 2600 s covers the
	// 900 s burst and the large 2300 s burst.
	Duration float64
	// Quantile is the tail constraint's quantile (default 0.99).
	Quantile float64
	Seed     int64
	// Recorder, when set, captures the tail-aware run's decision audit
	// trail.
	Recorder *obs.Recorder
	// Telemetry, when set, is used by the tail-aware bursty run (so a
	// live introspection server exposes its κ gauges and SLO state);
	// the other runs always get their own.
	Telemetry *obs.Telemetry
}

// TailScalerQuick returns the laptop-scale configuration.
func TailScalerQuick() TailScalerOptions {
	return TailScalerOptions{Scale: 4, Duration: 2600, Quantile: 0.99, Seed: 1}
}

// TailScalerVariant aggregates one run of the experiment.
type TailScalerVariant struct {
	// Name is "elastic-mean", "elastic-tail" or "elastic-tail-steady".
	Name string
	// Quantile is the quantile the scaler was constrained on (0 = the
	// paper's mean semantics; the probes still measure tail fulfillment).
	Quantile  float64
	TaskHours float64
	ScaleUps  int
	ScaleDown int
	Probes    map[string]sim.ProbeSummary
	// Drift holds the run's final residual drift flags.
	Drift []obs.DriftFlag
	// TailRelErr is the mean |measured−predicted|/measured of the tail
	// wait predictions scored by the residual monitor, averaged over the
	// cells with scored samples (TailRelErrSamples in total).
	TailRelErr        float64
	TailRelErrSamples int64
	Rows              []sim.Row
	// Telemetry is the run's telemetry layer, for time-series export.
	Telemetry *obs.Telemetry
}

// TailScalerResult holds the three runs and the trade-off checks.
type TailScalerResult struct {
	Options TailScalerOptions

	// Mean scales on the paper's mean constraints; Tail on percentile
	// constraints; Steady is the tail scaler on the burst-free trace.
	Mean   TailScalerVariant
	Tail   TailScalerVariant
	Steady TailScalerVariant

	// GapProbe is the probe with the largest tail-fulfillment gain and
	// Gap its (tail − mean) p99-fulfillment gap in [−1, 1].
	GapProbe string
	Gap      float64
	// TaskHourRatio is Tail.TaskHours / Mean.TaskHours — the resource
	// price of the tail guarantee.
	TaskHourRatio float64

	Checks CheckList
}

// tailScalerProbes are the measured constraint paths.
var tailScalerProbes = []string{apps.HotTopicsProbe, apps.SentimentProbe}

// RunTailScaler executes the tail-aware scaling experiment: three
// independent simulations fanned across the worker pool.
func RunTailScaler(opts TailScalerOptions) (*TailScalerResult, error) {
	if opts.Scale <= 0 {
		opts.Scale = 4
	}
	if opts.Duration <= 0 {
		opts.Duration = 2600
	}
	if opts.Quantile <= 0 || opts.Quantile >= 1 {
		opts.Quantile = 0.99
	}
	res := &TailScalerResult{Options: opts}

	type runSpec struct {
		name      string
		quantile  float64 // scaler-visible constraint quantile
		steady    bool
		recorder  *obs.Recorder
		telemetry *obs.Telemetry
		out       *TailScalerVariant
	}
	specs := []runSpec{
		{name: "elastic-mean", quantile: 0, out: &res.Mean},
		{name: "elastic-tail", quantile: opts.Quantile, recorder: opts.Recorder, telemetry: opts.Telemetry, out: &res.Tail},
		{name: "elastic-tail-steady", quantile: opts.Quantile, steady: true, out: &res.Steady},
	}
	err := forEachRun(len(specs), func(i int) error {
		spec := specs[i]
		appOpts := apps.DefaultTwitterSentimentOptions()
		appOpts.Seed = opts.Seed
		appOpts.ConstraintQuantile = spec.quantile
		if spec.steady {
			tr := *appOpts.Schedule
			tr.Bursts = nil
			appOpts.Schedule = &tr
		}
		scaleTwitterOptions(&appOpts, opts.Scale)
		cfg, probes, err := apps.BuildTwitterSentiment(appOpts)
		if err != nil {
			return fmt.Errorf("experiments: tailscaler %s: %w", spec.name, err)
		}
		cfg.Duration = opts.Duration
		telemetry := spec.telemetry
		if telemetry == nil {
			telemetry = obs.NewTelemetry(0)
		}
		cfg.Telemetry = telemetry
		cfg.Recorder = spec.recorder
		if spec.quantile == 0 {
			// The mean run's scaler stays tail-blind, but the probes
			// still measure per-interval p99 fulfillment so the two
			// variants are compared on the same yardstick.
			for _, name := range tailScalerProbes {
				probes.SetQuantile(name, opts.Quantile)
			}
		}
		s, err := sim.New(cfg, probes)
		if err != nil {
			return fmt.Errorf("experiments: tailscaler %s: %w", spec.name, err)
		}
		out, err := s.Run()
		if err != nil {
			return fmt.Errorf("experiments: tailscaler %s: %w", spec.name, err)
		}
		v := spec.out
		v.Name = spec.name
		v.Quantile = spec.quantile
		v.TaskHours = out.TaskHours
		v.ScaleUps = out.ScaleUps
		v.ScaleDown = out.ScaleDowns
		v.Probes = make(map[string]sim.ProbeSummary, len(tailScalerProbes))
		for _, name := range tailScalerProbes {
			v.Probes[name] = out.Probes[name]
		}
		v.Drift = telemetry.Residuals().DriftFlags()
		var relErrSum float64
		for _, st := range telemetry.Residuals().Snapshot() {
			if spec.quantile > 0 && st.RelErrSamples > 0 {
				relErrSum += st.MeanAbsRelErr * float64(st.RelErrSamples)
				v.TailRelErrSamples += st.RelErrSamples
			}
		}
		if v.TailRelErrSamples > 0 {
			v.TailRelErr = relErrSum / float64(v.TailRelErrSamples)
		}
		v.Rows = out.Rows
		v.Telemetry = telemetry
		return nil
	})
	if err != nil {
		return nil, err
	}

	res.GapProbe, res.Gap = tailScalerGap(&res.Mean, &res.Tail)
	if res.Mean.TaskHours > 0 {
		res.TaskHourRatio = res.Tail.TaskHours / res.Mean.TaskHours
	}
	res.Checks = tailScalerChecks(res)
	return res, nil
}

// tailScalerGap finds the probe where percentile constraints gained the
// most p99 fulfillment over mean constraints.
func tailScalerGap(mean, tail *TailScalerVariant) (string, float64) {
	probe, gap := "", -1.0
	for _, name := range tailScalerProbes {
		g := tail.Probes[name].TailFulfillment - mean.Probes[name].TailFulfillment
		if g > gap {
			probe, gap = name, g
		}
	}
	return probe, gap
}

// tailScalerChecks asserts the trade-off the experiment exists to show:
// the mean scaler satisfies its mean constraint while the tail silently
// violates; the tail scaler buys the violated percentile back for a
// bounded task-hour premium; and on the steady trace the fitted tail
// model's predictions track the measured percentiles without drift.
func tailScalerChecks(res *TailScalerResult) CheckList {
	var checks CheckList
	q := model.QuantileLabel(res.Options.Quantile)
	mp := res.Mean.Probes[res.GapProbe]
	tp := res.Tail.Probes[res.GapProbe]
	checks.Add("mean scaler blind to the tail",
		fmt.Sprintf("elastic-mean meets its mean constraint on %s yet leaves a %s violation", res.GapProbe, q),
		fmt.Sprintf("mean fulfillment %.0f%%, %s fulfillment %.0f%%", mp.Fulfillment*100, q, mp.TailFulfillment*100),
		mp.Fulfillment >= 0.70 && mp.TailFulfillment <= 0.90 &&
			mp.Fulfillment-mp.TailFulfillment >= 0.05)
	checks.Add("tail scaler resolves the violation",
		fmt.Sprintf("elastic-tail lifts %s fulfillment on %s by ≥5 points", q, res.GapProbe),
		fmt.Sprintf("%.0f%% → %.0f%% (gap %+.0f points)", mp.TailFulfillment*100, tp.TailFulfillment*100, res.Gap*100),
		res.Gap >= 0.05)
	checks.Add("tail scaler acted",
		"the percentile constraint triggered scale-ups",
		fmt.Sprintf("%d scale-ups, %d scale-downs", res.Tail.ScaleUps, res.Tail.ScaleDown),
		res.Tail.ScaleUps > 0)
	checks.Add("bounded task-hour premium",
		"the tail guarantee costs at most 5× the mean scaler's task-hours",
		fmt.Sprintf("%.1f vs %.1f task-hours (%.2f×)", res.Tail.TaskHours, res.Mean.TaskHours, res.TaskHourRatio),
		res.Mean.TaskHours > 0 && res.TaskHourRatio <= 5.0)
	checks.Add("tail predictions validated",
		fmt.Sprintf("predicted %s waits scored against measured window percentiles on the steady trace", q),
		fmt.Sprintf("mean |rel err| %.2f over %d scored pairs", res.Steady.TailRelErr, res.Steady.TailRelErrSamples),
		res.Steady.TailRelErrSamples >= 8 && res.Steady.TailRelErr <= 1.0)
	checks.Add("residuals quiet on steady trace",
		"no drift flags when the trace has no bursts",
		fmt.Sprintf("%d drift flags", len(res.Steady.Drift)),
		len(res.Steady.Drift) == 0)
	return checks
}

// WriteTailScalerCSV renders the trade-off: one row per variant and
// probe with fulfillment under both semantics and the resource bill.
func (r *TailScalerResult) WriteTailScalerCSV(w interface{ Write([]byte) (int, error) }) error {
	scale := float64(r.Options.Scale)
	if _, err := fmt.Fprintln(w, "variant,probe,constraint_quantile,task_hours,scale_ups,scale_downs,mean_fulfillment,tail_fulfillment,mean_ms,p95_ms,p99_ms"); err != nil {
		return err
	}
	for _, v := range []*TailScalerVariant{&r.Mean, &r.Tail, &r.Steady} {
		for _, name := range tailScalerProbes {
			p := v.Probes[name]
			if _, err := fmt.Fprintf(w, "%s,%s,%g,%g,%d,%d,%g,%g,%g,%g,%g\n",
				v.Name, name, v.Quantile, v.TaskHours*scale, v.ScaleUps, v.ScaleDown,
				p.Fulfillment, p.TailFulfillment,
				p.Mean*1000, p.P95*1000, p.P99*1000); err != nil {
				return err
			}
		}
	}
	return nil
}
