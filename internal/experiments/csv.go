package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"nephelix/internal/sim"
)

// WriteRowsCSV renders a simulation time series as CSV: one line per
// record interval with probe latencies (mean and p95, seconds),
// per-source attempted/effective rates (items/s, scaled by rateScale to
// undo topology scaling), per-vertex parallelism and resource columns.
func WriteRowsCSV(w io.Writer, rows []sim.Row, rateScale float64) error {
	if len(rows) == 0 {
		return nil
	}
	if rateScale <= 0 {
		rateScale = 1
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()

	probeNames := sortedKeys(rows[0].Probes)
	sourceNames := sortedKeys(rows[0].Attempted)
	vertexNames := sortedKeys(rows[0].Parallelism)

	header := []string{"time_s"}
	for _, p := range probeNames {
		header = append(header, p+"_mean_s", p+"_p95_s", p+"_count")
	}
	for _, s := range sourceNames {
		header = append(header, s+"_attempted_per_s", s+"_effective_per_s")
	}
	for _, v := range vertexNames {
		header = append(header, v+"_parallelism")
	}
	header = append(header, "total_tasks", "leased_nodes", "cpu_utilization")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: writing csv header: %w", err)
	}

	for _, r := range rows {
		rec := []string{fmtF(r.Time)}
		for _, p := range probeNames {
			s := r.Probes[p]
			rec = append(rec, fmtF(s.Mean), fmtF(s.P95), strconv.FormatInt(s.Count, 10))
		}
		for _, s := range sourceNames {
			rec = append(rec, fmtF(r.Attempted[s]*rateScale), fmtF(r.Effective[s]*rateScale))
		}
		for _, v := range vertexNames {
			rec = append(rec, strconv.Itoa(r.Parallelism[v]))
		}
		rec = append(rec, strconv.Itoa(r.TotalTasks), strconv.Itoa(r.LeasedNodes), fmtF(r.CPUUtilization))
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("experiments: writing csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// fmtF renders a float compactly.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 7, 64) }

// sortedKeys returns a map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
