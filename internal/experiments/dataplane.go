package experiments

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"nephelix/internal/engine"
	"nephelix/internal/model"
	"nephelix/internal/obs"
	"nephelix/internal/workload"
)

// The dataplane experiment validates the data-plane X-ray end to end: it
// runs the live engine on a deliberately consumer-bottlenecked pipeline
// and asserts that the backpressure monitor attributes the bottleneck to
// the right edge and vertex. A bursting source feeds a worker whose UDF
// burns a fixed CPU budget per record, far above what its pinned
// parallelism sustains; with small rings the src→work edge must fill,
// stall the producer, and classify as consumer-limited with culprit
// "work" — while the drained work→sink edge must not.

// DataplaneOptions parameterizes the bottleneck run.
type DataplaneOptions struct {
	// Duration is the source schedule length in seconds.
	Duration float64
	// ServiceTime is the per-record CPU burn at the worker.
	ServiceTime time.Duration
	// Telemetry and Recorder capture the run; fresh instances are built
	// when nil so assertions see only this run's events.
	Telemetry *obs.Telemetry
	Recorder  *obs.Recorder
}

// DataplaneQuick is the CI-scale configuration (~1.5 s wall clock).
func DataplaneQuick() DataplaneOptions {
	return DataplaneOptions{Duration: 1.5, ServiceTime: 200 * time.Microsecond}
}

// DataplaneResult is the run's outcome.
type DataplaneResult struct {
	Checks CheckList
	// Statuses is the per-edge backpressure classification state after
	// the run (interval counts, onsets, final state).
	Statuses []obs.BackpressureStatus
	// Snapshot is the last data-plane sample.
	Snapshot *obs.DataplaneSnapshot
	Telemetry *obs.Telemetry
	Recorder  *obs.Recorder
}

// RunDataplane executes the bottleneck topology and checks attribution.
func RunDataplane(opts DataplaneOptions) (*DataplaneResult, error) {
	if opts.Telemetry == nil {
		opts.Telemetry = obs.NewTelemetry(0)
	}
	if opts.Recorder == nil {
		opts.Recorder = obs.NewRecorder(0)
	}
	g := model.NewJobGraph()
	for _, v := range []model.JobVertex{
		{Name: "src", Parallelism: 1, MinParallelism: 1, MaxParallelism: 1},
		{Name: "work", Parallelism: 2, MinParallelism: 2, MaxParallelism: 2},
		{Name: "sink", Parallelism: 1, MinParallelism: 1, MaxParallelism: 1},
	} {
		if err := g.AddVertex(v); err != nil {
			return nil, err
		}
	}
	if err := g.AddEdge("src", "work", model.PatternRoundRobin); err != nil {
		return nil, err
	}
	if err := g.AddEdge("work", "sink", model.PatternRoundRobin); err != nil {
		return nil, err
	}
	var emitted, received atomic.Int64
	burn := opts.ServiceTime
	spec := engine.NewJobSpec(g).
		SetSource("src", engine.SourceSpec{
			// 2000 scheduled emissions/s × 64-record bursts attempts 128k
			// records/s; two workers burning 200 µs/record sustain 10k/s,
			// so the src→work rings saturate almost immediately.
			Schedule: &workload.ConstantSchedule{RatePerSecond: 2000, Length: opts.Duration},
			Emit: func(ctx *engine.Context) {
				n := emitted.Add(64)
				for i := 0; i < 64; i++ {
					ctx.Emit(0, engine.Record{Key: uint64(n) + uint64(i)})
				}
			},
		}).
		SetUDF("work", func(int) engine.UDF {
			return engine.UDFFunc(func(ctx *engine.Context, rec engine.Record) {
				// Busy-wait rather than sleep: the bottleneck must show up
				// as consumer busy time, which is what the attribution
				// heuristic distinguishes consumer-limited by.
				for end := time.Now().Add(burn); time.Now().Before(end); {
				}
				ctx.Emit(0, rec)
			})
		}).
		SetUDF("sink", func(int) engine.UDF {
			return engine.UDFFunc(func(*engine.Context, engine.Record) {
				received.Add(1)
			})
		})
	exec, err := engine.New(engine.Config{
		Seed:                1,
		QueueCapacity:       8,
		MeasurementInterval: 100 * time.Millisecond,
		AdjustmentInterval:  250 * time.Millisecond,
		Telemetry:           opts.Telemetry,
		Recorder:            opts.Recorder,
	}).Submit(spec, nil)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := exec.Wait(ctx); err != nil {
		return nil, fmt.Errorf("experiments: dataplane run: %w", err)
	}

	res := &DataplaneResult{
		Statuses:  opts.Telemetry.Backpressure().Snapshot(),
		Snapshot:  opts.Telemetry.Dataplane(),
		Telemetry: opts.Telemetry,
		Recorder:  opts.Recorder,
	}
	checks := &res.Checks

	checks.Add("records delivered", ">0",
		fmt.Sprintf("%d", received.Load()), received.Load() > 0)

	var hot, cold *obs.BackpressureStatus
	for i := range res.Statuses {
		switch res.Statuses[i].Edge {
		case "src->work":
			hot = &res.Statuses[i]
		case "work->sink":
			cold = &res.Statuses[i]
		}
	}
	checks.Add("src->work classified", "monitored", fmt.Sprintf("%v", hot != nil), hot != nil)
	if hot != nil {
		limited := hot.Intervals[string(obs.BackpressureConsumerLimited)]
		saturated := hot.Intervals[string(obs.BackpressureRingSaturated)]
		checks.Add("src->work consumer-limited intervals", ">=1",
			fmt.Sprintf("%d (+%d ring-saturated)", limited, saturated), limited >= 1)
		checks.Add("src->work onsets", ">=1", fmt.Sprintf("%d", hot.Onsets), hot.Onsets >= 1)
	}
	if hot != nil && cold != nil {
		// The bottleneck must be attributed to the starved edge, not the
		// freely-draining one. Transient fills of the small downstream
		// rings are tolerated; dominance is what attribution means.
		hotBP := hot.Intervals[string(obs.BackpressureConsumerLimited)] +
			hot.Intervals[string(obs.BackpressureRingSaturated)]
		coldBP := cold.Intervals[string(obs.BackpressureConsumerLimited)] +
			cold.Intervals[string(obs.BackpressureRingSaturated)]
		checks.Add("bottleneck isolated to src->work", "hot > cold backpressured intervals",
			fmt.Sprintf("%d > %d", hotBP, coldBP), hotBP > coldBP)
		checks.Add("work->sink never consumer-limited", "0",
			fmt.Sprintf("%d", cold.Intervals[string(obs.BackpressureConsumerLimited)]),
			cold.Intervals[string(obs.BackpressureConsumerLimited)] == 0)
	}

	// The flight recorder must hold the onset with the culprit vertex.
	var onset *obs.Event
	for _, ev := range opts.Recorder.Events() {
		if ev.Kind == obs.KindBackpressureOnset && ev.Lifecycle != nil && ev.Lifecycle.Edge == "src->work" {
			ev := ev
			onset = &ev
			break
		}
	}
	checks.Add("backpressure_onset recorded", "edge src->work",
		fmt.Sprintf("%v", onset != nil), onset != nil)
	if onset != nil {
		checks.Add("onset culprit", "work", onset.Lifecycle.Vertex,
			onset.Lifecycle.Vertex == "work")
	}

	checks.Add("dataplane snapshot", "edges+wheel present",
		fmt.Sprintf("%v", res.Snapshot != nil && len(res.Snapshot.Edges) > 0 && res.Snapshot.Wheel != nil),
		res.Snapshot != nil && len(res.Snapshot.Edges) > 0 && res.Snapshot.Wheel != nil)

	return res, nil
}
