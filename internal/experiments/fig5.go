package experiments

import (
	"fmt"
	"math"

	"nephelix/internal/core"
)

// Fig5Options parameterizes the Figure 5 reproduction: the surface of
// Rebalance solution candidates for three job vertices — for each
// (p₁, p₂) the minimal p₃ with W(p₁, p₂, p₃) ≤ Ŵ.
type Fig5Options struct {
	// MaxP bounds the grid (paper plot spans roughly 1..60 per axis).
	MaxP int
	// WaitLimit is Ŵ in seconds.
	WaitLimit float64
}

// Fig5Quick returns the default surface configuration.
func Fig5Quick() Fig5Options {
	return Fig5Options{MaxP: 60, WaitLimit: 0.004}
}

// Fig5Point is one grid cell of the surface.
type Fig5Point struct {
	P1, P2 int
	// P3 is the minimal feasible parallelism of the third vertex, or -1
	// when no p₃ ≤ MaxP satisfies the limit.
	P3 int
	// Total is p₁+p₂+p₃ (the objective F), -1 when infeasible.
	Total int
}

// Fig5Result is the surface plus shape checks.
type Fig5Result struct {
	Options Fig5Options
	Models  []*core.VertexModel
	Points  []Fig5Point
	// OptimumTotal is the minimal total parallelism over the surface.
	OptimumTotal int
	// OptimaCount counts grid cells attaining the optimum (the paper
	// notes multiple optima may exist).
	OptimaCount int
	// RebalanceTotal is the total parallelism Algorithm 1 picks for the
	// same problem.
	RebalanceTotal int
	Checks         CheckList
}

// RunFig5 computes the solution-candidate surface analytically from
// three representative fitted vertex models.
func RunFig5(opts Fig5Options) (*Fig5Result, error) {
	if opts.MaxP <= 1 {
		opts.MaxP = 60
	}
	if opts.WaitLimit <= 0 {
		opts.WaitLimit = 0.004
	}
	// Three vertices with distinct load profiles, as in the paper's
	// exemplary plot: a heavy, a medium and a light vertex.
	models := []*core.VertexModel{
		{Name: "jv1", Current: 16, Min: 1, Max: opts.MaxP, A: 0.020, B: 6, E: 1},
		{Name: "jv2", Current: 16, Min: 1, Max: opts.MaxP, A: 0.012, B: 4, E: 1},
		{Name: "jv3", Current: 16, Min: 1, Max: opts.MaxP, A: 0.006, B: 2, E: 1},
	}
	res := &Fig5Result{Options: opts, Models: models, OptimumTotal: math.MaxInt}

	m3 := models[2]
	for p1 := 1; p1 <= opts.MaxP; p1++ {
		w1 := models[0].Wait(p1)
		for p2 := 1; p2 <= opts.MaxP; p2++ {
			w2 := models[1].Wait(p2)
			pt := Fig5Point{P1: p1, P2: p2, P3: -1, Total: -1}
			rem := opts.WaitLimit - w1 - w2
			if rem > 0 {
				p3 := m3.ParallelismForWait(rem)
				if p3 <= opts.MaxP && m3.Wait(p3) <= rem+1e-15 {
					pt.P3 = p3
					pt.Total = p1 + p2 + p3
					if pt.Total < res.OptimumTotal {
						res.OptimumTotal = pt.Total
						res.OptimaCount = 1
					} else if pt.Total == res.OptimumTotal {
						res.OptimaCount++
					}
				}
			}
			res.Points = append(res.Points, pt)
		}
	}
	if res.OptimumTotal == math.MaxInt {
		return nil, fmt.Errorf("experiments: fig5 surface entirely infeasible")
	}

	sm := &core.SequenceModel{Vertices: models}
	p, err := core.Rebalance(sm, opts.WaitLimit, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig5 rebalance: %w", err)
	}
	res.RebalanceTotal = p["jv1"] + p["jv2"] + p["jv3"]

	res.Checks = fig5Checks(res)
	return res, nil
}

// fig5Checks verifies the surface's qualitative properties.
func fig5Checks(res *Fig5Result) CheckList {
	var checks CheckList

	// Monotonicity: raising p1 (or p2) never raises the required p3.
	mono := true
	maxP := res.Options.MaxP
	at := func(p1, p2 int) Fig5Point { return res.Points[(p1-1)*maxP+(p2-1)] }
	for p1 := 1; p1 < maxP && mono; p1++ {
		for p2 := 1; p2 < maxP; p2++ {
			cur, right, down := at(p1, p2), at(p1, p2+1), at(p1+1, p2)
			if cur.P3 >= 0 && right.P3 >= 0 && right.P3 > cur.P3 {
				mono = false
				break
			}
			if cur.P3 >= 0 && down.P3 >= 0 && down.P3 > cur.P3 {
				mono = false
				break
			}
		}
	}
	checks.Add("surface monotone decreasing",
		"p3 minimal and decreasing in p1, p2", fmt.Sprintf("monotone=%v", mono), mono)

	// The paper notes multiple optima may exist; with integer grids this
	// is the common case.
	checks.Add("multiple optima possible",
		"multiple optima may exist",
		fmt.Sprintf("%d optima at total %d", res.OptimaCount, res.OptimumTotal),
		res.OptimaCount >= 1)

	// Rebalance lands on the surface optimum.
	checks.Add("rebalance attains surface optimum",
		"gradient descent finds a candidate-surface optimum",
		fmt.Sprintf("rebalance=%d optimum=%d", res.RebalanceTotal, res.OptimumTotal),
		res.RebalanceTotal == res.OptimumTotal)
	return checks
}
