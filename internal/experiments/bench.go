package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"time"

	"nephelix/internal/apps"
	"nephelix/internal/core"
	"nephelix/internal/model"
	"nephelix/internal/qos"
	"nephelix/internal/sim"
	"nephelix/internal/workload"
)

// The bench suite re-runs the repo's three headline micro-benchmarks
// (simulator event throughput, the Rebalance descent, summary merging)
// outside the testing framework, so CI can emit a machine-readable
// BENCH_sim.json artifact from a plain `experiments bench` invocation
// and throughput regressions show up in artifact diffs.

// BenchMeasurement is one benchmark's outcome.
type BenchMeasurement struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds benchmark-specific quantities (items-simulated,
	// items-per-second, descent iterations, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// BenchSuite is the whole suite outcome, written to BENCH_sim.json.
type BenchSuite struct {
	GoVersion string             `json:"go_version"`
	GOOS      string             `json:"goos"`
	GOARCH    string             `json:"goarch"`
	NumCPU    int                `json:"num_cpu"`
	StartedAt time.Time          `json:"started_at"`
	Results   []BenchMeasurement `json:"results"`
}

// String renders the suite in Go's benchmark output format, one line per
// measurement, so the artifact is also benchstat-friendly when printed.
func (s *BenchSuite) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "goos: %s\ngoarch: %s\ncpu-count: %d\n", s.GOOS, s.GOARCH, s.NumCPU)
	for _, m := range s.Results {
		fmt.Fprintf(&b, "Benchmark%s\t%8d\t%12.0f ns/op\t%10.0f B/op\t%8.1f allocs/op",
			m.Name, m.Iterations, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
		keys := make([]string, 0, len(m.Metrics))
		for k := range m.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "\t%12.1f %s", m.Metrics[k], k)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// measureBench runs fn iters times between two GC-settled memory
// snapshots and derives per-op time and allocation figures.
func measureBench(name string, iters int, fn func() (map[string]float64, error)) (BenchMeasurement, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var metrics map[string]float64
	for i := 0; i < iters; i++ {
		var err error
		metrics, err = fn()
		if err != nil {
			return BenchMeasurement{}, fmt.Errorf("experiments: bench %s: %w", name, err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(iters)
	return BenchMeasurement{
		Name:        name,
		Iterations:  iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / n,
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / n,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / n,
		Metrics:     metrics,
	}, nil
}

// benchSimulatorEvents mirrors BenchmarkSimulatorEvents: a saturated
// PrimeTester pipeline under static provisioning, reported as simulated
// items per wall-clock second.
func benchSimulatorEvents() (map[string]float64, error) {
	opts := apps.ScalePrimeTesterOptions(apps.PrimeTesterOptions{
		Sources: 32, Sinks: 32, PrimeTesters: 64,
		Schedule: &workload.StepSchedule{
			WarmUpRate: 10000, StepDelta: 10000, IncrementSteps: 1, StepDuration: 10,
		},
		Mode:        sim.BatchInstant,
		WorkerNodes: 130, SlotsPerNode: 5, Seed: 1,
	}, 16)
	cfg, probes, err := apps.BuildPrimeTester(opts)
	if err != nil {
		return nil, err
	}
	s, err := sim.New(cfg, probes)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := s.Run()
	if err != nil {
		return nil, err
	}
	wall := time.Since(start).Seconds()
	items := float64(res.Emitted[apps.PTSource])
	return map[string]float64{
		"items-simulated": items,
		"items/s":         items / wall,
	}, nil
}

// benchRebalance mirrors BenchmarkRebalance: the gradient descent on a
// 5-vertex problem.
func benchRebalance() (map[string]float64, error) {
	rng := rand.New(rand.NewSource(1))
	sm := &core.SequenceModel{}
	for i := 0; i < 5; i++ {
		sm.Vertices = append(sm.Vertices, &core.VertexModel{
			Name: string(rune('a' + i)), Current: 16, Min: 1, Max: 512,
			A: 0.01 + rng.Float64()*0.2, B: rng.Float64() * 100, E: 1,
		})
	}
	actions, err := core.Rebalance(sm, 0.004, nil)
	if err != nil {
		return nil, err
	}
	return map[string]float64{"actions": float64(len(actions))}, nil
}

// benchSummaryMerge mirrors BenchmarkSummaryMerge: merging 8 partial
// summaries of 64 tasks each.
func benchSummaryMerge() (map[string]float64, error) {
	partials := make([]*qos.PartialSummary, 8)
	for i := range partials {
		m := qos.NewManager(qos.DefaultManagerConfig())
		for t := 0; t < 64; t++ {
			m.ReportTask(qos.TaskReport{
				Task:         model.TaskID{Vertex: "work", Index: i*64 + t},
				ServiceCount: 100, ServiceMean: 0.003, ServiceCV: 0.5,
				InterarrivalCount: 100, InterarrivalMean: 0.006, InterarrivalCV: 1.0,
				TaskLatencyCount: 100, TaskLatencyMean: 0.003,
			})
		}
		partials[i] = m.PartialSummary()
	}
	par := map[string]int{"work": 512}
	s := qos.MergePartials(par, partials...)
	vs, _ := s.Vertex("work")
	return map[string]float64{"merged-tasks": float64(vs.Parallelism)}, nil
}

// newBenchSuite stamps an empty suite with the run environment.
func newBenchSuite() *BenchSuite {
	return &BenchSuite{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		StartedAt: time.Now().UTC(),
	}
}

// RunBenchSuite executes the bench suite sequentially (parallel runs
// would contend for CPU and distort the timings).
func RunBenchSuite() (*BenchSuite, error) {
	suite := newBenchSuite()
	cases := []struct {
		name  string
		iters int
		fn    func() (map[string]float64, error)
	}{
		{"SimulatorEvents", 3, benchSimulatorEvents},
		{"Rebalance", 1000, benchRebalance},
		{"SummaryMerge", 200, benchSummaryMerge},
	}
	for _, c := range cases {
		m, err := measureBench(c.name, c.iters, c.fn)
		if err != nil {
			return nil, err
		}
		suite.Results = append(suite.Results, m)
	}
	return suite, nil
}
