package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"nephelix/internal/ckpt"
)

// These tests run every experiment at its quick (laptop) scale and assert
// that all shape checks against the paper hold. They are the
// reproduction's integration tests: QoS plane, latency model, scaler,
// batching controller and simulator all have to cooperate for a check to
// pass.

func requireAllPass(t *testing.T, checks CheckList) {
	t.Helper()
	for _, c := range checks {
		if c.Pass {
			t.Logf("%s", c)
		} else {
			t.Errorf("%s", c)
		}
	}
}

func TestFig3Reproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment; skipped in -short mode")
	}
	res, err := RunFig3(Fig3Quick())
	if err != nil {
		t.Fatal(err)
	}
	requireAllPass(t, res.Checks)

	// Every configuration must have produced a usable series.
	for name, c := range res.Configs {
		if len(c.Rows) < 10 {
			t.Errorf("%s: only %d rows", name, len(c.Rows))
		}
		if c.EffectivePeak <= 0 {
			t.Errorf("%s: no effective peak measured", name)
		}
	}
}

func TestFig5Reproduction(t *testing.T) {
	res, err := RunFig5(Fig5Quick())
	if err != nil {
		t.Fatal(err)
	}
	requireAllPass(t, res.Checks)
	if len(res.Points) != res.Options.MaxP*res.Options.MaxP {
		t.Errorf("surface has %d points, want %d", len(res.Points), res.Options.MaxP*res.Options.MaxP)
	}
}

func TestFig6Reproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment; skipped in -short mode")
	}
	res, err := RunFig6(Fig6Quick())
	if err != nil {
		t.Fatal(err)
	}
	requireAllPass(t, res.Checks)
}

func TestTaskHoursReproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment; skipped in -short mode")
	}
	opts := TaskHoursQuick()
	opts.Seeds = []int64{1, 2} // trimmed for test runtime
	res, err := RunTaskHours(opts)
	if err != nil {
		t.Fatal(err)
	}
	requireAllPass(t, res.Checks)
	if len(res.TaskHours) != len(opts.Bounds) {
		t.Errorf("task hours: %d entries for %d bounds", len(res.TaskHours), len(opts.Bounds))
	}
	// Every run must still meet its constraint most of the time.
	for i, f := range res.Fulfillment {
		if f < 0.75 {
			t.Errorf("bound %v: fulfillment %.2f too low", opts.Bounds[i], f)
		}
	}
}

func TestFaultsReproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment; skipped in -short mode")
	}
	res, err := RunFaults(FaultsQuick())
	if err != nil {
		t.Fatal(err)
	}
	requireAllPass(t, res.Checks)
	if res.KilledTasks < 1 {
		t.Errorf("KilledTasks = %d, want >= 1", res.KilledTasks)
	}
	if res.PreKillParallelism <= 0 {
		t.Errorf("PreKillParallelism = %d, want > 0", res.PreKillParallelism)
	}
}

func TestFig8Reproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment; skipped in -short mode")
	}
	res, err := RunFig8(Fig8Quick())
	if err != nil {
		t.Fatal(err)
	}
	requireAllPass(t, res.Checks)
}

func TestWriteRowsCSV(t *testing.T) {
	res, err := RunFig6(Fig6Options{Scale: 16, StepDuration: 10, IncrementSteps: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRowsCSV(&buf, res.ElasticRows, 16); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(res.ElasticRows)+1 {
		t.Fatalf("csv lines: got %d, want %d rows + header", len(lines), len(res.ElasticRows))
	}
	header := lines[0]
	for _, col := range []string{"time_s", "source-to-sink_mean_s", "Source_attempted_per_s", "PrimeTester_parallelism", "cpu_utilization"} {
		if !strings.Contains(header, col) {
			t.Errorf("csv header missing %q: %s", col, header)
		}
	}
	// Empty input is a no-op.
	var empty bytes.Buffer
	if err := WriteRowsCSV(&empty, nil, 1); err != nil || empty.Len() != 0 {
		t.Errorf("empty rows: err=%v len=%d", err, empty.Len())
	}
}

func TestCheckList(t *testing.T) {
	var l CheckList
	l.Add("a", "p", "m", true)
	l.Add("b", "p", "m", false)
	if l.AllPass() {
		t.Error("AllPass with a failing check")
	}
	if len(l.Failed()) != 1 || l.Failed()[0].Name != "b" {
		t.Errorf("Failed: %v", l.Failed())
	}
	s := l.String()
	if !strings.Contains(s, "[PASS] a") || !strings.Contains(s, "[FAIL] b") {
		t.Errorf("render: %s", s)
	}
}

func TestFig3OptionDefaults(t *testing.T) {
	// Zero options fall back to quick-scale defaults rather than failing.
	res, err := RunFig3(Fig3Options{Scale: 50, StepDuration: 5, IncrementSteps: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Configs) != 4 {
		t.Errorf("configs: %d, want 4", len(res.Configs))
	}
}

func TestFig5Infeasible(t *testing.T) {
	if _, err := RunFig5(Fig5Options{MaxP: 5, WaitLimit: 1e-9}); err == nil {
		t.Error("fully infeasible surface must error")
	}
}

func TestTaskHoursDefaultBounds(t *testing.T) {
	// Empty bounds fall back to the quick preset; just validate the
	// plumbing with a tiny single-seed sweep.
	opts := TaskHoursOptions{
		Fig6Options: Fig6Options{Scale: 16, StepDuration: 10, IncrementSteps: 2, Seed: 1},
		Bounds:      []time.Duration{20 * time.Millisecond, 100 * time.Millisecond},
		Seeds:       []int64{1},
	}
	res, err := RunTaskHours(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TaskHours) != 2 {
		t.Fatalf("task hours: %v", res.TaskHours)
	}
}

func TestPredictionQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment; skipped in -short mode")
	}
	res, err := RunPredictionQuality(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	requireAllPass(t, res.Checks)
	if len(res.Samples) < 3 {
		t.Errorf("too few scored predictions: %d", len(res.Samples))
	}
	for _, s := range res.Samples {
		if s.Predicted < 0 || s.Measured < 0 {
			t.Errorf("negative sample: %+v", s)
		}
	}
}

func TestFaultsGuaranteesSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment; skipped in -short mode")
	}
	opts := GuaranteesQuick()
	opts.Intervals = []float64{1} // one interval keeps the test fast
	res, err := RunFaultsGuarantees(opts)
	if err != nil {
		t.Fatal(err)
	}
	requireAllPass(t, res.Checks)
	if len(res.Runs) != 3 {
		t.Fatalf("got %d runs, want 3 (one per mode)", len(res.Runs))
	}
	for _, r := range res.Runs[1:] {
		if r.Lost != 0 || r.Holes != 0 {
			t.Errorf("%s: lost %d, holes %d, want 0/0", r.Mode, r.Lost, r.Holes)
		}
	}
}

func TestFaultsWithGuarantee(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment; skipped in -short mode")
	}
	opts := FaultsQuick()
	opts.Guarantee = ckpt.ExactlyOnce
	res, err := RunFaults(opts)
	if err != nil {
		t.Fatal(err)
	}
	requireAllPass(t, res.Checks)
	if res.SinkHoles != 0 {
		t.Errorf("SinkHoles = %d, want 0", res.SinkHoles)
	}
	if res.ReplayedItems == 0 {
		t.Error("no items replayed despite supervised respawn")
	}
}
