package experiments

import (
	"fmt"
	"time"

	"nephelix/internal/apps"
	"nephelix/internal/sim"
	"nephelix/internal/workload"
)

// Fig6Options parameterizes the Figure 6 reproduction: the PrimeTester
// job with reactive scaling (32 sources, testers elastic in [1, 520],
// 20 ms constraint) against the manually provisioned unelastic
// Nephele-16KiB baseline (175 tester tasks).
type Fig6Options struct {
	// Scale divides task counts and rates (reported values scaled back).
	Scale int
	// StepDuration is the phase-step length in seconds (paper: 60).
	StepDuration float64
	// IncrementSteps: peak rate = (IncrementSteps+1) × 10⁴ items/s; 4
	// keeps the peak at 5 × 10⁴, which the 175-task baseline can absorb
	// without overload (the paper tuned the baseline to exactly that
	// boundary).
	IncrementSteps int
	Seed           int64
}

// Fig6Quick returns the laptop-scale configuration (1/8 topology).
func Fig6Quick() Fig6Options {
	return Fig6Options{Scale: 8, StepDuration: 20, IncrementSteps: 4, Seed: 1}
}

// Fig6Paper returns the paper-scale configuration.
func Fig6Paper() Fig6Options {
	return Fig6Options{Scale: 1, StepDuration: 60, IncrementSteps: 4, Seed: 1}
}

// Fig6Result aggregates the elastic run, the baseline run and the shape
// checks.
type Fig6Result struct {
	Options Fig6Options

	ElasticRows  []sim.Row
	BaselineRows []sim.Row

	// Fulfillment is the fraction of adjustment intervals in which the
	// elastic run met the 20 ms constraint (paper: ≈91%).
	Fulfillment float64
	// WarmUpMinParallelism is the lowest tester parallelism at the
	// warm-up rate (warm-up step and decrement tail), scaled back to
	// paper scale (paper: dips to ≈36; our service-time CV sits a bit
	// above theirs, so the model holds utilization lower).
	WarmUpMinParallelism int
	// PeakParallelism is the highest tester parallelism (paper scale).
	PeakParallelism int
	// ElasticP95 is the elastic run's overall 95th percentile latency
	// (paper: ≈30 ms in steady state).
	ElasticP95 float64
	// BaselineMean and BaselineP95 are the baseline's whole-run latency
	// floors (paper: ≥348 ms and ≥564 ms).
	BaselineMean float64
	BaselineP95  float64
	// ElasticTaskHours and BaselineTaskHours are at paper scale
	// (task-hours × Scale).
	ElasticTaskHours  float64
	BaselineTaskHours float64
	// ScaleUps/ScaleDowns count elastic actions; the paper notes
	// overscaling followed by corrective scale-downs.
	ScaleUps   int
	ScaleDowns int

	Checks CheckList
}

// fig6Schedule is the Figure 6 load profile at paper scale.
func fig6Schedule(opts Fig6Options) *workload.StepSchedule {
	return &workload.StepSchedule{
		WarmUpRate:     10000,
		StepDelta:      10000,
		IncrementSteps: opts.IncrementSteps,
		StepDuration:   opts.StepDuration,
	}
}

// RunFig6 executes the Figure 6 experiment.
func RunFig6(opts Fig6Options) (*Fig6Result, error) {
	if opts.Scale <= 0 {
		opts.Scale = 8
	}
	if opts.StepDuration <= 0 {
		opts.StepDuration = 20
	}
	if opts.IncrementSteps <= 0 {
		opts.IncrementSteps = 4
	}
	res := &Fig6Result{Options: opts}
	scale := float64(opts.Scale)

	// The elastic run and the unelastic baseline are independent
	// simulations with their own seeded RNGs; fan them across the worker
	// pool.
	runOpts := []apps.PrimeTesterOptions{
		// Elastic Nephele-20ms: testers in [1, 520].
		{
			Sources:         32,
			Sinks:           32,
			PrimeTesters:    128, // deliberately high start; the warm-up dip is the scaler's doing
			MinPT:           1,
			MaxPT:           520,
			Schedule:        fig6Schedule(opts),
			Mode:            sim.BatchAdaptive,
			ConstraintBound: 20 * time.Millisecond,
			Elastic:         true,
			WorkerNodes:     130,
			SlotsPerNode:    5, // 32+32 fixed tasks plus up to 520 testers
			Seed:            opts.Seed,
		},
		// Unelastic Nephele-16KiB baseline: 175 testers, tuned to the peak.
		{
			Sources:      32,
			Sinks:        32,
			PrimeTesters: 175,
			Schedule:     fig6Schedule(opts),
			Mode:         sim.BatchFixedBuffer,
			WorkerNodes:  130,
			SlotsPerNode: 5,
			Seed:         opts.Seed + 7,
		},
	}
	names := []string{"elastic", "baseline"}
	outs := make([]*sim.Result, len(runOpts))
	err := forEachRun(len(runOpts), func(i int) error {
		cfg, probes, err := apps.BuildPrimeTester(apps.ScalePrimeTesterOptions(runOpts[i], opts.Scale))
		if err != nil {
			return fmt.Errorf("experiments: fig6 %s: %w", names[i], err)
		}
		s, err := sim.New(cfg, probes)
		if err != nil {
			return fmt.Errorf("experiments: fig6 %s: %w", names[i], err)
		}
		out, err := s.Run()
		if err != nil {
			return fmt.Errorf("experiments: fig6 %s: %w", names[i], err)
		}
		outs[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	outE, outB := outs[0], outs[1]

	res.ElasticRows = outE.Rows
	res.BaselineRows = outB.Rows
	pe := outE.Probes[apps.PrimeProbe]
	pb := outB.Probes[apps.PrimeProbe]
	res.Fulfillment = pe.Fulfillment
	res.ElasticP95 = pe.P95
	res.BaselineMean = pb.Mean
	res.BaselineP95 = pb.P95
	res.ElasticTaskHours = outE.TaskHours * scale
	res.BaselineTaskHours = outB.TaskHours * scale
	res.ScaleUps = outE.ScaleUps
	res.ScaleDowns = outE.ScaleDowns
	res.PeakParallelism = outE.PeakParallelism[apps.PTWorker] * opts.Scale

	res.WarmUpMinParallelism = lowLoadMinParallelism(outE.Rows, opts.StepDuration) * opts.Scale

	res.Checks = fig6Checks(res)
	return res, nil
}

// lowLoadMinParallelism returns the lowest tester parallelism observed
// while the job runs at the warm-up rate: during the warm-up step and the
// decrement tail (at compressed step durations the warm-up alone is too
// short for scale-down drains to complete).
func lowLoadMinParallelism(rows []sim.Row, stepDur float64) int {
	minP := -1
	consider := func(r sim.Row) {
		if p := r.Parallelism[apps.PTWorker]; minP < 0 || p < minP {
			minP = p
		}
	}
	for _, r := range rows {
		if r.Time <= stepDur {
			consider(r)
		}
	}
	for i := len(rows) - 2; i < len(rows); i++ {
		if i >= 0 {
			consider(rows[i])
		}
	}
	if minP < 0 {
		return 0
	}
	return minP
}

// fig6Checks compares against the paper's reported shape.
func fig6Checks(res *Fig6Result) CheckList {
	var checks CheckList
	checks.Add("constraint fulfillment",
		"≈91% of adjustment intervals",
		fmt.Sprintf("%.0f%%", res.Fulfillment*100),
		res.Fulfillment >= 0.80 && res.Fulfillment <= 0.99)
	checks.Add("warm-up scale-down",
		"parallelism drops to ≈36 at the warm-up rate (far below the 175-task static provisioning)",
		fmt.Sprintf("%d tasks", res.WarmUpMinParallelism),
		res.WarmUpMinParallelism > 0 && res.WarmUpMinParallelism < 128 && res.WarmUpMinParallelism <= 100)
	checks.Add("elastic p95 near constraint",
		"≈30 ms once scale-ups settle",
		fmt.Sprintf("%.1f ms", res.ElasticP95*1000),
		res.ElasticP95 > 0.010 && res.ElasticP95 < 0.25)
	checks.Add("baseline latency floor",
		"mean ≥348 ms, p95 ≥564 ms",
		fmt.Sprintf("mean=%.0f ms p95=%.0f ms", res.BaselineMean*1000, res.BaselineP95*1000),
		res.BaselineMean >= 0.15 && res.BaselineP95 > res.BaselineMean)
	checks.Add("baseline far above elastic latency",
		"unelastic 16KiB ≫ elastic 20 ms",
		fmt.Sprintf("baseline mean %.0f ms vs elastic p95 %.0f ms", res.BaselineMean*1000, res.ElasticP95*1000),
		res.BaselineMean > 4*res.ElasticP95)
	// The paper reports near-equality. Our substrate's gate-level batch
	// shipping makes consumer arrivals burstier than the paper's
	// channel-level shipping, so the fitted model holds utilization lower
	// and the elastic run costs somewhat more; the shape statement that
	// survives the substitution is same-order cost at far lower latency
	// (see EXPERIMENTS.md).
	checks.Add("task-hour parity",
		"elastic ≈ manually tuned baseline (same order)",
		fmt.Sprintf("elastic=%.1f baseline=%.1f", res.ElasticTaskHours, res.BaselineTaskHours),
		ratioWithin(res.ElasticTaskHours, res.BaselineTaskHours, 0.55, 1.85))
	checks.Add("corrective scale-downs present",
		"overscaling corrected by subsequent scale-downs",
		fmt.Sprintf("ups=%d downs=%d", res.ScaleUps, res.ScaleDowns),
		res.ScaleUps >= 2 && res.ScaleDowns >= 2)
	return checks
}

// TaskHoursOptions parameterizes the Section V-A constraint sweep.
type TaskHoursOptions struct {
	Fig6Options
	// Bounds are the constraint values to sweep (paper: 20, 30, 40, 50,
	// 100 ms → 46.4/44.3/41.8/37.6 task-hours for the last four).
	Bounds []time.Duration
	// Seeds are averaged per bound to damp the noise of individual
	// scale-up spikes (the paper averages full-length 60 s-step runs).
	Seeds []int64
}

// TaskHoursQuick returns the laptop-scale sweep.
func TaskHoursQuick() TaskHoursOptions {
	return TaskHoursOptions{
		Fig6Options: Fig6Quick(),
		Bounds: []time.Duration{
			20 * time.Millisecond,
			30 * time.Millisecond,
			40 * time.Millisecond,
			50 * time.Millisecond,
			100 * time.Millisecond,
		},
		Seeds: []int64{1, 2, 3},
	}
}

// TaskHoursResult holds the sweep outcome.
type TaskHoursResult struct {
	Options TaskHoursOptions
	// TaskHours[i] corresponds to Bounds[i], at paper scale.
	TaskHours []float64
	// Fulfillment[i] is the constraint fulfillment of each run.
	Fulfillment []float64
	Checks      CheckList
}

// RunTaskHours executes the constraint sweep.
func RunTaskHours(opts TaskHoursOptions) (*TaskHoursResult, error) {
	if len(opts.Bounds) == 0 {
		opts = TaskHoursQuick()
	}
	if len(opts.Seeds) == 0 {
		opts.Seeds = []int64{1, 2, 3}
	}
	res := &TaskHoursResult{Options: opts}
	scale := float64(opts.Scale)

	// Flatten the bounds×seeds grid into one index space and fan it
	// across the worker pool; every run writes only its own slot, so the
	// per-bound averages below see the same values in any schedule.
	type runOut struct {
		hours   float64
		fulfill float64
	}
	grid := make([]runOut, len(opts.Bounds)*len(opts.Seeds))
	err := forEachRun(len(grid), func(i int) error {
		bound := opts.Bounds[i/len(opts.Seeds)]
		seed := opts.Seeds[i%len(opts.Seeds)]
		elasticOpts := apps.ScalePrimeTesterOptions(apps.PrimeTesterOptions{
			Sources:         32,
			Sinks:           32,
			PrimeTesters:    64,
			MinPT:           1,
			MaxPT:           520,
			Schedule:        fig6Schedule(opts.Fig6Options),
			Mode:            sim.BatchAdaptive,
			ConstraintBound: bound,
			Elastic:         true,
			WorkerNodes:     130,
			SlotsPerNode:    5,
			Seed:            seed,
		}, opts.Scale)
		cfg, probes, err := apps.BuildPrimeTester(elasticOpts)
		if err != nil {
			return fmt.Errorf("experiments: taskhours %v: %w", bound, err)
		}
		s, err := sim.New(cfg, probes)
		if err != nil {
			return fmt.Errorf("experiments: taskhours %v: %w", bound, err)
		}
		out, err := s.Run()
		if err != nil {
			return fmt.Errorf("experiments: taskhours %v: %w", bound, err)
		}
		grid[i] = runOut{
			hours:   out.TaskHours * scale,
			fulfill: out.Probes[apps.PrimeProbe].Fulfillment,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for bi := range opts.Bounds {
		var hours, fulfill float64
		for si := range opts.Seeds {
			o := grid[bi*len(opts.Seeds)+si]
			hours += o.hours
			fulfill += o.fulfill
		}
		n := float64(len(opts.Seeds))
		res.TaskHours = append(res.TaskHours, hours/n)
		res.Fulfillment = append(res.Fulfillment, fulfill/n)
	}

	var checks CheckList
	// Higher bounds must consume fewer task hours (the paper's
	// 46.4/44.3/41.8/37.6 progression). At compressed scale the per-bound
	// differences are close to the noise of individual scale-up spikes,
	// so the check is on the regression slope of task-hours over the
	// bound index rather than strict step-wise monotonicity.
	n := float64(len(res.TaskHours))
	var mean, slope float64
	for _, h := range res.TaskHours {
		mean += h
	}
	mean /= n
	for i, h := range res.TaskHours {
		slope += (float64(i) - (n-1)/2) * (h - mean)
	}
	checks.Add("task hours decrease with looser constraints",
		"30/40/50/100 ms → 46.4/44.3/41.8/37.6 task-hours (decreasing)",
		fmt.Sprintf("%v (slope %.2f)", formatHours(res.TaskHours), slope), slope < 0)
	// At compressed scale the absolute spread shrinks into run-to-run
	// noise (the paper's 60 s steps at full scale show ≈1.23×); assert
	// the sign with a noise allowance and leave the magnitude to the
	// -paper run.
	spread := res.TaskHours[0] / res.TaskHours[len(res.TaskHours)-1]
	checks.Add("sweep spread",
		"20 ms costs ≈20–30% more than 100 ms (quick scale: ≥ parity)",
		fmt.Sprintf("ratio %.2f", spread),
		spread > 0.95 && spread < 2.0)
	res.Checks = checks
	return res, nil
}

// formatHours renders task-hour vectors compactly.
func formatHours(hs []float64) []string {
	out := make([]string, len(hs))
	for i, h := range hs {
		out[i] = fmt.Sprintf("%.1f", h)
	}
	return out
}
