package experiments

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"nephelix/internal/apps"
	"nephelix/internal/obs"
)

// TestObsFaultsDecisionAudit is the acceptance check for the flight
// recorder: a faulted elastic run must leave a JSONL audit trail in
// which EVERY tester-parallelism change — scaler action or injected
// kill — is traceable to a logged event, and the scaler's changes carry
// the model inputs that justified them.
func TestObsFaultsDecisionAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment; skipped in -short mode")
	}
	opts := FaultsQuick()
	rec := obs.NewRecorder(0)
	opts.Recorder = rec
	res, err := RunFaults(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.KilledTasks < 1 {
		t.Fatalf("fault did not fire: %d tasks killed", res.KilledTasks)
	}
	if rec.Total() > uint64(rec.Len()) {
		t.Fatalf("recorder overflowed (%d events for capacity %d); audit trail incomplete", rec.Total(), rec.Len())
	}

	// Replay the tester vertex's parallelism from the event stream alone.
	// Every decision must have observed exactly the state the previous
	// events produced, and the replay must land on the run's final
	// parallelism — i.e. no change happened off the record.
	current := -1
	decisions, kills := 0, 0
	for i, ev := range rec.Events() {
		switch ev.Kind {
		case obs.KindScalingDecision:
			d := ev.Decision
			old, ok := d.Old[apps.PTWorker]
			if !ok {
				t.Fatalf("event %d: decision lacks tester parallelism snapshot", i)
			}
			if current >= 0 && old != current {
				t.Errorf("event %d: decision saw parallelism %d, audit replay says %d — untraced change", i, old, current)
			}
			current = d.New[apps.PTWorker]
			decisions++
			// A decision that changed something must carry its justification.
			if len(d.Actions) > 0 {
				justified := false
				for _, cd := range d.Constraints {
					if cd.Bottleneck || len(cd.Model) > 0 {
						justified = true
						for _, m := range cd.Model {
							if m.Vertex == apps.PTWorker && (m.Lambda <= 0 || m.ServiceMean <= 0) {
								t.Errorf("event %d: tester model inputs not populated: %+v", i, m)
							}
						}
					}
				}
				if !justified {
					t.Errorf("event %d: actions %v recorded without model inputs or bottleneck flag", i, d.Actions)
				}
			}
		case obs.KindTaskKill:
			if ev.Lifecycle.Vertex == apps.PTWorker {
				kills++
				if current >= 0 {
					current--
				}
			}
		case obs.KindTaskRestart:
			if ev.Lifecycle.Vertex == apps.PTWorker {
				current += ev.Lifecycle.Attempts
			}
		}
	}
	if decisions == 0 {
		t.Fatal("no scaling decisions on the audit trail")
	}
	if kills != res.KilledTasks {
		t.Errorf("audit trail shows %d tester kills, run killed %d", kills, res.KilledTasks)
	}
	if want := res.FinalParallelism / opts.Scale; current != want {
		t.Errorf("replayed final parallelism %d, run ended at %d — some change is untraceable", current, want)
	}

	// The exported JSONL is the artifact CI uploads: every line must be a
	// valid event and the line count must match the recorder.
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("JSONL line %d does not parse: %v", lines, err)
		}
	}
	if lines != rec.Len() {
		t.Errorf("JSONL has %d lines, recorder holds %d events", lines, rec.Len())
	}
}
