// Package experiments regenerates every measured figure and table of the
// paper's evaluation (Section III-C and Section V): Figure 3 (batching
// trade-off under static provisioning), Figure 5 (Rebalance solution
// surface), Figure 6 (elastic vs unelastic PrimeTester), the Section V-A
// task-hours-vs-constraint sweep, and Figure 8 (TwitterSentiment under
// reactive scaling). Each runner returns the raw time series plus a list
// of shape checks comparing the reproduction against the paper's
// qualitative results (orderings, ratios, crossover positions — not
// absolute numbers, per the substitution of the 130-node cluster by a
// simulator).
package experiments

import (
	"fmt"
	"strings"
)

// Check is one shape assertion against the paper's reported result.
type Check struct {
	// Name identifies the assertion.
	Name string
	// Paper is the paper's reported value or relationship.
	Paper string
	// Measured is the reproduction's value.
	Measured string
	// Pass reports whether the shape holds.
	Pass bool
}

// String renders the check as a one-line report.
func (c Check) String() string {
	status := "PASS"
	if !c.Pass {
		status = "FAIL"
	}
	return fmt.Sprintf("[%s] %s: paper=%s measured=%s", status, c.Name, c.Paper, c.Measured)
}

// CheckList aggregates checks.
type CheckList []Check

// Add appends a check.
func (l *CheckList) Add(name, paper, measured string, pass bool) {
	*l = append(*l, Check{Name: name, Paper: paper, Measured: measured, Pass: pass})
}

// Failed returns the failing checks.
func (l CheckList) Failed() []Check {
	var out []Check
	for _, c := range l {
		if !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

// AllPass reports whether every check holds.
func (l CheckList) AllPass() bool { return len(l.Failed()) == 0 }

// String renders all checks, one per line.
func (l CheckList) String() string {
	var b strings.Builder
	for _, c := range l {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}
