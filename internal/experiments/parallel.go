package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MaxWorkers bounds the worker pool used to fan independent simulation
// runs (seeds, sweep points, elastic-vs-baseline pairs) across CPUs.
// Each sim.Sim owns its RNG (seeded from its Config), so runs share no
// mutable state and the fan-out cannot perturb per-seed determinism.
// Set to 1 to force sequential execution (tests use this to verify that
// parallel results are byte-identical to sequential ones).
var MaxWorkers = runtime.GOMAXPROCS(0)

// forEachRun executes fn(0..n-1) on up to MaxWorkers goroutines. Work is
// handed out by an atomic counter and every invocation writes only its
// own index-addressed slot, so results are assembled in index order and
// are identical for any worker count. The returned error is the
// lowest-indexed failure, again independent of scheduling.
func forEachRun(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := MaxWorkers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		var next int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= n {
						return
					}
					errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
