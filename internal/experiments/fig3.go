package experiments

import (
	"fmt"
	"time"

	"nephelix/internal/apps"
	"nephelix/internal/sim"
	"nephelix/internal/workload"
)

// Fig3Options parameterizes the Figure 3 reproduction: the PrimeTester
// job under static provisioning (50 workers, 200 tester tasks at paper
// scale) across four batching configurations.
type Fig3Options struct {
	// Scale divides all task counts and rates (reported rates are scaled
	// back). Scale 1 is the paper's topology.
	Scale int
	// StepDuration is the phase-step length in seconds (paper: 60).
	StepDuration float64
	// IncrementSteps is the number of increment steps (peak rate =
	// (IncrementSteps+1) × 10⁴ items/s at paper scale).
	IncrementSteps int
	Seed           int64
}

// Fig3Quick returns a laptop-scale configuration preserving per-task
// load: 1/25 topology, 20 s steps.
func Fig3Quick() Fig3Options {
	return Fig3Options{Scale: 25, StepDuration: 20, IncrementSteps: 9, Seed: 1}
}

// Fig3Paper returns the paper-scale configuration (50 sources, 200
// testers, 60 s steps). Expect minutes of wall-clock time.
func Fig3Paper() Fig3Options {
	return Fig3Options{Scale: 1, StepDuration: 60, IncrementSteps: 9, Seed: 1}
}

// Fig3ConfigName identifies one of the four compared configurations.
type Fig3ConfigName string

// The four configurations of Section III-B.
const (
	ConfigStorm     Fig3ConfigName = "Storm"
	ConfigNepheleIF Fig3ConfigName = "Nephele-IF"
	Config16KiB     Fig3ConfigName = "Nephele-16KiB"
	Config20ms      Fig3ConfigName = "Nephele-20ms"
)

// fig3Configs lists the four runs: Storm and Nephele-IF both ship
// instantly (the paper includes both to show codebase equivalence; here
// they differ only by seed), 16KiB uses fixed buffers, 20ms the adaptive
// constraint.
var fig3Configs = []struct {
	name  Fig3ConfigName
	mode  sim.BatchMode
	bound time.Duration
	seed  int64
}{
	{ConfigStorm, sim.BatchInstant, 0, 101},
	{ConfigNepheleIF, sim.BatchInstant, 0, 202},
	{Config16KiB, sim.BatchFixedBuffer, 0, 303},
	{Config20ms, sim.BatchAdaptive, 20 * time.Millisecond, 404},
}

// Fig3ConfigResult is the outcome of one configuration's run.
type Fig3ConfigResult struct {
	Name Fig3ConfigName
	Rows []sim.Row
	// WarmUpLatency is the mean end-to-end latency during the warm-up
	// step (seconds).
	WarmUpLatency float64
	// EffectivePeak is the maximum delivered throughput measured at the
	// sinks (items/s, paper scale). Measuring at the sinks rather than at
	// the sources avoids over-reading transient emission spikes while
	// queues fill.
	EffectivePeak float64
	// SteadyLossTime is the first time (s) the source was throttled below
	// 90% of the attempted rate; 0 if never.
	SteadyLossTime float64
}

// Fig3Result aggregates the four configurations plus shape checks.
type Fig3Result struct {
	Options Fig3Options
	Configs map[Fig3ConfigName]*Fig3ConfigResult
	Checks  CheckList
}

// RunFig3 executes the Figure 3 experiment.
func RunFig3(opts Fig3Options) (*Fig3Result, error) {
	if opts.Scale <= 0 {
		opts.Scale = 25
	}
	if opts.StepDuration <= 0 {
		opts.StepDuration = 20
	}
	if opts.IncrementSteps <= 0 {
		opts.IncrementSteps = 9
	}
	res := &Fig3Result{Options: opts, Configs: make(map[Fig3ConfigName]*Fig3ConfigResult)}
	scale := float64(opts.Scale)

	for _, cc := range fig3Configs {
		base := apps.PrimeTesterOptions{
			Sources:      50,
			Sinks:        50,
			PrimeTesters: 200,
			Schedule: &workload.StepSchedule{
				WarmUpRate:     10000,
				StepDelta:      10000,
				IncrementSteps: opts.IncrementSteps,
				StepDuration:   opts.StepDuration,
			},
			Mode:            cc.mode,
			ConstraintBound: cc.bound,
			WorkerNodes:     130,
			SlotsPerNode:    4,
			Seed:            opts.Seed + cc.seed,
		}
		scaled := apps.ScalePrimeTesterOptions(base, opts.Scale)
		cfg, probes, err := apps.BuildPrimeTester(scaled)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig3 %s: %w", cc.name, err)
		}
		s, err := sim.New(cfg, probes)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig3 %s: %w", cc.name, err)
		}
		out, err := s.Run()
		if err != nil {
			return nil, fmt.Errorf("experiments: fig3 %s: %w", cc.name, err)
		}
		res.Configs[cc.name] = summarizeFig3(cc.name, out, scaled.Schedule.StepDuration, scale)
	}

	res.Checks = fig3Checks(res)
	return res, nil
}

// summarizeFig3 derives the per-config summary metrics from the series.
func summarizeFig3(name Fig3ConfigName, out *sim.Result, stepDur, scale float64) *Fig3ConfigResult {
	c := &Fig3ConfigResult{Name: name, Rows: out.Rows}
	var warmSum float64
	var warmN, throttledRows int
	var prevTime float64
	for _, r := range out.Rows {
		p := r.Probes[apps.PrimeProbe]
		if r.Time <= stepDur && p.Count > 0 {
			warmSum += p.Mean
			warmN++
		}
		delivered := r.Processed[apps.PTSink] * scale
		att := r.Attempted[apps.PTSource] * scale
		eff := r.Effective[apps.PTSource] * scale
		if delivered > c.EffectivePeak {
			c.EffectivePeak = delivered
		}
		// Loss of steady state manifests as backpressure throttling the
		// sources below the attempted rate for consecutive intervals
		// (skip the warm-up step, whose pipeline fill would
		// false-positive for large buffers; require two rows so control
		// transients don't).
		if r.Time > stepDur && att > 0 && eff < 0.9*att {
			throttledRows++
			if c.SteadyLossTime == 0 && throttledRows >= 2 {
				c.SteadyLossTime = prevTime
			}
		} else {
			throttledRows = 0
		}
		prevTime = r.Time
	}
	if warmN > 0 {
		c.WarmUpLatency = warmSum / float64(warmN)
	}
	return c
}

// fig3Checks compares the run against the paper's reported shape.
func fig3Checks(res *Fig3Result) CheckList {
	var checks CheckList
	ifc := res.Configs[ConfigNepheleIF]
	storm := res.Configs[ConfigStorm]
	fixed := res.Configs[Config16KiB]
	adaptive := res.Configs[Config20ms]

	// Warm-up latency ordering: instant < 20 ms constraint < 16 KiB.
	checks.Add("warmup latency ordering",
		"IF < 20ms <= 0.020 < 16KiB",
		fmt.Sprintf("IF=%.4fs 20ms=%.4fs 16KiB=%.3fs", ifc.WarmUpLatency, adaptive.WarmUpLatency, fixed.WarmUpLatency),
		ifc.WarmUpLatency < adaptive.WarmUpLatency &&
			adaptive.WarmUpLatency <= 0.020*1.15 &&
			adaptive.WarmUpLatency < fixed.WarmUpLatency)

	// 16 KiB warm-up latency is in the seconds range (paper: ≈3 s).
	checks.Add("16KiB warmup latency seconds-range",
		"≈3 s", fmt.Sprintf("%.2f s", fixed.WarmUpLatency),
		fixed.WarmUpLatency > 1.0 && fixed.WarmUpLatency < 8.0)

	// Storm ≈ Nephele-IF (same shipping strategy, different codebase).
	checks.Add("Storm equals Nephele-IF",
		"identical strategy, near-equal peaks",
		fmt.Sprintf("Storm=%.0f IF=%.0f items/s", storm.EffectivePeak, ifc.EffectivePeak),
		ratioWithin(storm.EffectivePeak, ifc.EffectivePeak, 0.85, 1.18))

	// Effective-throughput ordering and ratios: IF ≈40k, 20ms ≈52k
	// (+30%), 16KiB ≈63k (+58%).
	checks.Add("effective peak ordering",
		"IF < 20ms < 16KiB",
		fmt.Sprintf("IF=%.0f 20ms=%.0f 16KiB=%.0f", ifc.EffectivePeak, adaptive.EffectivePeak, fixed.EffectivePeak),
		ifc.EffectivePeak < adaptive.EffectivePeak && adaptive.EffectivePeak < fixed.EffectivePeak)
	checks.Add("20ms over IF throughput gain",
		"≈ +30%", fmt.Sprintf("%+.0f%%", 100*(adaptive.EffectivePeak/ifc.EffectivePeak-1)),
		ratioWithin(adaptive.EffectivePeak/ifc.EffectivePeak, 1.30, 0.85, 1.15))
	checks.Add("16KiB over IF throughput gain",
		"≈ +58%", fmt.Sprintf("%+.0f%%", 100*(fixed.EffectivePeak/ifc.EffectivePeak-1)),
		ratioWithin(fixed.EffectivePeak/ifc.EffectivePeak, 1.58, 0.85, 1.15))

	// Steady-state loss ordering: IF first (paper 180 s), then 20 ms
	// (300 s), then 16 KiB (360 s).
	checks.Add("steady-state loss ordering",
		"IF at 180s < 20ms at 300s <= 16KiB at 360s",
		fmt.Sprintf("IF=%.0fs 20ms=%.0fs 16KiB=%.0fs", ifc.SteadyLossTime, adaptive.SteadyLossTime, fixed.SteadyLossTime),
		ifc.SteadyLossTime > 0 && adaptive.SteadyLossTime > 0 && fixed.SteadyLossTime > 0 &&
			ifc.SteadyLossTime < adaptive.SteadyLossTime &&
			adaptive.SteadyLossTime <= fixed.SteadyLossTime)
	return checks
}

// ratioWithin reports whether got/want lies within [lo, hi].
func ratioWithin(got, want, lo, hi float64) bool {
	if want == 0 {
		return false
	}
	r := got / want
	return r >= lo && r <= hi
}
