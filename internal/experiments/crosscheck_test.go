package experiments

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"nephelix/internal/engine"
	"nephelix/internal/model"
	"nephelix/internal/probe"
	"nephelix/internal/sim"
	"nephelix/internal/workload"
)

// TestEngineSimCrossCheck validates DESIGN.md's central substitution
// claim: the live goroutine engine and the virtual-time simulator, fed
// the same workload under the same control plane, land in the same
// operating regime — constraint met most of the time, mean latency in
// the same band, comparable parallelism.
//
// The comparison is necessarily loose: the engine runs on wall-clock
// time on a shared machine, the simulator on virtual time with a
// synthetic cost model. The test asserts regime-level agreement, not
// point equality.
func TestEngineSimCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock experiment; skipped in -short mode")
	}

	const (
		rate        = 300.0 // items/s
		serviceMean = 0.002 // 2 ms per item
		bound       = 40 * time.Millisecond
	)

	// --- simulator run ---
	simProbes := sim.NewProbeSet()
	simSink := simProbes.Probe("e2e")
	simSink.BoundSeconds = bound.Seconds()

	simGraph := crossGraph(t)
	simSeq, err := model.ParseSequence(simGraph, "src->work", "work", "work->sink")
	if err != nil {
		t.Fatal(err)
	}
	simCfg := sim.Config{
		Graph: simGraph,
		Constraints: []*model.Constraint{{
			Name: "c", Sequence: simSeq, Bound: bound, Window: 10 * time.Second,
		}},
		Vertices: map[string]sim.VertexConfig{
			"src": {
				Source: &sim.SourceConfig{
					Schedule: &workload.ConstantSchedule{RatePerSecond: rate, Length: 60},
					EmitCost: 20e-6,
					Emit: func(ctx *sim.TaskContext, now float64) {
						ctx.Emit(0, sim.Item{EmitTime: now, Size: 64, Sampled: ctx.Sample()})
					},
				},
				SampleProbability: 0.5,
			},
			"work": {NewBehavior: func(int) sim.Behavior { return crossServer{mean: serviceMean} }},
			"sink": {NewBehavior: func(int) sim.Behavior { return crossSink{probe: simSink} }},
		},
		// Engine shipping is in-process: use near-zero data-plane costs so
		// the layers model the same physics.
		Costs:        sim.CostModel{FlushCPU: 10e-6, ReceiveCPU: 5e-6, NetFixed: 50e-6, NetPerByte: 1e-9, TCPSetup: 100e-6},
		Elastic:      true,
		WorkerNodes:  8,
		SlotsPerNode: 4,
		Seed:         1,
	}
	simRun, err := sim.New(simCfg, simProbes)
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := simRun.Run()
	if err != nil {
		t.Fatal(err)
	}
	simSummary := simRes.Probes["e2e"]

	// --- engine run (shorter wall-clock span, same rates) ---
	engProbes := probe.NewProbeSet()
	engSink := engProbes.Probe("e2e")
	engSink.BoundSeconds = bound.Seconds()

	engGraph := crossGraph(t)
	engSeq, err := model.ParseSequence(engGraph, "src->work", "work", "work->sink")
	if err != nil {
		t.Fatal(err)
	}
	var received atomic.Int64
	spec := engine.NewJobSpec(engGraph).
		SetSource("src", engine.SourceSpec{
			Schedule:          &workload.ConstantSchedule{RatePerSecond: rate, Length: 8},
			SampleProbability: 0.5,
			Emit: func(ctx *engine.Context) {
				ctx.Emit(0, engine.Record{EmitTime: time.Now(), Sampled: ctx.Sample()})
			},
		}).
		SetUDF("work", func(int) engine.UDF {
			return engine.UDFFunc(func(ctx *engine.Context, rec engine.Record) {
				spinFor(serviceMean)
				ctx.Emit(0, rec)
			})
		}).
		SetUDF("sink", func(int) engine.UDF {
			return engine.UDFFunc(func(_ *engine.Context, rec engine.Record) {
				received.Add(1)
				if rec.Sampled {
					engSink.Record(time.Since(rec.EmitTime).Seconds())
				}
			})
		}).
		AddConstraint(&model.Constraint{Name: "c", Sequence: engSeq, Bound: bound, Window: 10 * time.Second})
	exec, err := engine.New(engine.Config{
		Seed:                1,
		Elastic:             true,
		MeasurementInterval: 200 * time.Millisecond,
		AdjustmentInterval:  time.Second,
	}).Submit(spec, engProbes)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := exec.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	engFrac, engIntervals := engSink.Fulfillment()
	t.Logf("sim:    mean=%.1fms p95=%.1fms fulfillment=%.0f%% (%d intervals), final p=%d",
		simSummary.Mean*1000, simSummary.P95*1000, simSummary.Fulfillment*100,
		simSummary.Intervals, simRes.FinalParallelism["work"])
	t.Logf("engine: mean=%.1fms p95=%.1fms fulfillment=%.0f%% (%d intervals), final p=%d, received=%d",
		engSink.TotalMean()*1000, engSink.TotalP95()*1000, engFrac*100,
		engIntervals, exec.Parallelism("work"), received.Load())

	// Regime agreement: both meet the constraint most of the time...
	if simSummary.Fulfillment < 0.8 {
		t.Errorf("sim fulfillment %.2f below regime band", simSummary.Fulfillment)
	}
	if engFrac < 0.7 { // wall-clock noise allowance on shared hardware
		t.Errorf("engine fulfillment %.2f below regime band", engFrac)
	}
	// ...and both land between the service-time floor and the bound.
	for name, mean := range map[string]float64{
		"sim": simSummary.Mean, "engine": engSink.TotalMean(),
	} {
		if mean < serviceMean || mean > 2*bound.Seconds() {
			t.Errorf("%s mean latency %.4f s outside [service, 2×bound]", name, mean)
		}
	}
}

// crossGraph builds the shared topology.
func crossGraph(t *testing.T) *model.JobGraph {
	t.Helper()
	g := model.NewJobGraph()
	for _, v := range []model.JobVertex{
		{Name: "src", Parallelism: 1, MinParallelism: 1, MaxParallelism: 1},
		{Name: "work", Parallelism: 2, MinParallelism: 1, MaxParallelism: 8},
		{Name: "sink", Parallelism: 1, MinParallelism: 1, MaxParallelism: 1},
	} {
		if err := g.AddVertex(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge("src", "work", model.PatternRoundRobin); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("work", "sink", model.PatternRoundRobin); err != nil {
		t.Fatal(err)
	}
	return g
}

// crossServer is the simulator-side stand-in for the engine's spinning
// UDF.
type crossServer struct{ mean float64 }

func (s crossServer) ServiceTime(rng *rand.Rand, _ *sim.Item) float64 {
	return s.mean * (0.9 + 0.2*rng.Float64())
}

func (s crossServer) Process(ctx *sim.TaskContext, it sim.Item) { ctx.Emit(0, it) }

// crossSink records end-to-end latency.
type crossSink struct{ probe *sim.Probe }

func (crossSink) ServiceTime(*rand.Rand, *sim.Item) float64 { return 1e-5 }

func (s crossSink) Process(ctx *sim.TaskContext, it sim.Item) {
	if it.Sampled {
		s.probe.Record(ctx.Now() - it.EmitTime)
	}
}

// spinFor burns CPU for roughly d seconds.
func spinFor(d float64) {
	end := time.Now().Add(time.Duration(d * float64(time.Second)))
	for time.Now().Before(end) {
	}
}
