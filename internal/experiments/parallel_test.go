package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// withWorkers runs fn with MaxWorkers temporarily set to n.
func withWorkers(n int, fn func()) {
	old := MaxWorkers
	MaxWorkers = n
	defer func() { MaxWorkers = old }()
	fn()
}

// TestForEachRunCoversAllIndices checks that every index runs exactly
// once for worker counts below, at and above the task count.
func TestForEachRunCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var hits [9]int64
		withWorkers(workers, func() {
			if err := forEachRun(len(hits), func(i int) error {
				atomic.AddInt64(&hits[i], 1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

// TestForEachRunFirstErrorByIndex checks that the reported error is the
// lowest-indexed one, independent of scheduling.
func TestForEachRunFirstErrorByIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	withWorkers(8, func() {
		err := forEachRun(16, func(i int) error {
			switch i {
			case 3:
				return errA
			case 11:
				return errB
			}
			return nil
		})
		if err != errA {
			t.Errorf("got %v, want the lowest-indexed error %v", err, errA)
		}
	})
}

// TestRunFig6ParallelDeterministic verifies the parallel-determinism
// contract: RunFig6 with a fanned worker pool must produce results
// byte-identical to a sequential run, because every simulation owns its
// seeded RNG and writes only its own result slot.
func TestRunFig6ParallelDeterministic(t *testing.T) {
	opts := Fig6Options{Scale: 16, StepDuration: 5, IncrementSteps: 2, Seed: 3}
	var seq, par *Fig6Result
	withWorkers(1, func() {
		var err error
		seq, err = RunFig6(opts)
		if err != nil {
			t.Fatal(err)
		}
	})
	withWorkers(8, func() {
		var err error
		par, err = RunFig6(opts)
		if err != nil {
			t.Fatal(err)
		}
	})
	seqJSON, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	parJSON, err := json.Marshal(par)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqJSON, parJSON) {
		t.Fatalf("parallel RunFig6 diverged from sequential run\nseq: %d bytes\npar: %d bytes", len(seqJSON), len(parJSON))
	}
}

// TestRunTaskHoursParallelDeterministic does the same for the flattened
// bounds×seeds grid of the constraint sweep.
func TestRunTaskHoursParallelDeterministic(t *testing.T) {
	opts := TaskHoursOptions{
		Fig6Options: Fig6Options{Scale: 16, StepDuration: 5, IncrementSteps: 2, Seed: 1},
		Bounds:      []time.Duration{20 * time.Millisecond, 50 * time.Millisecond},
		Seeds:       []int64{1, 2},
	}
	var seq, par *TaskHoursResult
	withWorkers(1, func() {
		var err error
		seq, err = RunTaskHours(opts)
		if err != nil {
			t.Fatal(err)
		}
	})
	withWorkers(8, func() {
		var err error
		par, err = RunTaskHours(opts)
		if err != nil {
			t.Fatal(err)
		}
	})
	seqJSON, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	parJSON, err := json.Marshal(par)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqJSON, parJSON) {
		t.Fatalf("parallel RunTaskHours diverged from sequential run\nseq: %s\npar: %s", seqJSON, parJSON)
	}
}
