package experiments

import (
	"fmt"
	"math"
	"time"

	"nephelix/internal/apps"
	"nephelix/internal/ckpt"
	"nephelix/internal/obs"
	"nephelix/internal/sim"
	"nephelix/internal/workload"
)

// FaultsOptions parameterizes the fault-injection experiment: the
// elastic PrimeTester of Figure 6 with a fraction of its tester tasks
// killed mid-plateau. The victims' QoS histories go stale (their
// reporters die with them), the coverage-gated scaler must not react to
// the partial summaries with latency-violating scale-downs, and
// constraint fulfillment has to recover within a bounded number of
// adjustment intervals once the scaler restores capacity.
type FaultsOptions struct {
	// Scale divides task counts and rates (reported values scaled back).
	Scale int
	// StepDuration is the phase-step length in seconds.
	StepDuration float64
	// KillFraction is the fraction of PrimeTester tasks killed at the
	// middle of the plateau (default 0.10).
	KillFraction float64
	// RecoveryBudget is the number of adjustment intervals after the
	// kill within which a fulfilled interval must occur (default 6).
	RecoveryBudget int
	Seed           int64
	// Guarantee runs the experiment under a processing guarantee: the
	// kill plan gains supervised respawn (the engine supervisor's
	// restart-and-replay), and the checks additionally assert that no
	// record covered by a committed checkpoint is lost.
	Guarantee ckpt.Guarantee
	// CheckpointInterval is the barrier-checkpoint period in virtual
	// seconds (0 takes the simulator default; only used when Guarantee
	// is enabled).
	CheckpointInterval float64
	// Recorder, when set, receives the run's scaling-decision audit
	// trail (exportable as JSONL).
	Recorder *obs.Recorder
	// Tracer, when set, head-samples record traces through the run.
	Tracer *obs.Tracer
	// Telemetry, when set, receives the run's time series (QoS scrape,
	// scaler counters, e2e histogram) and residual-monitor statistics.
	Telemetry *obs.Telemetry
}

// FaultsQuick returns the laptop-scale configuration.
func FaultsQuick() FaultsOptions {
	return FaultsOptions{Scale: 8, StepDuration: 20, KillFraction: 0.10, RecoveryBudget: 6, Seed: 1}
}

// FaultsPaper returns the paper-scale configuration.
func FaultsPaper() FaultsOptions {
	return FaultsOptions{Scale: 1, StepDuration: 60, KillFraction: 0.10, RecoveryBudget: 6, Seed: 1}
}

// FaultsResult aggregates the faulted elastic run and its checks.
type FaultsResult struct {
	Options FaultsOptions

	Rows []sim.Row

	// KillTime is when the tasks died (mid-plateau, virtual seconds).
	KillTime float64
	// KilledTasks / KilledItems report the fault's blast radius.
	KilledTasks int
	KilledItems int64
	// Fulfillment is the whole-run constraint fulfillment.
	Fulfillment float64
	// RecoveryIntervals counts adjustment intervals after the kill until
	// the first fulfilled interval (0 when the first post-kill interval
	// already meets the bound). -1 means fulfillment never recovered.
	RecoveryIntervals int
	// PreKillParallelism / FinalParallelism are tester parallelism just
	// before the kill and at the end of the plateau (paper scale).
	PreKillParallelism int
	FinalParallelism   int
	ScaleUps           int
	ScaleDowns         int

	// Guarantee accounting (zero unless Options.Guarantee is enabled).
	CheckpointsCommitted int
	CheckpointsAborted   int
	ReplayedItems        int64
	SinkDistinct         int64
	SinkDuplicates       int64
	SinkHoles            int64

	Checks CheckList
}

// RunFaults executes the fault-injection experiment.
func RunFaults(opts FaultsOptions) (*FaultsResult, error) {
	if opts.Scale <= 0 {
		opts.Scale = 8
	}
	if opts.StepDuration <= 0 {
		opts.StepDuration = 20
	}
	if opts.KillFraction <= 0 || opts.KillFraction > 1 {
		opts.KillFraction = 0.10
	}
	if opts.RecoveryBudget <= 0 {
		opts.RecoveryBudget = 6
	}
	res := &FaultsResult{Options: opts}

	schedule := &workload.StepSchedule{
		WarmUpRate:     10000,
		StepDelta:      10000,
		IncrementSteps: 2,
		StepDuration:   opts.StepDuration,
	}
	// The plateau is the (IncrementSteps+1)-th step; kill at its middle.
	res.KillTime = (float64(schedule.IncrementSteps) + 1.5) * opts.StepDuration

	elasticOpts := apps.ScalePrimeTesterOptions(apps.PrimeTesterOptions{
		Sources:         32,
		Sinks:           32,
		PrimeTesters:    64,
		MinPT:           1,
		MaxPT:           520,
		Schedule:        schedule,
		Mode:            sim.BatchAdaptive,
		ConstraintBound: 20 * time.Millisecond,
		Elastic:         true,
		WorkerNodes:     130,
		SlotsPerNode:    5,
		Seed:            opts.Seed,
	}, opts.Scale)
	cfg, probes, err := apps.BuildPrimeTester(elasticOpts)
	if err != nil {
		return nil, fmt.Errorf("experiments: faults: %w", err)
	}
	cfg.Faults = &sim.FaultPlan{
		TaskKills: []sim.TaskKill{{
			At:       res.KillTime,
			Vertex:   apps.PTWorker,
			Fraction: opts.KillFraction,
		}},
	}
	if opts.Guarantee.Enabled() {
		// A guarantee needs the supervisor's restart-and-replay: elastic
		// scale-up restores capacity but does not replay lost records.
		cfg.Faults.Respawn = true
		cfg.Faults.RestartDelay = 1
		cfg.Guarantee = opts.Guarantee
		cfg.CheckpointInterval = opts.CheckpointInterval
	}
	cfg.Recorder = opts.Recorder
	cfg.Tracer = opts.Tracer
	cfg.Telemetry = opts.Telemetry

	// Track per-adjustment-interval fulfillment around the kill via the
	// probe's fulfillment counter deltas.
	prime := probes.Probe(apps.PrimeProbe)
	var lastFulfilled, lastIntervals int
	res.RecoveryIntervals = -1
	postKill := 0
	cfg.OnAdjust = func(info sim.AdjustmentInfo) {
		frac, n := prime.Fulfillment()
		fulfilled := int(math.Round(frac * float64(n)))
		intervalMet := n > lastIntervals && fulfilled > lastFulfilled
		closedInterval := n > lastIntervals
		lastFulfilled, lastIntervals = fulfilled, n
		if info.Now <= res.KillTime {
			if p, ok := info.Summary.Vertex(apps.PTWorker); ok && p.Parallelism > 0 {
				res.PreKillParallelism = p.Parallelism * opts.Scale
			}
			return
		}
		if res.RecoveryIntervals >= 0 {
			return
		}
		if closedInterval {
			if intervalMet {
				res.RecoveryIntervals = postKill
				return
			}
			postKill++
		}
	}

	s, err := sim.New(cfg, probes)
	if err != nil {
		return nil, fmt.Errorf("experiments: faults: %w", err)
	}
	out, err := s.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: faults: %w", err)
	}

	res.Rows = out.Rows
	res.KilledTasks = out.KilledTasks
	res.KilledItems = out.KilledItems
	res.Fulfillment = out.Probes[apps.PrimeProbe].Fulfillment
	res.FinalParallelism = out.FinalParallelism[apps.PTWorker] * opts.Scale
	res.ScaleUps = out.ScaleUps
	res.ScaleDowns = out.ScaleDowns
	res.CheckpointsCommitted = out.CheckpointsCommitted
	res.CheckpointsAborted = out.CheckpointsAborted
	res.ReplayedItems = out.ReplayedItems
	res.SinkDistinct = out.SinkDistinct
	res.SinkDuplicates = out.SinkDuplicates
	res.SinkHoles = out.SinkHoles

	res.Checks = faultsChecks(res)
	return res, nil
}

// faultsChecks asserts the recovery shape.
func faultsChecks(res *FaultsResult) CheckList {
	var checks CheckList
	checks.Add("fault fired",
		fmt.Sprintf("%.0f%% of tester tasks killed mid-plateau", res.Options.KillFraction*100),
		fmt.Sprintf("%d tasks killed at t=%.0fs (%d items lost)", res.KilledTasks, res.KillTime, res.KilledItems),
		res.KilledTasks >= 1)
	checks.Add("constraint recovers within bounded intervals",
		fmt.Sprintf("a fulfilled adjustment interval within %d intervals of the kill", res.Options.RecoveryBudget),
		fmt.Sprintf("%d intervals", res.RecoveryIntervals),
		res.RecoveryIntervals >= 0 && res.RecoveryIntervals <= res.Options.RecoveryBudget)
	checks.Add("overall fulfillment despite fault",
		"constraint met in the large majority of intervals",
		fmt.Sprintf("%.0f%%", res.Fulfillment*100),
		res.Fulfillment >= 0.70)
	checks.Add("pipeline keeps delivering",
		"sink throughput positive in every post-kill row",
		deliveredAfterKill(res),
		deliveredAfterKill(res) == "yes")
	if res.Options.Guarantee.Enabled() {
		checks.Add("no committed record lost",
			fmt.Sprintf("%s: zero holes below committed checkpoint watermarks", res.Options.Guarantee),
			fmt.Sprintf("%d holes (%d checkpoints committed, %d replayed)",
				res.SinkHoles, res.CheckpointsCommitted, res.ReplayedItems),
			res.SinkHoles == 0 && res.CheckpointsCommitted > 0)
	}
	return checks
}

// deliveredAfterKill reports whether every recorded row after the kill
// shows positive sink throughput ("yes", or the first offending time).
func deliveredAfterKill(res *FaultsResult) string {
	for _, r := range res.Rows {
		if r.Time <= res.KillTime {
			continue
		}
		if r.Processed[apps.PTSink] <= 0 {
			return fmt.Sprintf("stalled at t=%.0fs", r.Time)
		}
	}
	return "yes"
}
