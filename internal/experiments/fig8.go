package experiments

import (
	"fmt"

	"nephelix/internal/apps"
	"nephelix/internal/sim"
)

// Fig8Options parameterizes the Figure 8 reproduction: the
// TwitterSentiment job with reactive scaling on the synthetic two-week
// trace replayed in 100 minutes.
type Fig8Options struct {
	// Scale divides the trace rates and parallelism-related quantities.
	Scale int
	// Duration optionally truncates the trace (0 = full 6000 s).
	Duration float64
	Seed     int64
}

// Fig8Quick returns a laptop-scale configuration: quarter rates, full
// trace shape.
func Fig8Quick() Fig8Options {
	return Fig8Options{Scale: 4, Seed: 1}
}

// Fig8Paper returns the full-scale configuration.
func Fig8Paper() Fig8Options {
	return Fig8Options{Scale: 1, Seed: 1}
}

// Fig8Result aggregates the run and shape checks.
type Fig8Result struct {
	Options Fig8Options
	Rows    []sim.Row

	// Fulfillment1/2 are the fractions of adjustment intervals meeting
	// constraint (1) ℓ=215 ms (paper ≈93%) and constraint (2) ℓ=30 ms
	// (paper ≈96%).
	Fulfillment1 float64
	Fulfillment2 float64
	// HotPathMean and HotPathP95 describe the hot-topics path latency;
	// the window aggregation dominates it and the p95 "stays close to the
	// constraint" (paper).
	HotPathMean float64
	HotPathP95  float64
	// SentimentP95 is the sentiment path's p95 (paper: ≈25 ms outside
	// bursts).
	SentimentP95 float64
	// PeakRate is the maximum attempted tweet rate (paper scale; the
	// trace peaks at ≈6734 tweets/s around 2400 s).
	PeakRate float64
	PeakTime float64
	// SentimentBurstScaleUp is the Sentiment vertex's parallelism
	// increase from just before the main burst to its in-burst peak
	// (paper: ≈28 new tasks), at paper scale.
	SentimentBurstScaleUp int
	// HTAdjustments counts changes of the HotTopics parallelism (the
	// paper notes HT "is frequently adjusted").
	HTAdjustments int
	// MeanCPUUtilization is the run-wide task CPU utilization (paper:
	// 55.7%, evidence of the deliberate slight over-provisioning).
	MeanCPUUtilization float64

	Checks CheckList
}

// RunFig8 executes the Figure 8 experiment.
func RunFig8(opts Fig8Options) (*Fig8Result, error) {
	if opts.Scale <= 0 {
		opts.Scale = 4
	}
	appOpts := apps.DefaultTwitterSentimentOptions()
	appOpts.Seed = opts.Seed
	scaleTwitterOptions(&appOpts, opts.Scale)
	cfg, probes, err := apps.BuildTwitterSentiment(appOpts)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig8: %w", err)
	}
	if opts.Duration > 0 {
		cfg.Duration = opts.Duration
	}
	s, err := sim.New(cfg, probes)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig8: %w", err)
	}
	out, err := s.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: fig8: %w", err)
	}

	res := &Fig8Result{Options: opts, Rows: out.Rows}
	hot := out.Probes[apps.HotTopicsProbe]
	sent := out.Probes[apps.SentimentProbe]
	res.Fulfillment1 = hot.Fulfillment
	res.Fulfillment2 = sent.Fulfillment
	res.HotPathMean = hot.Mean
	res.HotPathP95 = hot.P95
	res.SentimentP95 = sent.P95
	res.MeanCPUUtilization = out.MeanCPUUtilization

	scale := float64(opts.Scale)
	burst := appOpts.Schedule.Bursts[0]
	var preBurstS, inBurstPeakS, lastHT int
	for i, r := range out.Rows {
		att := r.Attempted[apps.TSSource] * scale
		if att > res.PeakRate {
			res.PeakRate = att
			res.PeakTime = r.Time
		}
		if r.Time <= burst.Start {
			preBurstS = r.Parallelism[apps.TSSentiment]
		}
		if r.Time > burst.Start && r.Time <= burst.Start+burst.Length+30 {
			if p := r.Parallelism[apps.TSSentiment]; p > inBurstPeakS {
				inBurstPeakS = p
			}
		}
		if ht := r.Parallelism[apps.TSHotTopics]; i == 0 || ht != lastHT {
			if i > 0 {
				res.HTAdjustments++
			}
			lastHT = ht
		}
	}
	if inBurstPeakS > preBurstS {
		res.SentimentBurstScaleUp = (inBurstPeakS - preBurstS) * opts.Scale
	}

	res.Checks = fig8Checks(res)
	return res, nil
}

// fig8Checks compares the run against the paper's reported shape.
func fig8Checks(res *Fig8Result) CheckList {
	var checks CheckList
	checks.Add("constraint 1 fulfillment",
		"≈93% of adjustment intervals (ℓ=215 ms)",
		fmt.Sprintf("%.0f%%", res.Fulfillment1*100),
		res.Fulfillment1 >= 0.85)
	checks.Add("constraint 2 fulfillment",
		"≈96% of adjustment intervals (ℓ=30 ms)",
		fmt.Sprintf("%.0f%%", res.Fulfillment2*100),
		res.Fulfillment2 >= 0.85)
	checks.Add("hot path window-dominated",
		"fixed window-aggregation latency dominates the sequence",
		fmt.Sprintf("mean %.0f ms", res.HotPathMean*1000),
		res.HotPathMean > 0.090 && res.HotPathMean < 0.215)
	checks.Add("hot path p95 close to bound",
		"95th percentile stays close to the 215 ms constraint",
		fmt.Sprintf("p95 %.0f ms", res.HotPathP95*1000),
		res.HotPathP95 > 0.140 && res.HotPathP95 < 0.300)
	checks.Add("sentiment p95 near bound",
		"≈25 ms outside bursts",
		fmt.Sprintf("%.1f ms", res.SentimentP95*1000),
		res.SentimentP95 > 0.010 && res.SentimentP95 < 0.060)
	checks.Add("trace peak",
		"6734 tweets/s at ≈2400 s",
		fmt.Sprintf("%.0f tweets/s at %.0f s", res.PeakRate, res.PeakTime),
		ratioWithin(res.PeakRate, 6734, 0.8, 1.2) && res.PeakTime > 2200 && res.PeakTime < 2600)
	checks.Add("sentiment burst scale-up",
		"≈28 new Sentiment tasks at the spike",
		fmt.Sprintf("+%d tasks", res.SentimentBurstScaleUp),
		res.SentimentBurstScaleUp >= 8 && res.SentimentBurstScaleUp <= 80)
	checks.Add("hot-topics parallelism frequently adjusted",
		"HT parallelism frequently adjusted to tweet-rate variations",
		fmt.Sprintf("%d adjustments", res.HTAdjustments),
		res.HTAdjustments >= 10)
	// The paper reports 55.7%; at compressed scale the fixed vertices
	// (sources, merger, sinks) cannot shrink proportionally and dilute
	// the mean, so the check asserts the qualitative property: the system
	// runs deliberately below saturation but well above idle.
	checks.Add("slight over-provisioning",
		"mean task CPU utilization 55.7% (below saturation, above idle)",
		fmt.Sprintf("%.1f%%", res.MeanCPUUtilization*100),
		res.MeanCPUUtilization > 0.20 && res.MeanCPUUtilization < 0.80)
	return checks
}
