// Package ckpt holds the processing-guarantee primitives shared by the
// live engine and the virtual-time simulator: the guarantee ladder
// (at-most-once → at-least-once → effective exactly-once), global
// checkpoint metadata with pluggable stores, and the bounded
// (source, offset) dedup tables that make sinks idempotent.
//
// The ladder follows the classic fault-tolerance progression: sources
// tag every record with a monotonically increasing per-source offset
// and keep a bounded replay buffer; periodic asynchronous barrier
// checkpoints commit a global offset watermark; on a crash the sources
// rewind to the last committed watermark (at-least-once); deduplicating
// sinks drop the replay-induced duplicates (effective exactly-once).
package ckpt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
)

// Guarantee selects the processing-guarantee level of a run.
type Guarantee int

const (
	// AtMostOnce is the pre-checkpoint behavior: records lost to crashes
	// are counted, never recovered.
	AtMostOnce Guarantee = iota
	// AtLeastOnce enables offset tracking, barrier checkpoints and
	// source replay: every record reaches the sinks at least once, with
	// duplicates possible after a recovery.
	AtLeastOnce
	// ExactlyOnce additionally deduplicates at the sinks on
	// (source, offset), suppressing replay duplicates: effective
	// exactly-once delivery to sink UDFs.
	ExactlyOnce
)

// String returns the flag spelling of g.
func (g Guarantee) String() string {
	switch g {
	case AtLeastOnce:
		return "atleastonce"
	case ExactlyOnce:
		return "exactlyonce"
	default:
		return "atmostonce"
	}
}

// Enabled reports whether checkpointing and replay are active.
func (g Guarantee) Enabled() bool { return g != AtMostOnce }

// Dedup reports whether sink deduplication is active.
func (g Guarantee) Dedup() bool { return g == ExactlyOnce }

// ParseGuarantee parses a flag spelling (case-insensitive; accepts the
// compact forms above plus dashed variants like "at-least-once").
func ParseGuarantee(s string) (Guarantee, error) {
	switch strings.ToLower(strings.ReplaceAll(strings.ReplaceAll(s, "-", ""), "_", "")) {
	case "", "atmostonce", "none":
		return AtMostOnce, nil
	case "atleastonce":
		return AtLeastOnce, nil
	case "exactlyonce":
		return ExactlyOnce, nil
	}
	return AtMostOnce, fmt.Errorf("ckpt: unknown guarantee %q (want atmostonce|atleastonce|exactlyonce)", s)
}

// Checkpoint is one committed global checkpoint: for every source
// partition the offset watermark below which all records were delivered
// to every sink, plus the run's drop/emit counters at commit time.
type Checkpoint struct {
	// ID is the barrier number, monotonically increasing per run.
	ID int64 `json:"id"`
	// At is the commit time in seconds since run start (virtual seconds
	// in the simulator).
	At float64 `json:"at"`
	// SourceOffsets maps stable source-partition names to the next
	// uncommitted offset (i.e. all offsets < watermark are committed).
	SourceOffsets map[string]uint64 `json:"source_offsets"`
	// Emitted and LostRecords snapshot the run counters at commit.
	Emitted     int64 `json:"emitted"`
	LostRecords int64 `json:"lost_records"`
}

// totalOffsets sums the committed watermarks (audit convenience).
func (c Checkpoint) totalOffsets() uint64 {
	var n uint64
	for _, off := range c.SourceOffsets {
		n += off
	}
	return n
}

// TotalOffsets sums the committed watermarks across sources.
func (c Checkpoint) TotalOffsets() uint64 { return c.totalOffsets() }

// Store persists committed checkpoints. Implementations must be safe
// for one writer; Latest may be called concurrently with Save.
type Store interface {
	// Save persists one committed checkpoint.
	Save(c Checkpoint) error
	// Latest returns the most recent committed checkpoint, if any.
	Latest() (Checkpoint, bool, error)
}

// MemStore is an in-memory Store keeping the last Keep checkpoints
// (all of them when Keep <= 0). The zero value is ready to use.
type MemStore struct {
	mu   sync.Mutex
	Keep int
	all  []Checkpoint
}

// NewMemStore returns a memory store retaining the last keep
// checkpoints (unbounded when keep <= 0).
func NewMemStore(keep int) *MemStore { return &MemStore{Keep: keep} }

// Save appends c, evicting the oldest entries past Keep.
func (s *MemStore) Save(c Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.all = append(s.all, c)
	if s.Keep > 0 && len(s.all) > s.Keep {
		copy(s.all, s.all[len(s.all)-s.Keep:])
		s.all = s.all[:s.Keep]
	}
	return nil
}

// Latest returns the most recently saved checkpoint.
func (s *MemStore) Latest() (Checkpoint, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.all) == 0 {
		return Checkpoint{}, false, nil
	}
	return s.all[len(s.all)-1], true, nil
}

// All returns a copy of the retained checkpoints, oldest first.
func (s *MemStore) All() []Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Checkpoint, len(s.all))
	copy(out, s.all)
	return out
}

// FileStore appends checkpoints as JSON lines to a file; Latest replays
// the file's tail state loaded at open plus anything saved since.
type FileStore struct {
	mu   sync.Mutex
	path string
	f    *os.File
	w    *bufio.Writer
	last Checkpoint
	ok   bool
}

// OpenFileStore opens (creating or appending to) a JSONL checkpoint
// file and recovers the latest committed checkpoint from it.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ckpt: open %s: %w", path, err)
	}
	s := &FileStore{path: path, f: f}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var c Checkpoint
		if err := json.Unmarshal([]byte(line), &c); err != nil {
			continue // torn tail write: ignore
		}
		s.last, s.ok = c, true
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("ckpt: scan %s: %w", path, err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("ckpt: seek %s: %w", path, err)
	}
	s.w = bufio.NewWriter(f)
	return s, nil
}

// Save appends one checkpoint line and flushes it to the OS.
func (s *FileStore) Save(c Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Deterministic field order for SourceOffsets is json's default map
	// sorting; nothing extra needed.
	b, err := json.Marshal(c)
	if err != nil {
		return err
	}
	if _, err := s.w.Write(append(b, '\n')); err != nil {
		return err
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	s.last, s.ok = c, true
	return nil
}

// Latest returns the newest checkpoint (including any recovered at
// open).
func (s *FileStore) Latest() (Checkpoint, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last, s.ok, nil
}

// Close flushes and closes the underlying file.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w != nil {
		if err := s.w.Flush(); err != nil {
			s.f.Close()
			return err
		}
	}
	return s.f.Close()
}

// SortedSources returns the checkpoint's source names in stable order
// (reporting convenience).
func (c Checkpoint) SortedSources() []string {
	names := make([]string, 0, len(c.SourceOffsets))
	for n := range c.SourceOffsets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
