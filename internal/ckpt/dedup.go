package ckpt

import "math/bits"

// DedupTable tracks which (source, offset) pairs a sink vertex has
// delivered, so replayed records can be detected (at-least-once) or
// suppressed (exactly-once). It is bounded by construction: each source
// gets a dense bitmap window starting at that source's committed
// watermark, and Prune advances the window base at every checkpoint
// commit — committed offsets are never replayed, so anything below the
// base is a duplicate by definition. Window size is therefore capped by
// the source replay-buffer bound, not the stream length.
//
// The table is not goroutine-safe; the engine wraps it in a per-sink
// mutex and the single-threaded simulator uses it directly.
type DedupTable struct {
	windows  map[int32]*OffsetWindow
	distinct int64
	dups     int64
	holes    int64
}

// NewDedupTable returns an empty table.
func NewDedupTable() *DedupTable {
	return &DedupTable{windows: make(map[int32]*OffsetWindow)}
}

// Admit records a delivery of (src, off) and reports whether it is the
// first one (true) or a duplicate (false).
func (d *DedupTable) Admit(src int32, off uint64) bool {
	w := d.windows[src]
	if w == nil {
		w = &OffsetWindow{}
		d.windows[src] = w
	}
	if w.testAndSet(off) {
		d.dups++
		return false
	}
	d.distinct++
	return true
}

// Prune advances one source's window base to the committed watermark,
// releasing the bitmap below it. Offsets below a committed watermark
// that were never admitted are counted as holes: with barrier-consistent
// commits and an offset-complete pipeline (every source record reaches
// every tracked sink) holes mean lost-but-committed records, the exact
// quantity the zero-loss assertions check.
func (d *DedupTable) Prune(src int32, watermark uint64) {
	w := d.windows[src]
	if w == nil {
		w = &OffsetWindow{base: watermark}
		d.windows[src] = w
		d.holes += int64(watermark)
		return
	}
	d.holes += w.prune(watermark)
}

// Distinct returns the number of first-time deliveries admitted.
func (d *DedupTable) Distinct() int64 { return d.distinct }

// Dups returns the number of duplicate deliveries observed.
func (d *DedupTable) Dups() int64 { return d.dups }

// Holes returns the cumulative committed-but-never-delivered offsets
// observed by Prune (0 under a correct at-least-once run over an
// offset-complete pipeline).
func (d *DedupTable) Holes() int64 { return d.holes }

// OffsetWindow is a dense bitmap over one source's offsets, starting at
// the committed watermark.
type OffsetWindow struct {
	base uint64
	bits []uint64
}

// testAndSet marks off as seen; true when it was already set (or below
// the pruned base, which implies an earlier committed delivery).
func (w *OffsetWindow) testAndSet(off uint64) bool {
	if off < w.base {
		return true
	}
	idx := off - w.base
	word := int(idx >> 6)
	for word >= len(w.bits) {
		w.bits = append(w.bits, 0)
	}
	mask := uint64(1) << (idx & 63)
	if w.bits[word]&mask != 0 {
		return true
	}
	w.bits[word] |= mask
	return false
}

// prune advances the base to watermark, returning how many offsets in
// [base, watermark) were never set.
func (w *OffsetWindow) prune(watermark uint64) int64 {
	if watermark <= w.base {
		return 0
	}
	n := watermark - w.base
	w.base = watermark

	// Count set bits among the first n positions.
	var set int64
	full := int(n >> 6)
	for i := 0; i < full && i < len(w.bits); i++ {
		set += int64(bits.OnesCount64(w.bits[i]))
	}
	if rem := uint(n & 63); rem > 0 && full < len(w.bits) {
		set += int64(bits.OnesCount64(w.bits[full] & (1<<rem - 1)))
	}

	// Shift the bitmap down by n positions (word part then bit part).
	if full >= len(w.bits) {
		w.bits = w.bits[:0]
	} else {
		copy(w.bits, w.bits[full:])
		w.bits = w.bits[:len(w.bits)-full]
		if rem := uint(n & 63); rem > 0 {
			for i := 0; i < len(w.bits); i++ {
				w.bits[i] >>= rem
				if i+1 < len(w.bits) {
					w.bits[i] |= w.bits[i+1] << (64 - rem)
				}
			}
		}
	}
	return int64(n) - set
}

// Base returns the committed watermark the window starts at.
func (w *OffsetWindow) Base() uint64 { return w.base }
