package ckpt

import (
	"path/filepath"
	"testing"
)

func TestParseGuarantee(t *testing.T) {
	cases := map[string]Guarantee{
		"":              AtMostOnce,
		"atmostonce":    AtMostOnce,
		"AtLeastOnce":   AtLeastOnce,
		"at-least-once": AtLeastOnce,
		"exactly_once":  ExactlyOnce,
		"exactlyonce":   ExactlyOnce,
	}
	for in, want := range cases {
		got, err := ParseGuarantee(in)
		if err != nil || got != want {
			t.Errorf("ParseGuarantee(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseGuarantee("bogus"); err == nil {
		t.Error("ParseGuarantee(bogus) succeeded")
	}
	if AtMostOnce.Enabled() || !AtLeastOnce.Enabled() || !ExactlyOnce.Enabled() {
		t.Error("Enabled ladder wrong")
	}
	if AtLeastOnce.Dedup() || !ExactlyOnce.Dedup() {
		t.Error("Dedup ladder wrong")
	}
	for _, g := range []Guarantee{AtMostOnce, AtLeastOnce, ExactlyOnce} {
		back, err := ParseGuarantee(g.String())
		if err != nil || back != g {
			t.Errorf("round trip %v -> %q -> %v, %v", g, g.String(), back, err)
		}
	}
}

func TestMemStore(t *testing.T) {
	s := NewMemStore(2)
	if _, ok, _ := s.Latest(); ok {
		t.Fatal("empty store has a latest checkpoint")
	}
	for i := int64(1); i <= 3; i++ {
		if err := s.Save(Checkpoint{ID: i, SourceOffsets: map[string]uint64{"s": uint64(i) * 10}}); err != nil {
			t.Fatal(err)
		}
	}
	last, ok, err := s.Latest()
	if err != nil || !ok || last.ID != 3 {
		t.Fatalf("Latest = %+v, %v, %v", last, ok, err)
	}
	all := s.All()
	if len(all) != 2 || all[0].ID != 2 || all[1].ID != 3 {
		t.Fatalf("All (keep=2) = %+v", all)
	}
	if last.TotalOffsets() != 30 {
		t.Fatalf("TotalOffsets = %d", last.TotalOffsets())
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Latest(); ok {
		t.Fatal("fresh file store has a latest checkpoint")
	}
	for i := int64(1); i <= 3; i++ {
		if err := s.Save(Checkpoint{ID: i, At: float64(i), SourceOffsets: map[string]uint64{"src#1": uint64(100 * i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the latest committed checkpoint must be recovered.
	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	last, ok, err := s2.Latest()
	if err != nil || !ok {
		t.Fatalf("Latest after reopen: %v, %v", ok, err)
	}
	if last.ID != 3 || last.SourceOffsets["src#1"] != 300 {
		t.Fatalf("recovered %+v", last)
	}
	// Appending after recovery keeps working.
	if err := s2.Save(Checkpoint{ID: 4}); err != nil {
		t.Fatal(err)
	}
	if last, _, _ := s2.Latest(); last.ID != 4 {
		t.Fatalf("latest after append = %+v", last)
	}
}

func TestDedupTableAdmitAndPrune(t *testing.T) {
	d := NewDedupTable()
	// First deliveries admit, replays don't.
	for off := uint64(0); off < 100; off++ {
		if !d.Admit(1, off) {
			t.Fatalf("offset %d rejected on first delivery", off)
		}
	}
	for off := uint64(10); off < 20; off++ {
		if d.Admit(1, off) {
			t.Fatalf("offset %d admitted twice", off)
		}
	}
	if d.Distinct() != 100 || d.Dups() != 10 {
		t.Fatalf("distinct=%d dups=%d", d.Distinct(), d.Dups())
	}

	// Prune to 100: all delivered, no holes; below-base replays stay
	// duplicates.
	d.Prune(1, 100)
	if d.Holes() != 0 {
		t.Fatalf("holes after complete prune = %d", d.Holes())
	}
	if d.Admit(1, 50) {
		t.Fatal("below-base offset admitted after prune")
	}

	// A gap: deliver 100..149 and 160..199, prune to 200 → 10 holes.
	for off := uint64(100); off < 150; off++ {
		d.Admit(1, off)
	}
	for off := uint64(160); off < 200; off++ {
		d.Admit(1, off)
	}
	d.Prune(1, 200)
	if d.Holes() != 10 {
		t.Fatalf("holes = %d, want 10", d.Holes())
	}

	// Post-prune offsets land correctly relative to the new base.
	if !d.Admit(1, 200) || d.Admit(1, 200) {
		t.Fatal("post-prune admit/dup wrong")
	}

	// Independent sources don't interfere.
	if !d.Admit(2, 0) {
		t.Fatal("second source rejected")
	}
}

func TestOffsetWindowUnalignedPrune(t *testing.T) {
	w := &OffsetWindow{}
	// Set offsets 0..200 except 77 and 130, prune at an unaligned
	// watermark (131) and verify the shifted bitmap still answers
	// correctly for the survivors.
	for off := uint64(0); off <= 200; off++ {
		if off == 77 || off == 130 {
			continue
		}
		w.testAndSet(off)
	}
	holes := w.prune(131)
	if holes != 2 {
		t.Fatalf("holes = %d, want 2", holes)
	}
	if w.Base() != 131 {
		t.Fatalf("base = %d", w.Base())
	}
	for off := uint64(131); off <= 200; off++ {
		if !w.testAndSet(off) {
			t.Fatalf("offset %d lost by prune shift", off)
		}
	}
	if w.testAndSet(300) {
		t.Fatal("fresh offset 300 reported as duplicate")
	}
	if holes := w.prune(301); holes != 99 {
		// 201..299 were never set: 99 holes.
		t.Fatalf("second prune holes = %d, want 99", holes)
	}
}
