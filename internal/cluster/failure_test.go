package cluster

import (
	"errors"
	"testing"

	"nephelix/internal/model"
)

func TestResourceManagerFail(t *testing.T) {
	rm, err := NewResourceManager(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := rm.Lease()
	if err != nil {
		t.Fatal(err)
	}
	a.used = 3 // Fail must succeed even with occupied slots.
	if err := rm.Fail(a.ID); err != nil {
		t.Fatalf("Fail with occupied slots: %v", err)
	}
	if rm.Leased() != 0 {
		t.Errorf("Leased after fail: got %d, want 0", rm.Leased())
	}
	if rm.Failed() != 1 {
		t.Errorf("Failed counter: got %d, want 1", rm.Failed())
	}
	// The pool slot is freed: the pool can be filled again.
	if _, err := rm.Lease(); err != nil {
		t.Fatalf("lease after fail: %v", err)
	}
	if _, err := rm.Lease(); err != nil {
		t.Fatalf("second lease after fail: %v", err)
	}
	if _, err := rm.Lease(); !errors.Is(err, ErrPoolExhausted) {
		t.Errorf("pool limit after fail: got %v, want ErrPoolExhausted", err)
	}
}

// TestReleaseAndFailErrorPaths is the table-driven satellite: every
// illegal release/fail sequence must be rejected without corrupting the
// manager's accounting.
func TestReleaseAndFailErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		run  func(rm *ResourceManager, leased *Node) error
	}{
		{
			name: "double release",
			run: func(rm *ResourceManager, n *Node) error {
				if err := rm.Release(n.ID); err != nil {
					return nil // first release must pass; checked below
				}
				return rm.Release(n.ID)
			},
		},
		{
			name: "release unknown node",
			run: func(rm *ResourceManager, n *Node) error {
				return rm.Release("worker-999")
			},
		},
		{
			name: "release after fail",
			run: func(rm *ResourceManager, n *Node) error {
				if err := rm.Fail(n.ID); err != nil {
					t.Fatalf("fail: %v", err)
				}
				return rm.Release(n.ID)
			},
		},
		{
			name: "double fail",
			run: func(rm *ResourceManager, n *Node) error {
				if err := rm.Fail(n.ID); err != nil {
					t.Fatalf("fail: %v", err)
				}
				return rm.Fail(n.ID)
			},
		},
		{
			name: "fail unknown node",
			run: func(rm *ResourceManager, n *Node) error {
				return rm.Fail("worker-999")
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rm, err := NewResourceManager(4, 2)
			if err != nil {
				t.Fatal(err)
			}
			n, err := rm.Lease()
			if err != nil {
				t.Fatal(err)
			}
			if err := tc.run(rm, n); err == nil {
				t.Error("illegal sequence accepted")
			}
			if rm.Leased() < 0 || rm.Leased() > rm.PoolSize() {
				t.Errorf("lease accounting corrupted: %d leased", rm.Leased())
			}
		})
	}
}

func TestSchedulerFailNode(t *testing.T) {
	rm, err := NewResourceManager(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(rm)
	// Fill two nodes: v0,v1 on node A; v2,v3 on node B.
	for i := 0; i < 4; i++ {
		if _, err := s.Place(task("v", i)); err != nil {
			t.Fatal(err)
		}
	}
	nodeA, _ := s.NodeOf(task("v", 0))
	nodeB, _ := s.NodeOf(task("v", 2))
	if nodeA == nodeB {
		t.Fatal("expected tasks across two nodes")
	}

	orphans, err := s.FailNode(nodeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != 2 || orphans[0] != task("v", 0) || orphans[1] != task("v", 1) {
		t.Fatalf("orphans: %v", orphans)
	}
	if s.PlacedTasks() != 2 {
		t.Errorf("placed after fail: got %d, want 2", s.PlacedTasks())
	}
	if rm.Leased() != 1 {
		t.Errorf("leased after fail: got %d, want 1", rm.Leased())
	}
	for _, n := range s.Nodes() {
		if n == nodeA {
			t.Error("failed node still in scheduler order")
		}
	}

	// Orphans can be rescheduled onto surviving nodes / fresh leases.
	for _, o := range orphans {
		id, err := s.Place(o)
		if err != nil {
			t.Fatalf("reschedule %v: %v", o, err)
		}
		if id == nodeA {
			t.Errorf("task %v rescheduled onto the dead node", o)
		}
	}
	if s.PlacedTasks() != 4 {
		t.Errorf("placed after reschedule: got %d, want 4", s.PlacedTasks())
	}

	// Slot accounting invariant after the fail/reschedule churn.
	used := 0
	for _, id := range s.Nodes() {
		n := rm.leased[id]
		if n == nil {
			t.Fatalf("node %s in order but not leased", id)
		}
		if n.Used() < 0 || n.Used() > n.Slots {
			t.Errorf("node %s slot count out of range: %d/%d", id, n.Used(), n.Slots)
		}
		used += n.Used()
	}
	if used != s.PlacedTasks() {
		t.Errorf("slot accounting: %d used slots for %d placed tasks", used, s.PlacedTasks())
	}
}

func TestSchedulerFailNodeUnknown(t *testing.T) {
	rm, err := NewResourceManager(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(rm)
	if _, err := s.FailNode("worker-999"); err == nil {
		t.Error("failing unknown node accepted")
	}
}

// TestPlaceAfterPoolExhaustion verifies the scheduler recovers once a
// node failure (or release) frees pool capacity after exhaustion.
func TestPlaceAfterPoolExhaustion(t *testing.T) {
	rm, err := NewResourceManager(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(rm)
	if _, err := s.Place(task("v", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(task("v", 1)); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("want ErrPoolExhausted, got %v", err)
	}
	nodeA, _ := s.NodeOf(task("v", 0))
	if _, err := s.FailNode(nodeA); err != nil {
		t.Fatal(err)
	}
	// Pool capacity is back; the previously rejected task now places.
	if _, err := s.Place(task("v", 1)); err != nil {
		t.Fatalf("place after fail freed the pool: %v", err)
	}
	if s.PlacedTasks() != 1 {
		t.Errorf("placed: got %d, want 1", s.PlacedTasks())
	}
}

// TestUsageMeterStopsBillingDeadNodes checks that a failed node drops out
// of the Leased() count the meter integrates over.
func TestUsageMeterStopsBillingDeadNodes(t *testing.T) {
	rm, err := NewResourceManager(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(rm)
	var m UsageMeter
	tasks := []model.TaskID{task("v", 0), task("v", 1)}
	for _, tk := range tasks {
		if _, err := s.Place(tk); err != nil {
			t.Fatal(err)
		}
	}
	m.Advance(0, s.PlacedTasks(), rm.Leased())
	m.Advance(10, s.PlacedTasks(), rm.Leased()) // 10 s × 2 tasks × 2 nodes
	nodeA, _ := s.NodeOf(tasks[0])
	if _, err := s.FailNode(nodeA); err != nil {
		t.Fatal(err)
	}
	m.Advance(20, s.PlacedTasks(), rm.Leased()) // 10 s × 1 task × 1 node
	if got, want := m.TaskSeconds(), 10.0*2+10.0*1; got != want {
		t.Errorf("TaskSeconds: got %v, want %v", got, want)
	}
	if got, want := m.NodeHours()*3600, 10.0*2+10.0*1; !almostEqual(got, want, 1e-12) {
		t.Errorf("NodeSeconds: got %v, want %v", got, want)
	}
}
