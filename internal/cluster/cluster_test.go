package cluster

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"nephelix/internal/model"
)

func task(vertex string, idx int) model.TaskID {
	return model.TaskID{Vertex: vertex, Index: idx}
}

func TestResourceManagerLeaseRelease(t *testing.T) {
	rm, err := NewResourceManager(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Capacity() != 8 || rm.PoolSize() != 2 {
		t.Errorf("capacity/pool: %d/%d", rm.Capacity(), rm.PoolSize())
	}
	a, err := rm.Lease()
	if err != nil {
		t.Fatal(err)
	}
	b, err := rm.Lease()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rm.Lease(); !errors.Is(err, ErrPoolExhausted) {
		t.Errorf("third lease: got %v, want ErrPoolExhausted", err)
	}
	if rm.Leased() != 2 {
		t.Errorf("Leased: got %d, want 2", rm.Leased())
	}
	if err := rm.Release(a.ID); err != nil {
		t.Fatal(err)
	}
	if rm.Leased() != 1 {
		t.Errorf("after release: got %d leased, want 1", rm.Leased())
	}
	b.used = 1
	if err := rm.Release(b.ID); err == nil {
		t.Error("releasing node with occupied slots must error")
	}
	if err := rm.Release("nonexistent"); err == nil {
		t.Error("releasing unknown node must error")
	}
}

func TestNewResourceManagerValidation(t *testing.T) {
	if _, err := NewResourceManager(0, 4); err == nil {
		t.Error("zero pool size accepted")
	}
	if _, err := NewResourceManager(4, 0); err == nil {
		t.Error("zero slots accepted")
	}
}

func TestSchedulerFillFirst(t *testing.T) {
	rm, err := NewResourceManager(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(rm)
	// Five tasks: the first four fill node 1, the fifth leases node 2.
	var nodes []string
	for i := 0; i < 5; i++ {
		id, err := s.Place(task("v", i))
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, id)
	}
	for i := 0; i < 4; i++ {
		if nodes[i] != nodes[0] {
			t.Errorf("task %d on %s, want packed onto %s", i, nodes[i], nodes[0])
		}
	}
	if nodes[4] == nodes[0] {
		t.Error("fifth task must spill to a new node")
	}
	if rm.Leased() != 2 {
		t.Errorf("leased nodes: got %d, want 2", rm.Leased())
	}
}

func TestSchedulerUnplaceReleasesEmptyNodes(t *testing.T) {
	rm, err := NewResourceManager(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(rm)
	for i := 0; i < 4; i++ {
		if _, err := s.Place(task("v", i)); err != nil {
			t.Fatal(err)
		}
	}
	if rm.Leased() != 2 {
		t.Fatalf("leased: got %d, want 2", rm.Leased())
	}
	// Remove the two tasks of the second node.
	for i := 2; i < 4; i++ {
		if err := s.Unplace(task("v", i)); err != nil {
			t.Fatal(err)
		}
	}
	if rm.Leased() != 1 {
		t.Errorf("empty node not released: %d leased", rm.Leased())
	}
	if s.PlacedTasks() != 2 {
		t.Errorf("placed tasks: got %d, want 2", s.PlacedTasks())
	}
}

func TestSchedulerErrors(t *testing.T) {
	rm, err := NewResourceManager(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(rm)
	if _, err := s.Place(task("v", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(task("v", 0)); err == nil {
		t.Error("double placement accepted")
	}
	if _, err := s.Place(task("v", 1)); !errors.Is(err, ErrPoolExhausted) {
		t.Errorf("pool exhaustion: got %v", err)
	}
	if err := s.Unplace(task("v", 9)); err == nil {
		t.Error("unplacing unknown task accepted")
	}
}

func TestSchedulerReusesFreedSlots(t *testing.T) {
	rm, err := NewResourceManager(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(rm)
	for i := 0; i < 4; i++ {
		if _, err := s.Place(task("v", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Unplace(task("v", 1)); err != nil {
		t.Fatal(err)
	}
	id, err := s.Place(task("w", 0))
	if err != nil {
		t.Fatal(err)
	}
	first, _ := s.NodeOf(task("v", 0))
	if id != first {
		t.Errorf("freed slot not reused: placed on %s, want %s", id, first)
	}
}

func TestTasksOnNodeSorted(t *testing.T) {
	rm, err := NewResourceManager(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(rm)
	for _, tk := range []model.TaskID{task("b", 1), task("a", 2), task("a", 0)} {
		if _, err := s.Place(tk); err != nil {
			t.Fatal(err)
		}
	}
	nodes := s.Nodes()
	if len(nodes) != 1 {
		t.Fatalf("nodes: %v", nodes)
	}
	tasks := s.TasksOnNode(nodes[0])
	if len(tasks) != 3 || tasks[0] != task("a", 0) || tasks[1] != task("a", 2) || tasks[2] != task("b", 1) {
		t.Errorf("TasksOnNode order: %v", tasks)
	}
}

func TestUsageMeter(t *testing.T) {
	var m UsageMeter
	m.Advance(0, 10, 3)   // establishes t0; nothing integrated yet
	m.Advance(60, 10, 3)  // 60 s × 10 tasks, 3 nodes
	m.Advance(120, 20, 5) // 60 s × 20 tasks, 5 nodes
	wantTaskSeconds := 60.0*10 + 60.0*20
	if m.TaskSeconds() != wantTaskSeconds {
		t.Errorf("TaskSeconds: got %v, want %v", m.TaskSeconds(), wantTaskSeconds)
	}
	if !almostEqual(m.TaskHours(), wantTaskSeconds/3600, 1e-12) {
		t.Errorf("TaskHours: got %v", m.TaskHours())
	}
	if !almostEqual(m.NodeHours(), (60.0*3+60.0*5)/3600, 1e-12) {
		t.Errorf("NodeHours: got %v", m.NodeHours())
	}
	// Time going backwards is ignored.
	before := m.TaskSeconds()
	m.Advance(100, 99, 99)
	if m.TaskSeconds() != before {
		t.Error("backwards time integrated")
	}
}

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestSchedulerSlotInvariant is a property test: after any sequence of
// placements and removals, the number of placed tasks equals the sum of
// used slots, and no node exceeds its slot count.
func TestSchedulerSlotInvariant(t *testing.T) {
	prop := func(ops []bool) bool {
		rm, err := NewResourceManager(8, 3)
		if err != nil {
			return false
		}
		s := NewScheduler(rm)
		placed := make([]model.TaskID, 0)
		next := 0
		for _, place := range ops {
			if place || len(placed) == 0 {
				tk := task("v", next)
				next++
				if _, err := s.Place(tk); err != nil {
					if errors.Is(err, ErrPoolExhausted) {
						continue
					}
					return false
				}
				placed = append(placed, tk)
			} else {
				tk := placed[len(placed)-1]
				placed = placed[:len(placed)-1]
				if err := s.Unplace(tk); err != nil {
					return false
				}
			}
		}
		used := 0
		for _, id := range s.Nodes() {
			n := rm.leased[id]
			if n.Used() < 0 || n.Used() > n.Slots {
				return false
			}
			used += n.Used()
		}
		return used == s.PlacedTasks() && s.PlacedTasks() == len(placed)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
