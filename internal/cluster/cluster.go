// Package cluster provides the master-side cluster substrate the paper's
// prototype relies on: a resource manager that leases and releases worker
// nodes from a bounded pool (Nephele's own resource manager in the
// paper), a slot-based scheduler that places tasks onto workers, and
// resource accounting in "task hours" (Section V-A's cost metric).
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"nephelix/internal/model"
)

// ErrPoolExhausted is returned when a task cannot be placed because every
// node of the pool is leased and fully occupied. Per the paper the user
// must be informed and make more cluster resources available.
var ErrPoolExhausted = errors.New("cluster: worker pool exhausted")

// Node is a leased worker node with a fixed number of task slots (one per
// CPU core; the paper's workers have 4 cores).
type Node struct {
	ID    string
	Slots int
	used  int
}

// Used returns the number of occupied slots.
func (n *Node) Used() int { return n.used }

// Free returns the number of free slots.
func (n *Node) Free() int { return n.Slots - n.used }

// ResourceManager hands out worker nodes from a bounded homogeneous pool.
// It is not safe for concurrent use; the master serializes access.
type ResourceManager struct {
	poolSize     int
	slotsPerNode int
	leased       map[string]*Node
	nextID       int
	failed       int
}

// NewResourceManager creates a manager for a pool of poolSize worker
// nodes with slotsPerNode task slots each.
func NewResourceManager(poolSize, slotsPerNode int) (*ResourceManager, error) {
	if poolSize <= 0 {
		return nil, fmt.Errorf("cluster: pool size must be positive, got %d", poolSize)
	}
	if slotsPerNode <= 0 {
		return nil, fmt.Errorf("cluster: slots per node must be positive, got %d", slotsPerNode)
	}
	return &ResourceManager{
		poolSize:     poolSize,
		slotsPerNode: slotsPerNode,
		leased:       make(map[string]*Node),
	}, nil
}

// Lease acquires one more worker node, or ErrPoolExhausted when the pool
// limit is reached.
func (rm *ResourceManager) Lease() (*Node, error) {
	if len(rm.leased) >= rm.poolSize {
		return nil, ErrPoolExhausted
	}
	rm.nextID++
	n := &Node{ID: fmt.Sprintf("worker-%03d", rm.nextID), Slots: rm.slotsPerNode}
	rm.leased[n.ID] = n
	return n, nil
}

// Release returns a node to the pool. Releasing a node with occupied
// slots is a caller bug and returns an error.
func (rm *ResourceManager) Release(id string) error {
	n, ok := rm.leased[id]
	if !ok {
		return fmt.Errorf("cluster: release of unknown node %q", id)
	}
	if n.used > 0 {
		return fmt.Errorf("cluster: node %q still has %d occupied slots", id, n.used)
	}
	delete(rm.leased, id)
	return nil
}

// Fail revokes the lease of a node that has been declared dead. Unlike
// Release it succeeds even while slots are occupied: the node is gone,
// whatever ran on it is gone with it. The pool slot is freed so a
// replacement node can be leased; billing for the node stops because it
// no longer counts toward Leased(). Failing an unknown node returns an
// error so callers notice double-failures.
func (rm *ResourceManager) Fail(id string) error {
	if _, ok := rm.leased[id]; !ok {
		return fmt.Errorf("cluster: fail of unknown node %q", id)
	}
	delete(rm.leased, id)
	rm.failed++
	return nil
}

// Failed returns the number of nodes that have been declared dead via
// Fail since the manager was created.
func (rm *ResourceManager) Failed() int { return rm.failed }

// Leased returns the number of currently leased nodes.
func (rm *ResourceManager) Leased() int { return len(rm.leased) }

// PoolSize returns the pool limit.
func (rm *ResourceManager) PoolSize() int { return rm.poolSize }

// Capacity returns the total number of slots the pool can provide.
func (rm *ResourceManager) Capacity() int { return rm.poolSize * rm.slotsPerNode }

// Scheduler places tasks into the slots of leased worker nodes, leasing
// new nodes on demand and releasing nodes that become empty. Placement is
// fill-first: it packs tasks onto already-leased nodes to keep the node
// footprint minimal, matching the goal of minimizing resource
// consumption.
type Scheduler struct {
	rm         *ResourceManager
	placements map[model.TaskID]string
	order      []string // leased node ids, lease order
}

// NewScheduler creates a scheduler on top of a resource manager.
func NewScheduler(rm *ResourceManager) *Scheduler {
	return &Scheduler{rm: rm, placements: make(map[model.TaskID]string)}
}

// Place assigns the task to a node slot and returns the node id.
func (s *Scheduler) Place(task model.TaskID) (string, error) {
	if _, ok := s.placements[task]; ok {
		return "", fmt.Errorf("cluster: task %s already placed", task)
	}
	for _, id := range s.order {
		n := s.rm.leased[id]
		if n != nil && n.Free() > 0 {
			n.used++
			s.placements[task] = id
			return id, nil
		}
	}
	n, err := s.rm.Lease()
	if err != nil {
		return "", fmt.Errorf("cluster: placing %s: %w", task, err)
	}
	s.order = append(s.order, n.ID)
	n.used++
	s.placements[task] = n.ID
	return n.ID, nil
}

// Unplace frees the task's slot and releases its node if it becomes
// empty.
func (s *Scheduler) Unplace(task model.TaskID) error {
	id, ok := s.placements[task]
	if !ok {
		return fmt.Errorf("cluster: task %s is not placed", task)
	}
	delete(s.placements, task)
	n := s.rm.leased[id]
	if n == nil {
		return fmt.Errorf("cluster: task %s placed on unknown node %q", task, id)
	}
	n.used--
	if n.used == 0 {
		if err := s.rm.Release(id); err != nil {
			return err
		}
		for i, oid := range s.order {
			if oid == id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
	return nil
}

// FailNode handles the death of a worker node: it revokes the node's
// lease (even with occupied slots) and returns the tasks that were
// placed on it, sorted for determinism, so the caller can reschedule
// them onto surviving nodes. The orphaned tasks are removed from the
// placement map — from the scheduler's point of view they no longer run
// anywhere and can be Placed again.
func (s *Scheduler) FailNode(id string) ([]model.TaskID, error) {
	orphans := s.TasksOnNode(id)
	if err := s.rm.Fail(id); err != nil {
		return nil, err
	}
	for _, t := range orphans {
		delete(s.placements, t)
	}
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return orphans, nil
}

// NodeOf returns the node id a task is placed on.
func (s *Scheduler) NodeOf(task model.TaskID) (string, bool) {
	id, ok := s.placements[task]
	return id, ok
}

// PlacedTasks returns the number of placed tasks.
func (s *Scheduler) PlacedTasks() int { return len(s.placements) }

// Nodes returns the ids of the leased nodes in lease order.
func (s *Scheduler) Nodes() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// TasksOnNode returns the tasks placed on the given node, sorted for
// determinism.
func (s *Scheduler) TasksOnNode(id string) []model.TaskID {
	var tasks []model.TaskID
	for t, nid := range s.placements {
		if nid == id {
			tasks = append(tasks, t)
		}
	}
	sort.Slice(tasks, func(i, j int) bool {
		if tasks[i].Vertex != tasks[j].Vertex {
			return tasks[i].Vertex < tasks[j].Vertex
		}
		return tasks[i].Index < tasks[j].Index
	})
	return tasks
}

// UsageMeter integrates resource consumption over time: task seconds (the
// paper reports "task hours", the amount of running tasks over time) and
// node seconds. Time is caller-supplied in seconds so the meter works
// under wall-clock and virtual time alike.
type UsageMeter struct {
	lastTime    float64
	taskSeconds float64
	nodeSeconds float64
	started     bool
}

// Advance integrates usage from the previous call to now, with the given
// numbers of running tasks and leased nodes during that span.
func (m *UsageMeter) Advance(now float64, runningTasks, leasedNodes int) {
	if m.started && now > m.lastTime {
		dt := now - m.lastTime
		m.taskSeconds += dt * float64(runningTasks)
		m.nodeSeconds += dt * float64(leasedNodes)
	}
	m.lastTime = now
	m.started = true
}

// TaskHours returns the accumulated task hours.
func (m *UsageMeter) TaskHours() float64 { return m.taskSeconds / 3600 }

// NodeHours returns the accumulated node hours.
func (m *UsageMeter) NodeHours() float64 { return m.nodeSeconds / 3600 }

// TaskSeconds returns the accumulated task seconds.
func (m *UsageMeter) TaskSeconds() float64 { return m.taskSeconds }
