package model

import (
	"testing"
	"testing/quick"
)

func TestRuntimeGraphExpansion(t *testing.T) {
	g := chain(t) // src(2) -> mid(3) -> sink(2)
	rg, err := NewRuntimeGraph(g)
	if err != nil {
		t.Fatalf("NewRuntimeGraph: %v", err)
	}
	if got := rg.TaskCount(); got != 7 {
		t.Errorf("TaskCount: got %d, want 7", got)
	}
	// Channels: 2*3 + 3*2 = 12.
	if got := rg.ChannelCount(); got != 12 {
		t.Errorf("ChannelCount: got %d, want 12", got)
	}
	chans, err := rg.Channels(EdgeKey{Source: "src", Target: "mid"})
	if err != nil {
		t.Fatalf("Channels: %v", err)
	}
	if len(chans) != 6 {
		t.Fatalf("Channels(src->mid): got %d, want 6", len(chans))
	}
	if chans[0].Producer != 0 || chans[0].Consumer != 0 || chans[5].Producer != 1 || chans[5].Consumer != 2 {
		t.Errorf("channel ordering unexpected: %v", chans)
	}
	if _, err := rg.Channels(EdgeKey{Source: "src", Target: "sink"}); err == nil {
		t.Error("Channels on unknown edge: want error")
	}
}

func TestRuntimeGraphSetParallelism(t *testing.T) {
	g := chain(t)
	rg, err := NewRuntimeGraph(g)
	if err != nil {
		t.Fatalf("NewRuntimeGraph: %v", err)
	}
	got, err := rg.SetParallelism("mid", 100)
	if err != nil {
		t.Fatalf("SetParallelism: %v", err)
	}
	if got != 10 {
		t.Errorf("SetParallelism clamp: got %d, want 10 (vertex max)", got)
	}
	if rg.Parallelism("mid") != 10 {
		t.Errorf("Parallelism after set: got %d, want 10", rg.Parallelism("mid"))
	}
	if _, err := rg.SetParallelism("ghost", 1); err == nil {
		t.Error("SetParallelism on unknown vertex: want error")
	}
	tasks := rg.Tasks("mid")
	if len(tasks) != 10 || tasks[9].Index != 9 {
		t.Errorf("Tasks after scale-up: got %v", tasks)
	}
}

func TestRuntimeGraphInvalidJob(t *testing.T) {
	g := NewJobGraph()
	if _, err := NewRuntimeGraph(g); err == nil {
		t.Error("NewRuntimeGraph accepted empty job graph")
	}
}

func TestRuntimeSequences(t *testing.T) {
	g := chain(t)
	rg, err := NewRuntimeGraph(g)
	if err != nil {
		t.Fatalf("NewRuntimeGraph: %v", err)
	}
	seq, err := ParseSequence(g, "src->mid", "mid", "mid->sink", "sink")
	if err != nil {
		t.Fatalf("ParseSequence: %v", err)
	}
	combos := rg.RuntimeSequences(seq)
	// mid has 3 tasks, sink has 2: 6 runtime sequences.
	if len(combos) != 6 {
		t.Fatalf("RuntimeSequences: got %d, want 6", len(combos))
	}
	for _, c := range combos {
		if len(c) != 2 || c[0].Vertex != "mid" || c[1].Vertex != "sink" {
			t.Errorf("unexpected runtime sequence %v", c)
		}
	}
}

func TestDiffParallelism(t *testing.T) {
	current := map[string]int{"a": 2, "b": 5, "c": 1}
	desired := map[string]int{"a": 4, "b": 5, "c": 1, "ghost": 9}
	actions := DiffParallelism(current, desired)
	if len(actions) != 1 {
		t.Fatalf("DiffParallelism: got %d actions, want 1: %v", len(actions), actions)
	}
	a := actions[0]
	if a.Vertex != "a" || a.From != 2 || a.To != 4 || !a.IsScaleUp() || a.Delta() != 2 {
		t.Errorf("unexpected action %+v", a)
	}
}

func TestDiffParallelismDeterministicOrder(t *testing.T) {
	current := map[string]int{"x": 1, "y": 1, "z": 1}
	desired := map[string]int{"z": 2, "x": 2, "y": 2}
	for i := 0; i < 10; i++ {
		actions := DiffParallelism(current, desired)
		if len(actions) != 3 || actions[0].Vertex != "x" || actions[1].Vertex != "y" || actions[2].Vertex != "z" {
			t.Fatalf("actions not sorted: %v", actions)
		}
	}
}

// TestTaskCountMatchesParallelisms is a property test: for any set of
// parallelism updates within bounds, TaskCount equals the sum of the
// per-vertex parallelism.
func TestTaskCountMatchesParallelisms(t *testing.T) {
	g := chain(t)
	rg, err := NewRuntimeGraph(g)
	if err != nil {
		t.Fatalf("NewRuntimeGraph: %v", err)
	}
	prop := func(pMid, pSrc uint8) bool {
		if _, err := rg.SetParallelism("mid", int(pMid%12)+1); err != nil {
			return false
		}
		if _, err := rg.SetParallelism("src", int(pSrc%4)+1); err != nil {
			return false
		}
		sum := 0
		for _, p := range rg.Parallelisms() {
			sum += p
		}
		return sum == rg.TaskCount() && len(rg.AllTasks()) == sum
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
