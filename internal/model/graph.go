// Package model defines the formal structures of stream processing jobs
// used throughout the library: the user-facing job graph, the parallelized
// runtime graph, job sequences and latency constraints. The definitions
// follow Section II of Lohrmann et al., "Elastic Stream Processing with
// Latency Guarantees" (ICDCS 2015).
package model

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// WiringPattern describes how the tasks of two adjacent job vertices are
// connected ("stream grouping" in Storm terminology).
type WiringPattern int

const (
	// PatternRoundRobin distributes data items over consumer tasks in a
	// rotating fashion. Round-robin wiring makes a vertex trivially
	// elastic because no task owns a key range.
	PatternRoundRobin WiringPattern = iota + 1
	// PatternBroadcast replicates every data item to all consumer tasks.
	PatternBroadcast
	// PatternKeyBased routes each data item to the consumer task that owns
	// the item's key partition (hash partitioning).
	PatternKeyBased
)

// String returns the canonical lower-case name of the pattern.
func (w WiringPattern) String() string {
	switch w {
	case PatternRoundRobin:
		return "round-robin"
	case PatternBroadcast:
		return "broadcast"
	case PatternKeyBased:
		return "key-based"
	default:
		return fmt.Sprintf("WiringPattern(%d)", int(w))
	}
}

// LatencyMode selects how task latency is measured for a UDF
// (Section II-A3). The UDF declares the mode because its computation is
// opaque to the engine.
type LatencyMode int

const (
	// LatencyReadReady measures the time between consuming a data item and
	// the task becoming ready to read the next item. It suits map- and
	// filter-like UDFs that work strictly per data item, and coincides
	// with the queueing-theoretic service time.
	LatencyReadReady LatencyMode = iota + 1
	// LatencyReadWrite measures the time between consuming a data item and
	// the next write of any data item. It suits aggregating UDFs such as
	// windowed operators.
	LatencyReadWrite
)

// String returns the canonical name of the latency mode.
func (m LatencyMode) String() string {
	switch m {
	case LatencyReadReady:
		return "read-ready"
	case LatencyReadWrite:
		return "read-write"
	default:
		return fmt.Sprintf("LatencyMode(%d)", int(m))
	}
}

// JobVertex is a node of the job graph. The user attaches a UDF to each
// vertex (at the engine layer) and declares the current, minimum and
// maximum degree of parallelism.
type JobVertex struct {
	// Name identifies the vertex within its job graph.
	Name string
	// Parallelism is the initial degree of parallelism p_jv.
	Parallelism int
	// MinParallelism and MaxParallelism bound the degrees of parallelism
	// the elastic scaler may choose (p_jv^min, p_jv^max).
	MinParallelism int
	MaxParallelism int
	// LatencyMode declares how task latency is measured for this vertex's
	// UDF.
	LatencyMode LatencyMode
}

// Elastic reports whether the scaler is allowed to change the vertex's
// degree of parallelism.
func (v *JobVertex) Elastic() bool {
	return v.MinParallelism < v.MaxParallelism
}

// ClampParallelism restricts p to the vertex's [min, max] range.
func (v *JobVertex) ClampParallelism(p int) int {
	if p < v.MinParallelism {
		return v.MinParallelism
	}
	if p > v.MaxParallelism {
		return v.MaxParallelism
	}
	return p
}

// EdgeKey identifies a job edge by the names of its endpoint vertices.
type EdgeKey struct {
	Source string
	Target string
}

// String renders the edge key as "source->target".
func (k EdgeKey) String() string { return k.Source + "->" + k.Target }

// ParseEdgeKey inverts EdgeKey.String: it splits "source->target" at the
// first "->". Vertex names therefore must not contain "->" when edge
// keys round-trip through text (JSON summaries, trace reports).
func ParseEdgeKey(s string) (EdgeKey, error) {
	i := strings.Index(s, "->")
	if i < 0 {
		return EdgeKey{}, fmt.Errorf("model: edge key %q has no \"->\" separator", s)
	}
	return EdgeKey{Source: s[:i], Target: s[i+2:]}, nil
}

// JobEdge is a directed edge of the job graph, connecting the tasks of two
// adjacent job vertices according to a wiring pattern.
type JobEdge struct {
	Source  string
	Target  string
	Pattern WiringPattern
}

// Key returns the edge's identifying key.
func (e *JobEdge) Key() EdgeKey { return EdgeKey{Source: e.Source, Target: e.Target} }

// JobGraph is the user-provided DAG JG = (JV, JE). Vertices are identified
// by name; edges by their (source, target) pair. A job graph is built with
// AddVertex/AddEdge and then validated (and frozen) with Validate.
type JobGraph struct {
	vertices map[string]*JobVertex
	order    []string // insertion order, for deterministic iteration
	edges    map[EdgeKey]*JobEdge
	edgeKeys []EdgeKey // insertion order
	out      map[string][]EdgeKey
	in       map[string][]EdgeKey
}

// NewJobGraph returns an empty job graph.
func NewJobGraph() *JobGraph {
	return &JobGraph{
		vertices: make(map[string]*JobVertex),
		edges:    make(map[EdgeKey]*JobEdge),
		out:      make(map[string][]EdgeKey),
		in:       make(map[string][]EdgeKey),
	}
}

// AddVertex inserts a vertex into the graph. The vertex is copied; later
// mutations of the argument do not affect the graph.
func (g *JobGraph) AddVertex(v JobVertex) error {
	if v.Name == "" {
		return errors.New("model: vertex name must not be empty")
	}
	if _, ok := g.vertices[v.Name]; ok {
		return fmt.Errorf("model: duplicate vertex %q", v.Name)
	}
	if v.LatencyMode == 0 {
		v.LatencyMode = LatencyReadReady
	}
	if v.MinParallelism <= 0 {
		v.MinParallelism = 1
	}
	if v.Parallelism <= 0 {
		v.Parallelism = v.MinParallelism
	}
	if v.MaxParallelism <= 0 {
		v.MaxParallelism = v.Parallelism
	}
	if v.MinParallelism > v.MaxParallelism {
		return fmt.Errorf("model: vertex %q: min parallelism %d > max %d",
			v.Name, v.MinParallelism, v.MaxParallelism)
	}
	if v.Parallelism < v.MinParallelism || v.Parallelism > v.MaxParallelism {
		return fmt.Errorf("model: vertex %q: parallelism %d outside [%d, %d]",
			v.Name, v.Parallelism, v.MinParallelism, v.MaxParallelism)
	}
	vc := v
	g.vertices[v.Name] = &vc
	g.order = append(g.order, v.Name)
	return nil
}

// AddEdge inserts a directed edge into the graph. Both endpoints must
// already exist.
func (g *JobGraph) AddEdge(source, target string, pattern WiringPattern) error {
	if _, ok := g.vertices[source]; !ok {
		return fmt.Errorf("model: edge source %q: unknown vertex", source)
	}
	if _, ok := g.vertices[target]; !ok {
		return fmt.Errorf("model: edge target %q: unknown vertex", target)
	}
	if source == target {
		return fmt.Errorf("model: self-loop on vertex %q", source)
	}
	key := EdgeKey{Source: source, Target: target}
	if _, ok := g.edges[key]; ok {
		return fmt.Errorf("model: duplicate edge %s", key)
	}
	if pattern == 0 {
		pattern = PatternRoundRobin
	}
	g.edges[key] = &JobEdge{Source: source, Target: target, Pattern: pattern}
	g.edgeKeys = append(g.edgeKeys, key)
	g.out[source] = append(g.out[source], key)
	g.in[target] = append(g.in[target], key)
	return nil
}

// Vertex returns the vertex with the given name, or nil if absent.
func (g *JobGraph) Vertex(name string) *JobVertex { return g.vertices[name] }

// Edge returns the edge with the given key, or nil if absent.
func (g *JobGraph) Edge(key EdgeKey) *JobEdge { return g.edges[key] }

// Vertices returns all vertices in insertion order.
func (g *JobGraph) Vertices() []*JobVertex {
	vs := make([]*JobVertex, 0, len(g.order))
	for _, name := range g.order {
		vs = append(vs, g.vertices[name])
	}
	return vs
}

// VertexNames returns all vertex names in insertion order.
func (g *JobGraph) VertexNames() []string {
	names := make([]string, len(g.order))
	copy(names, g.order)
	return names
}

// Edges returns all edges in insertion order.
func (g *JobGraph) Edges() []*JobEdge {
	es := make([]*JobEdge, 0, len(g.edgeKeys))
	for _, k := range g.edgeKeys {
		es = append(es, g.edges[k])
	}
	return es
}

// OutEdges returns the keys of the edges leaving the named vertex, in
// insertion order.
func (g *JobGraph) OutEdges(name string) []EdgeKey {
	keys := make([]EdgeKey, len(g.out[name]))
	copy(keys, g.out[name])
	return keys
}

// InEdges returns the keys of the edges entering the named vertex, in
// insertion order.
func (g *JobGraph) InEdges(name string) []EdgeKey {
	keys := make([]EdgeKey, len(g.in[name]))
	copy(keys, g.in[name])
	return keys
}

// Sources returns the names of all vertices without inbound edges, sorted.
func (g *JobGraph) Sources() []string {
	var srcs []string
	for _, name := range g.order {
		if len(g.in[name]) == 0 {
			srcs = append(srcs, name)
		}
	}
	sort.Strings(srcs)
	return srcs
}

// Sinks returns the names of all vertices without outbound edges, sorted.
func (g *JobGraph) Sinks() []string {
	var sinks []string
	for _, name := range g.order {
		if len(g.out[name]) == 0 {
			sinks = append(sinks, name)
		}
	}
	sort.Strings(sinks)
	return sinks
}

// TopologicalOrder returns the vertex names in a topological order, or an
// error if the graph contains a cycle. The order is deterministic: among
// ready vertices, insertion order wins.
func (g *JobGraph) TopologicalOrder() ([]string, error) {
	indeg := make(map[string]int, len(g.vertices))
	for _, name := range g.order {
		indeg[name] = len(g.in[name])
	}
	var ready []string
	for _, name := range g.order {
		if indeg[name] == 0 {
			ready = append(ready, name)
		}
	}
	order := make([]string, 0, len(g.vertices))
	for len(ready) > 0 {
		name := ready[0]
		ready = ready[1:]
		order = append(order, name)
		for _, ek := range g.out[name] {
			indeg[ek.Target]--
			if indeg[ek.Target] == 0 {
				ready = append(ready, ek.Target)
			}
		}
	}
	if len(order) != len(g.vertices) {
		return nil, errors.New("model: job graph contains a cycle")
	}
	return order, nil
}

// Validate checks that the graph is a non-empty DAG in which every vertex
// is reachable in the sense of having at least one edge unless it is the
// only vertex.
func (g *JobGraph) Validate() error {
	if len(g.vertices) == 0 {
		return errors.New("model: job graph has no vertices")
	}
	if _, err := g.TopologicalOrder(); err != nil {
		return err
	}
	if len(g.vertices) > 1 {
		for _, name := range g.order {
			if len(g.in[name]) == 0 && len(g.out[name]) == 0 {
				return fmt.Errorf("model: vertex %q is disconnected", name)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the graph. Mutating the clone (for example
// vertex parallelism) does not affect the original.
func (g *JobGraph) Clone() *JobGraph {
	c := NewJobGraph()
	for _, name := range g.order {
		// Copies cannot fail: the originals were validated on insert.
		_ = c.AddVertex(*g.vertices[name])
	}
	for _, k := range g.edgeKeys {
		e := g.edges[k]
		_ = c.AddEdge(e.Source, e.Target, e.Pattern)
	}
	return c
}

// TotalParallelism returns the sum of the current degrees of parallelism
// over all vertices, i.e. the number of tasks a runtime graph would have.
func (g *JobGraph) TotalParallelism() int {
	total := 0
	for _, v := range g.vertices {
		total += v.Parallelism
	}
	return total
}

// Duration is re-exported so that callers of the model package do not need
// to import time for constraint definitions alone.
type Duration = time.Duration
