package model

import (
	"strings"
	"testing"
)

func mustGraph(t *testing.T, build func(g *JobGraph) error) *JobGraph {
	t.Helper()
	g := NewJobGraph()
	if err := build(g); err != nil {
		t.Fatalf("building graph: %v", err)
	}
	return g
}

// diamond returns a source -> {a, b} -> sink diamond graph.
func diamond(t *testing.T) *JobGraph {
	t.Helper()
	return mustGraph(t, func(g *JobGraph) error {
		for _, v := range []JobVertex{
			{Name: "source", Parallelism: 2},
			{Name: "a", Parallelism: 3, MinParallelism: 1, MaxParallelism: 8},
			{Name: "b", Parallelism: 1},
			{Name: "sink", Parallelism: 2},
		} {
			if err := g.AddVertex(v); err != nil {
				return err
			}
		}
		for _, e := range [][2]string{{"source", "a"}, {"source", "b"}, {"a", "sink"}, {"b", "sink"}} {
			if err := g.AddEdge(e[0], e[1], PatternRoundRobin); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestJobGraphAddVertex(t *testing.T) {
	tests := []struct {
		name    string
		vertex  JobVertex
		wantErr string
	}{
		{name: "valid", vertex: JobVertex{Name: "v", Parallelism: 2, MinParallelism: 1, MaxParallelism: 4}},
		{name: "empty name", vertex: JobVertex{Parallelism: 1}, wantErr: "must not be empty"},
		{name: "min above max", vertex: JobVertex{Name: "v", Parallelism: 3, MinParallelism: 5, MaxParallelism: 3}, wantErr: "min parallelism"},
		{name: "parallelism above max", vertex: JobVertex{Name: "v", Parallelism: 9, MinParallelism: 1, MaxParallelism: 4}, wantErr: "outside"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := NewJobGraph()
			err := g.AddVertex(tt.vertex)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("AddVertex: unexpected error %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("AddVertex: got error %v, want containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestJobGraphVertexDefaults(t *testing.T) {
	g := NewJobGraph()
	if err := g.AddVertex(JobVertex{Name: "v"}); err != nil {
		t.Fatalf("AddVertex: %v", err)
	}
	v := g.Vertex("v")
	if v.Parallelism != 1 || v.MinParallelism != 1 || v.MaxParallelism != 1 {
		t.Errorf("defaults: got p=%d min=%d max=%d, want all 1", v.Parallelism, v.MinParallelism, v.MaxParallelism)
	}
	if v.LatencyMode != LatencyReadReady {
		t.Errorf("default latency mode: got %v, want read-ready", v.LatencyMode)
	}
	if v.Elastic() {
		t.Error("vertex with min == max must not be elastic")
	}
}

func TestJobGraphDuplicateVertex(t *testing.T) {
	g := NewJobGraph()
	if err := g.AddVertex(JobVertex{Name: "v", Parallelism: 1}); err != nil {
		t.Fatalf("AddVertex: %v", err)
	}
	if err := g.AddVertex(JobVertex{Name: "v", Parallelism: 1}); err == nil {
		t.Fatal("duplicate vertex accepted")
	}
}

func TestJobGraphAddEdgeErrors(t *testing.T) {
	g := mustGraph(t, func(g *JobGraph) error {
		if err := g.AddVertex(JobVertex{Name: "a", Parallelism: 1}); err != nil {
			return err
		}
		return g.AddVertex(JobVertex{Name: "b", Parallelism: 1})
	})
	if err := g.AddEdge("a", "missing", PatternRoundRobin); err == nil {
		t.Error("edge to unknown vertex accepted")
	}
	if err := g.AddEdge("a", "a", PatternRoundRobin); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge("a", "b", PatternRoundRobin); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := g.AddEdge("a", "b", PatternBroadcast); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestTopologicalOrder(t *testing.T) {
	g := diamond(t)
	order, err := g.TopologicalOrder()
	if err != nil {
		t.Fatalf("TopologicalOrder: %v", err)
	}
	pos := make(map[string]int, len(order))
	for i, name := range order {
		pos[name] = i
	}
	for _, e := range g.Edges() {
		if pos[e.Source] >= pos[e.Target] {
			t.Errorf("edge %s violates topological order %v", e.Key(), order)
		}
	}
}

func TestTopologicalOrderCycle(t *testing.T) {
	g := mustGraph(t, func(g *JobGraph) error {
		for _, n := range []string{"a", "b", "c"} {
			if err := g.AddVertex(JobVertex{Name: n, Parallelism: 1}); err != nil {
				return err
			}
		}
		for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}} {
			if err := g.AddEdge(e[0], e[1], PatternRoundRobin); err != nil {
				return err
			}
		}
		return nil
	})
	if _, err := g.TopologicalOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted cyclic graph")
	}
}

func TestValidateDisconnected(t *testing.T) {
	g := mustGraph(t, func(g *JobGraph) error {
		for _, n := range []string{"a", "b", "lonely"} {
			if err := g.AddVertex(JobVertex{Name: n, Parallelism: 1}); err != nil {
				return err
			}
		}
		return g.AddEdge("a", "b", PatternRoundRobin)
	})
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted graph with disconnected vertex")
	}
}

func TestSourcesAndSinks(t *testing.T) {
	g := diamond(t)
	if got := g.Sources(); len(got) != 1 || got[0] != "source" {
		t.Errorf("Sources: got %v, want [source]", got)
	}
	if got := g.Sinks(); len(got) != 1 || got[0] != "sink" {
		t.Errorf("Sinks: got %v, want [sink]", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.Vertex("a").Parallelism = 7
	if g.Vertex("a").Parallelism == 7 {
		t.Error("mutating clone affected original")
	}
	if c.TotalParallelism() == g.TotalParallelism() {
		t.Error("clone parallelism change not reflected in clone total")
	}
}

func TestWiringPatternString(t *testing.T) {
	tests := []struct {
		pattern WiringPattern
		want    string
	}{
		{PatternRoundRobin, "round-robin"},
		{PatternBroadcast, "broadcast"},
		{PatternKeyBased, "key-based"},
		{WiringPattern(42), "WiringPattern(42)"},
	}
	for _, tt := range tests {
		if got := tt.pattern.String(); got != tt.want {
			t.Errorf("String(%d): got %q, want %q", int(tt.pattern), got, tt.want)
		}
	}
}

func TestLatencyModeString(t *testing.T) {
	if LatencyReadReady.String() != "read-ready" || LatencyReadWrite.String() != "read-write" {
		t.Error("latency mode names changed")
	}
	if got := LatencyMode(9).String(); got != "LatencyMode(9)" {
		t.Errorf("unknown mode: got %q", got)
	}
}

func TestClampParallelism(t *testing.T) {
	v := JobVertex{Name: "v", Parallelism: 4, MinParallelism: 2, MaxParallelism: 8}
	tests := []struct{ in, want int }{{1, 2}, {2, 2}, {5, 5}, {8, 8}, {100, 8}}
	for _, tt := range tests {
		if got := v.ClampParallelism(tt.in); got != tt.want {
			t.Errorf("ClampParallelism(%d): got %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestInOutEdges(t *testing.T) {
	g := diamond(t)
	if got := g.OutEdges("source"); len(got) != 2 {
		t.Errorf("OutEdges(source): got %d edges, want 2", len(got))
	}
	if got := g.InEdges("sink"); len(got) != 2 {
		t.Errorf("InEdges(sink): got %d edges, want 2", len(got))
	}
	if got := g.InEdges("source"); len(got) != 0 {
		t.Errorf("InEdges(source): got %d edges, want 0", len(got))
	}
}
