package model

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// SequenceElementKind distinguishes vertex elements from edge elements in a
// job sequence.
type SequenceElementKind int

const (
	// ElementVertex marks a job-vertex element.
	ElementVertex SequenceElementKind = iota + 1
	// ElementEdge marks a job-edge element.
	ElementEdge
)

// SequenceElement is one element of a job sequence: either a job vertex or
// a job edge.
type SequenceElement struct {
	Kind   SequenceElementKind
	Vertex string  // set when Kind == ElementVertex
	Edge   EdgeKey // set when Kind == ElementEdge
}

// String renders the element for diagnostics.
func (e SequenceElement) String() string {
	if e.Kind == ElementVertex {
		return e.Vertex
	}
	return e.Edge.String()
}

// Sequence is a job sequence js: an n-tuple of connected job vertices and
// job edges, where both the first and the last element may be either a
// vertex or an edge (Section II-A4). A sequence induces a set of runtime
// sequences in the runtime graph; the latency constraint semantics are
// defined over those runtime sequences.
type Sequence struct {
	elements []SequenceElement
}

// ParseSequence builds a sequence from an alternating element list against
// a job graph. Elements are given as vertex names and "a->b" edge
// specifications, e.g.:
//
//	ParseSequence(g, "src->filter", "filter", "filter->sink")
//
// It validates that consecutive elements are connected in the graph.
func ParseSequence(g *JobGraph, elements ...string) (*Sequence, error) {
	if len(elements) == 0 {
		return nil, errors.New("model: empty sequence")
	}
	seq := &Sequence{}
	for _, raw := range elements {
		if strings.Contains(raw, "->") {
			parts := strings.SplitN(raw, "->", 2)
			key := EdgeKey{Source: strings.TrimSpace(parts[0]), Target: strings.TrimSpace(parts[1])}
			if g.Edge(key) == nil {
				return nil, fmt.Errorf("model: sequence references unknown edge %s", key)
			}
			seq.elements = append(seq.elements, SequenceElement{Kind: ElementEdge, Edge: key})
			continue
		}
		name := strings.TrimSpace(raw)
		if g.Vertex(name) == nil {
			return nil, fmt.Errorf("model: sequence references unknown vertex %q", name)
		}
		seq.elements = append(seq.elements, SequenceElement{Kind: ElementVertex, Vertex: name})
	}
	if err := seq.validate(); err != nil {
		return nil, err
	}
	return seq, nil
}

// validate checks the alternating, connected structure of the sequence.
func (s *Sequence) validate() error {
	for i := 1; i < len(s.elements); i++ {
		prev, cur := s.elements[i-1], s.elements[i]
		switch {
		case prev.Kind == ElementVertex && cur.Kind == ElementEdge:
			if cur.Edge.Source != prev.Vertex {
				return fmt.Errorf("model: sequence element %s does not leave vertex %q", cur.Edge, prev.Vertex)
			}
		case prev.Kind == ElementEdge && cur.Kind == ElementVertex:
			if prev.Edge.Target != cur.Vertex {
				return fmt.Errorf("model: sequence edge %s does not enter vertex %q", prev.Edge, cur.Vertex)
			}
		default:
			return fmt.Errorf("model: sequence elements %s and %s do not alternate", prev, cur)
		}
	}
	return nil
}

// Elements returns the sequence elements in order.
func (s *Sequence) Elements() []SequenceElement {
	out := make([]SequenceElement, len(s.elements))
	copy(out, s.elements)
	return out
}

// Vertices returns the names of the job vertices V(js) in sequence order.
func (s *Sequence) Vertices() []string {
	var names []string
	for _, e := range s.elements {
		if e.Kind == ElementVertex {
			names = append(names, e.Vertex)
		}
	}
	return names
}

// Edges returns the keys of the job edges E(js) in sequence order.
func (s *Sequence) Edges() []EdgeKey {
	var keys []EdgeKey
	for _, e := range s.elements {
		if e.Kind == ElementEdge {
			keys = append(keys, e.Edge)
		}
	}
	return keys
}

// IngoingEdge returns the sequence edge immediately preceding the named
// vertex, and whether one exists. The latency model uses this edge's
// channel measurements to derive the vertex's queue waiting time.
func (s *Sequence) IngoingEdge(vertex string) (EdgeKey, bool) {
	for i, e := range s.elements {
		if e.Kind == ElementVertex && e.Vertex == vertex && i > 0 {
			return s.elements[i-1].Edge, true
		}
	}
	return EdgeKey{}, false
}

// String renders the sequence as "(e1, v1, e2, ...)".
func (s *Sequence) String() string {
	parts := make([]string, len(s.elements))
	for i, e := range s.elements {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Constraint is a latency constraint (js, ℓ, t): the mean sequence latency
// of the data items passing through the runtime sequences of js during any
// window of t time units must not exceed ℓ (Section II-A5, Equation 1).
// With Quantile set it becomes a percentile constraint (js, ℓ_pXX, t): the
// q-th quantile of the sequence latencies, rather than their mean, must
// stay under ℓ.
type Constraint struct {
	// Name identifies the constraint in reports.
	Name string
	// Sequence is the constrained job sequence js.
	Sequence *Sequence
	// Bound is the desired upper latency bound ℓ.
	Bound time.Duration
	// Window is the averaging window t (e.g. 10 s).
	Window time.Duration
	// Quantile selects percentile semantics: 0 keeps the paper's mean
	// constraint; a value in (0, 1) bounds that quantile of the sequence
	// latency instead (e.g. 0.99 for a p99 constraint).
	Quantile float64
}

// IsPercentile reports whether the constraint bounds a latency quantile
// rather than the mean.
func (c *Constraint) IsPercentile() bool { return c.Quantile > 0 && c.Quantile < 1 }

// Validate checks the constraint for structural soundness.
func (c *Constraint) Validate() error {
	if c.Sequence == nil || len(c.Sequence.elements) == 0 {
		return errors.New("model: constraint has no sequence")
	}
	if c.Bound <= 0 {
		return fmt.Errorf("model: constraint %q: bound must be positive, got %v", c.Name, c.Bound)
	}
	if c.Window <= 0 {
		return fmt.Errorf("model: constraint %q: window must be positive, got %v", c.Name, c.Window)
	}
	if c.Quantile != 0 && !(c.Quantile > 0 && c.Quantile < 1) {
		return fmt.Errorf("model: constraint %q: quantile must be in (0,1) or 0 for mean semantics, got %v", c.Name, c.Quantile)
	}
	return nil
}

// QuantileLabel renders a quantile as a metric-style label ("p99",
// "p99.9"); the empty string for mean constraints.
func QuantileLabel(q float64) string {
	if !(q > 0 && q < 1) {
		return ""
	}
	s := strconv.FormatFloat(q*100, 'f', -1, 64)
	return "p" + s
}

// String renders the constraint for diagnostics.
func (c *Constraint) String() string {
	if c.IsPercentile() {
		return fmt.Sprintf("%s: %s(%s) <= %v over %v", c.Name, c.Sequence, QuantileLabel(c.Quantile), c.Bound, c.Window)
	}
	return fmt.Sprintf("%s: %s <= %v over %v", c.Name, c.Sequence, c.Bound, c.Window)
}
