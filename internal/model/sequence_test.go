package model

import (
	"strings"
	"testing"
	"time"
)

// chain returns a linear src -> mid -> sink graph.
func chain(t *testing.T) *JobGraph {
	t.Helper()
	return mustGraph(t, func(g *JobGraph) error {
		for _, v := range []JobVertex{
			{Name: "src", Parallelism: 2},
			{Name: "mid", Parallelism: 3, MinParallelism: 1, MaxParallelism: 10},
			{Name: "sink", Parallelism: 2},
		} {
			if err := g.AddVertex(v); err != nil {
				return err
			}
		}
		if err := g.AddEdge("src", "mid", PatternRoundRobin); err != nil {
			return err
		}
		return g.AddEdge("mid", "sink", PatternRoundRobin)
	})
}

func TestParseSequence(t *testing.T) {
	g := chain(t)
	tests := []struct {
		name     string
		elements []string
		wantErr  string
	}{
		{name: "edge-vertex-edge", elements: []string{"src->mid", "mid", "mid->sink"}},
		{name: "vertex only", elements: []string{"mid"}},
		{name: "edge only", elements: []string{"src->mid"}},
		{name: "full path", elements: []string{"src", "src->mid", "mid", "mid->sink", "sink"}},
		{name: "empty", elements: nil, wantErr: "empty sequence"},
		{name: "unknown vertex", elements: []string{"ghost"}, wantErr: "unknown vertex"},
		{name: "unknown edge", elements: []string{"src->sink"}, wantErr: "unknown edge"},
		{name: "not alternating", elements: []string{"src", "mid"}, wantErr: "do not alternate"},
		{name: "disconnected pair", elements: []string{"src->mid", "sink"}, wantErr: "does not enter"},
		{name: "edge does not leave", elements: []string{"mid", "src->mid"}, wantErr: "does not leave"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			seq, err := ParseSequence(g, tt.elements...)
			if tt.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
					t.Fatalf("got error %v, want containing %q", err, tt.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseSequence: %v", err)
			}
			if got := len(seq.Elements()); got != len(tt.elements) {
				t.Errorf("element count: got %d, want %d", got, len(tt.elements))
			}
		})
	}
}

func TestSequenceVerticesAndEdges(t *testing.T) {
	g := chain(t)
	seq, err := ParseSequence(g, "src->mid", "mid", "mid->sink", "sink")
	if err != nil {
		t.Fatalf("ParseSequence: %v", err)
	}
	vs := seq.Vertices()
	if len(vs) != 2 || vs[0] != "mid" || vs[1] != "sink" {
		t.Errorf("Vertices: got %v, want [mid sink]", vs)
	}
	es := seq.Edges()
	if len(es) != 2 || es[0].Source != "src" || es[1].Target != "sink" {
		t.Errorf("Edges: got %v", es)
	}
}

func TestIngoingEdge(t *testing.T) {
	g := chain(t)
	seq, err := ParseSequence(g, "src->mid", "mid", "mid->sink", "sink")
	if err != nil {
		t.Fatalf("ParseSequence: %v", err)
	}
	edge, ok := seq.IngoingEdge("mid")
	if !ok || edge.Source != "src" || edge.Target != "mid" {
		t.Errorf("IngoingEdge(mid): got %v ok=%v", edge, ok)
	}
	edge, ok = seq.IngoingEdge("sink")
	if !ok || edge.Source != "mid" {
		t.Errorf("IngoingEdge(sink): got %v ok=%v", edge, ok)
	}
	// A leading vertex has no ingoing edge within the sequence.
	seq2, err := ParseSequence(g, "src", "src->mid", "mid")
	if err != nil {
		t.Fatalf("ParseSequence: %v", err)
	}
	if _, ok := seq2.IngoingEdge("src"); ok {
		t.Error("IngoingEdge(src): leading vertex must have no ingoing edge")
	}
}

func TestConstraintValidate(t *testing.T) {
	g := chain(t)
	seq, err := ParseSequence(g, "src->mid", "mid", "mid->sink")
	if err != nil {
		t.Fatalf("ParseSequence: %v", err)
	}
	tests := []struct {
		name    string
		c       Constraint
		wantErr bool
	}{
		{name: "valid", c: Constraint{Name: "c", Sequence: seq, Bound: 20 * time.Millisecond, Window: 10 * time.Second}},
		{name: "no sequence", c: Constraint{Name: "c", Bound: time.Millisecond, Window: time.Second}, wantErr: true},
		{name: "zero bound", c: Constraint{Name: "c", Sequence: seq, Window: time.Second}, wantErr: true},
		{name: "zero window", c: Constraint{Name: "c", Sequence: seq, Bound: time.Millisecond}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.c.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate: err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestSequenceString(t *testing.T) {
	g := chain(t)
	seq, err := ParseSequence(g, "src->mid", "mid")
	if err != nil {
		t.Fatalf("ParseSequence: %v", err)
	}
	want := "(src->mid, mid)"
	if got := seq.String(); got != want {
		t.Errorf("String: got %q, want %q", got, want)
	}
}
