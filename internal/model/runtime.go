package model

import (
	"fmt"
	"sort"
)

// TaskID identifies a task in the runtime graph: the index-th parallel
// instance of a job vertex's UDF.
type TaskID struct {
	Vertex string
	Index  int
}

// String renders the task id as "vertex[index]".
func (t TaskID) String() string { return fmt.Sprintf("%s[%d]", t.Vertex, t.Index) }

// ChannelID identifies a channel in the runtime graph: the communication
// path from one producer task to one consumer task along a job edge.
type ChannelID struct {
	Edge     EdgeKey
	Producer int
	Consumer int
}

// String renders the channel id as "source[i]->target[j]".
func (c ChannelID) String() string {
	return fmt.Sprintf("%s[%d]->%s[%d]", c.Edge.Source, c.Producer, c.Edge.Target, c.Consumer)
}

// RuntimeGraph is the parallelized version of a job graph G = (V, E):
// each job vertex jv expands into p_jv tasks and each job edge into the
// full bipartite set of channels between producer and consumer tasks
// (all wiring patterns use the complete channel set; the pattern only
// selects which channel carries a given data item).
//
// The runtime graph supports re-parallelization: SetParallelism changes a
// vertex's task count, with tasks always indexed 0..p-1 so that scale-down
// removes the highest-indexed tasks.
type RuntimeGraph struct {
	job *JobGraph
	par map[string]int
}

// NewRuntimeGraph expands a validated job graph into its runtime graph
// using the current degrees of parallelism.
func NewRuntimeGraph(job *JobGraph) (*RuntimeGraph, error) {
	if err := job.Validate(); err != nil {
		return nil, fmt.Errorf("model: expanding invalid job graph: %w", err)
	}
	par := make(map[string]int, len(job.order))
	for _, v := range job.Vertices() {
		par[v.Name] = v.Parallelism
	}
	return &RuntimeGraph{job: job, par: par}, nil
}

// Job returns the job graph this runtime graph was expanded from.
func (r *RuntimeGraph) Job() *JobGraph { return r.job }

// Parallelism returns the current task count of the named vertex.
func (r *RuntimeGraph) Parallelism(vertex string) int { return r.par[vertex] }

// Parallelisms returns a copy of the current vertex-to-parallelism map.
func (r *RuntimeGraph) Parallelisms() map[string]int {
	out := make(map[string]int, len(r.par))
	for k, v := range r.par {
		out[k] = v
	}
	return out
}

// SetParallelism changes the task count of the named vertex, clamped to
// the vertex's [min, max] range. It returns the parallelism actually set.
func (r *RuntimeGraph) SetParallelism(vertex string, p int) (int, error) {
	v := r.job.Vertex(vertex)
	if v == nil {
		return 0, fmt.Errorf("model: unknown vertex %q", vertex)
	}
	p = v.ClampParallelism(p)
	r.par[vertex] = p
	return p, nil
}

// Tasks returns the task ids of the named vertex, ordered by index.
func (r *RuntimeGraph) Tasks(vertex string) []TaskID {
	p := r.par[vertex]
	tasks := make([]TaskID, p)
	for i := 0; i < p; i++ {
		tasks[i] = TaskID{Vertex: vertex, Index: i}
	}
	return tasks
}

// AllTasks returns every task in the runtime graph, ordered by vertex
// insertion order, then index.
func (r *RuntimeGraph) AllTasks() []TaskID {
	var tasks []TaskID
	for _, name := range r.job.order {
		tasks = append(tasks, r.Tasks(name)...)
	}
	return tasks
}

// Channels returns the channel ids of the given job edge: the complete
// bipartite product of producer and consumer tasks, ordered by producer
// then consumer index.
func (r *RuntimeGraph) Channels(edge EdgeKey) ([]ChannelID, error) {
	if r.job.Edge(edge) == nil {
		return nil, fmt.Errorf("model: unknown edge %s", edge)
	}
	np, nc := r.par[edge.Source], r.par[edge.Target]
	channels := make([]ChannelID, 0, np*nc)
	for p := 0; p < np; p++ {
		for c := 0; c < nc; c++ {
			channels = append(channels, ChannelID{Edge: edge, Producer: p, Consumer: c})
		}
	}
	return channels, nil
}

// TaskCount returns the total number of tasks in the runtime graph.
func (r *RuntimeGraph) TaskCount() int {
	total := 0
	for _, p := range r.par {
		total += p
	}
	return total
}

// ChannelCount returns the total number of channels in the runtime graph.
func (r *RuntimeGraph) ChannelCount() int {
	total := 0
	for _, e := range r.job.Edges() {
		total += r.par[e.Source] * r.par[e.Target]
	}
	return total
}

// RuntimeSequences enumerates the runtime sequences induced by a job
// sequence: for sequences beginning with a vertex (or edge), one runtime
// sequence per combination of task choices along the path. Because the
// number of combinations is exponential, this is intended for tests and
// small graphs; the QoS plane never materializes runtime sequences.
func (r *RuntimeGraph) RuntimeSequences(seq *Sequence) [][]TaskID {
	vertices := seq.Vertices()
	if len(vertices) == 0 {
		return nil
	}
	combos := [][]TaskID{{}}
	for _, name := range vertices {
		p := r.par[name]
		next := make([][]TaskID, 0, len(combos)*p)
		for _, c := range combos {
			for i := 0; i < p; i++ {
				nc := make([]TaskID, len(c), len(c)+1)
				copy(nc, c)
				nc = append(nc, TaskID{Vertex: name, Index: i})
				next = append(next, nc)
			}
		}
		combos = next
	}
	return combos
}

// ScalingAction describes a change of a vertex's degree of parallelism
// decided by the elastic scaler.
type ScalingAction struct {
	Vertex string
	// From and To are the old and new degrees of parallelism.
	From int
	To   int
}

// Delta returns the signed change in task count.
func (a ScalingAction) Delta() int { return a.To - a.From }

// IsScaleUp reports whether the action increases parallelism.
func (a ScalingAction) IsScaleUp() bool { return a.To > a.From }

// String renders the action for logs.
func (a ScalingAction) String() string {
	return fmt.Sprintf("%s: %d -> %d", a.Vertex, a.From, a.To)
}

// DiffParallelism computes the scaling actions that transform the current
// parallelism map into the desired one. Vertices missing from desired are
// left unchanged. Actions are ordered by vertex name for determinism.
func DiffParallelism(current, desired map[string]int) []ScalingAction {
	var actions []ScalingAction
	names := make([]string, 0, len(desired))
	for name := range desired {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		from, ok := current[name]
		if !ok {
			continue
		}
		if to := desired[name]; to != from {
			actions = append(actions, ScalingAction{Vertex: name, From: from, To: to})
		}
	}
	return actions
}
