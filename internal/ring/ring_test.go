package ring

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {64, 64}, {65, 128},
	} {
		if got := New[int](tc.ask).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestEmptyPop(t *testing.T) {
	r := New[int](4)
	if v, ok := r.Pop(); ok {
		t.Fatalf("Pop on empty ring returned %v", v)
	}
	if !r.Empty() || r.Len() != 0 {
		t.Fatalf("empty ring reports Empty=%v Len=%d", r.Empty(), r.Len())
	}
}

func TestFullPushFails(t *testing.T) {
	r := New[int](4)
	for i := 0; i < r.Cap(); i++ {
		if !r.Push(i) {
			t.Fatalf("Push %d failed below capacity", i)
		}
	}
	if r.Push(99) {
		t.Fatal("Push succeeded on a full ring")
	}
	if r.Len() != r.Cap() {
		t.Fatalf("Len = %d, want %d", r.Len(), r.Cap())
	}
	// Freeing one slot re-admits exactly one push.
	if v, ok := r.Pop(); !ok || v != 0 {
		t.Fatalf("Pop = %v,%v, want 0,true", v, ok)
	}
	if !r.Push(99) {
		t.Fatal("Push failed with a free slot")
	}
	if r.Push(100) {
		t.Fatal("Push succeeded past the freed slot")
	}
}

// TestWraparound cycles the indices far past the buffer length so the
// mask arithmetic and the cached-index fast paths are exercised across
// many laps, preserving FIFO order throughout.
func TestWraparound(t *testing.T) {
	r := New[int](8)
	next := 0
	for lap := 0; lap < 1000; lap++ {
		n := 1 + lap%r.Cap()
		for i := 0; i < n; i++ {
			if !r.Push(lap*100 + i) {
				t.Fatalf("lap %d: push %d failed", lap, i)
			}
		}
		for i := 0; i < n; i++ {
			v, ok := r.Pop()
			if !ok {
				t.Fatalf("lap %d: pop %d empty", lap, i)
			}
			if v != lap*100+i {
				t.Fatalf("lap %d: pop = %d, want %d (FIFO violated)", lap, v, lap*100+i)
			}
		}
		next++
	}
}

// TestConcurrentSPSC is the property test: one producer, one consumer,
// run under -race in CI. Every pushed value must arrive exactly once,
// in order.
func TestConcurrentSPSC(t *testing.T) {
	const total = 1 << 18
	r := New[uint64](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < total; {
			if r.Push(i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	var next uint64
	for next < total {
		v, ok := r.Pop()
		if !ok {
			runtime.Gosched()
			continue
		}
		if v != next {
			t.Fatalf("popped %d, want %d (order or duplication bug)", v, next)
		}
		next++
	}
	wg.Wait()
	if !r.Empty() {
		t.Fatalf("ring not empty after all pops: Len=%d", r.Len())
	}
}

// TestCloseStopsPushes mirrors the dead-consumer gate semantics: after
// the supervisor closes a crashed consumer's ring, the producer's next
// Push fails and it can account the records as lost instead of
// spinning forever on a full ring.
func TestCloseStopsPushes(t *testing.T) {
	r := New[int](4)
	if !r.Push(1) {
		t.Fatal("push before close failed")
	}
	r.Close()
	if r.Push(2) {
		t.Fatal("Push succeeded after Close")
	}
	if !r.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	// Buffered items remain poppable after close.
	if v, ok := r.Pop(); !ok || v != 1 {
		t.Fatalf("Pop after close = %v,%v, want 1,true", v, ok)
	}
	r.Close() // idempotent
}

// TestCloseWhileBlockedDrain: a producer spinning on a full ring is
// unblocked by a supervisor's Close, and the supervisor's Drain then
// reclaims everything buffered exactly once — the ring-plane equivalent
// of the master draining a crashed task's input channel.
func TestCloseWhileBlockedDrain(t *testing.T) {
	r := New[int](8)
	var rejected atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			for !r.Push(i) {
				if r.Closed() {
					rejected.Add(1)
					return // producer observed the dead consumer
				}
				runtime.Gosched()
			}
		}
	}()
	// Wait until the producer has filled the ring and is blocked.
	for r.Len() < r.Cap() {
		runtime.Gosched()
	}
	r.Close()
	wg.Wait()
	if rejected.Load() != 1 {
		t.Fatalf("producer did not observe close exactly once: %d", rejected.Load())
	}
	// Drain from two goroutines; each buffered item must surface once.
	var mu sync.Mutex
	seen := map[int]int{}
	var dwg sync.WaitGroup
	for g := 0; g < 2; g++ {
		dwg.Add(1)
		go func() {
			defer dwg.Done()
			for {
				v, ok := r.Drain()
				if !ok {
					return
				}
				mu.Lock()
				seen[v]++
				mu.Unlock()
			}
		}()
	}
	dwg.Wait()
	if len(seen) != 8 {
		t.Fatalf("drained %d distinct items, want 8 (full ring)", len(seen))
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("item %d drained %d times", v, n)
		}
	}
	if v, ok := r.Drain(); ok {
		t.Fatalf("Drain on empty ring returned %v", v)
	}
}

// TestStatsCounterChurn exercises the sampled counters under -race:
// one producer spinning against a deliberately tiny ring (so full-ring
// stalls actually occur), one consumer, and a sampler goroutine reading
// Stats the whole time. Counters must be monotone across samples (a
// torn read would violate this), the high-water mark can never exceed
// capacity, and pops can never outrun pushes.
func TestStatsCounterChurn(t *testing.T) {
	const total = 1 << 16
	r := New[uint64](8)
	stop := make(chan struct{})
	var sampleErr atomic.Value // stores the first violation message
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // sampler
		defer wg.Done()
		var prev Stats
		for {
			st := r.Stats()
			switch {
			case st.Pushes < prev.Pushes:
				sampleErr.CompareAndSwap(nil, "pushes went backwards")
			case st.PushFails < prev.PushFails:
				sampleErr.CompareAndSwap(nil, "pushFails went backwards")
			case st.Pops < prev.Pops:
				sampleErr.CompareAndSwap(nil, "pops went backwards")
			case st.HighWater < prev.HighWater:
				sampleErr.CompareAndSwap(nil, "highWater went backwards")
			case st.HighWater > uint64(r.Cap()):
				sampleErr.CompareAndSwap(nil, "highWater exceeds capacity")
			case st.Pops > st.Pushes:
				sampleErr.CompareAndSwap(nil, "pops outran pushes")
			}
			prev = st
			select {
			case <-stop:
				return
			default:
				runtime.Gosched()
			}
		}
	}()
	go func() { // producer
		defer wg.Done()
		for i := uint64(0); i < total; {
			if r.Push(i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	for popped := 0; popped < total; {
		if _, ok := r.Pop(); ok {
			popped++
		} else {
			runtime.Gosched()
		}
	}
	close(stop)
	wg.Wait()
	if msg := sampleErr.Load(); msg != nil {
		t.Fatalf("sampler observed inconsistent counters: %v", msg)
	}
	st := r.Stats()
	if st.Pushes != total || st.Pops != total {
		t.Fatalf("final counters pushes=%d pops=%d, want %d each", st.Pushes, st.Pops, total)
	}
	if st.HighWater == 0 || st.HighWater > uint64(r.Cap()) {
		t.Fatalf("highWater = %d, want in [1,%d]", st.HighWater, r.Cap())
	}
}

// TestStatsFullRingCountsStalls pins the stall semantics: a rejected
// push on a full ring counts exactly one pushFail per attempt, and a
// rejected push on a closed ring counts none (teardown noise).
func TestStatsFullRingCountsStalls(t *testing.T) {
	r := New[int](4)
	for i := 0; i < r.Cap(); i++ {
		r.Push(i)
	}
	for i := 0; i < 3; i++ {
		if r.Push(99) {
			t.Fatal("push succeeded on full ring")
		}
	}
	st := r.Stats()
	if st.PushFails != 3 {
		t.Fatalf("pushFails = %d, want 3", st.PushFails)
	}
	if st.HighWater != uint64(r.Cap()) {
		t.Fatalf("highWater = %d, want %d", st.HighWater, r.Cap())
	}
	r.Close()
	r.Push(100) // closed rejection must not count as a stall
	if got := r.Stats().PushFails; got != 3 {
		t.Fatalf("pushFails after closed push = %d, want 3", got)
	}
}

func BenchmarkSPSCPushPop(b *testing.B) {
	r := New[uint64](1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for popped := 0; popped < b.N; {
			if _, ok := r.Pop(); ok {
				popped++
			} else {
				runtime.Gosched()
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; {
		if r.Push(uint64(i)) {
			i++
		} else {
			runtime.Gosched()
		}
	}
	<-done
}
